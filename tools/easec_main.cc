// easec — the EaseIO compiler front-end as a command-line tool (the counterpart of
// the original artifact's easeIO-c LibTooling binary).
//
// Usage:
//   easec [options] <source.ec>
//   easec [options] -            # read the program from stdin
//
// Options:
//   --emit-transform    print the source-to-source transformation (default)
//   --emit-analysis     print the extracted sites/blocks/DMAs/regions/dependences
//   --run=<runtime>     execute under emulated power failures:
//                       easeio | easeio-op | alpaca | ink | samoyed
//   --continuous        run under continuous power instead
//   --seed=<n>          failure/sensor seed for --run (default 1)
//   --priv-buffer=<n>   DMA privatization budget for the compile-time check
//                       (bytes, default 4096; 0 disables the check)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/runtime_factory.h"
#include "cli_flags.h"
#include "easec/program.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace {

using namespace easeio;

void PrintAnalysis(const easec::CompileResult& compiled) {
  const easec::Analysis& a = compiled.analysis;
  std::printf("tasks: %zu, io sites: %zu, io blocks: %zu, dma sites: %zu\n",
              a.tasks.size(), a.sites.size(), a.blocks.size(), a.dmas.size());
  for (uint32_t i = 0; i < a.sites.size(); ++i) {
    const easec::IoSiteInfo& s = a.sites[i];
    std::printf("  site %u: %s in task %s, %s", i, s.fn_name.c_str(),
                a.tasks[s.task].name.c_str(), kernel::ToString(s.sem));
    if (s.sem == kernel::IoSemantic::kTimely) {
      std::printf("(%llu ms)", static_cast<unsigned long long>(s.window_us / 1000));
    }
    if (s.lanes > 1) {
      std::printf(", %u lanes", s.lanes);
    }
    if (s.block != UINT32_MAX) {
      std::printf(", in block %u", s.block);
    }
    for (uint32_t dep : s.depends_on) {
      std::printf(", depends on site %u", dep);
    }
    std::printf("\n");
  }
  for (uint32_t b = 0; b < a.blocks.size(); ++b) {
    const easec::BlockInfo& blk = a.blocks[b];
    std::printf("  block %u: %s in task %s, %s%s\n", b, blk.name.c_str(),
                a.tasks[blk.task].name.c_str(), kernel::ToString(blk.sem),
                blk.parent == UINT32_MAX ? "" : " (nested)");
  }
  for (uint32_t d = 0; d < a.dmas.size(); ++d) {
    const easec::DmaInfo& dma = a.dmas[d];
    std::printf("  dma %u: task %s, region boundary %u, %u bytes%s%s\n", d,
                a.tasks[dma.task].name.c_str(), dma.region_index, dma.bytes,
                dma.exclude ? ", Exclude" : "",
                dma.related_io != UINT32_MAX ? ", I/O-dependent" : "");
  }
  for (uint32_t t = 0; t < a.tasks.size(); ++t) {
    const easec::TaskInfo& task = a.tasks[t];
    std::printf("  task %s: %zu region(s), %zu shared var(s), %zu WAR var(s)\n",
                task.name.c_str(), task.regions.size(), task.shared.size(),
                task.war.size());
  }
  std::printf("  worst-case Private DMA footprint: %u bytes\n", a.private_dma_bytes);
}

int RunProgram(const easec::CompileResult& compiled, const std::string& runtime_name,
               uint64_t seed, bool continuous) {
  apps::RuntimeKind kind;
  if (runtime_name == "easeio") {
    kind = apps::RuntimeKind::kEaseio;
  } else if (runtime_name == "easeio-op") {
    kind = apps::RuntimeKind::kEaseioOp;
  } else if (runtime_name == "alpaca") {
    kind = apps::RuntimeKind::kAlpaca;
  } else if (runtime_name == "ink") {
    kind = apps::RuntimeKind::kInk;
  } else if (runtime_name == "samoyed") {
    kind = apps::RuntimeKind::kSamoyed;
  } else {
    std::fprintf(stderr, "easec: unknown runtime '%s'\n", runtime_name.c_str());
    return 2;
  }

  sim::NeverFailScheduler never;
  sim::UniformTimerScheduler timer(5000, 20000, 200, 1000);
  sim::DeviceConfig config;
  config.seed = seed;
  sim::Device dev(config, continuous ? static_cast<sim::FailureScheduler&>(never)
                                     : static_cast<sim::FailureScheduler&>(timer));
  kernel::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(kind);
  rt->Bind(dev, nv);
  easec::InstantiatedProgram prog = easec::Instantiate(compiled, dev, *rt, nv);

  kernel::Engine engine;
  const kernel::RunResult result = engine.Run(dev, *rt, nv, prog.graph, prog.entry);

  std::printf("runtime:        %s (%s power, seed %llu)\n", rt->name(),
              continuous ? "continuous" : "intermittent",
              static_cast<unsigned long long>(seed));
  std::printf("completed:      %s\n", result.completed ? "yes" : "NO (non-terminating)");
  std::printf("power failures: %llu\n",
              static_cast<unsigned long long>(result.stats.power_failures));
  std::printf("io executed:    %llu (redundant %llu, skipped %llu)\n",
              static_cast<unsigned long long>(result.stats.io_executions),
              static_cast<unsigned long long>(result.stats.io_redundant),
              static_cast<unsigned long long>(result.stats.io_skipped));
  std::printf("radio packets:  %llu\n",
              static_cast<unsigned long long>(dev.radio().sends()));
  std::printf("time:           %.3f ms (app %.3f + overhead %.3f + wasted %.3f)\n",
              result.stats.TotalUs() / 1e3, result.stats.app_us / 1e3,
              result.stats.overhead_us / 1e3, result.stats.wasted_us / 1e3);
  std::printf("energy:         %.1f uJ\n", result.energy_j * 1e6);

  // Final non-volatile state of the program's globals.
  std::printf("final __nv state:\n");
  for (uint32_t i = 0; i < compiled.ast.nv_decls.size(); ++i) {
    const easec::NvDecl& decl = compiled.ast.nv_decls[i];
    if (decl.sram || prog.nv_slots[i] == kernel::kNoSlot) {
      continue;
    }
    const uint32_t addr = nv.slot(prog.nv_slots[i]).addr;
    std::printf("  %s =", decl.name.c_str());
    const uint32_t show = decl.elements > 8 ? 8 : decl.elements;
    for (uint32_t e = 0; e < show; ++e) {
      std::printf(" %d", dev.mem().ReadI16(addr + 2 * e));
    }
    std::printf(decl.elements > 8 ? " ...\n" : "\n");
  }
  return result.completed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_transform = false;
  bool emit_analysis = false;
  bool continuous = false;
  std::string run_runtime;
  std::string input_path;
  uint64_t seed = 1;
  easec::CompileOptions options;

  tools::FlagDeduper dedupe("easec");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && !dedupe.Note(arg)) {
      return 2;
    }
    if (arg == "--emit-transform") {
      emit_transform = true;
    } else if (arg == "--emit-analysis") {
      emit_analysis = true;
    } else if (arg.rfind("--run=", 0) == 0) {
      run_runtime = arg.substr(6);
    } else if (arg == "--run") {
      run_runtime = "easeio";
    } else if (arg == "--continuous") {
      continuous = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!tools::ParseUintFlag("easec", "--seed", arg.c_str() + 7, 0, UINT64_MAX,
                                &seed)) {
        return 2;
      }
    } else if (arg.rfind("--priv-buffer=", 0) == 0) {
      uint64_t bytes = 0;
      if (!tools::ParseUintFlag("easec", "--priv-buffer", arg.c_str() + 14, 0,
                                UINT32_MAX, &bytes)) {
        return 2;
      }
      options.dma_priv_buffer_bytes = static_cast<uint32_t>(bytes);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "easec: unknown option '%s'\n", arg.c_str());
      return 2;
    } else if (!input_path.empty()) {
      std::fprintf(stderr, "easec: more than one input file\n");
      return 2;
    } else {
      input_path = arg;
    }
  }
  if (input_path.empty()) {
    std::fprintf(stderr, "usage: easec [options] <source.ec | ->\n");
    return 2;
  }

  std::string source;
  if (input_path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    source = buf.str();
  } else {
    std::ifstream in(input_path);
    if (!in) {
      std::fprintf(stderr, "easec: cannot open %s\n", input_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  const easec::CompileResult compiled = easec::Compile(source, options);
  if (!compiled.ok) {
    std::fprintf(stderr, "%s", compiled.errors.c_str());
    return 1;
  }

  if (!emit_transform && !emit_analysis && run_runtime.empty()) {
    emit_transform = true;  // default action
  }
  if (emit_analysis) {
    PrintAnalysis(compiled);
  }
  if (emit_transform) {
    std::printf("%s", compiled.transformed_source.c_str());
  }
  if (!run_runtime.empty()) {
    return RunProgram(compiled, run_runtime, seed, continuous);
  }
  return 0;
}
