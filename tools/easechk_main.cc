// easechk — systematic failure-schedule exploration and invariant checking.
//
// Enumerates power-failure placements over the instants a reference run visits
// (depth 1: every single placement; depth 2: pairs seeded from each depth-1 trial's
// own post-failure trace), re-executes the application at each, and checks the safety
// invariants: golden-output equivalence, Single at-most-once, Timely freshness, DMA
// integrity, WAR commit semantics.
//
// Usage:
//   easechk [--app=NAME] [--runtime=NAME] [--depth=1|2] [--jobs=N] [--budget=N]
//           [--seed=N] [--off-us=N] [--no-regional] [--no-snapshot] [--json=PATH]
//           [--expect-clean] [--trace-failures=DIR]
//
//   --app       dma | temp | lea | fir | weather | branch | unitask | all
//               (unitask = dma+temp+lea; default: unitask)
//   --runtime   alpaca | ink | samoyed | easeio | easeio-op | all  (default: easeio)
//   --depth     failure placements per schedule (default: 2)
//   --jobs      worker threads; 0 = hardware concurrency (default: 0)
//   --budget    schedule cap per (app, runtime); excess subsampled (default: 1500)
//   --seed      device/sensor seed (default: 1)
//   --off-us    dark time after each injected failure (default: 700)
//   --no-regional   disable EaseIO regional DMA privatization (bug-hunting ablation)
//   --no-snapshot   full-replay every depth-2 schedule instead of resuming from a
//                   post-first-failure snapshot (cross-check; slower, same results)
//   --no-prune      disable schedule-space pruning (state-hash dedup + idempotent-
//                   region partial-order reduction); cross-check — identical verdicts
//                   and non-timing JSON, more trials executed
//   --exhaust=N     coverage mode: enumerate EVERY schedule of at most N failures
//                   (N = 1 or 2) under the prunings instead of budget-subsampling,
//                   and emit a coverage certificate per exploration in the JSON.
//                   Overrides --depth, ignores --budget, and requires the snapshot
//                   engine (conflicts with --no-snapshot; exit 2)
//   --json      also write results as JSON to PATH
//   --metrics   dump the metrics registry (phase timers, trial latency histogram,
//               engine counters) to PATH at exit — easeio-metrics/1 JSON, or
//               Prometheus text if PATH ends in .prom. Attaching the registry
//               also enables the per-phase clocks; the checking results are
//               byte-identical either way (metrics are timing-class)
//   --no-timing omit the host-dependent "timing" object from the JSON, making the
//               document fully deterministic (byte-identical across machines and
//               engine modes — the form the easeiod result cache stores)
//   --expect-clean  exit nonzero if any invariant violation was found
//   --trace-failures=DIR  for every invariant violation, deterministically replay its
//               failure schedule with the observability probe attached and write a
//               Chrome trace-event / Perfetto timeline to DIR (one file per violation,
//               named <app>-<runtime>-<invariant>-<n>.json). The directory is created
//               up front; an empty or uncreatable/unwritable DIR is rejected before
//               any exploration runs (exit 2), so a long sweep never ends with the
//               evidence unwritable.
//
// Each flag may appear at most once; a duplicated flag is a usage error (exit 2) —
// silently keeping the last occurrence has bitten scripted sweeps before.

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "obs/capture.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "obs/timeline.h"
#include "report/jobs.h"
#include "report/table.h"

namespace {

using namespace easeio;

bool ParseUintFlag(const char* flag, const char* s, uint64_t min, uint64_t max,
                   uint64_t* out) {
  return tools::ParseUintFlag("easechk", flag, s, min, max, out);
}

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: easechk [--app=NAME] [--runtime=NAME] [--depth=1|2] [--jobs=N]\n"
               "               [--budget=N] [--seed=N] [--off-us=N] [--no-regional]\n"
               "               [--no-snapshot] [--no-prune] [--exhaust=1|2]\n"
               "               [--json=PATH] [--no-timing] [--expect-clean]\n"
               "               [--metrics=PATH] [--trace-failures=DIR]\n");
}

// Violation invariant names become path components; keep them portable.
std::string SanitizeForFilename(const std::string& s) {
  std::string out;
  for (char c : s) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '-';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  report::ExploreJob job;
  job.apps.assign(std::begin(apps::kUnitaskApps), std::end(apps::kUnitaskApps));
  job.runtimes = {apps::RuntimeKind::kEaseio};
  chk::ExploreConfig& base = job.base;
  std::string json_path;
  std::string metrics_path;
  std::string trace_dir;
  bool trace_failures = false;
  bool expect_clean = false;
  bool include_timing = true;

  tools::FlagDeduper dedupe("easechk");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      return std::strncmp(arg.c_str(), prefix, std::strlen(prefix)) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (arg.rfind("--", 0) == 0 && arg != "--help" && !dedupe.Note(arg)) {
      PrintUsage(stderr);
      return 2;
    }
    if (const char* v = value("--app=")) {
      if (!report::ParseAppList(v, &job.apps)) {
        std::fprintf(stderr, "easechk: unknown app '%s'\n", v);
        return 2;
      }
    } else if (const char* v = value("--runtime=")) {
      if (!report::ParseRuntimeList(v, &job.runtimes)) {
        std::fprintf(stderr, "easechk: unknown runtime '%s'\n", v);
        return 2;
      }
    } else if (const char* v = value("--depth=")) {
      uint64_t depth = 0;
      if (!ParseUintFlag("--depth", v, 1, 2, &depth)) {
        return 2;
      }
      base.depth = static_cast<int>(depth);
    } else if (const char* v = value("--jobs=")) {
      uint64_t jobs = 0;
      if (!ParseUintFlag("--jobs", v, 0, 4096, &jobs)) {
        return 2;
      }
      base.jobs = static_cast<uint32_t>(jobs);
    } else if (const char* v = value("--budget=")) {
      uint64_t budget = 0;
      if (!ParseUintFlag("--budget", v, 1, UINT32_MAX, &budget)) {
        return 2;
      }
      base.budget = static_cast<uint32_t>(budget);
    } else if (const char* v = value("--seed=")) {
      if (!ParseUintFlag("--seed", v, 0, UINT64_MAX, &base.seed)) {
        return 2;
      }
    } else if (const char* v = value("--off-us=")) {
      if (!ParseUintFlag("--off-us", v, 0, UINT64_MAX, &base.off_us)) {
        return 2;
      }
    } else if (const char* v = value("--json=")) {
      json_path = v;
    } else if (const char* v = value("--metrics=")) {
      metrics_path = v;
      if (metrics_path.empty()) {
        std::fprintf(stderr, "easechk: --metrics= requires a path\n");
        return 2;
      }
    } else if (const char* v = value("--trace-failures=")) {
      trace_dir = v;
      trace_failures = true;
    } else if (arg == "--no-regional") {
      base.easeio_regional_privatization = false;
    } else if (const char* v = value("--exhaust=")) {
      uint64_t exhaust = 0;
      if (!ParseUintFlag("--exhaust", v, 1, 2, &exhaust)) {
        return 2;
      }
      base.exhaust = static_cast<uint32_t>(exhaust);
    } else if (arg == "--no-snapshot") {
      base.use_snapshot = false;
    } else if (arg == "--no-prune") {
      base.use_pruning = false;
    } else if (arg == "--no-timing") {
      include_timing = false;
    } else if (arg == "--expect-clean") {
      expect_clean = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "easechk: unknown option '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  // Exhaust mode resumes every pair suffix from a snapshot; full replay has no way to
  // honour the coverage accounting. Reject the combination whichever order the flags
  // came in.
  if (base.exhaust > 0 && !base.use_snapshot) {
    std::fprintf(stderr, "easechk: --exhaust requires the snapshot engine (drop --no-snapshot)\n");
    PrintUsage(stderr);
    return 2;
  }

  // Validate the trace destination before burning exploration time: an empty path,
  // an uncreatable directory, or an unwritable one is a usage error up front.
  if (trace_failures) {
    if (trace_dir.empty()) {
      std::fprintf(stderr, "easechk: --trace-failures requires a directory path\n");
      PrintUsage(stderr);
      return 2;
    }
    std::error_code ec;
    std::filesystem::create_directories(trace_dir, ec);
    if (ec || !std::filesystem::is_directory(trace_dir, ec)) {
      std::fprintf(stderr, "easechk: cannot create trace directory %s (%s)\n",
                   trace_dir.c_str(), ec.message().c_str());
      return 2;
    }
    const std::string probe_path = trace_dir + "/.easechk-writable";
    {
      std::ofstream probe(probe_path);
      if (!probe) {
        std::fprintf(stderr, "easechk: trace directory %s is not writable\n",
                     trace_dir.c_str());
        return 2;
      }
    }
    std::filesystem::remove(probe_path, ec);
  }

  // The registry outlives every exploration; attaching it turns on the per-phase
  // clocks inside the explorer (detached counters still accumulate, they just have
  // nowhere visible to go).
  obs::Registry metrics;
  if (!metrics_path.empty()) {
    base.metrics = &metrics;
  }

  const report::ExploreJobResult exploration = report::ExecuteExploreJob(job);
  const std::vector<chk::ExploreResult>& results = exploration.results;
  const std::vector<chk::ExploreConfig>& configs = exploration.configs;
  const size_t total_violations = exploration.total_violations;

  report::TextTable table({"App", "Runtime", "Trace pts", "Schedules", "Completed",
                           "Skipped", "Violations"});
  for (const chk::ExploreResult& r : results) {
    table.AddRow({r.app, r.runtime, std::to_string(r.candidate_instants),
                  std::to_string(r.schedules), std::to_string(r.completed),
                  std::to_string(r.schedules_skipped), std::to_string(r.violations.size())});
  }
  table.Print();

  for (const chk::ExploreResult& r : results) {
    for (const chk::Violation& v : r.violations) {
      std::string sched = "{";
      for (size_t i = 0; i < v.schedule.size(); ++i) {
        sched += (i ? ", " : "") + std::to_string(v.schedule[i]);
      }
      sched += "}";
      std::printf("VIOLATION [%s/%s] %s: %s — %s at failure schedule %s us\n", r.app.c_str(),
                  r.runtime.c_str(), chk::ToString(v.invariant), v.subject.c_str(),
                  v.detail.c_str(), sched.c_str());
    }
  }

  // Dump one Perfetto-loadable timeline per violation: replay its exact failure
  // schedule (deterministic — same scripted instants, same seed) with the obs probe
  // subscribed, then serialize the captured run.
  if (trace_failures) {
    size_t traces_written = 0;
    for (size_t r = 0; r < results.size(); ++r) {
      const chk::ExploreResult& res = results[r];
      for (size_t i = 0; i < res.violations.size(); ++i) {
        const chk::Violation& v = res.violations[i];
        chk::ReplayOutput replay = chk::ReplaySchedule(configs[r], v.schedule);
        const obs::CapturedRun run = obs::FromReplay(configs[r], std::move(replay));
        const std::string path = trace_dir + "/" + res.app + "-" + res.runtime + "-" +
                                 SanitizeForFilename(chk::ToString(v.invariant)) + "-" +
                                 std::to_string(i) + ".json";
        std::ofstream out(path, std::ios::binary);
        if (!out || !(out << obs::ChromeTraceJson(run) << "\n")) {
          std::fprintf(stderr, "easechk: cannot write trace %s\n", path.c_str());
          return 2;
        }
        ++traces_written;
      }
    }
    std::printf("easechk: wrote %zu failure trace(s) to %s\n", traces_written,
                trace_dir.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "easechk: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << chk::ToJson(results, include_timing) << "\n";
  }

  if (!metrics_path.empty()) {
    std::string metrics_error;
    if (!obs::WriteMetricsFile(metrics, metrics_path, &metrics_error)) {
      std::fprintf(stderr, "easechk: %s\n", metrics_error.c_str());
      return 2;
    }
  }

  if (total_violations == 0) {
    std::printf("easechk: %zu exploration(s), no invariant violations\n", results.size());
  } else {
    std::printf("easechk: %zu exploration(s), %zu invariant violation(s)\n", results.size(),
                total_violations);
  }
  return expect_clean && total_violations > 0 ? 1 : 0;
}
