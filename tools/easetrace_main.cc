// easetrace — run-timeline tracing and per-site waste profiling.
//
// Runs one app×runtime×seed experiment with the observability probe subscribed and
// writes either or both of:
//   * a Chrome trace-event / Perfetto-compatible timeline (--trace-out): open it at
//     https://ui.perfetto.dev or chrome://tracing to see task attempts, reboots,
//     power-off gaps, I/O and DMA activity, and the capacitor charge track;
//   * a deterministic `easeio-profile/1` JSON document (--profile-out): per-task
//     attempt/waste accounting, per-I/O-site redundant/skipped counts, DMA and
//     privatization traffic, and the time-between-failures histogram.
//
// Usage:
//   easetrace [--app=NAME] [--runtime=NAME] [--seed=N] [--trace-out=PATH]
//             [--profile-out=PATH] [--continuous] [--harvester-in=INCHES]
//             [--cap-sample-us=N] [--no-regional] [--tick-us=N]
//
//   --app           dma | temp | lea | fir | weather | branch  (default: weather)
//   --runtime       alpaca | ink | samoyed | easeio | easeio-op  (default: easeio)
//   --seed          device/sensor seed (default: 1)
//   --trace-out     write the Chrome trace-event timeline to PATH
//   --profile-out   write the easeio-profile/1 document to PATH
//   --continuous    continuous power (no failures; golden-run timeline)
//   --harvester-in  RF-harvester distance in inches; enables the capacitor-driven
//                   failure model (Figure 13 mode) instead of timer emulation
//   --cap-sample-us capacitor sampling period for the counter track (default: 1000;
//                   0 disables the track)
//   --no-regional   disable EaseIO regional DMA privatization (ablation)
//   --tick-us       persistent-timekeeper tick (default: 100)
//   --metrics       dump run counters (failures, commits, on/off time, events) to
//                   PATH at exit — easeio-metrics/1 JSON, or Prometheus text when
//                   PATH ends in .prom
//
// At least one of --trace-out/--profile-out is required. Each flag may appear at
// most once. Observation is free: the run is bit-identical to an uninstrumented one.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "cli_flags.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "obs/trace_job.h"
#include "report/jobs.h"

namespace {

using namespace easeio;

bool ParseUintFlag(const char* flag, const char* s, uint64_t min, uint64_t max,
                   uint64_t* out) {
  return tools::ParseUintFlag("easetrace", flag, s, min, max, out);
}

bool ParseDoubleFlag(const char* flag, const char* s, double* out) {
  return tools::ParseDoubleFlag("easetrace", flag, s, out);
}

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: easetrace [--app=NAME] [--runtime=NAME] [--seed=N]\n"
               "                 [--trace-out=PATH] [--profile-out=PATH] [--continuous]\n"
               "                 [--harvester-in=INCHES] [--cap-sample-us=N]\n"
               "                 [--no-regional] [--tick-us=N] [--metrics=PATH]\n"
               "At least one of --trace-out/--profile-out is required.\n");
}

bool WriteFile(const std::string& path, const std::string& contents, const char* what) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !(out << contents << "\n")) {
    std::fprintf(stderr, "easetrace: cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  report::ExperimentConfig config;
  config.app = apps::AppKind::kWeather;
  config.runtime = apps::RuntimeKind::kEaseio;
  config.cap_sample_period_us = 1000;
  std::string trace_path;
  std::string profile_path;
  std::string metrics_path;

  tools::FlagDeduper dedupe("easetrace");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      return std::strncmp(arg.c_str(), prefix, std::strlen(prefix)) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (arg.rfind("--", 0) == 0 && arg != "--help" && !dedupe.Note(arg)) {
      PrintUsage(stderr);
      return 2;
    }
    if (const char* v = value("--app=")) {
      if (!report::ParseApp(v, &config.app)) {
        std::fprintf(stderr, "easetrace: unknown app '%s'\n", v);
        return 2;
      }
    } else if (const char* v = value("--runtime=")) {
      if (!report::ParseRuntime(v, &config.runtime)) {
        std::fprintf(stderr, "easetrace: unknown runtime '%s'\n", v);
        return 2;
      }
    } else if (const char* v = value("--seed=")) {
      if (!ParseUintFlag("--seed", v, 0, UINT64_MAX, &config.seed)) {
        return 2;
      }
    } else if (const char* v = value("--trace-out=")) {
      trace_path = v;
    } else if (const char* v = value("--profile-out=")) {
      profile_path = v;
    } else if (const char* v = value("--metrics=")) {
      metrics_path = v;
      if (metrics_path.empty()) {
        std::fprintf(stderr, "easetrace: --metrics= requires a path\n");
        return 2;
      }
    } else if (const char* v = value("--cap-sample-us=")) {
      if (!ParseUintFlag("--cap-sample-us", v, 0, UINT64_MAX,
                         &config.cap_sample_period_us)) {
        return 2;
      }
    } else if (const char* v = value("--tick-us=")) {
      if (!ParseUintFlag("--tick-us", v, 1, UINT64_MAX, &config.timekeeper_tick_us)) {
        return 2;
      }
    } else if (const char* v = value("--harvester-in=")) {
      if (!ParseDoubleFlag("--harvester-in", v, &config.rf_distance_in)) {
        return 2;
      }
    } else if (arg == "--continuous") {
      config.continuous = true;
    } else if (arg == "--no-regional") {
      config.easeio_regional_privatization = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "easetrace: unknown option '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (trace_path.empty() && profile_path.empty()) {
    std::fprintf(stderr, "easetrace: nothing to do\n");
    PrintUsage(stderr);
    return 2;
  }
  if (config.continuous && config.rf_distance_in > 0) {
    std::fprintf(stderr, "easetrace: --continuous and --harvester-in are mutually exclusive\n");
    return 2;
  }

  obs::TraceJob job;
  job.config = config;
  job.want_trace = !trace_path.empty();
  job.want_profile = !profile_path.empty();
  const obs::TraceJobResult traced = obs::ExecuteTraceJob(job);
  const obs::CapturedRun& run = traced.run;

  if (job.want_trace && !WriteFile(trace_path, traced.trace_json, "trace")) {
    return 2;
  }
  if (job.want_profile && !WriteFile(profile_path, traced.profile_json, "profile")) {
    return 2;
  }

  const sim::RunStats& stats = run.result.run.stats;
  std::printf("easetrace: %s/%s seed=%llu — %s, on=%llu us, off=%llu us, "
              "failures=%llu, commits=%llu, events=%zu\n",
              run.app.c_str(), run.runtime.c_str(),
              static_cast<unsigned long long>(run.seed),
              run.result.run.completed ? "completed" : "DID NOT COMPLETE",
              static_cast<unsigned long long>(run.result.run.on_us),
              static_cast<unsigned long long>(run.result.run.off_us),
              static_cast<unsigned long long>(stats.power_failures),
              static_cast<unsigned long long>(stats.tasks_committed), run.events.size());
  if (!trace_path.empty()) {
    std::printf("easetrace: timeline written to %s (open in https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  if (!profile_path.empty()) {
    std::printf("easetrace: profile written to %s (schema easeio-profile/1)\n",
                profile_path.c_str());
  }
  if (!metrics_path.empty()) {
    obs::Registry metrics;
    const obs::Labels labels = {{"app", run.app}, {"runtime", run.runtime}};
    metrics.Add(metrics.Counter("easetrace_runs", labels), 1);
    metrics.Add(metrics.Counter("easetrace_power_failures", labels),
                stats.power_failures);
    metrics.Add(metrics.Counter("easetrace_tasks_committed", labels),
                stats.tasks_committed);
    metrics.Add(metrics.Counter("easetrace_on_us", labels), run.result.run.on_us);
    metrics.Add(metrics.Counter("easetrace_off_us", labels), run.result.run.off_us);
    metrics.Add(metrics.Counter("easetrace_events_captured", labels),
                run.events.size());
    std::string metrics_error;
    if (!obs::WriteMetricsFile(metrics, metrics_path, &metrics_error)) {
      std::fprintf(stderr, "easetrace: %s\n", metrics_error.c_str());
      return 2;
    }
  }
  return run.result.run.completed ? 0 : 1;
}
