// easectl: client for the easeiod fleet daemon.
//
//   easectl --socket=PATH submit --kind=KIND [job flags] [--wait [--out=FILE]]
//   easectl --socket=PATH status
//   easectl --socket=PATH watch [--after=N]
//   easectl --socket=PATH results --id=N [--out=FILE]
//   easectl --socket=PATH cache-stats
//   easectl --socket=PATH shutdown
//   easectl run --kind=KIND [job flags] [--out=FILE]
//
// `run` executes the job locally through the exact library entry points the daemon's
// workers use — no daemon, no cache — which is what CI compares cached daemon
// artifacts against byte-for-byte.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "daemon/jobspec.h"
#include "daemon/jsonin.h"
#include "report/jobs.h"

namespace {

using namespace easeio;

constexpr char kUsage[] =
    "usage: easectl --socket=PATH COMMAND [options]\n"
    "       easectl run [job flags] [--out=FILE]\n"
    "\n"
    "commands:\n"
    "  submit       queue a job; prints the submit reply (id, content hash, cached)\n"
    "  status       print the easeio-daemon/1 status document\n"
    "  watch        stream job events until interrupted (--after=N to skip history)\n"
    "  results      print a finished job's artifact (--id=N, --out=FILE)\n"
    "  cache-stats  print result-cache counters\n"
    "  metrics      print the live metrics registry (easeio-metrics/1 JSON;\n"
    "               --prom for Prometheus text exposition)\n"
    "  shutdown     ask the daemon to drain and exit\n"
    "  run          execute one job locally, no daemon (same code path as a worker)\n"
    "\n"
    "job flags (submit and run):\n"
    "  --kind=sweep|explore|lint|trace   (default: sweep)\n"
    "  --app=NAME|unitask|all            app list (default: dma)\n"
    "  --runtime=NAME|all                runtime list (default: easeio)\n"
    "  --seed=N --runs=N --depth=1|2 --budget=N --off-us=N --jobs=N\n"
    "  --no-snapshot --no-prune --exhaust=1|2 --no-regional --priv-buffer=N --tick-us=N\n"
    "  --source=FILE --source-name=NAME --witness      (lint)\n"
    "  --timeline --continuous --harvester-in=D --cap-sample-us=N  (trace)\n"
    "\n"
    "submit options: --wait (block until done; with --out, also fetch the artifact)\n";

int UsageError(const char* message) {
  std::fprintf(stderr, "easectl: %s\n%s", message, kUsage);
  return 2;
}

// --- blocking NDJSON connection ------------------------------------------------------

class Connection {
 public:
  bool Connect(const std::string& path, std::string* error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long";
      return false;
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0 ||
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = "connect " + path + ": " + std::strerror(errno);
      return false;
    }
    return true;
  }

  ~Connection() {
    if (fd_ >= 0) {
      close(fd_);
    }
  }

  bool SendFrame(const std::string& json, std::string* error) {
    std::string data = json + "\n";
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = write(fd_, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        *error = std::string("write: ") + std::strerror(errno);
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads the next newline-terminated frame. False on EOF/error.
  bool ReadFrame(std::string* frame, std::string* error) {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *frame = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[64 * 1024];
      const ssize_t n = read(fd_, chunk, sizeof chunk);
      if (n > 0) {
        buf_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      *error = n == 0 ? "connection closed by daemon"
                      : std::string("read: ") + std::strerror(errno);
      return false;
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

// Sends one request and parses the one reply (raw frame text in *raw if non-null).
// False + `error` on transport trouble or an ok:false reply.
bool RoundTrip(Connection& conn, const std::string& request, daemon::JsonValue* reply,
               std::string* error, std::string* raw = nullptr) {
  std::string frame;
  if (!conn.SendFrame(request, error) || !conn.ReadFrame(&frame, error)) {
    return false;
  }
  if (raw != nullptr) {
    *raw = frame;
  }
  if (!daemon::ParseJson(frame, reply, error)) {
    *error = "bad reply from daemon: " + *error;
    return false;
  }
  const daemon::JsonValue* ok = reply->Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    *error = "bad reply from daemon: missing \"ok\"";
    return false;
  }
  if (!ok->AsBool()) {
    const daemon::JsonValue* err = reply->Find("error");
    *error = "daemon error: " + (err != nullptr && err->is_string()
                                     ? err->AsString()
                                     : std::string("(no message)"));
    return false;
  }
  return true;
}

// --- job flags -----------------------------------------------------------------------

// Parses one --flag into `spec`. Returns 1 if consumed, 0 if not a job flag, -1 on a
// bad value (message already printed).
int ParseJobFlag(const std::string& arg, daemon::JobSpec* spec) {
  uint64_t u = 0;
  const auto uint_flag = [&](const char* name, size_t prefix, uint64_t min,
                             uint64_t max) {
    return tools::ParseUintFlag("easectl", name, arg.c_str() + prefix, min, max, &u);
  };
  if (arg.rfind("--kind=", 0) == 0) {
    if (!daemon::ParseJobKind(arg.substr(7), &spec->kind)) {
      std::fprintf(stderr, "easectl: unknown kind '%s'\n", arg.substr(7).c_str());
      return -1;
    }
  } else if (arg.rfind("--app=", 0) == 0) {
    if (!report::ParseAppList(arg.substr(6), &spec->apps)) {
      std::fprintf(stderr, "easectl: unknown app '%s'\n", arg.substr(6).c_str());
      return -1;
    }
  } else if (arg.rfind("--runtime=", 0) == 0) {
    if (!report::ParseRuntimeList(arg.substr(10), &spec->runtimes)) {
      std::fprintf(stderr, "easectl: unknown runtime '%s'\n", arg.substr(10).c_str());
      return -1;
    }
  } else if (arg.rfind("--seed=", 0) == 0) {
    if (!uint_flag("--seed", 7, 0, UINT64_MAX)) return -1;
    spec->seed = u;
  } else if (arg.rfind("--runs=", 0) == 0) {
    if (!uint_flag("--runs", 7, 1, 1'000'000)) return -1;
    spec->runs = static_cast<uint32_t>(u);
  } else if (arg.rfind("--depth=", 0) == 0) {
    if (!uint_flag("--depth", 8, 1, 2)) return -1;
    spec->depth = static_cast<int>(u);
  } else if (arg.rfind("--budget=", 0) == 0) {
    if (!uint_flag("--budget", 9, 1, UINT32_MAX)) return -1;
    spec->budget = static_cast<uint32_t>(u);
  } else if (arg.rfind("--off-us=", 0) == 0) {
    if (!uint_flag("--off-us", 9, 0, UINT64_MAX)) return -1;
    spec->off_us = u;
  } else if (arg.rfind("--exhaust=", 0) == 0) {
    if (!uint_flag("--exhaust", 10, 1, 2)) return -1;
    spec->exhaust = static_cast<uint32_t>(u);
  } else if (arg == "--no-snapshot") {
    spec->use_snapshot = false;
  } else if (arg == "--no-prune") {
    spec->use_pruning = false;
  } else if (arg == "--no-regional") {
    spec->regional = false;
  } else if (arg.rfind("--priv-buffer=", 0) == 0) {
    if (!uint_flag("--priv-buffer", 14, 0, UINT32_MAX)) return -1;
    spec->priv_buffer_bytes = static_cast<uint32_t>(u);
  } else if (arg.rfind("--tick-us=", 0) == 0) {
    if (!uint_flag("--tick-us", 10, 1, UINT64_MAX)) return -1;
    spec->tick_us = u;
  } else if (arg.rfind("--source=", 0) == 0) {
    const std::string path = arg.substr(9);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "easectl: cannot read %s\n", path.c_str());
      return -1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    spec->source = ss.str();
    spec->source_name = path;
  } else if (arg.rfind("--source-name=", 0) == 0) {
    spec->source_name = arg.substr(14);
  } else if (arg == "--witness") {
    spec->witness = true;
  } else if (arg == "--timeline") {
    spec->timeline = true;
  } else if (arg == "--continuous") {
    spec->continuous = true;
  } else if (arg.rfind("--harvester-in=", 0) == 0) {
    double d = 0;
    if (!tools::ParseDoubleFlag("easectl", "--harvester-in", arg.c_str() + 15, &d)) {
      return -1;
    }
    spec->harvester_in = d;
  } else if (arg.rfind("--cap-sample-us=", 0) == 0) {
    if (!uint_flag("--cap-sample-us", 16, 0, UINT64_MAX)) return -1;
    spec->cap_sample_us = u;
  } else if (arg.rfind("--jobs=", 0) == 0) {
    if (!uint_flag("--jobs", 7, 0, 4096)) return -1;
    spec->exec_jobs = static_cast<uint32_t>(u);
  } else {
    return 0;
  }
  return 1;
}

bool WriteOutput(const std::string& out_path, const std::string& data) {
  if (out_path.empty()) {
    std::fwrite(data.data(), 1, data.size(), stdout);
    return true;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) {
    std::fprintf(stderr, "easectl: cannot write %s\n", out_path.c_str());
    return false;
  }
  return true;
}

// Fetches job `id`'s artifact over `conn` and writes it to out_path/stdout.
int FetchResults(Connection& conn, uint64_t id, const std::string& out_path) {
  std::string error;
  daemon::JsonValue reply;
  if (!RoundTrip(conn, "{\"op\":\"results\",\"id\":" + std::to_string(id) + "}",
                 &reply, &error)) {
    std::fprintf(stderr, "easectl: %s\n", error.c_str());
    return 1;
  }
  const daemon::JsonValue* artifact = reply.Find("artifact");
  if (artifact == nullptr || !artifact->is_string()) {
    std::fprintf(stderr, "easectl: bad results reply\n");
    return 1;
  }
  return WriteOutput(out_path, artifact->AsString()) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  std::vector<std::string> rest;

  tools::FlagDeduper dedupe("easectl");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg.rfind("--", 0) == 0 && !dedupe.Note(arg)) {
      return 2;
    }
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (command.empty() && arg.rfind("--", 0) != 0) {
      command = arg;
    } else {
      rest.push_back(arg);
    }
  }
  if (command.empty()) {
    return UsageError("missing command");
  }

  // --- local one-shot execution (no daemon) ---
  if (command == "run") {
    daemon::JobSpec spec;
    std::string out_path;
    for (const std::string& arg : rest) {
      if (arg.rfind("--out=", 0) == 0) {
        out_path = arg.substr(6);
        continue;
      }
      const int consumed = ParseJobFlag(arg, &spec);
      if (consumed < 0) {
        return 2;
      }
      if (consumed == 0) {
        return UsageError(("unknown run flag '" + arg + "'").c_str());
      }
    }
    // The daemon rejects this combination in ParseJobSpec; `run` skips that parser,
    // so mirror the check rather than tripping the engine's internal assertion.
    if (spec.kind == daemon::JobKind::kExplore && spec.exhaust > 0 && !spec.use_snapshot) {
      return UsageError("--exhaust requires the snapshot engine (drop --no-snapshot)");
    }
    const daemon::JobOutcome outcome = daemon::ExecuteSpec(spec);
    if (!outcome.ok) {
      std::fprintf(stderr, "easectl: job failed: %s\n", outcome.error.c_str());
      return 1;
    }
    std::fprintf(stderr, "easectl: %s %s: %s\n", daemon::ToString(spec.kind),
                 daemon::ContentHash(spec).substr(0, 12).c_str(),
                 outcome.summary.c_str());
    return WriteOutput(out_path, outcome.artifact) ? 0 : 1;
  }

  if (socket_path.empty()) {
    return UsageError("--socket is required");
  }
  Connection conn;
  std::string error;
  if (!conn.Connect(socket_path, &error)) {
    std::fprintf(stderr, "easectl: %s\n", error.c_str());
    return 1;
  }

  if (command == "submit") {
    daemon::JobSpec spec;
    bool wait = false;
    std::string out_path;
    for (const std::string& arg : rest) {
      if (arg == "--wait") {
        wait = true;
        continue;
      }
      if (arg.rfind("--out=", 0) == 0) {
        out_path = arg.substr(6);
        continue;
      }
      const int consumed = ParseJobFlag(arg, &spec);
      if (consumed < 0) {
        return 2;
      }
      if (consumed == 0) {
        return UsageError(("unknown submit flag '" + arg + "'").c_str());
      }
    }
    daemon::JsonValue reply;
    if (!RoundTrip(conn, "{\"op\":\"submit\",\"job\":" + daemon::ToJson(spec) + "}",
                   &reply, &error)) {
      std::fprintf(stderr, "easectl: %s\n", error.c_str());
      return 1;
    }
    uint64_t id = 0;
    const daemon::JsonValue* id_field = reply.Find("id");
    const daemon::JsonValue* cached = reply.Find("cached");
    if (id_field == nullptr || !id_field->GetUint(&id)) {
      std::fprintf(stderr, "easectl: bad submit reply\n");
      return 1;
    }
    std::fprintf(stderr, "easectl: job %llu %s%s\n",
                 static_cast<unsigned long long>(id),
                 daemon::ContentHash(spec).substr(0, 12).c_str(),
                 cached != nullptr && cached->is_bool() && cached->AsBool()
                     ? " (cache hit)"
                     : "");
    if (!wait) {
      return 0;
    }
    // Watch from the beginning of history; the terminal event for this job may
    // already be in it (a cache hit completes before the submit reply).
    if (!RoundTrip(conn, "{\"op\":\"watch\",\"after\":0}", &reply, &error)) {
      std::fprintf(stderr, "easectl: %s\n", error.c_str());
      return 1;
    }
    for (;;) {
      std::string frame;
      daemon::JsonValue doc;
      if (!conn.ReadFrame(&frame, &error) ||
          !daemon::ParseJson(frame, &doc, &error)) {
        std::fprintf(stderr, "easectl: %s\n", error.c_str());
        return 1;
      }
      const daemon::JsonValue* event = doc.Find("event");
      if (event == nullptr) {
        continue;
      }
      uint64_t event_id = 0;
      const daemon::JsonValue* eid = event->Find("id");
      const daemon::JsonValue* state = event->Find("state");
      if (eid == nullptr || !eid->GetUint(&event_id) || event_id != id ||
          state == nullptr || !state->is_string()) {
        continue;
      }
      if (state->AsString() == "failed") {
        const daemon::JsonValue* job_error = event->Find("error");
        std::fprintf(stderr, "easectl: job %llu failed: %s\n",
                     static_cast<unsigned long long>(id),
                     job_error != nullptr && job_error->is_string()
                         ? job_error->AsString().c_str()
                         : "(no message)");
        return 1;
      }
      if (state->AsString() == "done") {
        const daemon::JsonValue* summary = event->Find("summary");
        std::fprintf(stderr, "easectl: job %llu done: %s\n",
                     static_cast<unsigned long long>(id),
                     summary != nullptr && summary->is_string()
                         ? summary->AsString().c_str()
                         : "");
        break;
      }
    }
    if (out_path.empty()) {
      return 0;
    }
    // The watch stream owns this connection now; fetch over a fresh one.
    Connection fetch;
    if (!fetch.Connect(socket_path, &error)) {
      std::fprintf(stderr, "easectl: %s\n", error.c_str());
      return 1;
    }
    return FetchResults(fetch, id, out_path);
  }

  if (command == "metrics") {
    bool prom = false;
    for (const std::string& arg : rest) {
      if (arg == "--prom") {
        prom = true;
      } else {
        return UsageError(("unknown metrics flag '" + arg + "'").c_str());
      }
    }
    daemon::JsonValue reply;
    std::string raw;
    const std::string request =
        prom ? "{\"op\":\"metrics\",\"format\":\"prometheus\"}" : "{\"op\":\"metrics\"}";
    if (!RoundTrip(conn, request, &reply, &error, &raw)) {
      std::fprintf(stderr, "easectl: %s\n", error.c_str());
      return 1;
    }
    if (prom) {
      const daemon::JsonValue* text = reply.Find("text");
      if (text == nullptr || !text->is_string()) {
        std::fprintf(stderr, "easectl: bad metrics reply\n");
        return 1;
      }
      std::fwrite(text->AsString().data(), 1, text->AsString().size(), stdout);
      return 0;
    }
    // The reply embeds the canonical easeio-metrics/1 document verbatim as the
    // last member: {"ok":true,"op":"metrics","metrics":<doc>}. Print just the
    // document, so the output matches a --metrics file dump byte for byte.
    constexpr char kKey[] = "\"metrics\":";
    const size_t pos = raw.find(kKey);
    if (pos == std::string::npos || raw.empty() || raw.back() != '}') {
      std::fprintf(stderr, "easectl: bad metrics reply\n");
      return 1;
    }
    const std::string doc = raw.substr(pos + sizeof(kKey) - 1,
                                       raw.size() - (pos + sizeof(kKey) - 1) - 1);
    std::printf("%s\n", doc.c_str());
    return 0;
  }

  if (command == "status" || command == "cache-stats" || command == "shutdown") {
    if (!rest.empty()) {
      return UsageError(("unknown flag '" + rest.front() + "'").c_str());
    }
    daemon::JsonValue reply;
    std::string raw;
    if (!RoundTrip(conn, "{\"op\":\"" + command + "\"}", &reply, &error, &raw)) {
      std::fprintf(stderr, "easectl: %s\n", error.c_str());
      return 1;
    }
    // The reply is already the user-facing document; print it verbatim.
    std::printf("%s\n", raw.c_str());
    return 0;
  }

  if (command == "watch") {
    uint64_t after = 0;
    for (const std::string& arg : rest) {
      if (arg.rfind("--after=", 0) == 0) {
        if (!tools::ParseUintFlag("easectl", "--after", arg.c_str() + 8, 0,
                                  UINT64_MAX, &after)) {
          return 2;
        }
      } else {
        return UsageError(("unknown watch flag '" + arg + "'").c_str());
      }
    }
    daemon::JsonValue reply;
    if (!RoundTrip(conn,
                   "{\"op\":\"watch\",\"after\":" + std::to_string(after) + "}",
                   &reply, &error)) {
      std::fprintf(stderr, "easectl: %s\n", error.c_str());
      return 1;
    }
    for (;;) {
      std::string frame;
      if (!conn.ReadFrame(&frame, &error)) {
        std::fprintf(stderr, "easectl: %s\n", error.c_str());
        return 1;
      }
      std::printf("%s\n", frame.c_str());
      std::fflush(stdout);
    }
  }

  if (command == "results") {
    uint64_t id = 0;
    bool have_id = false;
    std::string out_path;
    for (const std::string& arg : rest) {
      if (arg.rfind("--id=", 0) == 0) {
        if (!tools::ParseUintFlag("easectl", "--id", arg.c_str() + 5, 1, UINT64_MAX,
                                  &id)) {
          return 2;
        }
        have_id = true;
      } else if (arg.rfind("--out=", 0) == 0) {
        out_path = arg.substr(6);
      } else {
        return UsageError(("unknown results flag '" + arg + "'").c_str());
      }
    }
    if (!have_id) {
      return UsageError("results requires --id=N");
    }
    return FetchResults(conn, id, out_path);
  }

  return UsageError(("unknown command '" + command + "'").c_str());
}
