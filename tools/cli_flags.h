// Shared command-line parsing helpers for the easeio tools.
//
// Every tool takes `--flag=value` arguments; these helpers give them one strict,
// shared implementation: whole-string numeric parsing (no sign, no trailing garbage,
// range-checked — bare strtoull with no end-pointer check used to silently accept
// "7junk" and out-of-range values) and at-most-once flag occurrence (last-one-wins
// duplicates have bitten scripted sweeps before). Violations are usage errors: the
// caller prints usage and exits 2.

#ifndef EASEIO_TOOLS_CLI_FLAGS_H_
#define EASEIO_TOOLS_CLI_FLAGS_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

namespace easeio::tools {

// Parses a base-10 unsigned integer occupying the whole string within [min, max].
// On failure prints an error naming the tool and flag, and returns false.
inline bool ParseUintFlag(const char* tool, const char* flag, const char* s,
                          uint64_t min, uint64_t max, uint64_t* out) {
  // The first character must be a digit: strtoull itself would skip leading
  // whitespace and accept sign prefixes, neither of which belongs in a flag value.
  bool ok = s != nullptr && *s >= '0' && *s <= '9';
  char* end = nullptr;
  unsigned long long v = 0;
  if (ok) {
    errno = 0;
    v = std::strtoull(s, &end, 10);
    ok = errno == 0 && end != s && *end == '\0' && v >= min && v <= max;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "%s: invalid %s value '%s' (expected integer in [%llu, %llu])\n",
                 tool, flag, s == nullptr ? "" : s, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

// Parses a non-negative, finite decimal number occupying the whole string.
inline bool ParseDoubleFlag(const char* tool, const char* flag, const char* s,
                            double* out) {
  // The first character must be a digit or '.': strtod itself would skip leading
  // whitespace and accept sign prefixes plus the "inf"/"nan" words, none of which
  // belongs in a flag value. Hex floats ("0x10") pass that test, so 'x' is banned
  // outright; overflow ("1e999") surfaces as ERANGE.
  bool ok = s != nullptr && ((*s >= '0' && *s <= '9') || *s == '.') &&
            std::strpbrk(s, "xX") == nullptr;
  char* end = nullptr;
  double v = 0.0;
  if (ok) {
    errno = 0;
    v = std::strtod(s, &end);
    ok = errno == 0 && end != s && *end == '\0' && v >= 0;
  }
  if (!ok) {
    std::fprintf(stderr, "%s: invalid %s value '%s'\n", tool, flag,
                 s == nullptr ? "" : s);
    return false;
  }
  *out = v;
  return true;
}

// Tracks "--" flag occurrences so each may appear at most once. The key is the flag
// name alone ("--json", not "--json=a.json"), so `--json=a --json=b` is caught
// rather than resolved last-one-wins.
class FlagDeduper {
 public:
  explicit FlagDeduper(const char* tool) : tool_(tool) {}

  // Call for each "--" argument (callers typically exempt "--help"); returns false
  // and prints the error when the flag was already seen.
  bool Note(const std::string& arg) {
    const std::string key = arg.substr(0, arg.find('='));
    if (!seen_.insert(key).second) {
      std::fprintf(stderr, "%s: duplicated flag '%s'\n", tool_, key.c_str());
      return false;
    }
    return true;
  }

 private:
  const char* tool_;
  std::set<std::string> seen_;
};

}  // namespace easeio::tools

#endif  // EASEIO_TOOLS_CLI_FLAGS_H_
