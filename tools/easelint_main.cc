// easelint — intermittence-safety lint for EaseC programs.
//
// Compiles the program, runs the easelint dataflow analyses (I/O taint propagation,
// stale-on-reexecution, DMA classification audit, Timely feasibility, baseline WAR
// gaps — see src/easec/lint/lint.h for the finding classes), and prints deterministic
// severity-ranked diagnostics. Refutable findings carry a suggested failure schedule;
// --witness replays each suggestion in the simulator and either attaches the
// confirmed counterexample or downgrades the finding to advisory.
//
// Usage:
//   easelint [options] <source.ec>
//   easelint [options] -           # read the program from stdin
//
// Options:
//   --json[=PATH]     emit the machine-readable easeio-lint/1 document instead of
//                     (bare --json) or in addition to (--json=PATH) the text report
//   --lint-v2         also run the full-fixpoint loop/branch finding classes
//                     (taint-loop-carried, timely-loop-stale, war-path-divergent)
//                     and emit the easeio-lint/2 document
//   --witness         replay every suggested failure schedule and record the verdict
//   --certify[=N]     cross-validate the static verdict against exhaustive failure
//                     schedules of at most N failures (default 1, max 2); implies
//                     the witness pass. Exit 1 when the verdict is "unsound".
//   --certify-out=P   write the easeio-lint-certify/1 document to P (default:
//                     printed to stdout after the report when certifying)
//   --jobs=<n>        worker threads for certify trials (0 = hardware concurrency;
//                     the report is byte-identical for any value)
//   --seed=<n>        simulator seed for schedule suggestion / replay (default 1)
//   --off-us=<n>      default dark time per injected failure (default 700)
//   --priv-buffer=<n> DMA privatization budget in bytes (default 4096; 0 disables
//                     the compile-time check)
//   --metrics=<path>  dump run/finding counters to <path> at exit (easeio-metrics/1
//                     JSON, or Prometheus text when the path ends in .prom)
//
// Exit status: 0 = no findings above advisory, 1 = errors or warnings remain,
// 2 = usage error or the program failed to compile.
//
// Each flag may appear at most once; duplicates are usage errors.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli_flags.h"
#include "easec/lint/run.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"

namespace {

using namespace easeio;

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: easelint [--json[=PATH]] [--lint-v2] [--witness] [--certify[=N]]\n"
               "                [--certify-out=PATH] [--jobs=N] [--seed=N] [--off-us=N]\n"
               "                [--priv-buffer=N] [--metrics=PATH] <source.ec | ->\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json_stdout = false;
  std::string json_path;
  std::string certify_path;
  std::string metrics_path;
  std::string input_path;
  easec::lint::LintJob job;
  easec::CompileOptions& compile_options = job.compile_options;
  easec::lint::WitnessOptions& witness_options = job.witness_options;

  tools::FlagDeduper dedupe("easelint");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && arg != "--help") {
      if (!dedupe.Note(arg)) {
        PrintUsage(stderr);
        return 2;
      }
    }
    if (arg == "--json") {
      json_stdout = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
      if (json_path.empty()) {
        std::fprintf(stderr, "easelint: --json= requires a path\n");
        return 2;
      }
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
      if (metrics_path.empty()) {
        std::fprintf(stderr, "easelint: --metrics= requires a path\n");
        return 2;
      }
    } else if (arg == "--lint-v2") {
      job.lint_v2 = true;
    } else if (arg == "--certify") {
      job.certify_exhaust = 1;
    } else if (arg.rfind("--certify=", 0) == 0) {
      uint64_t exhaust = 0;
      if (!tools::ParseUintFlag("easelint", "--certify", arg.c_str() + 10, 1, 2,
                                &exhaust)) {
        return 2;
      }
      job.certify_exhaust = static_cast<uint32_t>(exhaust);
    } else if (arg.rfind("--certify-out=", 0) == 0) {
      certify_path = arg.substr(14);
      if (certify_path.empty()) {
        std::fprintf(stderr, "easelint: --certify-out= requires a path\n");
        return 2;
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      uint64_t jobs = 0;
      if (!tools::ParseUintFlag("easelint", "--jobs", arg.c_str() + 7, 0, 512, &jobs)) {
        return 2;
      }
      job.certify_jobs = static_cast<uint32_t>(jobs);
    } else if (arg == "--witness") {
      job.confirm_witnesses = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!tools::ParseUintFlag("easelint", "--seed", arg.c_str() + 7, 0, UINT64_MAX,
                                &witness_options.seed)) {
        return 2;
      }
    } else if (arg.rfind("--off-us=", 0) == 0) {
      if (!tools::ParseUintFlag("easelint", "--off-us", arg.c_str() + 9, 0, UINT64_MAX,
                                &witness_options.off_us)) {
        return 2;
      }
    } else if (arg.rfind("--priv-buffer=", 0) == 0) {
      uint64_t bytes = 0;
      if (!tools::ParseUintFlag("easelint", "--priv-buffer", arg.c_str() + 14, 0,
                                UINT32_MAX, &bytes)) {
        return 2;
      }
      compile_options.dma_priv_buffer_bytes = static_cast<uint32_t>(bytes);
      witness_options.priv_buffer_bytes = static_cast<uint32_t>(bytes);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "easelint: unknown option '%s' (try --help)\n", arg.c_str());
      return 2;
    } else if (!input_path.empty()) {
      std::fprintf(stderr, "easelint: more than one input file\n");
      PrintUsage(stderr);
      return 2;
    } else {
      input_path = arg;
    }
  }
  if (input_path.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  if (!certify_path.empty() && job.certify_exhaust == 0) {
    std::fprintf(stderr, "easelint: --certify-out requires --certify\n");
    return 2;
  }

  job.source_name = input_path;
  if (input_path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    job.source = buf.str();
    job.source_name = "<stdin>";
  } else {
    std::ifstream in(input_path);
    if (!in) {
      std::fprintf(stderr, "easelint: cannot open %s\n", input_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    job.source = buf.str();
  }

  const easec::lint::LintJobResult result = easec::lint::ExecuteLintJob(job);
  if (!result.compiled) {
    std::fprintf(stderr, "%s", result.compile_errors.c_str());
    return 2;
  }

  if (json_stdout) {
    std::printf("%s\n", result.json.c_str());
  } else {
    std::printf("%s", result.text.c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out || !(out << result.json << "\n")) {
      std::fprintf(stderr, "easelint: cannot write %s\n", json_path.c_str());
      return 2;
    }
  }
  if (result.has_certify) {
    if (certify_path.empty()) {
      std::printf("%s\n", result.certify_json.c_str());
    } else {
      std::ofstream out(certify_path, std::ios::binary);
      if (!out || !(out << result.certify_json << "\n")) {
        std::fprintf(stderr, "easelint: cannot write %s\n", certify_path.c_str());
        return 2;
      }
    }
  }
  if (!metrics_path.empty()) {
    obs::Registry metrics;
    metrics.Add(metrics.Counter("easelint_runs"), 1);
    metrics.Add(metrics.Counter("easelint_findings", {{"severity", "error"}}),
                result.lint.errors);
    metrics.Add(metrics.Counter("easelint_findings", {{"severity", "warning"}}),
                result.lint.warnings);
    metrics.Add(metrics.Counter("easelint_findings", {{"severity", "advisory"}}),
                result.lint.advisories);
    metrics.Add(metrics.Counter("easelint_cfg_nodes"), result.lint.analysis.cfg_nodes);
    metrics.Add(metrics.Counter("easelint_cfg_edges"), result.lint.analysis.cfg_edges);
    metrics.Add(metrics.Counter("easelint_fixpoint_iterations"),
                result.lint.analysis.fixpoint_iterations);
    metrics.Add(metrics.Counter("easelint_fixpoint_joins"),
                result.lint.analysis.fixpoint_joins);
    metrics.Add(metrics.Counter("easelint_lattice_widenings"),
                result.lint.analysis.lattice_widenings);
    if (result.has_certify) {
      metrics.Add(metrics.Counter("easelint_certify_trials"), result.certify.trials);
      metrics.Add(metrics.Counter("easelint_certify_violations"),
                  result.certify.violations);
      metrics.Add(
          metrics.Counter("easelint_certify_verdicts", {{"verdict", result.certify.verdict}}),
          1);
    }
    std::string metrics_error;
    if (!obs::WriteMetricsFile(metrics, metrics_path, &metrics_error)) {
      std::fprintf(stderr, "easelint: %s\n", metrics_error.c_str());
      return 2;
    }
  }
  if (result.has_certify && result.certify.verdict == "unsound") {
    return 1;  // the static analysis missed a hazard the exhaust run demonstrated
  }
  return result.has_findings ? 1 : 0;
}
