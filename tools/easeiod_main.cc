// easeiod: the fleet simulation daemon.
//
// Owns a job queue of simulation requests (sweep / explore / lint / trace), shards
// them across a worker pool, and serves many concurrent clients over a Unix domain
// socket speaking newline-delimited JSON (protocol grammar in DESIGN.md §12). Every
// finished job's artifact enters a persistent content-addressed result cache — an
// identical resubmission is answered from the cache with byte-identical bytes and no
// simulation. SIGTERM/SIGINT drain gracefully: in-flight jobs finish, the queue is
// persisted next to the cache and resubmitted on the next start.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "cli_flags.h"
#include "daemon/cache.h"
#include "daemon/runner.h"
#include "daemon/server.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"

namespace {

constexpr char kUsage[] =
    "usage: easeiod --socket=PATH [options]\n"
    "\n"
    "  --socket=PATH          Unix socket to listen on (required)\n"
    "  --cache-dir=DIR        result cache directory (default: easeiod-cache)\n"
    "  --cache-cap-bytes=N    LRU eviction threshold; 0 = unbounded (default: 256 MiB)\n"
    "  --workers=N            worker threads; 0 = hardware concurrency (default: 0)\n"
    "  --results-dir=DIR      also export finished artifacts here (default: off)\n"
    "  --metrics-period-ms=N  stream {\"metrics\":...} frames to watch subscribers\n"
    "                         every N ms; 0 = on request only (default: 0)\n"
    "  --metrics=PATH         also dump the registry to PATH at exit\n"
    "                         (easeio-metrics/1 JSON, or Prometheus text if PATH\n"
    "                         ends in .prom)\n"
    "\n"
    "Clients connect with easectl. SIGTERM drains: in-flight jobs finish, queued\n"
    "jobs persist to <cache-dir>/queue.json and resume on the next start.\n";

std::atomic<bool> g_shutdown{false};
easeio::daemon::Server* g_server = nullptr;

void OnSignal(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
  if (g_server != nullptr) {
    g_server->WakeLoop();
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace easeio;

  std::string socket_path;
  std::string cache_dir = "easeiod-cache";
  uint64_t cache_cap_bytes = 256ull * 1024 * 1024;
  uint64_t workers = 0;
  std::string results_dir;
  uint64_t metrics_period_ms = 0;
  std::string metrics_path;

  tools::FlagDeduper dedupe("easeiod");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (!dedupe.Note(arg)) {
      return 2;
    }
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      cache_dir = arg.substr(12);
    } else if (arg.rfind("--cache-cap-bytes=", 0) == 0) {
      if (!tools::ParseUintFlag("easeiod", "--cache-cap-bytes", arg.c_str() + 18, 0,
                                UINT64_MAX, &cache_cap_bytes)) {
        return 2;
      }
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!tools::ParseUintFlag("easeiod", "--workers", arg.c_str() + 10, 0, 4096,
                                &workers)) {
        return 2;
      }
    } else if (arg.rfind("--results-dir=", 0) == 0) {
      results_dir = arg.substr(14);
    } else if (arg.rfind("--metrics-period-ms=", 0) == 0) {
      if (!tools::ParseUintFlag("easeiod", "--metrics-period-ms", arg.c_str() + 20, 0,
                                3'600'000, &metrics_period_ms)) {
        return 2;
      }
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
      if (metrics_path.empty()) {
        std::fprintf(stderr, "easeiod: --metrics= requires a path\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "easeiod: unknown argument '%s'\n%s", arg.c_str(), kUsage);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "easeiod: --socket is required\n%s", kUsage);
    return 2;
  }

  daemon::ResultCache cache(cache_dir, cache_cap_bytes);

  // One registry for the daemon's lifetime. All registration happens in the
  // runner and server constructors, before Start() spawns workers.
  obs::Registry metrics;

  daemon::JobRunner::Options runner_options;
  runner_options.workers = static_cast<uint32_t>(workers);
  runner_options.results_dir = results_dir;
  runner_options.queue_path = cache_dir + "/queue.json";
  runner_options.metrics = &metrics;

  daemon::Server::Options server_options;
  server_options.socket_path = socket_path;
  server_options.shutdown_flag = &g_shutdown;
  server_options.metrics = &metrics;
  server_options.metrics_period_ms = metrics_period_ms;

  // The server must exist before the runner starts: a resubmitted persisted queue
  // emits events immediately and the sink forwards them to the server's queue.
  daemon::Server* server = nullptr;
  daemon::JobRunner runner(&cache, runner_options,
                           [&server](const daemon::JobEvent& event) {
                             if (server != nullptr) {
                               server->OnJobEvent(event);
                             }
                           });
  daemon::Server server_obj(&runner, &cache, server_options);
  server = &server_obj;

  std::string error;
  if (!server_obj.Listen(&error)) {
    std::fprintf(stderr, "easeiod: %s\n", error.c_str());
    return 1;
  }

  g_server = &server_obj;
  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // dead clients are detected by write errors, not kills

  runner.Start();
  std::fprintf(stderr, "easeiod: listening on %s (cache %s)\n", socket_path.c_str(),
               cache_dir.c_str());
  server_obj.Run();

  std::fprintf(stderr, "easeiod: draining (%zu running, %zu queued)\n",
               runner.RunningCount(), runner.QueuedCount());
  runner.Stop();
  g_server = nullptr;
  if (!metrics_path.empty()) {
    std::string metrics_error;
    if (!obs::WriteMetricsFile(metrics, metrics_path, &metrics_error)) {
      std::fprintf(stderr, "easeiod: %s\n", metrics_error.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "easeiod: shut down cleanly\n");
  return 0;
}
