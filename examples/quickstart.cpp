// Quickstart: run a Timely-annotated sensing application on the EaseIO runtime under
// emulated power failures, and read the run statistics.
//
//   $ build/examples/quickstart
//
// Walkthrough:
//   1. build a simulated intermittent device (MSP430-class: FRAM + SRAM + sensors);
//   2. bind the EaseIO runtime and declare an application: one task that samples the
//      temperature sensor 16 times through _call_IO with Timely(10 ms) semantics;
//   3. run it under the paper's failure emulation (soft reset every U[5,20] ms);
//   4. print what EaseIO did: how many reads were skipped after reboots because their
//      freshness window still held, and the app/overhead/wasted-work decomposition.

#include <cstdio>

#include "core/easeio_runtime.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace k = easeio::kernel;
namespace sim = easeio::sim;

int main() {
  // 1. The device: default MSP430FR5994-flavoured configuration, failures from a timer
  //    firing uniformly in [5, 20] ms (Section 5.1 of the paper).
  sim::UniformTimerScheduler failures(5000, 20000, 200, 1000);
  sim::DeviceConfig config;
  config.seed = 3;
  sim::Device dev(config, failures);

  // 2. The runtime and the application.
  k::NvManager nv(dev.mem());
  easeio::rt::EaseioRuntime runtime;
  runtime.Bind(dev, nv);

  constexpr uint32_t kSamples = 16;
  const k::NvSlotId readings = nv.Define("readings", kSamples * 2);
  const k::NvSlotId average = nv.Define("average", 2);

  k::TaskGraph graph;
  k::TaskId t_sense = 0;

  // The sensing task: each loop iteration is a _call_IO lane with Timely semantics —
  // after a power failure, only samples older than 10 ms are re-read.
  const k::IoSiteId temp_site = [&] {
    k::IoSiteDesc desc;
    desc.task = 0;  // the id Add() below will return
    desc.name = "quickstart.temp";
    desc.lanes = kSamples;
    desc.sem = k::IoSemantic::kTimely;
    desc.window_us = 10'000;
    return runtime.RegisterIoSite(desc);
  }();

  t_sense = graph.Add("sense", [&](k::TaskCtx& ctx) {
    int32_t acc = 0;
    for (uint32_t i = 0; i < kSamples; ++i) {
      const int16_t v = ctx.CallIo(temp_site, i, [](k::TaskCtx& c) {
        return c.dev().temp().Read(c.dev());
      });
      ctx.NvStoreI16(readings, v, 2 * i);
      acc += v;
      ctx.Cpu(50);  // filtering work per sample
    }
    ctx.NvStoreI16(average, static_cast<int16_t>(acc / kSamples));
    return k::kTaskDone;
  });
  runtime.DeclareTaskRegions(t_sense, {{}});

  // 3. Run.
  k::Engine engine;
  const k::RunResult result = engine.Run(dev, runtime, nv, graph, t_sense);

  // 4. Report.
  std::printf("completed:        %s\n", result.completed ? "yes" : "no");
  std::printf("power failures:   %llu\n",
              static_cast<unsigned long long>(result.stats.power_failures));
  std::printf("sensor reads:     %llu (skipped by Timely semantics: %llu, redundant: %llu)\n",
              static_cast<unsigned long long>(result.stats.io_executions),
              static_cast<unsigned long long>(result.stats.io_skipped),
              static_cast<unsigned long long>(result.stats.io_redundant));
  std::printf("time:             app %.2f ms + overhead %.2f ms + wasted %.2f ms\n",
              result.stats.app_us / 1e3, result.stats.overhead_us / 1e3,
              result.stats.wasted_us / 1e3);
  std::printf("energy:           %.1f uJ\n", result.energy_j * 1e6);
  std::printf("average reading:  %.1f (tenths of a degree)\n",
              static_cast<double>(dev.mem().ReadI16(nv.slot(average).addr)));
  return result.completed ? 0 : 1;
}
