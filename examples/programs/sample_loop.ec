/* Section 6, "Re-execution Semantics in Loops": a repeat loop over a Timely sensor
 * read gets a lane of lock flags per iteration, so after a reboot only the samples
 * whose freshness window expired are re-read.
 *
 *   build/tools/easec --emit-analysis examples/programs/sample_loop.ec
 *   build/tools/easec --run=easeio --seed=3 examples/programs/sample_loop.ec
 */

__nv int16 samples[16];
__nv int16 average;

task collect() {
  int16 acc = 0;
  repeat (i, 16) {
    int16 v = _call_IO(Temp(), "Timely", 10);
    samples[i] = v;
    acc = acc + v;
    delay(120);
  }
  average = acc / 16;
  end_task;
}
