/* Figure 2c: the unsafe-branch bug. The sensed temperature decides which persistent
 * flag is set; without EaseIO's recorded-result restore, a re-executed read can take
 * the other branch and leave BOTH flags set.
 *
 *   build/tools/easec --run=alpaca --seed=5 examples/programs/unsafe_branch.ec
 *   build/tools/easec --run=easeio --seed=5 examples/programs/unsafe_branch.ec
 *
 * Compare the final __nv state (stdy/alarm) across seeds and runtimes.
 */

__nv int16 stdy;
__nv int16 alarm;

task init() {
  stdy = 0;
  alarm = 0;
  next_task(sense);
}

task sense() {
  int16 temp = _call_IO(Temp(), "Single");
  if (temp < 100) {      /* 10.0 degrees, in tenths */
    stdy = 1;
  } else {
    alarm = 1;
  }
  delay(7000);           /* the actuation window a failure can land in */
  end_task;
}
