/* Weather station in EaseC — the paper's Figure 3/9 pattern.
 *
 * Compile and inspect the front-end's transformation:
 *   build/tools/easec --emit-transform examples/programs/weather.ec
 * Run under emulated power failures on each runtime:
 *   build/tools/easec --run=easeio examples/programs/weather.ec
 *   build/tools/easec --run=alpaca examples/programs/weather.ec
 */

__nv int16 temp_out;
__nv int16 humd_out;
__nv int16 image[64];
__nv int16 feature;
__nv int16 payload[4];
__sram int16 stage[64];

task sense() {
  int16 temp;
  int16 humd;
  /* Humidity must follow temperature promptly; the pair is captured once. */
  _IO_block_begin("Single");
  temp = _call_IO(Temp(), "Timely", 10);
  humd = _call_IO(Humd(), "Always");
  _IO_block_end;
  temp_out = temp;
  humd_out = humd;
  delay(2000);          /* dew-point smoothing */
  next_task(capture);
}

task capture() {
  _call_IO(Capture(image, 128), "Single");
  delay(3000);          /* exposure statistics */
  next_task(classify);
}

task classify() {
  /* Stage the frame into LEA RAM; the runtime classifies this NV->V transfer as
   * Private and keeps a pristine copy for re-execution. */
  _DMA_copy(&stage[0], &image[0], 128);
  int16 acc = 0;
  int16 i = 0;
  while (i < 64) {
    acc = acc + stage[i];
    i = i + 1;
  }
  feature = acc;
  next_task(send_report);
}

task send_report() {
  payload[0] = temp_out;
  payload[1] = humd_out;
  payload[2] = feature;
  _call_IO(Send(payload, 8), "Single");
  delay(1500);          /* transmission log */
  end_task;
}
