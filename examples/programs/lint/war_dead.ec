/* Lint fixture: branch-divergent WAR on a dynamically dead path (easeio-lint/2).
 *
 * The else branch reads `floor` with no write before it on that path, and the
 * trailing statement writes it: textually the then-branch write comes first, so
 * the baseline WAR table never privatizes `floor`, and the fixpoint flags the
 * divergent path (war-path-divergent). But `mode` is pinned to 0 in boot, so the
 * read path never executes: the witness replay cannot demonstrate the hazard and
 * the finding must be downgraded to an advisory — the corpus case for the
 * refuted-witness path.
 *
 *   build/tools/easelint examples/programs/lint/war_dead.ec              # clean
 *   build/tools/easelint --lint-v2 --witness examples/programs/lint/war_dead.ec
 */

__nv int16 mode;
__nv int16 floor;
__nv int16 drop;

task boot() {
  mode = 0;
  floor = 40;
  next_task(filter);
}

task filter() {
  if (mode < 1) {
    floor = 70;
  } else {
    drop = floor;       /* exposed read: statically live, dynamically dead */
  }
  floor = floor - 5;
  end_task;
}
