/* Lint fixture: Timely window provably too small for the loop lap (easeio-lint/2).
 *
 * Same shape as loop_taint — consume at the top, re-sample at the bottom — but an
 * 8 ms settling delay opens every iteration, so the cheapest path from the Timely
 * (2 ms) producer around the back edge to the consumer costs over 8000 cycles:
 * every cross-iteration consumption is already stale (timely-loop-stale, on top of
 * the underlying taint-loop-carried). The v1 cost walk only bounds the call-to-
 * commit tail, which is tiny here — the staleness lives entirely on the loop lap,
 * which no linear walk prices.
 *
 *   build/tools/easelint examples/programs/lint/loop_timely.ec           # clean
 *   build/tools/easelint --lint-v2 --witness examples/programs/lint/loop_timely.ec
 */

__nv int16 reading;

task monitor() {
  int16 last = 0;
  int16 avg = 0;
  int16 i = 0;
  while (i < 3) {
    delay(8000);          /* sensor settling dominates the lap */
    avg = last + _call_IO(Humd(), "Single");
    reading = avg;
    last = _call_IO(Temp(), "Timely", 2);
    i = i + 1;
  }
  end_task;
}
