/* Lint fixture: infeasible Timely window and a task that outruns the capacitor.
 *
 * acquire: 5 ms of smoothing separate the Timely(2 ms) read from task commit, so the
 * reading is stale at every reboot past the call — the annotation degrades to Always
 * and repeated failures livelock (timely-infeasible, refutable: fail once the window
 * has lapsed and watch the site re-execute).
 *
 * grind: 1200 x 12 ms of compute needs ~14.4M cycles straight-line, more than a full
 * 1 mF capacitor sustains (~13.9M cycles at 1 MHz); on harvested energy the task can
 * never commit (task-exceeds-on-time).
 *
 *   build/tools/easelint --witness examples/programs/lint/timely_window.ec
 */

__nv int16 sample;
__nv int16 done;

task acquire() {
  int16 t = _call_IO(Temp(), "Timely", 2);
  sample = t;
  delay(5000);
  next_task(grind);
}

task grind() {
  repeat (i, 1200) {
    delay(12000);
  }
  done = 1;
  end_task;
}
