/* Lint fixture: cross-task taint and region escape.
 *
 * The report task transmits `reading`, produced by a Timely(1 ms) read in the sense
 * task — and then loops back to sense for the next round. The intra-task dependence
 * rule never sees the task boundary, so nothing keeps the transmitted value inside
 * its freshness window (taint-cross-task, refutable: park a reboot between sense's
 * commit and the Send).
 *
 * Separately, sense stores the Single humidity result into `archive` *after* the
 * _DMA_copy region boundary: the store lands in a later privatization region than
 * its producer (taint-region-escape).
 *
 *   build/tools/easelint examples/programs/lint/taint_cross_task.ec
 *   build/tools/easelint --witness examples/programs/lint/taint_cross_task.ec
 */

__nv int16 reading;
__nv int16 w;
__nv int16 archive;
__nv int16 pkt[4];
__nv int16 rounds;
__sram int16 scratch[4];

task boot() {
  rounds = 0;
  next_task(sense);
}

task sense() {
  int16 t = _call_IO(Temp(), "Timely", 1);
  reading = t;
  int16 h = _call_IO(Humd(), "Single");
  w = h;
  _DMA_copy(&scratch[0], &pkt[0], 8);
  archive = w;
  next_task(report);
}

task report() {
  pkt[0] = reading;
  _call_IO(Send(pkt, 8), "Single");
  rounds = rounds + 1;
  if (rounds < 3) {
    next_task(sense);
  }
  end_task;
}
