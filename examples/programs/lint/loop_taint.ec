/* Lint fixture: loop-carried taint through a local (easeio-lint/2 only).
 *
 * Each iteration consumes `last` at the top of the body and re-samples it at the
 * bottom: the Timely(5 ms) reading a Single consumer folds in was produced in the
 * *previous* iteration, across the loop back edge. A linear table pass walks the
 * body once in textual order — consumer before producer — and sees no flow at all;
 * only the back-edge fixpoint carries the taint around (taint-loop-carried). The
 * window is generous, so the lap itself is feasible: /1 must stay silent.
 *
 *   build/tools/easelint examples/programs/lint/loop_taint.ec            # clean
 *   build/tools/easelint --lint-v2 --witness examples/programs/lint/loop_taint.ec
 */

__nv int16 reading;

task monitor() {
  int16 last = 0;
  int16 avg = 0;
  int16 i = 0;
  while (i < 4) {
    avg = last + _call_IO(Humd(), "Single");
    reading = avg;
    last = _call_IO(Temp(), "Timely", 5);
    i = i + 1;
  }
  end_task;
}
