/* Lint fixture: every DMA classification hazard the audit flags. None of these are
 * refutable by a failure schedule — they are static contract violations:
 *
 *   - Exclude on an NV -> volatile copy whose source the CPU writes
 *     (dma-exclude-unsafe: privatization would have protected re-execution);
 *   - a run-time byte count on an NV -> NV copy (dma-bytes-nonliteral: the
 *     privatization-budget check cannot see it);
 *   - source and destination ranges of one variable that intersect (dma-overlap);
 *   - a literal range walking off the end of its array (dma-out-of-bounds).
 *
 *   build/tools/easelint examples/programs/lint/dma_audit.ec
 */

__nv int16 table[8];
__nv int16 ring[8];
__nv int16 big[16];
__nv int16 small[4];
__sram int16 lea[8];

task init() {
  table[0] = 5;
  next_task(move);
}

task move() {
  _DMA_copy(&lea[0], &table[0], 16, Exclude);
  int16 n = 8;
  _DMA_copy(&ring[0], &table[0], n);
  _DMA_copy(&ring[2], &ring[0], 8);
  _DMA_copy(&small[0], &big[0], 32);
  end_task;
}
