/* Lint fixture: loop control that is safe under both schemas.
 *
 * `total` reads before it writes textually, so the baseline WAR table already
 * privatizes it — the fixpoint's exposed-read query must not re-report it. The
 * sensor pair produces and consumes within one iteration, textually in order, so
 * the forward solution already covers the flow and no loop-carried finding fires.
 * Both easelint and easelint --lint-v2 must exit clean.
 *
 *   build/tools/easelint --lint-v2 examples/programs/lint/clean_loop.ec
 */

__nv int16 total;
__nv int16 pkt[2];

task accumulate() {
  int16 t = 0;
  int16 i = 0;
  while (i < 8) {
    t = _call_IO(Temp(), "Timely", 5);
    pkt[0] = t;
    _call_IO(Send(pkt, 4), "Single");
    total = total + 1;
    i = i + 1;
  }
  end_task;
}
