/* Lint fixture: the clean control. Two tasks, correctly annotated Single reads,
 * no DMA, no cross-task freshness contract — easelint must report zero findings
 * (and exit 0), pinning the false-positive rate of every analysis.
 *
 *   build/tools/easelint examples/programs/lint/clean_control.ec
 */

__nv int16 t_out;
__nv int16 p_out;

task sample() {
  int16 t = _call_IO(Temp(), "Single");
  t_out = t;
  next_task(finish);
}

task finish() {
  int16 p = _call_IO(Pres(), "Single");
  p_out = p;
  end_task;
}
