/* Lint fixture: stale Always result behind a locked Single consumer, and a Single
 * annotation demoted by an enclosing Always block.
 *
 * monitor: the Always pressure read flows into the Single Send — but through a
 * _DMA_copy, which the dependence analysis does not trace. A reboot right after the
 * Send re-executes the read (its value drifts), re-commits raw/pkt, yet the locked
 * Send never re-transmits: committed NVM and emitted output disagree
 * (stale-always-into-single, refutable).
 *
 * cage: the Single temperature read sits under an outermost Always block; scope
 * precedence forces the block, so the annotation is silently void (scope-demotion,
 * refutable: any reboot past the call re-executes it).
 *
 *   build/tools/easelint --witness examples/programs/lint/stale_always.ec
 */

__nv int16 raw[2];
__nv int16 pkt[2];
__nv int16 probe;

task monitor() {
  int16 level = _call_IO(Pres(), "Always");
  raw[0] = level;
  _DMA_copy(&pkt[0], &raw[0], 2);
  _call_IO(Send(pkt, 4), "Single");
  next_task(cage);
}

task cage() {
  int16 t = 0;
  _IO_block_begin("Always");
  t = _call_IO(Temp(), "Single");
  _IO_block_end;
  probe = t;
  end_task;
}
