/* Lint fixture: the POR-collapsible control. Two straight-line tasks, a Single
 * read staged through SRAM scratch only — no durable store, no Timely window,
 * no sensed branch, no cross-region taint. The fixpoint proves every region
 * condition absent, so `--certify` may fold failure instants that follow pure
 * events (task begins, skips) onto their durable predecessors: the report must
 * show por_collapsed=true with collapsed_instants > 0 and stay clean-certified.
 *
 *   build/tools/easelint --lint-v2 --certify examples/programs/lint/clean_relay.ec
 */

__sram int16 scratch[2];
__sram int16 report[2];

task relay() {
  int16 t = _call_IO(Temp(), "Single");
  scratch[0] = t;
  _call_IO(Send(scratch, 2), "Single");
  next_task(ship);
}

task ship() {
  int16 p = _call_IO(Pres(), "Single");
  report[0] = p;
  _call_IO(Send(report, 2), "Single");
  end_task;
}
