/* Lint fixture: a write-after-read hazard the baseline compilers cannot see.
 *
 * roll reads history[0] and then overwrites it by DMA. Alpaca's WAR analysis only
 * sees CPU accesses, so `history` is never privatized: a reboot after the transfer
 * re-executes the task against the *new* value and commits out = 42 instead of the
 * golden 7 (war-dma-invisible, refutable under the alpaca runtime).
 *
 *   build/tools/easelint --witness examples/programs/lint/war_dma.ec
 */

__nv int16 history[2];
__nv int16 latest[2];
__nv int16 out;

task boot() {
  history[0] = 7;
  latest[0] = 42;
  next_task(roll);
}

task roll() {
  int16 prev = history[0];
  _DMA_copy(&history[0], &latest[0], 4);
  out = prev;
  end_task;
}
