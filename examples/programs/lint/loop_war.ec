/* Lint fixture: loop-carried WAR invisible to textual order (easeio-lint/2 only).
 *
 * `cache` is written under a branch and read unconditionally afterwards. Textually
 * the write comes first, so the baseline compilers' read-before-write scan never
 * privatizes it — but on an iteration whose branch is not taken the read is
 * exposed, and the *next* iteration's write lands after it: a reboot between that
 * write and commit re-executes the exposed read against the new value
 * (war-path-divergent). `trend` carries the same loop shape but reads before it
 * writes textually, so the table privatizes it and the fixpoint stays silent.
 *
 *   build/tools/easelint examples/programs/lint/loop_war.ec              # clean
 *   build/tools/easelint --lint-v2 --witness examples/programs/lint/loop_war.ec
 */

__nv int16 cache;
__nv int16 trend;

task trend_track() {
  int16 fresh = 0;
  int16 i = 0;
  while (i < 4) {
    fresh = _call_IO(Temp(), "Always");
    if (fresh > 80) {
      cache = fresh;
    }
    trend = trend + cache;
    i = i + 1;
  }
  end_task;
}
