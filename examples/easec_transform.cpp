// EaseC compiler front-end demo: compile an annotated source file, print the
// source-to-source transformation (the Figure 5 artifact), then execute the compiled
// program on the EaseIO runtime under emulated power failures.
//
//   $ build/examples/easec_transform            # uses the built-in sample program
//   $ build/examples/easec_transform prog.ec    # compiles your own EaseC source

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/easeio_runtime.h"
#include "easec/program.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace {

constexpr const char* kSampleProgram = R"(/* Figure 3: timely temperature + humidity
   under a Single block, with a data-dependent send. */
__nv int16 temp_out;
__nv int16 humd_out;
__nv int16 payload[4];

task sense() {
  int16 temp;
  int16 humd;
  _IO_block_begin("Single");
  temp = _call_IO(Temp(), "Timely", 10);
  humd = _call_IO(Humd(), "Always");
  _IO_block_end;
  temp_out = temp;
  humd_out = humd;
  delay(2500);
  next_task(report);
}

task report() {
  payload[0] = temp_out;
  payload[1] = humd_out;
  _call_IO(Send(payload, 8), "Single");
  delay(1500);
  end_task;
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace easeio;

  std::string source = kSampleProgram;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  std::printf("=== Input program ===\n%s\n", source.c_str());

  const easec::CompileResult compiled = easec::Compile(source);
  if (!compiled.ok) {
    std::fprintf(stderr, "compile errors:\n%s", compiled.errors.c_str());
    return 1;
  }

  std::printf("=== Source-to-source transformation (compiler front-end output) ===\n%s\n",
              compiled.transformed_source.c_str());

  // Execute on the EaseIO runtime under emulated failures.
  sim::UniformTimerScheduler failures(5000, 20000, 200, 1000);
  sim::DeviceConfig config;
  config.seed = 11;
  sim::Device dev(config, failures);
  kernel::NvManager nv(dev.mem());
  rt::EaseioRuntime runtime;
  runtime.Bind(dev, nv);
  easec::InstantiatedProgram prog = easec::Instantiate(compiled, dev, runtime, nv);

  kernel::Engine engine;
  const kernel::RunResult result = engine.Run(dev, runtime, nv, prog.graph, prog.entry);

  std::printf("=== Execution on EaseIO (seed 11, failures ~ U[5,20] ms) ===\n");
  std::printf("completed: %s, power failures: %llu, I/O executed: %llu, skipped: %llu,\n"
              "radio packets: %llu, time: %.2f ms (app %.2f + overhead %.2f + wasted %.2f)\n",
              result.completed ? "yes" : "no",
              static_cast<unsigned long long>(result.stats.power_failures),
              static_cast<unsigned long long>(result.stats.io_executions),
              static_cast<unsigned long long>(result.stats.io_skipped),
              static_cast<unsigned long long>(dev.radio().sends()),
              result.stats.TotalUs() / 1e3, result.stats.app_us / 1e3,
              result.stats.overhead_us / 1e3, result.stats.wasted_us / 1e3);
  return result.completed ? 0 : 1;
}
