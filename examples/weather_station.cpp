// Weather station: the paper's flagship multi-task application (Figure 9) — sense
// (I/O block) -> capture -> 5-layer DNN -> send — executed on all four runtime
// configurations under the same emulated failure schedule, with an end-to-end
// consistency check (the stored classification must match a reference evaluation of
// the stored image through the stored weights).
//
//   $ build/examples/weather_station [seed]

#include <cstdio>
#include <cstdlib>

#include "report/experiment.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace easeio;

  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  std::printf("Weather classification, seed %llu, failures ~ U[5,20] ms\n\n",
              static_cast<unsigned long long>(seed));

  report::TextTable table({"Runtime", "Time (ms)", "App", "Overhead", "Wasted", "Failures",
                           "I/O skipped", "Sends", "Consistent"});
  for (apps::RuntimeKind kind :
       {apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk, apps::RuntimeKind::kEaseio,
        apps::RuntimeKind::kEaseioOp}) {
    report::ExperimentConfig config;
    config.runtime = kind;
    config.app = report::AppKind::kWeather;
    config.seed = seed;
    config.app_options.single_buffer = false;
    const report::ExperimentResult r = report::RunExperiment(config);
    table.AddRow({ToString(kind), report::Fmt(r.run.stats.TotalUs() / 1e3, 2),
                  report::Fmt(r.run.stats.app_us / 1e3, 2),
                  report::Fmt(r.run.stats.overhead_us / 1e3, 2),
                  report::Fmt(r.run.stats.wasted_us / 1e3, 2),
                  std::to_string(r.run.stats.power_failures),
                  std::to_string(r.run.stats.io_skipped + r.run.stats.dma_skipped),
                  std::to_string(r.radio_sends), r.consistent ? "yes" : "NO"});
  }
  table.Print();

  std::printf(
      "\nNotes: the baselines re-execute interrupted peripheral work (including the\n"
      "radio send — watch the Sends column exceed 1 on failure-heavy seeds), while\n"
      "EaseIO's Single/Timely semantics skip completed operations and restore their\n"
      "recorded results.\n");
  return 0;
}
