// FIR pipeline: demonstrates the DMA write-after-read hazard of Figure 2b / Figure 12.
//
// The filter reads its input signal from a non-volatile buffer via DMA, runs the LEA,
// and writes the result back over the same buffer via DMA. Under Alpaca/InK, a power
// failure after the output DMA makes the re-executed input DMA read *filtered* data —
// silent corruption. EaseIO classifies the input DMA as Private (two-phase copy
// through its privatization buffer) and the output DMA as Single, which removes the
// hazard entirely.
//
//   $ build/examples/fir_pipeline [runs]

#include <cstdio>
#include <cstdlib>

#include "report/experiment.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace easeio;

  const uint32_t runs = argc > 1 ? static_cast<uint32_t>(std::strtoul(argv[1], nullptr, 10))
                                 : 200;
  std::printf("FIR filter with a shared input/output NVM buffer, %u runs per runtime\n\n",
              runs);

  report::TextTable table(
      {"Runtime", "Correct", "Corrupted", "Mean time (ms)", "DMA skipped/run"});
  for (apps::RuntimeKind kind :
       {apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk, apps::RuntimeKind::kEaseio,
        apps::RuntimeKind::kEaseioOp}) {
    report::ExperimentConfig config;
    config.runtime = kind;
    config.app = report::AppKind::kFir;
    const report::Aggregate agg = report::RunSweep(config, runs);
    table.AddRow({ToString(kind), std::to_string(agg.correct), std::to_string(agg.incorrect),
                  report::Fmt(agg.total_us / 1e3, 2),
                  report::Fmt(static_cast<double>(agg.io_skipped) / runs, 2)});
  }
  table.Print();

  std::printf(
      "\nEvery corrupted run is a real idempotence bug: the task re-ran a completed\n"
      "NVM-to-SRAM DMA whose source had already been overwritten by the output DMA.\n");
  return 0;
}
