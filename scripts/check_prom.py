#!/usr/bin/env python3
"""Grammar checker for the Prometheus text exposition easeio emits.

Validates the subset of the Prometheus text format that MetricsToPrometheus
(src/obs/metrics_export.cc) produces, strictly:

  * every non-comment line is `name[{labels}] value`;
  * metric and label names match the Prometheus identifier grammars;
  * label values are double-quoted with only \\ \" \n escapes;
  * every sample name was declared by a preceding `# TYPE` line, each name is
    declared exactly once, and histogram samples use only the _bucket/_sum/_count
    suffixes of their declared name;
  * per histogram label set: bucket counts are monotone nondecreasing over
    increasing `le`, the final bucket is le="+Inf", and _count equals it;
  * counter and histogram values are non-negative integers (easeio metrics are
    integer-valued by design — DESIGN.md §15).

Usage: check_prom.py FILE...   (exits non-zero on the first malformed file)
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
UINT_RE = re.compile(r"^(?:0|[1-9][0-9]*)$")
INT_RE = re.compile(r"^-?(?:0|[1-9][0-9]*)$")


class Malformed(Exception):
    pass


def parse_labels(raw, lineno):
    """Parses `{k="v",...}` (or empty string) into a dict; raises on bad grammar."""
    if raw == "":
        return {}
    if not (raw.startswith("{") and raw.endswith("}")):
        raise Malformed(f"line {lineno}: bad label block {raw!r}")
    labels = {}
    pos = 1
    while pos < len(raw) - 1:
        m = LABEL_NAME_RE.match(raw, pos)
        if m is None:
            raise Malformed(f"line {lineno}: bad label name at col {pos}")
        name = m.group(0)
        pos = m.end()
        if raw[pos : pos + 2] != '="':
            raise Malformed(f"line {lineno}: label {name} missing =\"")
        pos += 2
        value = []
        while True:
            if pos >= len(raw) - 1:
                raise Malformed(f"line {lineno}: unterminated value for {name}")
            c = raw[pos]
            if c == "\\":
                if raw[pos + 1] not in ('\\', '"', 'n'):
                    raise Malformed(f"line {lineno}: bad escape \\{raw[pos + 1]}")
                value.append(raw[pos : pos + 2])
                pos += 2
            elif c == '"':
                pos += 1
                break
            elif c == "\n":
                raise Malformed(f"line {lineno}: raw newline in value of {name}")
            else:
                value.append(c)
                pos += 1
        if name in labels:
            raise Malformed(f"line {lineno}: duplicate label {name}")
        labels[name] = "".join(value)
        if pos < len(raw) - 1:
            if raw[pos] != ",":
                raise Malformed(f"line {lineno}: expected ',' at col {pos}")
            pos += 1
    return labels


def base_name(name, types):
    """Resolves a sample name to its `# TYPE` name, honoring histogram suffixes."""
    if name in types and types[name] != "histogram":
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            if types.get(stem) == "histogram":
                return stem
    if types.get(name) == "histogram":
        raise Malformed(f"histogram {name} sampled without _bucket/_sum/_count")
    raise Malformed(f"sample {name} has no preceding # TYPE line")


def check(path):
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if text and not text.endswith("\n"):
        raise Malformed("missing trailing newline")

    types = {}
    # (name, frozen labels sans `le`) -> [(le, count)]; plus _sum/_count values.
    buckets = {}
    counts = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m is None:
                raise Malformed(f"line {lineno}: bad comment line {line!r}")
            name, mtype = m.groups()
            if name in types:
                raise Malformed(f"line {lineno}: duplicate # TYPE for {name}")
            types[name] = mtype
            continue
        if line == "":
            raise Malformed(f"line {lineno}: blank line")

        m = NAME_RE.match(line)
        if m is None:
            raise Malformed(f"line {lineno}: bad metric name in {line!r}")
        name = m.group(0)
        rest = line[m.end() :]
        space = rest.rfind(" ")
        if space < 0:
            raise Malformed(f"line {lineno}: no value in {line!r}")
        labels = parse_labels(rest[:space], lineno)
        value = rest[space + 1 :]

        stem = base_name(name, types)
        mtype = types[stem]
        number_re = INT_RE if mtype == "gauge" else UINT_RE
        if number_re.match(value) is None:
            raise Malformed(f"line {lineno}: bad {mtype} value {value!r}")

        if mtype == "histogram":
            key = (stem, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
            if name == stem + "_bucket":
                if "le" not in labels:
                    raise Malformed(f"line {lineno}: _bucket without le")
                buckets.setdefault(key, []).append((labels["le"], int(value)))
            elif name == stem + "_count":
                counts[key] = int(value)

    for key, series in buckets.items():
        les = [le for le, _ in series]
        if les[-1] != "+Inf":
            raise Malformed(f"{key[0]}: final bucket is le={les[-1]!r}, not +Inf")
        finite = les[:-1]
        if any(UINT_RE.match(le) is None for le in finite):
            raise Malformed(f"{key[0]}: non-integer finite bound in {finite}")
        if [int(le) for le in finite] != sorted(int(le) for le in set(finite)):
            raise Malformed(f"{key[0]}: bounds not strictly increasing: {finite}")
        values = [count for _, count in series]
        if values != sorted(values):
            raise Malformed(f"{key[0]}: bucket counts not monotone: {values}")
        if key not in counts:
            raise Malformed(f"{key[0]}: histogram without _count sample")
        if counts[key] != values[-1]:
            raise Malformed(
                f"{key[0]}: _count {counts[key]} != +Inf bucket {values[-1]}"
            )


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            check(path)
        except Malformed as err:
            print(f"check_prom: {path}: {err}", file=sys.stderr)
            return 1
        except OSError as err:
            print(f"check_prom: {err}", file=sys.stderr)
            return 1
        print(f"check_prom: {path}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
