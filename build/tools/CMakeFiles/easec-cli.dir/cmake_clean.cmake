file(REMOVE_RECURSE
  "CMakeFiles/easec-cli.dir/easec_main.cc.o"
  "CMakeFiles/easec-cli.dir/easec_main.cc.o.d"
  "easec"
  "easec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easec-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
