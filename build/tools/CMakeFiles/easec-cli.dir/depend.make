# Empty dependencies file for easec-cli.
# This may be replaced when dependencies are built.
