# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/experiment_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/easec_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/dma_regional_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/samoyed_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/easec_vm_test[1]_include.cmake")
include("/root/repo/build/tests/capacitor_test[1]_include.cmake")
include("/root/repo/build/tests/easec_errors_test[1]_include.cmake")
include("/root/repo/build/tests/transform_golden_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
