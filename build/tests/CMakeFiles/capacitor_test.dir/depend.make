# Empty dependencies file for capacitor_test.
# This may be replaced when dependencies are built.
