file(REMOVE_RECURSE
  "CMakeFiles/capacitor_test.dir/capacitor_test.cc.o"
  "CMakeFiles/capacitor_test.dir/capacitor_test.cc.o.d"
  "capacitor_test"
  "capacitor_test.pdb"
  "capacitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
