file(REMOVE_RECURSE
  "CMakeFiles/easec_errors_test.dir/easec_errors_test.cc.o"
  "CMakeFiles/easec_errors_test.dir/easec_errors_test.cc.o.d"
  "easec_errors_test"
  "easec_errors_test.pdb"
  "easec_errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easec_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
