file(REMOVE_RECURSE
  "CMakeFiles/experiment_smoke_test.dir/experiment_smoke_test.cc.o"
  "CMakeFiles/experiment_smoke_test.dir/experiment_smoke_test.cc.o.d"
  "experiment_smoke_test"
  "experiment_smoke_test.pdb"
  "experiment_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
