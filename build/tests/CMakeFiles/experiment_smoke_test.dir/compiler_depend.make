# Empty compiler generated dependencies file for experiment_smoke_test.
# This may be replaced when dependencies are built.
