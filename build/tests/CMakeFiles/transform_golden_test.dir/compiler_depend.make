# Empty compiler generated dependencies file for transform_golden_test.
# This may be replaced when dependencies are built.
