file(REMOVE_RECURSE
  "CMakeFiles/transform_golden_test.dir/transform_golden_test.cc.o"
  "CMakeFiles/transform_golden_test.dir/transform_golden_test.cc.o.d"
  "transform_golden_test"
  "transform_golden_test.pdb"
  "transform_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
