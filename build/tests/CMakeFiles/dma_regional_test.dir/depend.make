# Empty dependencies file for dma_regional_test.
# This may be replaced when dependencies are built.
