file(REMOVE_RECURSE
  "CMakeFiles/dma_regional_test.dir/dma_regional_test.cc.o"
  "CMakeFiles/dma_regional_test.dir/dma_regional_test.cc.o.d"
  "dma_regional_test"
  "dma_regional_test.pdb"
  "dma_regional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_regional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
