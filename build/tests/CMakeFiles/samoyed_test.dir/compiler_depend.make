# Empty compiler generated dependencies file for samoyed_test.
# This may be replaced when dependencies are built.
