file(REMOVE_RECURSE
  "CMakeFiles/samoyed_test.dir/samoyed_test.cc.o"
  "CMakeFiles/samoyed_test.dir/samoyed_test.cc.o.d"
  "samoyed_test"
  "samoyed_test.pdb"
  "samoyed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/samoyed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
