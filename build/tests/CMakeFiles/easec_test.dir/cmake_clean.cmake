file(REMOVE_RECURSE
  "CMakeFiles/easec_test.dir/easec_test.cc.o"
  "CMakeFiles/easec_test.dir/easec_test.cc.o.d"
  "easec_test"
  "easec_test.pdb"
  "easec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
