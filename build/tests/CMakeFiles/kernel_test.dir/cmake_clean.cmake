file(REMOVE_RECURSE
  "CMakeFiles/kernel_test.dir/kernel_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel_test.cc.o.d"
  "kernel_test"
  "kernel_test.pdb"
  "kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
