# Empty compiler generated dependencies file for runtime_semantics_test.
# This may be replaced when dependencies are built.
