file(REMOVE_RECURSE
  "CMakeFiles/runtime_semantics_test.dir/runtime_semantics_test.cc.o"
  "CMakeFiles/runtime_semantics_test.dir/runtime_semantics_test.cc.o.d"
  "runtime_semantics_test"
  "runtime_semantics_test.pdb"
  "runtime_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
