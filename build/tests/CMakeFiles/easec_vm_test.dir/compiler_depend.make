# Empty compiler generated dependencies file for easec_vm_test.
# This may be replaced when dependencies are built.
