file(REMOVE_RECURSE
  "CMakeFiles/easec_vm_test.dir/easec_vm_test.cc.o"
  "CMakeFiles/easec_vm_test.dir/easec_vm_test.cc.o.d"
  "easec_vm_test"
  "easec_vm_test.pdb"
  "easec_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easec_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
