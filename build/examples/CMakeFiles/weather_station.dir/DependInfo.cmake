
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/weather_station.cpp" "examples/CMakeFiles/weather_station.dir/weather_station.cpp.o" "gcc" "examples/CMakeFiles/weather_station.dir/weather_station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/easeio_report.dir/DependInfo.cmake"
  "/root/repo/build/src/easec/CMakeFiles/easec.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/easeio_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/easeio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/easeio_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/easeio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/easeio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/easeio_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
