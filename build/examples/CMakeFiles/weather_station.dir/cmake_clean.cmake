file(REMOVE_RECURSE
  "CMakeFiles/weather_station.dir/weather_station.cpp.o"
  "CMakeFiles/weather_station.dir/weather_station.cpp.o.d"
  "weather_station"
  "weather_station.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
