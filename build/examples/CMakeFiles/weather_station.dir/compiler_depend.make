# Empty compiler generated dependencies file for weather_station.
# This may be replaced when dependencies are built.
