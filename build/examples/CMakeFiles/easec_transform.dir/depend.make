# Empty dependencies file for easec_transform.
# This may be replaced when dependencies are built.
