file(REMOVE_RECURSE
  "CMakeFiles/easec_transform.dir/easec_transform.cpp.o"
  "CMakeFiles/easec_transform.dir/easec_transform.cpp.o.d"
  "easec_transform"
  "easec_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easec_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
