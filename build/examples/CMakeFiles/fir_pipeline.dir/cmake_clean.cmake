file(REMOVE_RECURSE
  "CMakeFiles/fir_pipeline.dir/fir_pipeline.cpp.o"
  "CMakeFiles/fir_pipeline.dir/fir_pipeline.cpp.o.d"
  "fir_pipeline"
  "fir_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
