file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_failure_rate.dir/bench_sweep_failure_rate.cc.o"
  "CMakeFiles/bench_sweep_failure_rate.dir/bench_sweep_failure_rate.cc.o.d"
  "bench_sweep_failure_rate"
  "bench_sweep_failure_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_failure_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
