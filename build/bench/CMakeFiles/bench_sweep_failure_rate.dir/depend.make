# Empty dependencies file for bench_sweep_failure_rate.
# This may be replaced when dependencies are built.
