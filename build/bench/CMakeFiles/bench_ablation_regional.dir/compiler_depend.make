# Empty compiler generated dependencies file for bench_ablation_regional.
# This may be replaced when dependencies are built.
