file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regional.dir/bench_ablation_regional.cc.o"
  "CMakeFiles/bench_ablation_regional.dir/bench_ablation_regional.cc.o.d"
  "bench_ablation_regional"
  "bench_ablation_regional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
