# Empty compiler generated dependencies file for bench_micro_overheads.
# This may be replaced when dependencies are built.
