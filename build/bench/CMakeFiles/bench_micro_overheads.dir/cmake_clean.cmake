file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_overheads.dir/bench_micro_overheads.cc.o"
  "CMakeFiles/bench_micro_overheads.dir/bench_micro_overheads.cc.o.d"
  "bench_micro_overheads"
  "bench_micro_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
