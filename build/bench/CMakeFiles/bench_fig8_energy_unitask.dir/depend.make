# Empty dependencies file for bench_fig8_energy_unitask.
# This may be replaced when dependencies are built.
