file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_energy_unitask.dir/bench_fig8_energy_unitask.cc.o"
  "CMakeFiles/bench_fig8_energy_unitask.dir/bench_fig8_energy_unitask.cc.o.d"
  "bench_fig8_energy_unitask"
  "bench_fig8_energy_unitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_energy_unitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
