file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_memory.dir/bench_table6_memory.cc.o"
  "CMakeFiles/bench_table6_memory.dir/bench_table6_memory.cc.o.d"
  "bench_table6_memory"
  "bench_table6_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
