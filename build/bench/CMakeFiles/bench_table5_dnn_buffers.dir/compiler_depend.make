# Empty compiler generated dependencies file for bench_table5_dnn_buffers.
# This may be replaced when dependencies are built.
