file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_dnn_buffers.dir/bench_table5_dnn_buffers.cc.o"
  "CMakeFiles/bench_table5_dnn_buffers.dir/bench_table5_dnn_buffers.cc.o.d"
  "bench_table5_dnn_buffers"
  "bench_table5_dnn_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_dnn_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
