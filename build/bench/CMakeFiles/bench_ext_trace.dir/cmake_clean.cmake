file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_trace.dir/bench_ext_trace.cc.o"
  "CMakeFiles/bench_ext_trace.dir/bench_ext_trace.cc.o.d"
  "bench_ext_trace"
  "bench_ext_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
