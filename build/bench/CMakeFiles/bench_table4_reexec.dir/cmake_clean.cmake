file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_reexec.dir/bench_table4_reexec.cc.o"
  "CMakeFiles/bench_table4_reexec.dir/bench_table4_reexec.cc.o.d"
  "bench_table4_reexec"
  "bench_table4_reexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_reexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
