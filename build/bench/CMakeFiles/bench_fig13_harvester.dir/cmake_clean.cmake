file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_harvester.dir/bench_fig13_harvester.cc.o"
  "CMakeFiles/bench_fig13_harvester.dir/bench_fig13_harvester.cc.o.d"
  "bench_fig13_harvester"
  "bench_fig13_harvester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_harvester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
