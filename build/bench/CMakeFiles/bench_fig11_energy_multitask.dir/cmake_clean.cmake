file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_energy_multitask.dir/bench_fig11_energy_multitask.cc.o"
  "CMakeFiles/bench_fig11_energy_multitask.dir/bench_fig11_energy_multitask.cc.o.d"
  "bench_fig11_energy_multitask"
  "bench_fig11_energy_multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_energy_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
