file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_correctness.dir/bench_fig12_correctness.cc.o"
  "CMakeFiles/bench_fig12_correctness.dir/bench_fig12_correctness.cc.o.d"
  "bench_fig12_correctness"
  "bench_fig12_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
