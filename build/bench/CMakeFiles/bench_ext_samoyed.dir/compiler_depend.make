# Empty compiler generated dependencies file for bench_ext_samoyed.
# This may be replaced when dependencies are built.
