file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_samoyed.dir/bench_ext_samoyed.cc.o"
  "CMakeFiles/bench_ext_samoyed.dir/bench_ext_samoyed.cc.o.d"
  "bench_ext_samoyed"
  "bench_ext_samoyed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_samoyed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
