# Empty dependencies file for bench_fig7_unitask.
# This may be replaced when dependencies are built.
