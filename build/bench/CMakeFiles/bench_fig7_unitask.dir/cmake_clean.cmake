file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_unitask.dir/bench_fig7_unitask.cc.o"
  "CMakeFiles/bench_fig7_unitask.dir/bench_fig7_unitask.cc.o.d"
  "bench_fig7_unitask"
  "bench_fig7_unitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_unitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
