file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timekeeper.dir/bench_ablation_timekeeper.cc.o"
  "CMakeFiles/bench_ablation_timekeeper.dir/bench_ablation_timekeeper.cc.o.d"
  "bench_ablation_timekeeper"
  "bench_ablation_timekeeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timekeeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
