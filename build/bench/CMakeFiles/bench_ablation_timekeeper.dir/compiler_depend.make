# Empty compiler generated dependencies file for bench_ablation_timekeeper.
# This may be replaced when dependencies are built.
