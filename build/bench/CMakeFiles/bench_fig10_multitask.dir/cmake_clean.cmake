file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_multitask.dir/bench_fig10_multitask.cc.o"
  "CMakeFiles/bench_fig10_multitask.dir/bench_fig10_multitask.cc.o.d"
  "bench_fig10_multitask"
  "bench_fig10_multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
