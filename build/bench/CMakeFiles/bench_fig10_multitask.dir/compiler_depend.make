# Empty compiler generated dependencies file for bench_fig10_multitask.
# This may be replaced when dependencies are built.
