# Empty dependencies file for easeio_platform.
# This may be replaced when dependencies are built.
