file(REMOVE_RECURSE
  "libeaseio_platform.a"
)
