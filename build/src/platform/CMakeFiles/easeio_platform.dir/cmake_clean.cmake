file(REMOVE_RECURSE
  "CMakeFiles/easeio_platform.dir/check.cc.o"
  "CMakeFiles/easeio_platform.dir/check.cc.o.d"
  "libeaseio_platform.a"
  "libeaseio_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easeio_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
