file(REMOVE_RECURSE
  "CMakeFiles/easeio_report.dir/experiment.cc.o"
  "CMakeFiles/easeio_report.dir/experiment.cc.o.d"
  "CMakeFiles/easeio_report.dir/table.cc.o"
  "CMakeFiles/easeio_report.dir/table.cc.o.d"
  "libeaseio_report.a"
  "libeaseio_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easeio_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
