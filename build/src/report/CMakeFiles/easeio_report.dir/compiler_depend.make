# Empty compiler generated dependencies file for easeio_report.
# This may be replaced when dependencies are built.
