file(REMOVE_RECURSE
  "libeaseio_report.a"
)
