
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/easeio_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/easeio_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/dma.cc" "src/sim/CMakeFiles/easeio_sim.dir/dma.cc.o" "gcc" "src/sim/CMakeFiles/easeio_sim.dir/dma.cc.o.d"
  "/root/repo/src/sim/lea.cc" "src/sim/CMakeFiles/easeio_sim.dir/lea.cc.o" "gcc" "src/sim/CMakeFiles/easeio_sim.dir/lea.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/easeio_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/easeio_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/peripherals.cc" "src/sim/CMakeFiles/easeio_sim.dir/peripherals.cc.o" "gcc" "src/sim/CMakeFiles/easeio_sim.dir/peripherals.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/easeio_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
