file(REMOVE_RECURSE
  "CMakeFiles/easeio_sim.dir/device.cc.o"
  "CMakeFiles/easeio_sim.dir/device.cc.o.d"
  "CMakeFiles/easeio_sim.dir/dma.cc.o"
  "CMakeFiles/easeio_sim.dir/dma.cc.o.d"
  "CMakeFiles/easeio_sim.dir/lea.cc.o"
  "CMakeFiles/easeio_sim.dir/lea.cc.o.d"
  "CMakeFiles/easeio_sim.dir/memory.cc.o"
  "CMakeFiles/easeio_sim.dir/memory.cc.o.d"
  "CMakeFiles/easeio_sim.dir/peripherals.cc.o"
  "CMakeFiles/easeio_sim.dir/peripherals.cc.o.d"
  "libeaseio_sim.a"
  "libeaseio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easeio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
