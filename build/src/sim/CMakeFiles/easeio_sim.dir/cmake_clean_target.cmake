file(REMOVE_RECURSE
  "libeaseio_sim.a"
)
