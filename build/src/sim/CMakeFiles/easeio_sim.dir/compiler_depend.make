# Empty compiler generated dependencies file for easeio_sim.
# This may be replaced when dependencies are built.
