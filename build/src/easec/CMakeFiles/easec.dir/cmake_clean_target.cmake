file(REMOVE_RECURSE
  "libeasec.a"
)
