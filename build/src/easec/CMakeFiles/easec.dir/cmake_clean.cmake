file(REMOVE_RECURSE
  "CMakeFiles/easec.dir/codegen.cc.o"
  "CMakeFiles/easec.dir/codegen.cc.o.d"
  "CMakeFiles/easec.dir/lexer.cc.o"
  "CMakeFiles/easec.dir/lexer.cc.o.d"
  "CMakeFiles/easec.dir/parser.cc.o"
  "CMakeFiles/easec.dir/parser.cc.o.d"
  "CMakeFiles/easec.dir/program.cc.o"
  "CMakeFiles/easec.dir/program.cc.o.d"
  "CMakeFiles/easec.dir/sema.cc.o"
  "CMakeFiles/easec.dir/sema.cc.o.d"
  "CMakeFiles/easec.dir/transform.cc.o"
  "CMakeFiles/easec.dir/transform.cc.o.d"
  "libeasec.a"
  "libeasec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
