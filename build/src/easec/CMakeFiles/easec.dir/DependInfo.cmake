
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/easec/codegen.cc" "src/easec/CMakeFiles/easec.dir/codegen.cc.o" "gcc" "src/easec/CMakeFiles/easec.dir/codegen.cc.o.d"
  "/root/repo/src/easec/lexer.cc" "src/easec/CMakeFiles/easec.dir/lexer.cc.o" "gcc" "src/easec/CMakeFiles/easec.dir/lexer.cc.o.d"
  "/root/repo/src/easec/parser.cc" "src/easec/CMakeFiles/easec.dir/parser.cc.o" "gcc" "src/easec/CMakeFiles/easec.dir/parser.cc.o.d"
  "/root/repo/src/easec/program.cc" "src/easec/CMakeFiles/easec.dir/program.cc.o" "gcc" "src/easec/CMakeFiles/easec.dir/program.cc.o.d"
  "/root/repo/src/easec/sema.cc" "src/easec/CMakeFiles/easec.dir/sema.cc.o" "gcc" "src/easec/CMakeFiles/easec.dir/sema.cc.o.d"
  "/root/repo/src/easec/transform.cc" "src/easec/CMakeFiles/easec.dir/transform.cc.o" "gcc" "src/easec/CMakeFiles/easec.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/easeio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/easeio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/easeio_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
