# Empty compiler generated dependencies file for easec.
# This may be replaced when dependencies are built.
