
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/engine.cc" "src/kernel/CMakeFiles/easeio_kernel.dir/engine.cc.o" "gcc" "src/kernel/CMakeFiles/easeio_kernel.dir/engine.cc.o.d"
  "/root/repo/src/kernel/runtime.cc" "src/kernel/CMakeFiles/easeio_kernel.dir/runtime.cc.o" "gcc" "src/kernel/CMakeFiles/easeio_kernel.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/easeio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/easeio_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
