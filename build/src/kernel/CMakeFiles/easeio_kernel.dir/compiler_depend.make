# Empty compiler generated dependencies file for easeio_kernel.
# This may be replaced when dependencies are built.
