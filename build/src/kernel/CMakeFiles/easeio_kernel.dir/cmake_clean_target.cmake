file(REMOVE_RECURSE
  "libeaseio_kernel.a"
)
