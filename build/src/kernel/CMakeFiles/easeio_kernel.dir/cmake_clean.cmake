file(REMOVE_RECURSE
  "CMakeFiles/easeio_kernel.dir/engine.cc.o"
  "CMakeFiles/easeio_kernel.dir/engine.cc.o.d"
  "CMakeFiles/easeio_kernel.dir/runtime.cc.o"
  "CMakeFiles/easeio_kernel.dir/runtime.cc.o.d"
  "libeaseio_kernel.a"
  "libeaseio_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easeio_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
