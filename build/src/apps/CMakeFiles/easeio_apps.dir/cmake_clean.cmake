file(REMOVE_RECURSE
  "CMakeFiles/easeio_apps.dir/fir_app.cc.o"
  "CMakeFiles/easeio_apps.dir/fir_app.cc.o.d"
  "CMakeFiles/easeio_apps.dir/runtime_factory.cc.o"
  "CMakeFiles/easeio_apps.dir/runtime_factory.cc.o.d"
  "CMakeFiles/easeio_apps.dir/unitask_apps.cc.o"
  "CMakeFiles/easeio_apps.dir/unitask_apps.cc.o.d"
  "CMakeFiles/easeio_apps.dir/weather_app.cc.o"
  "CMakeFiles/easeio_apps.dir/weather_app.cc.o.d"
  "libeaseio_apps.a"
  "libeaseio_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easeio_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
