file(REMOVE_RECURSE
  "libeaseio_apps.a"
)
