# Empty dependencies file for easeio_apps.
# This may be replaced when dependencies are built.
