file(REMOVE_RECURSE
  "CMakeFiles/easeio_baselines.dir/alpaca.cc.o"
  "CMakeFiles/easeio_baselines.dir/alpaca.cc.o.d"
  "CMakeFiles/easeio_baselines.dir/ink.cc.o"
  "CMakeFiles/easeio_baselines.dir/ink.cc.o.d"
  "CMakeFiles/easeio_baselines.dir/samoyed.cc.o"
  "CMakeFiles/easeio_baselines.dir/samoyed.cc.o.d"
  "libeaseio_baselines.a"
  "libeaseio_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easeio_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
