
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/alpaca.cc" "src/baselines/CMakeFiles/easeio_baselines.dir/alpaca.cc.o" "gcc" "src/baselines/CMakeFiles/easeio_baselines.dir/alpaca.cc.o.d"
  "/root/repo/src/baselines/ink.cc" "src/baselines/CMakeFiles/easeio_baselines.dir/ink.cc.o" "gcc" "src/baselines/CMakeFiles/easeio_baselines.dir/ink.cc.o.d"
  "/root/repo/src/baselines/samoyed.cc" "src/baselines/CMakeFiles/easeio_baselines.dir/samoyed.cc.o" "gcc" "src/baselines/CMakeFiles/easeio_baselines.dir/samoyed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/easeio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/easeio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/easeio_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
