# Empty compiler generated dependencies file for easeio_baselines.
# This may be replaced when dependencies are built.
