file(REMOVE_RECURSE
  "libeaseio_baselines.a"
)
