file(REMOVE_RECURSE
  "libeaseio_core.a"
)
