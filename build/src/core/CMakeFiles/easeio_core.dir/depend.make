# Empty dependencies file for easeio_core.
# This may be replaced when dependencies are built.
