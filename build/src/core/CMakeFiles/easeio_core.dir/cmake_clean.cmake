file(REMOVE_RECURSE
  "CMakeFiles/easeio_core.dir/easeio_runtime.cc.o"
  "CMakeFiles/easeio_core.dir/easeio_runtime.cc.o.d"
  "CMakeFiles/easeio_core.dir/regional.cc.o"
  "CMakeFiles/easeio_core.dir/regional.cc.o.d"
  "libeaseio_core.a"
  "libeaseio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easeio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
