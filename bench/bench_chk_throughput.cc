// Checker throughput: the snapshot/pool engine against full replay.
//
// The chk explorer's depth-2 sweeps dominate CI wall-clock, so the hot path earns
// its own artifact: for each headline cell (the DMA pipeline under EaseIO, the
// weather station under Samoyed) this bench explores the same depth-2 grid with the
// full-replay engine and with the snapshot engine (per-worker buffer pools,
// dirty-page snapshots, batched probes), reporting best-of-N trials/sec and the
// engine diagnostics (resumes, pages copied, pool hits). It also re-checks the
// engines' core contract inline: the non-timing JSON of both modes must be
// byte-identical — a throughput win that changed a verdict would be a bug, not a
// speedup.

#include <algorithm>
#include <string>

#include "bench_common.h"

#include "chk/explorer.h"
#include "report/jobs.h"

namespace easeio::bench {
namespace {

struct Cell {
  apps::AppKind app;
  apps::RuntimeKind runtime;
};

constexpr Cell kCells[] = {
    {apps::AppKind::kDma, apps::RuntimeKind::kEaseio},
    {apps::AppKind::kWeather, apps::RuntimeKind::kSamoyed},
};

struct EngineRun {
  chk::ExploreResult best;   // repeat with the highest trials/sec
  std::string canonical;     // non-timing JSON (identical across repeats)
};

// Explores the cell `repeats` times with one engine mode and keeps the fastest
// repeat. Every repeat must serialize to the same non-timing JSON — a mismatch
// means the explorer lost determinism, which this artifact treats as fatal.
EngineRun RunEngine(const Cell& cell, bool use_snapshot, uint32_t repeats,
                    uint32_t jobs) {
  chk::ExploreConfig config;
  config.app = cell.app;
  config.runtime = cell.runtime;
  config.depth = 2;
  config.jobs = jobs;
  config.use_snapshot = use_snapshot;

  EngineRun out;
  for (uint32_t i = 0; i < repeats; ++i) {
    chk::ExploreResult r = chk::Explore(config);
    const std::string canonical = chk::ToJson(r, /*include_timing=*/false);
    if (out.canonical.empty()) {
      out.canonical = canonical;
      out.best = std::move(r);
    } else {
      EASEIO_CHECK(canonical == out.canonical,
                   "exploration result changed between repeats of one config");
      if (r.trials_per_sec > out.best.trials_per_sec) {
        out.best = std::move(r);
      }
    }
  }
  return out;
}

void Main() {
  // Repeats per engine mode; the paper-scale default of 1000 would be pure
  // redundancy here, best-of-5 settles the timing noise.
  const uint32_t repeats = SweepRuns(5);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("chk_throughput",
                       "depth-2 explorer trials/sec: snapshot+pool engine vs full replay");
  emitter.SetSweep(repeats, jobs);
  PrintHeader("Checker throughput",
              "depth-2 explorer trials/sec: snapshot+pool engine vs full replay");
  std::printf("(best of %u repeats per engine mode)\n\n", repeats);

  report::TextTable table({"Cell", "Engine", "Trials/s", "Wall (ms)", "Resumes",
                           "Pages copied", "Pool hits", "Speedup"});
  for (const Cell& cell : kCells) {
    const std::string name = std::string(report::AppName(cell.app)) + "/" +
                             report::RuntimeName(cell.runtime);
    const EngineRun full = RunEngine(cell, /*use_snapshot=*/false, repeats, jobs);
    const EngineRun snap = RunEngine(cell, /*use_snapshot=*/true, repeats, jobs);
    // The engines must agree on everything but timing; this is the correctness
    // half of the artifact (CI also enforces it across jobs counts).
    EASEIO_CHECK(full.canonical == snap.canonical,
                 "snapshot engine diverged from full replay");
    const double speedup = full.best.trials_per_sec > 0
                               ? snap.best.trials_per_sec / full.best.trials_per_sec
                               : 0.0;
    const chk::ExploreResult* rows[] = {&full.best, &snap.best};
    for (const chk::ExploreResult* r : rows) {
      const bool is_snap = r == &snap.best;
      emitter.AddMetrics(
          {{"app", report::AppName(cell.app)},
           {"runtime", report::RuntimeName(cell.runtime)},
           {"engine", is_snap ? "snapshot" : "full-replay"}},
          {{"trials_per_sec", r->trials_per_sec},
           {"wall_ms", r->wall_seconds * 1e3},
           {"schedules", static_cast<double>(r->schedules)},
           {"snapshot_resumes", static_cast<double>(r->snapshot_resumes)},
           {"pages_copied", static_cast<double>(r->pages_copied)},
           {"pool_hits", static_cast<double>(r->pool_hits)},
           {"speedup_vs_full_replay", is_snap ? speedup : 1.0}},
          /*runs=*/r->schedules * repeats);
      table.AddRow({name, is_snap ? "snapshot" : "full-replay",
                    report::Fmt(r->trials_per_sec, 0),
                    report::Fmt(r->wall_seconds * 1e3, 2),
                    std::to_string(r->snapshot_resumes),
                    std::to_string(r->pages_copied), std::to_string(r->pool_hits),
                    report::Fmt(is_snap ? speedup : 1.0, 2) + "x"});
    }
  }
  table.Print();

  std::printf(
      "\nBoth engines produce byte-identical non-timing JSON (checked above); the\n"
      "snapshot engine simply stops re-simulating the shared prefix of every\n"
      "depth-2 group and recycles its snapshot buffers through per-worker pools.\n");
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
