// Table 1: qualitative comparison of the I/O-handling features of the implemented
// runtimes. Each cell states the behaviour of *this repository's* implementation and
// names the mechanism (verified by the test suite; see tests/).

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  PrintHeader("Table 1", "qualitative feature comparison of the implemented runtimes");
  std::printf("\n");

  report::TextTable table({"Feature", "Alpaca", "InK", "Samoyed", "EaseIO"});
  table.AddRow({"Repeated I/O due to power failure", "Yes", "Yes", "Yes (atomic fns)",
                "No/Low (lock flags)"});
  table.AddRow({"Wasted I/O due to power failure", "High", "High", "Medium",
                "No (Single/Timely skip)"});
  table.AddRow({"Memory inconsistency due to repeated I/O", "Yes", "Yes",
                "Yes (atomic fns only)", "No (priv. copies + regions)"});
  table.AddRow({"Safe DMA operation", "No", "No", "No", "Yes (runtime classification)"});
  table.AddRow({"Timely I/O operation", "No", "No", "No", "Yes (persistent timekeeper)"});
  table.AddRow({"Semantic-aware I/O re-execution", "No", "No", "No",
                "Yes (Single/Timely/Always)"});
  table.Print();

  std::printf(
      "\nEvidence: Correctness.* and Semantics.* tests exercise every claim above;\n"
      "bench_fig12_correctness and bench_table4_reexec quantify the Yes/No cells.\n");
}

}  // namespace
}  // namespace easeio::bench

int main() {
  easeio::bench::Main();
  return 0;
}
