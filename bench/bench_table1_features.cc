// Table 1: qualitative comparison of the I/O-handling features of the implemented
// runtimes. Each cell states the behaviour of *this repository's* implementation and
// names the mechanism (verified by the test suite; see tests/).

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  BenchEmitter emitter("table1_features",
                       "qualitative feature comparison of the implemented runtimes");
  PrintHeader("Table 1", "qualitative feature comparison of the implemented runtimes");
  std::printf("\n");

  struct Feature {
    const char* name;
    const char* alpaca;
    const char* ink;
    const char* samoyed;
    const char* easeio;
  };
  const Feature features[] = {
      {"Repeated I/O due to power failure", "Yes", "Yes", "Yes (atomic fns)",
       "No/Low (lock flags)"},
      {"Wasted I/O due to power failure", "High", "High", "Medium",
       "No (Single/Timely skip)"},
      {"Memory inconsistency due to repeated I/O", "Yes", "Yes", "Yes (atomic fns only)",
       "No (priv. copies + regions)"},
      {"Safe DMA operation", "No", "No", "No", "Yes (runtime classification)"},
      {"Timely I/O operation", "No", "No", "No", "Yes (persistent timekeeper)"},
      {"Semantic-aware I/O re-execution", "No", "No", "No", "Yes (Single/Timely/Always)"},
  };

  report::TextTable table({"Feature", "Alpaca", "InK", "Samoyed", "EaseIO"});
  for (const Feature& f : features) {
    table.AddRow({f.name, f.alpaca, f.ink, f.samoyed, f.easeio});
    emitter.AddText({{"feature", f.name}}, {{"alpaca", f.alpaca},
                                            {"ink", f.ink},
                                            {"samoyed", f.samoyed},
                                            {"easeio", f.easeio}});
  }
  table.Print();

  std::printf(
      "\nEvidence: Correctness.* and Semantics.* tests exercise every claim above;\n"
      "bench_fig12_correctness and bench_table4_reexec quantify the Yes/No cells.\n");
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
