// Extension: trace-driven ambient energy.
//
// The RF model in Figure 13 is a parametric path-loss curve; real deployments see
// arbitrary harvest waveforms. This bench replays a synthetic "corridor" trace — a
// person with an RF source walks past the device every ~1.2 s, lifting harvest from a
// 0.18 mW floor to ~0.85 mW for a few hundred milliseconds — through the
// TraceHarvester, and measures how each runtime rides the resulting boom/bust cycles
// on a 8-job DMA workload.

#include <memory>

#include "bench_common.h"

#include "kernel/engine.h"
#include "platform/parallel.h"
#include "sim/failure.h"
#include "sim/harvester.h"

namespace easeio::bench {
namespace {

sim::TraceHarvester MakeCorridorTrace() {
  std::vector<sim::TraceHarvester::Sample> samples;
  // 20 seconds of trace: 1.2 s period, 0.35 s high window.
  for (uint64_t t = 0; t < 20'000'000; t += 1'200'000) {
    samples.push_back({t, 0.10e-3});
    samples.push_back({t + 700'000, 0.85e-3});
    samples.push_back({t + 1'050'000, 0.10e-3});
  }
  return sim::TraceHarvester(std::move(samples));
}

struct TraceRun {
  double wall_ms = 0;
  double on_ms = 0;
  uint64_t failures = 0;
  bool completed = false;
  bool consistent = false;
};

TraceRun RunOnTrace(apps::RuntimeKind kind, uint64_t seed) {
  const sim::TraceHarvester trace = MakeCorridorTrace();
  sim::CapacitorScheduler sched;
  sim::DeviceConfig config;
  config.seed = seed;
  config.use_capacitor = true;
  config.capacitance_f = 6e-6;
  config.v_max = 3.2;
  sim::Device dev(config, sched, &trace);
  kernel::NvManager nv(dev.mem());
  auto rt = apps::MakeRuntime(kind);
  rt->Bind(dev, nv);
  apps::AppOptions options;
  options.jobs = 8;
  apps::AppHandle app = apps::BuildDmaApp(dev, *rt, nv, options);

  kernel::Engine engine;
  const kernel::RunResult r = engine.Run(dev, *rt, nv, app.graph, app.entry);
  TraceRun out;
  out.wall_ms = static_cast<double>(r.wall_us) / 1e3;
  out.on_ms = static_cast<double>(r.on_us) / 1e3;
  out.failures = r.stats.power_failures;
  out.completed = r.completed;
  out.consistent = r.completed && app.check_consistent(dev);
  return out;
}

void Main() {
  const uint32_t runs = SweepRuns(100);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("ext_trace",
                       "corridor trace (periodic 0.10 -> 0.85 mW bursts), 8-job DMA workload");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Extension: trace-driven harvesting",
              "corridor trace (periodic 0.10 -> 0.85 mW bursts), 8-job DMA workload");
  std::printf("(%u runs per row)\n\n", runs);

  report::TextTable table({"Runtime", "Wall (ms)", "On (ms)", "Failures/run", "Correct"});
  for (apps::RuntimeKind kind : kBaselinePlusEaseio) {
    // Per-seed runs are independent; the in-order fold below keeps the sums
    // byte-identical for any jobs count (see platform/parallel.h).
    const std::vector<TraceRun> slots = platform::ParallelMap<TraceRun>(
        jobs, runs, [kind](size_t i) { return RunOnTrace(kind, i + 1); });
    double wall = 0;
    double on = 0;
    uint64_t failures = 0;
    uint32_t correct = 0;
    for (const TraceRun& r : slots) {
      wall += r.wall_ms;
      on += r.on_ms;
      failures += r.failures;
      correct += r.consistent ? 1 : 0;
    }
    emitter.AddMetrics({{"runtime", ToString(kind)}},
                       {{"wall_ms", wall / runs},
                        {"on_ms", on / runs},
                        {"failures_per_run", static_cast<double>(failures) / runs},
                        {"correct", static_cast<double>(correct)},
                        {"runs", static_cast<double>(runs)}},
                       /*runs=*/runs);
    table.AddRow({ToString(kind), report::Fmt(wall / runs, 2), report::Fmt(on / runs, 2),
                  report::Fmt(static_cast<double>(failures) / runs, 2),
                  std::to_string(correct) + "/" + std::to_string(runs)});
  }
  table.Print();

  std::printf(
      "\nDuring the low-harvest troughs the device lives off the capacitor alone;\n"
      "EaseIO's skipped copies stretch each charge across more useful work, completing\n"
      "in fewer boom/bust cycles.\n");
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
