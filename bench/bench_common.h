// Shared helpers for the per-table / per-figure benchmark harnesses.
//
// Every binary in this directory regenerates one artifact of the paper's evaluation
// section (Section 5): it sweeps the relevant {application x runtime} grid with the
// paper's failure emulation, prints the corresponding table or figure as text, and is
// runnable standalone (`build/bench/bench_<artifact>`). Sweep sizes default to the
// paper's 1000 runs; set EASEIO_BENCH_RUNS to override (e.g. 50 for a quick pass).

#ifndef EASEIO_BENCH_BENCH_COMMON_H_
#define EASEIO_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "report/experiment.h"
#include "report/table.h"

namespace easeio::bench {

inline uint32_t SweepRuns(uint32_t fallback = 1000) {
  const char* env = std::getenv("EASEIO_BENCH_RUNS");
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) {
      return static_cast<uint32_t>(v);
    }
  }
  return fallback;
}

inline void PrintHeader(const char* artifact, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("================================================================\n");
}

inline constexpr apps::RuntimeKind kBaselinePlusEaseio[] = {
    apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk, apps::RuntimeKind::kEaseio};

inline constexpr apps::RuntimeKind kAllFour[] = {
    apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk, apps::RuntimeKind::kEaseio,
    apps::RuntimeKind::kEaseioOp};

}  // namespace easeio::bench

#endif  // EASEIO_BENCH_BENCH_COMMON_H_
