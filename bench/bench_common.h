// Shared helpers for the per-table / per-figure benchmark harnesses.
//
// Every binary in this directory regenerates one artifact of the paper's evaluation
// section (Section 5): it sweeps the relevant {application x runtime} grid with the
// paper's failure emulation, prints the corresponding table or figure as text, and
// writes the same data machine-readably to results/bench_<artifact>.json (see
// BenchEmitter below). Each binary is runnable standalone
// (`build/bench/bench_<artifact>`); `build/bench/bench_all` runs the whole grid and
// merges the JSON artifacts into BENCH_SUMMARY.json.
//
// Knobs, each a flag with an environment fallback:
//   --runs=N  / EASEIO_BENCH_RUNS  sweep size per cell (default: the paper's 1000)
//   --jobs=N  / EASEIO_BENCH_JOBS  worker threads per sweep (default 0 = hardware
//                                  concurrency; results are identical for any value)

#ifndef EASEIO_BENCH_BENCH_COMMON_H_
#define EASEIO_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cli_flags.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "report/experiment.h"
#include "report/json.h"
#include "report/table.h"

namespace easeio::bench {

// Parses a base-10 unsigned integer that occupies the *whole* string (no trailing
// garbage, no sign) and lies in [min, max]. Returns false otherwise.
inline bool ParseUintFull(const char* s, uint64_t min, uint64_t max, uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') {
    return false;
  }
  if (v < min || v > max) {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

namespace internal {
// Set by ParseBenchArgs; flags take precedence over the environment.
inline int64_t g_runs_override = -1;
inline int64_t g_jobs_override = -1;
inline std::string g_metrics_path;
}  // namespace internal

// Process-wide metrics registry for bench binaries. BenchEmitter::Write() folds its
// per-artifact counters in here and, when --metrics=PATH was given, dumps the whole
// registry to PATH — so a binary that also instruments its workload (e.g. handing
// the registry to chk::Explore) gets everything in one document.
inline obs::Registry& BenchMetrics() {
  static obs::Registry registry;
  return registry;
}

// Dump destination from --metrics=PATH; empty when the flag was not given.
inline const std::string& MetricsPath() { return internal::g_metrics_path; }

// Sweep size per cell: --runs flag, else EASEIO_BENCH_RUNS, else `fallback`. An env
// value that is not a clean integer in [1, 10^6] (e.g. "50x", "-4", "") is rejected
// with a warning on stderr instead of silently truncating or falling back.
inline uint32_t SweepRuns(uint32_t fallback = 1000) {
  if (internal::g_runs_override >= 0) {
    return static_cast<uint32_t>(internal::g_runs_override);
  }
  const char* env = std::getenv("EASEIO_BENCH_RUNS");
  if (env != nullptr) {
    uint64_t v = 0;
    if (ParseUintFull(env, 1, 1'000'000, &v)) {
      return static_cast<uint32_t>(v);
    }
    std::fprintf(stderr,
                 "bench: ignoring invalid EASEIO_BENCH_RUNS='%s' (expected integer in "
                 "[1, 1000000]); using %u\n",
                 env, fallback);
  }
  return fallback;
}

// Worker threads per sweep: --jobs flag, else EASEIO_BENCH_JOBS, else 0 (hardware
// concurrency). The sweep results are byte-identical for any value.
inline uint32_t SweepJobs() {
  if (internal::g_jobs_override >= 0) {
    return static_cast<uint32_t>(internal::g_jobs_override);
  }
  const char* env = std::getenv("EASEIO_BENCH_JOBS");
  if (env != nullptr) {
    uint64_t v = 0;
    if (ParseUintFull(env, 0, 4096, &v)) {
      return static_cast<uint32_t>(v);
    }
    std::fprintf(stderr,
                 "bench: ignoring invalid EASEIO_BENCH_JOBS='%s' (expected integer in "
                 "[0, 4096]); using hardware concurrency\n",
                 env);
  }
  return 0;
}

// Shared flag parsing for every bench binary: --runs=N and --jobs=N override the
// environment, each at most once (tools::FlagDeduper); values go through the strict
// shared parser in tools/cli_flags.h. Anything else is a usage error (exit 2).
inline void ParseBenchArgs(int argc, char** argv) {
  tools::FlagDeduper dedupe(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t v = 0;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf("usage: %s [--runs=N] [--jobs=N] [--metrics=PATH]\n"
                  "  --runs     sweep size per cell (env EASEIO_BENCH_RUNS)\n"
                  "  --jobs     sweep worker threads, 0 = hardware concurrency "
                  "(env EASEIO_BENCH_JOBS)\n"
                  "  --metrics  dump the metrics registry to PATH at exit\n"
                  "             (easeio-metrics/1 JSON; Prometheus text for .prom)\n",
                  argv[0]);
      std::exit(0);
    }
    if (!dedupe.Note(arg)) {
      std::exit(2);
    }
    if (std::strncmp(arg, "--runs=", 7) == 0) {
      if (!tools::ParseUintFlag(argv[0], "--runs", arg + 7, 1, 1'000'000, &v)) {
        std::exit(2);
      }
      internal::g_runs_override = static_cast<int64_t>(v);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      if (!tools::ParseUintFlag(argv[0], "--jobs", arg + 7, 0, 4096, &v)) {
        std::exit(2);
      }
      internal::g_jobs_override = static_cast<int64_t>(v);
    } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
      internal::g_metrics_path = arg + 10;
      if (internal::g_metrics_path.empty()) {
        std::fprintf(stderr, "%s: --metrics= requires a path\n", argv[0]);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "%s: unknown option '%s' (try --help)\n", argv[0], arg);
      std::exit(2);
    }
  }
}

inline void PrintHeader(const char* artifact, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("================================================================\n");
}

// Runs experiments on one reused device: the first Run constructs the device, every
// later Run resets it in place (report::RunExperiment's device-reusing overload), so a
// bench loop over many single experiments skips the per-run arena construction the
// sweeps already avoid. Results are identical to report::RunExperiment(config).
class ExperimentRunner {
 public:
  report::ExperimentResult Run(const report::ExperimentConfig& config) {
    return report::RunExperiment(config, device_);
  }

 private:
  std::unique_ptr<sim::Device> device_;
};

// Collects one bench binary's results and writes results/bench_<artifact>.json
// (directory overridable via EASEIO_BENCH_OUT_DIR) alongside the ASCII output.
//
// Schema ("easeio-bench/1"):
//   { "schema", "artifact", "description",
//     "config":   { "runs", "jobs", <extra key/values> },
//     "cells":    [ { "labels": {..}, "metrics": {name: number, ..},
//                     "text": {name: string, ..} }, .. ],
//     "experiment_runs": <total experiment executions>,
//     "wall_seconds": <host wall-clock for the whole binary>,
//     "runs_per_second": <experiment_runs / wall_seconds> }
//
// Cells are emitted in insertion order; numbers use shortest-round-trip formatting —
// for a fixed configuration the file is byte-identical across runs of the simulator
// portion (wall_seconds/runs_per_second are the only host-dependent fields).
class BenchEmitter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  BenchEmitter(std::string artifact, std::string description)
      : artifact_(std::move(artifact)),
        description_(std::move(description)),
        start_(std::chrono::steady_clock::now()) {}

  // Records the sweep configuration (shown under "config").
  void SetSweep(uint32_t runs, uint32_t jobs) {
    runs_ = runs;
    jobs_ = jobs;
  }
  void AddConfig(std::string key, std::string value) {
    config_text_.emplace_back(std::move(key), std::move(value));
  }

  // One grid cell holding a full sweep Aggregate.
  void AddAggregate(Labels labels, const report::Aggregate& agg) {
    Cell cell;
    cell.labels = std::move(labels);
    cell.metrics = {{"runs", static_cast<double>(agg.runs)},
                    {"completed", static_cast<double>(agg.completed)},
                    {"correct", static_cast<double>(agg.correct)},
                    {"incorrect", static_cast<double>(agg.incorrect)},
                    {"total_us", agg.total_us},
                    {"app_us", agg.app_us},
                    {"overhead_us", agg.overhead_us},
                    {"wasted_us", agg.wasted_us},
                    {"energy_mj", agg.energy_mj},
                    {"wall_us", agg.wall_us},
                    {"power_failures", static_cast<double>(agg.power_failures)},
                    {"io_reexecutions", static_cast<double>(agg.io_reexecutions)},
                    {"io_skipped", static_cast<double>(agg.io_skipped)}};
    experiment_runs_ += agg.runs;
    cells_.push_back(std::move(cell));
  }

  // One grid cell holding ad-hoc numeric metrics (footprints, counts, milliseconds).
  // `runs` counts toward the binary's throughput accounting.
  void AddMetrics(Labels labels, std::vector<std::pair<std::string, double>> metrics,
                  uint64_t runs = 0) {
    Cell cell;
    cell.labels = std::move(labels);
    cell.metrics = std::move(metrics);
    experiment_runs_ += runs;
    cells_.push_back(std::move(cell));
  }

  // One grid cell holding qualitative string fields (Table 1 style).
  void AddText(Labels labels, std::vector<std::pair<std::string, std::string>> fields) {
    Cell cell;
    cell.labels = std::move(labels);
    cell.text = std::move(fields);
    cells_.push_back(std::move(cell));
  }

  // Serializes and writes the artifact; returns false (with a stderr warning) if the
  // output directory or file cannot be written.
  bool Write() {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();

    report::JsonWriter w;
    w.BeginObject();
    w.Key("schema").String("easeio-bench/1");
    w.Key("artifact").String(artifact_);
    w.Key("description").String(description_);
    w.Key("config").BeginObject();
    w.Key("runs").UInt(runs_);
    w.Key("jobs").UInt(jobs_);
    for (const auto& [k, v] : config_text_) {
      w.Key(k).String(v);
    }
    w.EndObject();
    w.Key("cells").BeginArray();
    for (const Cell& cell : cells_) {
      w.BeginObject();
      w.Key("labels").BeginObject();
      for (const auto& [k, v] : cell.labels) {
        w.Key(k).String(v);
      }
      w.EndObject();
      if (!cell.metrics.empty()) {
        w.Key("metrics").BeginObject();
        for (const auto& [k, v] : cell.metrics) {
          w.Key(k).Double(v);
        }
        w.EndObject();
      }
      if (!cell.text.empty()) {
        w.Key("text").BeginObject();
        for (const auto& [k, v] : cell.text) {
          w.Key(k).String(v);
        }
        w.EndObject();
      }
      w.EndObject();
    }
    w.EndArray();
    w.Key("experiment_runs").UInt(experiment_runs_);
    w.Key("wall_seconds").Double(wall_s);
    w.Key("runs_per_second")
        .Double(wall_s > 0 ? static_cast<double>(experiment_runs_) / wall_s : 0.0);
    w.EndObject();

    const char* env_dir = std::getenv("EASEIO_BENCH_OUT_DIR");
    const std::filesystem::path dir(env_dir != nullptr && *env_dir != '\0' ? env_dir
                                                                           : "results");
    const std::filesystem::path path = dir / ("bench_" + artifact_ + ".json");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.string().c_str());
      return false;
    }
    out << w.TakeString() << "\n";
    std::printf("\n[%s] wrote %s (%llu experiment runs in %.2f s, %.0f runs/s)\n",
                artifact_.c_str(), path.string().c_str(),
                static_cast<unsigned long long>(experiment_runs_), wall_s,
                wall_s > 0 ? static_cast<double>(experiment_runs_) / wall_s : 0.0);

    // Fold this artifact's totals into the shared registry and honour --metrics.
    // Every bench binary gets a meaningful dump this way, even the ones whose
    // workload has no registry of its own.
    obs::Registry& reg = BenchMetrics();
    const obs::Labels labels = {{"artifact", artifact_}};
    reg.Add(reg.Counter("bench_cells", labels), cells_.size());
    reg.Add(reg.Counter("bench_experiment_runs", labels), experiment_runs_);
    if (!MetricsPath().empty()) {
      std::string metrics_error;
      if (!obs::WriteMetricsFile(reg, MetricsPath(), &metrics_error)) {
        std::fprintf(stderr, "bench: %s\n", metrics_error.c_str());
        return false;
      }
    }
    return true;
  }

 private:
  struct Cell {
    Labels labels;
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, std::string>> text;
  };

  std::string artifact_;
  std::string description_;
  std::chrono::steady_clock::time_point start_;
  uint32_t runs_ = 0;
  uint32_t jobs_ = 0;
  std::vector<std::pair<std::string, std::string>> config_text_;
  std::vector<Cell> cells_;
  uint64_t experiment_runs_ = 0;
};

inline constexpr apps::RuntimeKind kBaselinePlusEaseio[] = {
    apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk, apps::RuntimeKind::kEaseio};

inline constexpr apps::RuntimeKind kAllFour[] = {
    apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk, apps::RuntimeKind::kEaseio,
    apps::RuntimeKind::kEaseioOp};

}  // namespace easeio::bench

#endif  // EASEIO_BENCH_BENCH_COMMON_H_
