// Ablation: what regional privatization costs and what it prevents.
//
// EaseIO is run twice on the multi-job weather workload: with regional privatization
// (the production configuration) and with it disabled (DESIGN.md's ablation knob).
// Without regions, CPU-visible WAR variables — here the job counter incremented at the
// end of each sensing job — double-apply when a failure lands after the write, so jobs
// get silently skipped. The table shows the correctness gap and the overhead regional
// privatization charges for closing it.
//
// Note that Private DMA (a separate mechanism) still protects the DNN activations in
// both configurations: the ablation isolates exactly the regional machinery.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Row(BenchEmitter& emitter, report::TextTable& table, const char* label, bool regional,
         uint32_t runs, uint32_t jobs) {
  report::ExperimentConfig config;
  config.runtime = apps::RuntimeKind::kEaseio;
  config.app = report::AppKind::kWeather;
  config.app_options.single_buffer = false;
  config.app_options.jobs = 3;
  config.easeio_regional_privatization = regional;
  const report::Aggregate agg = report::RunSweep(config, runs, jobs);
  emitter.AddAggregate({{"configuration", label},
                        {"regional_privatization", regional ? "on" : "off"}},
                       agg);
  table.AddRow({label, report::Fmt(agg.total_us / 1e3, 2),
                report::Fmt(agg.overhead_us / 1e3, 2), std::to_string(agg.correct),
                std::to_string(agg.incorrect)});
}

void Main() {
  const uint32_t runs = SweepRuns(500);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("ablation_regional",
                       "EaseIO on the 3-job weather workload, regions on vs off");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Ablation: regional privatization",
              "EaseIO on the 3-job weather workload, regions on vs off");
  std::printf("(%u runs per row)\n\n", runs);

  report::TextTable table(
      {"Configuration", "Total (ms)", "Overhead (ms)", "Correct", "Incorrect"});
  Row(emitter, table, "EaseIO (regional privatization)", /*regional=*/true, runs, jobs);
  Row(emitter, table, "EaseIO (regions disabled)", /*regional=*/false, runs, jobs);
  table.Print();

  std::printf(
      "\nEvery Incorrect run in the disabled row lost at least one sensing job to a\n"
      "double-incremented WAR counter — the inconsistency class Section 4.4 targets.\n");
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
