// Table 4: number of power failures (PF) and redundant I/O re-executions (Re-exe) per
// uni-task application, summed over the sweep, for Alpaca, InK, and EaseIO; EaseIO's
// row also shows its reduction relative to Alpaca.
//
// Expected shape (paper): EaseIO cuts DMA re-executions ~76% and Timely re-reads ~43%,
// with 0% change for Always (LEA); fewer redundant operations also mean fewer power
// failures before the workload completes.

#include <cmath>

#include "bench_common.h"

namespace easeio::bench {
namespace {

struct Row {
  uint64_t pf = 0;
  uint64_t reexe = 0;
};

void Main() {
  const uint32_t runs = SweepRuns();
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("table4_reexec",
                       "power failures and redundant I/O re-executions per application");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Table 4", "power failures and redundant I/O re-executions per application");
  std::printf("(summed over %u runs per cell)\n\n", runs);

  const report::AppKind apps_order[] = {report::AppKind::kDma, report::AppKind::kTemp,
                                        report::AppKind::kLea};
  const char* app_names[] = {"Single (DMA)", "Timely (Temp.)", "Always (LEA)"};

  Row rows[3][3];
  for (int a = 0; a < 3; ++a) {
    for (int r = 0; r < 3; ++r) {
      report::ExperimentConfig config;
      config.runtime = kBaselinePlusEaseio[r];
      config.app = apps_order[a];
      const report::Aggregate agg = report::RunSweep(config, runs, jobs);
      emitter.AddAggregate({{"semantic", app_names[a]},
                            {"app", ToString(apps_order[a])},
                            {"runtime", ToString(kBaselinePlusEaseio[r])}},
                           agg);
      rows[a][r] = {agg.power_failures, agg.io_reexecutions};
    }
  }

  report::TextTable table({"Runtime", "Single(DMA) PF", "Re-exe", "Timely(Temp) PF", "Re-exe",
                           "Always(LEA) PF", "Re-exe"});
  for (int r = 0; r < 3; ++r) {
    std::vector<std::string> row{ToString(kBaselinePlusEaseio[r])};
    for (int a = 0; a < 3; ++a) {
      row.push_back(std::to_string(rows[a][r].pf));
      std::string reexe = std::to_string(rows[a][r].reexe);
      if (r == 2) {  // EaseIO: show the reduction vs Alpaca
        const double base = static_cast<double>(rows[a][0].reexe);
        const double pct = base > 0 ? 100.0 * (base - static_cast<double>(rows[a][r].reexe)) /
                                          base
                                    : 0.0;
        reexe += " (" + std::string(pct >= 0 ? "-" : "+") + report::Fmt(std::abs(pct), 0) +
                 "%)";
      }
      row.push_back(reexe);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
