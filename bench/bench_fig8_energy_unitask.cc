// Figure 8: average energy consumed to complete each uni-task application under
// controlled power failures, per runtime.
//
// Expected shape (paper): energy tracks the Figure 7 time decomposition — roughly
// halved for the Single workload under EaseIO, moderately reduced for Timely, and a
// wash for Always.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  const uint32_t runs = SweepRuns();
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("fig8_energy_unitask",
                       "average energy per uni-task application (controlled failures)");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Figure 8", "average energy per uni-task application (controlled failures)");
  std::printf("(%u runs per cell)\n\n", runs);

  const report::AppKind apps_order[] = {report::AppKind::kDma, report::AppKind::kTemp,
                                        report::AppKind::kLea};
  const char* labels[] = {"Single", "Timely", "Always"};

  report::TextTable table({"Runtime", "Single (mJ)", "Timely (mJ)", "Always (mJ)"});
  for (apps::RuntimeKind rt : kBaselinePlusEaseio) {
    std::vector<std::string> row{ToString(rt)};
    for (size_t a = 0; a < 3; ++a) {
      report::ExperimentConfig config;
      config.runtime = rt;
      config.app = apps_order[a];
      const report::Aggregate agg = report::RunSweep(config, runs, jobs);
      emitter.AddAggregate({{"semantic", labels[a]},
                            {"app", ToString(apps_order[a])},
                            {"runtime", ToString(rt)}},
                           agg);
      row.push_back(report::Fmt(agg.energy_mj, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
