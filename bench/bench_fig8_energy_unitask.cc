// Figure 8: average energy consumed to complete each uni-task application under
// controlled power failures, per runtime.
//
// Expected shape (paper): energy tracks the Figure 7 time decomposition — roughly
// halved for the Single workload under EaseIO, moderately reduced for Timely, and a
// wash for Always.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  const uint32_t runs = SweepRuns();
  PrintHeader("Figure 8", "average energy per uni-task application (controlled failures)");
  std::printf("(%u runs per cell)\n\n", runs);

  const report::AppKind apps_order[] = {report::AppKind::kDma, report::AppKind::kTemp,
                                        report::AppKind::kLea};
  const char* labels[] = {"Single", "Timely", "Always"};

  report::TextTable table({"Runtime", "Single (mJ)", "Timely (mJ)", "Always (mJ)"});
  for (apps::RuntimeKind rt : kBaselinePlusEaseio) {
    std::vector<std::string> row{ToString(rt)};
    for (report::AppKind app : apps_order) {
      report::ExperimentConfig config;
      config.runtime = rt;
      config.app = app;
      const report::Aggregate agg = report::RunSweep(config, runs);
      row.push_back(report::Fmt(agg.energy_mj, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  (void)labels;
}

}  // namespace
}  // namespace easeio::bench

int main() {
  easeio::bench::Main();
  return 0;
}
