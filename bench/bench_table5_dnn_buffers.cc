// Table 5: execution time and correctness of the weather-classification DNN with
// double-buffered vs single-buffered layer activations, under continuous and
// intermittent power.
//
// Expected shape (paper): with double buffers everyone is correct and EaseIO is a bit
// slower under continuous power (privatization overhead); with a single buffer the
// baselines produce incorrect results under intermittent power while EaseIO's Private
// DMA + regional privatization keep the pipeline consistent.

#include "bench_common.h"

namespace easeio::bench {
namespace {

struct Cell {
  double cont_ms = 0;
  double int_ms = 0;
  bool correct = true;
};

Cell Measure(BenchEmitter& emitter, ExperimentRunner& runner, apps::RuntimeKind rt,
             bool single_buffer, uint32_t runs, uint32_t jobs) {
  Cell cell;
  report::ExperimentConfig config;
  config.runtime = rt;
  config.app = report::AppKind::kWeather;
  config.app_options.single_buffer = single_buffer;

  config.continuous = true;
  const report::ExperimentResult cont = runner.Run(config);
  cell.cont_ms = cont.run.stats.TotalUs() / 1e3;

  config.continuous = false;
  const report::Aggregate agg = report::RunSweep(config, runs, jobs);
  emitter.AddAggregate({{"buffers", single_buffer ? "single" : "double"},
                        {"runtime", ToString(rt)}},
                       agg);
  emitter.AddMetrics({{"buffers", single_buffer ? "single" : "double"},
                      {"runtime", ToString(rt)},
                      {"power", "continuous"}},
                     {{"total_ms", cell.cont_ms}}, /*runs=*/1);
  cell.int_ms = agg.total_us / 1e3;
  cell.correct = agg.incorrect == 0;
  return cell;
}

void Main() {
  const uint32_t runs = SweepRuns(200);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("table5_dnn_buffers",
                       "weather DNN: double-buffered vs single-buffered activations");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Table 5", "weather DNN: double-buffered vs single-buffered activations");
  std::printf("(intermittent columns averaged over %u runs)\n\n", runs);

  report::TextTable table({"Runtime", "Double Cont.(ms)", "Double Int.(ms)", "Double Corr.",
                           "Single Cont.(ms)", "Single Int.(ms)", "Single Corr."});
  ExperimentRunner runner;  // one device reused across the continuous-power cells
  for (apps::RuntimeKind rt : kBaselinePlusEaseio) {
    const Cell dbl = Measure(emitter, runner, rt, /*single_buffer=*/false, runs, jobs);
    const Cell sgl = Measure(emitter, runner, rt, /*single_buffer=*/true, runs, jobs);
    table.AddRow({ToString(rt), report::Fmt(dbl.cont_ms, 2), report::Fmt(dbl.int_ms, 2),
                  dbl.correct ? "yes" : "NO", report::Fmt(sgl.cont_ms, 2),
                  report::Fmt(sgl.int_ms, 2), sgl.correct ? "yes" : "NO"});
  }
  table.Print();
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
