// Figure 7: total execution time of the three uni-task applications, decomposed into
// useful application work, runtime overhead, and wasted work, under controlled power
// failures (uniform [5, 20] ms), for Alpaca, InK, and EaseIO.
//
// Expected shape (paper): (a) Single/DMA — EaseIO dramatically shorter, almost all of
// the baselines' extra time being wasted re-executed copies; (b) Timely/Temp — EaseIO
// pays *more* overhead (timestamps) but less wasted work; (c) Always/LEA — all three
// runtimes effectively tie, EaseIO slightly above the baselines in overhead.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void RunOne(BenchEmitter& emitter, const char* title, const char* slug, report::AppKind app,
            uint32_t runs, uint32_t jobs) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::pair<std::string, std::vector<report::BarSegment>>> bars;
  for (apps::RuntimeKind rt : kBaselinePlusEaseio) {
    report::ExperimentConfig config;
    config.runtime = rt;
    config.app = app;
    const report::Aggregate agg = report::RunSweep(config, runs, jobs);
    emitter.AddAggregate({{"panel", slug}, {"app", ToString(app)}, {"runtime", ToString(rt)}},
                         agg);
    bars.push_back({ToString(rt),
                    {{"App", agg.app_us / 1e3},
                     {"Overhead", agg.overhead_us / 1e3},
                     {"Wasted", agg.wasted_us / 1e3}}});
  }
  PrintStackedBars(bars, "ms");
}

void Main() {
  const uint32_t runs = SweepRuns();
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("fig7_unitask",
                       "uni-task total execution time: App + Overhead + Wasted work");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Figure 7", "uni-task total execution time: App + Overhead + Wasted work");
  std::printf("(%u runs per bar, seeds 1..%u; failure emulation: on ~ U[5,20] ms)\n", runs,
              runs);
  RunOne(emitter, "(a) Single semantic - NVM to NVM DMA", "a", report::AppKind::kDma, runs,
         jobs);
  RunOne(emitter, "(b) Timely semantic - Temperature sensing", "b", report::AppKind::kTemp,
         runs, jobs);
  RunOne(emitter, "(c) Always semantic - LEA", "c", report::AppKind::kLea, runs, jobs);
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
