// Figure 7: total execution time of the three uni-task applications, decomposed into
// useful application work, runtime overhead, and wasted work, under controlled power
// failures (uniform [5, 20] ms), for Alpaca, InK, and EaseIO.
//
// Expected shape (paper): (a) Single/DMA — EaseIO dramatically shorter, almost all of
// the baselines' extra time being wasted re-executed copies; (b) Timely/Temp — EaseIO
// pays *more* overhead (timestamps) but less wasted work; (c) Always/LEA — all three
// runtimes effectively tie, EaseIO slightly above the baselines in overhead.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void RunOne(const char* title, report::AppKind app, uint32_t runs) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::pair<std::string, std::vector<report::BarSegment>>> bars;
  for (apps::RuntimeKind rt : kBaselinePlusEaseio) {
    report::ExperimentConfig config;
    config.runtime = rt;
    config.app = app;
    const report::Aggregate agg = report::RunSweep(config, runs);
    bars.push_back({ToString(rt),
                    {{"App", agg.app_us / 1e3},
                     {"Overhead", agg.overhead_us / 1e3},
                     {"Wasted", agg.wasted_us / 1e3}}});
  }
  PrintStackedBars(bars, "ms");
}

void Main() {
  const uint32_t runs = SweepRuns();
  PrintHeader("Figure 7", "uni-task total execution time: App + Overhead + Wasted work");
  std::printf("(%u runs per bar, seeds 1..%u; failure emulation: on ~ U[5,20] ms)\n", runs,
              runs);
  RunOne("(a) Single semantic - NVM to NVM DMA", report::AppKind::kDma, runs);
  RunOne("(b) Timely semantic - Temperature sensing", report::AppKind::kTemp, runs);
  RunOne("(c) Always semantic - LEA", report::AppKind::kLea, runs);
}

}  // namespace
}  // namespace easeio::bench

int main() {
  easeio::bench::Main();
  return 0;
}
