// Extension: quantifying the Samoyed-style atomic-function baseline next to the
// paper's evaluated systems (Table 1 compares it only qualitatively).
//
// Scope note: this runtime models Samoyed's atomic functions (JIT checkpoint on entry,
// undo-logged NV writes, whole-function retry) on top of the shared task kernel. It
// does *not* model Samoyed's within-task JIT resume for pure compute, so its wasted
// work here tracks the task-model baselines plus checkpoint/undo-log overhead; the
// rows below therefore quantify its I/O behaviour (all I/O re-executes, no semantics)
// and its memory-safety overhead, not its checkpoint placement policy.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  const uint32_t runs = SweepRuns(500);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("ext_samoyed",
                       "atomic-function runtime vs the paper's systems (weather app)");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Extension: Samoyed baseline",
              "atomic-function runtime vs the paper's systems (weather app)");
  std::printf("(%u runs per row)\n\n", runs);

  report::TextTable table({"Runtime", "Total (ms)", "Overhead (ms)", "Wasted (ms)",
                           "I/O re-exec/run", "I/O skipped/run", "Correct"});
  for (apps::RuntimeKind rt :
       {apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk, apps::RuntimeKind::kSamoyed,
        apps::RuntimeKind::kEaseio}) {
    report::ExperimentConfig config;
    config.runtime = rt;
    config.app = report::AppKind::kWeather;
    config.app_options.single_buffer = false;
    const report::Aggregate agg = report::RunSweep(config, runs, jobs);
    emitter.AddAggregate({{"runtime", ToString(rt)}}, agg);
    table.AddRow({ToString(rt), report::Fmt(agg.total_us / 1e3, 2),
                  report::Fmt(agg.overhead_us / 1e3, 2), report::Fmt(agg.wasted_us / 1e3, 2),
                  report::Fmt(static_cast<double>(agg.io_reexecutions) / runs, 2),
                  report::Fmt(static_cast<double>(agg.io_skipped) / runs, 2),
                  std::to_string(agg.correct) + "/" + std::to_string(agg.runs)});
  }
  table.Print();

  std::printf(
      "\nSamoyed keeps its atomic functions memory-consistent (see samoyed_test.cc) but\n"
      "re-executes every interrupted I/O operation — the qualitative 'Yes (Atomic\n"
      "Functions) / Medium' cells of the paper's Table 1, measured.\n"
      "\nThe incorrect Samoyed runs all trace to the application's job counter, a WAR\n"
      "update that the port leaves outside any atomic function: Samoyed protects only\n"
      "what the programmer wraps, while Alpaca/InK privatize declared task state and\n"
      "EaseIO covers it with regional privatization. A native Samoyed port would wrap\n"
      "that update in an atomic function.\n");
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
