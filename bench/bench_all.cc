// Driver: runs the whole bench grid and merges the per-binary JSON artifacts into a
// top-level BENCH_SUMMARY.json.
//
// Each bench binary stays independently runnable; this driver shells out to the
// sibling executables (resolved next to argv[0]), forwards --runs/--jobs via the
// EASEIO_BENCH_RUNS / EASEIO_BENCH_JOBS environment, and splices the raw
// results/bench_<artifact>.json files verbatim into the summary:
//
//   { "schema": "easeio-bench-summary/1",
//     "config":  { "runs": .., "jobs": .. },          // absent if not forced here
//     "benches": [ <bench_<artifact>.json object>, .. ],
//     "failed":  [ "<artifact>", .. ],                 // non-zero exit or missing JSON
//     "total_benches": N, "wall_seconds": S }
//
// Exit status is non-zero iff any bench failed.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace easeio::bench {
namespace {

// Grid order: paper artifacts first, then ablations/extensions, micro last (it is the
// only binary with its own flag grammar, so it must not receive --runs/--jobs).
const char* const kArtifacts[] = {
    "fig7_unitask",      "fig8_energy_unitask", "fig10_multitask",
    "fig11_energy_multitask", "fig12_correctness", "fig13_harvester",
    "table1_features",   "table3_appstats",     "table4_reexec",
    "table5_dnn_buffers", "table6_memory",      "ablation_regional",
    "ablation_timekeeper", "sweep_failure_rate", "ext_samoyed",
    "ext_trace",         "daemon_throughput",   "micro_overheads",
    "chk_throughput",    "chk_exhaust",         "metrics_overhead",
};

bool Skipped(const std::vector<std::string>& skips, const char* artifact) {
  for (const std::string& s : skips) {
    if (s == artifact) {
      return true;
    }
  }
  return false;
}

// Reads a whole file; empty string on failure.
std::string Slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// Trims trailing whitespace and sanity-checks that the artifact looks like a JSON
// object (full validation happens downstream, e.g. CI's `python3 -m json.tool`).
std::string TrimArtifactJson(std::string raw) {
  while (!raw.empty() && (raw.back() == '\n' || raw.back() == '\r' || raw.back() == ' ')) {
    raw.pop_back();
  }
  if (raw.empty() || raw.front() != '{' || raw.back() != '}') {
    return {};
  }
  return raw;
}

int Main(int argc, char** argv) {
  int64_t runs = -1;
  int64_t jobs = -1;
  std::string out_path = "BENCH_SUMMARY.json";
  std::vector<std::string> skips;
  tools::FlagDeduper dedupe(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t v = 0;
    if (std::strcmp(arg, "--help") != 0 && std::strcmp(arg, "-h") != 0 &&
        !dedupe.Note(arg)) {
      return 2;
    }
    if (std::strncmp(arg, "--runs=", 7) == 0) {
      if (!tools::ParseUintFlag(argv[0], "--runs", arg + 7, 1, 1'000'000, &v)) {
        return 2;
      }
      runs = static_cast<int64_t>(v);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      if (!tools::ParseUintFlag(argv[0], "--jobs", arg + 7, 0, 4096, &v)) {
        return 2;
      }
      jobs = static_cast<int64_t>(v);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--skip=", 7) == 0) {
      // Comma-separated artifact slugs.
      std::string list = arg + 7;
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) {
          skips.push_back(list.substr(pos, end - pos));
        }
        if (comma == std::string::npos) {
          break;
        }
        pos = comma + 1;
      }
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "usage: %s [--runs=N] [--jobs=N] [--out=PATH] [--skip=a,b,..]\n"
          "  --runs  sweep size per cell, exported as EASEIO_BENCH_RUNS\n"
          "  --jobs  sweep worker threads, exported as EASEIO_BENCH_JOBS\n"
          "  --out   summary path (default BENCH_SUMMARY.json)\n"
          "  --skip  comma-separated artifact slugs to skip\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown option '%s' (try --help)\n", argv[0], arg);
      return 2;
    }
  }
  if (runs >= 0) {
    ::setenv("EASEIO_BENCH_RUNS", std::to_string(runs).c_str(), /*overwrite=*/1);
  }
  if (jobs >= 0) {
    ::setenv("EASEIO_BENCH_JOBS", std::to_string(jobs).c_str(), /*overwrite=*/1);
  }

  const std::filesystem::path bin_dir = [&] {
    std::filesystem::path self(argv[0]);
    return self.has_parent_path() ? self.parent_path() : std::filesystem::path(".");
  }();
  const char* env_dir = std::getenv("EASEIO_BENCH_OUT_DIR");
  const std::filesystem::path results_dir(env_dir != nullptr && *env_dir != '\0' ? env_dir
                                                                                 : "results");

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::string> merged;  // raw per-bench JSON objects, grid order
  std::vector<std::string> failed;
  for (const char* artifact : kArtifacts) {
    if (Skipped(skips, artifact)) {
      std::printf("[bench_all] skipping %s\n", artifact);
      continue;
    }
    const std::filesystem::path exe = bin_dir / (std::string("bench_") + artifact);
    std::error_code ec;
    if (!std::filesystem::exists(exe, ec)) {
      std::fprintf(stderr, "[bench_all] missing binary %s\n", exe.string().c_str());
      failed.emplace_back(artifact);
      continue;
    }
    std::printf("[bench_all] running %s\n", exe.string().c_str());
    std::fflush(stdout);
    const std::string cmd = "\"" + exe.string() + "\"";
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "[bench_all] %s exited with status %d\n", artifact, rc);
      failed.emplace_back(artifact);
      continue;
    }
    const std::filesystem::path json_path =
        results_dir / (std::string("bench_") + artifact + ".json");
    std::string raw = TrimArtifactJson(Slurp(json_path));
    if (raw.empty()) {
      std::fprintf(stderr, "[bench_all] %s produced no JSON at %s\n", artifact,
                   json_path.string().c_str());
      failed.emplace_back(artifact);
      continue;
    }
    merged.push_back(std::move(raw));
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  report::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("easeio-bench-summary/1");
  w.Key("config").BeginObject();
  if (runs >= 0) {
    w.Key("runs").Int(runs);
  }
  if (jobs >= 0) {
    w.Key("jobs").Int(jobs);
  }
  w.EndObject();
  w.Key("benches").BeginArray();
  for (const std::string& raw : merged) {
    w.Raw(raw);
  }
  w.EndArray();
  w.Key("failed").BeginArray();
  for (const std::string& artifact : failed) {
    w.String(artifact);
  }
  w.EndArray();
  w.Key("total_benches").UInt(merged.size());
  w.Key("wall_seconds").Double(wall_s);
  w.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[bench_all] cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << w.TakeString() << "\n";
  std::printf("[bench_all] wrote %s (%zu benches, %zu failed, %.1f s)\n", out_path.c_str(),
              merged.size(), failed.size(), wall_s);
  return failed.empty() ? 0 : 1;
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) { return easeio::bench::Main(argc, argv); }
