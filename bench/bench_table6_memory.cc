// Table 6: memory and code-size requirements per application and runtime.
//
// FRAM and RAM columns are *measured* from the simulated allocators (application data
// plus runtime metadata, private copies, and privatization buffers); the .text column
// comes from each runtime's documented code-size model (base kernel + per-construct
// generated code), calibrated against the magnitudes the paper reports.
//
// Expected shape (paper): EaseIO adds ~1 KB of .text over Alpaca (regional
// privatization + DMA handling) and the largest FRAM footprint when DMA is present
// (the privatization buffer); the temperature app has no DMA, so EaseIO's extra FRAM
// shrinks to per-flag bytes; InK's kernel dominates its own footprint.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  BenchEmitter emitter("table6_memory", "memory and code size requirements (bytes)");
  emitter.SetSweep(1, 1);  // footprint is static; one continuous run per cell
  PrintHeader("Table 6", "memory and code size requirements (bytes)");
  std::printf("\n");

  const report::AppKind apps_order[] = {report::AppKind::kLea, report::AppKind::kDma,
                                        report::AppKind::kTemp, report::AppKind::kFir,
                                        report::AppKind::kWeather};

  report::TextTable table({"App", "Runtime", ".text", "RAM", "FRAM(meta)", "FRAM(app)"});
  ExperimentRunner runner;  // one device reused across the whole grid
  for (report::AppKind app : apps_order) {
    for (apps::RuntimeKind rt : kBaselinePlusEaseio) {
      report::ExperimentConfig config;
      config.runtime = rt;
      config.app = app;
      config.continuous = true;  // footprint is static; one cheap run suffices
      const report::ExperimentResult r = runner.Run(config);
      emitter.AddMetrics({{"app", ToString(app)}, {"runtime", ToString(rt)}},
                         {{"text_bytes", static_cast<double>(r.code_bytes)},
                          {"ram_bytes", static_cast<double>(r.sram_bytes)},
                          {"fram_meta_bytes", static_cast<double>(r.fram_meta_bytes)},
                          {"fram_app_bytes", static_cast<double>(r.fram_app_bytes)}},
                         /*runs=*/1);
      table.AddRow({ToString(app), ToString(rt), std::to_string(r.code_bytes),
                    std::to_string(r.sram_bytes), std::to_string(r.fram_meta_bytes),
                    std::to_string(r.fram_app_bytes)});
    }
  }
  table.Print();
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
