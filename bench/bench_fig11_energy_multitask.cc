// Figure 11: average energy consumption of the multi-task applications under
// controlled power failures, for all four runtime configurations.
//
// Expected shape (paper): EaseIO reduces FIR energy by a few percent and weather-app
// energy by roughly 15-20%; EaseIO/Op. sits at or below EaseIO.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  const uint32_t runs = SweepRuns();
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("fig11_energy_multitask",
                       "average energy of multi-task applications (controlled failures)");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Figure 11", "average energy of multi-task applications (controlled failures)");
  std::printf("(%u runs per cell)\n\n", runs);

  report::TextTable table({"Runtime", "FIR Filter (mJ)", "Weather App. (mJ)"});
  for (apps::RuntimeKind rt : kAllFour) {
    std::vector<std::string> row{ToString(rt)};
    for (report::AppKind app : {report::AppKind::kFir, report::AppKind::kWeather}) {
      report::ExperimentConfig config;
      config.runtime = rt;
      config.app = app;
      config.app_options.single_buffer = false;
      const report::Aggregate agg = report::RunSweep(config, runs, jobs);
      emitter.AddAggregate({{"app", ToString(app)}, {"runtime", ToString(rt)}}, agg);
      row.push_back(report::Fmt(agg.energy_mj, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
