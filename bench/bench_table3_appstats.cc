// Table 3: tasks and I/O functions of the evaluated applications, plus the registered
// site counts (I/O call sites, I/O blocks, DMA sites) as seen by each runtime.

#include "bench_common.h"

#include "kernel/nv.h"
#include "sim/failure.h"

namespace easeio::bench {
namespace {

void Main() {
  BenchEmitter emitter("table3_appstats",
                       "tasks and I/O functions of the evaluated applications");
  PrintHeader("Table 3", "tasks and I/O functions of the evaluated applications");
  std::printf("\n");

  const report::AppKind apps_order[] = {report::AppKind::kLea, report::AppKind::kDma,
                                        report::AppKind::kTemp, report::AppKind::kFir,
                                        report::AppKind::kWeather};

  report::TextTable table(
      {"App", "Tasks", "I/O funcs", "I/O call sites", "I/O blocks", "DMA sites"});
  for (report::AppKind app : apps_order) {
    // Structure is runtime-independent; build once against EaseIO to count sites.
    report::ExperimentConfig config;
    config.app = app;
    config.runtime = apps::RuntimeKind::kEaseio;
    config.continuous = true;
    // Re-build through the public experiment path and read the registration counts via
    // a dedicated probe run.
    sim::NeverFailScheduler never;
    sim::DeviceConfig dev_config;
    sim::Device dev(dev_config, never);
    kernel::NvManager nv(dev.mem());
    auto rt = apps::MakeRuntime(apps::RuntimeKind::kEaseio);
    rt->Bind(dev, nv);
    apps::AppHandle handle = [&] {
      switch (app) {
        case report::AppKind::kDma:
          return apps::BuildDmaApp(dev, *rt, nv);
        case report::AppKind::kTemp:
          return apps::BuildTempApp(dev, *rt, nv);
        case report::AppKind::kLea:
          return apps::BuildLeaApp(dev, *rt, nv);
        case report::AppKind::kFir:
          return apps::BuildFirApp(dev, *rt, nv);
        case report::AppKind::kWeather:
          return apps::BuildWeatherApp(dev, *rt, nv);
        case report::AppKind::kBranch:
          return apps::BuildBranchApp(dev, *rt, nv);
      }
      return apps::BuildBranchApp(dev, *rt, nv);
    }();
    emitter.AddMetrics({{"app", ToString(app)}},
                       {{"tasks", static_cast<double>(handle.num_tasks)},
                        {"io_funcs", static_cast<double>(handle.num_io_funcs)},
                        {"io_call_sites", static_cast<double>(rt->io_sites().size())},
                        {"io_blocks", static_cast<double>(rt->io_blocks().size())},
                        {"dma_sites", static_cast<double>(rt->dma_sites().size())}});
    table.AddRow({ToString(app), std::to_string(handle.num_tasks),
                  std::to_string(handle.num_io_funcs), std::to_string(rt->io_sites().size()),
                  std::to_string(rt->io_blocks().size()),
                  std::to_string(rt->dma_sites().size())});
  }
  table.Print();
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
