// Figure 12: number of correct and incorrect executions of the FIR filter under
// controlled power failures. The filter's input and output share one non-volatile
// buffer, creating a WAR dependency through DMA.
//
// Expected shape (paper): Alpaca and InK produce roughly 16-21% incorrect results
// (whenever a failure lands between the output DMA and task commit, the re-executed
// input DMA reads filtered data); EaseIO produces 0 incorrect results.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  const uint32_t runs = SweepRuns();
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("fig12_correctness", "correct vs incorrect FIR filter executions");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Figure 12", "correct vs incorrect FIR filter executions");
  std::printf("(%u runs per runtime)\n\n", runs);

  report::TextTable table({"Runtime", "Correct", "Incorrect", "Incorrect %"});
  for (apps::RuntimeKind rt : kBaselinePlusEaseio) {
    report::ExperimentConfig config;
    config.runtime = rt;
    config.app = report::AppKind::kFir;
    const report::Aggregate agg = report::RunSweep(config, runs, jobs);
    emitter.AddAggregate({{"app", ToString(config.app)}, {"runtime", ToString(rt)}}, agg);
    // correct + incorrect == runs by the Aggregate contract (experiment.h), so this
    // percentage has a stable denominator even if some trials hit the guard.
    table.AddRow({ToString(rt), std::to_string(agg.correct), std::to_string(agg.incorrect),
                  report::Fmt(100.0 * agg.incorrect / agg.runs, 1) + "%"});
  }
  table.Print();
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
