// Figure 10: execution time of the multi-task applications (FIR filter and the
// DNN-based weather classifier), decomposed into App + Overhead + Wasted work, for
// Alpaca, InK, EaseIO, and EaseIO/Op. (the Exclude annotation on constant-data DMAs).
//
// Expected shape (paper): EaseIO carries higher overhead than the baselines (Private
// DMA privatization) but less wasted work, for a lower total; EaseIO/Op. trims the
// privatization of constant coefficients and lands near Alpaca's total.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void RunOne(BenchEmitter& emitter, const char* title, report::AppKind app, uint32_t runs,
            uint32_t jobs) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::pair<std::string, std::vector<report::BarSegment>>> bars;
  for (apps::RuntimeKind rt : kAllFour) {
    report::ExperimentConfig config;
    config.runtime = rt;
    config.app = app;
    config.app_options.single_buffer = false;  // the standard (double-buffered) pipeline
    const report::Aggregate agg = report::RunSweep(config, runs, jobs);
    emitter.AddAggregate({{"app", ToString(app)}, {"runtime", ToString(rt)}}, agg);
    bars.push_back({ToString(rt),
                    {{"App", agg.app_us / 1e3},
                     {"Overhead", agg.overhead_us / 1e3},
                     {"Wasted", agg.wasted_us / 1e3}}});
  }
  PrintStackedBars(bars, "ms");
}

void Main() {
  const uint32_t runs = SweepRuns();
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("fig10_multitask",
                       "multi-task execution time: App + Overhead + Wasted work");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Figure 10", "multi-task execution time: App + Overhead + Wasted work");
  std::printf("(%u runs per bar)\n", runs);
  RunOne(emitter, "FIR Filter", report::AppKind::kFir, runs, jobs);
  RunOne(emitter, "Weather App.", report::AppKind::kWeather, runs, jobs);
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
