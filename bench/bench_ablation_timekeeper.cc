// Ablation: persistent-timekeeper resolution vs Timely effectiveness.
//
// Timely semantics need wall-clock time across power failures; the paper relies on a
// dedicated timekeeping circuit [18]. Real remanence-based timekeepers quantise time
// coarsely, which makes freshness decisions conservative or wrong. This sweep runs the
// Timely temperature workload with the timekeeper tick ranging from 1 us (ideal) to
// 8 ms (coarse) and reports how many re-reads EaseIO still avoids.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  const uint32_t runs = SweepRuns(500);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("ablation_timekeeper",
                       "Timely temperature app vs persistent-timekeeper tick");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Ablation: timekeeper resolution",
              "Timely temperature app vs persistent-timekeeper tick");
  std::printf("(%u runs per row; 10 ms freshness window)\n\n", runs);

  report::TextTable table({"Tick", "Total (ms)", "Re-executions", "Skipped reads"});
  for (uint64_t tick_us : {1ull, 100ull, 1000ull, 4000ull, 8000ull}) {
    report::ExperimentConfig config;
    config.runtime = apps::RuntimeKind::kEaseio;
    config.app = report::AppKind::kTemp;
    config.timekeeper_tick_us = tick_us;
    const report::Aggregate agg = report::RunSweep(config, runs, jobs);
    emitter.AddAggregate({{"tick_us", std::to_string(tick_us)}}, agg);
    table.AddRow({report::Fmt(static_cast<double>(tick_us) / 1000.0, 3) + " ms",
                  report::Fmt(agg.total_us / 1e3, 2), std::to_string(agg.io_reexecutions),
                  std::to_string(agg.io_skipped)});
  }
  table.Print();

  std::printf(
      "\nCoarser ticks quantise both 'now' and the completion stamps to the same grid,\n"
      "so expiry is detected only after ~2 ticks: near the 10 ms window the runtime\n"
      "*under*-detects staleness and serves expired readings as fresh (more skips,\n"
      "fewer re-reads — but violated freshness). Timekeeper resolution is therefore a\n"
      "correctness parameter for Timely, not a mere overhead knob.\n");
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
