// Sweep: EaseIO's advantage vs power-failure frequency.
//
// The paper's emulation fixes the failure interval at U[5, 20] ms. This sweep varies
// the interval upper bound (holding the lower bound at half of it) to show where
// EaseIO's benefit comes from: with frequent failures the baselines drown in
// re-executed I/O, while with generous intervals everything completes in one attempt
// and EaseIO's advantage shrinks to (slightly negative) bookkeeping overhead — the
// honest crossover a deployment engineer would want to know.

#include "bench_common.h"

namespace easeio::bench {
namespace {

void Main() {
  const uint32_t runs = SweepRuns(500);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("sweep_failure_rate",
                       "Single-semantics DMA app, Alpaca vs EaseIO, vs failure frequency");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Sweep: failure frequency", "Single-semantics DMA app, Alpaca vs EaseIO");
  std::printf("(%u runs per cell; on-interval ~ U[max/2, max])\n\n", runs);

  report::TextTable table({"Max interval (ms)", "Alpaca (ms)", "EaseIO (ms)", "Speedup",
                           "Alpaca completes", "EaseIO completes"});
  for (uint64_t max_ms : {6ull, 10ull, 15ull, 20ull, 30ull, 60ull}) {
    report::ExperimentConfig config;
    config.app = report::AppKind::kDma;
    config.on_min_us = max_ms * 500;
    config.on_max_us = max_ms * 1000;

    config.runtime = apps::RuntimeKind::kAlpaca;
    const report::Aggregate alpaca = report::RunSweep(config, runs, jobs);
    config.runtime = apps::RuntimeKind::kEaseio;
    const report::Aggregate easeio = report::RunSweep(config, runs, jobs);
    emitter.AddAggregate({{"max_interval_ms", std::to_string(max_ms)}, {"runtime", "alpaca"}},
                         alpaca);
    emitter.AddAggregate({{"max_interval_ms", std::to_string(max_ms)}, {"runtime", "easeio"}},
                         easeio);

    auto time_cell = [](const report::Aggregate& agg) {
      return agg.completed < agg.runs ? std::string("non-terminating")
                                      : report::Fmt(agg.total_us / 1e3, 2);
    };
    table.AddRow({std::to_string(max_ms), time_cell(alpaca), time_cell(easeio),
                  report::Fmt(alpaca.total_us / easeio.total_us, 2) + "x",
                  std::to_string(alpaca.completed) + "/" + std::to_string(runs),
                  std::to_string(easeio.completed) + "/" + std::to_string(runs)});
  }
  table.Print();

  std::printf(
      "\nThe short-interval rows reproduce the paper's non-termination hazard (Section\n"
      "3.5): when the re-executed I/O alone exceeds the energy budget of one cycle, the\n"
      "baselines never finish; EaseIO completes once the copy has succeeded once. The\n"
      "long-interval rows show the honest other end: without failures EaseIO's benefit\n"
      "disappears into (tiny) bookkeeping overhead.\n");
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
