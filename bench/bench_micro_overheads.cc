// Micro-benchmarks of the EaseIO runtime primitives (google-benchmark).
//
// Two kinds of numbers per operation:
//   * host wall time per call — how fast the simulator executes (throughput of the
//     harness itself);
//   * sim_cycles — the *simulated* device cycles one call charges, i.e. the runtime
//     overhead a real MSP430 deployment would pay. These are the microscopic inputs
//     behind the Overhead segments of Figures 7 and 10.

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "apps/runtime_factory.h"
#include "core/easeio_runtime.h"
#include "kernel/engine.h"
#include "sim/failure.h"

namespace easeio {
namespace {

namespace k = easeio::kernel;

// Shared fixture: a never-failing device with an EaseIO runtime and one registered
// site per semantic.
struct Fixture {
  sim::NeverFailScheduler never;
  sim::DeviceConfig config;
  sim::Device dev;
  k::NvManager nv;
  rt::EaseioRuntime runtime;
  k::TaskCtx ctx;
  k::IoSiteId single, timely, always;
  k::DmaSiteId dma;
  uint32_t nv_a, nv_b, sram;

  Fixture()
      : dev(config, never), nv(dev.mem()), ctx(dev, runtime, nv) {
    runtime.Bind(dev, nv);
    single = runtime.RegisterIoSite({0, "m.single", 1, k::IoSemantic::kSingle});
    timely = runtime.RegisterIoSite({0, "m.timely", 1, k::IoSemantic::kTimely, 10'000});
    always = runtime.RegisterIoSite({0, "m.always", 1, k::IoSemantic::kAlways});
    dma = runtime.RegisterDmaSite({0, "m.dma"});
    nv_a = dev.mem().AllocFram("m.a", 256);
    nv_b = dev.mem().AllocFram("m.b", 256);
    sram = dev.mem().AllocSram("m.s", 256);
    ctx.SetCurrentTaskForTest(0);
    dev.Begin();
  }
};

int16_t NoopIo(k::TaskCtx& ctx) {
  ctx.dev().Cpu(1);
  return 42;
}

void ReportSimCycles(benchmark::State& state, sim::Device& dev, uint64_t start_us) {
  state.counters["sim_cycles"] = benchmark::Counter(
      static_cast<double>(dev.clock().on_us() - start_us) /
          static_cast<double>(state.iterations()),
      benchmark::Counter::kDefaults);
}

void BM_CallIoSingleFirstExecution(benchmark::State& state) {
  Fixture f;
  const uint64_t start = f.dev.clock().on_us();
  for (auto _ : state) {
    // Reset the lock flag so every iteration takes the execute path.
    f.runtime.OnTaskCommit(f.ctx);
    benchmark::DoNotOptimize(f.runtime.CallIo(f.ctx, f.single, 0, NoopIo));
  }
  ReportSimCycles(state, f.dev, start);
}
BENCHMARK(BM_CallIoSingleFirstExecution);

void BM_CallIoSingleSkip(benchmark::State& state) {
  Fixture f;
  f.runtime.CallIo(f.ctx, f.single, 0, NoopIo);  // complete once; the loop always skips
  const uint64_t start = f.dev.clock().on_us();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.runtime.CallIo(f.ctx, f.single, 0, NoopIo));
  }
  ReportSimCycles(state, f.dev, start);
}
BENCHMARK(BM_CallIoSingleSkip);

void BM_CallIoTimelyFreshSkip(benchmark::State& state) {
  Fixture f;
  f.runtime.CallIo(f.ctx, f.timely, 0, NoopIo);
  const uint64_t start = f.dev.clock().on_us();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.runtime.CallIo(f.ctx, f.timely, 0, NoopIo));
  }
  ReportSimCycles(state, f.dev, start);
}
BENCHMARK(BM_CallIoTimelyFreshSkip);

void BM_CallIoAlways(benchmark::State& state) {
  Fixture f;
  const uint64_t start = f.dev.clock().on_us();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.runtime.CallIo(f.ctx, f.always, 0, NoopIo));
  }
  ReportSimCycles(state, f.dev, start);
}
BENCHMARK(BM_CallIoAlways);

void BM_DmaCopyNvToNvFirst(benchmark::State& state) {
  Fixture f;
  const uint64_t start = f.dev.clock().on_us();
  for (auto _ : state) {
    f.runtime.OnTaskCommit(f.ctx);  // clear the done flag
    f.runtime.DmaCopy(f.ctx, f.dma, f.nv_b, f.nv_a, 256);
  }
  ReportSimCycles(state, f.dev, start);
}
BENCHMARK(BM_DmaCopyNvToNvFirst);

void BM_DmaCopyNvToNvSkipped(benchmark::State& state) {
  Fixture f;
  f.runtime.DmaCopy(f.ctx, f.dma, f.nv_b, f.nv_a, 256);  // completes; loop skips
  const uint64_t start = f.dev.clock().on_us();
  for (auto _ : state) {
    f.runtime.DmaCopy(f.ctx, f.dma, f.nv_b, f.nv_a, 256);
  }
  ReportSimCycles(state, f.dev, start);
}
BENCHMARK(BM_DmaCopyNvToNvSkipped);

void BM_DmaCopyPrivateTwoPhase(benchmark::State& state) {
  Fixture f;
  const uint64_t start = f.dev.clock().on_us();
  for (auto _ : state) {
    f.runtime.OnTaskCommit(f.ctx);
    f.runtime.DmaCopy(f.ctx, f.dma, f.sram, f.nv_a, 256);  // NV -> V: Private
  }
  ReportSimCycles(state, f.dev, start);
}
BENCHMARK(BM_DmaCopyPrivateTwoPhase);

void BM_RegionalSnapshotRestore(benchmark::State& state) {
  sim::NeverFailScheduler never;
  sim::DeviceConfig config;
  sim::Device dev(config, never);
  k::NvManager nv(dev.mem());
  rt::EaseioRuntime runtime;
  runtime.Bind(dev, nv);
  const k::NvSlotId a = nv.Define("r.a", static_cast<uint32_t>(state.range(0)));
  runtime.SetTaskRegions(0, {{a}});
  k::TaskCtx ctx(dev, runtime, nv);
  ctx.SetCurrentTaskForTest(0);
  dev.Begin();
  runtime.OnTaskBegin(ctx);  // first entry: snapshot
  const uint64_t start = dev.clock().on_us();
  for (auto _ : state) {
    runtime.OnTaskBegin(ctx);  // re-entry: restore
  }
  ReportSimCycles(state, dev, start);
}
BENCHMARK(BM_RegionalSnapshotRestore)->Arg(16)->Arg(256)->Arg(4096);

// ConsoleReporter that additionally captures every finished run into a BenchEmitter
// cell, so the micro numbers land in results/bench_micro_overheads.json with the same
// schema as the sweep benches.
class EmittingReporter : public benchmark::ConsoleReporter {
 public:
  explicit EmittingReporter(bench::BenchEmitter* emitter) : emitter_(emitter) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      std::vector<std::pair<std::string, double>> metrics = {
          {"real_ns_per_iter", run.GetAdjustedRealTime()},
          {"cpu_ns_per_iter", run.GetAdjustedCPUTime()},
          {"iterations", static_cast<double>(run.iterations)}};
      const auto it = run.counters.find("sim_cycles");
      if (it != run.counters.end()) {
        metrics.emplace_back("sim_us_per_call", static_cast<double>(it->second));
      }
      emitter_->AddMetrics({{"benchmark", run.benchmark_name()}}, std::move(metrics));
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::BenchEmitter* emitter_;
};

}  // namespace
}  // namespace easeio

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  easeio::bench::BenchEmitter emitter(
      "micro_overheads", "per-call host time and simulated cycles of the EaseIO primitives");
  easeio::EmittingReporter reporter(&emitter);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  emitter.Write();
  return 0;
}
