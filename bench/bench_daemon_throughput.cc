// Daemon result-cache throughput: cold (every job simulated) vs warm (every job a
// content-hash cache hit) jobs/sec through an in-process JobRunner — the daemon's
// worker pool and cache with the socket layer factored out. The warm path must be at
// least 10x the cold path (the point of content-addressed caching); the binary exits
// non-zero otherwise, so the grid run enforces it.
//
//   --runs=N  distinct trace jobs per phase (default 64; env EASEIO_BENCH_RUNS)
//   --jobs=N  runner worker threads (default 0 = hardware concurrency)

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "daemon/cache.h"
#include "daemon/runner.h"

namespace easeio::bench {
namespace {

int Main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  const uint32_t n = SweepRuns(64);
  const uint32_t workers = SweepJobs();

  PrintHeader("daemon_throughput", "easeiod cache: warm vs cold jobs/sec");

  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path() /
      ("easeiod-bench-" + std::to_string(getpid()));
  daemon::ResultCache cache(cache_dir.string(), /*cap_bytes=*/0);

  std::atomic<uint64_t> finished{0};
  daemon::JobRunner::Options options;
  options.workers = workers;
  daemon::JobRunner runner(&cache, options, [&finished](const daemon::JobEvent& event) {
    if (event.state == "done" || event.state == "failed") {
      finished.fetch_add(1, std::memory_order_relaxed);
    }
  });
  runner.Start();

  // Distinct specs (the seed is a cache-key component), so the cold phase simulates
  // every job and the warm phase hits every one. Each job is a small sweep — the
  // daemon's typical unit of work, heavy enough that cold time is simulation, not
  // queueing.
  std::vector<daemon::JobSpec> specs(n);
  for (uint32_t i = 0; i < n; ++i) {
    specs[i].kind = daemon::JobKind::kSweep;
    specs[i].apps = {apps::AppKind::kTemp};
    specs[i].runtimes = {apps::RuntimeKind::kEaseio};
    specs[i].runs = 10;
    specs[i].seed = 1 + static_cast<uint64_t>(i) * specs[i].runs;
  }

  const auto run_phase = [&](const char* label) {
    const uint64_t before = finished.load(std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    for (const daemon::JobSpec& spec : specs) {
      runner.Submit(spec);
    }
    while (finished.load(std::memory_order_relaxed) - before < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const double jps = wall > 0 ? n / wall : 0.0;
    std::printf("  %-6s %5u jobs in %8.3f s  (%10.1f jobs/s)\n", label, n, wall, jps);
    return jps;
  };

  const double cold_jps = run_phase("cold");
  const double warm_jps = run_phase("warm");
  const double speedup = cold_jps > 0 ? warm_jps / cold_jps : 0.0;
  std::printf("  warm/cold speedup: %.1fx\n", speedup);

  const daemon::CacheStats stats = cache.Stats();
  runner.Stop();
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);

  BenchEmitter emitter("daemon_throughput", "easeiod cache: warm vs cold jobs/sec");
  emitter.SetSweep(n, workers);
  emitter.AddMetrics({{"stage", "cold"}}, {{"jobs_per_sec", cold_jps}}, n);
  emitter.AddMetrics({{"stage", "warm"}}, {{"jobs_per_sec", warm_jps}});
  emitter.AddMetrics({{"stage", "speedup"}},
                     {{"warm_over_cold", speedup},
                      {"cache_hits", static_cast<double>(stats.hits)},
                      {"cache_misses", static_cast<double>(stats.misses)}});
  if (!emitter.Write()) {
    return 1;
  }

  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "bench_daemon_throughput: warm/cold speedup %.1fx is below the 10x "
                 "floor\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) { return easeio::bench::Main(argc, argv); }
