// Metrics overhead: the chk explorer with and without an attached registry.
//
// The observability contract (DESIGN.md §15) is that metrics are cheap enough to
// leave on: counters always flow through the per-worker shards, and attaching a
// registry additionally turns on the phase clocks and the per-trial latency
// histogram. This artifact prices that delta on the two headline depth-2 cells
// (the DMA pipeline under EaseIO, the weather station under Samoyed): aggregate
// trials/sec over N interleaved repeats, detached vs attached, with the overhead
// target <2%. It also re-checks
// the identity half of the contract inline: the non-timing JSON must be
// byte-identical whether or not a registry is attached — metrics are timing-class
// and must never leak into the checked document.

#include <algorithm>
#include <string>

#include "bench_common.h"

#include "chk/explorer.h"
#include "report/jobs.h"

namespace easeio::bench {
namespace {

struct Cell {
  apps::AppKind app;
  apps::RuntimeKind runtime;
};

constexpr Cell kCells[] = {
    {apps::AppKind::kDma, apps::RuntimeKind::kEaseio},
    {apps::AppKind::kWeather, apps::RuntimeKind::kSamoyed},
};

constexpr double kTargetOverheadPct = 2.0;

struct ModeRun {
  chk::ExploreResult best;  // repeat with the highest trials/sec
  std::string canonical;    // non-timing JSON (identical across repeats)
};

// Folds one exploration into a mode's best-of accumulator, checking that the
// non-timing JSON never changes between repeats of one config.
void Accumulate(ModeRun* mode, chk::ExploreResult r) {
  const std::string canonical = chk::ToJson(r, /*include_timing=*/false);
  if (mode->canonical.empty()) {
    mode->canonical = canonical;
    mode->best = std::move(r);
    return;
  }
  EASEIO_CHECK(canonical == mode->canonical,
               "exploration result changed between repeats of one config");
  if (r.trials_per_sec > mode->best.trials_per_sec) {
    mode->best = std::move(r);
  }
}

void Main() {
  // Best-of-N settles the timing noise; the paper-scale default would be redundant.
  const uint32_t repeats = SweepRuns(5);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("metrics_overhead",
                       "depth-2 explorer trials/sec: metrics registry attached vs detached");
  emitter.SetSweep(repeats, jobs);
  emitter.AddConfig("target_overhead_pct", report::Fmt(kTargetOverheadPct, 1));
  PrintHeader("Metrics overhead",
              "depth-2 explorer trials/sec: metrics registry attached vs detached");
  std::printf("(%u repeats per mode in alternating timed blocks, fastest block kept;\n"
              " target overhead < %.1f%%)\n\n",
              repeats, kTargetOverheadPct);

  report::TextTable table({"Cell", "Off trials/s", "On trials/s", "Overhead", "Target"});
  bool all_within_target = true;
  for (const Cell& cell : kCells) {
    const std::string name = std::string(report::AppName(cell.app)) + "/" +
                             report::RuntimeName(cell.runtime);
    chk::ExploreConfig config;
    config.app = cell.app;
    config.runtime = cell.runtime;
    config.depth = 2;
    config.jobs = jobs;
    // One long-lived registry across the attached repeats, the way easechk and the
    // daemon hold one for their whole lifetime. The registry pointer is the mode
    // switch: null = detached (counters only, no clocks), non-null = attached
    // (clocks + per-trial histogram, like easechk --metrics).
    obs::Registry registry;
    ModeRun off, on;
    // One unmeasured warm-up fills the snapshot pools and code caches. A single
    // exploration is ~10 ms — too short to time on its own — so repeats are
    // grouped into blocks of kBlock explorations timed as one unit — one block
    // per repeat — the modes alternate block by block (clock drift and competing
    // load hit both sides equally), and each mode's rate is its *fastest* block:
    // the minimum-time estimator discards noise spikes, which are always
    // additive.
    chk::Explore(config);
    constexpr uint32_t kBlock = 4;
    const uint32_t blocks = repeats;
    uint64_t off_ns = UINT64_MAX;
    uint64_t on_ns = UINT64_MAX;
    for (uint32_t b = 0; b < blocks; ++b) {
      config.metrics = nullptr;
      uint64_t t0 = obs::MonotonicNanos();
      for (uint32_t i = 0; i < kBlock; ++i) {
        Accumulate(&off, chk::Explore(config));
      }
      off_ns = std::min(off_ns, obs::MonotonicNanos() - t0);
      config.metrics = &registry;
      t0 = obs::MonotonicNanos();
      for (uint32_t i = 0; i < kBlock; ++i) {
        Accumulate(&on, chk::Explore(config));
      }
      on_ns = std::min(on_ns, obs::MonotonicNanos() - t0);
    }
    // Identity half of the contract: attaching a registry must not change a byte
    // of the non-timing document.
    EASEIO_CHECK(off.canonical == on.canonical,
                 "metrics-attached exploration diverged from detached");

    const double trials = static_cast<double>(off.best.schedules) * kBlock;
    const double off_tps = off_ns > 0 ? trials / (static_cast<double>(off_ns) * 1e-9) : 0.0;
    const double on_tps = on_ns > 0 ? trials / (static_cast<double>(on_ns) * 1e-9) : 0.0;
    const double overhead_pct =
        off_tps > 0 ? (off_tps - on_tps) / off_tps * 100.0 : 0.0;
    const bool within = overhead_pct < kTargetOverheadPct;
    all_within_target = all_within_target && within;

    emitter.AddMetrics({{"app", report::AppName(cell.app)},
                        {"runtime", report::RuntimeName(cell.runtime)}},
                       {{"trials_per_sec_metrics_off", off_tps},
                        {"trials_per_sec_metrics_on", on_tps},
                        {"overhead_pct", overhead_pct},
                        {"target_overhead_pct", kTargetOverheadPct},
                        {"within_target", within ? 1.0 : 0.0},
                        {"schedules", static_cast<double>(off.best.schedules)}},
                       /*runs=*/off.best.schedules * repeats * 2);
    table.AddRow({name, report::Fmt(off_tps, 0), report::Fmt(on_tps, 0),
                  report::Fmt(overhead_pct, 2) + "%",
                  within ? "ok" : "EXCEEDED"});
  }
  table.Print();

  std::printf(
      "\n%s Counters ride the per-worker shards either way; attaching a registry\n"
      "only adds the phase clocks and the per-trial histogram observation, and the\n"
      "non-timing JSON is byte-identical in both modes (checked above).\n",
      all_within_target ? "Metrics stay under the overhead target."
                        : "WARNING: metrics overhead exceeded the target on this host.");
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
