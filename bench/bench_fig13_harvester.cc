// Figure 13: execution-time difference relative to EaseIO/Op. when powered by a real
// RF energy harvester, across transmitter-to-device distances of 52-64 inches.
//
// Substitution note (DESIGN.md): the Powercast transmitter/receiver pair is modelled
// as a free-space path-loss harvester charging the storage capacitor; failures are
// energy-driven (brown-out at v_off, reboot at v_on). The capacitor and harvest
// calibration are scaled so the harvest rate crosses the application's mean draw
// inside the measured distance window — close distances run failure-free, far
// distances brown out repeatedly, the shape the paper reports.
//
// Expected shape (paper): near the transmitter all systems tie (no failures); as the
// distance grows, the baselines fall behind EaseIO/Op. by an increasing margin, and
// full EaseIO tracks EaseIO/Op. closely.

#include "sim/failure.h"
#include "sim/harvester.h"

#include "bench_common.h"

namespace easeio::bench {
namespace {

// Wall time (on + off) is what matters under real harvesting: recharging is the
// dominant cost once failures start.
double MeanWallMs(BenchEmitter& emitter, apps::RuntimeKind rt, double distance_in,
                  uint32_t runs, uint32_t jobs) {
  report::ExperimentConfig config;
  config.runtime = rt;
  // The flat power profile of the DMA workload lets brown-outs land anywhere in the
  // task (burst-heavy workloads die *inside* the expensive operation, where no runtime
  // can save work). Several back-to-back jobs emulate a short duty-cycled deployment.
  config.app = report::AppKind::kDma;
  config.app_options.jobs = 10;
  config.rf_distance_in = distance_in;
  const report::Aggregate agg = report::RunSweep(config, runs, jobs);
  emitter.AddAggregate(
      {{"distance_in", report::Fmt(distance_in, 0)}, {"runtime", ToString(rt)}}, agg);
  return agg.wall_us / 1e3;
}

void Main() {
  const uint32_t runs = SweepRuns(200);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("fig13_harvester",
                       "execution time vs EaseIO/Op. under a real RF harvester");
  emitter.SetSweep(runs, jobs);
  PrintHeader("Figure 13", "execution time vs EaseIO/Op. under a real RF harvester");
  std::printf("(multi-job DMA app, %u runs per point; wall time includes recharge time)\n\n", runs);

  const double distances[] = {52, 55, 58, 61, 64};
  report::TextTable table({"Distance (in)", "Alpaca diff (ms)", "InK diff (ms)",
                           "EaseIO diff (ms)", "EaseIO/Op. (ms)"});
  for (double d : distances) {
    const double op = MeanWallMs(emitter, apps::RuntimeKind::kEaseioOp, d, runs, jobs);
    const double alpaca = MeanWallMs(emitter, apps::RuntimeKind::kAlpaca, d, runs, jobs);
    const double ink = MeanWallMs(emitter, apps::RuntimeKind::kInk, d, runs, jobs);
    const double easeio = MeanWallMs(emitter, apps::RuntimeKind::kEaseio, d, runs, jobs);
    table.AddRow({report::Fmt(d, 0), report::Fmt(alpaca - op, 2), report::Fmt(ink - op, 2),
                  report::Fmt(easeio - op, 2), report::Fmt(op, 2)});
  }
  table.Print();
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
