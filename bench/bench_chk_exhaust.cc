// Schedule-space pruning: POR + state-dedup throughput, and exhaust-mode coverage.
//
// Two artifact sections:
//   * pruned depth-2 throughput on the headline cells, at a budget large enough that
//     per-trial cost dominates the fixed golden/trunk work (the regime the pruning
//     targets — CI sweeps the small-budget regime already). The non-timing JSON of
//     pruned and unpruned runs must be byte-identical: pruning only decides which
//     member of an equivalence class pays for each verdict.
//   * --exhaust coverage: enumerate every <=N-failure schedule under the prunings and
//     report the certificate (classes, collapsed members, dedup hits, reduction
//     ratio) plus the wall time the full enumeration costs.

#include <algorithm>
#include <string>

#include "bench_common.h"

#include "chk/explorer.h"
#include "report/jobs.h"

namespace easeio::bench {
namespace {

struct Cell {
  apps::AppKind app;
  apps::RuntimeKind runtime;
};

constexpr Cell kCells[] = {
    {apps::AppKind::kDma, apps::RuntimeKind::kEaseio},
    {apps::AppKind::kWeather, apps::RuntimeKind::kSamoyed},
};

// Large enough that pair suffixes dominate the shared-prefix and golden-run cost.
constexpr uint32_t kThroughputBudget = 50'000;

struct PruneRun {
  chk::ExploreResult best;   // repeat with the highest trials/sec
  std::string canonical;     // non-timing JSON (identical across repeats)
};

PruneRun RunMode(const Cell& cell, bool use_pruning, uint32_t repeats, uint32_t jobs) {
  chk::ExploreConfig config;
  config.app = cell.app;
  config.runtime = cell.runtime;
  config.depth = 2;
  config.budget = kThroughputBudget;
  config.jobs = jobs;
  config.use_pruning = use_pruning;

  PruneRun out;
  for (uint32_t i = 0; i < repeats; ++i) {
    chk::ExploreResult r = chk::Explore(config);
    const std::string canonical = chk::ToJson(r, /*include_timing=*/false);
    if (out.canonical.empty()) {
      out.canonical = canonical;
      out.best = std::move(r);
    } else {
      EASEIO_CHECK(canonical == out.canonical,
                   "exploration result changed between repeats of one config");
      if (r.trials_per_sec > out.best.trials_per_sec) {
        out.best = std::move(r);
      }
    }
  }
  return out;
}

void Main() {
  // Cap the sweep-size forwarding: each repeat explores 2 x 50k schedules per cell,
  // so paper-scale repeat counts would be minutes of pure redundancy here.
  const uint32_t repeats = std::min<uint32_t>(SweepRuns(3), 5);
  const uint32_t jobs = SweepJobs();
  BenchEmitter emitter("chk_exhaust",
                       "schedule-space pruning: POR + state-dedup throughput and "
                       "--exhaust coverage certificates");
  emitter.SetSweep(repeats, jobs);
  PrintHeader("Checker pruning",
              "POR + state-dedup depth-2 throughput and --exhaust coverage");
  std::printf("(best of %u repeats per mode; throughput budget %u)\n\n", repeats,
              kThroughputBudget);

  report::TextTable table({"Cell", "Pruning", "Trials/s", "Wall (ms)", "Pruned",
                           "Dedup hits", "Speedup"});
  for (const Cell& cell : kCells) {
    const std::string name = std::string(report::AppName(cell.app)) + "/" +
                             report::RuntimeName(cell.runtime);
    const PruneRun off = RunMode(cell, /*use_pruning=*/false, repeats, jobs);
    const PruneRun on = RunMode(cell, /*use_pruning=*/true, repeats, jobs);
    // The correctness half of the artifact: pruning must not move a single
    // non-timing output byte (CI also enforces this across jobs counts).
    EASEIO_CHECK(off.canonical == on.canonical,
                 "pruned exploration diverged from unpruned");
    const double speedup = off.best.trials_per_sec > 0
                               ? on.best.trials_per_sec / off.best.trials_per_sec
                               : 0.0;
    const chk::ExploreResult* rows[] = {&off.best, &on.best};
    for (const chk::ExploreResult* r : rows) {
      const bool pruned = r == &on.best;
      emitter.AddMetrics(
          {{"section", "throughput"},
           {"app", report::AppName(cell.app)},
           {"runtime", report::RuntimeName(cell.runtime)},
           {"pruning", pruned ? "on" : "off"}},
          {{"trials_per_sec", r->trials_per_sec},
           {"wall_ms", r->wall_seconds * 1e3},
           {"schedules", static_cast<double>(r->schedules)},
           {"trials_pruned", static_cast<double>(r->trials_pruned)},
           {"dedup_hits", static_cast<double>(r->dedup_hits)},
           {"pruned_fraction",
            r->schedules > 0 ? static_cast<double>(r->trials_pruned) / r->schedules : 0.0},
           {"speedup_vs_unpruned", pruned ? speedup : 1.0}},
          /*runs=*/r->schedules * repeats);
      table.AddRow({name, pruned ? "on" : "off", report::Fmt(r->trials_per_sec, 0),
                    report::Fmt(r->wall_seconds * 1e3, 2),
                    std::to_string(r->trials_pruned), std::to_string(r->dedup_hits),
                    report::Fmt(pruned ? speedup : 1.0, 2) + "x"});
    }
  }
  table.Print();

  // --- exhaust-mode coverage certificates ---------------------------------------------
  std::printf("\n");
  report::TextTable cert_table({"Cell", "N", "Covered", "Classes", "Collapsed",
                                "Deduped", "Executed", "Reduction", "Wall (ms)"});
  for (const Cell& cell : kCells) {
    const std::string name = std::string(report::AppName(cell.app)) + "/" +
                             report::RuntimeName(cell.runtime);
    chk::ExploreConfig config;
    config.app = cell.app;
    config.runtime = cell.runtime;
    config.jobs = jobs;
    config.exhaust = 1;
    const chk::ExploreResult r = chk::Explore(config);
    EASEIO_CHECK(r.has_certificate, "exhaust run emitted no certificate");
    const auto& c = r.certificate;
    emitter.AddMetrics(
        {{"section", "exhaust"},
         {"app", report::AppName(cell.app)},
         {"runtime", report::RuntimeName(cell.runtime)}},
        {{"exhaust", static_cast<double>(c.exhaust)},
         {"schedules_covered", static_cast<double>(c.schedules_covered)},
         {"d1_classes", static_cast<double>(c.d1_classes)},
         {"d1_members_collapsed", static_cast<double>(c.d1_members_collapsed)},
         {"states_deduped", static_cast<double>(c.states_deduped)},
         {"trials_executed", static_cast<double>(c.trials_executed)},
         {"reduction_ratio", c.reduction_ratio},
         {"exhaust_wall_ms", r.wall_seconds * 1e3}},
        /*runs=*/c.schedules_covered);
    cert_table.AddRow(
        {name, std::to_string(c.exhaust), std::to_string(c.schedules_covered),
         std::to_string(c.d1_classes + c.pair_classes),
         std::to_string(c.d1_members_collapsed + c.pair_members_collapsed),
         std::to_string(c.states_deduped), std::to_string(c.trials_executed),
         report::Fmt(c.reduction_ratio, 2) + "x", report::Fmt(r.wall_seconds * 1e3, 2)});
  }
  cert_table.Print();

  std::printf(
      "\nPruned and unpruned runs produce byte-identical non-timing JSON (checked\n"
      "above); the prunings only choose which member of each idempotent-region\n"
      "equivalence class — or of each verified state-table class — pays for the\n"
      "verdict. The certificate rows account for every enumerated schedule.\n");
  emitter.Write();
}

}  // namespace
}  // namespace easeio::bench

int main(int argc, char** argv) {
  easeio::bench::ParseBenchArgs(argc, argv);
  easeio::bench::Main();
  return 0;
}
