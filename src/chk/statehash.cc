#include "chk/statehash.h"

#include <algorithm>
#include <cstring>

#include "platform/hash.h"

namespace easeio::chk {

namespace {

constexpr uint32_t kPage = sim::Memory::kSnapshotPageSize;
// Canonical-encoding version tag: bump when the field set or layout changes so a
// stale table (there are none persisted today) could never verify against it.
constexpr uint8_t kCanonicalTag = 1;

void Put8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }

void Put32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void Put64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

void PutStr(std::string& out, const std::string& s) {
  Put32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

void PutBytes(std::string& out, const std::vector<uint8_t>& v) {
  Put32(out, static_cast<uint32_t>(v.size()));
  out.append(reinterpret_cast<const char*>(v.data()), v.size());
}

void PutEvent(std::string& out, const sim::ProbeEvent& ev) {
  Put8(out, static_cast<uint8_t>(ev.kind));
  Put32(out, ev.id);
  Put32(out, ev.lane);
  Put64(out, ev.a);
  Put64(out, ev.b);
  Put64(out, ev.on_us);
}

}  // namespace

void StateHasher::BeginTrial(const kernel::Runtime& rt) {
  std::vector<kernel::Runtime::StateMaskRange> ranges;
  rt.AppendStateMask(ranges);
  mask_spans_.clear();
  mask_spans_.reserve(ranges.size());
  for (const kernel::Runtime::StateMaskRange& r : ranges) {
    // Registration hands out absolute device addresses; the page scan works in FRAM
    // offsets.
    mask_spans_.emplace_back(r.addr - sim::Memory::kFramBase,
                             r.addr - sim::Memory::kFramBase + r.size);
  }
  std::sort(mask_spans_.begin(), mask_spans_.end());
}

uint64_t StateHasher::HashPage(const sim::Memory& mem, uint32_t page) const {
  const uint8_t* data = mem.fram_data() + static_cast<size_t>(page) * kPage;
  const uint32_t lo = page * kPage;
  const uint32_t hi = lo + kPage;
  // Masked metadata inside this page? The span list is short (one 4-byte entry per
  // registered lane/block) and sorted; find the overlap window.
  auto it = std::lower_bound(mask_spans_.begin(), mask_spans_.end(),
                             std::make_pair(lo, 0u),
                             [](const auto& a, const auto& b) { return a.first < b.first; });
  // A span starting before lo can still reach into this page.
  if (it != mask_spans_.begin() && (it - 1)->second > lo) {
    --it;
  }
  if (it == mask_spans_.end() || it->first >= hi) {
    return platform::HashBytes64(data, kPage);
  }
  uint8_t scratch[kPage];
  std::memcpy(scratch, data, kPage);
  for (; it != mask_spans_.end() && it->first < hi; ++it) {
    const uint32_t b = std::max(it->first, lo);
    const uint32_t e = std::min(it->second, hi);
    if (b < e) {
      std::memset(scratch + (b - lo), 0, e - b);
    }
  }
  return platform::HashBytes64(scratch, kPage);
}

bool StateHasher::Fingerprint(const sim::Memory& mem, const kernel::Runtime& rt,
                              kernel::TaskId paused_task, const EventScanState& scan,
                              StateKey* out) {
  out->valid = false;
  out->canonical.clear();

  // Cheapest rejection first: a runtime that carries host state it cannot
  // canonicalize opts the whole trial out of dedup.
  std::string digest;
  if (!rt.AppendStateDigest(digest)) {
    return false;
  }

  std::string& c = out->canonical;
  Put8(c, kCanonicalTag);
  Put32(c, paused_task);
  Put32(c, mem.fram_used());
  Put32(c, mem.sram_used());

  // Durable image, page by page, through the dirty-stamp cache.
  const std::vector<uint64_t>& stamps = mem.page_stamps();
  if (mem.mem_uid() != mem_uid_ || page_hash_.size() != stamps.size()) {
    mem_uid_ = mem.mem_uid();
    page_hash_.assign(stamps.size(), 0);
    page_synced_.assign(stamps.size(), 0);
  }
  const uint64_t epoch = mem.snap_epoch();
  const uint32_t pages = (mem.fram_used() + kPage - 1) / kPage;
  for (uint32_t p = 0; p < pages; ++p) {
    if (page_synced_[p] == 0 || page_synced_[p] < stamps[p]) {
      page_hash_[p] = HashPage(mem, p);
      page_synced_[p] = epoch;
    }
    Put64(c, page_hash_[p]);
  }
  mem.EndPageScan();

  // Host-side runtime state (undo logs, open-block depth, ...).
  PutStr(c, digest);

  // The event-scan fold carried across the failure: it seeds the suffix scan, so two
  // states must agree on it for their verdicts to coincide. Prefix violations ride
  // along — a violating prefix can therefore never alias a clean one.
  Put32(c, scan.io_lane_stride);
  PutBytes(c, scan.io_locked);
  PutBytes(c, scan.dma_locked);
  Put32(c, static_cast<uint32_t>(scan.last_nv_dma.size()));
  for (size_t i = 0; i < scan.last_nv_dma.size(); ++i) {
    Put8(c, i < scan.last_nv_dma_set.size() ? scan.last_nv_dma_set[i] : 0);
    PutEvent(c, scan.last_nv_dma[i]);
  }
  Put32(c, static_cast<uint32_t>(scan.violations.size()));
  for (const Violation& v : scan.violations) {
    Put8(c, static_cast<uint8_t>(v.invariant));
    PutStr(c, v.subject);
    PutStr(c, v.detail);
  }

  out->probe = platform::HashBytes64(c.data(), c.size());
  out->valid = true;
  return true;
}

DedupTable::DedupTable(uint32_t probe_bits)
    : probe_mask_(probe_bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << probe_bits) - 1) {}

const DedupTable::Entry* DedupTable::FindIn(const std::vector<Entry>& bucket,
                                            const StateKey& key,
                                            const std::array<uint8_t, 32>& sha) {
  for (const Entry& e : bucket) {
    if (e.sha != sha) {
      ++probe_collisions_;
      continue;
    }
    // Digest match: the full canonical bytes are the ground truth.
    if (e.canonical == key.canonical) {
      return &e;
    }
    ++probe_collisions_;
  }
  return nullptr;
}

bool DedupTable::Lookup(const StateKey& key) {
  if (!key.valid) {
    return false;
  }
  auto it = buckets_.find(BucketOf(key.probe));
  if (it == buckets_.end()) {
    return false;
  }
  // Bucket collision: now (and only now) pay for the cryptographic digest.
  const std::array<uint8_t, 32> sha = platform::Sha256Digest(key.canonical);
  if (FindIn(it->second, key, sha) == nullptr) {
    return false;
  }
  ++hits_;
  return true;
}

void DedupTable::Insert(const StateKey& key) {
  if (!key.valid) {
    return;
  }
  std::vector<Entry>& bucket = buckets_[BucketOf(key.probe)];
  const std::array<uint8_t, 32> sha = platform::Sha256Digest(key.canonical);
  if (!bucket.empty()) {
    const uint64_t collisions_before = probe_collisions_;
    const bool present = FindIn(bucket, key, sha) != nullptr;
    probe_collisions_ = collisions_before;  // inserts don't count as lookup traffic
    if (present) {
      return;
    }
  }
  bucket.push_back({key.canonical, sha});
  ++entries_;
}

}  // namespace easeio::chk
