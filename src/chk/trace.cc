#include "chk/trace.h"

#include <algorithm>

namespace easeio::chk {

std::vector<uint64_t> CandidateInstants(const std::vector<sim::ProbeEvent>& events,
                                        uint64_t end_on_us) {
  std::vector<uint64_t> instants;
  instants.reserve(events.size() * 2);
  for (const sim::ProbeEvent& e : events) {
    if (e.kind == sim::ProbeKind::kReboot) {
      continue;
    }
    if (e.on_us < end_on_us) {
      instants.push_back(e.on_us);
    }
    if (e.on_us >= 1 && e.on_us - 1 < end_on_us) {
      instants.push_back(e.on_us - 1);
    }
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()), instants.end());
  return instants;
}

}  // namespace easeio::chk
