#include "chk/trace.h"

#include <algorithm>

namespace easeio::chk {

std::vector<uint64_t> CandidateInstants(const std::vector<sim::ProbeEvent>& events,
                                        uint64_t end_on_us, uint64_t min_on_us) {
  std::vector<uint64_t> instants;
  instants.reserve(events.size() * 2 + kTimeGridSamples);
  for (const sim::ProbeEvent& e : events) {
    switch (e.kind) {
      case sim::ProbeKind::kReboot:
      case sim::ProbeKind::kBlockBegin:
      case sim::ProbeKind::kBlockEnd:
      case sim::ProbeKind::kRegionEnter:
      case sim::ProbeKind::kPrivCopy:
      case sim::ProbeKind::kCapSample:
        continue;
      default:
        break;
    }
    if (e.on_us < end_on_us && e.on_us >= min_on_us) {
      instants.push_back(e.on_us);
    }
    if (e.on_us >= 1 && e.on_us - 1 < end_on_us && e.on_us - 1 >= min_on_us) {
      instants.push_back(e.on_us - 1);
    }
  }
  // Uniform time grid: event bracketing collapses every instant between two events
  // into one representative, which is sound for durable state but erases the *clock*
  // at which the failure struck — and Timely freshness, the persistent timekeeper,
  // and off-time accounting all key off that clock. The grid samples the timing
  // dimension directly, uniformly over the run, the way harvested-energy failures
  // actually strike. It also gives event-sparse stretches (a DMA transfer, a long
  // compute loop) their fair share of failure placements.
  for (uint64_t j = 1; j <= kTimeGridSamples; ++j) {
    const uint64_t t = end_on_us * j / (kTimeGridSamples + 1);
    if (t >= 1 && t < end_on_us && t >= min_on_us) {
      instants.push_back(t);
    }
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()), instants.end());
  return instants;
}

}  // namespace easeio::chk
