#include "chk/invariants.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "kernel/io.h"
#include "sim/memory.h"

namespace easeio::chk {

const char* ToString(Invariant inv) {
  switch (inv) {
    case Invariant::kCompletion:
      return "completion";
    case Invariant::kAppConsistency:
      return "app-consistency";
    case Invariant::kOutputEquivalence:
      return "output-equivalence";
    case Invariant::kSingleReexec:
      return "single-reexec";
    case Invariant::kStaleTimely:
      return "stale-timely";
    case Invariant::kTornDma:
      return "torn-dma";
    case Invariant::kWarCommit:
      return "war-commit";
  }
  return "?";
}

namespace {

std::vector<uint8_t> ReadSlotBytes(const sim::Device& dev, const kernel::NvSlot& slot) {
  std::vector<uint8_t> bytes(slot.size);
  dev.mem().ReadBlock(slot.addr, slot.size, bytes.data());
  return bytes;
}

}  // namespace

std::map<std::string, std::vector<uint8_t>> CollectWarState(const kernel::Runtime& rt,
                                                            const kernel::NvManager& nv,
                                                            const sim::Device& dev) {
  std::map<std::string, std::vector<uint8_t>> state;
  for (const kernel::Runtime::TaskSharedDecl& decl : rt.task_shared_decls()) {
    for (kernel::NvSlotId id : decl.war) {
      const kernel::NvSlot& slot = nv.slot(id);
      state[slot.name] = ReadSlotBytes(dev, slot);
    }
  }
  return state;
}

void ScanEvents(EventScanState& state, const std::vector<sim::ProbeEvent>& events,
                const kernel::Runtime& rt, const sim::Device& dev, bool semantic_runtime,
                bool dma_mirror) {
  ScanEvents(state, events.data(), events.data() + events.size(), rt, dev, semantic_runtime,
             dma_mirror);
}

void ScanEvents(EventScanState& state, const sim::ProbeEvent* begin,
                const sim::ProbeEvent* end, const kernel::Runtime& rt, const sim::Device& dev,
                bool semantic_runtime, bool dma_mirror) {
  auto add = [&state](Invariant inv, std::string subject, std::string detail) {
    // Schedule left empty: the shared prefix does not know which trial it serves.
    state.violations.push_back({inv, std::move(subject), std::move(detail), {}});
  };

  // The lane stride depends only on the runtime's site table, so a prefix folded
  // earlier under the same runtime already fixed it to the same value.
  if (state.io_lane_stride == 0) {
    uint32_t stride = 1;
    for (const kernel::IoSiteDesc& d : rt.io_sites()) {
      stride = std::max(stride, d.lanes);
    }
    state.io_lane_stride = stride;
  }
  auto io_locked = [&state](uint32_t site, uint32_t lane) -> uint8_t& {
    const size_t idx = static_cast<size_t>(site) * state.io_lane_stride + lane;
    if (idx >= state.io_locked.size()) {
      state.io_locked.resize(idx + 1, 0);
    }
    return state.io_locked[idx];
  };
  auto dma_locked = [&state](uint32_t site) -> uint8_t& {
    if (site >= state.dma_locked.size()) {
      state.dma_locked.resize(site + 1, 0);
    }
    return state.dma_locked[site];
  };

  for (const sim::ProbeEvent* it = begin; it != end; ++it) {
    const sim::ProbeEvent& e = *it;
    // --- Event-stream invariants (EaseIO re-execution semantics) ----------------------
    // A site whose completion flag became durable (kIoLocked/kDmaLocked) must not run
    // again until its owning task commits and clears the flag. Sites with declared
    // data dependences or enclosing blocks are exempt: dependence-forced and
    // block-forced re-execution is the specified behaviour, not a bug.
    if (semantic_runtime) {
      switch (e.kind) {
        case sim::ProbeKind::kIoLocked:
          io_locked(e.id, e.lane) = 1;
          break;
        case sim::ProbeKind::kIoExec: {
          const kernel::IoSiteDesc& d = rt.io_sites()[e.id];
          const bool exempt = !d.depends_on.empty() || d.block != kernel::kNoBlock;
          if (d.sem == kernel::IoSemantic::kSingle && !exempt && io_locked(e.id, e.lane)) {
            std::ostringstream os;
            os << "locked Single operation re-executed at t=" << e.on_us << " us";
            add(Invariant::kSingleReexec, d.name, os.str());
          }
          break;
        }
        case sim::ProbeKind::kIoSkip: {
          const kernel::IoSiteDesc& d = rt.io_sites()[e.id];
          if (e.b != 0 && d.sem == kernel::IoSemantic::kTimely && e.a > d.window_us) {
            std::ostringstream os;
            os << "consumed a reading aged " << e.a << " us (window " << d.window_us
               << " us) at t=" << e.on_us << " us";
            add(Invariant::kStaleTimely, d.name, os.str());
          }
          break;
        }
        case sim::ProbeKind::kDmaLocked:
          dma_locked(e.id) = 1;
          break;
        case sim::ProbeKind::kDmaExec: {
          const kernel::DmaSiteDesc& d = rt.dma_sites()[e.id];
          if (d.related_io == kernel::kNoSite && dma_locked(e.id)) {
            std::ostringstream os;
            os << "locked Single DMA re-executed at t=" << e.on_us << " us";
            add(Invariant::kSingleReexec, d.name, os.str());
          }
          break;
        }
        case sim::ProbeKind::kTaskCommit: {
          for (size_t s = 0; s < rt.io_sites().size(); ++s) {
            if (rt.io_sites()[s].task != e.id) {
              continue;
            }
            for (uint32_t l = 0; l < rt.io_sites()[s].lanes; ++l) {
              io_locked(static_cast<uint32_t>(s), l) = 0;
            }
          }
          for (size_t s = 0; s < rt.dma_sites().size(); ++s) {
            if (rt.dma_sites()[s].task == e.id) {
              dma_locked(static_cast<uint32_t>(s)) = 0;
            }
          }
          break;
        }
        default:
          break;
      }
    }
    // --- Torn-DMA candidates ----------------------------------------------------------
    // Remember the last NV->NV transfer of each site; the final memory comparison
    // happens in FinalizeInvariants, once the run is over.
    if (dma_mirror && e.kind == sim::ProbeKind::kDmaExec) {
      const uint32_t dst = static_cast<uint32_t>(e.a >> 32);
      const uint32_t src = static_cast<uint32_t>(e.a & 0xFFFFFFFFu);
      if (dev.mem().Classify(dst) == sim::MemKind::kFram &&
          dev.mem().Classify(src) == sim::MemKind::kFram) {
        if (e.id >= state.last_nv_dma.size()) {
          state.last_nv_dma.resize(e.id + 1);
          state.last_nv_dma_set.resize(e.id + 1, 0);
        }
        state.last_nv_dma[e.id] = e;
        state.last_nv_dma_set[e.id] = 1;
      }
    }
  }
}

std::vector<Violation> FinalizeInvariants(const TrialFacts& facts, const GoldenFacts& golden,
                                          const EventScanState& state,
                                          const kernel::Runtime& rt,
                                          const kernel::NvManager& nv, const sim::Device& dev) {
  std::vector<Violation> out;
  auto add = [&](Invariant inv, std::string subject, std::string detail) {
    out.push_back({inv, std::move(subject), std::move(detail), facts.schedule});
  };

  if (!facts.completed) {
    add(Invariant::kCompletion, "run", "did not complete before the non-termination guard");
    return out;  // the remaining checks are meaningless for an aborted run
  }
  if (!facts.consistent) {
    add(Invariant::kAppConsistency, "app", "application consistency predicate failed");
  }
  if (facts.deterministic && facts.output != golden.output) {
    add(Invariant::kOutputEquivalence, "output",
        "final output differs from the continuous-power golden run");
  }

  for (const Violation& v : state.violations) {
    out.push_back({v.invariant, v.subject, v.detail, facts.schedule});
  }

  // --- Torn-DMA check -----------------------------------------------------------------
  // For workloads whose NV->NV DMA sources are never overwritten, the last transfer of
  // each site must leave dst mirroring src byte-for-byte. Compared in place (PeekBlock
  // + memcmp): this runs once per trial, and staging copies of the regions were a
  // measurable share of per-trial cost.
  for (uint32_t site = 0; site < state.last_nv_dma.size(); ++site) {
    if (!state.last_nv_dma_set[site]) {
      continue;
    }
    const sim::ProbeEvent& e = state.last_nv_dma[site];
    const uint32_t dst = static_cast<uint32_t>(e.a >> 32);
    const uint32_t src = static_cast<uint32_t>(e.a & 0xFFFFFFFFu);
    const uint8_t* dst_bytes = dev.mem().PeekBlock(dst, static_cast<uint32_t>(e.b));
    const uint8_t* src_bytes = dev.mem().PeekBlock(src, static_cast<uint32_t>(e.b));
    if (std::memcmp(dst_bytes, src_bytes, e.b) != 0) {
      uint32_t i = 0;
      while (dst_bytes[i] == src_bytes[i]) {
        ++i;
      }
      std::ostringstream os;
      os << "destination diverges from source at byte " << i << " of " << e.b;
      add(Invariant::kTornDma, rt.dma_sites()[site].name, os.str());
    }
  }

  // --- WAR commit semantics -----------------------------------------------------------
  // Deterministic workloads must leave every WAR-declared variable with the golden
  // bytes — the commit protocols of Alpaca/InK/EaseIO all promise exactly this.
  // Iterates the golden capture (name order, matching the map CollectWarState builds)
  // and compares each slot in place rather than re-collecting a map per trial.
  if (facts.deterministic && !golden.war_state.empty()) {
    for (const auto& [name, bytes] : golden.war_state) {
      const kernel::NvSlot* slot = nullptr;
      for (const kernel::Runtime::TaskSharedDecl& decl : rt.task_shared_decls()) {
        for (kernel::NvSlotId id : decl.war) {
          if (nv.slot(id).name == name) {
            slot = &nv.slot(id);
            break;
          }
        }
        if (slot != nullptr) {
          break;
        }
      }
      if (slot == nullptr) {
        continue;
      }
      if (bytes.size() != slot->size ||
          std::memcmp(dev.mem().PeekBlock(slot->addr, slot->size), bytes.data(),
                      bytes.size()) != 0) {
        add(Invariant::kWarCommit, name, "final bytes differ from the golden run");
      }
    }
  }

  return out;
}

std::vector<Violation> CheckInvariants(const TrialFacts& facts, const GoldenFacts& golden,
                                       const std::vector<sim::ProbeEvent>& events,
                                       const kernel::Runtime& rt, const kernel::NvManager& nv,
                                       const sim::Device& dev) {
  EventScanState state;
  ScanEvents(state, events, rt, dev, facts.semantic_runtime, facts.dma_mirror);
  return FinalizeInvariants(facts, golden, state, rt, nv, dev);
}

}  // namespace easeio::chk
