#include "chk/invariants.h"

#include <sstream>
#include <utility>

#include "kernel/io.h"
#include "sim/memory.h"

namespace easeio::chk {

const char* ToString(Invariant inv) {
  switch (inv) {
    case Invariant::kCompletion:
      return "completion";
    case Invariant::kAppConsistency:
      return "app-consistency";
    case Invariant::kOutputEquivalence:
      return "output-equivalence";
    case Invariant::kSingleReexec:
      return "single-reexec";
    case Invariant::kStaleTimely:
      return "stale-timely";
    case Invariant::kTornDma:
      return "torn-dma";
    case Invariant::kWarCommit:
      return "war-commit";
  }
  return "?";
}

namespace {

std::vector<uint8_t> ReadSlotBytes(const sim::Device& dev, const kernel::NvSlot& slot) {
  std::vector<uint8_t> bytes(slot.size);
  for (uint32_t i = 0; i < slot.size; ++i) {
    bytes[i] = dev.mem().Read8(slot.addr + i);
  }
  return bytes;
}

}  // namespace

std::map<std::string, std::vector<uint8_t>> CollectWarState(const kernel::Runtime& rt,
                                                            const kernel::NvManager& nv,
                                                            const sim::Device& dev) {
  std::map<std::string, std::vector<uint8_t>> state;
  for (const kernel::Runtime::TaskSharedDecl& decl : rt.task_shared_decls()) {
    for (kernel::NvSlotId id : decl.war) {
      const kernel::NvSlot& slot = nv.slot(id);
      state[slot.name] = ReadSlotBytes(dev, slot);
    }
  }
  return state;
}

std::vector<Violation> CheckInvariants(const TrialFacts& facts, const GoldenFacts& golden,
                                       const std::vector<sim::ProbeEvent>& events,
                                       const kernel::Runtime& rt, const kernel::NvManager& nv,
                                       const sim::Device& dev) {
  std::vector<Violation> out;
  auto add = [&](Invariant inv, std::string subject, std::string detail) {
    out.push_back({inv, std::move(subject), std::move(detail), facts.schedule});
  };

  if (!facts.completed) {
    add(Invariant::kCompletion, "run", "did not complete before the non-termination guard");
    return out;  // the remaining checks are meaningless for an aborted run
  }
  if (!facts.consistent) {
    add(Invariant::kAppConsistency, "app", "application consistency predicate failed");
  }
  if (facts.deterministic && facts.output != golden.output) {
    add(Invariant::kOutputEquivalence, "output",
        "final output differs from the continuous-power golden run");
  }

  // --- Event-stream invariants (EaseIO re-execution semantics) ------------------------
  // A site whose completion flag became durable (kIoLocked/kDmaLocked) must not run
  // again until its owning task commits and clears the flag. Sites with declared data
  // dependences or enclosing blocks are exempt: dependence-forced and block-forced
  // re-execution is the specified behaviour, not a bug.
  if (facts.semantic_runtime) {
    std::map<std::pair<uint32_t, uint32_t>, bool> io_locked;
    std::map<uint32_t, bool> dma_locked;
    for (const sim::ProbeEvent& e : events) {
      switch (e.kind) {
        case sim::ProbeKind::kIoLocked:
          io_locked[{e.id, e.lane}] = true;
          break;
        case sim::ProbeKind::kIoExec: {
          const kernel::IoSiteDesc& d = rt.io_sites()[e.id];
          const bool exempt = !d.depends_on.empty() || d.block != kernel::kNoBlock;
          if (d.sem == kernel::IoSemantic::kSingle && !exempt && io_locked[{e.id, e.lane}]) {
            std::ostringstream os;
            os << "locked Single operation re-executed at t=" << e.on_us << " us";
            add(Invariant::kSingleReexec, d.name, os.str());
          }
          break;
        }
        case sim::ProbeKind::kIoSkip: {
          const kernel::IoSiteDesc& d = rt.io_sites()[e.id];
          if (e.b != 0 && d.sem == kernel::IoSemantic::kTimely && e.a > d.window_us) {
            std::ostringstream os;
            os << "consumed a reading aged " << e.a << " us (window " << d.window_us
               << " us) at t=" << e.on_us << " us";
            add(Invariant::kStaleTimely, d.name, os.str());
          }
          break;
        }
        case sim::ProbeKind::kDmaLocked:
          dma_locked[e.id] = true;
          break;
        case sim::ProbeKind::kDmaExec: {
          const kernel::DmaSiteDesc& d = rt.dma_sites()[e.id];
          if (d.related_io == kernel::kNoSite && dma_locked[e.id]) {
            std::ostringstream os;
            os << "locked Single DMA re-executed at t=" << e.on_us << " us";
            add(Invariant::kSingleReexec, d.name, os.str());
          }
          break;
        }
        case sim::ProbeKind::kTaskCommit: {
          for (size_t s = 0; s < rt.io_sites().size(); ++s) {
            if (rt.io_sites()[s].task != e.id) {
              continue;
            }
            for (uint32_t l = 0; l < rt.io_sites()[s].lanes; ++l) {
              io_locked[{static_cast<uint32_t>(s), l}] = false;
            }
          }
          for (size_t s = 0; s < rt.dma_sites().size(); ++s) {
            if (rt.dma_sites()[s].task == e.id) {
              dma_locked[static_cast<uint32_t>(s)] = false;
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // --- Torn-DMA check -----------------------------------------------------------------
  // For workloads whose NV->NV DMA sources are never overwritten, the last transfer of
  // each site must leave dst mirroring src byte-for-byte.
  if (facts.dma_mirror) {
    std::map<uint32_t, const sim::ProbeEvent*> last_nv_dma;
    for (const sim::ProbeEvent& e : events) {
      if (e.kind != sim::ProbeKind::kDmaExec) {
        continue;
      }
      const uint32_t dst = static_cast<uint32_t>(e.a >> 32);
      const uint32_t src = static_cast<uint32_t>(e.a & 0xFFFFFFFFu);
      if (dev.mem().Classify(dst) == sim::MemKind::kFram &&
          dev.mem().Classify(src) == sim::MemKind::kFram) {
        last_nv_dma[e.id] = &e;
      }
    }
    for (const auto& [site, e] : last_nv_dma) {
      const uint32_t dst = static_cast<uint32_t>(e->a >> 32);
      const uint32_t src = static_cast<uint32_t>(e->a & 0xFFFFFFFFu);
      for (uint32_t i = 0; i < e->b; ++i) {
        if (dev.mem().Read8(dst + i) != dev.mem().Read8(src + i)) {
          std::ostringstream os;
          os << "destination diverges from source at byte " << i << " of " << e->b;
          add(Invariant::kTornDma, rt.dma_sites()[site].name, os.str());
          break;
        }
      }
    }
  }

  // --- WAR commit semantics -----------------------------------------------------------
  // Deterministic workloads must leave every WAR-declared variable with the golden
  // bytes — the commit protocols of Alpaca/InK/EaseIO all promise exactly this.
  if (facts.deterministic && !golden.war_state.empty()) {
    const std::map<std::string, std::vector<uint8_t>> final_state = CollectWarState(rt, nv, dev);
    for (const auto& [name, bytes] : golden.war_state) {
      const auto it = final_state.find(name);
      if (it != final_state.end() && it->second != bytes) {
        add(Invariant::kWarCommit, name, "final bytes differ from the golden run");
      }
    }
  }

  return out;
}

}  // namespace easeio::chk
