#include "chk/explorer.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "chk/por.h"
#include "chk/statehash.h"
#include "chk/trace.h"
#include "kernel/engine.h"
#include "obs/metrics.h"
#include "platform/check.h"
#include "platform/parallel.h"
#include "sim/failure.h"
#include "sim/snapshot_pool.h"

namespace easeio::chk {
namespace {

struct TrialOutput {
  TrialFacts facts;
  std::vector<sim::ProbeEvent> events;
  kernel::RunResult run;
  std::vector<Violation> violations;
  size_t failures_fired = 0;
};

sim::DeviceConfig MakeDeviceConfig(const ExploreConfig& cfg) {
  sim::DeviceConfig dev_config;
  dev_config.seed = cfg.seed;
  dev_config.timekeeper_tick_us = cfg.timekeeper_tick_us;
  return dev_config;
}

rt::EaseioConfig MakeEaseioConfig(const ExploreConfig& cfg) {
  rt::EaseioConfig easeio_config;
  easeio_config.dma_priv_buffer_bytes = cfg.easeio_priv_buffer_bytes;
  easeio_config.enable_regional_privatization = cfg.easeio_regional_privatization;
  return easeio_config;
}

apps::AppOptions MakeAppOptions(const ExploreConfig& cfg) {
  apps::AppOptions options = cfg.app_options;
  if (apps::IsEaseioOp(cfg.runtime)) {
    options.exclude_const_dma = true;
  }
  return options;
}

bool IsSemanticRuntime(const ExploreConfig& cfg) {
  return cfg.runtime == apps::RuntimeKind::kEaseio ||
         cfg.runtime == apps::RuntimeKind::kEaseioOp;
}

// Metric handles for one exploration, registered up front — before any worker
// shard exists, honouring the registry's register-before-concurrent-use contract.
// Counters ALWAYS flow through a registry (a local throwaway when the caller
// attached none): shard folds and per-chunk adds are exactly as cheap as the
// ad-hoc atomics they replaced, so the registry is the single source of truth
// and the legacy timing block is re-emitted from it. The clock-fed series —
// per-phase nanosecond counters and the per-trial latency histogram — engage
// only when an external registry is attached (`timed`), so the detached
// explorer pays zero clock reads; bench_metrics_overhead measures this on/off
// delta. Result fields read back as deltas from registration-time baselines,
// so a long-lived external registry (sequential sweep cells, a CLI process)
// never leaks earlier explorations into this result's timing block.
struct ExploreMetrics {
  enum Phase { kEnumerate = 0, kCapture, kResume, kReplay, kJudge, kNumPhases };

  ExploreMetrics(obs::Registry* external, obs::Registry* local,
                 const std::string& app, const std::string& runtime)
      : reg(external != nullptr ? external : local), timed(external != nullptr) {
    const obs::Labels labels = {{"app", app}, {"runtime", runtime}};
    explorations = reg->Counter("easechk_explorations", labels);
    snapshot_resumes = reg->Counter("easechk_snapshot_resumes", labels);
    prefix_us_saved = reg->Counter("easechk_prefix_us_saved", labels);
    pages_copied = reg->Counter("easechk_pages_copied", labels);
    pool_hits = reg->Counter("easechk_pool_hits", labels);
    trials_pruned = reg->Counter("easechk_trials_pruned", labels);
    dedup_hits = reg->Counter("easechk_dedup_hits", labels);
    static const char* const kPhaseNames[kNumPhases] = {
        "enumerate", "snapshot-capture", "resume", "replay", "judge"};
    for (int p = 0; p < kNumPhases; ++p) {
      obs::Labels phase_labels = labels;
      phase_labels.push_back({"phase", kPhaseNames[p]});
      phase_ns[p] = reg->Counter("easechk_phase_ns", phase_labels);
    }
    trial_us = reg->Histogram(
        "easechk_trial_us",
        {100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}, labels);
    base_snapshot_resumes = reg->Value(snapshot_resumes);
    base_prefix_us_saved = reg->Value(prefix_us_saved);
    base_pages_copied = reg->Value(pages_copied);
    base_pool_hits = reg->Value(pool_hits);
    base_trials_pruned = reg->Value(trials_pruned);
    base_dedup_hits = reg->Value(dedup_hits);
  }

  obs::Registry* reg;
  bool timed;
  obs::MetricId explorations = 0;
  obs::MetricId snapshot_resumes = 0;
  obs::MetricId prefix_us_saved = 0;
  obs::MetricId pages_copied = 0;
  obs::MetricId pool_hits = 0;
  obs::MetricId trials_pruned = 0;
  obs::MetricId dedup_hits = 0;
  obs::MetricId phase_ns[kNumPhases] = {};
  obs::MetricId trial_us = 0;
  uint64_t base_snapshot_resumes = 0;
  uint64_t base_prefix_us_saved = 0;
  uint64_t base_pages_copied = 0;
  uint64_t base_pool_hits = 0;
  uint64_t base_trials_pruned = 0;
  uint64_t base_dedup_hits = 0;
};

// Gathers the post-run facts and (when a golden reference is supplied) the invariant
// verdicts. Shared by the fresh-stack, reused-stack, and resumed-suffix paths so the
// judgement is identical no matter how the trial was executed. For a resumed suffix,
// `prefix_scan` is the group's pre-folded event-scan state and `events` holds only the
// suffix events; folding the suffix on top reproduces the full-stream verdict without
// re-scanning (or even copying) the shared prefix per pair.
TrialOutput CollectOutput(const ExploreConfig& cfg, const kernel::RunResult& run,
                          std::vector<sim::ProbeEvent> events, size_t failures_fired,
                          std::vector<uint64_t> schedule, apps::AppHandle& app,
                          kernel::Runtime& runtime, kernel::NvManager& nv, sim::Device& dev,
                          const GoldenFacts* golden, GoldenFacts* golden_out,
                          EventScanState* prefix_scan = nullptr) {
  const apps::AppTraits traits = apps::TraitsFor(cfg.app);
  TrialOutput out;
  out.run = run;
  out.events = std::move(events);
  out.failures_fired = failures_fired;
  out.facts.completed = run.completed;
  out.facts.consistent = run.completed && app.check_consistent(dev);
  out.facts.deterministic = traits.deterministic;
  out.facts.dma_mirror = traits.dma_mirror;
  out.facts.semantic_runtime = IsSemanticRuntime(cfg);
  out.facts.output = app.collect_output(dev);
  out.facts.schedule = std::move(schedule);

  if (golden_out != nullptr) {
    golden_out->output = out.facts.output;
    golden_out->war_state = CollectWarState(runtime, nv, dev);
  }
  if (golden != nullptr) {
    EventScanState scan;
    if (prefix_scan != nullptr) {
      // The capture's scan state is consumed by exactly one resumed pair; moving it
      // avoids reallocating its flat tables per trial.
      scan = std::move(*prefix_scan);
    }
    ScanEvents(scan, out.events, runtime, dev, out.facts.semantic_runtime,
               out.facts.dma_mirror);
    out.violations = FinalizeInvariants(out.facts, *golden, scan, runtime, nv, dev);
  }
  return out;
}

// Executes one schedule end-to-end on a freshly constructed stack: device + runtime +
// app, scripted failures, probe recording. The golden run and the --no-snapshot
// cross-check path use this; the snapshot engine uses TrialStack below. Every trial
// uses the *same* device seed — sensor streams and golden outputs must line up across
// trials; determinism across shards comes from trial indexing, not per-worker state.
TrialOutput RunTrial(const ExploreConfig& cfg, const std::vector<uint64_t>& schedule,
                     const GoldenFacts* golden, GoldenFacts* golden_out,
                     PrunePolicy* policy_out = nullptr) {
  sim::ScriptedScheduler sched(schedule, cfg.off_us);
  sim::Device dev(MakeDeviceConfig(cfg), sched);
  TraceRecorder trace;
  trace.Install(dev);

  kernel::NvManager nv(dev.mem());
  auto runtime = apps::MakeRuntime(cfg.runtime, MakeEaseioConfig(cfg));
  runtime->Bind(dev, nv);
  apps::AppHandle app = apps::BuildApp(cfg.app, dev, *runtime, nv, MakeAppOptions(cfg));
  if (policy_out != nullptr) {
    // Registration is complete once the app is built — the policy reads the site
    // tables (live Timely windows) plus the workload traits.
    *policy_out =
        MakePrunePolicy(apps::TraitsFor(cfg.app), IsSemanticRuntime(cfg), *runtime);
  }

  kernel::Engine engine(kernel::RunConfig{cfg.max_on_us});
  const kernel::RunResult run = engine.Run(dev, *runtime, nv, app.graph, app.entry);
  return CollectOutput(cfg, run, trace.TakeEvents(), sched.next_index(), schedule, app,
                       *runtime, nv, dev, golden, golden_out);
}

// A reusable per-worker execution stack. The device (and its two arenas) is
// constructed once per worker and Reset between trials — re-zeroing only the used
// prefixes instead of allocating and touching ~264 KiB of fresh arena per trial —
// while the runtime/app layer is rebuilt per trial: registration is cheap and
// rebuilding reproduces the host-side tables deterministically, which is exactly what
// a resumed suffix needs before the snapshot is laid back over FRAM.
class TrialStack {
 public:
  TrialStack(const ExploreConfig& cfg, ExploreMetrics* em)
      : cfg_(cfg), em_(em), shard_(em->reg), sched_({}, cfg.off_us),
        dev_(MakeDeviceConfig(cfg), sched_) {}

  // Full replay of one schedule, equivalent to RunTrial on a fresh stack.
  TrialOutput RunFull(const std::vector<uint64_t>& schedule, const GoldenFacts* golden,
                      GoldenFacts* golden_out) {
    const uint64_t t0 = NowIfTimed();
    Prepare(schedule);
    kernel::Engine engine(kernel::RunConfig{cfg_.max_on_us});
    const kernel::RunResult run = engine.Run(dev_, *runtime_, *nv_, app_.graph, app_.entry);
    const uint64_t t1 = NowIfTimed();
    AddPhase(ExploreMetrics::kReplay, t1 - t0);
    TrialOutput out = CollectOutput(cfg_, run, trace_.TakeEvents(), sched_.next_index(),
                                    schedule, app_, *runtime_, *nv_, dev_, golden,
                                    golden_out);
    FinishTrial(t0, t1);
    return out;
  }

  // One captured would-be-failure point of a trunk run: everything a resumed trial
  // needs to continue as if a scripted failure had struck at that instant. The trunk's
  // probe events up to the instant are carried pre-folded as an EventScanState, so the
  // resumed trial folds only its own (post-capture) events. The device snapshot is a
  // pooled handle: released back to the worker's pool the moment the resume has laid
  // it over the stack, so one chunk's captures recycle a handful of buffers.
  struct Capture {
    sim::SnapshotPool::Handle dev;
    kernel::RuntimeSnapshot rt;
    EventScanState scan;
    kernel::TaskId paused_task = 0;
    // Canonical state fingerprint of this capture, filled when hashing is on (see
    // set_hash_captures). The dedup layer consults it before paying for the resume;
    // key.valid == false opts the trial out.
    StateKey key;
  };

  // Enables per-capture state fingerprinting for the dedup table. Off by default:
  // the explorer turns it on only when the prune policy allows.
  void set_hash_captures(bool on) { hash_captures_ = on; }

  // Runs one *trunk* execution that snapshots at every instant in `capture_at`
  // (sorted, ascending, all > t1 when has_t1). The trunk fails at t1 (when given) and
  // reboots through it like any trial would, then keeps executing *unfailed* past each
  // capture instant — a scripted failure mutates nothing before it fires, so the state
  // at instant t2_k inside the trunk is bit-identical to the pre-reboot state of a
  // real {.., t2_k} trial. The device's capture plan invokes the hook at exactly the
  // point the failure check would fire; the hook snapshots device + runtime, folds the
  // probe-event delta into a running scan state, and tracks the interrupted task (the
  // last kTaskBegin — during reboot recovery no new kTaskBegin is noted, so this is
  // the trampoline's current task in every case). A scripted failure at the *last*
  // capture instant ends the trunk there (pause_at_failure); if that failure lands
  // inside reboot recovery it will not pause and the trunk simply runs on to
  // completion — wasteful but correct, the captures were already taken. Returns how
  // many captures were taken; callers fall back to full replay for the rest.
  size_t RunTrunk(bool has_t1, uint64_t t1, const std::vector<uint64_t>& capture_at,
                  std::vector<Capture>* out) {
    const uint64_t trunk_t0 = NowIfTimed();
    std::vector<uint64_t> schedule;
    if (has_t1) {
      schedule.push_back(t1);
    }
    schedule.push_back(capture_at.back());
    Prepare(schedule);
    if (hash_captures_) {
      hasher_.BeginTrial(*runtime_);
    }
    // resize without clear: surviving Capture objects keep their snapshot/scan buffer
    // capacity for this trunk's refill.
    out->resize(capture_at.size());

    size_t taken = 0;
    size_t folded = 0;
    EventScanState scan;
    kernel::TaskId last_begin = app_.entry;
    const bool semantic = IsSemanticRuntime(cfg_);
    const bool dma_mirror = apps::TraitsFor(cfg_.app).dma_mirror;
    dev_.SetCapturePlan(capture_at, [&](size_t i) {
      const std::vector<sim::ProbeEvent>& ev = trace_.events();
      ScanEvents(scan, ev.data() + folded, ev.data() + ev.size(), *runtime_, dev_, semantic,
                 dma_mirror);
      for (size_t j = folded; j < ev.size(); ++j) {
        if (ev[j].kind == sim::ProbeKind::kTaskBegin) {
          last_begin = static_cast<kernel::TaskId>(ev[j].id);
        }
      }
      folded = ev.size();
      Capture& c = (*out)[i];
      c.dev = pool_.Acquire();
      dev_.SnapshotAtRebootInto(*c.dev);
      runtime_->SnapshotStateInto(c.rt);
      c.scan = scan;
      c.paused_task = last_begin;
      c.key.valid = false;
      // Fingerprint the at-failure state (the reboot is a deterministic function of
      // it, so equal keys imply equal post-reboot worlds). The guard keeps dedup's
      // "this state completes" substitution sound against the max_on_us cutoff: a
      // deep capture could complete from an early twin's budget but not its own, so
      // instants past a quarter of the cap never participate (registry suffixes are
      // orders of magnitude shorter than the remaining three quarters).
      if (hash_captures_ && capture_at[i] * 4 <= cfg_.max_on_us) {
        hasher_.Fingerprint(dev_.mem(), *runtime_, last_begin, scan, &c.key);
      }
      ++taken;
    });
    kernel::RunConfig run_config;
    run_config.max_on_us = cfg_.max_on_us;
    run_config.pause_at_failure = static_cast<uint32_t>(schedule.size());
    kernel::Engine engine(run_config);
    engine.Run(dev_, *runtime_, *nv_, app_.graph, app_.entry);
    dev_.ClearCapturePlan();
    AddPhase(ExploreMetrics::kCapture, NowIfTimed() - trunk_t0);
    return taken;
  }

  // Executes a schedule whose failures have all already "fired" inside a trunk run:
  // lay the capture back over the stack and let the engine perform the deferred
  // reboot and drive to completion with no further scripted failures. Facts come out
  // as if the whole schedule had been replayed from the start; the trace holds only
  // the post-capture events, which CollectOutput folds on top of the capture's scan
  // state.
  //
  // The runtime/app/NV layer is NOT rebuilt on resume. Registration state (site
  // tables, FRAM layout, task closures) is immutable once built, every run-mutable
  // host field is covered by RuntimeSnapshot, and the volatile remainder is cleared
  // by the deferred reboot (Memory::Restore wipes SRAM, Runtime::OnReboot drops
  // per-attempt stacks) — the same clearing a mid-run reboot performs. Rebuilding
  // per resume was the dominant fixed cost left in snapshot mode: NvManager's
  // name-keyed slot map and the app task-graph std::functions are expensive to
  // construct and provably identical every time.
  TrialOutput ResumeFromCapture(Capture& c, std::vector<uint64_t> schedule,
                                const GoldenFacts& golden) {
    const uint64_t t0 = NowIfTimed();
    if (runtime_ == nullptr) {
      Prepare({});
    } else {
      sched_.Rescript({}, cfg_.off_us);
      trace_.Reset();  // still installed: the device was not reset
    }
    dev_.ResumeFromSnapshot(*c.dev);
    c.dev.reset();  // back to the pool: the next capture in this chunk reuses it
    runtime_->RestoreState(c.rt);
    kernel::Engine engine(kernel::RunConfig{cfg_.max_on_us});
    const kernel::RunResult run =
        engine.Resume(dev_, *runtime_, *nv_, app_.graph, c.paused_task);
    const size_t fired = schedule.size();
    const uint64_t t1 = NowIfTimed();
    AddPhase(ExploreMetrics::kResume, t1 - t0);
    TrialOutput out =
        CollectOutput(cfg_, run, trace_.TakeEvents(), fired, std::move(schedule), app_,
                      *runtime_, *nv_, dev_, &golden, nullptr, &c.scan);
    FinishTrial(t0, t1);
    return out;
  }

  // Hands a consumed trial's event buffer back for capacity reuse by the next trial
  // on this stack (see TraceRecorder::Recycle).
  void RecycleEvents(std::vector<sim::ProbeEvent> buf) { trace_.Recycle(std::move(buf)); }

  // Worker-lifetime scratch for RunTrunk output: keeping the Capture objects (and
  // their nested buffers) alive across chunks turns per-capture snapshot state into
  // capacity-reusing overwrites.
  std::vector<Capture>& caps_scratch() { return caps_scratch_; }

 private:
  // Rebuilds the mutable layers over the reused device: rescript the scheduler, reset
  // the device in place, rebuild runtime + NV table + app (their registration is the
  // deterministic part a snapshot never captures).
  void Prepare(const std::vector<uint64_t>& schedule) {
    sched_.Rescript(schedule, cfg_.off_us);
    app_ = apps::AppHandle{};  // drop the previous trial's app state before rebuilding
    runtime_.reset();
    nv_.reset();
    dev_.Reset(MakeDeviceConfig(cfg_), sched_);
    trace_.Reset();
    trace_.Install(dev_);
    nv_.emplace(dev_.mem());
    runtime_ = apps::MakeRuntime(cfg_.runtime, MakeEaseioConfig(cfg_));
    runtime_->Bind(dev_, *nv_);
    app_ = apps::BuildApp(cfg_.app, dev_, *runtime_, *nv_, MakeAppOptions(cfg_));
  }

 public:
  // Hot-path counters accumulated since the last Take: FRAM pages SnapshotInto/Restore
  // actually copied, and snapshot buffers served from the pool's free list. The worker
  // loop drains these per chunk into the exploration-wide atomics (integer sums —
  // order-independent, so identical for any jobs count).
  struct HotPathDelta {
    uint64_t pages_copied = 0;
    uint64_t pool_hits = 0;
  };
  HotPathDelta TakeHotPathDelta() {
    HotPathDelta d{dev_.mem().pages_copied() - pages_copied_seen_,
                   pool_.hits() - pool_hits_seen_};
    pages_copied_seen_ += d.pages_copied;
    pool_hits_seen_ += d.pool_hits;
    return d;
  }

  // Drains this worker's metric shard into the shared registry. The worker loop
  // calls it once per chunk (so a live reader sees progress mid-exploration); the
  // shard destructor folds whatever remains at worker teardown.
  void FoldMetrics() { shard_.Fold(); }

 private:
  // Clock reads happen only with an external registry attached (em_->timed):
  // the detached explorer's trials pay nothing for the phase instrumentation.
  uint64_t NowIfTimed() const { return em_->timed ? obs::MonotonicNanos() : 0; }
  void AddPhase(ExploreMetrics::Phase phase, uint64_t ns) {
    if (em_->timed) {
      shard_.Add(em_->phase_ns[phase], ns);
    }
  }
  // Judge phase (CollectOutput, between t1 and now) plus the whole-trial latency
  // observation for the per-trial histogram.
  void FinishTrial(uint64_t t0, uint64_t t1) {
    if (em_->timed) {
      const uint64_t t2 = obs::MonotonicNanos();
      shard_.Add(em_->phase_ns[ExploreMetrics::kJudge], t2 - t1);
      shard_.Observe(em_->trial_us, (t2 - t0) / 1000);
    }
  }

  const ExploreConfig cfg_;
  ExploreMetrics* em_;
  obs::Registry::Shard shard_;
  sim::ScriptedScheduler sched_;
  sim::Device dev_;
  TraceRecorder trace_;
  sim::SnapshotPool pool_;  // outlives every Capture handle a chunk holds
  bool hash_captures_ = false;
  StateHasher hasher_;  // per-stack: its page cache tracks this stack's device
  std::vector<Capture> caps_scratch_;
  std::optional<kernel::NvManager> nv_;
  std::unique_ptr<kernel::Runtime> runtime_;
  apps::AppHandle app_;
  uint64_t pages_copied_seen_ = 0;
  uint64_t pool_hits_seen_ = 0;
};

// Keeps at most `keep` of the sorted instant list `v`, spread uniformly over its
// *time span* rather than its enumeration index. Candidate instants cluster wherever
// the trace is event-dense (a store loop emits hundreds in a few hundred
// microseconds), so an index stride concentrates failures there; the failure model
// the checker stands in for — harvested energy running out — strikes uniformly in
// time. May return fewer than `keep` when sparse stretches collapse onto the same
// nearest instant. Pure arithmetic on the instant values: deterministic, and
// independent of engine mode and worker count.
std::vector<uint64_t> TimeSubset(const std::vector<uint64_t>& v, size_t keep) {
  if (v.size() <= keep) {
    return v;
  }
  if (keep <= 1) {
    return {v[v.size() / 2]};
  }
  const uint64_t lo = v.front();
  const uint64_t hi = v.back();
  std::vector<uint64_t> out;
  out.reserve(keep);
  size_t cursor = 0;
  for (size_t j = 0; j < keep; ++j) {
    const uint64_t target = lo + (hi - lo) * j / (keep - 1);
    while (cursor + 1 < v.size() && v[cursor] < target) {
      ++cursor;
    }
    if (out.empty() || out.back() != v[cursor]) {
      out.push_back(v[cursor]);
    }
  }
  return out;
}

// Partial-order reduction over a sorted instant list: maps each index to the index of
// its class representative (the first member, so representatives always precede their
// members). Tokens are monotone in the instant, so equal-class members are always a
// consecutive run. `restart_every` forces a fresh representative at fixed index
// boundaries — the parallel phases hand out work in fixed-size chunks/groups, and a
// member may only reference a representative executed by the same worker. Disabled
// (identity mapping) when `enabled` is false, so both engine modes and both pruning
// settings walk the identical slot layout.
std::vector<size_t> CollapseRuns(const std::vector<uint64_t>& v, const GapClasses& gc,
                                 bool enabled, size_t restart_every = SIZE_MAX) {
  std::vector<size_t> rep(v.size());
  uint64_t prev_token = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    const uint64_t token = gc.TokenFor(v[i]);
    if (enabled && i > 0 && token == prev_token && GapClasses::Collapsible(token) &&
        i % restart_every != 0) {
      rep[i] = rep[i - 1];
    } else {
      rep[i] = i;
    }
    prev_token = token;
  }
  return rep;
}

void AppendEscaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

ReplayOutput ReplaySchedule(const ExploreConfig& cfg, const std::vector<uint64_t>& schedule) {
  sim::ScriptedScheduler sched(schedule, cfg.off_us);
  sim::Device dev(MakeDeviceConfig(cfg), sched);
  TraceRecorder trace;
  trace.Install(dev);

  kernel::NvManager nv(dev.mem());
  auto runtime = apps::MakeRuntime(cfg.runtime, MakeEaseioConfig(cfg));
  runtime->Bind(dev, nv);
  apps::AppHandle app = apps::BuildApp(cfg.app, dev, *runtime, nv, MakeAppOptions(cfg));

  kernel::Engine engine(kernel::RunConfig{cfg.max_on_us});
  ReplayOutput out;
  out.run = engine.Run(dev, *runtime, nv, app.graph, app.entry);
  out.schedule = schedule;
  out.events = trace.TakeEvents();
  out.task_names.reserve(app.graph.size());
  for (size_t t = 0; t < app.graph.size(); ++t) {
    out.task_names.push_back(app.graph.task(static_cast<kernel::TaskId>(t)).name);
  }
  out.io_sites = runtime->io_sites();
  out.io_blocks = runtime->io_blocks();
  out.dma_sites = runtime->dma_sites();
  out.nv_slot_names.reserve(nv.slots().size());
  for (const kernel::NvSlot& s : nv.slots()) {
    out.nv_slot_names.push_back(s.name);
  }
  return out;
}

ExploreResult Explore(const ExploreConfig& cfg) {
  const auto wall_start = std::chrono::steady_clock::now();
  // Exhaust mode replaces the budgeted sampler with complete enumeration of every
  // schedule of at most `exhaust` failures; the snapshot engine is what makes that
  // tractable, so the flag combination is rejected at the CLI and checked here.
  const bool exhaust = cfg.exhaust > 0;
  if (exhaust) {
    EASEIO_CHECK(cfg.exhaust <= 2, "exhaust depth is capped at 2");
    EASEIO_CHECK(cfg.use_snapshot, "exhaust mode requires the snapshot engine");
  }
  const int depth = exhaust ? static_cast<int>(cfg.exhaust) : cfg.depth;
  ExploreResult res;
  res.app = apps::ToString(cfg.app);
  res.runtime = apps::ToString(cfg.runtime);
  res.seed = cfg.seed;
  res.depth = depth;

  // All metric registration happens here, before any worker shard exists. With no
  // external registry the local one is the accumulator of record — the timing
  // block below reads back from it either way.
  obs::Registry local_metrics;
  ExploreMetrics em(cfg.metrics, &local_metrics, res.app, res.runtime);
  obs::Registry& reg = *em.reg;
  reg.Add(em.explorations, 1);
  // Main-thread enumerate-phase timer (candidate extraction, subsampling, POR and
  // pair-group assembly). Worker phases are timed inside TrialStack.
  uint64_t enumerate_t0 = 0;
  auto enumerate_begin = [&] {
    if (em.timed) {
      enumerate_t0 = obs::MonotonicNanos();
    }
  };
  auto enumerate_end = [&] {
    if (em.timed) {
      reg.Add(em.phase_ns[ExploreMetrics::kEnumerate],
              obs::MonotonicNanos() - enumerate_t0);
    }
  };

  // Phase 0: continuous-power golden run with the probe installed. Always a fresh
  // stack — one run amortizes nothing. It also settles the prune policy: the site
  // tables only exist on a built stack.
  GoldenFacts golden;
  PrunePolicy policy;
  const TrialOutput g = RunTrial(cfg, {}, nullptr, &golden, &policy);
  EASEIO_CHECK(g.facts.completed, "golden run did not complete");
  res.golden_on_us = g.run.on_us;
  res.trace_events = static_cast<uint32_t>(g.events.size());
  const bool prune = cfg.use_pruning && policy.enabled;

  // Phase 1: depth-1 placements — candidate instants of the golden trace. When pairs
  // are requested, most of the budget is reserved for them: depth 2 is where the
  // second-order bugs hide, and (under the snapshot engine) where a schedule costs
  // only its suffix. Depth 1 keeps a quarter, spread uniformly over the run's
  // timeline (see TimeSubset). Exhaust mode keeps everything.
  enumerate_begin();
  std::vector<uint64_t> d1 = CandidateInstants(g.events, g.run.on_us);
  res.candidate_instants = static_cast<uint32_t>(d1.size());
  const uint32_t budget = std::max<uint32_t>(cfg.budget, 1);
  const bool want_depth2 = depth >= 2;
  const uint32_t d1_budget = want_depth2 ? std::max<uint32_t>(budget / 4, 1) : budget;
  if (!exhaust && d1.size() > d1_budget) {
    const size_t before = d1.size();
    d1 = TimeSubset(d1, d1_budget);
    res.schedules_skipped += static_cast<uint32_t>(before - d1.size());
  }

  // Partial-order reduction state. Depth-1 instants collapse only when no pair phase
  // needs their traces: a collapsed member never executes, so it can seed nothing —
  // in standard depth-2 runs every depth-1 trial runs (identical to pruning off),
  // while exhaust mode collapses them at any depth and certifies the member subtrees
  // as covered by their representative's (the post-reboot worlds are interchangeable,
  // so the representative's pair enumeration spans the member's classes too).
  GapClasses golden_classes;
  if (prune) {
    golden_classes.Build(g.events, 0);
  }
  const bool d1_collapse = prune && (exhaust || !want_depth2);
  constexpr size_t kD1Chunk = 32;
  const std::vector<size_t> d1_rep = CollapseRuns(d1, golden_classes, d1_collapse, kD1Chunk);
  uint64_t d1_class_count = 0;
  for (size_t i = 0; i < d1_rep.size(); ++i) {
    d1_class_count += d1_rep[i] == i ? 1 : 0;
  }

  // State-dedup tables. Standard mode shares one table across phases and workers
  // (guarded by a mutex): which trial pays for a state is scheduling-dependent, but
  // the substituted verdicts are not, so only the timing-block counters can shift.
  // Exhaust mode instead uses a table per chunk/group, making every certificate
  // count a pure function of the spec. Substitution only happens at the terminal
  // depth — an earlier-phase trial must really run, its trace seeds the next phase.
  struct SharedDedup {
    std::mutex mu;
    DedupTable table;
  };
  SharedDedup shared_dedup;
  auto shared_lookup = [&shared_dedup](const StateKey& key) {
    std::lock_guard<std::mutex> lock(shared_dedup.mu);
    return shared_dedup.table.Lookup(key);
  };
  auto shared_insert = [&shared_dedup](const StateKey& key) {
    std::lock_guard<std::mutex> lock(shared_dedup.mu);
    shared_dedup.table.Insert(key);
  };
  const bool d1_terminal = !want_depth2;
  // Standard mode fingerprints depth-1 captures even at depth 2: no substitution
  // there, but the inserted clean states serve the pair phase (commit points drain
  // runtime metadata back to the golden trajectory, so cross-depth twins do occur).
  const bool hash_d1 = prune && cfg.use_snapshot && (!exhaust || d1_terminal);

  // Hot-path diagnostics, summed across workers into the registry. Plain integer
  // sums are independent of scheduling order, so these land identical for any jobs
  // value (they live in the strippable timing block regardless). Folding the
  // worker's metric shard per chunk keeps a live registry reader current.
  auto drain_hot_path = [&](TrialStack& stack) {
    const TrialStack::HotPathDelta d = stack.TakeHotPathDelta();
    reg.Add(em.pages_copied, d.pages_copied);
    reg.Add(em.pool_hits, d.pool_hits);
    stack.FoldMetrics();
  };

  struct Slot {
    bool completed = false;
    bool resumed = false;  // executed as a trunk-captured resumption
    std::vector<Violation> violations;
    std::vector<uint64_t> candidates;  // this trial's own trace (depth-2 seeds)
    GapClasses classes;  // equivalence classes over that trace (pair-phase POR)
  };
  std::vector<Slot> slots(d1.size());
  auto record_d1 = [&](TrialOutput& t, size_t i) {
    slots[i].completed = t.facts.completed;
    slots[i].violations = std::move(t.violations);
    if (want_depth2 && t.facts.completed) {
      // Only instants after the first failure can seed a pair; extracting just the
      // tail skips re-sorting the shared golden prefix for every depth-1 trial.
      slots[i].candidates = CandidateInstants(t.events, t.run.on_us, d1[i] + 1);
      if (prune) {
        slots[i].classes.Build(t.events, d1[i] + 1);
      }
    }
  };
  enumerate_end();
  // Fixed chunk size (kD1Chunk above): determinism across jobs values requires the
  // chunk boundaries — and therefore which trunk serves which trial — to be pure
  // index arithmetic.
  if (cfg.use_snapshot) {
    // Depth-1 trials share their prefixes with each other too: all of them replay the
    // golden timeline up to their failure instant. Each chunk of consecutive instants
    // runs one unfailed trunk that snapshots at every class representative; each
    // representative resumes from its capture and pays only its own post-failure
    // tail, while POR members inherit their representative's verdicts outright.
    const size_t n_chunks = (d1.size() + kD1Chunk - 1) / kD1Chunk;
    platform::ParallelForWithState(
        cfg.jobs, n_chunks,
        [&] {
          auto stack = std::make_unique<TrialStack>(cfg, &em);
          stack->set_hash_captures(hash_d1);
          return stack;
        },
        [&](std::unique_ptr<TrialStack>& stack, size_t ci) {
          const size_t lo = ci * kD1Chunk;
          const size_t hi = std::min(d1.size(), lo + kD1Chunk);
          std::vector<uint64_t> capture_at;
          capture_at.reserve(hi - lo);
          for (size_t i = lo; i < hi; ++i) {
            if (d1_rep[i] == i) {
              capture_at.push_back(d1[i]);
            }
          }
          std::vector<TrialStack::Capture>& caps = stack->caps_scratch();
          // A trunk plus one resume costs more than one full replay, so singleton
          // chunks replay directly.
          const size_t taken =
              capture_at.size() >= 2 ? stack->RunTrunk(false, 0, capture_at, &caps) : 0;
          DedupTable chunk_table;  // exhaust mode: chunk-local, deterministic counts
          uint64_t pruned = 0;
          uint64_t deduped = 0;
          size_t k = 0;  // capture cursor over the representatives
          for (size_t i = lo; i < hi; ++i) {
            if (d1_rep[i] != i) {
              // POR member: its representative (earlier in this same chunk) already
              // established the verdicts; any violation it would re-report is the
              // keep-first duplicate the collector drops anyway.
              slots[i].completed = slots[d1_rep[i]].completed;
              ++pruned;
              continue;
            }
            StateKey* key = k < taken && caps[k].key.valid ? &caps[k].key : nullptr;
            bool substituted = false;
            if (d1_terminal && key != nullptr &&
                (exhaust ? chunk_table.Lookup(*key) : shared_lookup(*key))) {
              // A verified byte-identical state already ran clean to completion.
              slots[i].completed = true;
              caps[k].dev.reset();  // hand the snapshot straight back to the pool
              ++deduped;
              substituted = true;
            }
            if (!substituted) {
              TrialOutput t = k < taken
                                  ? stack->ResumeFromCapture(caps[k], {d1[i]}, golden)
                                  : stack->RunFull({d1[i]}, &golden, nullptr);
              slots[i].resumed = k < taken;
              const bool clean = t.facts.completed && t.violations.empty();
              record_d1(t, i);
              if (key != nullptr && clean) {
                exhaust ? chunk_table.Insert(*key) : shared_insert(*key);
              }
              stack->RecycleEvents(std::move(t.events));
            }
            ++k;
          }
          reg.Add(em.trials_pruned, pruned + deduped);
          reg.Add(em.dedup_hits, deduped);
          drain_hot_path(*stack);
        });
  } else {
    std::vector<size_t> reps;
    reps.reserve(d1.size());
    for (size_t i = 0; i < d1.size(); ++i) {
      if (d1_rep[i] == i) {
        reps.push_back(i);
      }
    }
    platform::ParallelFor(cfg.jobs, reps.size(), [&](size_t j) {
      const size_t i = reps[j];
      TrialOutput t = RunTrial(cfg, {d1[i]}, &golden, nullptr);
      record_d1(t, i);
    });
    for (size_t i = 0; i < d1.size(); ++i) {
      if (d1_rep[i] != i) {
        slots[i].completed = slots[d1_rep[i]].completed;
        reg.Add(em.trials_pruned, 1);
      }
    }
  }

  std::vector<Violation> collected;
  for (Slot& s : slots) {
    res.schedules += 1;
    res.completed += s.completed ? 1 : 0;
    for (Violation& v : s.violations) {
      collected.push_back(std::move(v));
    }
  }
  for (size_t lo = 0; lo < slots.size(); lo += kD1Chunk) {
    const size_t hi = std::min(slots.size(), lo + kD1Chunk);
    uint64_t saved = 0;
    uint64_t deepest = 0;
    uint32_t resumed = 0;
    for (size_t i = lo; i < hi; ++i) {
      if (slots[i].resumed) {
        ++resumed;
        saved += d1[i];
        deepest = d1[i];  // instants ascend, so the last resumed one is the deepest
      }
    }
    if (resumed > 0) {
      reg.Add(em.snapshot_resumes, resumed);
      // Each resumed trial skipped its own [0, d1[i]) prefix; the chunk paid for the
      // trunk's single [0, deepest] execution instead.
      reg.Add(em.prefix_us_saved, saved - deepest);
    }
  }

  // Phase 2: depth-2 pairs. The second failure is placed at the instants the depth-1
  // trial actually visited *after* its first failure — adaptive enumeration: the
  // post-failure execution (recovery, re-execution, skips) is where the second-order
  // bugs hide, and its timeline exists only in that trial's own trace. Pairs are
  // organised as first-instant *groups* from the start: each depth-1 trial owns the
  // pairs it seeded, and when the pair universe exceeds the budget the sampler keeps
  // whole (stride-subsampled) groups rather than flat-sampling pairs — the snapshot
  // engine then amortises one shared prefix over ~kGroupTarget suffixes. Selection is
  // pure index arithmetic over the enumeration order: deterministic for any jobs
  // value and identical in both engine modes.
  uint64_t pair_class_count = 0;
  uint64_t pair_total_selected = 0;
  if (want_depth2) {
    enumerate_begin();
    struct PairGroup {
      uint64_t t1 = 0;
      std::vector<uint64_t> t2s;
      size_t slot_base = 0;  // first index in the flat result-slot array
      // POR collapse over t2s (CollapseRuns against the owner's trace classes):
      // rep_of[k] == k marks a representative; members point at an earlier k. Groups
      // are self-contained work items, so no chunk-boundary restart is needed.
      std::vector<size_t> rep_of;
    };
    std::vector<size_t> owners;  // depth-1 trials with at least one pair to offer
    std::vector<std::vector<uint64_t>> t2_lists(d1.size());
    size_t total_pairs = 0;
    for (size_t i = 0; i < d1.size(); ++i) {
      // record_d1 extracted candidates past d1[i] only, so the list is the pair set.
      t2_lists[i] = std::move(slots[i].candidates);
      if (!t2_lists[i].empty()) {
        owners.push_back(i);
        total_pairs += t2_lists[i].size();
      }
    }

    const uint32_t pair_budget = budget > res.schedules ? budget - res.schedules : 0;
    std::vector<PairGroup> groups;
    if (exhaust || total_pairs <= pair_budget) {
      // Exhaust mode lands here by construction: every owner contributes its full
      // pair set (collapsed depth-1 members contributed no candidates — their pair
      // subtrees are certified as covered by their representative's).
      for (size_t i : owners) {
        groups.push_back({d1[i], t2_lists[i], 0,
                          CollapseRuns(t2_lists[i], slots[i].classes, prune)});
      }
    } else if (pair_budget > 0) {
      // Aim for groups of ~kGroupTarget suffixes: large enough to amortise the shared
      // prefix, small enough to keep many distinct first instants covered. Owners are
      // picked uniformly over the golden timeline (TimeSubset, same rationale as the
      // depth-1 subsample) — which also hands the snapshot engine deep shared
      // prefixes instead of the shallow ones an index-spread over an event-dense
      // stretch would pick. Each owner keeps a time-spread subsample of its own t2
      // list sized to an even share of the pair budget.
      constexpr size_t kGroupTarget = 16;
      const size_t n_groups =
          std::min(owners.size(), std::max<size_t>(1, pair_budget / kGroupTarget));
      std::vector<uint64_t> owner_instants;
      owner_instants.reserve(owners.size());
      for (size_t i : owners) {
        owner_instants.push_back(d1[i]);
      }
      const std::vector<uint64_t> picked_instants = TimeSubset(owner_instants, n_groups);
      std::vector<size_t> picked;
      size_t cursor = 0;
      for (uint64_t t1 : picked_instants) {
        while (d1[owners[cursor]] != t1) {
          ++cursor;
        }
        picked.push_back(owners[cursor]);
      }
      for (size_t j = 0; j < picked.size(); ++j) {
        const size_t i = picked[j];
        const size_t quota =
            pair_budget / picked.size() + (j < pair_budget % picked.size() ? 1 : 0);
        std::vector<uint64_t> t2s =
            t2_lists[i].size() > quota ? TimeSubset(t2_lists[i], quota) : t2_lists[i];
        // Collapse AFTER the budget subsample: the selected instants (and therefore
        // the serialized slot layout) are identical with pruning off.
        std::vector<size_t> rep_of = CollapseRuns(t2s, slots[i].classes, prune);
        groups.push_back({d1[i], std::move(t2s), 0, std::move(rep_of)});
      }
    }
    size_t selected = 0;
    for (PairGroup& grp : groups) {
      grp.slot_base = selected;
      selected += grp.t2s.size();
      for (size_t k = 0; k < grp.rep_of.size(); ++k) {
        pair_class_count += grp.rep_of[k] == k ? 1 : 0;
      }
    }
    pair_total_selected = selected;
    res.schedules_skipped += static_cast<uint32_t>(total_pairs - selected);

    struct PairSlot {
      bool completed = false;
      bool resumed = false;  // executed as a snapshot-resumed suffix
      std::vector<Violation> violations;
    };
    std::vector<PairSlot> slots2(selected);
    enumerate_end();

    if (cfg.use_snapshot) {
      // The group (not the pair) is the parallel work item: each group runs one trunk
      // (fail at t1, reboot through, then capture at every representative t2 without
      // failing) and executes every representative as a resumption of its capture,
      // paying only the post-t2 tail; POR members inherit their representative's
      // verdicts without executing. The captures never cross workers, and slot_base
      // indexing keeps the merge order (and therefore the JSON) independent of jobs.
      platform::ParallelForWithState(
          cfg.jobs, groups.size(),
          [&] {
            auto stack = std::make_unique<TrialStack>(cfg, &em);
            stack->set_hash_captures(prune);
            return stack;
          },
          [&](std::unique_ptr<TrialStack>& stack, size_t gi) {
            const PairGroup& grp = groups[gi];
            std::vector<uint64_t> capture_at;
            capture_at.reserve(grp.t2s.size());
            for (size_t k = 0; k < grp.t2s.size(); ++k) {
              if (grp.rep_of[k] == k) {
                capture_at.push_back(grp.t2s[k]);
              }
            }
            // A trunk plus one resume costs more than one full replay, so singleton
            // groups replay directly.
            std::vector<TrialStack::Capture>& caps = stack->caps_scratch();
            const size_t taken =
                capture_at.size() >= 2 ? stack->RunTrunk(true, grp.t1, capture_at, &caps)
                                       : 0;
            DedupTable group_table;  // exhaust mode: group-local, deterministic counts
            uint64_t pruned = 0;
            uint64_t deduped = 0;
            size_t kc = 0;  // capture cursor over the representatives
            for (size_t k = 0; k < grp.t2s.size(); ++k) {
              PairSlot& slot = slots2[grp.slot_base + k];
              if (grp.rep_of[k] != k) {
                slot.completed = slots2[grp.slot_base + grp.rep_of[k]].completed;
                ++pruned;
                continue;
              }
              StateKey* key = kc < taken && caps[kc].key.valid ? &caps[kc].key : nullptr;
              bool substituted = false;
              if (key != nullptr &&
                  (exhaust ? group_table.Lookup(*key) : shared_lookup(*key))) {
                slot.completed = true;
                caps[kc].dev.reset();
                ++deduped;
                substituted = true;
              }
              if (!substituted) {
                TrialOutput t =
                    kc < taken
                        ? stack->ResumeFromCapture(caps[kc], {grp.t1, grp.t2s[k]}, golden)
                        : stack->RunFull({grp.t1, grp.t2s[k]}, &golden, nullptr);
                slot.completed = t.facts.completed;
                slot.resumed = kc < taken;
                slot.violations = std::move(t.violations);
                if (key != nullptr && slot.completed && slot.violations.empty()) {
                  exhaust ? group_table.Insert(*key) : shared_insert(*key);
                }
                stack->RecycleEvents(std::move(t.events));
              }
              ++kc;
            }
            reg.Add(em.trials_pruned, pruned + deduped);
            reg.Add(em.dedup_hits, deduped);
            drain_hot_path(*stack);
          });

      for (const PairGroup& grp : groups) {
        uint64_t saved = 0;
        uint64_t deepest = 0;
        uint32_t resumed = 0;
        for (size_t k = 0; k < grp.t2s.size(); ++k) {
          if (slots2[grp.slot_base + k].resumed) {
            ++resumed;
            saved += grp.t2s[k];
            deepest = grp.t2s[k];  // t2s ascend
          }
        }
        if (resumed > 0) {
          reg.Add(em.snapshot_resumes, resumed);
          // Full replay would execute [0, t2_k] per pair; the group paid for one trunk
          // reaching the deepest capture instead.
          reg.Add(em.prefix_us_saved, saved - deepest);
        }
      }
    } else {
      // Full-replay cross-check path: the same representative structure (POR applies
      // identically; there are no captures, so no dedup — every representative runs).
      std::vector<std::pair<uint64_t, uint64_t>> pairs(selected);
      std::vector<size_t> rep_slots;
      rep_slots.reserve(selected);
      for (const PairGroup& grp : groups) {
        for (size_t k = 0; k < grp.t2s.size(); ++k) {
          pairs[grp.slot_base + k] = {grp.t1, grp.t2s[k]};
          if (grp.rep_of[k] == k) {
            rep_slots.push_back(grp.slot_base + k);
          }
        }
      }
      platform::ParallelFor(cfg.jobs, rep_slots.size(), [&](size_t j) {
        const size_t i = rep_slots[j];
        TrialOutput t = RunTrial(cfg, {pairs[i].first, pairs[i].second}, &golden, nullptr);
        slots2[i].completed = t.facts.completed;
        slots2[i].violations = std::move(t.violations);
      });
      for (const PairGroup& grp : groups) {
        for (size_t k = 0; k < grp.t2s.size(); ++k) {
          if (grp.rep_of[k] != k) {
            slots2[grp.slot_base + k].completed =
                slots2[grp.slot_base + grp.rep_of[k]].completed;
            reg.Add(em.trials_pruned, 1);
          }
        }
      }
    }

    for (PairSlot& s : slots2) {
      res.schedules += 1;
      res.completed += s.completed ? 1 : 0;
      for (Violation& v : s.violations) {
        collected.push_back(std::move(v));
      }
    }
  }

  // Deduplicate by (invariant, subject), keeping the first occurrence — depth-1 trials
  // come first and instants ascend, so each surviving violation carries the minimal
  // failing schedule the exploration found.
  std::set<std::string> seen;
  for (Violation& v : collected) {
    const std::string key = std::string(ToString(v.invariant)) + "|" + v.subject;
    if (seen.insert(key).second) {
      res.violations.push_back(std::move(v));
    }
  }

  // The timing block re-emits from the registry: each field is this exploration's
  // delta against its registration-time baseline, so a shared long-lived registry
  // reproduces exactly what the retired ad-hoc atomics reported.
  res.trials_pruned = reg.Value(em.trials_pruned) - em.base_trials_pruned;
  res.dedup_hits = reg.Value(em.dedup_hits) - em.base_dedup_hits;
  if (exhaust) {
    // The certificate restates the pruning as deterministic coverage accounting —
    // every count is a pure function of the spec (chunk/group-local dedup tables,
    // index-arithmetic POR runs), so it serializes outside the timing block.
    res.has_certificate = true;
    ExploreResult::Certificate& cert = res.certificate;
    cert.exhaust = cfg.exhaust;
    cert.schedules_covered = res.schedules;
    cert.d1_classes = d1_class_count;
    cert.d1_members_collapsed = d1.size() - d1_class_count;
    cert.pair_classes = pair_class_count;
    cert.pair_members_collapsed = pair_total_selected - pair_class_count;
    cert.states_deduped = res.dedup_hits;
    cert.trials_executed = cert.d1_classes + cert.pair_classes - cert.states_deduped;
    cert.reduction_ratio =
        cert.trials_executed > 0
            ? static_cast<double>(cert.schedules_covered) / cert.trials_executed
            : 0.0;
  }
  res.snapshot_resumes = reg.Value(em.snapshot_resumes) - em.base_snapshot_resumes;
  res.prefix_us_saved = reg.Value(em.prefix_us_saved) - em.base_prefix_us_saved;
  res.pages_copied = reg.Value(em.pages_copied) - em.base_pages_copied;
  res.pool_hits = reg.Value(em.pool_hits) - em.base_pool_hits;
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  res.trials_per_sec =
      res.wall_seconds > 0 ? static_cast<double>(res.schedules) / res.wall_seconds : 0.0;
  return res;
}

std::string ToJson(const ExploreResult& r, bool include_timing) {
  std::ostringstream os;
  os << "{\"app\":\"";
  AppendEscaped(os, r.app);
  os << "\",\"runtime\":\"";
  AppendEscaped(os, r.runtime);
  os << "\",\"seed\":" << r.seed << ",\"depth\":" << r.depth
     << ",\"golden_on_us\":" << r.golden_on_us << ",\"trace_events\":" << r.trace_events
     << ",\"candidate_instants\":" << r.candidate_instants << ",\"schedules\":" << r.schedules
     << ",\"completed\":" << r.completed << ",\"schedules_skipped\":" << r.schedules_skipped
     << ",\"violations\":[";
  for (size_t i = 0; i < r.violations.size(); ++i) {
    const Violation& v = r.violations[i];
    if (i > 0) {
      os << ",";
    }
    os << "{\"invariant\":\"" << ToString(v.invariant) << "\",\"subject\":\"";
    AppendEscaped(os, v.subject);
    os << "\",\"detail\":\"";
    AppendEscaped(os, v.detail);
    os << "\",\"schedule\":[";
    for (size_t k = 0; k < v.schedule.size(); ++k) {
      if (k > 0) {
        os << ",";
      }
      os << v.schedule[k];
    }
    os << "]}";
  }
  os << "]";
  if (r.has_certificate) {
    // Deterministic coverage certificate (exhaust mode): serialized OUTSIDE the
    // strippable timing block because every field is byte-identical across jobs
    // counts and machines. Flat numerics only, like timing.
    const ExploreResult::Certificate& c = r.certificate;
    os << ",\"certificate\":{\"exhaust\":" << c.exhaust
       << ",\"schedules_covered\":" << c.schedules_covered
       << ",\"d1_classes\":" << c.d1_classes
       << ",\"d1_members_collapsed\":" << c.d1_members_collapsed
       << ",\"pair_classes\":" << c.pair_classes
       << ",\"pair_members_collapsed\":" << c.pair_members_collapsed
       << ",\"states_deduped\":" << c.states_deduped
       << ",\"trials_executed\":" << c.trials_executed
       << ",\"reduction_ratio\":" << c.reduction_ratio << "}";
  }
  if (include_timing) {
    // Flat numeric fields only: CI strips the whole object with a brace-free regex.
    os << ",\"timing\":{\"wall_seconds\":" << r.wall_seconds
       << ",\"trials_per_sec\":" << r.trials_per_sec
       << ",\"snapshot_resumes\":" << r.snapshot_resumes
       << ",\"prefix_us_saved\":" << r.prefix_us_saved
       << ",\"pages_copied\":" << r.pages_copied
       << ",\"pool_hits\":" << r.pool_hits
       << ",\"trials_pruned\":" << r.trials_pruned
       << ",\"dedup_hits\":" << r.dedup_hits << "}";
  }
  os << "}";
  return os.str();
}

std::string ToJson(const std::vector<ExploreResult>& results, bool include_timing) {
  std::ostringstream os;
  os << "{\"explorations\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << ToJson(results[i], include_timing);
  }
  os << "]}";
  return os.str();
}

}  // namespace easeio::chk
