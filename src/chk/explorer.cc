#include "chk/explorer.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "chk/trace.h"
#include "kernel/engine.h"
#include "platform/check.h"
#include "platform/parallel.h"
#include "platform/rng.h"
#include "sim/failure.h"

namespace easeio::chk {
namespace {

struct TrialOutput {
  TrialFacts facts;
  std::vector<sim::ProbeEvent> events;
  kernel::RunResult run;
  std::vector<Violation> violations;
  size_t failures_fired = 0;
};

// Executes one schedule end-to-end: fresh device + runtime + app, scripted failures,
// probe recording, and (when a golden reference is supplied) the invariant checks.
// Every trial uses the *same* device seed — sensor streams and golden outputs must
// line up across trials; determinism across shards comes from trial indexing, not
// from per-worker state.
TrialOutput RunTrial(const ExploreConfig& cfg, const std::vector<uint64_t>& schedule,
                     const GoldenFacts* golden, GoldenFacts* golden_out) {
  sim::ScriptedScheduler sched(schedule, cfg.off_us);
  sim::DeviceConfig dev_config;
  dev_config.seed = cfg.seed;
  dev_config.timekeeper_tick_us = cfg.timekeeper_tick_us;
  sim::Device dev(dev_config, sched);
  TraceRecorder trace;
  trace.Install(dev);

  kernel::NvManager nv(dev.mem());
  rt::EaseioConfig easeio_config;
  easeio_config.dma_priv_buffer_bytes = cfg.easeio_priv_buffer_bytes;
  easeio_config.enable_regional_privatization = cfg.easeio_regional_privatization;
  auto runtime = apps::MakeRuntime(cfg.runtime, easeio_config);
  runtime->Bind(dev, nv);

  apps::AppOptions options = cfg.app_options;
  if (apps::IsEaseioOp(cfg.runtime)) {
    options.exclude_const_dma = true;
  }
  apps::AppHandle app = apps::BuildApp(cfg.app, dev, *runtime, nv, options);

  kernel::Engine engine(kernel::RunConfig{cfg.max_on_us});
  const kernel::RunResult run = engine.Run(dev, *runtime, nv, app.graph, app.entry);
  const apps::AppTraits traits = apps::TraitsFor(cfg.app);

  TrialOutput out;
  out.run = run;
  out.events = trace.TakeEvents();
  out.failures_fired = sched.next_index();
  out.facts.completed = run.completed;
  out.facts.consistent = run.completed && app.check_consistent(dev);
  out.facts.deterministic = traits.deterministic;
  out.facts.dma_mirror = traits.dma_mirror;
  out.facts.semantic_runtime = cfg.runtime == apps::RuntimeKind::kEaseio ||
                               cfg.runtime == apps::RuntimeKind::kEaseioOp;
  out.facts.output = app.collect_output(dev);
  out.facts.schedule = schedule;

  if (golden_out != nullptr) {
    golden_out->output = out.facts.output;
    golden_out->war_state = CollectWarState(*runtime, nv, dev);
  }
  if (golden != nullptr) {
    out.violations = CheckInvariants(out.facts, *golden, out.events, *runtime, nv, dev);
  }
  return out;
}

// Keeps `keep` of `v` with an even stride — deterministic, and coverage stays spread
// over the whole run instead of clustering at the front.
std::vector<uint64_t> StrideSubset(const std::vector<uint64_t>& v, size_t keep) {
  std::vector<uint64_t> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    out.push_back(v[i * v.size() / keep]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void AppendEscaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

ExploreResult Explore(const ExploreConfig& cfg) {
  ExploreResult res;
  res.app = apps::ToString(cfg.app);
  res.runtime = apps::ToString(cfg.runtime);
  res.seed = cfg.seed;
  res.depth = cfg.depth;

  // Phase 0: continuous-power golden run with the probe installed.
  GoldenFacts golden;
  const TrialOutput g = RunTrial(cfg, {}, nullptr, &golden);
  EASEIO_CHECK(g.facts.completed, "golden run did not complete");
  res.golden_on_us = g.run.on_us;
  res.trace_events = static_cast<uint32_t>(g.events.size());

  // Phase 1: depth-1 placements — every candidate instant of the golden trace.
  std::vector<uint64_t> d1 = CandidateInstants(g.events, g.run.on_us);
  res.candidate_instants = static_cast<uint32_t>(d1.size());
  const uint32_t budget = std::max<uint32_t>(cfg.budget, 1);
  if (d1.size() > budget) {
    res.schedules_skipped += static_cast<uint32_t>(d1.size() - budget);
    d1 = StrideSubset(d1, budget);
  }

  struct Slot {
    bool completed = false;
    std::vector<Violation> violations;
    std::vector<uint64_t> candidates;  // this trial's own trace (depth-2 seeds)
  };
  std::vector<Slot> slots(d1.size());
  const bool want_depth2 = cfg.depth >= 2;
  platform::ParallelFor(cfg.jobs, d1.size(), [&](size_t i) {
    TrialOutput t = RunTrial(cfg, {d1[i]}, &golden, nullptr);
    slots[i].completed = t.facts.completed;
    slots[i].violations = std::move(t.violations);
    if (want_depth2 && t.facts.completed) {
      slots[i].candidates = CandidateInstants(t.events, t.run.on_us);
    }
  });

  std::vector<Violation> collected;
  for (Slot& s : slots) {
    res.schedules += 1;
    res.completed += s.completed ? 1 : 0;
    for (Violation& v : s.violations) {
      collected.push_back(std::move(v));
    }
  }

  // Phase 2: depth-2 pairs. The second failure is placed at the instants the depth-1
  // trial actually visited *after* its first failure — adaptive enumeration: the
  // post-failure execution (recovery, re-execution, skips) is where the second-order
  // bugs hide, and its timeline exists only in that trial's own trace.
  if (want_depth2) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    for (size_t i = 0; i < d1.size(); ++i) {
      const uint64_t t1 = d1[i];
      for (uint64_t t2 : slots[i].candidates) {
        if (t2 > t1) {
          pairs.emplace_back(t1, t2);
        }
      }
    }
    const uint32_t remaining = budget > res.schedules ? budget - res.schedules : 0;
    if (pairs.size() > remaining) {
      // Budgeted random-subset fallback: a seeded partial Fisher-Yates shuffle picks
      // the sample — deterministic for a given seed, independent of jobs.
      res.schedules_skipped += static_cast<uint32_t>(pairs.size() - remaining);
      Xorshift64Star rng(DeriveSeed(cfg.seed, 0x5EED));
      for (size_t i = 0; i < remaining; ++i) {
        const size_t j = i + rng.NextInRange(0, pairs.size() - 1 - i);
        std::swap(pairs[i], pairs[j]);
      }
      pairs.resize(remaining);
      std::sort(pairs.begin(), pairs.end());
    }

    std::vector<Slot> slots2(pairs.size());
    platform::ParallelFor(cfg.jobs, pairs.size(), [&](size_t i) {
      TrialOutput t = RunTrial(cfg, {pairs[i].first, pairs[i].second}, &golden, nullptr);
      slots2[i].completed = t.facts.completed;
      slots2[i].violations = std::move(t.violations);
    });
    for (Slot& s : slots2) {
      res.schedules += 1;
      res.completed += s.completed ? 1 : 0;
      for (Violation& v : s.violations) {
        collected.push_back(std::move(v));
      }
    }
  }

  // Deduplicate by (invariant, subject), keeping the first occurrence — depth-1 trials
  // come first and instants ascend, so each surviving violation carries the minimal
  // failing schedule the exploration found.
  std::set<std::string> seen;
  for (Violation& v : collected) {
    const std::string key = std::string(ToString(v.invariant)) + "|" + v.subject;
    if (seen.insert(key).second) {
      res.violations.push_back(std::move(v));
    }
  }
  return res;
}

std::string ToJson(const ExploreResult& r) {
  std::ostringstream os;
  os << "{\"app\":\"";
  AppendEscaped(os, r.app);
  os << "\",\"runtime\":\"";
  AppendEscaped(os, r.runtime);
  os << "\",\"seed\":" << r.seed << ",\"depth\":" << r.depth
     << ",\"golden_on_us\":" << r.golden_on_us << ",\"trace_events\":" << r.trace_events
     << ",\"candidate_instants\":" << r.candidate_instants << ",\"schedules\":" << r.schedules
     << ",\"completed\":" << r.completed << ",\"schedules_skipped\":" << r.schedules_skipped
     << ",\"violations\":[";
  for (size_t i = 0; i < r.violations.size(); ++i) {
    const Violation& v = r.violations[i];
    if (i > 0) {
      os << ",";
    }
    os << "{\"invariant\":\"" << ToString(v.invariant) << "\",\"subject\":\"";
    AppendEscaped(os, v.subject);
    os << "\",\"detail\":\"";
    AppendEscaped(os, v.detail);
    os << "\",\"schedule\":[";
    for (size_t k = 0; k < v.schedule.size(); ++k) {
      if (k > 0) {
        os << ",";
      }
      os << v.schedule[k];
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string ToJson(const std::vector<ExploreResult>& results) {
  std::ostringstream os;
  os << "{\"explorations\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << ToJson(results[i]);
  }
  os << "]}";
  return os.str();
}

}  // namespace easeio::chk
