// Witness replay for compiled EaseC programs.
//
// easelint's static findings each suggest a failure schedule that should demonstrate
// the flagged hazard. This entry point replays a CompileResult under a scripted
// schedule on a chosen runtime — the program-level counterpart of the registry-app
// ReplaySchedule in explorer.h — and returns everything the witness checker needs to
// judge the run: the probe event stream, the easec-index -> runtime-id tables (probe
// events carry runtime ids), and the final committed bytes of every __nv declaration.
// An empty schedule is the golden continuous-power run.

#ifndef EASEIO_CHK_PROGRAM_REPLAY_H_
#define EASEIO_CHK_PROGRAM_REPLAY_H_

#include <cstdint>
#include <vector>

#include "apps/runtime_factory.h"
#include "easec/program.h"
#include "kernel/engine.h"
#include "sim/probe.h"

namespace easeio::chk {

struct ProgramReplayConfig {
  apps::RuntimeKind runtime = apps::RuntimeKind::kEaseio;
  uint64_t seed = 1;
  uint64_t off_us = 700;            // dark time after each injected failure
  uint64_t max_on_us = 60'000'000;  // non-termination guard
  uint32_t easeio_priv_buffer_bytes = 4096;
  bool easeio_regional_privatization = true;
  uint64_t timekeeper_tick_us = 100;
};

struct ProgramReplayOutput {
  kernel::RunResult run;
  std::vector<uint64_t> schedule;
  std::vector<sim::ProbeEvent> events;
  // easec analysis index -> runtime registration id, as Instantiate assigned them.
  std::vector<kernel::IoSiteId> site_ids;
  std::vector<kernel::DmaSiteId> dma_ids;
  // easec __nv declaration index -> kernel NV slot (kNoSlot for __sram / unused
  // declarations). kNvWrite probe events carry the slot as their id.
  std::vector<kernel::NvSlotId> nv_ids;
  // Final committed values per __nv declaration (empty for __sram variables, whose
  // contents are volatile and meaningless after the run).
  std::vector<std::vector<int16_t>> nv_final;
};

// Replays `compiled` (which must have ok == true) under the scripted schedule.
ProgramReplayOutput ReplaySchedule(const easec::CompileResult& compiled,
                                   const ProgramReplayConfig& config,
                                   const std::vector<uint64_t>& schedule);

}  // namespace easeio::chk

#endif  // EASEIO_CHK_PROGRAM_REPLAY_H_
