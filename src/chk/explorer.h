// The failure-schedule explorer: bounded model checking over power-failure placements.
//
// A continuous-power golden run records the trace of candidate failure instants (see
// trace.h). The explorer then re-executes the application once per enumerated
// schedule — every depth-1 placement, then depth-2 pairs seeded from each depth-1
// trial's own post-failure trace — injecting failures with a ScriptedScheduler and
// judging every run with the invariant engine. Trials run through the deterministic
// parallel-map utility in platform/parallel.h (index-addressed slots, in-order merge),
// so the outcome (including the JSON serialization) is bit-identical for any --jobs
// value.

#ifndef EASEIO_CHK_EXPLORER_H_
#define EASEIO_CHK_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "apps/runtime_factory.h"
#include "chk/invariants.h"
#include "kernel/engine.h"
#include "kernel/io.h"
#include "sim/probe.h"

namespace easeio::obs {
class Registry;
}  // namespace easeio::obs

namespace easeio::chk {

// One (application, runtime) exploration.
struct ExploreConfig {
  apps::AppKind app = apps::AppKind::kDma;
  apps::RuntimeKind runtime = apps::RuntimeKind::kEaseio;
  uint64_t seed = 1;
  int depth = 2;           // 1: single failures; 2: also pairs
  // Hard cap on schedules; excess is subsampled deterministically. At depth 2 one
  // quarter goes to depth-1 placements and the rest to pairs, kept as first-instant
  // groups so the snapshot engine can amortise each shared prefix.
  uint32_t budget = 1500;
  uint32_t jobs = 0;       // worker threads; 0 = hardware concurrency
  uint64_t off_us = 700;   // dark time after each injected failure
  uint64_t max_on_us = 60'000'000;  // per-trial non-termination guard
  apps::AppOptions app_options;
  uint32_t easeio_priv_buffer_bytes = 4096;
  bool easeio_regional_privatization = true;
  uint64_t timekeeper_tick_us = 100;

  // Snapshot-at-reboot trial resumption: depth-2 pairs sharing a first failure
  // instant run the prefix once, snapshot at the post-t1 reboot, and execute each
  // pair as a resumed suffix. Off = full replay of every schedule (the cross-check
  // escape hatch; produces identical non-timing results).
  bool use_snapshot = true;

  // Schedule-space pruning: idempotent-region partial-order reduction (por.h) plus
  // canonical state-hash deduplication (statehash.h). Only engages where the prune
  // policy allows (prune-safe workload, no live Timely window); verdicts and every
  // non-timing output byte are identical with pruning off — the prunings only decide
  // which equivalent trial pays for each verdict.
  bool use_pruning = true;

  // Exhaustive coverage mode: enumerate EVERY schedule of at most `exhaust` failures
  // (1 or 2) under the prunings — no budget subsampling anywhere — and emit a
  // deterministic coverage certificate in the result. Overrides `depth` and ignores
  // `budget`; requires the snapshot engine (checked). 0 = off.
  uint32_t exhaust = 0;

  // Optional metrics registry (obs/metrics.h). The exploration always folds its
  // counters (snapshot_resumes, pool_hits, pages_copied, dedup_hits, trials_pruned)
  // through a registry — a local throwaway one when this is null — and re-emits the
  // legacy timing block from it, byte-compatibly. Attaching an external registry
  // additionally enables the phase timers (enumerate / snapshot-capture / resume /
  // replay / judge) and the per-trial latency histogram, which cost clock reads the
  // detached mode never pays. Metrics are timing-class data: nothing in the
  // non-timing result may depend on them.
  obs::Registry* metrics = nullptr;
};

struct ExploreResult {
  std::string app;
  std::string runtime;
  uint64_t seed = 0;
  int depth = 1;
  uint64_t golden_on_us = 0;       // continuous-power on-time
  uint32_t trace_events = 0;       // probe events in the golden trace
  uint32_t candidate_instants = 0; // distinct depth-1 failure placements found
  uint32_t schedules = 0;          // trials executed
  uint32_t completed = 0;          // trials that ran to completion
  uint32_t schedules_skipped = 0;  // enumerated placements dropped by the budget
  std::vector<Violation> violations;  // deduplicated; minimal schedules first

  // Coverage certificate, present only in exhaust mode. Every field is a
  // deterministic function of the spec (jobs-count and machine independent), so it
  // serializes *outside* the timing block and participates in byte-identity.
  struct Certificate {
    uint32_t exhaust = 0;               // the N of --exhaust N
    uint64_t schedules_covered = 0;     // enumerated schedules the certificate vouches for
    uint64_t d1_classes = 0;            // depth-1 equivalence-class representatives
    uint64_t d1_members_collapsed = 0;  // depth-1 instants covered by a representative
    uint64_t pair_classes = 0;          // pair representatives across all groups
    uint64_t pair_members_collapsed = 0;
    uint64_t states_deduped = 0;        // trials retired by a verified state-table hit
    uint64_t trials_executed = 0;       // engine executions actually paid for
    double reduction_ratio = 0;         // schedules_covered / trials_executed
  };
  bool has_certificate = false;
  Certificate certificate;

  // Timing / engine diagnostics. Serialized in a separate "timing" JSON object that
  // ToJson can exclude, because wall-clock varies run to run and the snapshot
  // counters legitimately differ between engine modes — everything above must stay
  // byte-identical across jobs counts *and* between snapshot/full-replay modes.
  double wall_seconds = 0;       // wall-clock time of the whole exploration
  double trials_per_sec = 0;     // schedules / wall_seconds
  uint64_t snapshot_resumes = 0; // depth-2 trials executed as resumed suffixes
  uint64_t prefix_us_saved = 0;  // simulated prefix on-time not re-executed
  uint64_t pages_copied = 0;     // FRAM pages actually copied by SnapshotInto/Restore
  uint64_t pool_hits = 0;        // snapshot buffers served from a worker pool free list
  // Pruning counters. In standard (budgeted) mode the dedup table is shared across
  // workers, so hit totals can shift with scheduling — which is why these live in the
  // timing block there; the *results* they prune are substitution-exact either way.
  // In exhaust mode the deterministic equivalents are in the certificate.
  uint64_t trials_pruned = 0;    // trials not executed: POR members + dedup hits
  uint64_t dedup_hits = 0;       // trials retired by a verified state-table hit
};

// Runs the exploration. Deterministic: identical results for any `jobs` value.
ExploreResult Explore(const ExploreConfig& config);

// One schedule replayed end-to-end on a fresh stack with the probe installed,
// packaged with the name tables a downstream consumer (the obs timeline writer)
// needs to label the events. `easechk --trace-failures` uses this to turn a
// violating schedule back into a complete, inspectable event stream — the
// exploration itself may have executed the trial as a resumed suffix whose
// recorded trace starts at the snapshot instant.
struct ReplayOutput {
  kernel::RunResult run;
  std::vector<uint64_t> schedule;
  std::vector<sim::ProbeEvent> events;
  std::vector<std::string> task_names;          // indexed by TaskId
  std::vector<kernel::IoSiteDesc> io_sites;     // indexed by IoSiteId
  std::vector<kernel::IoBlockDesc> io_blocks;   // indexed by IoBlockId
  std::vector<kernel::DmaSiteDesc> dma_sites;   // indexed by DmaSiteId
  std::vector<std::string> nv_slot_names;       // indexed by NvSlotId
};
ReplayOutput ReplaySchedule(const ExploreConfig& config,
                            const std::vector<uint64_t>& schedule);

// Stable JSON serialization (fixed field order; byte-identical across jobs counts).
// With include_timing = false the "timing" object is omitted entirely, making the
// output also byte-identical across engine modes and run-to-run.
std::string ToJson(const ExploreResult& result, bool include_timing = true);
std::string ToJson(const std::vector<ExploreResult>& results, bool include_timing = true);

}  // namespace easeio::chk

#endif  // EASEIO_CHK_EXPLORER_H_
