// Trace recording and failure-candidate extraction.
//
// A reference run with the device probe installed yields the stream of "interesting"
// on-time instants: task boundaries, I/O executions and skips, DMA transfers, NV
// stores, commit points. The explorer turns each of these — plus the microsecond just
// before, which lands *inside* the preceding operation — into a candidate failure
// placement. This is what bounds the schedule space: failures between two consecutive
// events are equivalent to a failure right after the first one, because no durable
// state changes in between.

#ifndef EASEIO_CHK_TRACE_H_
#define EASEIO_CHK_TRACE_H_

#include <cstdint>
#include <vector>

#include "sim/device.h"
#include "sim/probe.h"

namespace easeio::chk {

// Accumulates the probe events of one run. Install() wires the recorder into the
// device; the recorder must outlive the run.
class TraceRecorder {
 public:
  void Install(sim::Device& dev) {
    // AddProbe, not set_probe: the obs tracer/profiler may watch the same run.
    dev.AddProbe([this](const sim::ProbeEvent& e) { events_.push_back(e); });
  }

  const std::vector<sim::ProbeEvent>& events() const { return events_; }
  std::vector<sim::ProbeEvent> TakeEvents() { return std::move(events_); }

  // Replaces the recorded stream — empty for a fresh trial on a reused stack, or a
  // captured prefix when a resumed suffix must append to the events recorded up to
  // the snapshot instant.
  void Reset(std::vector<sim::ProbeEvent> events = {}) { events_ = std::move(events); }

 private:
  std::vector<sim::ProbeEvent> events_;
};

// Number of uniform time-grid instants CandidateInstants adds on top of the
// event-derived ones (before dedup against them).
inline constexpr uint64_t kTimeGridSamples = 256;

// Extracts the candidate failure instants of a trace: every recorded event instant
// ("just after the operation") plus its predecessor microsecond ("mid-operation"),
// merged with a uniform grid of kTimeGridSamples instants over (0, end_on_us),
// deduplicated, sorted, and restricted to [0, end_on_us) — an instant at or past the
// end of the run would never fire. Event bracketing bounds the durable-state space
// (no FRAM change happens between two events); the grid samples the timing space the
// brackets collapse — Timely freshness and timekeeper arithmetic depend on *when*
// the failure struck, not just on the durable state it interrupted. Reboot events
// are excluded: their instant is the already-explored failure itself. Pure
// observability kinds (block/region/privatization markers, capacitor samples) are
// excluded too — they annotate operations that already contribute their own
// brackets, so admitting them would only re-derive the same instants and bloat the
// schedule space the budget divides.
std::vector<uint64_t> CandidateInstants(const std::vector<sim::ProbeEvent>& events,
                                        uint64_t end_on_us);

}  // namespace easeio::chk

#endif  // EASEIO_CHK_TRACE_H_
