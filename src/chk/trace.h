// Trace recording and failure-candidate extraction.
//
// A reference run with the device probe installed yields the stream of "interesting"
// on-time instants: task boundaries, I/O executions and skips, DMA transfers, NV
// stores, commit points. The explorer turns each of these — plus the microsecond just
// before, which lands *inside* the preceding operation — into a candidate failure
// placement. This is what bounds the schedule space: failures between two consecutive
// events are equivalent to a failure right after the first one, because no durable
// state changes in between.

#ifndef EASEIO_CHK_TRACE_H_
#define EASEIO_CHK_TRACE_H_

#include <cstdint>
#include <vector>

#include "sim/device.h"
#include "sim/probe.h"

namespace easeio::chk {

// Accumulates the probe events of one run, subscribing to the device's batched sink
// API (no per-event std::function dispatch). Install() wires the recorder into the
// device; the recorder must outlive the run and its registration (Device::Reset
// unregisters). events()/TakeEvents() flush the device's emission ring first, so the
// recorder is always read-consistent with the run so far.
class TraceRecorder final : public sim::ProbeSink {
 public:
  void Install(sim::Device& dev) {
    // AddSink, not set_probe: the obs tracer/profiler may watch the same run.
    dev.AddSink(this);
    dev_ = &dev;
  }

  void OnProbeBatch(const sim::ProbeBatch& batch) override {
    const size_t base = events_.size();
    events_.resize(base + batch.count);
    for (size_t i = 0; i < batch.count; ++i) {
      events_[base + i] = batch.Event(i);
    }
  }

  const std::vector<sim::ProbeEvent>& events() {
    Sync();
    return events_;
  }
  std::vector<sim::ProbeEvent> TakeEvents() {
    Sync();
    return std::move(events_);
  }

  // Starts a fresh stream for the next trial on a reused stack. If a consumed trial's
  // buffer was handed back via Recycle, its capacity is reused — per-trial traces run
  // to thousands of events, and regrowing the vector from zero every trial was a
  // measurable share of the exploration loop.
  void Reset() {
    events_ = std::move(spare_);
    spare_ = std::vector<sim::ProbeEvent>{};
    events_.clear();
  }

  // Returns a finished trial's event buffer for capacity reuse by the next Reset.
  void Recycle(std::vector<sim::ProbeEvent> buf) {
    buf.clear();
    if (buf.capacity() > spare_.capacity()) {
      spare_ = std::move(buf);
    }
  }

 private:
  void Sync() {
    if (dev_ != nullptr) {
      dev_->FlushProbes();
    }
  }

  sim::Device* dev_ = nullptr;
  std::vector<sim::ProbeEvent> events_;
  std::vector<sim::ProbeEvent> spare_;  // recycled capacity for the next Reset
};

// Number of uniform time-grid instants CandidateInstants adds on top of the
// event-derived ones (before dedup against them).
inline constexpr uint64_t kTimeGridSamples = 256;

// Extracts the candidate failure instants of a trace: every recorded event instant
// ("just after the operation") plus its predecessor microsecond ("mid-operation"),
// merged with a uniform grid of kTimeGridSamples instants over (0, end_on_us),
// deduplicated, sorted, and restricted to [0, end_on_us) — an instant at or past the
// end of the run would never fire. Event bracketing bounds the durable-state space
// (no FRAM change happens between two events); the grid samples the timing space the
// brackets collapse — Timely freshness and timekeeper arithmetic depend on *when*
// the failure struck, not just on the durable state it interrupted. Reboot events
// are excluded: their instant is the already-explored failure itself. Pure
// observability kinds (block/region/privatization markers, capacitor samples) are
// excluded too — they annotate operations that already contribute their own
// brackets, so admitting them would only re-derive the same instants and bloat the
// schedule space the budget divides. `min_on_us` restricts the result to instants at
// or past it — callers seeding second failures only want instants past the first
// one, and skipping the (shared, often dominant) trace prefix up front is much
// cheaper than sorting it in and filtering it back out.
std::vector<uint64_t> CandidateInstants(const std::vector<sim::ProbeEvent>& events,
                                        uint64_t end_on_us, uint64_t min_on_us = 0);

}  // namespace easeio::chk

#endif  // EASEIO_CHK_TRACE_H_
