// Trace recording and failure-candidate extraction.
//
// A reference run with the device probe installed yields the stream of "interesting"
// on-time instants: task boundaries, I/O executions and skips, DMA transfers, NV
// stores, commit points. The explorer turns each of these — plus the microsecond just
// before, which lands *inside* the preceding operation — into a candidate failure
// placement. This is what bounds the schedule space: failures between two consecutive
// events are equivalent to a failure right after the first one, because no durable
// state changes in between.

#ifndef EASEIO_CHK_TRACE_H_
#define EASEIO_CHK_TRACE_H_

#include <cstdint>
#include <vector>

#include "sim/device.h"
#include "sim/probe.h"

namespace easeio::chk {

// Accumulates the probe events of one run. Install() wires the recorder into the
// device; the recorder must outlive the run.
class TraceRecorder {
 public:
  void Install(sim::Device& dev) {
    dev.set_probe([this](const sim::ProbeEvent& e) { events_.push_back(e); });
  }

  const std::vector<sim::ProbeEvent>& events() const { return events_; }
  std::vector<sim::ProbeEvent> TakeEvents() { return std::move(events_); }

 private:
  std::vector<sim::ProbeEvent> events_;
};

// Extracts the candidate failure instants of a trace: every recorded event instant
// ("just after the operation") plus its predecessor microsecond ("mid-operation"),
// deduplicated, sorted, and restricted to [0, end_on_us) — an instant at or past the
// end of the run would never fire. Reboot events are excluded: their instant is the
// already-explored failure itself.
std::vector<uint64_t> CandidateInstants(const std::vector<sim::ProbeEvent>& events,
                                        uint64_t end_on_us);

}  // namespace easeio::chk

#endif  // EASEIO_CHK_TRACE_H_
