// The invariant engine: what must hold for every failure schedule.
//
// Each trial run is judged against the continuous-power golden run and against the
// event stream its probe recorded. The invariants encode the paper's safety claims:
//   * the run terminates (a failure schedule cannot wedge the kernel);
//   * the application's own consistency predicate holds;
//   * deterministic workloads reproduce the golden output bit-for-bit;
//   * a Single operation whose completion flag became durable never runs again before
//     its task commits (at-most-once, Section 3.2);
//   * a skipped Timely reading is never consumed past its freshness window (3.3);
//   * a completed Single NV->NV DMA leaves the destination mirroring its source — no
//     torn region (4.4);
//   * WAR-declared variables end with the golden bytes (Alpaca/InK commit semantics).

#ifndef EASEIO_CHK_INVARIANTS_H_
#define EASEIO_CHK_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "kernel/nv.h"
#include "kernel/runtime.h"
#include "sim/device.h"
#include "sim/probe.h"

namespace easeio::chk {

enum class Invariant {
  kCompletion,         // the run finished before the non-termination guard
  kAppConsistency,     // the application's own consistency predicate
  kOutputEquivalence,  // deterministic workloads bit-match the golden output
  kSingleReexec,       // a locked Single operation ran again before commit
  kStaleTimely,        // a Timely reading was consumed past its window
  kTornDma,            // a Single NV->NV DMA destination does not mirror its source
  kWarCommit,          // WAR-declared variables differ from the golden end state
};

const char* ToString(Invariant inv);

struct Violation {
  Invariant invariant{};
  std::string subject;             // the site / slot / facet the violation is about
  std::string detail;              // human-readable specifics
  std::vector<uint64_t> schedule;  // the failure schedule that exposed it
};

// Golden-run facts trials are compared against.
struct GoldenFacts {
  std::vector<uint8_t> output;
  // Final bytes of every WAR-declared NV slot, keyed by slot name.
  std::map<std::string, std::vector<uint8_t>> war_state;
};

// Per-trial facts the explorer hands to the checker.
struct TrialFacts {
  bool completed = false;
  bool consistent = false;
  bool deterministic = false;     // golden-output equivalence applies
  bool dma_mirror = false;        // Single NV->NV mirror check applies
  bool semantic_runtime = false;  // EaseIO-style runtime: event invariants apply
  std::vector<uint8_t> output;
  std::vector<uint64_t> schedule;
};

// Streaming state of the event-scan invariants (Single re-execution, stale Timely,
// torn-DMA candidates). The scan folds events one at a time, so a shared event prefix
// can be folded once and reused: CheckInvariants(facts, golden, events, ...) equals
// FinalizeInvariants over a state that folded the same events in the same order, for
// any split into prefix + suffix. The snapshot engine scans each first-instant
// group's prefix once and then folds only the per-pair suffix events.
struct EventScanState {
  // Flat lock tables, resized on demand. These were ordered maps; the state is copied
  // once per trunk capture and consulted on every scanned event, which made rb-tree
  // node traffic a measurable share of exploration cost. Flat vectors copy as a
  // memcpy and index in O(1); site ids are small and dense by construction.
  std::vector<uint8_t> io_locked;   // [site * io_lane_stride + lane] -> locked
  uint32_t io_lane_stride = 0;      // max lane count over io sites; set on first scan
  std::vector<uint8_t> dma_locked;  // [site] -> locked
  std::vector<sim::ProbeEvent> last_nv_dma;  // [site] last NV->NV exec
  std::vector<uint8_t> last_nv_dma_set;      // [site] 1 when the entry above is live
  // Event-scan violations in fold order. Their schedule field is left empty — the
  // schedule is a per-trial fact a shared prefix doesn't know; FinalizeInvariants
  // fills it in.
  std::vector<Violation> violations;
};

// Folds `events` into `state`. `semantic_runtime` and `dma_mirror` gate the
// respective scans and must match the TrialFacts later passed to finalize; `dev` is
// only consulted for address classification.
void ScanEvents(EventScanState& state, const std::vector<sim::ProbeEvent>& events,
                const kernel::Runtime& rt, const sim::Device& dev, bool semantic_runtime,
                bool dma_mirror);

// Range form: folds [begin, end). Lets a trunk run fold only the delta recorded since
// its previous capture instant instead of re-scanning the whole stream every time.
void ScanEvents(EventScanState& state, const sim::ProbeEvent* begin,
                const sim::ProbeEvent* end, const kernel::Runtime& rt, const sim::Device& dev,
                bool semantic_runtime, bool dma_mirror);

// Judges one trial given its fully folded scan state: facts-level checks first, then
// the scanned event violations (schedule filled in), then the final-memory checks
// (torn DMA, WAR commit state).
std::vector<Violation> FinalizeInvariants(const TrialFacts& facts, const GoldenFacts& golden,
                                          const EventScanState& state,
                                          const kernel::Runtime& rt,
                                          const kernel::NvManager& nv, const sim::Device& dev);

// Judges one completed (or aborted) trial. `dev` provides post-run NVM state, `rt`
// the site/slot tables and WAR declarations, `events` the trial's probe stream.
// Equivalent to ScanEvents over the whole stream followed by FinalizeInvariants.
std::vector<Violation> CheckInvariants(const TrialFacts& facts, const GoldenFacts& golden,
                                       const std::vector<sim::ProbeEvent>& events,
                                       const kernel::Runtime& rt, const kernel::NvManager& nv,
                                       const sim::Device& dev);

// Reads the final bytes of every WAR-declared slot (golden-run capture).
std::map<std::string, std::vector<uint8_t>> CollectWarState(const kernel::Runtime& rt,
                                                            const kernel::NvManager& nv,
                                                            const sim::Device& dev);

}  // namespace easeio::chk

#endif  // EASEIO_CHK_INVARIANTS_H_
