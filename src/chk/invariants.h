// The invariant engine: what must hold for every failure schedule.
//
// Each trial run is judged against the continuous-power golden run and against the
// event stream its probe recorded. The invariants encode the paper's safety claims:
//   * the run terminates (a failure schedule cannot wedge the kernel);
//   * the application's own consistency predicate holds;
//   * deterministic workloads reproduce the golden output bit-for-bit;
//   * a Single operation whose completion flag became durable never runs again before
//     its task commits (at-most-once, Section 3.2);
//   * a skipped Timely reading is never consumed past its freshness window (3.3);
//   * a completed Single NV->NV DMA leaves the destination mirroring its source — no
//     torn region (4.4);
//   * WAR-declared variables end with the golden bytes (Alpaca/InK commit semantics).

#ifndef EASEIO_CHK_INVARIANTS_H_
#define EASEIO_CHK_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kernel/nv.h"
#include "kernel/runtime.h"
#include "sim/device.h"
#include "sim/probe.h"

namespace easeio::chk {

enum class Invariant {
  kCompletion,         // the run finished before the non-termination guard
  kAppConsistency,     // the application's own consistency predicate
  kOutputEquivalence,  // deterministic workloads bit-match the golden output
  kSingleReexec,       // a locked Single operation ran again before commit
  kStaleTimely,        // a Timely reading was consumed past its window
  kTornDma,            // a Single NV->NV DMA destination does not mirror its source
  kWarCommit,          // WAR-declared variables differ from the golden end state
};

const char* ToString(Invariant inv);

struct Violation {
  Invariant invariant{};
  std::string subject;             // the site / slot / facet the violation is about
  std::string detail;              // human-readable specifics
  std::vector<uint64_t> schedule;  // the failure schedule that exposed it
};

// Golden-run facts trials are compared against.
struct GoldenFacts {
  std::vector<uint8_t> output;
  // Final bytes of every WAR-declared NV slot, keyed by slot name.
  std::map<std::string, std::vector<uint8_t>> war_state;
};

// Per-trial facts the explorer hands to the checker.
struct TrialFacts {
  bool completed = false;
  bool consistent = false;
  bool deterministic = false;     // golden-output equivalence applies
  bool dma_mirror = false;        // Single NV->NV mirror check applies
  bool semantic_runtime = false;  // EaseIO-style runtime: event invariants apply
  std::vector<uint8_t> output;
  std::vector<uint64_t> schedule;
};

// Judges one completed (or aborted) trial. `dev` provides post-run NVM state, `rt`
// the site/slot tables and WAR declarations, `events` the trial's probe stream.
std::vector<Violation> CheckInvariants(const TrialFacts& facts, const GoldenFacts& golden,
                                       const std::vector<sim::ProbeEvent>& events,
                                       const kernel::Runtime& rt, const kernel::NvManager& nv,
                                       const sim::Device& dev);

// Reads the final bytes of every WAR-declared slot (golden-run capture).
std::map<std::string, std::vector<uint8_t>> CollectWarState(const kernel::Runtime& rt,
                                                            const kernel::NvManager& nv,
                                                            const sim::Device& dev);

}  // namespace easeio::chk

#endif  // EASEIO_CHK_INVARIANTS_H_
