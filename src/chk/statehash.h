// Canonical state fingerprinting for the explorer's dedup layer.
//
// Two trials whose post-reboot worlds agree on everything the invariant engine can
// observe must produce the same verdicts, so the second one need not run. The
// observable world is: the durable memory image (modulo runtime metadata that is
// *recorded* but never *read* — see Runtime::AppendStateMask), the runtime's host-side
// state (Runtime::AppendStateDigest), the identity of the task that was interrupted,
// and the event-scan fold state carried across the failure (locks, last NV->NV DMA,
// prefix violations). StateHasher encodes exactly that set into a canonical byte
// string; everything deliberately excluded — diagnostics counters, SRAM, clocks,
// reboot ordinals, peripheral RNG state — is listed in DESIGN.md §14.
//
// The hot path rides the simulator's dirty-page stamps (sim::Memory::page_stamps):
// per-page 64-bit hashes are cached per device and recomputed only for pages written
// since the last scan, so steady-state fingerprinting touches the few pages a trial
// actually dirtied, not the whole FRAM image.
//
// The dedup table resolves membership in three stages, cheapest first: a 64-bit probe
// (platform::HashBytes64 over the canonical bytes) selects a bucket; on a bucket
// collision a SHA-256 of the canonical bytes is compared; on a digest match the full
// canonical byte strings are memcmp'd — that comparison, not any hash, is what
// declares two states equal, so a forged 64-bit probe can never forge a verdict.

#ifndef EASEIO_CHK_STATEHASH_H_
#define EASEIO_CHK_STATEHASH_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chk/invariants.h"
#include "kernel/runtime.h"
#include "sim/memory.h"

namespace easeio::chk {

// One fingerprinted state: the authoritative canonical encoding plus its fast probe.
struct StateKey {
  bool valid = false;      // false: this state opted out of dedup (see Fingerprint)
  uint64_t probe = 0;      // HashBytes64(canonical) — the hot-path discriminator
  std::string canonical;   // full canonical encoding — the ground truth
};

// Per-worker fingerprint builder with a dirty-page hash cache.
class StateHasher {
 public:
  // Rebinds to a (re)built runtime: collects its static mask ranges (dead metadata
  // the canonical form zeroes). Call once per trial-stack Prepare. The page-hash
  // cache is NOT reset here — it keys on sim::Memory::mem_uid and the page stamps,
  // so it stays valid across Prepare/Reset cycles of the same device.
  void BeginTrial(const kernel::Runtime& rt);

  // Encodes the post-reboot state into *out. Returns false (out->valid == false)
  // when the runtime cannot canonicalize its host state (AppendStateDigest returned
  // false) — such states never participate in dedup.
  bool Fingerprint(const sim::Memory& mem, const kernel::Runtime& rt,
                   kernel::TaskId paused_task, const EventScanState& scan,
                   StateKey* out);

 private:
  uint64_t HashPage(const sim::Memory& mem, uint32_t page) const;

  // Mask spans as [begin, end) FRAM offsets, sorted; rebuilt each BeginTrial.
  std::vector<std::pair<uint32_t, uint32_t>> mask_spans_;
  uint64_t mem_uid_ = 0;             // device identity the cache below belongs to
  std::vector<uint64_t> page_hash_;  // cached masked hash per page
  std::vector<uint64_t> page_synced_;  // epoch the cache entry was computed at; 0 = never
};

// The dedup table: probe-bucketed canonical states with verified membership.
// Not thread-safe; callers that share one table across workers wrap it in a mutex.
class DedupTable {
 public:
  // probe_bits < 64 truncates the probe used for bucketing — a test hook that forces
  // bucket collisions (probe_bits = 0 puts every state in one bucket) so the
  // SHA-256 + full-bytes verification path is exercised deterministically.
  explicit DedupTable(uint32_t probe_bits = 64);

  // True iff an entry with byte-identical canonical encoding exists (counted as a
  // hit). Invalid keys never match. Bucket collisions that fail verification are
  // counted in probe_collisions().
  bool Lookup(const StateKey& key);

  // Inserts the key unless an identical entry already exists. Invalid keys are
  // ignored.
  void Insert(const StateKey& key);

  uint64_t hits() const { return hits_; }
  uint64_t probe_collisions() const { return probe_collisions_; }
  size_t size() const { return entries_; }

 private:
  struct Entry {
    std::string canonical;
    std::array<uint8_t, 32> sha;  // SHA-256(canonical), computed at insert
  };

  uint64_t BucketOf(uint64_t probe) const { return probe & probe_mask_; }
  // Returns the matching entry in `bucket` or nullptr, updating the collision
  // counter. `sha` is the candidate's digest, computed lazily by the caller.
  const Entry* FindIn(const std::vector<Entry>& bucket, const StateKey& key,
                      const std::array<uint8_t, 32>& sha);

  uint64_t probe_mask_;
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
  uint64_t hits_ = 0;
  uint64_t probe_collisions_ = 0;
  size_t entries_ = 0;
};

}  // namespace easeio::chk

#endif  // EASEIO_CHK_STATEHASH_H_
