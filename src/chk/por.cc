#include "chk/por.h"

#include <algorithm>

#include "kernel/io.h"
#include "kernel/runtime.h"

namespace easeio::chk {

PrunePolicy MakePrunePolicy(const apps::AppTraits& traits, bool semantic_runtime,
                            const kernel::Runtime& rt) {
  RegionConditions c;
  c.value_steered = !traits.prune_safe;
  // Timely semantics only exist on the semantic runtimes; the baselines re-execute
  // everything and never consult reading ages, so their registrations are inert.
  if (semantic_runtime) {
    for (const kernel::IoSiteDesc& d : rt.io_sites()) {
      c.timely_window |= d.sem == kernel::IoSemantic::kTimely;
    }
    for (const kernel::IoBlockDesc& d : rt.io_blocks()) {
      c.timely_window |= d.sem == kernel::IoSemantic::kTimely;
    }
  }
  // war_hazard / io_taint_crossing are per-window conditions; at policy scope the
  // probe-event barriers handle them (every def/use emits an event, so a window with
  // no barrier inside has neither).
  return {CollapsibleRegion(c)};
}

void GapClasses::Build(const std::vector<sim::ProbeEvent>& events, uint64_t floor) {
  barriers_.clear();
  barriers_.reserve(events.size());
  for (const sim::ProbeEvent& ev : events) {
    if (ev.on_us >= floor && (barriers_.empty() || barriers_.back() != ev.on_us)) {
      barriers_.push_back(ev.on_us);
    }
  }
}

uint64_t GapClasses::TokenFor(uint64_t instant) const {
  const auto it = std::upper_bound(barriers_.begin(), barriers_.end(), instant);
  const bool at_event = it != barriers_.begin() && *(it - 1) == instant;
  const bool pre_event = it != barriers_.end() && *it == instant + 1;
  if (at_event || pre_event) {
    // Event-adjacent: unique token, never collapsed (low bit set).
    return (instant << 1) | 1;
  }
  // Gap-interior: token is the gap index — equal for every instant between the same
  // pair of consecutive barriers (low bit clear).
  return static_cast<uint64_t>(it - barriers_.begin()) << 1;
}

}  // namespace easeio::chk
