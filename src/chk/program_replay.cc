#include "chk/program_replay.h"

#include "chk/trace.h"
#include "platform/check.h"
#include "sim/failure.h"

namespace easeio::chk {

ProgramReplayOutput ReplaySchedule(const easec::CompileResult& compiled,
                                   const ProgramReplayConfig& config,
                                   const std::vector<uint64_t>& schedule) {
  EASEIO_CHECK(compiled.ok, "cannot replay a program that failed to compile");

  sim::ScriptedScheduler sched(schedule, config.off_us);
  sim::DeviceConfig dev_config;
  dev_config.seed = config.seed;
  dev_config.timekeeper_tick_us = config.timekeeper_tick_us;
  sim::Device dev(dev_config, sched);
  TraceRecorder trace;
  trace.Install(dev);

  kernel::NvManager nv(dev.mem());
  rt::EaseioConfig easeio_config;
  easeio_config.dma_priv_buffer_bytes = config.easeio_priv_buffer_bytes;
  easeio_config.enable_regional_privatization = config.easeio_regional_privatization;
  auto runtime = apps::MakeRuntime(config.runtime, easeio_config);
  runtime->Bind(dev, nv);
  easec::InstantiatedProgram prog = easec::Instantiate(compiled, dev, *runtime, nv);

  kernel::Engine engine(kernel::RunConfig{config.max_on_us});
  ProgramReplayOutput out;
  out.run = engine.Run(dev, *runtime, nv, prog.graph, prog.entry);
  out.schedule = schedule;
  out.events = trace.TakeEvents();
  out.site_ids = prog.site_ids;
  out.dma_ids = prog.dma_ids;
  out.nv_ids = prog.nv_slots;

  out.nv_final.resize(compiled.ast.nv_decls.size());
  for (uint32_t i = 0; i < compiled.ast.nv_decls.size(); ++i) {
    const easec::NvDecl& decl = compiled.ast.nv_decls[i];
    if (decl.sram || prog.nv_slots[i] == kernel::kNoSlot) {
      continue;
    }
    const uint32_t addr = nv.slot(prog.nv_slots[i]).addr;
    out.nv_final[i].reserve(decl.elements);
    for (uint32_t e = 0; e < decl.elements; ++e) {
      out.nv_final[i].push_back(dev.mem().ReadI16(addr + 2 * e));
    }
  }
  return out;
}

}  // namespace easeio::chk
