// Partial-order reduction over failure instants (the idempotent-region rule).
//
// The trace contract (trace.h) is that a power failure anywhere strictly between two
// consecutive probe events is equivalent to a failure right after the earlier one: no
// durable state changes in between, so the post-reboot world — and therefore every
// invariant verdict — is identical. This header makes that equivalence a first-class,
// shared invariant instead of a comment:
//
//   * chk (explorer.cc) uses GapClasses to collapse enumerated candidate instants to
//     one representative per equivalence class before spending trials on them.
//   * lint (easec/lint/witness.cc) uses RepresentativeAfter to place its replay
//     witnesses at the canonical representative of the window it reasons about — the
//     same instant chk would keep.
//
// The probe-event barriers are the dynamic image of the def/use and region tables the
// easec linter consumes statically: kNvWrite events are exactly the durable defs,
// kIoExec / kDmaExec / commit events are the uses and taint sources, and a window with
// no event between its endpoints is an idempotent region in the linter's sense — no
// WAR hazard can complete inside it and no I/O result crosses it. Treating *every*
// probe event as a barrier is deliberately conservative (some events, e.g. kCapSample,
// mutate nothing durable); conservatism only costs trials, never soundness.

#ifndef EASEIO_CHK_POR_H_
#define EASEIO_CHK_POR_H_

#include <cstdint>
#include <vector>

#include "apps/registry.h"
#include "sim/probe.h"

// por.h stays light on purpose: lint includes it for the shared predicate vocabulary
// (RegionConditions / RepresentativeAfter are header-only), so the kernel types only
// appear as forward declarations and only MakePrunePolicy's definition touches them.
namespace easeio::kernel {
class Runtime;
}  // namespace easeio::kernel

namespace easeio::chk {

// The conditions under which two failure instants in the same event-free window are
// NOT interchangeable. chk fills this from workload traits and runtime registration;
// lint derives the per-window fields from its def/use tables. A window collapses only
// when all four are absent.
struct RegionConditions {
  // A durable write (NV store, I/O completion commit) lands inside the window — the
  // static analogue is a def in the region's def table (WAR hazard).
  bool war_hazard = false;
  // An I/O result produced before the window is consumed after it (or vice versa) —
  // the static analogue is taint crossing the region boundary.
  bool io_taint_crossing = false;
  // The workload branches on non-durable inputs (sensed values steer control flow),
  // so byte-equal durable states can still diverge. AppTraits::prune_safe is false.
  bool value_steered = false;
  // A Timely freshness window is registered: verdicts depend on the wall-clock age of
  // a reading, so instants inside one gap are distinguishable by the clock alone.
  bool timely_window = false;
};

// The shared invariant: instants in an event-free window are interchangeable iff none
// of the disqualifying conditions hold.
constexpr bool CollapsibleRegion(const RegionConditions& c) {
  return !c.war_hazard && !c.io_taint_crossing && !c.value_steered && !c.timely_window;
}

// Canonical representative of the equivalence class spanning (event_on_us, next
// event): the first instant after the event. Both chk's class collapse and lint's
// witness placement pick this one.
constexpr uint64_t RepresentativeAfter(uint64_t event_on_us) { return event_on_us + 1; }

// Whether schedule pruning (POR + state dedup) applies to an (app, runtime) cell at
// all. Both reductions assume verdicts are a function of durable state alone; that
// fails when the workload is value-steered (traits.prune_safe == false) or when a
// semantic runtime has a live Timely site/block (freshness verdicts read the clock).
struct PrunePolicy {
  bool enabled = false;
};
PrunePolicy MakePrunePolicy(const apps::AppTraits& traits, bool semantic_runtime,
                            const kernel::Runtime& rt);

// Partitions candidate failure instants against one trial's probe stream. Two
// instants share a class iff they fall strictly inside the same event-free gap and
// neither sits *at* an event or one tick before one: candidates the trace generator
// derived from an event (ev and ev-1) probe post-op and mid-op states — mid-DMA
// bytes, pre/post peripheral effects — that can differ from the gap interior, so
// they stay singletons. Only grid-derived gap-interior instants collapse.
class GapClasses {
 public:
  GapClasses() = default;

  // Builds the barrier set from a probe stream (on_us nondecreasing). Barriers below
  // `floor` are dropped: when every queried instant is >= floor, they can affect
  // neither gap membership nor adjacency, and trimming keeps the per-trial footprint
  // proportional to the suffix actually enumerated.
  void Build(const std::vector<sim::ProbeEvent>& events, uint64_t floor);

  // Class token for an instant >= the Build floor. Equal *collapsible* tokens mean
  // interchangeable failure instants; non-collapsible tokens are unique per instant.
  uint64_t TokenFor(uint64_t instant) const;

  static constexpr bool Collapsible(uint64_t token) { return (token & 1) == 0; }

  size_t barrier_count() const { return barriers_.size(); }

 private:
  std::vector<uint64_t> barriers_;  // sorted, unique event instants
};

}  // namespace easeio::chk

#endif  // EASEIO_CHK_POR_H_
