// Observed runs: one experiment executed with the probe subscribed, packaged with
// the name tables that turn numeric event ids back into task/site/slot names.
//
// This is the common currency of the obs layer: the timeline writer (timeline.h) and
// the per-site profiler (profile.h) both consume a CapturedRun, whether it came from
// a live experiment (CaptureRun) or from a chk schedule replay (FromReplay — how
// `easechk --trace-failures` turns a violating schedule into an inspectable trace).
// Capture is pure host-side observation: the run's RunStats, output, and final NV
// memory are bit-identical to an uninstrumented run of the same config
// (test-enforced in tests/obs_test.cc).

#ifndef EASEIO_OBS_CAPTURE_H_
#define EASEIO_OBS_CAPTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chk/explorer.h"
#include "kernel/io.h"
#include "report/experiment.h"
#include "sim/probe.h"

namespace easeio::obs {

struct CapturedRun {
  std::string app;
  std::string runtime;
  uint64_t seed = 1;
  report::ExperimentResult result;
  std::vector<sim::ProbeEvent> events;
  std::vector<std::string> task_names;          // indexed by TaskId
  std::vector<kernel::IoSiteDesc> io_sites;     // indexed by IoSiteId
  std::vector<kernel::IoBlockDesc> io_blocks;   // indexed by IoBlockId
  std::vector<kernel::DmaSiteDesc> dma_sites;   // indexed by DmaSiteId
  std::vector<std::string> nv_slot_names;       // indexed by NvSlotId
};

// Runs `config` through report::RunExperiment with an event-recording probe and a
// post-run inspection hook that harvests the name tables before teardown.
CapturedRun CaptureRun(const report::ExperimentConfig& config);

// Repackages a chk full replay of one failure schedule (chk::ReplaySchedule) as a
// CapturedRun so the same timeline/profile writers apply to counterexample traces.
CapturedRun FromReplay(const chk::ExploreConfig& config, chk::ReplayOutput replay);

}  // namespace easeio::obs

#endif  // EASEIO_OBS_CAPTURE_H_
