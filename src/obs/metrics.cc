#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace easeio::obs {

namespace {

[[noreturn]] void Die(const char* what, const std::string& name) {
  std::fprintf(stderr, "easeio metrics: %s (metric '%s')\n", what, name.c_str());
  std::abort();
}

}  // namespace

MetricId Registry::RegisterLocked(const std::string& name, MetricType type,
                                  std::vector<uint64_t> bounds, Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name && defs_[i].labels == labels) {
      if (defs_[i].type != type || defs_[i].bounds != bounds) {
        Die("re-registered with a different type or buckets", name);
      }
      return static_cast<MetricId>(i);
    }
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      Die("histogram bounds must be strictly increasing", name);
    }
  }
  MetricDef def;
  def.name = name;
  def.type = type;
  def.labels = std::move(labels);
  def.bounds = std::move(bounds);
  def.first_slot = static_cast<uint32_t>(cells_.size());
  def.num_slots = type == MetricType::kHistogram
                      ? static_cast<uint32_t>(def.bounds.size() + 3)
                      : 1u;
  for (uint32_t i = 0; i < def.num_slots; ++i) {
    cells_.emplace_back(0);
  }
  defs_.push_back(std::move(def));
  return static_cast<MetricId>(defs_.size() - 1);
}

MetricId Registry::Counter(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, MetricType::kCounter, {}, std::move(labels));
}

MetricId Registry::Gauge(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, MetricType::kGauge, {}, std::move(labels));
}

MetricId Registry::Histogram(const std::string& name, std::vector<uint64_t> bounds,
                             Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, MetricType::kHistogram, std::move(bounds),
                        std::move(labels));
}

uint32_t Registry::BucketSlot(const MetricDef& def, uint64_t value) const {
  // First finite bucket whose inclusive upper bound admits the value; the +Inf
  // bucket (index bounds.size()) otherwise. Bounds counts are small (<=32), so a
  // linear scan beats binary search in practice and is branch-predictable.
  uint32_t i = 0;
  while (i < def.bounds.size() && value > def.bounds[i]) {
    ++i;
  }
  return def.first_slot + i;
}

void Registry::Add(MetricId id, uint64_t delta) {
  const MetricDef& def = defs_[id];
  cells_[def.first_slot].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::Set(MetricId id, int64_t value) {
  const MetricDef& def = defs_[id];
  cells_[def.first_slot].store(static_cast<uint64_t>(value),
                               std::memory_order_relaxed);
}

void Registry::Observe(MetricId id, uint64_t value) {
  const MetricDef& def = defs_[id];
  const uint32_t n = static_cast<uint32_t>(def.bounds.size());
  cells_[BucketSlot(def, value)].fetch_add(1, std::memory_order_relaxed);
  cells_[def.first_slot + n + 1].fetch_add(value, std::memory_order_relaxed);  // sum
  cells_[def.first_slot + n + 2].fetch_add(1, std::memory_order_relaxed);      // count
}

uint64_t Registry::Value(MetricId id) const {
  const MetricDef& def = defs_[id];
  if (def.type == MetricType::kHistogram) {
    const uint32_t n = static_cast<uint32_t>(def.bounds.size());
    return cells_[def.first_slot + n + 2].load(std::memory_order_relaxed);
  }
  return cells_[def.first_slot].load(std::memory_order_relaxed);
}

int64_t Registry::GaugeValue(MetricId id) const {
  return static_cast<int64_t>(Value(id));
}

std::vector<Sample> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(defs_.size());
  for (const MetricDef& def : defs_) {
    Sample s;
    s.name = def.name;
    s.type = def.type;
    s.labels = def.labels;
    if (def.type == MetricType::kHistogram) {
      const uint32_t n = static_cast<uint32_t>(def.bounds.size());
      s.bounds = def.bounds;
      s.cumulative.resize(n + 1);
      uint64_t running = 0;
      for (uint32_t i = 0; i <= n; ++i) {
        running += cells_[def.first_slot + i].load(std::memory_order_relaxed);
        s.cumulative[i] = running;
      }
      s.sum = cells_[def.first_slot + n + 1].load(std::memory_order_relaxed);
      s.count = cells_[def.first_slot + n + 2].load(std::memory_order_relaxed);
    } else {
      s.value = cells_[def.first_slot].load(std::memory_order_relaxed);
      s.gauge_value = static_cast<int64_t>(s.value);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const Sample& a, const Sample& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels < b.labels;
  });
  return out;
}

Registry::Shard::Shard(Registry* registry) : registry_(registry) {
  std::lock_guard<std::mutex> lock(registry_->mu_);
  local_.assign(registry_->cells_.size(), 0);
}

void Registry::Shard::Add(MetricId id, uint64_t delta) {
  local_[registry_->defs_[id].first_slot] += delta;
}

void Registry::Shard::Observe(MetricId id, uint64_t value) {
  const MetricDef& def = registry_->defs_[id];
  const uint32_t n = static_cast<uint32_t>(def.bounds.size());
  local_[registry_->BucketSlot(def, value)] += 1;
  local_[def.first_slot + n + 1] += value;
  local_[def.first_slot + n + 2] += 1;
}

void Registry::Shard::Fold() {
  for (size_t i = 0; i < local_.size(); ++i) {
    if (local_[i] != 0) {
      registry_->cells_[i].fetch_add(local_[i], std::memory_order_relaxed);
      local_[i] = 0;
    }
  }
}

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace easeio::obs
