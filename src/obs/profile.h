// Per-site metrics profiler: aggregates a CapturedRun's probe-event stream into
// deterministic per-task and per-I/O-site profiles, emitted as an `easeio-profile/1`
// JSON document.
//
// Two kinds of numbers coexist and are kept apart:
//   * *exact* counters and attempt timings derived from event brackets — attempt
//     durations come from kTaskBegin..kTaskCommit/kReboot pairs on the on-clock, and
//     every event counter must reconcile exactly with the run's RunStats (the drift
//     detector in tests/obs_test.cc enforces this);
//   * *bracketed* per-site waste attribution — the duration of a redundant I/O or DMA
//     execution is approximated by the on-time elapsed since the immediately
//     preceding probe event (the exec event fires right after the operation
//     completes, so the bracket is the operation plus whatever unprobed compute led
//     into it). Useful for ranking sites by waste, not for exact accounting.
//
// BuildProfile is a pure function of the CapturedRun: byte-identical JSON for
// identical runs (CI-enforced).

#ifndef EASEIO_OBS_PROFILE_H_
#define EASEIO_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/capture.h"

namespace easeio::obs {

// Attempts-per-commit histogram size: buckets 1..8 attempts, last bucket = more.
inline constexpr size_t kAttemptHistBuckets = 9;
// Time-between-failures histogram: bucket i counts on-time gaps in [2^i, 2^(i+1)) us.
inline constexpr size_t kTbfHistBuckets = 21;

struct TaskProfile {
  uint32_t task = 0;
  std::string name;
  uint64_t attempts = 0;  // kTaskBegin count
  uint64_t commits = 0;   // kTaskCommit count
  uint64_t aborted = 0;   // attempts cut short by a power failure
  uint64_t committed_us = 0;    // on-time inside attempts that committed
  uint64_t wasted_us = 0;       // on-time inside attempts that died
  uint64_t max_attempt_us = 0;  // longest single attempt
  uint64_t attempts_per_commit_hist[kAttemptHistBuckets] = {};
};

struct IoSiteProfile {
  uint32_t site = 0;
  std::string name;
  uint32_t task = 0;
  std::string sem;
  uint64_t executions = 0;
  uint64_t redundant = 0;
  uint64_t skipped = 0;
  uint64_t locked = 0;
  uint64_t redundant_us = 0;  // bracketed (see header comment)
};

struct DmaSiteProfile {
  uint32_t site = 0;
  std::string name;
  uint32_t task = 0;
  uint64_t executions = 0;
  uint64_t redundant = 0;
  uint64_t skipped = 0;
  uint64_t locked = 0;
  uint64_t resolved = 0;
  uint64_t bytes = 0;         // total bytes actually transferred
  uint64_t redundant_us = 0;  // bracketed
};

struct BlockProfile {
  uint32_t block = 0;
  std::string name;
  uint64_t begins = 0;
  uint64_t skip_begins = 0;   // entered in kSkip mode
  uint64_t force_begins = 0;  // entered in kForce mode
  uint64_t committed_ends = 0;  // ends that made the block flag durable
};

struct RegionProfile {
  uint32_t task = 0;
  uint32_t region = 0;
  uint64_t enters = 0;
  uint64_t re_arrivals = 0;   // arrival kind 1 (post-failure recovery)
  uint64_t dma_reenters = 0;  // arrival kind 2 (post-DMA partial restore)
  uint64_t snapshots = 0;
  uint64_t restores = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t restore_bytes = 0;
};

struct RunProfile {
  std::string app;
  std::string runtime;
  uint64_t seed = 1;

  // Run aggregates copied from the experiment result (RunStats et al.).
  bool completed = false;
  uint64_t on_us = 0;
  uint64_t off_us = 0;
  uint64_t wall_us = 0;
  double energy_j = 0;
  uint64_t power_failures = 0;
  uint64_t tasks_committed = 0;
  uint64_t io_executions = 0;
  uint64_t io_redundant = 0;
  uint64_t io_skipped = 0;
  uint64_t dma_executions = 0;
  uint64_t dma_redundant = 0;
  uint64_t dma_skipped = 0;
  double app_us = 0;
  double overhead_us = 0;
  double wasted_us = 0;
  double app_j = 0;
  double overhead_j = 0;
  double wasted_j = 0;

  // The same counters re-derived from the event stream alone. Must equal the block
  // above field-for-field; serialized so a consumer can see the reconciliation too.
  uint64_t ev_reboots = 0;
  uint64_t ev_commits = 0;
  uint64_t ev_io_exec = 0;
  uint64_t ev_io_redundant = 0;
  uint64_t ev_io_skip = 0;
  uint64_t ev_dma_exec = 0;
  uint64_t ev_dma_redundant = 0;
  uint64_t ev_dma_skip = 0;

  std::vector<TaskProfile> tasks;
  std::vector<IoSiteProfile> io_sites;
  std::vector<DmaSiteProfile> dma_sites;
  std::vector<BlockProfile> blocks;
  std::vector<RegionProfile> regions;  // sorted by (task, region)

  uint64_t off_us_total = 0;  // sum of per-reboot dark intervals
  uint64_t tbf_log2_hist[kTbfHistBuckets] = {};

  uint64_t cap_samples = 0;
  uint64_t cap_min_uv = 0;
  uint64_t cap_max_uv = 0;
};

RunProfile BuildProfile(const CapturedRun& run);

// Serializes as an `easeio-profile/1` document (fixed field order, JsonWriter).
std::string ProfileJson(const RunProfile& profile);
std::string ProfileJson(const CapturedRun& run);

}  // namespace easeio::obs

#endif  // EASEIO_OBS_PROFILE_H_
