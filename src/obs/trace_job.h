// The easetrace run-a-job body as a library function, shared by the easetrace CLI
// and the easeiod daemon: run one instrumented experiment and render the requested
// documents. Observation is free (the run is bit-identical to an uninstrumented one)
// and both documents are deterministic for a fixed config — identical specs yield
// byte-identical artifacts, which is what lets the daemon cache them by content hash.

#ifndef EASEIO_OBS_TRACE_JOB_H_
#define EASEIO_OBS_TRACE_JOB_H_

#include <string>

#include "obs/capture.h"
#include "report/experiment.h"

namespace easeio::obs {

struct TraceJob {
  report::ExperimentConfig config;
  bool want_trace = false;    // render the Chrome trace-event timeline
  bool want_profile = false;  // render the easeio-profile/1 document
};

struct TraceJobResult {
  CapturedRun run;
  std::string trace_json;    // empty unless want_trace
  std::string profile_json;  // empty unless want_profile
};

TraceJobResult ExecuteTraceJob(const TraceJob& job);

}  // namespace easeio::obs

#endif  // EASEIO_OBS_TRACE_JOB_H_
