// Low-overhead metrics registry: monotonic counters, gauges, and fixed-bucket
// histograms, exposed deterministically.
//
// Design constraints, in order:
//   1. Hot paths (the chk explorer's trial loop, the daemon's job runner) must pay
//      at most one uncontended atomic add per event — and for the explorer's
//      per-worker loops, not even that: workers accumulate into a plain-uint64
//      `Registry::Shard` and fold into the shared atomics once per chunk, the same
//      per-worker-state idiom as platform/parallel's ParallelForWithState.
//   2. Read-side output must be deterministic. All values are integers (durations
//      are accumulated in nanoseconds or observed in microseconds, never floats),
//      integer addition commutes so shard fold order cannot change totals, and
//      Snapshot() orders samples by (name, labels). The same work always produces
//      the same exposition bytes regardless of jobs count or scheduling.
//   3. Metrics are timing-class data: they are excluded from every byte-identity
//      check in CI, exactly like the explorer's legacy "timing" JSON block. Nothing
//      in a non-timing artifact may depend on registry contents.
//
// Concurrency contract: all registration (Counter/Gauge/Histogram) happens before
// any concurrent use of the returned ids. Registration takes a mutex and is
// idempotent on (name, labels) — re-registering returns the existing id, so the
// explorer can re-run against a long-lived daemon registry. After registration,
// Add/Set/Observe/Value are lock-free atomics on stable cells (std::deque storage
// never relocates), and Shards may be created and folded freely from any thread.

#ifndef EASEIO_OBS_METRICS_H_
#define EASEIO_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace easeio::obs {

// Stable handle for a registered metric. Valid for the registry's lifetime.
using MetricId = uint32_t;

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

// Sorted-by-key label set; the registry sorts on registration so callers may pass
// labels in any order.
using Labels = std::vector<std::pair<std::string, std::string>>;

// One metric's read-time view, produced by Registry::Snapshot().
struct Sample {
  std::string name;
  MetricType type = MetricType::kCounter;
  Labels labels;
  // kCounter: the count. kGauge: bit pattern of the int64 (use gauge_value).
  uint64_t value = 0;
  int64_t gauge_value = 0;
  // kHistogram only. `bounds` are the inclusive upper bounds of the finite
  // buckets; `cumulative` has bounds.size()+1 entries (the last is the +Inf
  // bucket, equal to `count`). Buckets are cumulative, Prometheus-style.
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> cumulative;
  uint64_t sum = 0;
  uint64_t count = 0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- Registration (mutex-protected, idempotent on name+labels). ---
  MetricId Counter(const std::string& name, Labels labels = {});
  MetricId Gauge(const std::string& name, Labels labels = {});
  // `bounds` are strictly increasing inclusive upper bounds for the finite
  // buckets; an implicit +Inf bucket is appended.
  MetricId Histogram(const std::string& name, std::vector<uint64_t> bounds,
                     Labels labels = {});

  // --- Hot-path updates (lock-free after registration). ---
  void Add(MetricId id, uint64_t delta);    // counters
  void Set(MetricId id, int64_t value);     // gauges
  void Observe(MetricId id, uint64_t value);  // histograms

  // --- Reads. ---
  uint64_t Value(MetricId id) const;       // counter total / histogram count
  int64_t GaugeValue(MetricId id) const;
  // Deterministic read-time merge: samples sorted by (name, labels).
  std::vector<Sample> Snapshot() const;

  // Per-worker mirror of the registry's counters and histograms. Adds/Observes
  // go to plain (non-atomic) local slots; Fold() — also run by the destructor —
  // drains them into the shared atomics. Because everything is an integer sum,
  // totals are independent of fold order and worker count. Create after all
  // registration is done (a shard sizes itself to the registry at construction).
  class Shard {
   public:
    explicit Shard(Registry* registry);
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;
    ~Shard() { Fold(); }

    void Add(MetricId id, uint64_t delta);
    void Observe(MetricId id, uint64_t value);
    void Fold();

   private:
    Registry* registry_;
    std::vector<uint64_t> local_;  // one slot per registry cell, mostly zero
  };

 private:
  struct MetricDef {
    std::string name;
    MetricType type;
    Labels labels;
    std::vector<uint64_t> bounds;  // histograms only
    uint32_t first_slot = 0;
    uint32_t num_slots = 0;
  };

  // Histogram slot layout: bounds.size()+1 per-bucket (NON-cumulative) counts
  // with the +Inf bucket last, then sum, then count.
  uint32_t BucketSlot(const MetricDef& def, uint64_t value) const;
  MetricId RegisterLocked(const std::string& name, MetricType type,
                          std::vector<uint64_t> bounds, Labels labels);

  mutable std::mutex mu_;                       // registration + snapshot only
  std::vector<MetricDef> defs_;                 // grow-only, indexed by MetricId
  std::deque<std::atomic<uint64_t>> cells_;     // grow-only, stable addresses
  friend class Shard;
};

// Monotonic wall/thread-independent clock for phase timers, kept here so callers
// don't each reinvent the steady_clock boilerplate. Returns nanoseconds.
uint64_t MonotonicNanos();

}  // namespace easeio::obs

#endif  // EASEIO_OBS_METRICS_H_
