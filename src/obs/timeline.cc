#include "obs/timeline.h"

#include <string>
#include <string_view>
#include <vector>

#include "report/json.h"

namespace easeio::obs {
namespace {

// Fixed track ids (see timeline.h for the layout).
constexpr uint64_t kPid = 1;
constexpr uint64_t kTidTasks = 1;
constexpr uint64_t kTidPower = 2;
constexpr uint64_t kTidIo = 3;
constexpr uint64_t kTidDma = 4;
constexpr uint64_t kTidNv = 5;
constexpr uint64_t kTidRuntime = 6;

std::string NameOf(const std::vector<std::string>& names, uint32_t id, const char* prefix) {
  if (id < names.size()) {
    return names[id];
  }
  return std::string(prefix) + std::to_string(id);
}

}  // namespace

std::string ChromeTraceJson(const CapturedRun& run) {
  report::JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();

  // Shared prefix of every trace event.
  auto header = [&w](std::string_view name, std::string_view ph, uint64_t ts, uint64_t tid) {
    w.BeginObject()
        .Key("name")
        .String(name)
        .Key("ph")
        .String(ph)
        .Key("ts")
        .UInt(ts)
        .Key("pid")
        .UInt(kPid)
        .Key("tid")
        .UInt(tid);
  };

  // Metadata: process and track names.
  const std::string process =
      "easeio " + run.app + "/" + run.runtime + " seed=" + std::to_string(run.seed);
  w.BeginObject()
      .Key("name")
      .String("process_name")
      .Key("ph")
      .String("M")
      .Key("pid")
      .UInt(kPid)
      .Key("args")
      .BeginObject()
      .Key("name")
      .String(process)
      .EndObject()
      .EndObject();
  const struct {
    uint64_t tid;
    const char* name;
  } tracks[] = {{kTidTasks, "tasks"}, {kTidPower, "power"}, {kTidIo, "io"},
                {kTidDma, "dma"},     {kTidNv, "nv"},       {kTidRuntime, "runtime"}};
  for (const auto& t : tracks) {
    w.BeginObject()
        .Key("name")
        .String("thread_name")
        .Key("ph")
        .String("M")
        .Key("pid")
        .UInt(kPid)
        .Key("tid")
        .UInt(t.tid)
        .Key("args")
        .BeginObject()
        .Key("name")
        .String(t.name)
        .EndObject()
        .EndObject();
  }

  auto powered_counter = [&](uint64_t ts, uint64_t on) {
    header("powered", "C", ts, kTidPower);
    w.Key("args").BeginObject().Key("on").UInt(on).EndObject().EndObject();
  };
  powered_counter(0, 1);

  // Wall-time reconstruction: events carry the on-clock; each kReboot carries the
  // dark interval that followed it, accumulated into every later event's timestamp.
  uint64_t off_acc = 0;

  struct OpenAttempt {
    bool open = false;
    uint32_t task = 0;
    uint64_t begin_wall = 0;
    uint64_t attempt = 0;  // 1-based ordinal of this attempt of this task
  } attempt;
  std::vector<uint64_t> attempts_of_task(run.task_names.size(), 0);

  struct OpenBlock {
    uint32_t block = 0;
    uint64_t mode = 0;
    uint64_t begin_wall = 0;
  };
  std::vector<OpenBlock> block_stack;

  auto close_attempt = [&](uint64_t end_wall, bool committed) {
    const std::string base = NameOf(run.task_names, attempt.task, "task");
    header(committed ? base : base + " (failed)", "X", attempt.begin_wall, kTidTasks);
    w.Key("dur")
        .UInt(end_wall - attempt.begin_wall)
        .Key("cat")
        .String(committed ? "task" : "failed")
        .Key("args")
        .BeginObject()
        .Key("task")
        .UInt(attempt.task)
        .Key("attempt")
        .UInt(attempt.attempt)
        .EndObject()
        .EndObject();
    attempt.open = false;
  };
  auto block_name = [&](uint32_t id) {
    if (id < run.io_blocks.size()) {
      return run.io_blocks[id].name;
    }
    return "block" + std::to_string(id);
  };
  auto emit_block_slice = [&](const OpenBlock& b, uint64_t end_wall, bool committed,
                              bool aborted) {
    header(block_name(b.block), "X", b.begin_wall, kTidRuntime);
    w.Key("dur")
        .UInt(end_wall - b.begin_wall)
        .Key("cat")
        .String(aborted ? "block-aborted" : "block")
        .Key("args")
        .BeginObject()
        .Key("block")
        .UInt(b.block)
        .Key("mode")
        .UInt(b.mode)
        .Key("committed")
        .UInt(committed ? 1 : 0)
        .EndObject()
        .EndObject();
  };

  auto instant = [&](std::string_view name, uint64_t ts, uint64_t tid, std::string_view cat) {
    header(name, "i", ts, tid);
    w.Key("cat").String(cat).Key("s").String("t");
  };

  auto io_name = [&](uint32_t id) {
    if (id < run.io_sites.size()) {
      return run.io_sites[id].name;
    }
    return "io" + std::to_string(id);
  };
  auto dma_name = [&](uint32_t id) {
    if (id < run.dma_sites.size()) {
      return run.dma_sites[id].name;
    }
    return "dma" + std::to_string(id);
  };

  uint64_t last_wall = 0;
  for (const sim::ProbeEvent& e : run.events) {
    const uint64_t wall = e.on_us + off_acc;
    last_wall = wall;
    switch (e.kind) {
      case sim::ProbeKind::kTaskBegin:
        if (e.id < attempts_of_task.size()) {
          ++attempts_of_task[e.id];
        }
        attempt = {true, e.id, wall,
                   e.id < attempts_of_task.size() ? attempts_of_task[e.id] : 0};
        break;
      case sim::ProbeKind::kTaskCommit:
        if (attempt.open) {
          close_attempt(wall, /*committed=*/true);
        }
        break;
      case sim::ProbeKind::kReboot: {
        if (attempt.open) {
          close_attempt(wall, /*committed=*/false);
        }
        while (!block_stack.empty()) {
          emit_block_slice(block_stack.back(), wall, /*committed=*/false, /*aborted=*/true);
          block_stack.pop_back();
        }
        instant("reboot #" + std::to_string(e.id), wall, kTidPower, "power");
        w.Key("args")
            .BeginObject()
            .Key("off_us")
            .UInt(e.a)
            .Key("cap_uv")
            .UInt(e.b)
            .EndObject()
            .EndObject();
        powered_counter(wall, 0);
        powered_counter(wall + e.a, 1);
        off_acc += e.a;
        break;
      }
      case sim::ProbeKind::kIoExec:
        instant(io_name(e.id), wall, kTidIo, e.a != 0 ? "io-redundant" : "io");
        w.Key("args")
            .BeginObject()
            .Key("lane")
            .UInt(e.lane)
            .Key("redundant")
            .UInt(e.a)
            .EndObject()
            .EndObject();
        break;
      case sim::ProbeKind::kIoSkip:
        instant(io_name(e.id) + " skip", wall, kTidIo, "io-skip");
        w.Key("args")
            .BeginObject()
            .Key("lane")
            .UInt(e.lane)
            .Key("age_us")
            .UInt(e.a)
            .Key("age_checked")
            .UInt(e.b)
            .EndObject()
            .EndObject();
        break;
      case sim::ProbeKind::kIoLocked:
        instant(io_name(e.id) + " locked", wall, kTidIo, "io-locked");
        w.EndObject();
        break;
      case sim::ProbeKind::kDmaExec:
        instant(dma_name(e.id), wall, kTidDma, e.lane != 0 ? "dma-redundant" : "dma");
        w.Key("args")
            .BeginObject()
            .Key("dst")
            .UInt(e.a >> 32)
            .Key("src")
            .UInt(e.a & 0xFFFFFFFFu)
            .Key("bytes")
            .UInt(e.b)
            .Key("redundant")
            .UInt(e.lane)
            .EndObject()
            .EndObject();
        break;
      case sim::ProbeKind::kDmaSkip:
        instant(dma_name(e.id) + " skip", wall, kTidDma, "dma-skip");
        w.EndObject();
        break;
      case sim::ProbeKind::kDmaLocked:
        instant(dma_name(e.id) + " locked", wall, kTidDma, "dma-locked");
        w.EndObject();
        break;
      case sim::ProbeKind::kDmaResolved:
        instant(dma_name(e.id) + " resolved", wall, kTidDma, "dma-resolved");
        w.Key("args")
            .BeginObject()
            .Key("class")
            .UInt(e.lane)
            .Key("skip")
            .UInt(e.a)
            .Key("dep_forced")
            .UInt(e.b)
            .EndObject()
            .EndObject();
        break;
      case sim::ProbeKind::kNvWrite:
        instant(NameOf(run.nv_slot_names, e.id, "slot"), wall, kTidNv, "nv");
        w.Key("args")
            .BeginObject()
            .Key("offset")
            .UInt(e.a)
            .Key("bytes")
            .UInt(e.b)
            .EndObject()
            .EndObject();
        break;
      case sim::ProbeKind::kBlockBegin:
        block_stack.push_back({e.id, e.a, wall});
        break;
      case sim::ProbeKind::kBlockEnd:
        if (!block_stack.empty() && block_stack.back().block == e.id) {
          emit_block_slice(block_stack.back(), wall, e.a != 0, /*aborted=*/false);
          block_stack.pop_back();
        }
        break;
      case sim::ProbeKind::kRegionEnter:
        instant("region " + std::to_string(e.id) + "." + std::to_string(e.lane), wall,
                kTidRuntime, "region");
        w.Key("args")
            .BeginObject()
            .Key("task")
            .UInt(e.id)
            .Key("region")
            .UInt(e.lane)
            .Key("arrival")
            .UInt(e.a)
            .EndObject()
            .EndObject();
        break;
      case sim::ProbeKind::kPrivCopy:
        instant(e.a == 0 ? "priv snapshot" : "priv restore", wall, kTidRuntime, "priv");
        w.Key("args")
            .BeginObject()
            .Key("task")
            .UInt(e.id)
            .Key("region")
            .UInt(e.lane)
            .Key("bytes")
            .UInt(e.b)
            .EndObject()
            .EndObject();
        break;
      case sim::ProbeKind::kCapSample:
        header("capacitor_v", "C", wall, kTidPower);
        w.Key("args")
            .BeginObject()
            .Key("v")
            .Double(static_cast<double>(e.a) * 1e-6)
            .EndObject()
            .EndObject();
        break;
    }
  }
  // A run stopped by the non-termination guard can leave an attempt (and blocks) open.
  if (attempt.open) {
    close_attempt(last_wall, /*committed=*/false);
  }
  while (!block_stack.empty()) {
    emit_block_slice(block_stack.back(), last_wall, /*committed=*/false, /*aborted=*/true);
    block_stack.pop_back();
  }

  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.Key("otherData")
      .BeginObject()
      .Key("schema")
      .String("easeio-trace/1")
      .Key("app")
      .String(run.app)
      .Key("runtime")
      .String(run.runtime)
      .Key("seed")
      .UInt(run.seed)
      .Key("on_us")
      .UInt(run.result.run.on_us)
      .Key("off_us")
      .UInt(run.result.run.off_us)
      .Key("power_failures")
      .UInt(run.result.run.stats.power_failures)
      .Key("events")
      .UInt(run.events.size())
      .EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace easeio::obs
