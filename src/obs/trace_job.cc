#include "obs/trace_job.h"

#include "obs/profile.h"
#include "obs/timeline.h"

namespace easeio::obs {

TraceJobResult ExecuteTraceJob(const TraceJob& job) {
  TraceJobResult out;
  out.run = CaptureRun(job.config);
  if (job.want_trace) {
    out.trace_json = ChromeTraceJson(out.run);
  }
  if (job.want_profile) {
    out.profile_json = ProfileJson(out.run);
  }
  return out;
}

}  // namespace easeio::obs
