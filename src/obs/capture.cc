#include "obs/capture.h"

#include <utility>

namespace easeio::obs {

namespace {

// Batched capture sink: appends each delivered batch straight into the output event
// vector, no per-event std::function hop.
class VectorSink final : public sim::ProbeSink {
 public:
  explicit VectorSink(std::vector<sim::ProbeEvent>& out) : out_(out) {}
  void OnProbeBatch(const sim::ProbeBatch& batch) override {
    const size_t base = out_.size();
    out_.resize(base + batch.count);
    for (size_t i = 0; i < batch.count; ++i) {
      out_[base + i] = batch.Event(i);
    }
  }

 private:
  std::vector<sim::ProbeEvent>& out_;
};

}  // namespace

CapturedRun CaptureRun(const report::ExperimentConfig& config) {
  CapturedRun out;
  out.app = apps::ToString(config.app);
  out.runtime = apps::ToString(config.runtime);
  out.seed = config.seed;

  VectorSink sink(out.events);
  report::RunHooks hooks;
  hooks.sink = &sink;
  hooks.inspect = [&out](const report::RunStackView& stack) {
    out.task_names.reserve(stack.app.graph.size());
    for (size_t t = 0; t < stack.app.graph.size(); ++t) {
      out.task_names.push_back(stack.app.graph.task(static_cast<kernel::TaskId>(t)).name);
    }
    out.io_sites = stack.runtime.io_sites();
    out.io_blocks = stack.runtime.io_blocks();
    out.dma_sites = stack.runtime.dma_sites();
    out.nv_slot_names.reserve(stack.nv.slots().size());
    for (const kernel::NvSlot& s : stack.nv.slots()) {
      out.nv_slot_names.push_back(s.name);
    }
  };

  std::unique_ptr<sim::Device> device;
  out.result = report::RunExperiment(config, device, hooks);
  return out;
}

CapturedRun FromReplay(const chk::ExploreConfig& config, chk::ReplayOutput replay) {
  CapturedRun out;
  out.app = apps::ToString(config.app);
  out.runtime = apps::ToString(config.runtime);
  out.seed = config.seed;
  out.result.run = replay.run;
  out.events = std::move(replay.events);
  out.task_names = std::move(replay.task_names);
  out.io_sites = std::move(replay.io_sites);
  out.io_blocks = std::move(replay.io_blocks);
  out.dma_sites = std::move(replay.dma_sites);
  out.nv_slot_names = std::move(replay.nv_slot_names);
  return out;
}

}  // namespace easeio::obs
