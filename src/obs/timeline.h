// Timeline tracer: converts a CapturedRun's probe-event stream into Chrome
// trace-event JSON (the format chrome://tracing and Perfetto load directly).
//
// Track layout (one process per run, fixed thread ids):
//   tid 1 "tasks"    — every task attempt as a duration slice; committed attempts
//                      carry the task name, attempts cut short by a power failure
//                      are suffixed "(failed)" and categorised "failed"
//   tid 2 "power"    — reboot instants plus the "powered" 1/0 counter whose dips
//                      render the dark (recharge) gaps
//   tid 3 "io"       — I/O exec/skip/lock instants per site
//   tid 4 "dma"      — DMA exec/skip/resolve/lock instants per site
//   tid 5 "nv"       — NV slot stores
//   tid 6 "runtime"  — EaseIO I/O blocks as duration slices, region entries and
//                      privatization copies as instants
//   counter "capacitor_v" — voltage samples (present when the run was captured with
//                      cap_sample_period_us > 0)
//
// Timestamps are *wall* microseconds: events are stamped with the on-clock, and the
// kReboot events carry the dark interval that followed each failure, so the writer
// reconstructs wall time by accumulating those gaps. Deterministic: pure function of
// the event stream, built on report::JsonWriter.

#ifndef EASEIO_OBS_TIMELINE_H_
#define EASEIO_OBS_TIMELINE_H_

#include <string>

#include "obs/capture.h"

namespace easeio::obs {

std::string ChromeTraceJson(const CapturedRun& run);

}  // namespace easeio::obs

#endif  // EASEIO_OBS_TIMELINE_H_
