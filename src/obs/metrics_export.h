// Exposition formats for the metrics registry (obs/metrics.h).
//
// Two formats, both rendered from the same deterministic Snapshot():
//   * `easeio-metrics/1` — a canonical JSON document in the house schema style
//     (like easeio-lint/1 and easeio-profile/1): integers only, keys in fixed
//     order, samples sorted by (name, labels). Identical registry state always
//     yields identical bytes.
//   * Prometheus text exposition (version 0.0.4) — `# TYPE` comments, cumulative
//     `_bucket{le=...}` histogram series with a `+Inf` bucket, `_sum`/`_count`.
//
// This module is deliberately self-contained (no report/ JsonWriter): the metrics
// target sits below chk in the link order, and report links chk.

#ifndef EASEIO_OBS_METRICS_EXPORT_H_
#define EASEIO_OBS_METRICS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace easeio::obs {

// Renders the registry as the canonical `easeio-metrics/1` JSON document.
std::string MetricsToJson(const Registry& registry);

// Renders the registry in Prometheus text exposition format.
std::string MetricsToPrometheus(const Registry& registry);

// Dumps the registry to `path` for the CLIs' `--metrics=PATH` flag: Prometheus
// text when the path ends in ".prom", the easeio-metrics/1 JSON document
// otherwise. Returns false (and fills *error if non-null) on I/O failure.
bool WriteMetricsFile(const Registry& registry, const std::string& path,
                      std::string* error = nullptr);

}  // namespace easeio::obs

#endif  // EASEIO_OBS_METRICS_EXPORT_H_
