#include "obs/profile.h"

#include <algorithm>
#include <map>
#include <utility>

#include "report/json.h"

namespace easeio::obs {
namespace {

size_t TbfBucket(uint64_t gap_us) {
  size_t b = 0;
  while (gap_us > 1 && b + 1 < kTbfHistBuckets) {
    gap_us >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

RunProfile BuildProfile(const CapturedRun& run) {
  RunProfile p;
  p.app = run.app;
  p.runtime = run.runtime;
  p.seed = run.seed;

  const kernel::RunResult& r = run.result.run;
  p.completed = r.completed;
  p.on_us = r.on_us;
  p.off_us = r.off_us;
  p.wall_us = r.wall_us;
  p.energy_j = r.energy_j;
  p.power_failures = r.stats.power_failures;
  p.tasks_committed = r.stats.tasks_committed;
  p.io_executions = r.stats.io_executions;
  p.io_redundant = r.stats.io_redundant;
  p.io_skipped = r.stats.io_skipped;
  p.dma_executions = r.stats.dma_executions;
  p.dma_redundant = r.stats.dma_redundant;
  p.dma_skipped = r.stats.dma_skipped;
  p.app_us = r.stats.app_us;
  p.overhead_us = r.stats.overhead_us;
  p.wasted_us = r.stats.wasted_us;
  p.app_j = r.stats.app_j;
  p.overhead_j = r.stats.overhead_j;
  p.wasted_j = r.stats.wasted_j;

  p.tasks.resize(run.task_names.size());
  for (size_t t = 0; t < run.task_names.size(); ++t) {
    p.tasks[t].task = static_cast<uint32_t>(t);
    p.tasks[t].name = run.task_names[t];
  }
  p.io_sites.resize(run.io_sites.size());
  for (size_t s = 0; s < run.io_sites.size(); ++s) {
    p.io_sites[s].site = static_cast<uint32_t>(s);
    p.io_sites[s].name = run.io_sites[s].name;
    p.io_sites[s].task = run.io_sites[s].task;
    p.io_sites[s].sem = kernel::ToString(run.io_sites[s].sem);
  }
  p.dma_sites.resize(run.dma_sites.size());
  for (size_t s = 0; s < run.dma_sites.size(); ++s) {
    p.dma_sites[s].site = static_cast<uint32_t>(s);
    p.dma_sites[s].name = run.dma_sites[s].name;
    p.dma_sites[s].task = run.dma_sites[s].task;
  }
  p.blocks.resize(run.io_blocks.size());
  for (size_t b = 0; b < run.io_blocks.size(); ++b) {
    p.blocks[b].block = static_cast<uint32_t>(b);
    p.blocks[b].name = run.io_blocks[b].name;
  }
  std::map<std::pair<uint32_t, uint32_t>, RegionProfile> regions;

  // Attempt bracketing state.
  bool attempt_open = false;
  uint32_t attempt_task = 0;
  uint64_t attempt_begin_us = 0;
  std::vector<uint64_t> pending_attempts(run.task_names.size(), 0);

  uint64_t prev_on_us = 0;       // previous event instant (bracketed waste attribution)
  uint64_t last_reboot_on = 0;   // previous failure instant (TBF histogram)
  bool have_cap_min = false;

  auto task_slot = [&p](uint32_t id) -> TaskProfile* {
    return id < p.tasks.size() ? &p.tasks[id] : nullptr;
  };

  for (const sim::ProbeEvent& e : run.events) {
    const uint64_t bracket_us = e.on_us - prev_on_us;
    switch (e.kind) {
      case sim::ProbeKind::kTaskBegin:
        attempt_open = true;
        attempt_task = e.id;
        attempt_begin_us = e.on_us;
        if (TaskProfile* t = task_slot(e.id)) {
          ++t->attempts;
        }
        if (e.id < pending_attempts.size()) {
          ++pending_attempts[e.id];
        }
        break;
      case sim::ProbeKind::kTaskCommit: {
        ++p.ev_commits;
        if (TaskProfile* t = task_slot(e.id)) {
          ++t->commits;
          if (attempt_open && attempt_task == e.id) {
            const uint64_t dur = e.on_us - attempt_begin_us;
            t->committed_us += dur;
            t->max_attempt_us = std::max(t->max_attempt_us, dur);
          }
          if (e.id < pending_attempts.size() && pending_attempts[e.id] > 0) {
            const size_t bucket =
                std::min<uint64_t>(pending_attempts[e.id], kAttemptHistBuckets) - 1;
            ++t->attempts_per_commit_hist[bucket];
            pending_attempts[e.id] = 0;
          }
        }
        attempt_open = false;
        break;
      }
      case sim::ProbeKind::kReboot: {
        ++p.ev_reboots;
        if (attempt_open) {
          if (TaskProfile* t = task_slot(attempt_task)) {
            ++t->aborted;
            const uint64_t dur = e.on_us - attempt_begin_us;
            t->wasted_us += dur;
            t->max_attempt_us = std::max(t->max_attempt_us, dur);
          }
          attempt_open = false;
        }
        p.off_us_total += e.a;
        ++p.tbf_log2_hist[TbfBucket(e.on_us - last_reboot_on)];
        last_reboot_on = e.on_us;
        break;
      }
      case sim::ProbeKind::kIoExec:
        ++p.ev_io_exec;
        if (e.id < p.io_sites.size()) {
          ++p.io_sites[e.id].executions;
          if (e.a != 0) {
            ++p.io_sites[e.id].redundant;
            p.io_sites[e.id].redundant_us += bracket_us;
          }
        }
        if (e.a != 0) {
          ++p.ev_io_redundant;
        }
        break;
      case sim::ProbeKind::kIoSkip:
        ++p.ev_io_skip;
        if (e.id < p.io_sites.size()) {
          ++p.io_sites[e.id].skipped;
        }
        break;
      case sim::ProbeKind::kIoLocked:
        if (e.id < p.io_sites.size()) {
          ++p.io_sites[e.id].locked;
        }
        break;
      case sim::ProbeKind::kDmaExec:
        ++p.ev_dma_exec;
        if (e.id < p.dma_sites.size()) {
          ++p.dma_sites[e.id].executions;
          p.dma_sites[e.id].bytes += e.b;
          if (e.lane != 0) {
            ++p.dma_sites[e.id].redundant;
            p.dma_sites[e.id].redundant_us += bracket_us;
          }
        }
        if (e.lane != 0) {
          ++p.ev_dma_redundant;
        }
        break;
      case sim::ProbeKind::kDmaSkip:
        ++p.ev_dma_skip;
        if (e.id < p.dma_sites.size()) {
          ++p.dma_sites[e.id].skipped;
        }
        break;
      case sim::ProbeKind::kDmaLocked:
        if (e.id < p.dma_sites.size()) {
          ++p.dma_sites[e.id].locked;
        }
        break;
      case sim::ProbeKind::kDmaResolved:
        if (e.id < p.dma_sites.size()) {
          ++p.dma_sites[e.id].resolved;
        }
        break;
      case sim::ProbeKind::kNvWrite:
        break;
      case sim::ProbeKind::kBlockBegin:
        if (e.id < p.blocks.size()) {
          ++p.blocks[e.id].begins;
          if (e.a == 1) {
            ++p.blocks[e.id].skip_begins;
          } else if (e.a == 2) {
            ++p.blocks[e.id].force_begins;
          }
        }
        break;
      case sim::ProbeKind::kBlockEnd:
        if (e.id < p.blocks.size() && e.a != 0) {
          ++p.blocks[e.id].committed_ends;
        }
        break;
      case sim::ProbeKind::kRegionEnter: {
        RegionProfile& reg = regions[{e.id, e.lane}];
        reg.task = e.id;
        reg.region = e.lane;
        ++reg.enters;
        if (e.a == 1) {
          ++reg.re_arrivals;
        } else if (e.a == 2) {
          ++reg.dma_reenters;
        }
        break;
      }
      case sim::ProbeKind::kPrivCopy: {
        RegionProfile& reg = regions[{e.id, e.lane}];
        reg.task = e.id;
        reg.region = e.lane;
        if (e.a == 0) {
          ++reg.snapshots;
          reg.snapshot_bytes += e.b;
        } else {
          ++reg.restores;
          reg.restore_bytes += e.b;
        }
        break;
      }
      case sim::ProbeKind::kCapSample:
        ++p.cap_samples;
        if (!have_cap_min || e.a < p.cap_min_uv) {
          p.cap_min_uv = e.a;
          have_cap_min = true;
        }
        p.cap_max_uv = std::max(p.cap_max_uv, e.a);
        break;
    }
    prev_on_us = e.on_us;
  }

  p.regions.reserve(regions.size());
  for (auto& [key, reg] : regions) {
    p.regions.push_back(reg);
  }
  return p;
}

namespace {

void WriteHist(report::JsonWriter& w, const uint64_t* hist, size_t n) {
  w.BeginArray();
  for (size_t i = 0; i < n; ++i) {
    w.UInt(hist[i]);
  }
  w.EndArray();
}

}  // namespace

std::string ProfileJson(const RunProfile& p) {
  report::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("easeio-profile/1");
  w.Key("app").String(p.app);
  w.Key("runtime").String(p.runtime);
  w.Key("seed").UInt(p.seed);

  w.Key("run").BeginObject();
  w.Key("completed").Bool(p.completed);
  w.Key("on_us").UInt(p.on_us);
  w.Key("off_us").UInt(p.off_us);
  w.Key("wall_us").UInt(p.wall_us);
  w.Key("energy_j").Double(p.energy_j);
  w.Key("power_failures").UInt(p.power_failures);
  w.Key("tasks_committed").UInt(p.tasks_committed);
  w.Key("io_executions").UInt(p.io_executions);
  w.Key("io_redundant").UInt(p.io_redundant);
  w.Key("io_skipped").UInt(p.io_skipped);
  w.Key("dma_executions").UInt(p.dma_executions);
  w.Key("dma_redundant").UInt(p.dma_redundant);
  w.Key("dma_skipped").UInt(p.dma_skipped);
  w.Key("app_us").Double(p.app_us);
  w.Key("overhead_us").Double(p.overhead_us);
  w.Key("wasted_us").Double(p.wasted_us);
  w.Key("app_j").Double(p.app_j);
  w.Key("overhead_j").Double(p.overhead_j);
  w.Key("wasted_j").Double(p.wasted_j);
  w.EndObject();

  w.Key("event_counters").BeginObject();
  w.Key("reboots").UInt(p.ev_reboots);
  w.Key("commits").UInt(p.ev_commits);
  w.Key("io_exec").UInt(p.ev_io_exec);
  w.Key("io_redundant").UInt(p.ev_io_redundant);
  w.Key("io_skip").UInt(p.ev_io_skip);
  w.Key("dma_exec").UInt(p.ev_dma_exec);
  w.Key("dma_redundant").UInt(p.ev_dma_redundant);
  w.Key("dma_skip").UInt(p.ev_dma_skip);
  w.EndObject();

  w.Key("tasks").BeginArray();
  for (const TaskProfile& t : p.tasks) {
    w.BeginObject();
    w.Key("task").UInt(t.task);
    w.Key("name").String(t.name);
    w.Key("attempts").UInt(t.attempts);
    w.Key("commits").UInt(t.commits);
    w.Key("aborted").UInt(t.aborted);
    w.Key("committed_us").UInt(t.committed_us);
    w.Key("wasted_us").UInt(t.wasted_us);
    w.Key("max_attempt_us").UInt(t.max_attempt_us);
    w.Key("attempts_per_commit_hist");
    WriteHist(w, t.attempts_per_commit_hist, kAttemptHistBuckets);
    w.EndObject();
  }
  w.EndArray();

  w.Key("io_sites").BeginArray();
  for (const IoSiteProfile& s : p.io_sites) {
    w.BeginObject();
    w.Key("site").UInt(s.site);
    w.Key("name").String(s.name);
    w.Key("task").UInt(s.task);
    w.Key("sem").String(s.sem);
    w.Key("executions").UInt(s.executions);
    w.Key("redundant").UInt(s.redundant);
    w.Key("skipped").UInt(s.skipped);
    w.Key("locked").UInt(s.locked);
    w.Key("redundant_us").UInt(s.redundant_us);
    w.EndObject();
  }
  w.EndArray();

  w.Key("dma_sites").BeginArray();
  for (const DmaSiteProfile& s : p.dma_sites) {
    w.BeginObject();
    w.Key("site").UInt(s.site);
    w.Key("name").String(s.name);
    w.Key("task").UInt(s.task);
    w.Key("executions").UInt(s.executions);
    w.Key("redundant").UInt(s.redundant);
    w.Key("skipped").UInt(s.skipped);
    w.Key("locked").UInt(s.locked);
    w.Key("resolved").UInt(s.resolved);
    w.Key("bytes").UInt(s.bytes);
    w.Key("redundant_us").UInt(s.redundant_us);
    w.EndObject();
  }
  w.EndArray();

  w.Key("blocks").BeginArray();
  for (const BlockProfile& b : p.blocks) {
    w.BeginObject();
    w.Key("block").UInt(b.block);
    w.Key("name").String(b.name);
    w.Key("begins").UInt(b.begins);
    w.Key("skip_begins").UInt(b.skip_begins);
    w.Key("force_begins").UInt(b.force_begins);
    w.Key("committed_ends").UInt(b.committed_ends);
    w.EndObject();
  }
  w.EndArray();

  w.Key("regions").BeginArray();
  for (const RegionProfile& reg : p.regions) {
    w.BeginObject();
    w.Key("task").UInt(reg.task);
    w.Key("region").UInt(reg.region);
    w.Key("enters").UInt(reg.enters);
    w.Key("re_arrivals").UInt(reg.re_arrivals);
    w.Key("dma_reenters").UInt(reg.dma_reenters);
    w.Key("snapshots").UInt(reg.snapshots);
    w.Key("restores").UInt(reg.restores);
    w.Key("snapshot_bytes").UInt(reg.snapshot_bytes);
    w.Key("restore_bytes").UInt(reg.restore_bytes);
    w.EndObject();
  }
  w.EndArray();

  w.Key("failures").BeginObject();
  w.Key("count").UInt(p.ev_reboots);
  w.Key("off_us_total").UInt(p.off_us_total);
  w.Key("tbf_log2_hist");
  WriteHist(w, p.tbf_log2_hist, kTbfHistBuckets);
  w.EndObject();

  w.Key("capacitor").BeginObject();
  w.Key("samples").UInt(p.cap_samples);
  w.Key("min_uv").UInt(p.cap_min_uv);
  w.Key("max_uv").UInt(p.cap_max_uv);
  w.EndObject();

  w.EndObject();
  return w.TakeString();
}

std::string ProfileJson(const CapturedRun& run) { return ProfileJson(BuildProfile(run)); }

}  // namespace easeio::obs
