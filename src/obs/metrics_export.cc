#include "obs/metrics_export.h"

#include <cstdio>
#include <fstream>
#include <vector>

namespace easeio::obs {

namespace {

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(v));
  out->append(buf, static_cast<size_t>(n));
}

void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  const int n =
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf, static_cast<size_t>(n));
}

// JSON string escaping. Metric and label names are controlled identifiers, but
// label values may carry arbitrary job fields, so escape fully.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Prometheus label-value escaping: backslash, double-quote, newline.
void AppendPromLabelValue(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '\\': out->append("\\\\"); break;
      case '"': out->append("\\\""); break;
      case '\n': out->append("\\n"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "counter";
}

void AppendPromLabels(std::string* out, const Labels& labels,
                      const char* extra_key = nullptr,
                      const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) {
    return;
  }
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(k);
    out->push_back('=');
    AppendPromLabelValue(out, v);
  }
  if (extra_key != nullptr) {
    if (!first) out->push_back(',');
    out->append(extra_key);
    out->push_back('=');
    AppendPromLabelValue(out, extra_value);
  }
  out->push_back('}');
}

}  // namespace

std::string MetricsToJson(const Registry& registry) {
  const std::vector<Sample> samples = registry.Snapshot();
  std::string out;
  out.reserve(256 + samples.size() * 96);
  out.append("{\"schema\":\"easeio-metrics/1\",\"metrics\":[");
  bool first = true;
  for (const Sample& s : samples) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, s.name);
    out.append(",\"type\":\"");
    out.append(TypeName(s.type));
    out.append("\",\"labels\":{");
    bool first_label = true;
    for (const auto& [k, v] : s.labels) {
      if (!first_label) out.push_back(',');
      first_label = false;
      AppendJsonString(&out, k);
      out.push_back(':');
      AppendJsonString(&out, v);
    }
    out.push_back('}');
    switch (s.type) {
      case MetricType::kCounter:
        out.append(",\"value\":");
        AppendUint(&out, s.value);
        break;
      case MetricType::kGauge:
        out.append(",\"value\":");
        AppendInt(&out, s.gauge_value);
        break;
      case MetricType::kHistogram: {
        out.append(",\"buckets\":[");
        for (size_t i = 0; i < s.cumulative.size(); ++i) {
          if (i != 0) out.push_back(',');
          out.append("{\"le\":");
          if (i < s.bounds.size()) {
            AppendUint(&out, s.bounds[i]);
          } else {
            out.append("\"+Inf\"");
          }
          out.append(",\"count\":");
          AppendUint(&out, s.cumulative[i]);
          out.push_back('}');
        }
        out.append("],\"sum\":");
        AppendUint(&out, s.sum);
        out.append(",\"count\":");
        AppendUint(&out, s.count);
        break;
      }
    }
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string MetricsToPrometheus(const Registry& registry) {
  const std::vector<Sample> samples = registry.Snapshot();
  std::string out;
  out.reserve(256 + samples.size() * 128);
  std::string last_typed_name;
  for (const Sample& s : samples) {
    if (s.name != last_typed_name) {
      out.append("# TYPE ");
      out.append(s.name);
      out.push_back(' ');
      out.append(TypeName(s.type));
      out.push_back('\n');
      last_typed_name = s.name;
    }
    switch (s.type) {
      case MetricType::kCounter: {
        out.append(s.name);
        AppendPromLabels(&out, s.labels);
        out.push_back(' ');
        AppendUint(&out, s.value);
        out.push_back('\n');
        break;
      }
      case MetricType::kGauge: {
        out.append(s.name);
        AppendPromLabels(&out, s.labels);
        out.push_back(' ');
        AppendInt(&out, s.gauge_value);
        out.push_back('\n');
        break;
      }
      case MetricType::kHistogram: {
        for (size_t i = 0; i < s.cumulative.size(); ++i) {
          out.append(s.name);
          out.append("_bucket");
          std::string le;
          if (i < s.bounds.size()) {
            AppendUint(&le, s.bounds[i]);
          } else {
            le = "+Inf";
          }
          AppendPromLabels(&out, s.labels, "le", le);
          out.push_back(' ');
          AppendUint(&out, s.cumulative[i]);
          out.push_back('\n');
        }
        out.append(s.name);
        out.append("_sum");
        AppendPromLabels(&out, s.labels);
        out.push_back(' ');
        AppendUint(&out, s.sum);
        out.push_back('\n');
        out.append(s.name);
        out.append("_count");
        AppendPromLabels(&out, s.labels);
        out.push_back(' ');
        AppendUint(&out, s.count);
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

bool WriteMetricsFile(const Registry& registry, const std::string& path,
                      std::string* error) {
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  const std::string body =
      prom ? MetricsToPrometheus(registry) : MetricsToJson(registry) + "\n";
  std::ofstream out(path, std::ios::binary);
  if (!out || !(out << body)) {
    if (error != nullptr) {
      *error = "cannot write metrics to " + path;
    }
    return false;
  }
  return true;
}

}  // namespace easeio::obs
