// The intermittent execution engine.
//
// Runs a task graph on a device under a failure schedule: each task attempt either
// commits (its effects and the control transfer become durable together) or dies in a
// PowerFailure, after which the device reboots and the *same* task re-enters — the
// all-or-nothing semantics all three runtimes build on. The engine also guards against
// non-termination (a task whose energy cost exceeds what one power cycle can deliver,
// Section 3.5).

#ifndef EASEIO_KERNEL_ENGINE_H_
#define EASEIO_KERNEL_ENGINE_H_

#include <cstdint>

#include "kernel/runtime.h"
#include "kernel/task.h"
#include "sim/device.h"

namespace easeio::kernel {

struct RunConfig {
  // Abort the run (completed = false) once this much on-time has elapsed. Catches
  // non-terminating workloads instead of hanging the harness.
  uint64_t max_on_us = 60'000'000;

  // When nonzero, stop at the Nth PowerFailure caught at the task trampoline instead
  // of rebooting through it (1 = pause at the first). The device is left exactly as
  // that failure found it — attempt buffer unfolded, no off-time spent, SRAM intact —
  // which is the cut point Device::SnapshotAtReboot captures. The result has
  // paused = true and paused_task set; continue on a restored stack with Resume.
  // Failures that interrupt reboot recovery itself are retried in place as always and
  // do not count.
  uint32_t pause_at_failure = 0;
};

struct RunResult {
  bool completed = false;
  bool paused = false;       // stopped by pause_at_failure (completed is false)
  TaskId paused_task = 0;    // the task the pause interrupted; Resume re-enters it
  sim::RunStats stats;       // counters + app/overhead/wasted decomposition
  uint64_t on_us = 0;        // powered execution time
  uint64_t off_us = 0;       // time spent dark, recharging
  uint64_t wall_us = 0;      // on + off
  double energy_j = 0;       // total energy drawn
};

class Engine {
 public:
  explicit Engine(RunConfig config = {}) : config_(config) {}

  // Executes the graph from `entry` until a task returns kTaskDone. The device must
  // be freshly constructed; the runtime must already be bound and registered.
  RunResult Run(sim::Device& dev, Runtime& rt, NvManager& nv, const TaskGraph& graph,
                TaskId entry);

  // Continues a run that a pause_at_failure engine stopped, after the caller
  // rebuilt the stack and applied Device::ResumeFromSnapshot + Runtime::RestoreState.
  // First performs the reboot the pause deferred (fold, off-time, SRAM clear,
  // listeners, runtime recovery — exactly what the full-replay path would have done at
  // that failure), then re-enters `paused_task` and drives the graph to completion.
  RunResult Resume(sim::Device& dev, Runtime& rt, NvManager& nv, const TaskGraph& graph,
                   TaskId paused_task);

 private:
  // The shared drive loop; `reboot_first` performs the deferred reboot of Resume.
  RunResult Drive(sim::Device& dev, Runtime& rt, NvManager& nv, const TaskGraph& graph,
                  TaskId start, bool reboot_first);

  RunConfig config_;
};

}  // namespace easeio::kernel

#endif  // EASEIO_KERNEL_ENGINE_H_
