// The intermittent execution engine.
//
// Runs a task graph on a device under a failure schedule: each task attempt either
// commits (its effects and the control transfer become durable together) or dies in a
// PowerFailure, after which the device reboots and the *same* task re-enters — the
// all-or-nothing semantics all three runtimes build on. The engine also guards against
// non-termination (a task whose energy cost exceeds what one power cycle can deliver,
// Section 3.5).

#ifndef EASEIO_KERNEL_ENGINE_H_
#define EASEIO_KERNEL_ENGINE_H_

#include <cstdint>

#include "kernel/runtime.h"
#include "kernel/task.h"
#include "sim/device.h"

namespace easeio::kernel {

struct RunConfig {
  // Abort the run (completed = false) once this much on-time has elapsed. Catches
  // non-terminating workloads instead of hanging the harness.
  uint64_t max_on_us = 60'000'000;
};

struct RunResult {
  bool completed = false;
  sim::RunStats stats;       // counters + app/overhead/wasted decomposition
  uint64_t on_us = 0;        // powered execution time
  uint64_t off_us = 0;       // time spent dark, recharging
  uint64_t wall_us = 0;      // on + off
  double energy_j = 0;       // total energy drawn
};

class Engine {
 public:
  explicit Engine(RunConfig config = {}) : config_(config) {}

  // Executes the graph from `entry` until a task returns kTaskDone. The device must
  // be freshly constructed; the runtime must already be bound and registered.
  RunResult Run(sim::Device& dev, Runtime& rt, NvManager& nv, const TaskGraph& graph,
                TaskId entry);

 private:
  RunConfig config_;
};

}  // namespace easeio::kernel

#endif  // EASEIO_KERNEL_ENGINE_H_
