// Tasks and the task graph.
//
// A task is an atomic, restartable unit: its body runs from the top on every attempt,
// volatile locals are ordinary C++ locals (re-initialised on re-entry, exactly like
// SRAM after a reboot), and all persistent effects go through NvVar/I-O services. The
// body returns the id of the next task; control transfer commits together with the
// task (all-or-nothing semantics).

#ifndef EASEIO_KERNEL_TASK_H_
#define EASEIO_KERNEL_TASK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kernel/io.h"
#include "kernel/nv.h"
#include "platform/check.h"
#include "sim/device.h"

namespace easeio::kernel {

inline constexpr TaskId kTaskDone = 0xFFFE;

class Runtime;
class TaskCtx;

using TaskBody = std::function<TaskId(TaskCtx&)>;

struct Task {
  TaskId id = kNoTask;
  std::string name;
  TaskBody body;
};

// The static task graph of an application.
class TaskGraph {
 public:
  TaskId Add(std::string name, TaskBody body) {
    const TaskId id = static_cast<TaskId>(tasks_.size());
    tasks_.push_back({id, std::move(name), std::move(body)});
    return id;
  }

  const Task& task(TaskId id) const {
    EASEIO_CHECK(id < tasks_.size(), "unknown task");
    return tasks_[id];
  }

  size_t size() const { return tasks_.size(); }

 private:
  std::vector<Task> tasks_;
};

// Execution context handed to task bodies: the device, the active runtime's services,
// and the non-volatile variable table.
class TaskCtx {
 public:
  TaskCtx(sim::Device& dev, Runtime& rt, NvManager& nv) : dev_(dev), rt_(rt), nv_(nv) {}

  sim::Device& dev() { return dev_; }
  Runtime& rt() { return rt_; }
  NvManager& nv() { return nv_; }
  TaskId current_task() const { return current_task_; }

  // Unit tests and micro-benchmarks drive runtime services without the engine; they
  // use this to stand in for the engine's task dispatch.
  void SetCurrentTaskForTest(TaskId task) { current_task_ = task; }

  // Models `n` cycles of pure computation.
  void Cpu(uint64_t n) { dev_.Cpu(n); }

  // Wall-clock time as seen through the persistent timekeeper.
  uint64_t NowUs() const { return dev_.timekeeper().NowUs(); }

  // --- I/O services (forwarded to the active runtime; declared in runtime.h) ----------
  int16_t CallIo(IoSiteId site, const std::function<int16_t(TaskCtx&)>& op);
  int16_t CallIo(IoSiteId site, uint32_t lane, const std::function<int16_t(TaskCtx&)>& op);
  void IoBlockBegin(IoBlockId block);
  void IoBlockEnd(IoBlockId block);
  void DmaCopy(DmaSiteId site, uint32_t dst, uint32_t src, uint32_t nbytes);

  // --- Typed NV access (routed through Runtime::TranslateNv; declared in runtime.h) ---
  uint16_t NvLoad16(NvSlotId slot, uint32_t offset = 0);
  void NvStore16(NvSlotId slot, uint16_t value, uint32_t offset = 0);
  int16_t NvLoadI16(NvSlotId slot, uint32_t offset = 0) {
    return static_cast<int16_t>(NvLoad16(slot, offset));
  }
  void NvStoreI16(NvSlotId slot, int16_t value, uint32_t offset = 0) {
    NvStore16(slot, static_cast<uint16_t>(value), offset);
  }
  uint32_t NvLoad32(NvSlotId slot, uint32_t offset = 0);
  void NvStore32(NvSlotId slot, uint32_t value, uint32_t offset = 0);

 private:
  friend class Engine;

  sim::Device& dev_;
  Runtime& rt_;
  NvManager& nv_;
  TaskId current_task_ = kNoTask;
};

}  // namespace easeio::kernel

#endif  // EASEIO_KERNEL_TASK_H_
