// Non-volatile application variables.
//
// Task-based intermittent runtimes revolve around *task-shared* state in FRAM. Every
// runtime in this repository interposes on access to these variables (Alpaca redirects
// WAR variables to private copies, InK to its double buffer, EaseIO restores regional
// snapshots), so application code never touches raw addresses directly: it declares
// NvSlots through the NvManager and reads/writes them through NvVar/NvArray, which
// route each access through Runtime::TranslateNv.

#ifndef EASEIO_KERNEL_NV_H_
#define EASEIO_KERNEL_NV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "platform/check.h"
#include "sim/memory.h"

namespace easeio::kernel {

using NvSlotId = uint32_t;
inline constexpr NvSlotId kNoSlot = UINT32_MAX;

// One named non-volatile variable or buffer.
struct NvSlot {
  NvSlotId id = kNoSlot;
  std::string name;
  uint32_t addr = 0;  // FRAM address
  uint32_t size = 0;  // bytes
};

// Owns the application's non-volatile layout. Slots are allocated once at app setup
// and live for the whole run (power failures never move them).
class NvManager {
 public:
  explicit NvManager(sim::Memory& mem) : mem_(mem) {}

  NvManager(const NvManager&) = delete;
  NvManager& operator=(const NvManager&) = delete;

  // Defines a non-volatile variable of `size` bytes, zero-initialised.
  NvSlotId Define(std::string name, uint32_t size) {
    const uint32_t addr = mem_.AllocFram(name, size, sim::AllocPurpose::kAppData);
    slots_.push_back({static_cast<NvSlotId>(slots_.size()), std::move(name), addr, size});
    return slots_.back().id;
  }

  const NvSlot& slot(NvSlotId id) const {
    EASEIO_CHECK(id < slots_.size(), "unknown NvSlot");
    return slots_[id];
  }

  const std::vector<NvSlot>& slots() const { return slots_; }
  sim::Memory& mem() { return mem_; }

 private:
  sim::Memory& mem_;
  std::vector<NvSlot> slots_;
};

}  // namespace easeio::kernel

#endif  // EASEIO_KERNEL_NV_H_
