#include "kernel/runtime.h"

namespace easeio::kernel {

const char* ToString(IoSemantic sem) {
  switch (sem) {
    case IoSemantic::kAlways:
      return "Always";
    case IoSemantic::kSingle:
      return "Single";
    case IoSemantic::kTimely:
      return "Timely";
  }
  return "?";
}

void Runtime::Bind(sim::Device& dev, NvManager& nv) {
  dev_ = &dev;
  nv_ = &nv;
}

IoSiteId Runtime::RegisterIoSite(IoSiteDesc desc) {
  EASEIO_CHECK(dev_ != nullptr, "RegisterIoSite before Bind");
  EASEIO_CHECK(desc.lanes >= 1, "site needs at least one lane");
  const IoSiteId id = static_cast<IoSiteId>(io_sites_.size());
  io_stats_.emplace_back(desc.lanes);
  io_sites_.push_back(std::move(desc));
  return id;
}

IoBlockId Runtime::RegisterIoBlock(IoBlockDesc desc) {
  EASEIO_CHECK(dev_ != nullptr, "RegisterIoBlock before Bind");
  const IoBlockId id = static_cast<IoBlockId>(blocks_.size());
  blocks_.push_back(std::move(desc));
  return id;
}

DmaSiteId Runtime::RegisterDmaSite(DmaSiteDesc desc) {
  EASEIO_CHECK(dev_ != nullptr, "RegisterDmaSite before Bind");
  const DmaSiteId id = static_cast<DmaSiteId>(dma_sites_.size());
  dma_stats_.emplace_back();
  dma_sites_.push_back(std::move(desc));
  return id;
}

int16_t Runtime::ExecuteIo(TaskCtx& ctx, IoSiteId site, uint32_t lane, const IoOp& op) {
  EASEIO_CHECK(site < io_sites_.size() && lane < io_sites_[site].lanes, "bad io site/lane");
  LaneStats& ls = io_stats_[site][lane];
  const bool redundant = ls.executions_this_task > 0;
  int16_t value = 0;
  if (redundant) {
    sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kRedundant);
    value = op(ctx);
    ++ctx.dev().stats().io_redundant;
  } else {
    value = op(ctx);
  }
  // Counters move only after the operation completed; an operation cut short by a
  // power failure produced no effect and is not an execution.
  ++ls.executions_this_task;
  ++ls.total_executions;
  ++ctx.dev().stats().io_executions;
  ctx.dev().Note(sim::ProbeKind::kIoExec, site, lane, redundant ? 1 : 0);
  return value;
}

sim::DmaEngine::TransferInfo Runtime::ExecuteDma(TaskCtx& ctx, DmaSiteId site, uint32_t dst,
                                                 uint32_t src, uint32_t nbytes) {
  EASEIO_CHECK(site < dma_sites_.size(), "bad dma site");
  return ExecuteDmaTagged(ctx, site, dst, src, nbytes,
                          dma_stats_[site].executions_this_task > 0);
}

sim::DmaEngine::TransferInfo Runtime::ExecuteDmaTagged(TaskCtx& ctx, DmaSiteId site,
                                                       uint32_t dst, uint32_t src,
                                                       uint32_t nbytes, bool redundant) {
  EASEIO_CHECK(site < dma_sites_.size(), "bad dma site");
  LaneStats& ls = dma_stats_[site];
  sim::DmaEngine::TransferInfo info{};
  if (redundant) {
    sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kRedundant);
    info = ctx.dev().dma().Copy(ctx.dev(), dst, src, nbytes);
    ++ctx.dev().stats().dma_redundant;
  } else {
    info = ctx.dev().dma().Copy(ctx.dev(), dst, src, nbytes);
  }
  ++ls.executions_this_task;
  ++ls.total_executions;
  // lane carries the redundancy flag (DMA sites have no lanes; the invariant checker
  // reads only a/b for this kind, the profiler reads lane).
  ctx.dev().Note(sim::ProbeKind::kDmaExec, site, redundant ? 1 : 0,
                 (static_cast<uint64_t>(dst) << 32) | src, nbytes);
  return info;
}

void Runtime::ResetTaskCounters(TaskId task) {
  for (IoSiteId s = 0; s < io_sites_.size(); ++s) {
    if (io_sites_[s].task != task) {
      continue;
    }
    for (LaneStats& ls : io_stats_[s]) {
      ls.executions_this_task = 0;
    }
  }
  for (DmaSiteId s = 0; s < dma_sites_.size(); ++s) {
    if (dma_sites_[s].task == task) {
      dma_stats_[s].executions_this_task = 0;
    }
  }
}

int16_t Runtime::CallIo(TaskCtx& ctx, IoSiteId site, uint32_t lane, const IoOp& op) {
  return ExecuteIo(ctx, site, lane, op);
}

void Runtime::DmaCopy(TaskCtx& ctx, DmaSiteId site, uint32_t dst, uint32_t src,
                      uint32_t nbytes) {
  ExecuteDma(ctx, site, dst, src, nbytes);
}

void Runtime::OnTaskCommit(TaskCtx& ctx) { ResetTaskCounters(ctx.current_task()); }

RuntimeSnapshot Runtime::SnapshotState() const {
  return RuntimeSnapshot{io_stats_, dma_stats_, SnapshotExtra()};
}

void Runtime::SnapshotStateInto(RuntimeSnapshot& out) const {
  // Vector copy-assignment reuses existing capacity (outer and element-wise inner),
  // so a recycled RuntimeSnapshot of the same registration shape allocates nothing.
  out.io_stats = io_stats_;
  out.dma_stats = dma_stats_;
  out.extra = SnapshotExtra();
}

void Runtime::RestoreState(const RuntimeSnapshot& snapshot) {
  EASEIO_CHECK(snapshot.io_stats.size() == io_stats_.size() &&
                   snapshot.dma_stats.size() == dma_stats_.size(),
               "RestoreState on a differently-registered runtime");
  io_stats_ = snapshot.io_stats;
  dma_stats_ = snapshot.dma_stats;
  RestoreExtra(snapshot.extra);
}

uint32_t Runtime::CodeSizeBytes() const {
  // Plain task-model code: task dispatch plus a call per site.
  return 700 + 16 * static_cast<uint32_t>(io_sites_.size()) +
         24 * static_cast<uint32_t>(dma_sites_.size());
}

// --- TaskCtx forwarding (declared in task.h) -------------------------------------------

int16_t TaskCtx::CallIo(IoSiteId site, const std::function<int16_t(TaskCtx&)>& op) {
  return rt_.CallIo(*this, site, 0, op);
}

int16_t TaskCtx::CallIo(IoSiteId site, uint32_t lane,
                        const std::function<int16_t(TaskCtx&)>& op) {
  return rt_.CallIo(*this, site, lane, op);
}

void TaskCtx::IoBlockBegin(IoBlockId block) { rt_.IoBlockBegin(*this, block); }

void TaskCtx::IoBlockEnd(IoBlockId block) { rt_.IoBlockEnd(*this, block); }

void TaskCtx::DmaCopy(DmaSiteId site, uint32_t dst, uint32_t src, uint32_t nbytes) {
  rt_.DmaCopy(*this, site, dst, src, nbytes);
}

}  // namespace easeio::kernel
