#include "kernel/engine.h"

namespace easeio::kernel {

RunResult Engine::Run(sim::Device& dev, Runtime& rt, NvManager& nv, const TaskGraph& graph,
                      TaskId entry) {
  dev.Begin();
  rt.OnRunStart();
  return Drive(dev, rt, nv, graph, entry, /*reboot_first=*/false);
}

RunResult Engine::Resume(sim::Device& dev, Runtime& rt, NvManager& nv, const TaskGraph& graph,
                         TaskId paused_task) {
  // No Begin()/OnRunStart(): the restored snapshot already holds the mid-run state,
  // and the deferred reboot below re-arms the scheduler the way the full-replay path
  // would have.
  return Drive(dev, rt, nv, graph, paused_task, /*reboot_first=*/true);
}

RunResult Engine::Drive(sim::Device& dev, Runtime& rt, NvManager& nv, const TaskGraph& graph,
                        TaskId start, bool reboot_first) {
  TaskCtx ctx(dev, rt, nv);
  // The current-task pointer lives in non-volatile memory on a real system; here it is
  // only updated at commit, which gives the same recovery semantics.
  TaskId cur = start;
  bool completed = true;
  bool paused = false;
  uint32_t failures_caught = 0;

  // Reboots through a failure: recovery work (e.g. an undo-log rollback) is itself
  // charged and can be interrupted again, so retry until the runtime comes up clean.
  // Returns false when the non-termination guard tripped.
  auto reboot = [&] {
    for (;;) {
      dev.Reboot();
      try {
        rt.OnReboot();
        break;
      } catch (const sim::PowerFailure&) {
      }
    }
    return dev.clock().on_us() <= config_.max_on_us;
  };

  bool running = !reboot_first || reboot();
  if (!running) {
    completed = false;
  }

  while (running && cur != kTaskDone) {
    ctx.current_task_ = cur;
    try {
      dev.Note(sim::ProbeKind::kTaskBegin, cur);
      rt.OnTaskBegin(ctx);
      const TaskId next = graph.task(cur).body(ctx);
      rt.OnTaskCommit(ctx);
      dev.FoldAttemptCommitted();
      ++dev.stats().tasks_committed;
      dev.Note(sim::ProbeKind::kTaskCommit, cur);
      cur = next;
    } catch (const sim::PowerFailure&) {
      ++failures_caught;
      if (config_.pause_at_failure != 0 && failures_caught >= config_.pause_at_failure) {
        paused = true;
        break;
      }
      if (!reboot()) {
        completed = false;
        break;
      }
    }
  }

  // Deliver the probe tail: events emitted since the last ring flush (or the whole
  // run, for short runs) reach the sinks before any consumer reads them.
  dev.FlushProbes();

  RunResult result;
  result.completed = completed && !paused && cur == kTaskDone;
  result.paused = paused;
  result.paused_task = cur;
  result.stats = dev.stats();
  result.on_us = dev.clock().on_us();
  result.off_us = dev.clock().off_us();
  result.wall_us = dev.clock().wall_us();
  result.energy_j = dev.meter().TotalJ();
  return result;
}

}  // namespace easeio::kernel
