#include "kernel/engine.h"

namespace easeio::kernel {

RunResult Engine::Run(sim::Device& dev, Runtime& rt, NvManager& nv, const TaskGraph& graph,
                      TaskId entry) {
  dev.Begin();
  rt.OnRunStart();

  TaskCtx ctx(dev, rt, nv);
  // The current-task pointer lives in non-volatile memory on a real system; here it is
  // only updated at commit, which gives the same recovery semantics.
  TaskId cur = entry;
  bool completed = true;

  while (cur != kTaskDone) {
    ctx.current_task_ = cur;
    try {
      dev.Note(sim::ProbeKind::kTaskBegin, cur);
      rt.OnTaskBegin(ctx);
      const TaskId next = graph.task(cur).body(ctx);
      rt.OnTaskCommit(ctx);
      dev.FoldAttemptCommitted();
      ++dev.stats().tasks_committed;
      dev.Note(sim::ProbeKind::kTaskCommit, cur);
      cur = next;
    } catch (const sim::PowerFailure&) {
      // Recovery work (e.g. an undo-log rollback) is itself charged and can be
      // interrupted again; retry until the runtime comes up clean.
      for (;;) {
        dev.Reboot();
        try {
          rt.OnReboot();
          break;
        } catch (const sim::PowerFailure&) {
        }
      }
      if (dev.clock().on_us() > config_.max_on_us) {
        completed = false;
        break;
      }
    }
  }

  RunResult result;
  result.completed = completed;
  result.stats = dev.stats();
  result.on_us = dev.clock().on_us();
  result.off_us = dev.clock().off_us();
  result.wall_us = dev.clock().wall_us();
  result.energy_j = dev.meter().TotalJ();
  return result;
}

}  // namespace easeio::kernel
