// The runtime interface every intermittent system in this repository implements.
//
// The base class provides the classic task-based behaviour the baselines share:
//   * every I/O operation reached by control flow executes (no re-execution semantics);
//   * I/O blocks are inert annotations;
//   * DMA copies go straight to the engine, invisible to privatization;
//   * NV accesses are identity-translated (no protection).
// plus the registration tables and execution counters every runtime needs. Alpaca and
// InK override the task lifecycle hooks to add their privatization; EaseIO overrides
// the I/O services as well — that is the paper's contribution.

#ifndef EASEIO_KERNEL_RUNTIME_H_
#define EASEIO_KERNEL_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "kernel/io.h"
#include "kernel/nv.h"
#include "kernel/task.h"
#include "sim/device.h"

namespace easeio::kernel {

using IoOp = std::function<int16_t(TaskCtx&)>;

// The runtime's execution-time mutable host-side state, captured alongside a
// DeviceSnapshot. The per-lane execution counters matter because
// `executions_this_task` is reset only at task *commit*, never at reboot — it crosses
// power failures and decides redundancy classification, so a resumed suffix with
// zeroed counters would diverge from full replay. `extra` carries runtime-specific
// dynamic state (see Runtime::SnapshotExtra); registration tables are not captured —
// rebuilding the stack reproduces them deterministically.
struct RuntimeSnapshot {
  std::vector<std::vector<LaneStats>> io_stats;
  std::vector<LaneStats> dma_stats;
  std::shared_ptr<const void> extra;
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual const char* name() const = 0;

  // Attaches the runtime to a device and NV table. Called once, before registration.
  virtual void Bind(sim::Device& dev, NvManager& nv);

  // --- Static registration (mimics what each system's compiler emits) -----------------
  virtual IoSiteId RegisterIoSite(IoSiteDesc desc);
  virtual IoBlockId RegisterIoBlock(IoBlockDesc desc);
  virtual DmaSiteId RegisterDmaSite(DmaSiteDesc desc);

  // --- Compiler-analysis facts -----------------------------------------------------------
  // Applications declare, per task, what each system's compiler would have derived:
  //   * `shared` — every non-volatile variable the task reads or writes through the CPU
  //     (InK double-buffers all of these);
  //   * `war` — the subset with write-after-read dependencies (all Alpaca privatizes).
  // DMA-touched buffers are never listed: no baseline compiler can see DMA traffic.
  // The base records the declaration (the invariant checker reads it back); overrides
  // must call it before acting on the lists.
  virtual void DeclareTaskShared(TaskId task, const std::vector<NvSlotId>& shared,
                                 const std::vector<NvSlotId>& war) {
    shared_decls_.push_back({task, shared, war});
  }

  // Declares the region structure EaseIO's front-end derives (regions[k] lists the NV
  // slots CPU-accessed in region k; a task with N DMA sites has N+1 regions). Ignored
  // by runtimes without regional privatization.
  virtual void DeclareTaskRegions(TaskId task,
                                  std::vector<std::vector<NvSlotId>> regions) {
    (void)task;
    (void)regions;
  }

  // --- Lifecycle -----------------------------------------------------------------------
  virtual void OnRunStart() {}
  virtual void OnTaskBegin(TaskCtx& ctx) { (void)ctx; }
  virtual void OnTaskCommit(TaskCtx& ctx);
  virtual void OnReboot() {}

  // --- NV interposition ------------------------------------------------------------------
  // Returns the address a CPU access to `slot` at `offset` should really touch.
  // Overriders MUST pass `false` to SetNvHooks (or call it from their constructor) so
  // the NV accessors stop short-circuiting to the identity translation.
  virtual uint32_t TranslateNv(TaskCtx& ctx, const NvSlot& slot, uint32_t offset) {
    (void)ctx;
    return slot.addr + offset;
  }

  // Invoked before every CPU store to a non-volatile variable (after translation).
  // Undo-logging runtimes (Samoyed's atomic functions) interpose here; the default is
  // free. Overriders MUST declare themselves via SetNvHooks or the accessors skip the
  // virtual call entirely.
  virtual void OnNvWrite(TaskCtx& ctx, const NvSlot& slot) {
    (void)ctx;
    (void)slot;
  }

  // Devirtualization shims for the NV hot path: every simulated NV word access pays
  // for these decisions, and for most runtimes both hooks are the do-nothing base
  // version. The flags let TaskCtx::NvLoad16 & co. skip the virtual dispatch — worth
  // several ns per access, millions of accesses per chk exploration.
  bool nv_translate_is_identity() const { return nv_translate_is_identity_; }
  bool has_nv_write_hook() const { return has_nv_write_hook_; }
  uint32_t NvAddr(TaskCtx& ctx, const NvSlot& slot, uint32_t offset) {
    return nv_translate_is_identity_ ? slot.addr + offset : TranslateNv(ctx, slot, offset);
  }

  // --- I/O services ------------------------------------------------------------------------
  // Base behaviour: the operation always executes (the all-or-nothing task model).
  virtual int16_t CallIo(TaskCtx& ctx, IoSiteId site, uint32_t lane, const IoOp& op);
  virtual void IoBlockBegin(TaskCtx& ctx, IoBlockId block) {
    (void)ctx;
    (void)block;
  }
  virtual void IoBlockEnd(TaskCtx& ctx, IoBlockId block) {
    (void)ctx;
    (void)block;
  }
  virtual void DmaCopy(TaskCtx& ctx, DmaSiteId site, uint32_t dst, uint32_t src,
                       uint32_t nbytes);

  // --- Footprint model (Table 6) ------------------------------------------------------------
  // Modelled .text bytes: a per-runtime base plus per-construct increments, documented
  // at each override. FRAM/RAM footprints are *measured* from simulated allocations.
  virtual uint32_t CodeSizeBytes() const;

  // --- Introspection --------------------------------------------------------------------------
  struct TaskSharedDecl {
    TaskId task;
    std::vector<NvSlotId> shared;
    std::vector<NvSlotId> war;
  };
  const std::vector<TaskSharedDecl>& task_shared_decls() const { return shared_decls_; }
  const std::vector<IoSiteDesc>& io_sites() const { return io_sites_; }
  const std::vector<IoBlockDesc>& io_blocks() const { return blocks_; }
  const std::vector<DmaSiteDesc>& dma_sites() const { return dma_sites_; }
  const LaneStats& io_lane_stats(IoSiteId site, uint32_t lane) const {
    return io_stats_[site][lane];
  }
  const LaneStats& dma_stats(DmaSiteId site) const { return dma_stats_[site]; }

  // --- State fingerprinting (the chk dedup layer) ---------------------------------------
  // A byte range in simulated FRAM whose content a post-reboot state fingerprint must
  // ignore: metadata the runtime writes on every execution but never reads back on any
  // path that can steer a resumed trial (e.g. EaseIO completion timestamps when no
  // Timely window is registered). Static per registration — collected once per built
  // stack, so the ranges must not depend on run-time state.
  struct StateMaskRange {
    uint32_t addr = 0;
    uint32_t size = 0;
  };
  virtual void AppendStateMask(std::vector<StateMaskRange>& out) const { (void)out; }

  // Appends a canonical serialization of the run-mutable host-side state that survives
  // into the reboot path — the same state SnapshotExtra captures — to `out`. Returns
  // false when the runtime carries such state but cannot canonicalize it, which
  // disables state dedup for the trial rather than fingerprinting an incomplete state.
  // Pure diagnostics that never steer execution (the per-lane redundancy counters,
  // Samoyed's rollback count) are deliberately absent from the digest: including them
  // would split states whose continuations are provably identical.
  virtual bool AppendStateDigest(std::string& out) const {
    (void)out;
    return SnapshotExtra() == nullptr;
  }

  // --- Execution-state snapshot (the chk snapshot engine) -------------------------------
  // Captures / restores the mutable state a resumed trial must carry across the
  // rebuild. Restore requires an identically registered runtime (same sites).
  RuntimeSnapshot SnapshotState() const;
  // In-place variant: overwrites `out`, reusing its vector capacity. Trunk execution
  // captures runtime state at every instant of its plan; rebuilding the stats tables
  // from scratch per capture was pure allocator traffic.
  void SnapshotStateInto(RuntimeSnapshot& out) const;
  void RestoreState(const RuntimeSnapshot& snapshot);

 protected:
  // Declares which NV hooks a derived runtime really overrides (see TranslateNv /
  // OnNvWrite above). Call from the derived constructor.
  void SetNvHooks(bool translate_is_identity, bool has_write_hook) {
    nv_translate_is_identity_ = translate_is_identity;
    has_nv_write_hook_ = has_write_hook;
  }

  // Runtimes with dynamic host-side state that survives into the reboot path (e.g.
  // Samoyed's undo log and lazily allocated shadow slots) override these; the default
  // has nothing to capture. RestoreExtra receives exactly what SnapshotExtra returned.
  virtual std::shared_ptr<const void> SnapshotExtra() const { return nullptr; }
  virtual void RestoreExtra(const std::shared_ptr<const void>& extra) { (void)extra; }

  // Runs the operation with redundancy accounting: executions beyond the first for a
  // site lane (within one task incarnation) count as redundant I/O and are charged to
  // the kRedundant phase so they land in "wasted work".
  int16_t ExecuteIo(TaskCtx& ctx, IoSiteId site, uint32_t lane, const IoOp& op);

  // Performs the raw DMA transfer with the same redundancy accounting.
  sim::DmaEngine::TransferInfo ExecuteDma(TaskCtx& ctx, DmaSiteId site, uint32_t dst,
                                          uint32_t src, uint32_t nbytes);

  // Like ExecuteDma, but the caller states whether this transfer repeats an already
  // completed one (EaseIO knows this precisely from its flags; the lane heuristic would
  // mislabel the two phases of a Private transfer).
  sim::DmaEngine::TransferInfo ExecuteDmaTagged(TaskCtx& ctx, DmaSiteId site, uint32_t dst,
                                                uint32_t src, uint32_t nbytes, bool redundant);

  // Clears the per-incarnation execution counters of all sites owned by `task`.
  void ResetTaskCounters(TaskId task);

  sim::Device* dev_ = nullptr;
  NvManager* nv_ = nullptr;

  std::vector<IoSiteDesc> io_sites_;
  std::vector<std::vector<LaneStats>> io_stats_;
  std::vector<IoBlockDesc> blocks_;
  std::vector<DmaSiteDesc> dma_sites_;
  std::vector<LaneStats> dma_stats_;
  std::vector<TaskSharedDecl> shared_decls_;

 private:
  bool nv_translate_is_identity_ = true;
  bool has_nv_write_hook_ = false;
};

// --- TaskCtx NV accessors (declared in task.h) -----------------------------------------
// Defined inline here — after Runtime is complete — because every simulated NV load and
// store funnels through them; together with Device::LoadWord/StoreWord and Spend's fast
// path this keeps the whole per-word chain call-free in optimized builds.

inline uint16_t TaskCtx::NvLoad16(NvSlotId slot, uint32_t offset) {
  const NvSlot& s = nv_.slot(slot);
  EASEIO_CHECK(offset + 2 <= s.size, "NV load out of slot bounds");
  return dev_.LoadWord(rt_.NvAddr(*this, s, offset));
}

inline void TaskCtx::NvStore16(NvSlotId slot, uint16_t value, uint32_t offset) {
  const NvSlot& s = nv_.slot(slot);
  EASEIO_CHECK(offset + 2 <= s.size, "NV store out of slot bounds");
  if (rt_.has_nv_write_hook()) {
    rt_.OnNvWrite(*this, s);
  }
  dev_.StoreWord(rt_.NvAddr(*this, s, offset), value);
  dev_.Note(sim::ProbeKind::kNvWrite, s.id, 0, offset, 2);
}

inline uint32_t TaskCtx::NvLoad32(NvSlotId slot, uint32_t offset) {
  const NvSlot& s = nv_.slot(slot);
  EASEIO_CHECK(offset + 4 <= s.size, "NV load out of slot bounds");
  return dev_.LoadWord32(rt_.NvAddr(*this, s, offset));
}

inline void TaskCtx::NvStore32(NvSlotId slot, uint32_t value, uint32_t offset) {
  const NvSlot& s = nv_.slot(slot);
  EASEIO_CHECK(offset + 4 <= s.size, "NV store out of slot bounds");
  if (rt_.has_nv_write_hook()) {
    rt_.OnNvWrite(*this, s);
  }
  dev_.StoreWord32(rt_.NvAddr(*this, s, offset), value);
  dev_.Note(sim::ProbeKind::kNvWrite, s.id, 0, offset, 4);
}

}  // namespace easeio::kernel

#endif  // EASEIO_KERNEL_RUNTIME_H_
