// I/O site model shared by all runtimes.
//
// A *site* is one static I/O call location in the program — the compiler front-end in
// the paper mints one lock flag per (function, task, occurrence). Loops over an I/O
// call get a *lane* per iteration (Section 6, "Re-execution Semantics in Loops"). The
// same identity scheme serves two purposes here:
//   * EaseIO keys its re-execution decisions (flags, timestamps, private values) on it;
//   * all runtimes, including the baselines, count executions per site, which is how
//     the harness measures redundant re-execution (Table 4).

#ifndef EASEIO_KERNEL_IO_H_
#define EASEIO_KERNEL_IO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace easeio::kernel {

using TaskId = uint16_t;
inline constexpr TaskId kNoTask = 0xFFFF;

using IoSiteId = uint32_t;
using IoBlockId = uint32_t;
using DmaSiteId = uint32_t;
inline constexpr uint32_t kNoSite = UINT32_MAX;
inline constexpr uint32_t kNoBlock = UINT32_MAX;

// Re-execution semantics (Section 3.1). Always is the default of task-based systems;
// Single and Timely are the annotations EaseIO adds.
enum class IoSemantic : uint8_t {
  kAlways,
  kSingle,
  kTimely,
};

const char* ToString(IoSemantic sem);

// Static description of an I/O call site. Baseline runtimes ignore the annotation
// fields — they cannot express re-execution semantics, which is the paper's point.
struct IoSiteDesc {
  TaskId task = kNoTask;
  std::string name;
  uint32_t lanes = 1;  // >1 when the call sits in a loop
  IoSemantic sem = IoSemantic::kAlways;
  uint64_t window_us = 0;  // Timely freshness window
  std::vector<IoSiteId> depends_on;  // producer sites whose re-execution forces ours
  IoBlockId block = kNoBlock;        // innermost enclosing I/O block
};

// Static description of an _IO_block_begin/_IO_block_end region.
struct IoBlockDesc {
  TaskId task = kNoTask;
  std::string name;
  IoSemantic sem = IoSemantic::kSingle;
  uint64_t window_us = 0;
  IoBlockId parent = kNoBlock;  // lexical nesting
};

// Static description of a _DMA_copy site. Registration order within a task defines the
// region boundaries for EaseIO's regional privatization.
struct DmaSiteDesc {
  TaskId task = kNoTask;
  std::string name;
  bool exclude = false;           // programmer's Exclude annotation (constant data)
  IoSiteId related_io = kNoSite;  // I/O op whose output this DMA moves (Section 4.3.1)
};

// Runtime-agnostic execution bookkeeping for one site lane. This is *instrumentation*
// (host-side), not device state: baselines do not spend device cycles maintaining it.
struct LaneStats {
  uint32_t executions_this_task = 0;  // since the owning task last committed
  uint32_t total_executions = 0;
};

}  // namespace easeio::kernel

#endif  // EASEIO_KERNEL_IO_H_
