#include "daemon/cache.h"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "daemon/fsio.h"

namespace easeio::daemon {

namespace fs = std::filesystem;

namespace {

bool IsHexHash(const std::string& s) {
  if (s.size() != 64) {
    return false;
  }
  for (const char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
      return false;
    }
  }
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

ResultCache::ResultCache(const std::string& dir, uint64_t cap_bytes)
    : dir_(dir), cap_bytes_(cap_bytes) {
  std::error_code ec;
  fs::create_directories(dir_ + "/objects", ec);
  Load();
}

std::string ResultCache::ObjectPath(const std::string& hash) const {
  return dir_ + "/objects/" + hash + ".json";
}

void ResultCache::Load() {
  std::lock_guard<std::mutex> lock(mu_);

  std::ifstream index(dir_ + "/index.tsv");
  std::string line;
  while (index && std::getline(index, line)) {
    std::vector<std::string> fields;
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == '\t') {
        fields.push_back(line.substr(start, i - start));
        start = i + 1;
      }
    }
    if (fields.size() != 4) {
      continue;
    }
    Entry entry;
    if (!IsHexHash(fields[0]) || !ParseU64(fields[1], &entry.bytes) ||
        !ParseU64(fields[2], &entry.seq)) {
      continue;
    }
    entry.kind = fields[3];
    // Trust-but-verify: only admit entries whose object is present with the recorded
    // size (a torn write leaves a short file).
    std::error_code ec;
    const uint64_t on_disk = fs::file_size(ObjectPath(fields[0]), ec);
    if (ec || on_disk != entry.bytes) {
      continue;
    }
    const auto [it, inserted] = entries_.emplace(fields[0], entry);
    if (inserted) {
      total_bytes_ += entry.bytes;
      next_seq_ = std::max(next_seq_, entry.seq + 1);
    }
  }

  // Drop orphaned objects (written but never indexed — e.g. a crash between the
  // object write and the index rewrite).
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(dir_ + "/objects", ec)) {
    const std::string name = dirent.path().filename().string();
    if (name.size() == 64 + 5 && name.substr(64) == ".json" &&
        entries_.count(name.substr(0, 64)) == 0) {
      std::error_code rm_ec;
      fs::remove(dirent.path(), rm_ec);
    }
  }
}

bool ResultCache::Get(const std::string& hash, std::string* artifact, std::string* kind) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  if (!ReadFile(ObjectPath(hash), artifact) || artifact->size() != it->second.bytes) {
    // Object vanished or was corrupted under us; treat as a miss and forget it.
    total_bytes_ -= it->second.bytes;
    entries_.erase(it);
    RewriteIndex();
    ++misses_;
    return false;
  }
  if (kind != nullptr) {
    *kind = it->second.kind;
  }
  // Recency is bumped in memory only — the hit path must not pay an index rewrite
  // (it is the daemon's hot path). The bump reaches disk with the next Put or
  // eviction; a crash before then loses only access ordering, never an entry.
  it->second.seq = next_seq_++;
  ++hits_;
  return true;
}

void ResultCache::Put(const std::string& hash, const std::string& kind,
                      const std::string& artifact) {
  std::lock_guard<std::mutex> lock(mu_);
  ++puts_;
  const auto it = entries_.find(hash);
  if (it != entries_.end()) {
    it->second.seq = next_seq_++;
    RewriteIndex();
    return;
  }
  if (!WriteFileAtomic(ObjectPath(hash), artifact)) {
    return;  // disk trouble: stay consistent, just don't cache
  }
  Entry entry;
  entry.bytes = artifact.size();
  entry.seq = next_seq_++;
  entry.kind = kind;
  total_bytes_ += entry.bytes;
  entries_.emplace(hash, entry);
  EvictIfNeeded();
  RewriteIndex();
}

bool ResultCache::Contains(const std::string& hash) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(hash) != 0;
}

void ResultCache::EvictIfNeeded() {
  if (cap_bytes_ == 0) {
    return;
  }
  // Evict lowest-seq first, but never the newest entry — a single artifact larger
  // than the whole cap is still admitted.
  while (total_bytes_ > cap_bytes_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() || it->second.seq < victim->second.seq) {
        victim = it;
      }
    }
    std::error_code ec;
    fs::remove(ObjectPath(victim->first), ec);
    total_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
  }
}

void ResultCache::RewriteIndex() {
  // Deterministic order (by hash) so the file is stable for a given entry set.
  std::vector<const std::pair<const std::string, Entry>*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& kv : entries_) {
    sorted.push_back(&kv);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::string data;
  for (const auto* kv : sorted) {
    data += kv->first + "\t" + std::to_string(kv->second.bytes) + "\t" +
            std::to_string(kv->second.seq) + "\t" + kv->second.kind + "\n";
  }
  WriteFileAtomic(dir_ + "/index.tsv", data);
}

CacheStats ResultCache::Stats() {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.puts = puts_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.bytes = total_bytes_;
  stats.cap_bytes = cap_bytes_;
  return stats;
}

}  // namespace easeio::daemon
