#include "daemon/jsonin.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace easeio::daemon {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v(Type::kBool);
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(std::string raw) {
  JsonValue v(Type::kNumber);
  v.str_ = std::move(raw);
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v(Type::kString);
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v(Type::kArray);
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v(Type::kObject);
  v.members_ = std::move(members);
  return v;
}

bool JsonValue::GetUint(uint64_t* out) const {
  if (type_ != Type::kNumber || str_.empty()) {
    return false;
  }
  uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(str_.data(), str_.data() + str_.size(), v, 10);
  if (ec != std::errc() || ptr != str_.data() + str_.size()) {
    return false;  // negative, fractional, exponent, or out of range
  }
  *out = v;
  return true;
}

bool JsonValue::GetDouble(double* out) const {
  if (type_ != Type::kNumber || str_.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(str_.c_str(), &end);
  if (errno != 0 || end != str_.c_str() + str_.size()) {
    return false;
  }
  *out = v;
  return true;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, int max_depth) : text_(text), max_depth_(max_depth) {}

  bool Run(JsonValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out, 0)) {
      *error = error_;
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      *error = At("trailing data after the document");
      return false;
    }
    return true;
  }

 private:
  std::string At(const std::string& msg) {
    return "json: " + msg + " at offset " + std::to_string(pos_);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = At(msg);
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > max_depth_) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case 'n':
        if (!Literal("null")) return false;
        *out = JsonValue::MakeNull();
        return true;
      case 't':
        if (!Literal("true")) return false;
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!Literal("false")) return false;
        *out = JsonValue::MakeBool(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::MakeString(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    size_t digits = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      return Fail("invalid number");
    }
    // Leading zeros are invalid JSON ("01"), a classic canonicalization hazard.
    if (digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      return Fail("number has a leading zero");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++frac;
      }
      if (frac == 0) {
        return Fail("invalid fraction");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++exp;
      }
      if (exp == 0) {
        return Fail("invalid exponent");
      }
    }
    *out = JsonValue::MakeNumber(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Fail("truncated \\u escape");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void AppendUtf8(std::string* s, uint32_t cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return Fail("unterminated string");
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        return Fail("truncated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) {
            return false;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: needs a low one
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t lo = 0;
              if (!ParseHex4(&lo)) {
                return false;
              }
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Fail("invalid surrogate pair");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return Fail("unpaired surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::MakeArray(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item = JsonValue::MakeNull();
      SkipWs();
      if (!ParseValue(&item, depth + 1)) {
        return false;
      }
      items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::MakeArray(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    std::set<std::string> seen;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::MakeObject(std::move(members));
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      if (!seen.insert(key).second) {
        return Fail("duplicate object key '" + key + "'");
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue value = JsonValue::MakeNull();
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::MakeObject(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int max_depth_;
  std::string error_;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error, int max_depth) {
  Parser parser(text, max_depth);
  return parser.Run(out, error);
}

std::string QuoteJsonString(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace easeio::daemon
