// The easeiod protocol server: newline-delimited JSON over a Unix domain stream
// socket, multiplexing many concurrent clients with a single poll() loop.
//
// Wire protocol (one JSON object per line, both directions; grammar in DESIGN.md
// §12): requests carry an "op" — submit, status, watch, results, cache-stats,
// shutdown — and every request gets exactly one reply object with "ok" plus
// op-specific fields. A malformed frame (bad JSON, missing op, bad job spec) gets
// {"ok":false,"error":...} and the connection stays usable; only protocol-abuse
// (a frame or buffer over the size cap) closes the connection. After a successful
// watch reply the server additionally streams {"event":{...}} objects for every job
// state transition until the client disconnects.
//
// Threading: the loop runs on one thread. Worker threads hand their JobEvents to
// OnJobEvent, which queues them and pokes the loop through a self-pipe; the loop
// drains the queue and fans events out to watch subscribers, each filtered by its
// last-sent sequence number so the catch-up replay and the live stream never
// duplicate or reorder events. The same self-pipe wakes the loop for signal-driven
// shutdown: the handler writes one byte (async-signal-safe) and sets the flag the
// loop re-checks on every wake-up.

#ifndef EASEIO_DAEMON_SERVER_H_
#define EASEIO_DAEMON_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "daemon/cache.h"
#include "daemon/runner.h"

namespace easeio::daemon {

class Server {
 public:
  struct Options {
    std::string socket_path;
    // Per-frame and per-connection input cap. A lint source rides inside one frame,
    // so this bounds it too.
    size_t max_frame_bytes = 8 * 1024 * 1024;
    // Per-connection output cap. A stalled client (a watcher that stops reading
    // while events and periodic metrics frames accumulate) is dropped once its
    // unsent output exceeds this, so one dead peer cannot grow the daemon's
    // memory without bound. Slow-but-reading clients are unaffected: the buffer
    // drains as they read.
    size_t max_client_outbuf = 64 * 1024 * 1024;
    // When nonzero, SO_SNDBUF for every accepted connection. 0 keeps the kernel
    // default. Tests shrink this to force short writes / EAGAIN on large replies;
    // production leaves it alone.
    size_t sndbuf_bytes = 0;
    // Set by a signal handler (together with a WakeLoop() poke) to request the same
    // graceful exit as the shutdown op. May be null.
    const std::atomic<bool>* shutdown_flag = nullptr;
    // Optional metrics registry served by the `metrics` op. The server registers
    // its cache-mirror gauges in the constructor, so construct the server before
    // JobRunner::Start() spawns workers (registration must precede concurrent use).
    obs::Registry* metrics = nullptr;
    // With a registry attached and at least one watch subscriber, the poll loop
    // wakes at this period and streams a {"metrics":{...}} frame to every
    // subscriber. 0 disables periodic metrics events.
    uint64_t metrics_period_ms = 0;
  };

  Server(JobRunner* runner, ResultCache* cache, Options options);
  ~Server();

  // Binds and listens on options.socket_path (an existing socket file is replaced).
  // False + `error` on failure.
  bool Listen(std::string* error);

  // Runs the poll loop until a shutdown op arrives or the shutdown flag is set.
  // Pending replies are flushed before returning; the caller then drains the runner.
  void Run();

  // Thread-safe event intake (the JobRunner's sink). Queues the event and wakes the
  // loop so subscribers see it promptly.
  void OnJobEvent(const JobEvent& event);

  // Async-signal-safe poke: writes one byte to the self-pipe. Safe from a signal
  // handler once Listen() has returned true.
  void WakeLoop();

 private:
  struct Client {
    int fd = -1;
    std::string inbuf;
    // Reply bytes owed to the client. `out_off` is the write cursor: bytes before
    // it were already sent. Advancing a cursor instead of erase(0, n) keeps large
    // responses (metrics documents, artifact payloads) linear instead of
    // quadratic under short writes; FlushClient compacts opportunistically.
    std::string outbuf;
    size_t out_off = 0;
    bool watching = false;
    uint64_t watch_sent_seq = 0;  // newest event seq already written to this client
    bool closing = false;         // flush outbuf, then close
  };
  static size_t PendingOutput(const Client& client) {
    return client.outbuf.size() - client.out_off;
  }

  void HandleFrame(Client& client, const std::string& frame);
  void SendEvents(Client& client);
  bool FlushClient(Client& client);  // false when the connection is dead
  // Mirrors the cache's counters into the registry gauges; called just before
  // every registry exposition so `easectl metrics` sees current values.
  void RefreshCacheMetrics();

  JobRunner* const runner_;
  ResultCache* const cache_;
  const Options options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool shutdown_requested_ = false;
  std::vector<Client> clients_;

  // Cache-mirror gauges (registered in the constructor when metrics are on).
  obs::MetricId cache_gauges_[7] = {};

  std::mutex event_mu_;
  std::deque<JobEvent> pending_events_;
};

}  // namespace easeio::daemon

#endif  // EASEIO_DAEMON_SERVER_H_
