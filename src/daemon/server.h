// The easeiod protocol server: newline-delimited JSON over a Unix domain stream
// socket, multiplexing many concurrent clients with a single poll() loop.
//
// Wire protocol (one JSON object per line, both directions; grammar in DESIGN.md
// §12): requests carry an "op" — submit, status, watch, results, cache-stats,
// shutdown — and every request gets exactly one reply object with "ok" plus
// op-specific fields. A malformed frame (bad JSON, missing op, bad job spec) gets
// {"ok":false,"error":...} and the connection stays usable; only protocol-abuse
// (a frame or buffer over the size cap) closes the connection. After a successful
// watch reply the server additionally streams {"event":{...}} objects for every job
// state transition until the client disconnects.
//
// Threading: the loop runs on one thread. Worker threads hand their JobEvents to
// OnJobEvent, which queues them and pokes the loop through a self-pipe; the loop
// drains the queue and fans events out to watch subscribers, each filtered by its
// last-sent sequence number so the catch-up replay and the live stream never
// duplicate or reorder events. The same self-pipe wakes the loop for signal-driven
// shutdown: the handler writes one byte (async-signal-safe) and sets the flag the
// loop re-checks on every wake-up.

#ifndef EASEIO_DAEMON_SERVER_H_
#define EASEIO_DAEMON_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "daemon/cache.h"
#include "daemon/runner.h"

namespace easeio::daemon {

class Server {
 public:
  struct Options {
    std::string socket_path;
    // Per-frame and per-connection input cap. A lint source rides inside one frame,
    // so this bounds it too.
    size_t max_frame_bytes = 8 * 1024 * 1024;
    // Set by a signal handler (together with a WakeLoop() poke) to request the same
    // graceful exit as the shutdown op. May be null.
    const std::atomic<bool>* shutdown_flag = nullptr;
  };

  Server(JobRunner* runner, ResultCache* cache, Options options);
  ~Server();

  // Binds and listens on options.socket_path (an existing socket file is replaced).
  // False + `error` on failure.
  bool Listen(std::string* error);

  // Runs the poll loop until a shutdown op arrives or the shutdown flag is set.
  // Pending replies are flushed before returning; the caller then drains the runner.
  void Run();

  // Thread-safe event intake (the JobRunner's sink). Queues the event and wakes the
  // loop so subscribers see it promptly.
  void OnJobEvent(const JobEvent& event);

  // Async-signal-safe poke: writes one byte to the self-pipe. Safe from a signal
  // handler once Listen() has returned true.
  void WakeLoop();

 private:
  struct Client {
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    bool watching = false;
    uint64_t watch_sent_seq = 0;  // newest event seq already written to this client
    bool closing = false;         // flush outbuf, then close
  };

  void HandleFrame(Client& client, const std::string& frame);
  void SendEvents(Client& client);
  bool FlushClient(Client& client);  // false when the connection is dead

  JobRunner* const runner_;
  ResultCache* const cache_;
  const Options options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool shutdown_requested_ = false;
  std::vector<Client> clients_;

  std::mutex event_mu_;
  std::deque<JobEvent> pending_events_;
};

}  // namespace easeio::daemon

#endif  // EASEIO_DAEMON_SERVER_H_
