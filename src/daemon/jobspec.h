// Job specifications for the easeiod fleet daemon.
//
// A JobSpec is the daemon's unit of work: one of the four deterministic simulation
// job kinds the tooling already exposes as one-shot CLIs — a parametrized sweep grid
// (bench-style aggregates), a chk failure-schedule exploration, an easelint run over
// client-supplied program text, and an instrumented trace/profile run. Execution
// delegates to the same library entry points the CLIs call (report::ExecuteSweepJob,
// report::ExecuteExploreJob, lint::ExecuteLintJob, obs::ExecuteTraceJob), so a
// daemon job and the corresponding CLI invocation produce byte-identical artifacts.
//
// The cache key: CanonicalKey() renders every field that can influence the artifact
// bytes — job kind, per-kind artifact schema tag, app/runtime grid, config knobs,
// seed, engine mode, and (for lint) the hash of the program text — as a fixed-order
// text block, and ContentHash() is its SHA-256. Two rules keep the key honest:
//   * anything that changes output bytes MUST be in the key (the schema tag bumps
//     whenever a serializer changes, invalidating stale cache entries); and
//   * anything that provably cannot change output bytes MUST NOT be (worker count —
//     the repo-wide any-jobs byte-identity guarantee — so the same logical request
//     hits regardless of parallelism). The engine mode (snapshot vs full replay) also
//     provably cannot change the timing-stripped artifact, but it stays in the key as
//     defense in depth: a cross-engine divergence is a bug we want surfaced as a
//     cache miss + CI inequality, not silently papered over by a shared entry.

#ifndef EASEIO_DAEMON_JOBSPEC_H_
#define EASEIO_DAEMON_JOBSPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "apps/registry.h"
#include "apps/runtime_factory.h"
#include "daemon/jsonin.h"

namespace easeio::daemon {

enum class JobKind : uint8_t { kSweep, kExplore, kLint, kTrace };
inline constexpr size_t kNumJobKinds = 4;

const char* ToString(JobKind kind);
bool ParseJobKind(const std::string& name, JobKind* out);

struct JobSpec {
  JobKind kind = JobKind::kSweep;

  // Grid (sweep/explore). Trace uses apps[0] x runtimes[0]; lint ignores both.
  std::vector<apps::AppKind> apps = {apps::AppKind::kDma};
  std::vector<apps::RuntimeKind> runtimes = {apps::RuntimeKind::kEaseio};

  uint64_t seed = 1;
  bool regional = true;            // EaseIO regional DMA privatization
  uint32_t priv_buffer_bytes = 4096;
  uint64_t tick_us = 100;          // persistent-timekeeper tick

  // sweep
  uint32_t runs = 100;

  // explore
  int depth = 2;
  uint32_t budget = 1500;
  uint64_t off_us = 700;           // also the lint witness dark time
  bool use_snapshot = true;        // engine mode (kept in the key; see header note)
  bool use_pruning = true;         // POR + state dedup (kept in the key; same note)
  // Coverage mode (easechk --exhaust). Changes artifact bytes — certificate object,
  // depth override, no subsampling — so it is unconditionally part of the key.
  // Requires use_snapshot (rejected at parse otherwise). 0 = off.
  uint32_t exhaust = 0;

  // lint
  std::string source;              // program text, sent inline (content-hashed)
  std::string source_name = "<daemon>";
  bool witness = false;            // replay suggested schedules (easelint --witness)
  bool lint_v2 = false;            // full-fixpoint queries + easeio-lint/2 artifact

  // trace
  bool timeline = false;           // artifact: Chrome trace instead of easeio-profile/1
  bool continuous = false;
  double harvester_in = 0.0;
  uint64_t cap_sample_us = 1000;

  // Execution hint only — worker threads inside the job. Excluded from the cache
  // key: results are byte-identical for any value (the platform/parallel guarantee).
  uint32_t exec_jobs = 1;
};

// The deterministic text block hashed into the cache key (documented in DESIGN.md
// §12; also handy in tests and debugging output).
std::string CanonicalKey(const JobSpec& spec);

// SHA-256 hex of CanonicalKey — the job id, cache address, and artifact filename.
std::string ContentHash(const JobSpec& spec);

// Protocol/persistence serialization. Round-trips through ParseJobSpec.
std::string ToJson(const JobSpec& spec);

// Parses the "job" object of a submit frame. Strict: unknown keys, wrong types, and
// out-of-range values are errors (a typoed key silently ignored would canonicalize
// to the wrong cache entry). Returns false and fills `error`.
bool ParseJobSpec(const JsonValue& value, JobSpec* out, std::string* error);

// A finished job. Only ok outcomes enter the result cache; `artifact` always ends
// with a newline and is byte-identical to what the matching CLI writes.
struct JobOutcome {
  bool ok = false;
  std::string error;     // failure reason when !ok
  std::string artifact;  // the cached document
  std::string summary;   // one-line human description (streamed in the done event)
};

// Executes the job synchronously on the calling thread. Deterministic for a fixed
// spec; safe to call from many threads concurrently (no shared state).
JobOutcome ExecuteSpec(const JobSpec& spec);

// Collision-safe artifact filename for a results-dir export: a human-readable label
// plus a content-hash prefix, so two jobs for the same app with different configs
// never overwrite each other (the hash differs whenever any key component differs).
std::string ArtifactFileName(const JobSpec& spec, const std::string& hash);

}  // namespace easeio::daemon

#endif  // EASEIO_DAEMON_JOBSPEC_H_
