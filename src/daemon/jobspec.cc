#include "daemon/jobspec.h"

#include <cctype>
#include <charconv>

#include "platform/hash.h"
#include "easec/lint/run.h"
#include "obs/trace_job.h"
#include "report/jobs.h"
#include "report/json.h"

namespace easeio::daemon {

using platform::Sha256Hex;

namespace {

// Shortest-round-trip double formatting, matching report::JsonWriter so the same
// value renders identically in the canonical key and on the wire.
std::string FormatDouble(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

// Per-kind artifact schema tag. Bump a tag whenever the corresponding serializer's
// output changes: stale cache entries then miss instead of being replayed.
const char* SchemaTag(const JobSpec& spec) {
  switch (spec.kind) {
    case JobKind::kSweep:
      return "easeio-bench/1";
    case JobKind::kExplore:
      return "easeio-chk/1";
    case JobKind::kLint:
      return spec.lint_v2 ? "easeio-lint/2" : "easeio-lint/1";
    case JobKind::kTrace:
      return spec.timeline ? "easeio-trace/1" : "easeio-profile/1";
  }
  return "unknown";
}

std::string JoinApps(const std::vector<apps::AppKind>& apps) {
  std::string out;
  for (size_t i = 0; i < apps.size(); ++i) {
    out += (i ? "," : "") + std::string(report::AppName(apps[i]));
  }
  return out;
}

std::string JoinRuntimes(const std::vector<apps::RuntimeKind>& runtimes) {
  std::string out;
  for (size_t i = 0; i < runtimes.size(); ++i) {
    out += (i ? "," : "") + std::string(report::RuntimeName(runtimes[i]));
  }
  return out;
}

report::ExperimentConfig BaseExperimentConfig(const JobSpec& spec) {
  report::ExperimentConfig cfg;
  cfg.seed = spec.seed;
  cfg.easeio_regional_privatization = spec.regional;
  cfg.easeio_priv_buffer_bytes = spec.priv_buffer_bytes;
  cfg.timekeeper_tick_us = spec.tick_us;
  return cfg;
}

}  // namespace

const char* ToString(JobKind kind) {
  switch (kind) {
    case JobKind::kSweep:
      return "sweep";
    case JobKind::kExplore:
      return "explore";
    case JobKind::kLint:
      return "lint";
    case JobKind::kTrace:
      return "trace";
  }
  return "unknown";
}

bool ParseJobKind(const std::string& name, JobKind* out) {
  if (name == "sweep") {
    *out = JobKind::kSweep;
  } else if (name == "explore") {
    *out = JobKind::kExplore;
  } else if (name == "lint") {
    *out = JobKind::kLint;
  } else if (name == "trace") {
    *out = JobKind::kTrace;
  } else {
    return false;
  }
  return true;
}

std::string CanonicalKey(const JobSpec& spec) {
  // Fixed field order, newline-separated k=v lines, one header naming the key format
  // itself. Only fields that can influence the artifact for this kind are rendered.
  std::string key = "easeio-job/1\n";
  key += std::string("kind=") + ToString(spec.kind) + "\n";
  key += std::string("schema=") + SchemaTag(spec) + "\n";
  key += "seed=" + std::to_string(spec.seed) + "\n";
  switch (spec.kind) {
    case JobKind::kSweep:
      key += "apps=" + JoinApps(spec.apps) + "\n";
      key += "runtimes=" + JoinRuntimes(spec.runtimes) + "\n";
      key += "runs=" + std::to_string(spec.runs) + "\n";
      key += "regional=" + std::to_string(spec.regional ? 1 : 0) + "\n";
      key += "priv_buffer=" + std::to_string(spec.priv_buffer_bytes) + "\n";
      key += "tick_us=" + std::to_string(spec.tick_us) + "\n";
      break;
    case JobKind::kExplore:
      key += "apps=" + JoinApps(spec.apps) + "\n";
      key += "runtimes=" + JoinRuntimes(spec.runtimes) + "\n";
      key += "depth=" + std::to_string(spec.depth) + "\n";
      key += "budget=" + std::to_string(spec.budget) + "\n";
      key += "off_us=" + std::to_string(spec.off_us) + "\n";
      key += "snapshot=" + std::to_string(spec.use_snapshot ? 1 : 0) + "\n";
      // Pruning provably cannot change the timing-stripped artifact (same guarantee
      // and same defense-in-depth rationale as the engine mode above); exhaust mode
      // genuinely changes bytes (certificate object, depth override, no subsampling).
      key += "prune=" + std::to_string(spec.use_pruning ? 1 : 0) + "\n";
      key += "exhaust=" + std::to_string(spec.exhaust) + "\n";
      key += "regional=" + std::to_string(spec.regional ? 1 : 0) + "\n";
      key += "priv_buffer=" + std::to_string(spec.priv_buffer_bytes) + "\n";
      key += "tick_us=" + std::to_string(spec.tick_us) + "\n";
      break;
    case JobKind::kLint:
      // The program text is client-supplied and unbounded; hash it instead of
      // splicing it in. The name is part of the artifact ("source" field), so it is
      // part of the key.
      key += "source_sha256=" + Sha256Hex(spec.source) + "\n";
      key += "source_name=" + QuoteJsonString(spec.source_name) + "\n";
      key += "witness=" + std::to_string(spec.witness ? 1 : 0) + "\n";
      key += "lint_v2=" + std::to_string(spec.lint_v2 ? 1 : 0) + "\n";
      key += "off_us=" + std::to_string(spec.off_us) + "\n";
      key += "priv_buffer=" + std::to_string(spec.priv_buffer_bytes) + "\n";
      break;
    case JobKind::kTrace:
      key += "apps=" + JoinApps(spec.apps) + "\n";
      key += "runtimes=" + JoinRuntimes(spec.runtimes) + "\n";
      key += "timeline=" + std::to_string(spec.timeline ? 1 : 0) + "\n";
      key += "continuous=" + std::to_string(spec.continuous ? 1 : 0) + "\n";
      key += "harvester_in=" + FormatDouble(spec.harvester_in) + "\n";
      key += "cap_sample_us=" + std::to_string(spec.cap_sample_us) + "\n";
      key += "regional=" + std::to_string(spec.regional ? 1 : 0) + "\n";
      key += "priv_buffer=" + std::to_string(spec.priv_buffer_bytes) + "\n";
      key += "tick_us=" + std::to_string(spec.tick_us) + "\n";
      break;
  }
  return key;
}

std::string ContentHash(const JobSpec& spec) { return Sha256Hex(CanonicalKey(spec)); }

std::string ToJson(const JobSpec& spec) {
  report::JsonWriter w;
  w.BeginObject();
  w.Key("kind").String(ToString(spec.kind));
  w.Key("seed").UInt(spec.seed);
  if (spec.kind != JobKind::kLint) {
    w.Key("apps").BeginArray();
    for (const apps::AppKind app : spec.apps) {
      w.String(report::AppName(app));
    }
    w.EndArray();
    w.Key("runtimes").BeginArray();
    for (const apps::RuntimeKind rt : spec.runtimes) {
      w.String(report::RuntimeName(rt));
    }
    w.EndArray();
    w.Key("regional").Bool(spec.regional);
    w.Key("tick_us").UInt(spec.tick_us);
  }
  w.Key("priv_buffer").UInt(spec.priv_buffer_bytes);
  switch (spec.kind) {
    case JobKind::kSweep:
      w.Key("runs").UInt(spec.runs);
      break;
    case JobKind::kExplore:
      w.Key("depth").Int(spec.depth);
      w.Key("budget").UInt(spec.budget);
      w.Key("off_us").UInt(spec.off_us);
      w.Key("snapshot").Bool(spec.use_snapshot);
      w.Key("prune").Bool(spec.use_pruning);
      w.Key("exhaust").UInt(spec.exhaust);
      break;
    case JobKind::kLint:
      w.Key("source").String(spec.source);
      w.Key("source_name").String(spec.source_name);
      w.Key("witness").Bool(spec.witness);
      w.Key("lint_v2").Bool(spec.lint_v2);
      w.Key("off_us").UInt(spec.off_us);
      break;
    case JobKind::kTrace:
      w.Key("timeline").Bool(spec.timeline);
      w.Key("continuous").Bool(spec.continuous);
      w.Key("harvester_in").Double(spec.harvester_in);
      w.Key("cap_sample_us").UInt(spec.cap_sample_us);
      break;
  }
  w.Key("jobs").UInt(spec.exec_jobs);
  w.EndObject();
  return w.TakeString();
}

namespace {

bool FieldError(std::string* error, const std::string& key, const char* what) {
  *error = "job." + key + ": " + what;
  return false;
}

bool ReadUint(const JsonValue& v, const std::string& key, uint64_t min, uint64_t max,
              uint64_t* out, std::string* error) {
  uint64_t value = 0;
  if (!v.GetUint(&value)) {
    return FieldError(error, key, "expected an unsigned integer");
  }
  if (value < min || value > max) {
    return FieldError(error, key, "out of range");
  }
  *out = value;
  return true;
}

bool ReadBool(const JsonValue& v, const std::string& key, bool* out, std::string* error) {
  if (!v.is_bool()) {
    return FieldError(error, key, "expected a boolean");
  }
  *out = v.AsBool();
  return true;
}

bool ReadString(const JsonValue& v, const std::string& key, std::string* out,
                std::string* error) {
  if (!v.is_string()) {
    return FieldError(error, key, "expected a string");
  }
  *out = v.AsString();
  return true;
}

}  // namespace

bool ParseJobSpec(const JsonValue& value, JobSpec* out, std::string* error) {
  if (!value.is_object()) {
    *error = "job: expected an object";
    return false;
  }
  const JsonValue* kind_field = value.Find("kind");
  if (kind_field == nullptr || !kind_field->is_string() ||
      !ParseJobKind(kind_field->AsString(), &out->kind)) {
    *error = "job.kind: expected one of sweep|explore|lint|trace";
    return false;
  }

  bool have_source = false;
  for (const auto& [key, v] : value.Members()) {
    uint64_t u = 0;
    if (key == "kind") {
      continue;  // handled above
    } else if (key == "seed") {
      if (!ReadUint(v, key, 0, UINT64_MAX, &out->seed, error)) return false;
    } else if (key == "apps") {
      if (!v.is_array() || v.Items().empty()) {
        return FieldError(error, key, "expected a non-empty array of app names");
      }
      out->apps.clear();
      for (const JsonValue& item : v.Items()) {
        apps::AppKind app;
        if (!item.is_string() || !report::ParseApp(item.AsString(), &app)) {
          return FieldError(error, key, "unknown app name");
        }
        out->apps.push_back(app);
      }
    } else if (key == "runtimes") {
      if (!v.is_array() || v.Items().empty()) {
        return FieldError(error, key, "expected a non-empty array of runtime names");
      }
      out->runtimes.clear();
      for (const JsonValue& item : v.Items()) {
        apps::RuntimeKind rt;
        if (!item.is_string() || !report::ParseRuntime(item.AsString(), &rt)) {
          return FieldError(error, key, "unknown runtime name");
        }
        out->runtimes.push_back(rt);
      }
    } else if (key == "regional") {
      if (!ReadBool(v, key, &out->regional, error)) return false;
    } else if (key == "priv_buffer") {
      if (!ReadUint(v, key, 0, UINT32_MAX, &u, error)) return false;
      out->priv_buffer_bytes = static_cast<uint32_t>(u);
    } else if (key == "tick_us") {
      if (!ReadUint(v, key, 1, UINT64_MAX, &out->tick_us, error)) return false;
    } else if (key == "runs") {
      if (!ReadUint(v, key, 1, 1'000'000, &u, error)) return false;
      out->runs = static_cast<uint32_t>(u);
    } else if (key == "depth") {
      if (!ReadUint(v, key, 1, 2, &u, error)) return false;
      out->depth = static_cast<int>(u);
    } else if (key == "budget") {
      if (!ReadUint(v, key, 1, UINT32_MAX, &u, error)) return false;
      out->budget = static_cast<uint32_t>(u);
    } else if (key == "off_us") {
      if (!ReadUint(v, key, 0, UINT64_MAX, &out->off_us, error)) return false;
    } else if (key == "snapshot") {
      if (!ReadBool(v, key, &out->use_snapshot, error)) return false;
    } else if (key == "prune") {
      if (!ReadBool(v, key, &out->use_pruning, error)) return false;
    } else if (key == "exhaust") {
      if (!ReadUint(v, key, 0, 2, &u, error)) return false;
      out->exhaust = static_cast<uint32_t>(u);
    } else if (key == "source") {
      if (!ReadString(v, key, &out->source, error)) return false;
      have_source = true;
    } else if (key == "source_name") {
      if (!ReadString(v, key, &out->source_name, error)) return false;
    } else if (key == "witness") {
      if (!ReadBool(v, key, &out->witness, error)) return false;
    } else if (key == "lint_v2") {
      if (!ReadBool(v, key, &out->lint_v2, error)) return false;
    } else if (key == "timeline") {
      if (!ReadBool(v, key, &out->timeline, error)) return false;
    } else if (key == "continuous") {
      if (!ReadBool(v, key, &out->continuous, error)) return false;
    } else if (key == "harvester_in") {
      double d = 0;
      if (!v.GetDouble(&d) || d < 0) {
        return FieldError(error, key, "expected a non-negative number");
      }
      out->harvester_in = d;
    } else if (key == "cap_sample_us") {
      if (!ReadUint(v, key, 0, UINT64_MAX, &out->cap_sample_us, error)) return false;
    } else if (key == "jobs") {
      if (!ReadUint(v, key, 0, 4096, &u, error)) return false;
      out->exec_jobs = static_cast<uint32_t>(u);
    } else {
      return FieldError(error, key, "unknown field");
    }
  }

  if (out->kind == JobKind::kLint && !have_source) {
    *error = "job.source: required for lint jobs";
    return false;
  }
  if (out->kind == JobKind::kExplore && out->exhaust > 0 && !out->use_snapshot) {
    *error = "job.exhaust: requires the snapshot engine (snapshot=false conflicts)";
    return false;
  }
  if (out->kind == JobKind::kTrace && out->continuous && out->harvester_in > 0) {
    *error = "job: continuous and harvester_in are mutually exclusive";
    return false;
  }
  return true;
}

JobOutcome ExecuteSpec(const JobSpec& spec) {
  JobOutcome out;
  switch (spec.kind) {
    case JobKind::kSweep: {
      report::SweepJob job;
      job.apps = spec.apps;
      job.runtimes = spec.runtimes;
      job.base = BaseExperimentConfig(spec);
      job.runs = spec.runs;
      job.jobs = spec.exec_jobs;
      const report::SweepJobResult result = report::ExecuteSweepJob(job);
      out.artifact = report::SweepJobJson(job, result, "daemon_sweep") + "\n";
      uint64_t incorrect = 0;
      for (const report::SweepCell& cell : result.cells) {
        incorrect += cell.aggregate.incorrect;
      }
      out.summary = std::to_string(result.cells.size()) + " cell(s), " +
                    std::to_string(spec.runs) + " run(s) each, " +
                    std::to_string(incorrect) + " incorrect";
      out.ok = true;
      break;
    }
    case JobKind::kExplore: {
      report::ExploreJob job;
      job.apps = spec.apps;
      job.runtimes = spec.runtimes;
      job.base.seed = spec.seed;
      job.base.depth = spec.depth;
      job.base.budget = spec.budget;
      job.base.jobs = spec.exec_jobs;
      job.base.off_us = spec.off_us;
      job.base.use_snapshot = spec.use_snapshot;
      job.base.use_pruning = spec.use_pruning;
      job.base.exhaust = spec.exhaust;
      job.base.easeio_regional_privatization = spec.regional;
      job.base.easeio_priv_buffer_bytes = spec.priv_buffer_bytes;
      job.base.timekeeper_tick_us = spec.tick_us;
      const report::ExploreJobResult result = report::ExecuteExploreJob(job);
      // The cacheable artifact excludes the host-dependent timing object — the same
      // document `easechk --json --no-timing` writes.
      out.artifact = chk::ToJson(result.results, /*include_timing=*/false) + "\n";
      out.summary = std::to_string(result.results.size()) + " exploration(s), " +
                    std::to_string(result.total_violations) + " violation(s)";
      out.ok = true;
      break;
    }
    case JobKind::kLint: {
      easec::lint::LintJob job;
      job.source = spec.source;
      job.source_name = spec.source_name;
      job.compile_options.dma_priv_buffer_bytes = spec.priv_buffer_bytes;
      job.witness_options.seed = spec.seed;
      job.witness_options.off_us = spec.off_us;
      job.witness_options.priv_buffer_bytes = spec.priv_buffer_bytes;
      job.confirm_witnesses = spec.witness;
      job.lint_v2 = spec.lint_v2;
      const easec::lint::LintJobResult result = easec::lint::ExecuteLintJob(job);
      if (!result.compiled) {
        out.error = "compile failed: " + result.compile_errors;
        break;
      }
      out.artifact = result.json + "\n";
      out.summary = std::to_string(result.lint.errors) + " error(s), " +
                    std::to_string(result.lint.warnings) + " warning(s), " +
                    std::to_string(result.lint.advisories) + " advisory(ies)";
      out.ok = true;
      break;
    }
    case JobKind::kTrace: {
      obs::TraceJob job;
      job.config = BaseExperimentConfig(spec);
      job.config.app = spec.apps.empty() ? apps::AppKind::kDma : spec.apps.front();
      job.config.runtime =
          spec.runtimes.empty() ? apps::RuntimeKind::kEaseio : spec.runtimes.front();
      job.config.continuous = spec.continuous;
      job.config.rf_distance_in = spec.harvester_in;
      job.config.cap_sample_period_us = spec.cap_sample_us;
      job.want_trace = spec.timeline;
      job.want_profile = !spec.timeline;
      const obs::TraceJobResult result = obs::ExecuteTraceJob(job);
      out.artifact = (spec.timeline ? result.trace_json : result.profile_json) + "\n";
      out.summary = std::string(result.run.result.run.completed ? "completed" : "incomplete") +
                    ", " + std::to_string(result.run.result.run.stats.power_failures) +
                    " failure(s), " + std::to_string(result.run.events.size()) + " event(s)";
      out.ok = true;
      break;
    }
  }
  return out;
}

std::string ArtifactFileName(const JobSpec& spec, const std::string& hash) {
  std::string label;
  if (spec.kind == JobKind::kLint) {
    // Basename stem of the source name, sanitized for use as a path component.
    std::string stem = spec.source_name;
    const size_t slash = stem.find_last_of('/');
    if (slash != std::string::npos) {
      stem = stem.substr(slash + 1);
    }
    const size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0) {
      stem = stem.substr(0, dot);
    }
    for (char& c : stem) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_')) {
        c = '-';
      }
    }
    label = stem.empty() ? "program" : stem;
  } else {
    label = JoinApps(spec.apps);
    for (char& c : label) {
      if (c == ',') {
        c = '+';
      }
    }
  }
  return std::string(ToString(spec.kind)) + "-" + label + "-" + hash.substr(0, 12) +
         ".json";
}

}  // namespace easeio::daemon
