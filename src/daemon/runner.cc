#include "daemon/runner.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "daemon/fsio.h"
#include "platform/parallel.h"
#include "report/json.h"

namespace easeio::daemon {

const char* ToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

JobRunner::JobRunner(ResultCache* cache, Options options, EventSink sink)
    : cache_(cache), options_(std::move(options)), sink_(std::move(sink)) {
  obs::Registry* reg = options_.metrics;
  if (reg == nullptr) {
    return;
  }
  // ExecuteSpec latencies span four-plus orders of magnitude (a cached lint vs a
  // deep exploration), so the buckets are decade-ish up to 10s.
  const std::vector<uint64_t> kDurationBoundsUs = {
      1000, 5000, 10000, 50000, 100000, 500000, 1000000, 5000000, 10000000};
  for (size_t k = 0; k < kNumJobKinds; ++k) {
    const obs::Labels labels = {{"kind", ToString(static_cast<JobKind>(k))}};
    kind_metrics_[k].submitted = reg->Counter("easeiod_jobs_submitted", labels);
    kind_metrics_[k].done = reg->Counter("easeiod_jobs_done", labels);
    kind_metrics_[k].failed = reg->Counter("easeiod_jobs_failed", labels);
    kind_metrics_[k].cache_hits = reg->Counter("easeiod_job_cache_hits", labels);
    kind_metrics_[k].duration_us =
        reg->Histogram("easeiod_job_duration_us", kDurationBoundsUs, labels);
  }
  queue_depth_gauge_ = reg->Gauge("easeiod_queue_depth");
  running_gauge_ = reg->Gauge("easeiod_jobs_running");
  workers_gauge_ = reg->Gauge("easeiod_workers");
}

JobRunner::~JobRunner() { Stop(); }

void JobRunner::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return;
    }
    started_ = true;
  }
  // A drained queue is resubmitted before workers exist, so the persisted order is
  // also the re-execution order.
  LoadPersistedQueue();
  const uint32_t workers = platform::ResolveJobs(options_.workers, SIZE_MAX);
  if (options_.metrics != nullptr) {
    options_.metrics->Set(workers_gauge_, static_cast<int64_t>(workers));
  }
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void JobRunner::UpdateGaugesLocked() {
  if (options_.metrics == nullptr) {
    return;
  }
  options_.metrics->Set(queue_depth_gauge_, static_cast<int64_t>(queue_.size()));
  options_.metrics->Set(running_gauge_, static_cast<int64_t>(running_));
}

void JobRunner::Emit(const JobInfo& job) {
  JobEvent event;
  event.seq = next_event_seq_++;
  event.job_id = job.id;
  event.state = ToString(job.state);
  event.kind = ToString(job.spec.kind);
  event.hash = job.hash;
  event.cached = job.cached;
  event.summary = job.summary;
  event.error = job.error;
  events_.push_back(event);
  if (sink_) {
    sink_(event);
  }
}

JobRunner::SubmitResult JobRunner::Submit(const JobSpec& spec) {
  const std::string hash = ContentHash(spec);
  SubmitResult result;
  result.hash = hash;

  std::lock_guard<std::mutex> lock(mu_);

  // In-flight dedup: a queued or running job with the same hash adopts this
  // submission — the work runs once and the caller watches that job's events.
  const auto in_flight = in_flight_.find(hash);
  if (in_flight != in_flight_.end()) {
    result.job_id = in_flight->second;
    result.deduped = true;
    return result;
  }

  JobInfo job;
  job.id = next_job_id_++;
  job.spec = spec;
  job.hash = hash;
  result.job_id = job.id;
  obs::Registry* reg = options_.metrics;
  const KindMetrics& km = kind_metrics_[static_cast<size_t>(spec.kind)];
  if (reg != nullptr) {
    reg->Add(km.submitted, 1);
  }

  std::string artifact;
  if (cache_ != nullptr && cache_->Get(hash, &artifact)) {
    // Cache hit: the job is born done; the stored artifact is the result.
    job.state = JobState::kDone;
    job.cached = true;
    job.summary = "cache hit (" + std::to_string(artifact.size()) + " bytes)";
    if (!options_.results_dir.empty()) {
      job.artifact_file = ArtifactFileName(spec, hash);
      WriteFileAtomic(options_.results_dir + "/" + job.artifact_file, artifact);
    }
    result.cached = true;
    if (reg != nullptr) {
      reg->Add(km.cache_hits, 1);
    }
    jobs_.emplace(job.id, job);
    Emit(jobs_.at(job.id));
    return result;
  }

  job.state = JobState::kQueued;
  jobs_.emplace(job.id, job);
  in_flight_.emplace(hash, job.id);
  queue_.push_back(job.id);
  UpdateGaugesLocked();
  Emit(jobs_.at(job.id));
  cv_.notify_one();
  return result;
}

void JobRunner::WorkerLoop() {
  for (;;) {
    uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;  // drain: leave the queue for persistence
      }
      id = queue_.front();
      queue_.pop_front();
      ++running_;
      JobInfo& job = jobs_.at(id);
      job.state = JobState::kRunning;
      UpdateGaugesLocked();
      Emit(job);
    }

    // Execute without the lock — this is the long part.
    JobSpec spec;
    {
      std::lock_guard<std::mutex> lock(mu_);
      spec = jobs_.at(id).spec;
    }
    obs::Registry* reg = options_.metrics;
    const uint64_t exec_t0 = reg != nullptr ? obs::MonotonicNanos() : 0;
    const JobOutcome outcome = ExecuteSpec(spec);
    if (reg != nullptr) {
      const KindMetrics& km = kind_metrics_[static_cast<size_t>(spec.kind)];
      reg->Observe(km.duration_us, (obs::MonotonicNanos() - exec_t0) / 1000);
      reg->Add(outcome.ok ? km.done : km.failed, 1);
    }

    std::lock_guard<std::mutex> lock(mu_);
    JobInfo& job = jobs_.at(id);
    if (outcome.ok) {
      if (cache_ != nullptr) {
        cache_->Put(job.hash, ToString(spec.kind), outcome.artifact);
      }
      if (!options_.results_dir.empty()) {
        job.artifact_file = ArtifactFileName(spec, job.hash);
        WriteFileAtomic(options_.results_dir + "/" + job.artifact_file,
                        outcome.artifact);
      }
      job.state = JobState::kDone;
      job.summary = outcome.summary;
    } else {
      job.state = JobState::kFailed;
      job.error = outcome.error;
    }
    in_flight_.erase(job.hash);
    --running_;
    UpdateGaugesLocked();
    Emit(job);
    cv_.notify_all();  // wakes Stop() waiting on running jobs
  }
}

bool JobRunner::GetJob(uint64_t id, JobInfo* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

std::vector<JobInfo> JobRunner::ListJobs() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    out.push_back(job);
  }
  return out;
}

std::vector<JobEvent> JobRunner::EventsSince(uint64_t after_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobEvent> out;
  for (const JobEvent& event : events_) {
    if (event.seq > after_seq) {
      out.push_back(event);
    }
  }
  return out;
}

uint64_t JobRunner::last_seq() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_event_seq_ - 1;
}

bool JobRunner::GetArtifact(uint64_t id, std::string* artifact) {
  std::string hash;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::kDone) {
      return false;
    }
    hash = it->second.hash;
  }
  return cache_ != nullptr && cache_->Get(hash, artifact);
}

size_t JobRunner::QueuedCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t JobRunner::RunningCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void JobRunner::PersistQueueLocked() {
  if (options_.queue_path.empty()) {
    return;
  }
  if (queue_.empty()) {
    std::error_code ec;
    std::filesystem::remove(options_.queue_path, ec);
    return;
  }
  report::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("easeio-queue/1");
  w.Key("jobs").BeginArray();
  for (const uint64_t id : queue_) {
    w.Raw(ToJson(jobs_.at(id).spec));
  }
  w.EndArray();
  w.EndObject();
  WriteFileAtomic(options_.queue_path, w.TakeString() + "\n");
}

void JobRunner::LoadPersistedQueue() {
  if (options_.queue_path.empty()) {
    return;
  }
  std::string data;
  if (!ReadFile(options_.queue_path, &data)) {
    return;
  }
  std::error_code ec;
  std::filesystem::remove(options_.queue_path, ec);

  JsonValue doc;
  std::string error;
  if (!ParseJson(data, &doc, &error)) {
    std::fprintf(stderr, "easeiod: ignoring malformed %s: %s\n",
                 options_.queue_path.c_str(), error.c_str());
    return;
  }
  const JsonValue* jobs = doc.Find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    return;
  }
  for (const JsonValue& item : jobs->Items()) {
    JobSpec spec;
    if (ParseJobSpec(item, &spec, &error)) {
      Submit(spec);
    } else {
      std::fprintf(stderr, "easeiod: dropping persisted job: %s\n", error.c_str());
    }
  }
}

void JobRunner::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  PersistQueueLocked();
}

}  // namespace easeio::daemon
