#include "daemon/runner.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "daemon/fsio.h"
#include "platform/parallel.h"
#include "report/json.h"

namespace easeio::daemon {

const char* ToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

JobRunner::JobRunner(ResultCache* cache, Options options, EventSink sink)
    : cache_(cache), options_(std::move(options)), sink_(std::move(sink)) {}

JobRunner::~JobRunner() { Stop(); }

void JobRunner::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      return;
    }
    started_ = true;
  }
  // A drained queue is resubmitted before workers exist, so the persisted order is
  // also the re-execution order.
  LoadPersistedQueue();
  const uint32_t workers = platform::ResolveJobs(options_.workers, SIZE_MAX);
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void JobRunner::Emit(const JobInfo& job) {
  JobEvent event;
  event.seq = next_event_seq_++;
  event.job_id = job.id;
  event.state = ToString(job.state);
  event.kind = ToString(job.spec.kind);
  event.hash = job.hash;
  event.cached = job.cached;
  event.summary = job.summary;
  event.error = job.error;
  events_.push_back(event);
  if (sink_) {
    sink_(event);
  }
}

JobRunner::SubmitResult JobRunner::Submit(const JobSpec& spec) {
  const std::string hash = ContentHash(spec);
  SubmitResult result;
  result.hash = hash;

  std::lock_guard<std::mutex> lock(mu_);

  // In-flight dedup: a queued or running job with the same hash adopts this
  // submission — the work runs once and the caller watches that job's events.
  const auto in_flight = in_flight_.find(hash);
  if (in_flight != in_flight_.end()) {
    result.job_id = in_flight->second;
    result.deduped = true;
    return result;
  }

  JobInfo job;
  job.id = next_job_id_++;
  job.spec = spec;
  job.hash = hash;
  result.job_id = job.id;

  std::string artifact;
  if (cache_ != nullptr && cache_->Get(hash, &artifact)) {
    // Cache hit: the job is born done; the stored artifact is the result.
    job.state = JobState::kDone;
    job.cached = true;
    job.summary = "cache hit (" + std::to_string(artifact.size()) + " bytes)";
    if (!options_.results_dir.empty()) {
      job.artifact_file = ArtifactFileName(spec, hash);
      WriteFileAtomic(options_.results_dir + "/" + job.artifact_file, artifact);
    }
    result.cached = true;
    jobs_.emplace(job.id, job);
    Emit(jobs_.at(job.id));
    return result;
  }

  job.state = JobState::kQueued;
  jobs_.emplace(job.id, job);
  in_flight_.emplace(hash, job.id);
  queue_.push_back(job.id);
  Emit(jobs_.at(job.id));
  cv_.notify_one();
  return result;
}

void JobRunner::WorkerLoop() {
  for (;;) {
    uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;  // drain: leave the queue for persistence
      }
      id = queue_.front();
      queue_.pop_front();
      ++running_;
      JobInfo& job = jobs_.at(id);
      job.state = JobState::kRunning;
      Emit(job);
    }

    // Execute without the lock — this is the long part.
    JobSpec spec;
    {
      std::lock_guard<std::mutex> lock(mu_);
      spec = jobs_.at(id).spec;
    }
    const JobOutcome outcome = ExecuteSpec(spec);

    std::lock_guard<std::mutex> lock(mu_);
    JobInfo& job = jobs_.at(id);
    if (outcome.ok) {
      if (cache_ != nullptr) {
        cache_->Put(job.hash, ToString(spec.kind), outcome.artifact);
      }
      if (!options_.results_dir.empty()) {
        job.artifact_file = ArtifactFileName(spec, job.hash);
        WriteFileAtomic(options_.results_dir + "/" + job.artifact_file,
                        outcome.artifact);
      }
      job.state = JobState::kDone;
      job.summary = outcome.summary;
    } else {
      job.state = JobState::kFailed;
      job.error = outcome.error;
    }
    in_flight_.erase(job.hash);
    --running_;
    Emit(job);
    cv_.notify_all();  // wakes Stop() waiting on running jobs
  }
}

bool JobRunner::GetJob(uint64_t id, JobInfo* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

std::vector<JobInfo> JobRunner::ListJobs() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    out.push_back(job);
  }
  return out;
}

std::vector<JobEvent> JobRunner::EventsSince(uint64_t after_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobEvent> out;
  for (const JobEvent& event : events_) {
    if (event.seq > after_seq) {
      out.push_back(event);
    }
  }
  return out;
}

uint64_t JobRunner::last_seq() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_event_seq_ - 1;
}

bool JobRunner::GetArtifact(uint64_t id, std::string* artifact) {
  std::string hash;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::kDone) {
      return false;
    }
    hash = it->second.hash;
  }
  return cache_ != nullptr && cache_->Get(hash, artifact);
}

size_t JobRunner::QueuedCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t JobRunner::RunningCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void JobRunner::PersistQueueLocked() {
  if (options_.queue_path.empty()) {
    return;
  }
  if (queue_.empty()) {
    std::error_code ec;
    std::filesystem::remove(options_.queue_path, ec);
    return;
  }
  report::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("easeio-queue/1");
  w.Key("jobs").BeginArray();
  for (const uint64_t id : queue_) {
    w.Raw(ToJson(jobs_.at(id).spec));
  }
  w.EndArray();
  w.EndObject();
  WriteFileAtomic(options_.queue_path, w.TakeString() + "\n");
}

void JobRunner::LoadPersistedQueue() {
  if (options_.queue_path.empty()) {
    return;
  }
  std::string data;
  if (!ReadFile(options_.queue_path, &data)) {
    return;
  }
  std::error_code ec;
  std::filesystem::remove(options_.queue_path, ec);

  JsonValue doc;
  std::string error;
  if (!ParseJson(data, &doc, &error)) {
    std::fprintf(stderr, "easeiod: ignoring malformed %s: %s\n",
                 options_.queue_path.c_str(), error.c_str());
    return;
  }
  const JsonValue* jobs = doc.Find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    return;
  }
  for (const JsonValue& item : jobs->Items()) {
    JobSpec spec;
    if (ParseJobSpec(item, &spec, &error)) {
      Submit(spec);
    } else {
      std::fprintf(stderr, "easeiod: dropping persisted job: %s\n", error.c_str());
    }
  }
}

void JobRunner::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  PersistQueueLocked();
}

}  // namespace easeio::daemon
