#include "daemon/fsio.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace easeio::daemon {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) {
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace easeio::daemon
