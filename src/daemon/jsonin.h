// Minimal strict JSON parser for the easeiod wire protocol.
//
// The repository's JsonWriter (report/json.h) only writes; the daemon must also
// *read* — every protocol frame a client sends is one JSON object on one line. This
// parser is deliberately small and defensive: full syntax validation, a recursion
// depth cap (malicious nesting must produce an error reply, not a stack overflow),
// duplicate-key rejection inside objects, and no implicit conversions. Numbers keep
// their raw text so 64-bit integers round-trip without double truncation.

#ifndef EASEIO_DAEMON_JSONIN_H_
#define EASEIO_DAEMON_JSONIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace easeio::daemon {

class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null; the usual out-parameter for ParseJson

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Value accessors; only valid for the matching type.
  bool AsBool() const { return bool_; }
  const std::string& AsString() const { return str_; }  // decoded string value
  const std::string& RawNumber() const { return str_; }  // verbatim number text
  const std::vector<JsonValue>& Items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }

  // Numeric conversions from the raw text; false when not a number, the text does
  // not fit, or (for the unsigned form) it is negative or fractional.
  bool GetUint(uint64_t* out) const;
  bool GetDouble(double* out) const;

  // Object member lookup; nullptr when absent or this is not an object.
  const JsonValue* Find(std::string_view key) const;

  // Builders used by the parser (and tests).
  static JsonValue MakeNull() { return JsonValue(Type::kNull); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(std::string raw);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  explicit JsonValue(Type type) : type_(type) {}

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string str_;  // string value, or raw number text
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses exactly one JSON document occupying the whole input (surrounding
// whitespace allowed). On failure returns false and fills `error` with a
// position-tagged message. Nesting beyond `max_depth` is an error.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error,
               int max_depth = 32);

// Serializes a string with JSON escaping, including the surrounding quotes.
// (Writing frames goes through report::JsonWriter; this helper exists for the
// places that splice a key or message into a handwritten frame.)
std::string QuoteJsonString(std::string_view s);

}  // namespace easeio::daemon

#endif  // EASEIO_DAEMON_JSONIN_H_
