#include "daemon/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics_export.h"
#include "report/json.h"

namespace easeio::daemon {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string ErrorReply(const std::string& message) {
  report::JsonWriter w;
  w.BeginObject().Key("ok").Bool(false).Key("error").String(message).EndObject();
  return w.TakeString();
}

void WriteCacheStats(report::JsonWriter& w, const CacheStats& stats) {
  w.Key("cache").BeginObject();
  w.Key("hits").UInt(stats.hits);
  w.Key("misses").UInt(stats.misses);
  w.Key("puts").UInt(stats.puts);
  w.Key("evictions").UInt(stats.evictions);
  w.Key("entries").UInt(stats.entries);
  w.Key("bytes").UInt(stats.bytes);
  w.Key("cap_bytes").UInt(stats.cap_bytes);
  w.EndObject();
}

std::string EventFrame(const JobEvent& event) {
  report::JsonWriter w;
  w.BeginObject();
  w.Key("event").BeginObject();
  w.Key("seq").UInt(event.seq);
  w.Key("id").UInt(event.job_id);
  w.Key("state").String(event.state);
  w.Key("kind").String(event.kind);
  w.Key("hash").String(event.hash);
  w.Key("cached").Bool(event.cached);
  if (!event.summary.empty()) {
    w.Key("summary").String(event.summary);
  }
  if (!event.error.empty()) {
    w.Key("error").String(event.error);
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace

Server::Server(JobRunner* runner, ResultCache* cache, Options options)
    : runner_(runner), cache_(cache), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    // Gauges mirroring the cache's own counters at read time; the cache keeps the
    // authoritative totals, the registry only exposes them. Registered here so no
    // registration happens once worker threads exist.
    static const char* const kNames[7] = {
        "easeiod_cache_hits",    "easeiod_cache_misses",  "easeiod_cache_puts",
        "easeiod_cache_evictions", "easeiod_cache_entries", "easeiod_cache_bytes",
        "easeiod_cache_cap_bytes"};
    for (int i = 0; i < 7; ++i) {
      cache_gauges_[i] = options_.metrics->Gauge(kNames[i]);
    }
  }
}

void Server::RefreshCacheMetrics() {
  if (options_.metrics == nullptr || cache_ == nullptr) {
    return;
  }
  const CacheStats stats = cache_->Stats();
  const uint64_t values[7] = {stats.hits,    stats.misses,  stats.puts,
                              stats.evictions, stats.entries, stats.bytes,
                              stats.cap_bytes};
  for (int i = 0; i < 7; ++i) {
    options_.metrics->Set(cache_gauges_[i], static_cast<int64_t>(values[i]));
  }
}

Server::~Server() {
  for (Client& client : clients_) {
    if (client.fd >= 0) {
      close(client.fd);
    }
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    unlink(options_.socket_path.c_str());
  }
  if (wake_read_fd_ >= 0) {
    close(wake_read_fd_);
  }
  if (wake_write_fd_ >= 0) {
    close(wake_write_fd_);
  }
}

bool Server::Listen(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + options_.socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  unlink(options_.socket_path.c_str());
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "bind " + options_.socket_path + ": " + std::strerror(errno);
    return false;
  }
  if (listen(listen_fd_, 64) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  SetNonBlocking(listen_fd_);
  return true;
}

void Server::OnJobEvent(const JobEvent& event) {
  {
    std::lock_guard<std::mutex> lock(event_mu_);
    pending_events_.push_back(event);
  }
  WakeLoop();
}

void Server::WakeLoop() {
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wake-up.
  [[maybe_unused]] const ssize_t n = write(wake_write_fd_, &byte, 1);
}

bool Server::FlushClient(Client& client) {
  // send(MSG_NOSIGNAL) instead of write(): a peer that closed mid-flush must
  // surface as EPIPE here, not as a process-killing SIGPIPE — the server can be
  // embedded (tests, other hosts) without easeiod_main's signal(SIGPIPE, SIG_IGN).
  bool blocked = false;
  while (client.out_off < client.outbuf.size()) {
    const ssize_t n = send(client.fd, client.outbuf.data() + client.out_off,
                           client.outbuf.size() - client.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      client.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      blocked = true;  // poll for POLLOUT
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // peer gone
  }
  if (!blocked) {
    client.outbuf.clear();
    client.out_off = 0;
  } else if (client.out_off >= 1 << 20 &&
             client.out_off * 2 >= client.outbuf.size()) {
    // Compact once the sent prefix dominates: keeps a many-megabyte response from
    // pinning twice its size while a slow reader drains it, without reintroducing
    // the per-write erase(0, n) quadratic cost this cursor replaced.
    client.outbuf.erase(0, client.out_off);
    client.out_off = 0;
  }
  return true;
}

void Server::SendEvents(Client& client) {
  for (const JobEvent& event : runner_->EventsSince(client.watch_sent_seq)) {
    client.outbuf += EventFrame(event) + "\n";
    client.watch_sent_seq = event.seq;
  }
}

void Server::HandleFrame(Client& client, const std::string& frame) {
  // Skip blank lines (a trailing newline from a shell client is not an error).
  if (frame.find_first_not_of(" \t\r") == std::string::npos) {
    return;
  }

  const auto reply = [&client](const std::string& json) {
    client.outbuf += json + "\n";
  };

  JsonValue doc;
  std::string error;
  if (!ParseJson(frame, &doc, &error)) {
    reply(ErrorReply("malformed frame: " + error));
    return;
  }
  const JsonValue* op_field = doc.is_object() ? doc.Find("op") : nullptr;
  if (op_field == nullptr || !op_field->is_string()) {
    reply(ErrorReply("malformed frame: missing \"op\" string"));
    return;
  }
  const std::string op = op_field->AsString();

  if (op == "submit") {
    const JsonValue* job_field = doc.Find("job");
    if (job_field == nullptr) {
      reply(ErrorReply("submit: missing \"job\" object"));
      return;
    }
    JobSpec spec;
    if (!ParseJobSpec(*job_field, &spec, &error)) {
      reply(ErrorReply("submit: " + error));
      return;
    }
    const JobRunner::SubmitResult result = runner_->Submit(spec);
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("submit");
    w.Key("id").UInt(result.job_id);
    w.Key("hash").String(result.hash);
    w.Key("cached").Bool(result.cached);
    w.Key("deduped").Bool(result.deduped);
    w.EndObject();
    reply(w.TakeString());
  } else if (op == "status") {
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("status");
    w.Key("schema").String("easeio-daemon/1");
    w.Key("queued").UInt(runner_->QueuedCount());
    w.Key("running").UInt(runner_->RunningCount());
    w.Key("last_seq").UInt(runner_->last_seq());
    w.Key("jobs").BeginArray();
    for (const JobInfo& job : runner_->ListJobs()) {
      w.BeginObject();
      w.Key("id").UInt(job.id);
      w.Key("kind").String(ToString(job.spec.kind));
      w.Key("state").String(ToString(job.state));
      w.Key("hash").String(job.hash);
      w.Key("cached").Bool(job.cached);
      if (!job.summary.empty()) {
        w.Key("summary").String(job.summary);
      }
      if (!job.error.empty()) {
        w.Key("error").String(job.error);
      }
      if (!job.artifact_file.empty()) {
        w.Key("artifact_file").String(job.artifact_file);
      }
      w.EndObject();
    }
    w.EndArray();
    WriteCacheStats(w, cache_->Stats());
    w.EndObject();
    reply(w.TakeString());
  } else if (op == "watch") {
    uint64_t after = 0;
    if (const JsonValue* after_field = doc.Find("after")) {
      if (!after_field->GetUint(&after)) {
        reply(ErrorReply("watch: \"after\" must be an unsigned integer"));
        return;
      }
    }
    client.watching = true;
    client.watch_sent_seq = after;
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("watch");
    w.Key("last_seq").UInt(runner_->last_seq());
    w.EndObject();
    reply(w.TakeString());
    SendEvents(client);  // catch-up; live events follow via OnJobEvent
  } else if (op == "results") {
    const JsonValue* id_field = doc.Find("id");
    uint64_t id = 0;
    if (id_field == nullptr || !id_field->GetUint(&id)) {
      reply(ErrorReply("results: missing \"id\""));
      return;
    }
    JobInfo job;
    std::string artifact;
    if (!runner_->GetJob(id, &job)) {
      reply(ErrorReply("results: unknown job id " + std::to_string(id)));
      return;
    }
    if (job.state != JobState::kDone || !runner_->GetArtifact(id, &artifact)) {
      reply(ErrorReply("results: job " + std::to_string(id) + " is " +
                       ToString(job.state) +
                       (job.state == JobState::kFailed ? ": " + job.error : "")));
      return;
    }
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("results");
    w.Key("id").UInt(id);
    w.Key("hash").String(job.hash);
    w.Key("artifact").String(artifact);
    w.EndObject();
    reply(w.TakeString());
  } else if (op == "metrics") {
    if (options_.metrics == nullptr) {
      reply(ErrorReply("metrics: registry not enabled"));
      return;
    }
    std::string format = "json";
    if (const JsonValue* format_field = doc.Find("format")) {
      if (!format_field->is_string()) {
        reply(ErrorReply("metrics: \"format\" must be a string"));
        return;
      }
      format = format_field->AsString();
    }
    if (format != "json" && format != "prometheus") {
      reply(ErrorReply("metrics: unknown format '" + format +
                       "' (expected json or prometheus)"));
      return;
    }
    RefreshCacheMetrics();
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("metrics");
    if (format == "prometheus") {
      w.Key("format").String("prometheus");
      w.Key("text").String(obs::MetricsToPrometheus(*options_.metrics));
    } else {
      // The easeio-metrics/1 document is already canonical JSON; embed it raw.
      w.Key("metrics").Raw(obs::MetricsToJson(*options_.metrics));
    }
    w.EndObject();
    reply(w.TakeString());
  } else if (op == "cache-stats") {
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("cache-stats");
    WriteCacheStats(w, cache_->Stats());
    w.EndObject();
    reply(w.TakeString());
  } else if (op == "shutdown") {
    report::JsonWriter w;
    w.BeginObject().Key("ok").Bool(true).Key("op").String("shutdown").EndObject();
    reply(w.TakeString());
    shutdown_requested_ = true;
  } else {
    reply(ErrorReply("unknown op: " + op));
  }
}

void Server::Run() {
  const uint64_t metrics_period_ns = options_.metrics_period_ms * 1'000'000ull;
  const bool periodic_metrics = options_.metrics != nullptr && metrics_period_ns > 0;
  uint64_t last_metrics_ns = periodic_metrics ? obs::MonotonicNanos() : 0;
  while (!shutdown_requested_) {
    if (options_.shutdown_flag != nullptr &&
        options_.shutdown_flag->load(std::memory_order_relaxed)) {
      break;
    }

    std::vector<pollfd> fds;
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    bool any_watcher = false;
    for (const Client& client : clients_) {
      short events = POLLIN;
      if (PendingOutput(client) > 0) {
        events |= POLLOUT;
      }
      fds.push_back({client.fd, events, 0});
      any_watcher = any_watcher || (client.watching && !client.closing);
    }

    // The loop sleeps indefinitely unless periodic metrics frames are owed to a
    // watch subscriber, in which case it wakes at the period boundary. A timeout
    // expiry leaves every revents zero, which the code below handles naturally.
    int timeout_ms = -1;
    if (periodic_metrics && any_watcher) {
      const uint64_t since = obs::MonotonicNanos() - last_metrics_ns;
      const uint64_t remaining_ns =
          since >= metrics_period_ns ? 0 : metrics_period_ns - since;
      timeout_ms = static_cast<int>(remaining_ns / 1'000'000ull) + 1;
    }

    if (poll(fds.data(), fds.size(), timeout_ms) < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }

    // Wake pipe: drain it, then fan queued job events out to subscribers. The
    // runner's event log is the source of truth (SendEvents filters by last-sent
    // seq), so the pending queue is only a "something happened" signal.
    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_read_fd_, buf, sizeof buf) > 0) {
      }
    }
    {
      std::lock_guard<std::mutex> lock(event_mu_);
      pending_events_.clear();
    }
    for (Client& client : clients_) {
      if (client.watching) {
        SendEvents(client);
      }
    }

    // Periodic metrics frames for watch subscribers: one shared exposition per
    // tick, appended to every subscriber's buffer. Consumers that only understand
    // job events skip frames without an "event" key, so this is backward
    // compatible on the existing stream.
    if (periodic_metrics && obs::MonotonicNanos() - last_metrics_ns >= metrics_period_ns) {
      std::string frame;
      for (Client& client : clients_) {
        if (!client.watching || client.closing) {
          continue;
        }
        if (frame.empty()) {
          RefreshCacheMetrics();
          frame = "{\"metrics\":" + obs::MetricsToJson(*options_.metrics) + "}\n";
        }
        client.outbuf += frame;
      }
      // Reset even with no subscribers, so the first tick after one arrives is a
      // full period out, not an immediate burst.
      last_metrics_ns = obs::MonotonicNanos();
    }

    if (fds[1].revents & POLLIN) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          break;
        }
        SetNonBlocking(fd);
        if (options_.sndbuf_bytes > 0) {
          const int bytes = static_cast<int>(options_.sndbuf_bytes);
          setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
        }
        Client client;
        client.fd = fd;
        clients_.push_back(std::move(client));
      }
    }

    // fds[i + 2] pairs with clients_[i]; new accepts above were not polled yet.
    const size_t polled = fds.size() - 2;
    for (size_t i = 0; i < polled; ++i) {
      Client& client = clients_[i];
      if (fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[64 * 1024];
        for (;;) {
          const ssize_t n = read(client.fd, buf, sizeof buf);
          if (n > 0) {
            client.inbuf.append(buf, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          }
          if (n < 0 && errno == EINTR) {
            continue;
          }
          client.closing = true;  // EOF or hard error: flush what we owe, then drop
          break;
        }
        size_t start = 0;
        for (size_t nl = client.inbuf.find('\n', start); nl != std::string::npos;
             nl = client.inbuf.find('\n', start)) {
          HandleFrame(client, client.inbuf.substr(start, nl - start));
          start = nl + 1;
        }
        client.inbuf.erase(0, start);
        if (client.inbuf.size() > options_.max_frame_bytes) {
          client.outbuf += ErrorReply("frame exceeds size cap") + "\n";
          client.closing = true;
        }
      }
    }

    // Flush everyone with output owed; drop dead peers, drained closers, and
    // stalled clients whose unsent backlog exceeded the cap (a watcher that
    // stopped reading must not grow the daemon's memory without bound — and must
    // not wedge this loop, which never blocks on any one client).
    for (size_t i = 0; i < clients_.size();) {
      const bool alive = FlushClient(clients_[i]) &&
                         PendingOutput(clients_[i]) <= options_.max_client_outbuf;
      if (!alive || (clients_[i].closing && PendingOutput(clients_[i]) == 0)) {
        close(clients_[i].fd);
        clients_.erase(clients_.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }

  // Best-effort flush of pending replies (the shutdown ack in particular) before
  // the caller starts the drain.
  for (int attempt = 0; attempt < 50; ++attempt) {
    bool owed = false;
    for (Client& client : clients_) {
      if (PendingOutput(client) > 0) {
        pollfd pfd{client.fd, POLLOUT, 0};
        poll(&pfd, 1, 100);
        FlushClient(client);
        owed = owed || PendingOutput(client) > 0;
      }
    }
    if (!owed) {
      break;
    }
  }

  // The loop is done for good: hang up on every client so they see a definitive
  // EOF after the flushed ack instead of a connection that dies with the process.
  for (Client& client : clients_) {
    close(client.fd);
  }
  clients_.clear();
}

}  // namespace easeio::daemon
