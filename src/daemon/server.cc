#include "daemon/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "report/json.h"

namespace easeio::daemon {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string ErrorReply(const std::string& message) {
  report::JsonWriter w;
  w.BeginObject().Key("ok").Bool(false).Key("error").String(message).EndObject();
  return w.TakeString();
}

void WriteCacheStats(report::JsonWriter& w, const CacheStats& stats) {
  w.Key("cache").BeginObject();
  w.Key("hits").UInt(stats.hits);
  w.Key("misses").UInt(stats.misses);
  w.Key("puts").UInt(stats.puts);
  w.Key("evictions").UInt(stats.evictions);
  w.Key("entries").UInt(stats.entries);
  w.Key("bytes").UInt(stats.bytes);
  w.Key("cap_bytes").UInt(stats.cap_bytes);
  w.EndObject();
}

std::string EventFrame(const JobEvent& event) {
  report::JsonWriter w;
  w.BeginObject();
  w.Key("event").BeginObject();
  w.Key("seq").UInt(event.seq);
  w.Key("id").UInt(event.job_id);
  w.Key("state").String(event.state);
  w.Key("kind").String(event.kind);
  w.Key("hash").String(event.hash);
  w.Key("cached").Bool(event.cached);
  if (!event.summary.empty()) {
    w.Key("summary").String(event.summary);
  }
  if (!event.error.empty()) {
    w.Key("error").String(event.error);
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace

Server::Server(JobRunner* runner, ResultCache* cache, Options options)
    : runner_(runner), cache_(cache), options_(std::move(options)) {}

Server::~Server() {
  for (Client& client : clients_) {
    if (client.fd >= 0) {
      close(client.fd);
    }
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    unlink(options_.socket_path.c_str());
  }
  if (wake_read_fd_ >= 0) {
    close(wake_read_fd_);
  }
  if (wake_write_fd_ >= 0) {
    close(wake_write_fd_);
  }
}

bool Server::Listen(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + options_.socket_path;
    return false;
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof(addr.sun_path) - 1);

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  unlink(options_.socket_path.c_str());
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "bind " + options_.socket_path + ": " + std::strerror(errno);
    return false;
  }
  if (listen(listen_fd_, 64) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  SetNonBlocking(listen_fd_);
  return true;
}

void Server::OnJobEvent(const JobEvent& event) {
  {
    std::lock_guard<std::mutex> lock(event_mu_);
    pending_events_.push_back(event);
  }
  WakeLoop();
}

void Server::WakeLoop() {
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wake-up.
  [[maybe_unused]] const ssize_t n = write(wake_write_fd_, &byte, 1);
}

bool Server::FlushClient(Client& client) {
  while (!client.outbuf.empty()) {
    const ssize_t n = write(client.fd, client.outbuf.data(), client.outbuf.size());
    if (n > 0) {
      client.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // poll for POLLOUT
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // peer gone
  }
  return true;
}

void Server::SendEvents(Client& client) {
  for (const JobEvent& event : runner_->EventsSince(client.watch_sent_seq)) {
    client.outbuf += EventFrame(event) + "\n";
    client.watch_sent_seq = event.seq;
  }
}

void Server::HandleFrame(Client& client, const std::string& frame) {
  // Skip blank lines (a trailing newline from a shell client is not an error).
  if (frame.find_first_not_of(" \t\r") == std::string::npos) {
    return;
  }

  const auto reply = [&client](const std::string& json) {
    client.outbuf += json + "\n";
  };

  JsonValue doc;
  std::string error;
  if (!ParseJson(frame, &doc, &error)) {
    reply(ErrorReply("malformed frame: " + error));
    return;
  }
  const JsonValue* op_field = doc.is_object() ? doc.Find("op") : nullptr;
  if (op_field == nullptr || !op_field->is_string()) {
    reply(ErrorReply("malformed frame: missing \"op\" string"));
    return;
  }
  const std::string op = op_field->AsString();

  if (op == "submit") {
    const JsonValue* job_field = doc.Find("job");
    if (job_field == nullptr) {
      reply(ErrorReply("submit: missing \"job\" object"));
      return;
    }
    JobSpec spec;
    if (!ParseJobSpec(*job_field, &spec, &error)) {
      reply(ErrorReply("submit: " + error));
      return;
    }
    const JobRunner::SubmitResult result = runner_->Submit(spec);
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("submit");
    w.Key("id").UInt(result.job_id);
    w.Key("hash").String(result.hash);
    w.Key("cached").Bool(result.cached);
    w.Key("deduped").Bool(result.deduped);
    w.EndObject();
    reply(w.TakeString());
  } else if (op == "status") {
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("status");
    w.Key("schema").String("easeio-daemon/1");
    w.Key("queued").UInt(runner_->QueuedCount());
    w.Key("running").UInt(runner_->RunningCount());
    w.Key("last_seq").UInt(runner_->last_seq());
    w.Key("jobs").BeginArray();
    for (const JobInfo& job : runner_->ListJobs()) {
      w.BeginObject();
      w.Key("id").UInt(job.id);
      w.Key("kind").String(ToString(job.spec.kind));
      w.Key("state").String(ToString(job.state));
      w.Key("hash").String(job.hash);
      w.Key("cached").Bool(job.cached);
      if (!job.summary.empty()) {
        w.Key("summary").String(job.summary);
      }
      if (!job.error.empty()) {
        w.Key("error").String(job.error);
      }
      if (!job.artifact_file.empty()) {
        w.Key("artifact_file").String(job.artifact_file);
      }
      w.EndObject();
    }
    w.EndArray();
    WriteCacheStats(w, cache_->Stats());
    w.EndObject();
    reply(w.TakeString());
  } else if (op == "watch") {
    uint64_t after = 0;
    if (const JsonValue* after_field = doc.Find("after")) {
      if (!after_field->GetUint(&after)) {
        reply(ErrorReply("watch: \"after\" must be an unsigned integer"));
        return;
      }
    }
    client.watching = true;
    client.watch_sent_seq = after;
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("watch");
    w.Key("last_seq").UInt(runner_->last_seq());
    w.EndObject();
    reply(w.TakeString());
    SendEvents(client);  // catch-up; live events follow via OnJobEvent
  } else if (op == "results") {
    const JsonValue* id_field = doc.Find("id");
    uint64_t id = 0;
    if (id_field == nullptr || !id_field->GetUint(&id)) {
      reply(ErrorReply("results: missing \"id\""));
      return;
    }
    JobInfo job;
    std::string artifact;
    if (!runner_->GetJob(id, &job)) {
      reply(ErrorReply("results: unknown job id " + std::to_string(id)));
      return;
    }
    if (job.state != JobState::kDone || !runner_->GetArtifact(id, &artifact)) {
      reply(ErrorReply("results: job " + std::to_string(id) + " is " +
                       ToString(job.state) +
                       (job.state == JobState::kFailed ? ": " + job.error : "")));
      return;
    }
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("results");
    w.Key("id").UInt(id);
    w.Key("hash").String(job.hash);
    w.Key("artifact").String(artifact);
    w.EndObject();
    reply(w.TakeString());
  } else if (op == "cache-stats") {
    report::JsonWriter w;
    w.BeginObject();
    w.Key("ok").Bool(true);
    w.Key("op").String("cache-stats");
    WriteCacheStats(w, cache_->Stats());
    w.EndObject();
    reply(w.TakeString());
  } else if (op == "shutdown") {
    report::JsonWriter w;
    w.BeginObject().Key("ok").Bool(true).Key("op").String("shutdown").EndObject();
    reply(w.TakeString());
    shutdown_requested_ = true;
  } else {
    reply(ErrorReply("unknown op: " + op));
  }
}

void Server::Run() {
  while (!shutdown_requested_) {
    if (options_.shutdown_flag != nullptr &&
        options_.shutdown_flag->load(std::memory_order_relaxed)) {
      break;
    }

    std::vector<pollfd> fds;
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Client& client : clients_) {
      short events = POLLIN;
      if (!client.outbuf.empty()) {
        events |= POLLOUT;
      }
      fds.push_back({client.fd, events, 0});
    }

    if (poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }

    // Wake pipe: drain it, then fan queued job events out to subscribers. The
    // runner's event log is the source of truth (SendEvents filters by last-sent
    // seq), so the pending queue is only a "something happened" signal.
    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_read_fd_, buf, sizeof buf) > 0) {
      }
    }
    {
      std::lock_guard<std::mutex> lock(event_mu_);
      pending_events_.clear();
    }
    for (Client& client : clients_) {
      if (client.watching) {
        SendEvents(client);
      }
    }

    if (fds[1].revents & POLLIN) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          break;
        }
        SetNonBlocking(fd);
        Client client;
        client.fd = fd;
        clients_.push_back(std::move(client));
      }
    }

    // fds[i + 2] pairs with clients_[i]; new accepts above were not polled yet.
    const size_t polled = fds.size() - 2;
    for (size_t i = 0; i < polled; ++i) {
      Client& client = clients_[i];
      if (fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[64 * 1024];
        for (;;) {
          const ssize_t n = read(client.fd, buf, sizeof buf);
          if (n > 0) {
            client.inbuf.append(buf, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          }
          if (n < 0 && errno == EINTR) {
            continue;
          }
          client.closing = true;  // EOF or hard error: flush what we owe, then drop
          break;
        }
        size_t start = 0;
        for (size_t nl = client.inbuf.find('\n', start); nl != std::string::npos;
             nl = client.inbuf.find('\n', start)) {
          HandleFrame(client, client.inbuf.substr(start, nl - start));
          start = nl + 1;
        }
        client.inbuf.erase(0, start);
        if (client.inbuf.size() > options_.max_frame_bytes) {
          client.outbuf += ErrorReply("frame exceeds size cap") + "\n";
          client.closing = true;
        }
      }
    }

    // Flush everyone with output owed; drop dead peers and drained closers.
    for (size_t i = 0; i < clients_.size();) {
      const bool alive = FlushClient(clients_[i]);
      if (!alive || (clients_[i].closing && clients_[i].outbuf.empty())) {
        close(clients_[i].fd);
        clients_.erase(clients_.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }

  // Best-effort flush of pending replies (the shutdown ack in particular) before
  // the caller starts the drain.
  for (int attempt = 0; attempt < 50; ++attempt) {
    bool owed = false;
    for (Client& client : clients_) {
      if (!client.outbuf.empty()) {
        pollfd pfd{client.fd, POLLOUT, 0};
        poll(&pfd, 1, 100);
        FlushClient(client);
        owed = owed || !client.outbuf.empty();
      }
    }
    if (!owed) {
      break;
    }
  }

  // The loop is done for good: hang up on every client so they see a definitive
  // EOF after the flushed ack instead of a connection that dies with the process.
  for (Client& client : clients_) {
    close(client.fd);
  }
  clients_.clear();
}

}  // namespace easeio::daemon
