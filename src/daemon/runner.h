// The easeiod job runner: a worker pool executing JobSpecs in front of the
// content-addressed ResultCache.
//
// Submission semantics (in order):
//   1. cache hit  — the job completes immediately; the stored artifact is the result
//      and the done event carries cached = true.
//   2. in-flight dedup — a queued or running job with the same content hash adopts
//      the submission: the caller gets that job's id and will see its events, and
//      the simulation runs once.
//   3. fresh — the spec is queued and a worker executes it via ExecuteSpec; an ok
//      outcome enters the cache (and the results-dir export) keyed by content hash.
//
// Every state transition (queued -> running -> done | failed) is recorded as a
// JobEvent with a global monotonically increasing sequence number and forwarded to
// the event sink. The full event log is kept for the daemon's lifetime so a late
// `watch` subscriber can catch up from any sequence number and still observe every
// transition in order.
//
// Graceful drain: Stop() refuses new dequeues, waits for in-flight jobs to finish,
// and persists still-queued specs to `queue_path` (an easeio-queue/1 document);
// Start() resubmits and deletes that file. The invariant the drain test checks:
// every submitted job is either completed (artifact cached) or persisted — none are
// lost.

#ifndef EASEIO_DAEMON_RUNNER_H_
#define EASEIO_DAEMON_RUNNER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon/cache.h"
#include "daemon/jobspec.h"
#include "obs/metrics.h"

namespace easeio::daemon {

enum class JobState : uint8_t { kQueued, kRunning, kDone, kFailed };
const char* ToString(JobState state);

struct JobEvent {
  uint64_t seq = 0;      // global event order, starts at 1
  uint64_t job_id = 0;
  std::string state;     // ToString(JobState) at the transition
  std::string kind;      // ToString(spec.kind)
  std::string hash;      // content hash (the cache address)
  bool cached = false;   // done without executing (result served from the cache)
  std::string summary;   // one-line result description (done only)
  std::string error;     // failure reason (failed only)
};

struct JobInfo {
  uint64_t id = 0;
  JobSpec spec;
  std::string hash;
  JobState state = JobState::kQueued;
  bool cached = false;
  std::string summary;
  std::string error;
  std::string artifact_file;  // results-dir export name (empty if export disabled)
};

class JobRunner {
 public:
  struct Options {
    uint32_t workers = 0;      // worker threads; 0 = hardware concurrency
    std::string results_dir;   // artifact export directory; empty = no export
    std::string queue_path;    // drain persistence file; empty = no persistence
    // Optional metrics registry. When set, the runner registers (in the
    // constructor — before any worker thread exists) per-kind submit/done/failed/
    // cache-hit counters and job-duration histograms, plus queue-depth /
    // running-jobs / worker-count gauges maintained at every state transition.
    obs::Registry* metrics = nullptr;
  };

  // `sink` receives every JobEvent, serialized in seq order, from worker threads and
  // from the submitting thread (cache hits). It must not call back into the runner.
  using EventSink = std::function<void(const JobEvent&)>;

  JobRunner(ResultCache* cache, Options options, EventSink sink);
  ~JobRunner();

  // Spawns the workers and resubmits any queue persisted by a previous drain.
  void Start();

  struct SubmitResult {
    uint64_t job_id = 0;
    std::string hash;
    bool cached = false;   // completed immediately from the cache
    bool deduped = false;  // adopted an in-flight job with the same hash
  };
  SubmitResult Submit(const JobSpec& spec);

  bool GetJob(uint64_t id, JobInfo* out);
  std::vector<JobInfo> ListJobs();

  // Events with seq > after_seq, in order. last_seq() is the newest issued.
  std::vector<JobEvent> EventsSince(uint64_t after_seq);
  uint64_t last_seq();

  // Fetches a finished job's artifact bytes (from the cache). False if the job is
  // unknown, unfinished, failed, or the cache entry was evicted.
  bool GetArtifact(uint64_t id, std::string* artifact);

  size_t QueuedCount();
  size_t RunningCount();

  // Graceful drain (idempotent): stop dequeuing, join workers after their in-flight
  // job finishes, persist the remaining queue. The destructor calls it too.
  void Stop();

 private:
  void WorkerLoop();
  // Callers hold mu_. Appends + forwards the event for `job`'s current state.
  void Emit(const JobInfo& job);
  void PersistQueueLocked();
  void LoadPersistedQueue();
  // Callers hold mu_. Refreshes the queue-depth / running gauges. No-op without
  // a registry.
  void UpdateGaugesLocked();

  ResultCache* const cache_;
  const Options options_;
  const EventSink sink_;

  // Per-kind metric handles, indexed by static_cast<size_t>(JobKind). JobKind is
  // a closed enum, so all four kinds register upfront — no registration ever
  // happens after Start(), per the registry's concurrency contract.
  struct KindMetrics {
    obs::MetricId submitted = 0;
    obs::MetricId done = 0;      // executed to completion (excludes cache hits)
    obs::MetricId failed = 0;
    obs::MetricId cache_hits = 0;
    obs::MetricId duration_us = 0;  // ExecuteSpec latency histogram
  };
  KindMetrics kind_metrics_[kNumJobKinds];
  obs::MetricId queue_depth_gauge_ = 0;
  obs::MetricId running_gauge_ = 0;
  obs::MetricId workers_gauge_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;
  bool stopping_ = false;
  uint64_t next_job_id_ = 1;
  uint64_t next_event_seq_ = 1;
  std::map<uint64_t, JobInfo> jobs_;               // id -> job, insertion-ordered
  std::deque<uint64_t> queue_;                     // ids awaiting a worker
  std::unordered_map<std::string, uint64_t> in_flight_;  // hash -> queued/running id
  size_t running_ = 0;
  std::vector<JobEvent> events_;
  std::vector<std::thread> workers_;
};

}  // namespace easeio::daemon

#endif  // EASEIO_DAEMON_RUNNER_H_
