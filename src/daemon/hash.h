// SHA-256 content hashing for the easeiod result cache.
//
// Cache entries are addressed by the hash of a job's canonical key (jobspec.h), so
// the hash must be collision-resistant across adversarial inputs (a lint job hashes
// client-supplied program text) and stable forever — a cheap FNV would make cache
// poisoning by collision plausible and could not be changed later without
// invalidating every cache on disk. Self-contained FIPS 180-4 implementation; no
// external dependency.

#ifndef EASEIO_DAEMON_HASH_H_
#define EASEIO_DAEMON_HASH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace easeio::daemon {

// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();
  void Update(std::string_view data);
  // Finalizes and returns the 32-byte digest. The object must not be reused after.
  std::array<uint8_t, 32> Digest();

 private:
  void Compress(const uint8_t block[64]);

  std::array<uint32_t, 8> state_;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
  uint64_t total_bytes_ = 0;
};

// One-shot convenience: lowercase hex digest of `data`.
std::string Sha256Hex(std::string_view data);

}  // namespace easeio::daemon

#endif  // EASEIO_DAEMON_HASH_H_
