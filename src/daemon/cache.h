// Content-addressed result cache for easeiod.
//
// Layout on disk:
//   <dir>/objects/<hash>.json   the artifact bytes, verbatim
//   <dir>/index.tsv             one line per entry: <hash>\t<bytes>\t<seq>\t<kind>
//
// The hash is the SHA-256 of the job's canonical key (jobspec.h), so a lookup needs
// no parsing — Get() returns the stored bytes exactly as Put() received them, which
// is what lets CI assert cached artifacts are byte-identical to fresh CLI runs.
//
// Eviction is LRU by a monotonically increasing access sequence number: Put() and a
// successful Get() both bump an entry's seq, and when the object bytes exceed
// cap_bytes the lowest-seq entries are dropped (index rewrite + object unlink) until
// under the cap. A single oversized artifact is still admitted — the cap bounds
// steady state, it is not a hard write barrier. Get() bumps recency in memory only;
// the index is rewritten on Put/eviction, so a crash can lose access ordering but
// never an entry.
//
// All operations are serialized by an internal mutex; the daemon calls in from many
// worker threads. Crash tolerance is per-entry: the index is rewritten atomically
// (tmp + rename), and on load any index line whose object file is missing or has the
// wrong size is discarded, as is any orphaned object.

#ifndef EASEIO_DAEMON_CACHE_H_
#define EASEIO_DAEMON_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace easeio::daemon {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;    // current
  uint64_t bytes = 0;      // current object bytes
  uint64_t cap_bytes = 0;  // eviction threshold (0 = unbounded)
};

class ResultCache {
 public:
  // Creates <dir> and <dir>/objects if needed and loads the index, discarding
  // entries whose object files are missing or truncated. `cap_bytes` 0 disables
  // eviction.
  ResultCache(const std::string& dir, uint64_t cap_bytes);

  // Returns true and fills `artifact` (and `kind` if non-null) on a hit; bumps the
  // entry's recency. Counts a miss otherwise.
  bool Get(const std::string& hash, std::string* artifact, std::string* kind = nullptr);

  // Stores `artifact` under `hash` (idempotent: re-putting an existing hash just
  // refreshes recency) and evicts LRU entries if over cap. `kind` is an opaque label
  // kept in the index for cache-stats breakdowns.
  void Put(const std::string& hash, const std::string& kind, const std::string& artifact);

  bool Contains(const std::string& hash);

  CacheStats Stats();

  const std::string& dir() const { return dir_; }

 private:
  struct Entry {
    uint64_t bytes = 0;
    uint64_t seq = 0;
    std::string kind;
  };

  std::string ObjectPath(const std::string& hash) const;
  void Load();
  // Callers hold mu_.
  void EvictIfNeeded();
  void RewriteIndex();

  const std::string dir_;
  const uint64_t cap_bytes_;

  std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  uint64_t total_bytes_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t puts_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace easeio::daemon

#endif  // EASEIO_DAEMON_CACHE_H_
