// Small file I/O helpers shared by the daemon's cache, queue persistence, and
// results-dir export. Writes are atomic (tmp + rename) so readers — including a
// daemon restarted after a crash — never observe a torn file.

#ifndef EASEIO_DAEMON_FSIO_H_
#define EASEIO_DAEMON_FSIO_H_

#include <string>

namespace easeio::daemon {

// Reads the whole file into `out`. Returns false if it cannot be opened.
bool ReadFile(const std::string& path, std::string* out);

// Writes `data` to `path` via `path + ".tmp"` and rename. Returns false (leaving no
// partial file behind) on any failure.
bool WriteFileAtomic(const std::string& path, const std::string& data);

}  // namespace easeio::daemon

#endif  // EASEIO_DAEMON_FSIO_H_
