// Semantic analysis for EaseC — the pass that extracts everything the EaseIO runtime
// (and the baselines) need from an annotated program:
//
//   * symbol resolution: __nv globals vs task locals, with slot assignment;
//   * I/O call sites: one site per static _call_IO, with lane counts for calls inside
//     `repeat` loops (Section 6), enclosing-block links, and Timely windows;
//   * I/O blocks: lexical nesting (scope precedence, Section 3.3.1);
//   * data dependence: a _call_IO whose arguments are (transitively) produced by
//     another _call_IO's result depends on that site (Section 3.3.2); a _DMA_copy whose
//     source was last written from an I/O result inherits that producer (Section 4.3.1);
//   * region splitting: a task with N _DMA_copy statements is divided into N+1 regions
//     at the DMA positions, and the non-volatile variables the CPU *writes* in each
//     region are collected for regional privatization (Section 4.5.1);
//   * baseline facts: per-task shared and WAR variable sets, as Alpaca's and InK's
//     compilers would compute them — DMA operands are excluded (invisible to them).
//
// Restrictions enforced here (compile errors): _DMA_copy must be at the top level of a
// task body (region boundaries are static), _call_IO may not nest inside another
// _call_IO's arguments, and `repeat` loops containing _call_IO must not be nested.

#ifndef EASEIO_EASEC_SEMA_H_
#define EASEIO_EASEC_SEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "easec/ast.h"
#include "easec/diag.h"

namespace easeio::easec {

// Peripheral functions callable through _call_IO, with their argument arity.
// Temp/Humd/Pres read the corresponding sensor; Send transmits `bytes` from an __nv
// buffer; Capture fills an __nv buffer from the camera.
enum class IoFn : uint8_t { kTemp, kHumd, kPres, kSend, kCapture };

struct IoSiteInfo {
  uint32_t task = 0;         // index into Program.tasks
  std::string fn_name;
  IoFn fn = IoFn::kTemp;
  uint32_t lanes = 1;
  kernel::IoSemantic sem = kernel::IoSemantic::kAlways;
  uint64_t window_us = 0;
  uint32_t block = UINT32_MAX;          // enclosing easec block index
  std::vector<uint32_t> depends_on;     // producer site indices
  int32_t lane_slot = -1;               // local slot holding the repeat counter

  // Send/Capture operands: the __nv buffer and the (literal) byte count.
  int32_t buffer_nv = -1;
  uint32_t buffer_bytes = 0;
};

struct BlockInfo {
  uint32_t task = 0;
  kernel::IoSemantic sem = kernel::IoSemantic::kSingle;
  uint64_t window_us = 0;
  uint32_t parent = UINT32_MAX;
  std::string name;  // generated: task.block<N>
};

struct DmaInfo {
  uint32_t task = 0;
  bool exclude = false;
  uint32_t related_io = UINT32_MAX;  // producer site index
  uint32_t region_index = 0;         // ordinal among the task's DMA statements
  uint32_t bytes = 0;                // literal byte count (0 when not a literal)
  bool src_sram = false;
  bool dst_sram = false;

  // Operand resolution for the static analyses (easelint): the __nv declaration each
  // address names, the literal element offset of the subscript (-1 when the subscript
  // is not a literal), and whether the byte count was a compile-time literal.
  int32_t src_nv = -1;
  int32_t dst_nv = -1;
  int64_t src_offset = -1;
  int64_t dst_offset = -1;
  bool bytes_literal = false;
};

struct TaskInfo {
  std::string name;
  uint32_t local_count = 0;
  // regions[k] = __nv indices the CPU writes in region k (N_dma + 1 entries).
  std::vector<std::vector<uint32_t>> regions;
  std::vector<uint32_t> shared;  // __nv indices CPU-accessed by the task
  std::vector<uint32_t> war;     // subset read (by the CPU) before written
  uint32_t next_candidates = 0;  // number of next_task statements (for validation)
};

// One entry per statement, appended in pre-order within each task (all of a task's
// entries are contiguous). This is the def/use table the easelint dataflow analyses
// run over: which locals and __nv variables a statement reads and writes on the CPU,
// which I/O sites its expressions evaluate, and where it sits in the task's block /
// region / repeat structure. Unlike TaskInfo's privatization sets, the nv_uses /
// nv_defs lists *include* __sram staging variables — taint must flow through them.
struct StmtDefUse {
  uint32_t task = 0;
  int line = 0;
  StmtKind kind = StmtKind::kEndTask;
  uint32_t block = UINT32_MAX;        // innermost enclosing easec block, or none
  uint32_t region = 0;                // region index the statement executes in
  uint32_t repeat_lanes = 1;          // product of enclosing repeat counts
  uint32_t target_task = UINT32_MAX;  // kNextTask: successor task index
  // Pre-order subtree extent: def_use indices [index + 1, subtree_end) are this
  // statement's descendants. For kIf, [index + 1, else_begin) is the then-body and
  // [else_begin, subtree_end) the else-body. These delimit the structured control
  // flow the lint CFG builder (easec/lint/dataflow/cfg.h) reconstructs edges from.
  uint32_t subtree_end = 0;
  uint32_t else_begin = 0;
  std::vector<int32_t> local_uses;
  std::vector<int32_t> local_defs;
  std::vector<uint32_t> nv_uses;      // CPU reads (incl. __sram)
  std::vector<uint32_t> nv_defs;      // CPU writes (incl. __sram)
  std::vector<uint32_t> io_sites;     // sites evaluated in this statement's own exprs
  uint32_t dma = UINT32_MAX;          // kDma: index into Analysis::dmas
  uint64_t delay_cycles = 0;          // kDelay: literal operand (0 when not literal)
};

struct Analysis {
  std::vector<IoSiteInfo> sites;
  std::vector<BlockInfo> blocks;
  std::vector<DmaInfo> dmas;
  std::vector<TaskInfo> tasks;
  std::vector<StmtDefUse> def_use;
  // Worst-case bytes the runtime will carve from the DMA privatization buffer
  // (the sum of all non-excluded NV -> volatile transfer sizes).
  uint32_t private_dma_bytes = 0;
};

// Runs semantic analysis over `program`, annotating AST nodes in place (slot/site/block
// ids) and returning the extracted facts. Errors go to `diags`.
//
// `dma_priv_buffer_bytes` enables the compile-time privatization-buffer check the
// paper lists as future work (Section 6): when the worst-case Private DMA footprint
// exceeds the configured buffer, compilation fails instead of the runtime aborting
// mid-deployment. Pass 0 to disable the check.
Analysis Analyze(Program& program, Diagnostics& diags,
                 uint32_t dma_priv_buffer_bytes = 4096);

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_SEMA_H_
