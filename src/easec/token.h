// Token model for EaseC, the C-like task language the EaseIO compiler front-end
// consumes. The original system implements this stage with Clang LibTooling; this
// repository ships a self-contained front-end with the same surface constructs:
// __nv declarations, task definitions, _call_IO / _IO_block_begin / _IO_block_end /
// _DMA_copy, plus enough of C's expression and statement grammar to write the paper's
// applications.

#ifndef EASEIO_EASEC_TOKEN_H_
#define EASEIO_EASEC_TOKEN_H_

#include <cstdint>
#include <string>

namespace easeio::easec {

enum class Tok : uint8_t {
  kEof,
  kIdent,
  kIntLit,
  kStringLit,

  // Keywords.
  kNv,         // __nv
  kSram,       // __sram (volatile staging buffers, e.g. LEA RAM)
  kTask,       // task
  kInt16,      // int16
  kIf,         // if
  kElse,       // else
  kWhile,      // while
  kRepeat,     // repeat (N) { ... }  — the Section 6 loop construct
  kCallIo,     // _call_IO
  kIoBlockBegin,  // _IO_block_begin
  kIoBlockEnd,    // _IO_block_end
  kDmaCopy,    // _DMA_copy
  kNextTask,   // next_task
  kEndTask,    // end_task
  kExclude,    // Exclude (DMA annotation)

  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kAndAnd,
  kOrOr,
  kBang,
};

const char* ToString(Tok tok);

struct Token {
  Tok kind = Tok::kEof;
  std::string text;     // identifier / string contents
  int64_t int_value = 0;
  int line = 0;
  int col = 0;
};

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_TOKEN_H_
