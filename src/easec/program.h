// EaseC driver: compile source -> (AST, analysis, bytecode, transformed source), then
// instantiate the compiled program on a device + runtime pair as a runnable task graph.
//
// Instantiation performs what deployment does on the real system: it allocates the
// __nv variables, registers every I/O site / block / DMA site with the annotations the
// analysis extracted, declares the compiler facts (shared/WAR variables for the
// baselines, regions for EaseIO), and wraps each task's bytecode in a kernel TaskBody
// executed by the VM. The same CompileResult can be instantiated on any runtime —
// which is how the differential tests check that a DSL program behaves identically to
// its hand-written counterpart.

#ifndef EASEIO_EASEC_PROGRAM_H_
#define EASEIO_EASEC_PROGRAM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "easec/ast.h"
#include "easec/bytecode.h"
#include "easec/sema.h"
#include "kernel/engine.h"

namespace easeio::easec {

struct CompileOptions {
  // Budget for the compile-time privatization-buffer check (0 disables it). Must match
  // the EaseioConfig::dma_priv_buffer_bytes the program will run with.
  uint32_t dma_priv_buffer_bytes = 4096;
};

struct CompileResult {
  bool ok = false;
  std::string errors;  // diagnostics, one per line ("line:col: message")

  Program ast;
  Analysis analysis;
  std::vector<TaskCode> code;
  std::string transformed_source;  // the Figure-5 style source-to-source output
};

// Runs the full front-end: lex -> parse -> sema -> transform -> codegen.
CompileResult Compile(std::string_view source, const CompileOptions& options = {});

// A compiled program bound to one device/runtime/NV-manager triple.
struct InstantiatedProgram {
  kernel::TaskGraph graph;
  kernel::TaskId entry = 0;

  // __nv declaration index -> allocated slot.
  std::vector<kernel::NvSlotId> nv_slots;

  // easec index -> runtime registration id.
  std::vector<kernel::IoSiteId> site_ids;
  std::vector<kernel::IoBlockId> block_ids;
  std::vector<kernel::DmaSiteId> dma_ids;

  std::shared_ptr<void> state;  // keeps the VM's shared state alive
};

// Instantiates `compiled` (which must have ok == true) on the given runtime. The
// runtime must already be bound to `dev` and `nv`.
InstantiatedProgram Instantiate(const CompileResult& compiled, sim::Device& dev,
                                kernel::Runtime& rt, kernel::NvManager& nv);

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_PROGRAM_H_
