#include "easec/lexer.h"

#include <cctype>
#include <unordered_map>

namespace easeio::easec {

const char* ToString(Tok tok) {
  switch (tok) {
    case Tok::kEof: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kNv: return "__nv";
    case Tok::kSram: return "__sram";
    case Tok::kTask: return "task";
    case Tok::kInt16: return "int16";
    case Tok::kIf: return "if";
    case Tok::kElse: return "else";
    case Tok::kWhile: return "while";
    case Tok::kRepeat: return "repeat";
    case Tok::kCallIo: return "_call_IO";
    case Tok::kIoBlockBegin: return "_IO_block_begin";
    case Tok::kIoBlockEnd: return "_IO_block_end";
    case Tok::kDmaCopy: return "_DMA_copy";
    case Tok::kNextTask: return "next_task";
    case Tok::kEndTask: return "end_task";
    case Tok::kExclude: return "Exclude";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kComma: return ",";
    case Tok::kSemi: return ";";
    case Tok::kAssign: return "=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kAmp: return "&";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kLe: return "<=";
    case Tok::kGe: return ">=";
    case Tok::kAndAnd: return "&&";
    case Tok::kOrOr: return "||";
    case Tok::kBang: return "!";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, Tok>& Keywords() {
  static const auto* map = new std::unordered_map<std::string_view, Tok>{
      {"__nv", Tok::kNv},
      {"__sram", Tok::kSram},
      {"task", Tok::kTask},
      {"int16", Tok::kInt16},
      {"int", Tok::kInt16},  // alias: plain C sources use int
      {"if", Tok::kIf},
      {"else", Tok::kElse},
      {"while", Tok::kWhile},
      {"repeat", Tok::kRepeat},
      {"_call_IO", Tok::kCallIo},
      {"_IO_block_begin", Tok::kIoBlockBegin},
      {"_IO_block_end", Tok::kIoBlockEnd},
      {"_DMA_copy", Tok::kDmaCopy},
      {"next_task", Tok::kNextTask},
      {"end_task", Tok::kEndTask},
      {"Exclude", Tok::kExclude},
  };
  return *map;
}

}  // namespace

Lexer::Lexer(std::string_view source, Diagnostics& diags) : src_(source), diags_(diags) {}

char Lexer::Peek(int ahead) const {
  const size_t i = pos_ + static_cast<size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::Advance() {
  const char c = Peek();
  if (c == '\0') {
    return c;
  }
  ++pos_;
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::Match(char expected) {
  if (Peek() != expected) {
    return false;
  }
  Advance();
  return true;
}

void Lexer::SkipWhitespaceAndComments() {
  for (;;) {
    const char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
    } else if (c == '/' && Peek(1) == '/') {
      while (Peek() != '\n' && Peek() != '\0') {
        Advance();
      }
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!(Peek() == '*' && Peek(1) == '/')) {
        if (Peek() == '\0') {
          diags_.Error(line_, col_, "unterminated block comment");
          return;
        }
        Advance();
      }
      Advance();
      Advance();
    } else {
      return;
    }
  }
}

Token Lexer::Make(Tok kind) {
  Token t;
  t.kind = kind;
  t.line = tok_line_;
  t.col = tok_col_;
  return t;
}

Token Lexer::LexNumber() {
  int64_t value = 0;
  if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
    Advance();
    Advance();
    while (std::isxdigit(static_cast<unsigned char>(Peek()))) {
      const char c = Advance();
      value = value * 16 + (std::isdigit(static_cast<unsigned char>(c))
                                ? c - '0'
                                : std::tolower(static_cast<unsigned char>(c)) - 'a' + 10);
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      value = value * 10 + (Advance() - '0');
    }
  }
  Token t = Make(Tok::kIntLit);
  t.int_value = value;
  return t;
}

Token Lexer::LexIdentOrKeyword() {
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
    text += Advance();
  }
  auto it = Keywords().find(text);
  if (it != Keywords().end()) {
    return Make(it->second);
  }
  Token t = Make(Tok::kIdent);
  t.text = std::move(text);
  return t;
}

Token Lexer::LexString() {
  Advance();  // opening quote
  std::string text;
  while (Peek() != '"') {
    if (Peek() == '\0' || Peek() == '\n') {
      diags_.Error(tok_line_, tok_col_, "unterminated string literal");
      break;
    }
    text += Advance();
  }
  Match('"');
  Token t = Make(Tok::kStringLit);
  t.text = std::move(text);
  return t;
}

std::vector<Token> Lexer::Lex() {
  std::vector<Token> out;
  for (;;) {
    SkipWhitespaceAndComments();
    tok_line_ = line_;
    tok_col_ = col_;
    const char c = Peek();
    if (c == '\0') {
      out.push_back(Make(Tok::kEof));
      return out;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back(LexNumber());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(LexIdentOrKeyword());
      continue;
    }
    if (c == '"') {
      out.push_back(LexString());
      continue;
    }
    Advance();
    switch (c) {
      case '(': out.push_back(Make(Tok::kLParen)); break;
      case ')': out.push_back(Make(Tok::kRParen)); break;
      case '{': out.push_back(Make(Tok::kLBrace)); break;
      case '}': out.push_back(Make(Tok::kRBrace)); break;
      case '[': out.push_back(Make(Tok::kLBracket)); break;
      case ']': out.push_back(Make(Tok::kRBracket)); break;
      case ',': out.push_back(Make(Tok::kComma)); break;
      case ';': out.push_back(Make(Tok::kSemi)); break;
      case '+': out.push_back(Make(Tok::kPlus)); break;
      case '-': out.push_back(Make(Tok::kMinus)); break;
      case '*': out.push_back(Make(Tok::kStar)); break;
      case '/': out.push_back(Make(Tok::kSlash)); break;
      case '%': out.push_back(Make(Tok::kPercent)); break;
      case '=': out.push_back(Make(Match('=') ? Tok::kEq : Tok::kAssign)); break;
      case '!': out.push_back(Make(Match('=') ? Tok::kNe : Tok::kBang)); break;
      case '<': out.push_back(Make(Match('=') ? Tok::kLe : Tok::kLt)); break;
      case '>': out.push_back(Make(Match('=') ? Tok::kGe : Tok::kGt)); break;
      case '&':
        if (Match('&')) {
          out.push_back(Make(Tok::kAndAnd));
        } else {
          out.push_back(Make(Tok::kAmp));
        }
        break;
      case '|':
        if (Match('|')) {
          out.push_back(Make(Tok::kOrOr));
        } else {
          diags_.Error(tok_line_, tok_col_, "unexpected character '|'");
        }
        break;
      default:
        diags_.Error(tok_line_, tok_col_, std::string("unexpected character '") + c + "'");
        break;
    }
  }
}

}  // namespace easeio::easec
