// Source-to-source transformation output (Figure 5).
//
// The original EaseIO front-end rewrites the programmer's annotated C into plain C
// whose control blocks consult generated lock flags, timestamps, and private copies.
// This module renders the same transformation over the EaseC AST: every _call_IO
// becomes a flag-guarded `if` (with a `lock_<fn>_<task>_<n>` flag, a timestamp for
// Timely, a private return-value copy, and a block-dependence flag where scope
// precedence applies); every _IO_block becomes its own guard; every _DMA_copy is
// followed by the regional-privatization entry for the next region.
//
// The output is the *presentation* of the transformation — golden-tested against
// hand-checked expectations — while the executable semantics live in the runtime and
// the bytecode VM (codegen.h), which implement exactly the logic printed here.

#ifndef EASEIO_EASEC_TRANSFORM_H_
#define EASEIO_EASEC_TRANSFORM_H_

#include <string>

#include "easec/ast.h"
#include "easec/sema.h"

namespace easeio::easec {

// Renders the transformed program as C-like source text.
std::string TransformToSource(const Program& program, const Analysis& analysis);

// Renders one expression (used by the transform and by tests).
std::string ExprToSource(const Expr& expr);

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_TRANSFORM_H_
