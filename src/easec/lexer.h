// Hand-written lexer for EaseC. Supports // and /* */ comments, decimal and hex
// integer literals, string literals (for semantic annotations), and the keyword set in
// token.h. Errors are reported through Diagnostics with line/column positions.

#ifndef EASEIO_EASEC_LEXER_H_
#define EASEIO_EASEC_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "easec/diag.h"
#include "easec/token.h"

namespace easeio::easec {

class Lexer {
 public:
  Lexer(std::string_view source, Diagnostics& diags);

  // Tokenises the whole input; the final token is always kEof. On error, diagnostics
  // are recorded and lexing continues at the next character (best-effort recovery).
  std::vector<Token> Lex();

 private:
  char Peek(int ahead = 0) const;
  char Advance();
  bool Match(char expected);
  void SkipWhitespaceAndComments();
  Token LexNumber();
  Token LexIdentOrKeyword();
  Token LexString();
  Token Make(Tok kind);

  std::string_view src_;
  Diagnostics& diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int tok_line_ = 1;
  int tok_col_ = 1;
};

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_LEXER_H_
