#include "easec/sema.h"

#include <algorithm>
#include <map>
#include <set>

namespace easeio::easec {

namespace {

struct FnSig {
  IoFn fn;
  size_t arity;
};

const std::map<std::string, FnSig>& IoFunctions() {
  static const auto* map = new std::map<std::string, FnSig>{
      {"Temp", {IoFn::kTemp, 0}},    {"Humd", {IoFn::kHumd, 0}},
      {"Pres", {IoFn::kPres, 0}},    {"Send", {IoFn::kSend, 2}},
      {"Capture", {IoFn::kCapture, 2}},
  };
  return *map;
}

// Per-task analysis state.
class TaskAnalyzer {
 public:
  TaskAnalyzer(Program& program, uint32_t task_index, Analysis& analysis, Diagnostics& diags)
      : program_(program), task_index_(task_index), analysis_(analysis), diags_(diags) {
    for (uint32_t i = 0; i < program.nv_decls.size(); ++i) {
      nv_index_[program.nv_decls[i].name] = static_cast<int32_t>(i);
    }
  }

  void Run() {
    TaskDecl& task = program_.tasks[task_index_];
    regions_.emplace_back();  // region 0
    AnalyzeStmts(task.body, /*top_level=*/true);
    task.local_count = static_cast<uint32_t>(locals_.size());

    TaskInfo& info = analysis_.tasks[task_index_];
    info.local_count = task.local_count;
    for (auto& region : regions_) {
      info.regions.push_back(std::vector<uint32_t>(region.begin(), region.end()));
    }
    info.shared.assign(cpu_accessed_.begin(), cpu_accessed_.end());
    info.war.assign(war_.begin(), war_.end());
  }

 private:
  int32_t DefineLocal(const std::string& name, int line) {
    if (locals_.count(name) != 0) {
      diags_.Error(line, 0, "redefinition of local '" + name + "'");
      return locals_[name];
    }
    const int32_t slot = static_cast<int32_t>(locals_.size());
    locals_[name] = slot;
    return slot;
  }

  // Resolves `name` to a local slot or nv index; returns false when unknown.
  bool Resolve(const std::string& name, int line, int32_t* local, int32_t* nv) {
    *local = -1;
    *nv = -1;
    auto lit = locals_.find(name);
    if (lit != locals_.end()) {
      *local = lit->second;
      return true;
    }
    auto nit = nv_index_.find(name);
    if (nit != nv_index_.end()) {
      *nv = nit->second;
      return true;
    }
    diags_.Error(line, 0, "use of undeclared identifier '" + name + "'");
    return false;
  }

  // Def/use recording into the current statement's table entry. AddrOf operands are
  // deliberately not recorded as uses: DMA and peripheral-buffer accesses are tracked
  // through DmaInfo / IoSiteInfo instead of the CPU def/use lists.
  void NoteUse(int32_t local, int32_t nv) {
    if (cur_ == nullptr) {
      return;
    }
    if (local >= 0) {
      cur_->local_uses.push_back(local);
    }
    if (nv >= 0) {
      cur_->nv_uses.push_back(static_cast<uint32_t>(nv));
    }
  }

  void NoteDef(int32_t local, int32_t nv) {
    if (cur_ == nullptr) {
      return;
    }
    if (local >= 0) {
      cur_->local_defs.push_back(local);
    }
    if (nv >= 0) {
      cur_->nv_defs.push_back(static_cast<uint32_t>(nv));
    }
  }

  void NoteNvRead(int32_t nv) {
    if (program_.nv_decls[nv].sram) {
      return;  // volatile staging buffers need no privatization analysis
    }
    cpu_accessed_.insert(static_cast<uint32_t>(nv));
    if (written_.count(static_cast<uint32_t>(nv)) == 0) {
      read_before_write_.insert(static_cast<uint32_t>(nv));
    }
  }

  void NoteNvWrite(int32_t nv) {
    if (program_.nv_decls[nv].sram) {
      return;
    }
    cpu_accessed_.insert(static_cast<uint32_t>(nv));
    written_.insert(static_cast<uint32_t>(nv));
    if (read_before_write_.count(static_cast<uint32_t>(nv)) != 0) {
      war_.insert(static_cast<uint32_t>(nv));
    }
    regions_.back().insert(static_cast<uint32_t>(nv));
  }

  // Analyzes an expression; returns the site index that (transitively) produced its
  // value, or UINT32_MAX. `allow_call_io` is false inside _call_IO arguments.
  uint32_t AnalyzeExpr(Expr& expr, bool allow_call_io) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        return UINT32_MAX;
      case ExprKind::kVarRef: {
        if (!Resolve(expr.name, expr.line, &expr.local_slot, &expr.nv_index)) {
          return UINT32_MAX;
        }
        if (expr.nv_index >= 0) {
          NoteNvRead(expr.nv_index);
          NoteUse(-1, expr.nv_index);
          auto it = nv_producer_.find(expr.nv_index);
          return it == nv_producer_.end() ? UINT32_MAX : it->second;
        }
        NoteUse(expr.local_slot, -1);
        auto it = local_producer_.find(expr.local_slot);
        return it == local_producer_.end() ? UINT32_MAX : it->second;
      }
      case ExprKind::kIndex: {
        if (!Resolve(expr.name, expr.line, &expr.local_slot, &expr.nv_index)) {
          return UINT32_MAX;
        }
        if (expr.nv_index < 0) {
          diags_.Error(expr.line, 0, "'" + expr.name + "' is not an __nv array");
          return UINT32_MAX;
        }
        if (program_.nv_decls[expr.nv_index].elements == 1) {
          diags_.Error(expr.line, 0, "'" + expr.name + "' is not an __nv array");
          return UINT32_MAX;
        }
        AnalyzeExpr(*expr.index, allow_call_io);
        NoteNvRead(expr.nv_index);
        NoteUse(-1, expr.nv_index);
        auto it = nv_producer_.find(expr.nv_index);
        return it == nv_producer_.end() ? UINT32_MAX : it->second;
      }
      case ExprKind::kAddrOf: {
        if (!Resolve(expr.name, expr.line, &expr.local_slot, &expr.nv_index)) {
          return UINT32_MAX;
        }
        if (expr.nv_index < 0) {
          diags_.Error(expr.line, 0, "'&" + expr.name + "' must name an __nv variable");
          return UINT32_MAX;
        }
        if (expr.index != nullptr) {
          AnalyzeExpr(*expr.index, allow_call_io);
        }
        // Taking the address is not a CPU data access; DMA operands are invisible to
        // baseline privatization.
        auto it = nv_producer_.find(expr.nv_index);
        return it == nv_producer_.end() ? UINT32_MAX : it->second;
      }
      case ExprKind::kUnary:
        return AnalyzeExpr(*expr.lhs, allow_call_io);
      case ExprKind::kBinary: {
        const uint32_t a = AnalyzeExpr(*expr.lhs, allow_call_io);
        const uint32_t b = AnalyzeExpr(*expr.rhs, allow_call_io);
        return a != UINT32_MAX ? a : b;
      }
      case ExprKind::kBuiltin: {
        if (expr.name != "GetTime") {
          diags_.Error(expr.line, 0, "unknown builtin '" + expr.name + "'");
        } else if (!expr.args.empty()) {
          diags_.Error(expr.line, 0, "GetTime() takes no arguments");
        }
        return UINT32_MAX;
      }
      case ExprKind::kCallIo:
        if (!allow_call_io) {
          diags_.Error(expr.line, 0, "_call_IO may not nest inside another _call_IO");
          return UINT32_MAX;
        }
        return AnalyzeCallIo(expr);
    }
    return UINT32_MAX;
  }

  uint32_t AnalyzeCallIo(Expr& expr) {
    auto fit = IoFunctions().find(expr.name);
    if (fit == IoFunctions().end()) {
      diags_.Error(expr.line, 0, "unknown I/O function '" + expr.name + "'");
      return UINT32_MAX;
    }
    if (expr.args.size() != fit->second.arity) {
      diags_.Error(expr.line, 0,
                   "'" + expr.name + "' expects " + std::to_string(fit->second.arity) +
                       " argument(s)");
    }

    IoSiteInfo site;
    site.task = task_index_;
    site.fn_name = expr.name;
    site.fn = fit->second.fn;
    site.sem = expr.sem;
    site.window_us = expr.window_ms * 1000;
    site.block = block_stack_.empty() ? UINT32_MAX : block_stack_.back();

    // Lanes: a call inside `repeat (N)` gets an N-entry lock-flag array.
    if (!repeat_stack_.empty()) {
      if (repeat_stack_.size() > 1) {
        diags_.Error(expr.line, 0, "_call_IO inside nested repeat loops is not supported");
      }
      site.lanes = repeat_stack_.back().count;
      site.lane_slot = repeat_stack_.back().counter_slot;
    }

    // Dependence: arguments produced by earlier I/O results.
    std::set<uint32_t> deps;
    for (ExprPtr& arg : expr.args) {
      const uint32_t producer = AnalyzeExpr(*arg, /*allow_call_io=*/false);
      if (producer != UINT32_MAX) {
        deps.insert(producer);
      }
    }
    site.depends_on.assign(deps.begin(), deps.end());

    // Send/Capture operate on an __nv buffer with a literal byte count.
    if ((site.fn == IoFn::kSend || site.fn == IoFn::kCapture) && expr.args.size() == 2) {
      Expr& buf = *expr.args[0];
      if ((buf.kind == ExprKind::kVarRef || buf.kind == ExprKind::kAddrOf) &&
          buf.nv_index >= 0) {
        site.buffer_nv = buf.nv_index;
      } else {
        diags_.Error(expr.line, 0,
                     "'" + expr.name + "' needs an __nv buffer as its first argument");
      }
      if (expr.args[1]->kind == ExprKind::kIntLit) {
        site.buffer_bytes = static_cast<uint32_t>(expr.args[1]->int_value);
      } else {
        diags_.Error(expr.line, 0,
                     "'" + expr.name + "' needs a literal byte count as its second argument");
      }
    }

    const uint32_t id = static_cast<uint32_t>(analysis_.sites.size());
    analysis_.sites.push_back(std::move(site));
    expr.site_id = id;
    if (cur_ != nullptr) {
      cur_->io_sites.push_back(id);
    }
    return id;
  }

  void AnalyzeStmts(std::vector<StmtPtr>& stmts, bool top_level) {
    for (StmtPtr& stmt : stmts) {
      AnalyzeStmt(*stmt, top_level);
    }
  }

  // Reserves this statement's def/use slot before recursing (pre-order numbering),
  // collects into a stack-local record while the statement's own expressions are
  // analyzed — child statements save/restore cur_ around their own collection — and
  // writes the finished record back at the end (children may have grown the vector).
  void AnalyzeStmt(Stmt& stmt, bool top_level) {
    const size_t entry_index = analysis_.def_use.size();
    analysis_.def_use.emplace_back();
    stmt.stmt_id = static_cast<uint32_t>(entry_index);

    StmtDefUse rec;
    rec.task = task_index_;
    rec.line = stmt.line;
    rec.kind = stmt.kind;
    rec.block = block_stack_.empty() ? UINT32_MAX : block_stack_.back();
    rec.region = static_cast<uint32_t>(regions_.size()) - 1;
    for (const RepeatFrame& frame : repeat_stack_) {
      rec.repeat_lanes *= frame.count;
    }
    StmtDefUse* const saved = cur_;
    cur_ = &rec;
    AnalyzeStmtBody(stmt, top_level);
    cur_ = saved;
    rec.subtree_end = static_cast<uint32_t>(analysis_.def_use.size());
    if (rec.else_begin == 0) {
      rec.else_begin = rec.subtree_end;  // kIf fills it between the two bodies
    }
    analysis_.def_use[entry_index] = std::move(rec);
  }

  void AnalyzeStmtBody(Stmt& stmt, bool top_level) {
    switch (stmt.kind) {
      case StmtKind::kDeclLocal: {
        uint32_t producer = UINT32_MAX;
        if (stmt.value != nullptr) {
          producer = AnalyzeExpr(*stmt.value, /*allow_call_io=*/true);
        }
        stmt.local_slot = DefineLocal(stmt.name, stmt.line);
        NoteDef(stmt.local_slot, -1);
        if (producer != UINT32_MAX) {
          local_producer_[stmt.local_slot] = producer;
        }
        break;
      }
      case StmtKind::kAssign: {
        const uint32_t producer = AnalyzeExpr(*stmt.value, /*allow_call_io=*/true);
        if (stmt.index != nullptr) {
          AnalyzeExpr(*stmt.index, /*allow_call_io=*/false);
        }
        if (!Resolve(stmt.name, stmt.line, &stmt.local_slot, &stmt.nv_index)) {
          break;
        }
        if (stmt.nv_index >= 0) {
          const bool is_array = program_.nv_decls[stmt.nv_index].elements > 1;
          if (stmt.index == nullptr && is_array) {
            diags_.Error(stmt.line, 0, "assignment to whole array '" + stmt.name + "'");
          }
          NoteNvWrite(stmt.nv_index);
          NoteDef(-1, stmt.nv_index);
          if (producer != UINT32_MAX) {
            nv_producer_[stmt.nv_index] = producer;
          } else if (!is_array) {
            // Scalars track their last writer exactly; arrays keep any recorded I/O
            // producer (element granularity is not tracked, so dropping it on an
            // unrelated element's write would lose real dependences).
            nv_producer_.erase(stmt.nv_index);
          }
        } else {
          if (stmt.index != nullptr) {
            diags_.Error(stmt.line, 0, "cannot subscript local '" + stmt.name + "'");
          }
          NoteDef(stmt.local_slot, -1);
          if (producer != UINT32_MAX) {
            local_producer_[stmt.local_slot] = producer;
          } else {
            local_producer_.erase(stmt.local_slot);
          }
        }
        break;
      }
      case StmtKind::kIf:
        AnalyzeExpr(*stmt.value, /*allow_call_io=*/true);
        AnalyzeStmts(stmt.then_body, /*top_level=*/false);
        if (cur_ != nullptr) {
          cur_->else_begin = static_cast<uint32_t>(analysis_.def_use.size());
        }
        AnalyzeStmts(stmt.else_body, /*top_level=*/false);
        break;
      case StmtKind::kWhile:
        AnalyzeExpr(*stmt.value, /*allow_call_io=*/true);
        AnalyzeStmts(stmt.body, /*top_level=*/false);
        break;
      case StmtKind::kRepeat: {
        // The repeat counter is a local (named by the programmer in the
        // `repeat (i, N)` form, hidden otherwise); _call_IO lanes index with it.
        const std::string counter_name =
            stmt.name.empty() ? "$repeat" + std::to_string(repeat_counter_id_++) : stmt.name;
        const int32_t counter = DefineLocal(counter_name, stmt.line);
        stmt.local_slot = counter;
        NoteDef(counter, -1);
        repeat_stack_.push_back({static_cast<uint32_t>(stmt.value->int_value), counter});
        AnalyzeStmts(stmt.body, /*top_level=*/false);
        repeat_stack_.pop_back();
        break;
      }
      case StmtKind::kIoBlock: {
        BlockInfo block;
        block.task = task_index_;
        block.sem = stmt.sem;
        block.window_us = stmt.window_ms * 1000;
        block.parent = block_stack_.empty() ? UINT32_MAX : block_stack_.back();
        block.name = program_.tasks[task_index_].name + ".block" +
                     std::to_string(analysis_.blocks.size());
        const uint32_t id = static_cast<uint32_t>(analysis_.blocks.size());
        analysis_.blocks.push_back(std::move(block));
        stmt.block_id = id;
        block_stack_.push_back(id);
        AnalyzeStmts(stmt.body, /*top_level=*/false);
        block_stack_.pop_back();
        break;
      }
      case StmtKind::kDma: {
        if (!top_level) {
          diags_.Error(stmt.line, 0,
                       "_DMA_copy must appear at the top level of a task body "
                       "(region boundaries are static)");
        }
        AnalyzeExpr(*stmt.dma_dst, /*allow_call_io=*/false);
        const uint32_t src_producer = AnalyzeExpr(*stmt.dma_src, /*allow_call_io=*/false);
        AnalyzeExpr(*stmt.dma_bytes, /*allow_call_io=*/false);
        if (stmt.dma_dst->kind != ExprKind::kAddrOf ||
            stmt.dma_src->kind != ExprKind::kAddrOf) {
          diags_.Error(stmt.line, 0, "_DMA_copy operands must be '&nv_var[...]' addresses");
        }
        DmaInfo dma;
        dma.task = task_index_;
        dma.exclude = stmt.dma_exclude;
        dma.related_io = src_producer;
        dma.region_index = static_cast<uint32_t>(regions_.size()) - 1;
        if (stmt.dma_bytes->kind == ExprKind::kIntLit) {
          dma.bytes = static_cast<uint32_t>(stmt.dma_bytes->int_value);
        }
        if (stmt.dma_src->nv_index >= 0) {
          dma.src_sram = program_.nv_decls[stmt.dma_src->nv_index].sram;
        }
        if (stmt.dma_dst->nv_index >= 0) {
          dma.dst_sram = program_.nv_decls[stmt.dma_dst->nv_index].sram;
        }
        auto resolve_operand = [](const ExprPtr& e, int32_t* nv, int64_t* offset) {
          *nv = e->nv_index;
          if (e->index == nullptr) {
            *offset = 0;
          } else if (e->index->kind == ExprKind::kIntLit) {
            *offset = e->index->int_value;
          } else {
            *offset = -1;
          }
        };
        resolve_operand(stmt.dma_src, &dma.src_nv, &dma.src_offset);
        resolve_operand(stmt.dma_dst, &dma.dst_nv, &dma.dst_offset);
        dma.bytes_literal = stmt.dma_bytes->kind == ExprKind::kIntLit;
        const uint32_t id = static_cast<uint32_t>(analysis_.dmas.size());
        analysis_.dmas.push_back(dma);
        stmt.dma_id = id;
        if (cur_ != nullptr) {
          cur_->dma = id;
        }
        regions_.emplace_back();  // a DMA opens the next region
        break;
      }
      case StmtKind::kNextTask:
        ++analysis_.tasks[task_index_].next_candidates;
        if (cur_ != nullptr) {
          for (uint32_t t = 0; t < program_.tasks.size(); ++t) {
            if (program_.tasks[t].name == stmt.target_task) {
              cur_->target_task = t;
              break;
            }
          }
        }
        break;
      case StmtKind::kEndTask:
        break;
      case StmtKind::kExprStmt:
        AnalyzeExpr(*stmt.value, /*allow_call_io=*/true);
        break;
      case StmtKind::kDelay:
        AnalyzeExpr(*stmt.value, /*allow_call_io=*/false);
        if (cur_ != nullptr && stmt.value->kind == ExprKind::kIntLit) {
          cur_->delay_cycles = static_cast<uint64_t>(stmt.value->int_value);
        }
        break;
    }
  }

  struct RepeatFrame {
    uint32_t count;
    int32_t counter_slot;
  };

  Program& program_;
  uint32_t task_index_;
  Analysis& analysis_;
  Diagnostics& diags_;

  std::map<std::string, int32_t> locals_;
  std::map<std::string, int32_t> nv_index_;
  std::map<int32_t, uint32_t> local_producer_;  // local slot -> io site
  std::map<int32_t, uint32_t> nv_producer_;     // nv index -> io site
  std::vector<uint32_t> block_stack_;
  std::vector<RepeatFrame> repeat_stack_;
  std::vector<std::set<uint32_t>> regions_;  // nv writes per region
  std::set<uint32_t> cpu_accessed_;
  std::set<uint32_t> written_;
  std::set<uint32_t> read_before_write_;
  std::set<uint32_t> war_;
  int repeat_counter_id_ = 0;
  StmtDefUse* cur_ = nullptr;  // def/use record of the statement being analyzed
};

}  // namespace

Analysis Analyze(Program& program, Diagnostics& diags, uint32_t dma_priv_buffer_bytes) {
  Analysis analysis;
  analysis.tasks.resize(program.tasks.size());

  // Validate task names and next_task targets up front.
  std::set<std::string> names;
  for (uint32_t i = 0; i < program.tasks.size(); ++i) {
    analysis.tasks[i].name = program.tasks[i].name;
    if (!names.insert(program.tasks[i].name).second) {
      diags.Error(program.tasks[i].line, 0,
                  "duplicate task name '" + program.tasks[i].name + "'");
    }
  }
  std::set<std::string> nv_names;
  for (const NvDecl& decl : program.nv_decls) {
    if (!nv_names.insert(decl.name).second) {
      diags.Error(decl.line, 0, "duplicate __nv declaration '" + decl.name + "'");
    }
    if (decl.elements == 0) {
      diags.Error(decl.line, 0, "zero-length __nv array '" + decl.name + "'");
    }
  }

  for (uint32_t i = 0; i < program.tasks.size(); ++i) {
    TaskAnalyzer(program, i, analysis, diags).Run();
  }

  // next_task targets must exist.
  struct TargetChecker {
    const std::set<std::string>& names;
    Diagnostics& diags;
    void Check(const std::vector<StmtPtr>& stmts) {
      for (const StmtPtr& s : stmts) {
        if (s->kind == StmtKind::kNextTask && names.count(s->target_task) == 0) {
          diags.Error(s->line, 0, "next_task target '" + s->target_task + "' is not a task");
        }
        Check(s->then_body);
        Check(s->else_body);
        Check(s->body);
      }
    }
  } checker{names, diags};
  for (const TaskDecl& task : program.tasks) {
    checker.Check(task.body);
  }

  // Compile-time privatization-buffer check (the paper's Section 6 future work): an
  // NV -> volatile transfer is classified Private at run time and carves a persistent
  // slice of the shared buffer; overflow is better rejected here than at run time.
  for (const DmaInfo& dma : analysis.dmas) {
    if (!dma.exclude && !dma.src_sram && dma.dst_sram) {
      if (dma.bytes == 0) {
        diags.Error(0, 0,
                    "_DMA_copy into volatile memory needs a literal byte count so the "
                    "privatization buffer check can run");
      }
      analysis.private_dma_bytes += dma.bytes;
    }
  }
  if (dma_priv_buffer_bytes > 0 && analysis.private_dma_bytes > dma_priv_buffer_bytes) {
    diags.Error(0, 0,
                "Private DMA transfers need " + std::to_string(analysis.private_dma_bytes) +
                    " bytes of privatization buffer, but only " +
                    std::to_string(dma_priv_buffer_bytes) +
                    " are configured (annotate constant data with Exclude or raise "
                    "dma_priv_buffer_bytes)");
  }

  return analysis;
}

}  // namespace easeio::easec
