#include "easec/codegen.h"

#include <map>

namespace easeio::easec {

namespace {

class TaskCodegen {
 public:
  TaskCodegen(const Program& program, const Analysis& analysis, Diagnostics& diags)
      : program_(program), analysis_(analysis), diags_(diags) {
    for (uint32_t i = 0; i < program.tasks.size(); ++i) {
      task_index_[program.tasks[i].name] = static_cast<int32_t>(i);
    }
  }

  TaskCode Generate(const TaskDecl& task) {
    code_.clear();
    GenStmts(task.body);
    // A task body that falls off the end restarts itself — diagnose instead.
    Emit(Op::kEndTask);
    return std::move(code_);
  }

 private:
  size_t Emit(Op op, int32_t a = 0, int32_t b = 0, int32_t c = 0) {
    code_.push_back({op, a, b, c});
    return code_.size() - 1;
  }

  void Patch(size_t at, int32_t target) { code_[at].a = target; }

  void GenExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        Emit(Op::kPushImm, static_cast<int32_t>(expr.int_value));
        break;
      case ExprKind::kVarRef:
        if (expr.local_slot >= 0) {
          Emit(Op::kLoadLocal, expr.local_slot);
        } else if (expr.nv_index >= 0) {
          Emit(Op::kPushImm, 0);
          Emit(Op::kLoadNv, expr.nv_index);
        } else {
          Emit(Op::kPushImm, 0);  // unresolved (already diagnosed)
        }
        break;
      case ExprKind::kIndex:
        GenExpr(*expr.index);
        Emit(Op::kLoadNv, expr.nv_index >= 0 ? expr.nv_index : 0);
        break;
      case ExprKind::kAddrOf:
        // Evaluates to the element index (the base is carried in the instruction that
        // consumes the address — only _DMA_copy accepts these).
        if (expr.index != nullptr) {
          GenExpr(*expr.index);
        } else {
          Emit(Op::kPushImm, 0);
        }
        break;
      case ExprKind::kUnary:
        GenExpr(*expr.lhs);
        Emit(expr.un_op == UnOp::kNeg ? Op::kNeg : Op::kNot);
        break;
      case ExprKind::kBinary: {
        GenExpr(*expr.lhs);
        GenExpr(*expr.rhs);
        switch (expr.bin_op) {
          case BinOp::kAdd: Emit(Op::kAdd); break;
          case BinOp::kSub: Emit(Op::kSub); break;
          case BinOp::kMul: Emit(Op::kMul); break;
          case BinOp::kDiv: Emit(Op::kDiv); break;
          case BinOp::kMod: Emit(Op::kMod); break;
          case BinOp::kEq: Emit(Op::kEq); break;
          case BinOp::kNe: Emit(Op::kNe); break;
          case BinOp::kLt: Emit(Op::kLt); break;
          case BinOp::kGt: Emit(Op::kGt); break;
          case BinOp::kLe: Emit(Op::kLe); break;
          case BinOp::kGe: Emit(Op::kGe); break;
          case BinOp::kAnd: Emit(Op::kAnd); break;
          case BinOp::kOr: Emit(Op::kOr); break;
        }
        break;
      }
      case ExprKind::kBuiltin:
        Emit(Op::kGetTimeMs);
        break;
      case ExprKind::kCallIo:
        Emit(Op::kCallIo, static_cast<int32_t>(expr.site_id));
        break;
    }
  }

  void GenStmts(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& stmt : stmts) {
      GenStmt(*stmt);
    }
  }

  void GenStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kDeclLocal:
        if (stmt.value != nullptr) {
          GenExpr(*stmt.value);
          Emit(Op::kStoreLocal, stmt.local_slot);
        }
        break;
      case StmtKind::kAssign:
        if (stmt.nv_index >= 0) {
          if (stmt.index != nullptr) {
            GenExpr(*stmt.index);
          } else {
            Emit(Op::kPushImm, 0);
          }
          GenExpr(*stmt.value);
          Emit(Op::kStoreNv, stmt.nv_index);
        } else {
          GenExpr(*stmt.value);
          Emit(Op::kStoreLocal, stmt.local_slot >= 0 ? stmt.local_slot : 0);
        }
        break;
      case StmtKind::kIf: {
        GenExpr(*stmt.value);
        const size_t jz = Emit(Op::kJz);
        GenStmts(stmt.then_body);
        if (stmt.else_body.empty()) {
          Patch(jz, static_cast<int32_t>(code_.size()));
        } else {
          const size_t jmp = Emit(Op::kJmp);
          Patch(jz, static_cast<int32_t>(code_.size()));
          GenStmts(stmt.else_body);
          Patch(jmp, static_cast<int32_t>(code_.size()));
        }
        break;
      }
      case StmtKind::kWhile: {
        const int32_t top = static_cast<int32_t>(code_.size());
        GenExpr(*stmt.value);
        const size_t jz = Emit(Op::kJz);
        GenStmts(stmt.body);
        Emit(Op::kJmp, top);
        Patch(jz, static_cast<int32_t>(code_.size()));
        break;
      }
      case StmtKind::kRepeat: {
        // counter = 0; while (counter < N) { body; counter = counter + 1; }
        Emit(Op::kPushImm, 0);
        Emit(Op::kStoreLocal, stmt.local_slot);
        const int32_t top = static_cast<int32_t>(code_.size());
        Emit(Op::kLoadLocal, stmt.local_slot);
        Emit(Op::kPushImm, static_cast<int32_t>(stmt.value->int_value));
        Emit(Op::kLt);
        const size_t jz = Emit(Op::kJz);
        GenStmts(stmt.body);
        Emit(Op::kLoadLocal, stmt.local_slot);
        Emit(Op::kPushImm, 1);
        Emit(Op::kAdd);
        Emit(Op::kStoreLocal, stmt.local_slot);
        Emit(Op::kJmp, top);
        Patch(jz, static_cast<int32_t>(code_.size()));
        break;
      }
      case StmtKind::kIoBlock:
        Emit(Op::kBlockBegin, static_cast<int32_t>(stmt.block_id));
        GenStmts(stmt.body);
        Emit(Op::kBlockEnd, static_cast<int32_t>(stmt.block_id));
        break;
      case StmtKind::kDma: {
        GenExpr(*stmt.dma_dst);    // element index of the destination
        GenExpr(*stmt.dma_src);    // element index of the source
        GenExpr(*stmt.dma_bytes);  // byte count
        Emit(Op::kDma, static_cast<int32_t>(stmt.dma_id), stmt.dma_dst->nv_index,
             stmt.dma_src->nv_index);
        break;
      }
      case StmtKind::kNextTask: {
        auto it = task_index_.find(stmt.target_task);
        Emit(Op::kNextTask, it != task_index_.end() ? it->second : 0);
        break;
      }
      case StmtKind::kEndTask:
        Emit(Op::kEndTask);
        break;
      case StmtKind::kExprStmt:
        GenExpr(*stmt.value);
        Emit(Op::kPop);
        break;
      case StmtKind::kDelay:
        GenExpr(*stmt.value);
        Emit(Op::kDelay);
        break;
    }
  }

  const Program& program_;
  const Analysis& analysis_;
  Diagnostics& diags_;
  std::map<std::string, int32_t> task_index_;
  TaskCode code_;
};

}  // namespace

std::vector<TaskCode> GenerateCode(const Program& program, const Analysis& analysis,
                                   Diagnostics& diags) {
  std::vector<TaskCode> out;
  out.reserve(program.tasks.size());
  TaskCodegen gen(program, analysis, diags);
  for (const TaskDecl& task : program.tasks) {
    out.push_back(gen.Generate(task));
  }
  return out;
}

}  // namespace easeio::easec
