#include "easec/parser.h"

#include <utility>

namespace easeio::easec {

namespace {

ExprPtr MakeExpr(ExprKind kind, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->line = line;
  return e;
}

StmtPtr MakeStmt(StmtKind kind, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->line = line;
  return s;
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, Diagnostics& diags)
    : tokens_(std::move(tokens)), diags_(diags) {}

const Token& Parser::Peek(int ahead) const {
  const size_t i = pos_ + static_cast<size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) {
    ++pos_;
  }
  return t;
}

bool Parser::Match(Tok kind) {
  if (!Check(kind)) {
    return false;
  }
  Advance();
  return true;
}

const Token& Parser::Expect(Tok kind, const char* what) {
  if (Check(kind)) {
    return Advance();
  }
  diags_.Error(Peek().line, Peek().col,
               std::string("expected ") + ToString(kind) + " " + what + ", found '" +
                   ToString(Peek().kind) + "'");
  return Peek();
}

void Parser::SyncToStmtBoundary() {
  while (!Check(Tok::kEof) && !Check(Tok::kSemi) && !Check(Tok::kRBrace)) {
    Advance();
  }
  Match(Tok::kSemi);
}

Program Parser::ParseProgram() {
  Program program;
  while (!Check(Tok::kEof)) {
    if (Check(Tok::kNv) || Check(Tok::kSram)) {
      program.nv_decls.push_back(ParseNvDecl());
    } else if (Check(Tok::kTask)) {
      program.tasks.push_back(ParseTask());
    } else {
      diags_.Error(Peek().line, Peek().col, "expected __nv declaration or task definition");
      Advance();
    }
  }
  return program;
}

NvDecl Parser::ParseNvDecl() {
  NvDecl decl;
  decl.line = Peek().line;
  if (Check(Tok::kSram)) {
    decl.sram = true;
    Advance();
  } else {
    Expect(Tok::kNv, "to start a global declaration");
  }
  Expect(Tok::kInt16, "as the element type");
  decl.name = Expect(Tok::kIdent, "as the variable name").text;
  if (Match(Tok::kLBracket)) {
    const Token& n = Expect(Tok::kIntLit, "as the array length");
    decl.elements = static_cast<uint32_t>(n.int_value);
    Expect(Tok::kRBracket, "to close the array length");
  }
  Expect(Tok::kSemi, "after the declaration");
  return decl;
}

TaskDecl Parser::ParseTask() {
  TaskDecl task;
  task.line = Peek().line;
  Expect(Tok::kTask, "to start a task");
  task.name = Expect(Tok::kIdent, "as the task name").text;
  Expect(Tok::kLParen, "after the task name");
  Expect(Tok::kRParen, "after the task name");
  task.body = ParseBlock();
  return task;
}

std::vector<StmtPtr> Parser::ParseBlock() {
  Expect(Tok::kLBrace, "to open a block");
  std::vector<StmtPtr> body = ParseStmtsUntil(Tok::kRBrace);
  Expect(Tok::kRBrace, "to close the block");
  return body;
}

std::vector<StmtPtr> Parser::ParseStmtsUntil(Tok terminator) {
  std::vector<StmtPtr> out;
  while (!Check(terminator) && !Check(Tok::kEof)) {
    // An _IO_block_end that is not our terminator indicates unbalanced blocks.
    if (Check(Tok::kIoBlockEnd) && terminator != Tok::kIoBlockEnd) {
      diags_.Error(Peek().line, Peek().col, "_IO_block_end without a matching begin");
      Advance();
      Match(Tok::kSemi);
      continue;
    }
    StmtPtr stmt = ParseStmt();
    if (stmt != nullptr) {
      out.push_back(std::move(stmt));
    }
  }
  return out;
}

void Parser::ParseSemantic(kernel::IoSemantic* sem, uint64_t* window_ms) {
  const Token& annot = Expect(Tok::kStringLit, "as the re-execution semantic");
  *window_ms = 0;
  if (annot.text == "Single") {
    *sem = kernel::IoSemantic::kSingle;
  } else if (annot.text == "Timely") {
    *sem = kernel::IoSemantic::kTimely;
    Expect(Tok::kComma, "before the Timely window");
    const Token& w = Expect(Tok::kIntLit, "as the Timely window (ms)");
    *window_ms = static_cast<uint64_t>(w.int_value);
  } else if (annot.text == "Always") {
    *sem = kernel::IoSemantic::kAlways;
  } else {
    diags_.Error(annot.line, annot.col,
                 "unknown re-execution semantic \"" + annot.text +
                     "\" (expected Single, Timely, or Always)");
    *sem = kernel::IoSemantic::kAlways;
  }
}

StmtPtr Parser::ParseIoBlock() {
  auto stmt = MakeStmt(StmtKind::kIoBlock, Peek().line);
  Expect(Tok::kIoBlockBegin, "");
  Expect(Tok::kLParen, "after _IO_block_begin");
  ParseSemantic(&stmt->sem, &stmt->window_ms);
  Expect(Tok::kRParen, "to close _IO_block_begin");
  Match(Tok::kSemi);  // the paper writes the begin with and without a semicolon
  stmt->body = ParseStmtsUntil(Tok::kIoBlockEnd);
  Expect(Tok::kIoBlockEnd, "to close the I/O block");
  Match(Tok::kSemi);
  return stmt;
}

StmtPtr Parser::ParseDma() {
  auto stmt = MakeStmt(StmtKind::kDma, Peek().line);
  Expect(Tok::kDmaCopy, "");
  Expect(Tok::kLParen, "after _DMA_copy");
  stmt->dma_dst = ParseExpr();
  Expect(Tok::kComma, "between _DMA_copy arguments");
  stmt->dma_src = ParseExpr();
  Expect(Tok::kComma, "between _DMA_copy arguments");
  stmt->dma_bytes = ParseExpr();
  if (Match(Tok::kComma)) {
    Expect(Tok::kExclude, "as the optional _DMA_copy annotation");
    stmt->dma_exclude = true;
  }
  Expect(Tok::kRParen, "to close _DMA_copy");
  Expect(Tok::kSemi, "after _DMA_copy");
  return stmt;
}

StmtPtr Parser::ParseStmt() {
  const int line = Peek().line;
  switch (Peek().kind) {
    case Tok::kInt16: {
      Advance();
      auto stmt = MakeStmt(StmtKind::kDeclLocal, line);
      stmt->name = Expect(Tok::kIdent, "as the local variable name").text;
      if (Match(Tok::kAssign)) {
        stmt->value = ParseExpr();
      }
      Expect(Tok::kSemi, "after the declaration");
      return stmt;
    }
    case Tok::kIf: {
      Advance();
      auto stmt = MakeStmt(StmtKind::kIf, line);
      Expect(Tok::kLParen, "after if");
      stmt->value = ParseExpr();
      Expect(Tok::kRParen, "after the if condition");
      stmt->then_body = ParseBlock();
      if (Match(Tok::kElse)) {
        stmt->else_body = ParseBlock();
      }
      return stmt;
    }
    case Tok::kWhile: {
      Advance();
      auto stmt = MakeStmt(StmtKind::kWhile, line);
      Expect(Tok::kLParen, "after while");
      stmt->value = ParseExpr();
      Expect(Tok::kRParen, "after the while condition");
      stmt->body = ParseBlock();
      return stmt;
    }
    case Tok::kRepeat: {
      // repeat (N) { ... }  or  repeat (i, N) { ... } — the named form binds the
      // iteration counter as a local (and as the _call_IO lane index).
      Advance();
      auto stmt = MakeStmt(StmtKind::kRepeat, line);
      Expect(Tok::kLParen, "after repeat");
      if (Check(Tok::kIdent) && Peek(1).kind == Tok::kComma) {
        stmt->name = Advance().text;
        Advance();  // ','
      }
      const Token& n = Expect(Tok::kIntLit, "as the repeat count");
      stmt->value = MakeExpr(ExprKind::kIntLit, n.line);
      stmt->value->int_value = n.int_value;
      Expect(Tok::kRParen, "after the repeat count");
      stmt->body = ParseBlock();
      return stmt;
    }
    case Tok::kIoBlockBegin:
      return ParseIoBlock();
    case Tok::kDmaCopy:
      return ParseDma();
    case Tok::kNextTask: {
      Advance();
      auto stmt = MakeStmt(StmtKind::kNextTask, line);
      Expect(Tok::kLParen, "after next_task");
      stmt->target_task = Expect(Tok::kIdent, "as the next task name").text;
      Expect(Tok::kRParen, "after the next task name");
      Expect(Tok::kSemi, "after next_task(...)");
      return stmt;
    }
    case Tok::kEndTask: {
      Advance();
      Expect(Tok::kSemi, "after end_task");
      return MakeStmt(StmtKind::kEndTask, line);
    }
    case Tok::kIdent: {
      // `delay(n);` compute model, assignment, or a bare expression statement.
      if (Peek().text == "delay" && Peek(1).kind == Tok::kLParen) {
        Advance();
        Advance();
        auto stmt = MakeStmt(StmtKind::kDelay, line);
        stmt->value = ParseExpr();
        Expect(Tok::kRParen, "after delay(...)");
        Expect(Tok::kSemi, "after delay(...)");
        return stmt;
      }
      if (Peek(1).kind == Tok::kAssign ||
          (Peek(1).kind == Tok::kLBracket)) {
        auto stmt = MakeStmt(StmtKind::kAssign, line);
        stmt->name = Advance().text;
        if (Match(Tok::kLBracket)) {
          stmt->index = ParseExpr();
          Expect(Tok::kRBracket, "to close the subscript");
        }
        Expect(Tok::kAssign, "in the assignment");
        stmt->value = ParseExpr();
        Expect(Tok::kSemi, "after the assignment");
        return stmt;
      }
      auto stmt = MakeStmt(StmtKind::kExprStmt, line);
      stmt->value = ParseExpr();
      Expect(Tok::kSemi, "after the expression");
      return stmt;
    }
    case Tok::kCallIo: {
      auto stmt = MakeStmt(StmtKind::kExprStmt, line);
      stmt->value = ParseCallIo();
      Expect(Tok::kSemi, "after _call_IO");
      return stmt;
    }
    default:
      diags_.Error(line, Peek().col,
                   std::string("unexpected token '") + ToString(Peek().kind) +
                       "' at start of statement");
      SyncToStmtBoundary();
      return nullptr;
  }
}

ExprPtr Parser::ParseCallIo() {
  const int line = Peek().line;
  Expect(Tok::kCallIo, "");
  Expect(Tok::kLParen, "after _call_IO");
  auto expr = MakeExpr(ExprKind::kCallIo, line);
  expr->name = Expect(Tok::kIdent, "as the I/O function name").text;
  Expect(Tok::kLParen, "after the I/O function name");
  if (!Check(Tok::kRParen)) {
    do {
      expr->args.push_back(ParseExpr());
    } while (Match(Tok::kComma));
  }
  Expect(Tok::kRParen, "to close the I/O function arguments");
  Expect(Tok::kComma, "before the re-execution semantic");
  uint64_t window_ms = 0;
  ParseSemantic(&expr->sem, &window_ms);
  expr->window_ms = window_ms;
  Expect(Tok::kRParen, "to close _call_IO");
  return expr;
}

ExprPtr Parser::ParseOr() {
  ExprPtr lhs = ParseAnd();
  while (Check(Tok::kOrOr)) {
    const int line = Advance().line;
    auto e = MakeExpr(ExprKind::kBinary, line);
    e->bin_op = BinOp::kOr;
    e->lhs = std::move(lhs);
    e->rhs = ParseAnd();
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseAnd() {
  ExprPtr lhs = ParseEquality();
  while (Check(Tok::kAndAnd)) {
    const int line = Advance().line;
    auto e = MakeExpr(ExprKind::kBinary, line);
    e->bin_op = BinOp::kAnd;
    e->lhs = std::move(lhs);
    e->rhs = ParseEquality();
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseEquality() {
  ExprPtr lhs = ParseRelational();
  while (Check(Tok::kEq) || Check(Tok::kNe)) {
    const Tok op = Advance().kind;
    auto e = MakeExpr(ExprKind::kBinary, Peek().line);
    e->bin_op = op == Tok::kEq ? BinOp::kEq : BinOp::kNe;
    e->lhs = std::move(lhs);
    e->rhs = ParseRelational();
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseRelational() {
  ExprPtr lhs = ParseAdditive();
  while (Check(Tok::kLt) || Check(Tok::kGt) || Check(Tok::kLe) || Check(Tok::kGe)) {
    const Tok op = Advance().kind;
    auto e = MakeExpr(ExprKind::kBinary, Peek().line);
    switch (op) {
      case Tok::kLt: e->bin_op = BinOp::kLt; break;
      case Tok::kGt: e->bin_op = BinOp::kGt; break;
      case Tok::kLe: e->bin_op = BinOp::kLe; break;
      default: e->bin_op = BinOp::kGe; break;
    }
    e->lhs = std::move(lhs);
    e->rhs = ParseAdditive();
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseAdditive() {
  ExprPtr lhs = ParseMultiplicative();
  while (Check(Tok::kPlus) || Check(Tok::kMinus)) {
    const Tok op = Advance().kind;
    auto e = MakeExpr(ExprKind::kBinary, Peek().line);
    e->bin_op = op == Tok::kPlus ? BinOp::kAdd : BinOp::kSub;
    e->lhs = std::move(lhs);
    e->rhs = ParseMultiplicative();
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseMultiplicative() {
  ExprPtr lhs = ParseUnary();
  while (Check(Tok::kStar) || Check(Tok::kSlash) || Check(Tok::kPercent)) {
    const Tok op = Advance().kind;
    auto e = MakeExpr(ExprKind::kBinary, Peek().line);
    e->bin_op = op == Tok::kStar ? BinOp::kMul
                                 : (op == Tok::kSlash ? BinOp::kDiv : BinOp::kMod);
    e->lhs = std::move(lhs);
    e->rhs = ParseUnary();
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::ParseUnary() {
  if (Check(Tok::kMinus) || Check(Tok::kBang)) {
    const Token& t = Advance();
    auto e = MakeExpr(ExprKind::kUnary, t.line);
    e->un_op = t.kind == Tok::kMinus ? UnOp::kNeg : UnOp::kNot;
    e->lhs = ParseUnary();
    return e;
  }
  return ParsePrimary();
}

ExprPtr Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case Tok::kIntLit: {
      Advance();
      auto e = MakeExpr(ExprKind::kIntLit, t.line);
      e->int_value = t.int_value;
      return e;
    }
    case Tok::kLParen: {
      Advance();
      ExprPtr e = ParseExpr();
      Expect(Tok::kRParen, "to close the parenthesised expression");
      return e;
    }
    case Tok::kAmp: {
      Advance();
      auto e = MakeExpr(ExprKind::kAddrOf, t.line);
      e->name = Expect(Tok::kIdent, "after '&'").text;
      if (Match(Tok::kLBracket)) {
        e->index = ParseExpr();
        Expect(Tok::kRBracket, "to close the subscript");
      }
      return e;
    }
    case Tok::kCallIo:
      return ParseCallIo();
    case Tok::kIdent: {
      Advance();
      if (Match(Tok::kLParen)) {
        // Builtin call, e.g. GetTime().
        auto e = MakeExpr(ExprKind::kBuiltin, t.line);
        e->name = t.text;
        if (!Check(Tok::kRParen)) {
          do {
            e->args.push_back(ParseExpr());
          } while (Match(Tok::kComma));
        }
        Expect(Tok::kRParen, "to close the call");
        return e;
      }
      if (Match(Tok::kLBracket)) {
        auto e = MakeExpr(ExprKind::kIndex, t.line);
        e->name = t.text;
        e->index = ParseExpr();
        Expect(Tok::kRBracket, "to close the subscript");
        return e;
      }
      auto e = MakeExpr(ExprKind::kVarRef, t.line);
      e->name = t.text;
      return e;
    }
    default:
      diags_.Error(t.line, t.col,
                   std::string("unexpected token '") + ToString(t.kind) + "' in expression");
      Advance();
      auto e = MakeExpr(ExprKind::kIntLit, t.line);
      e->int_value = 0;
      return e;
  }
}

}  // namespace easeio::easec
