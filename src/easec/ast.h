// Abstract syntax tree for EaseC.
//
// The tree is deliberately close to the paper's surface syntax: tasks over statements,
// with _call_IO / _IO_block_begin / _IO_block_end / _DMA_copy as first-class nodes so
// the semantic passes (precedence, dependence, regions) and the source-to-source
// transform can reason about them directly — the same information Clang AST matchers
// extract in the original implementation.

#ifndef EASEIO_EASEC_AST_H_
#define EASEIO_EASEC_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/io.h"

namespace easeio::easec {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// --- Expressions -------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kIntLit,
  kVarRef,     // local or __nv scalar
  kIndex,      // nv_array[expr]
  kUnary,      // -x, !x
  kBinary,     // arithmetic / comparison / logical
  kCallIo,     // _call_IO(Fn(args...), "Sem"[, window_ms])
  kBuiltin,    // GetTime(), etc. — non-peripheral builtins
  kAddrOf,     // &name or &name[expr]: address argument for _DMA_copy
};

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kAnd, kOr,
};

enum class UnOp : uint8_t { kNeg, kNot };

struct Expr {
  ExprKind kind;
  int line = 0;

  // kIntLit
  int64_t int_value = 0;

  // kVarRef / kIndex / kAddrOf / kBuiltin / kCallIo (io function name)
  std::string name;

  // kIndex / kAddrOf: subscript (may be null for &name)
  ExprPtr index;

  // kUnary / kBinary
  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;

  // kCallIo / kBuiltin: peripheral-call arguments (e.g. Send(buf, 6)).
  std::vector<ExprPtr> args;

  // kCallIo: annotation.
  kernel::IoSemantic sem = kernel::IoSemantic::kAlways;
  uint64_t window_ms = 0;

  // Filled by sema: site id for kCallIo; symbol binding for names.
  uint32_t site_id = UINT32_MAX;
  int32_t local_slot = -1;   // >= 0 when the name is a task-local variable
  int32_t nv_index = -1;     // >= 0 when the name is a __nv global
};

// --- Statements ---------------------------------------------------------------------------

enum class StmtKind : uint8_t {
  kDeclLocal,   // int16 x; / int16 x = expr;
  kAssign,      // lvalue = expr;
  kIf,
  kWhile,
  kRepeat,      // repeat (N) { ... } — fixed-trip loop (lane arrays, Section 6)
  kIoBlock,     // _IO_block_begin(...) ... _IO_block_end  (brace-matched by the parser)
  kDma,         // _DMA_copy(dst, src, bytes[, Exclude]);
  kNextTask,    // next_task(name);
  kEndTask,     // end_task;
  kExprStmt,    // expression evaluated for effect (a bare _call_IO)
  kDelay,       // delay(cycles); — models compute
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  // kDeclLocal / kAssign target
  std::string name;
  ExprPtr index;  // non-null for nv_array[i] = ...
  ExprPtr value;  // initialiser / RHS / condition / repeat count / delay cycles / expr

  // kIf
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;

  // kWhile / kRepeat / kIoBlock bodies
  std::vector<StmtPtr> body;

  // kIoBlock annotation
  kernel::IoSemantic sem = kernel::IoSemantic::kSingle;
  uint64_t window_ms = 0;
  uint32_t block_id = UINT32_MAX;  // filled by sema

  // kDma operands
  ExprPtr dma_dst;
  ExprPtr dma_src;
  ExprPtr dma_bytes;
  bool dma_exclude = false;
  uint32_t dma_id = UINT32_MAX;  // filled by sema

  // kNextTask
  std::string target_task;

  // kAssign / kDeclLocal symbol binding (filled by sema)
  int32_t local_slot = -1;
  int32_t nv_index = -1;

  // Index of this statement's entry in Analysis::def_use (filled by sema).
  uint32_t stmt_id = UINT32_MAX;
};

// --- Declarations --------------------------------------------------------------------------

struct NvDecl {
  std::string name;
  uint32_t elements = 1;  // 1 for scalars; N for int16 name[N]
  bool sram = false;      // __sram: volatile staging buffer (LEA RAM), lost on failure
  int line = 0;
};

struct TaskDecl {
  std::string name;
  std::vector<StmtPtr> body;
  int line = 0;
  uint32_t local_count = 0;  // filled by sema: number of int16 locals
};

struct Program {
  std::vector<NvDecl> nv_decls;
  std::vector<TaskDecl> tasks;
};

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_AST_H_
