// Recursive-descent parser for EaseC. Produces the Program AST; syntax errors are
// recorded in Diagnostics and the parser recovers at statement boundaries, so a single
// compile reports multiple errors.

#ifndef EASEIO_EASEC_PARSER_H_
#define EASEIO_EASEC_PARSER_H_

#include <vector>

#include "easec/ast.h"
#include "easec/diag.h"
#include "easec/token.h"

namespace easeio::easec {

class Parser {
 public:
  Parser(std::vector<Token> tokens, Diagnostics& diags);

  // Parses a whole translation unit.
  Program ParseProgram();

 private:
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Check(Tok kind) const { return Peek().kind == kind; }
  bool Match(Tok kind);
  const Token& Expect(Tok kind, const char* what);
  void SyncToStmtBoundary();

  NvDecl ParseNvDecl();
  TaskDecl ParseTask();
  std::vector<StmtPtr> ParseBlock();  // '{' stmt* '}'
  // Parses statements until one of the terminators (kRBrace or kIoBlockEnd) is seen;
  // the terminator is not consumed.
  std::vector<StmtPtr> ParseStmtsUntil(Tok terminator);
  StmtPtr ParseStmt();
  StmtPtr ParseIoBlock();
  StmtPtr ParseDma();

  // Annotation helper: parses `"Sem"[, window_ms]` (already inside the parens).
  void ParseSemantic(kernel::IoSemantic* sem, uint64_t* window_ms);

  ExprPtr ParseExpr() { return ParseOr(); }
  ExprPtr ParseOr();
  ExprPtr ParseAnd();
  ExprPtr ParseEquality();
  ExprPtr ParseRelational();
  ExprPtr ParseAdditive();
  ExprPtr ParseMultiplicative();
  ExprPtr ParseUnary();
  ExprPtr ParsePrimary();
  ExprPtr ParseCallIo();

  std::vector<Token> tokens_;
  Diagnostics& diags_;
  size_t pos_ = 0;
};

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_PARSER_H_
