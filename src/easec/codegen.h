// Bytecode generation from the analysed EaseC AST.

#ifndef EASEIO_EASEC_CODEGEN_H_
#define EASEIO_EASEC_CODEGEN_H_

#include <vector>

#include "easec/ast.h"
#include "easec/bytecode.h"
#include "easec/diag.h"
#include "easec/sema.h"

namespace easeio::easec {

// Compiles every task body to bytecode (one TaskCode per task, in program order).
// Sema must have run first (nodes carry slot/site/block/dma bindings).
std::vector<TaskCode> GenerateCode(const Program& program, const Analysis& analysis,
                                   Diagnostics& diags);

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_CODEGEN_H_
