#include "easec/program.h"

#include <utility>

#include "easec/codegen.h"
#include "easec/lexer.h"
#include "easec/parser.h"
#include "easec/transform.h"
#include "platform/check.h"

namespace easeio::easec {

CompileResult Compile(std::string_view source, const CompileOptions& options) {
  CompileResult result;
  Diagnostics diags;

  Lexer lexer(source, diags);
  std::vector<Token> tokens = lexer.Lex();
  if (diags.HasErrors()) {
    result.errors = diags.ToString();
    return result;
  }

  Parser parser(std::move(tokens), diags);
  result.ast = parser.ParseProgram();
  if (diags.HasErrors()) {
    result.errors = diags.ToString();
    return result;
  }
  if (result.ast.tasks.empty()) {
    result.errors = "1:1: program defines no tasks\n";
    return result;
  }

  result.analysis = Analyze(result.ast, diags, options.dma_priv_buffer_bytes);
  if (diags.HasErrors()) {
    result.errors = diags.ToString();
    return result;
  }

  result.transformed_source = TransformToSource(result.ast, result.analysis);
  result.code = GenerateCode(result.ast, result.analysis, diags);
  if (diags.HasErrors()) {
    result.errors = diags.ToString();
    return result;
  }

  result.ok = true;
  return result;
}

namespace {

// Shared immutable state the VM task bodies close over.
struct VmState {
  std::vector<TaskCode> code;
  Analysis analysis;
  std::vector<kernel::NvSlotId> nv_slots;     // kNoSlot for __sram declarations
  std::vector<uint32_t> global_addr;          // simulated address of every declaration
  std::vector<uint8_t> global_is_sram;
  std::vector<kernel::IoSiteId> site_ids;
  std::vector<kernel::IoBlockId> block_ids;
  std::vector<kernel::DmaSiteId> dma_ids;
  std::vector<uint32_t> local_counts;  // per task
};

// Builds the peripheral thunk for one easec I/O site.
kernel::IoOp MakeThunk(const std::shared_ptr<VmState>& state, uint32_t easec_site) {
  const IoSiteInfo& site = state->analysis.sites[easec_site];
  switch (site.fn) {
    case IoFn::kTemp:
      return [](kernel::TaskCtx& ctx) { return ctx.dev().temp().Read(ctx.dev()); };
    case IoFn::kHumd:
      return [](kernel::TaskCtx& ctx) { return ctx.dev().humidity().Read(ctx.dev()); };
    case IoFn::kPres:
      return [](kernel::TaskCtx& ctx) { return ctx.dev().pressure().Read(ctx.dev()); };
    case IoFn::kSend: {
      const int32_t nv = site.buffer_nv;
      const uint32_t bytes = site.buffer_bytes;
      return [state, nv, bytes](kernel::TaskCtx& ctx) {
        ctx.dev().radio().Send(ctx.dev(), state->global_addr[nv], bytes);
        return static_cast<int16_t>(0);
      };
    }
    case IoFn::kCapture: {
      const int32_t nv = site.buffer_nv;
      const uint32_t bytes = site.buffer_bytes;
      return [state, nv, bytes](kernel::TaskCtx& ctx) {
        const uint32_t addr = state->global_addr[nv];
        ctx.dev().camera().Capture(ctx.dev(), addr, bytes);
        return static_cast<int16_t>(ctx.dev().mem().Read16(addr));
      };
    }
  }
  EASEIO_CHECK(false, "unknown io function");
}

// Executes one task's bytecode. Locals are fresh per invocation — exactly the volatile
// semantics of task re-execution.
kernel::TaskId RunTask(const std::shared_ptr<VmState>& state, uint32_t task,
                       kernel::TaskCtx& ctx) {
  const TaskCode& code = state->code[task];
  std::vector<int32_t> locals(state->local_counts[task], 0);
  std::vector<int32_t> stack;
  stack.reserve(16);

  auto pop = [&stack]() {
    EASEIO_CHECK(!stack.empty(), "VM stack underflow");
    const int32_t v = stack.back();
    stack.pop_back();
    return v;
  };

  size_t pc = 0;
  for (;;) {
    EASEIO_CHECK(pc < code.size(), "VM fell off the end of task code");
    const Insn& insn = code[pc++];
    ctx.Cpu(1);  // one simulated cycle per instruction, plus memory costs below
    switch (insn.op) {
      case Op::kPushImm:
        stack.push_back(insn.a);
        break;
      case Op::kLoadLocal:
        stack.push_back(locals[static_cast<size_t>(insn.a)]);
        break;
      case Op::kStoreLocal:
        locals[static_cast<size_t>(insn.a)] = pop();
        break;
      case Op::kLoadNv: {
        const int32_t idx = pop();
        const size_t g = static_cast<size_t>(insn.a);
        if (state->global_is_sram[g] != 0) {
          // Volatile staging buffer: a plain charged access, no runtime interposition.
          stack.push_back(static_cast<int16_t>(
              ctx.dev().LoadWord(state->global_addr[g] + static_cast<uint32_t>(idx) * 2)));
        } else {
          stack.push_back(ctx.NvLoadI16(state->nv_slots[g], static_cast<uint32_t>(idx) * 2));
        }
        break;
      }
      case Op::kStoreNv: {
        const int32_t val = pop();
        const int32_t idx = pop();
        const size_t g = static_cast<size_t>(insn.a);
        if (state->global_is_sram[g] != 0) {
          ctx.dev().StoreWord(state->global_addr[g] + static_cast<uint32_t>(idx) * 2,
                              static_cast<uint16_t>(val));
        } else {
          ctx.NvStoreI16(state->nv_slots[g], static_cast<int16_t>(val),
                         static_cast<uint32_t>(idx) * 2);
        }
        break;
      }
      case Op::kAdd: { const int32_t r = pop(); stack.push_back(pop() + r); break; }
      case Op::kSub: { const int32_t r = pop(); stack.push_back(pop() - r); break; }
      case Op::kMul: { const int32_t r = pop(); stack.push_back(pop() * r); break; }
      case Op::kDiv: { const int32_t r = pop(); const int32_t l = pop(); stack.push_back(r == 0 ? 0 : l / r); break; }
      case Op::kMod: { const int32_t r = pop(); const int32_t l = pop(); stack.push_back(r == 0 ? 0 : l % r); break; }
      case Op::kEq: { const int32_t r = pop(); stack.push_back(pop() == r ? 1 : 0); break; }
      case Op::kNe: { const int32_t r = pop(); stack.push_back(pop() != r ? 1 : 0); break; }
      case Op::kLt: { const int32_t r = pop(); stack.push_back(pop() < r ? 1 : 0); break; }
      case Op::kGt: { const int32_t r = pop(); stack.push_back(pop() > r ? 1 : 0); break; }
      case Op::kLe: { const int32_t r = pop(); stack.push_back(pop() <= r ? 1 : 0); break; }
      case Op::kGe: { const int32_t r = pop(); stack.push_back(pop() >= r ? 1 : 0); break; }
      case Op::kAnd: { const int32_t r = pop(); stack.push_back((pop() != 0 && r != 0) ? 1 : 0); break; }
      case Op::kOr: { const int32_t r = pop(); stack.push_back((pop() != 0 || r != 0) ? 1 : 0); break; }
      case Op::kNeg:
        stack.push_back(-pop());
        break;
      case Op::kNot:
        stack.push_back(pop() == 0 ? 1 : 0);
        break;
      case Op::kJmp:
        pc = static_cast<size_t>(insn.a);
        break;
      case Op::kJz:
        if (pop() == 0) {
          pc = static_cast<size_t>(insn.a);
        }
        break;
      case Op::kCallIo: {
        const uint32_t easec_site = static_cast<uint32_t>(insn.a);
        const IoSiteInfo& site = state->analysis.sites[easec_site];
        const uint32_t lane =
            site.lane_slot >= 0
                ? static_cast<uint32_t>(locals[static_cast<size_t>(site.lane_slot)])
                : 0;
        const int16_t v = ctx.rt().CallIo(ctx, state->site_ids[easec_site], lane,
                                          MakeThunk(state, easec_site));
        stack.push_back(v);
        break;
      }
      case Op::kBlockBegin:
        ctx.IoBlockBegin(state->block_ids[static_cast<size_t>(insn.a)]);
        break;
      case Op::kBlockEnd:
        ctx.IoBlockEnd(state->block_ids[static_cast<size_t>(insn.a)]);
        break;
      case Op::kDma: {
        const int32_t bytes = pop();
        const int32_t src_idx = pop();
        const int32_t dst_idx = pop();
        const uint32_t dst = state->global_addr[static_cast<size_t>(insn.b)];
        const uint32_t src = state->global_addr[static_cast<size_t>(insn.c)];
        ctx.DmaCopy(state->dma_ids[static_cast<size_t>(insn.a)],
                    dst + static_cast<uint32_t>(dst_idx) * 2,
                    src + static_cast<uint32_t>(src_idx) * 2,
                    static_cast<uint32_t>(bytes));
        break;
      }
      case Op::kGetTimeMs:
        stack.push_back(static_cast<int32_t>(ctx.NowUs() / 1000));
        break;
      case Op::kDelay:
        ctx.Cpu(static_cast<uint64_t>(std::max<int32_t>(pop(), 0)));
        break;
      case Op::kPop:
        pop();
        break;
      case Op::kNextTask:
        return static_cast<kernel::TaskId>(insn.a);
      case Op::kEndTask:
        return kernel::kTaskDone;
    }
  }
}

}  // namespace

InstantiatedProgram Instantiate(const CompileResult& compiled, sim::Device& dev,
                                kernel::Runtime& rt, kernel::NvManager& nv) {
  (void)dev;
  EASEIO_CHECK(compiled.ok, "cannot instantiate a failed compile");

  auto state = std::make_shared<VmState>();
  state->code = compiled.code;
  state->analysis = compiled.analysis;

  InstantiatedProgram out;

  // Globals: __nv variables through the NV manager (runtime-interposed), __sram
  // staging buffers straight from the volatile arena.
  for (const NvDecl& decl : compiled.ast.nv_decls) {
    if (decl.sram) {
      state->nv_slots.push_back(kernel::kNoSlot);
      state->global_addr.push_back(dev.mem().AllocSram("easec." + decl.name,
                                                       decl.elements * 2));
      state->global_is_sram.push_back(1);
    } else {
      const kernel::NvSlotId slot = nv.Define("easec." + decl.name, decl.elements * 2);
      state->nv_slots.push_back(slot);
      state->global_addr.push_back(nv.slot(slot).addr);
      state->global_is_sram.push_back(0);
    }
  }
  out.nv_slots = state->nv_slots;

  // Blocks first (parents are created before children by construction).
  for (const BlockInfo& block : compiled.analysis.blocks) {
    kernel::IoBlockDesc desc;
    desc.task = static_cast<kernel::TaskId>(block.task);
    desc.name = "easec." + block.name;
    desc.sem = block.sem;
    desc.window_us = block.window_us;
    desc.parent = block.parent == UINT32_MAX ? kernel::kNoBlock
                                             : state->block_ids[block.parent];
    state->block_ids.push_back(rt.RegisterIoBlock(std::move(desc)));
  }

  // I/O sites (dependences reference earlier sites only).
  for (uint32_t i = 0; i < compiled.analysis.sites.size(); ++i) {
    const IoSiteInfo& site = compiled.analysis.sites[i];
    kernel::IoSiteDesc desc;
    desc.task = static_cast<kernel::TaskId>(site.task);
    desc.name = "easec." + compiled.analysis.tasks[site.task].name + "." + site.fn_name +
                std::to_string(i);
    desc.lanes = site.lanes;
    desc.sem = site.sem;
    desc.window_us = site.window_us;
    for (uint32_t dep : site.depends_on) {
      desc.depends_on.push_back(state->site_ids[dep]);
    }
    desc.block = site.block == UINT32_MAX ? kernel::kNoBlock : state->block_ids[site.block];
    state->site_ids.push_back(rt.RegisterIoSite(std::move(desc)));
  }

  // DMA sites.
  for (uint32_t i = 0; i < compiled.analysis.dmas.size(); ++i) {
    const DmaInfo& dma = compiled.analysis.dmas[i];
    kernel::DmaSiteDesc desc;
    desc.task = static_cast<kernel::TaskId>(dma.task);
    desc.name = "easec." + compiled.analysis.tasks[dma.task].name + ".dma" + std::to_string(i);
    desc.exclude = dma.exclude;
    desc.related_io = dma.related_io == UINT32_MAX ? kernel::kNoSite
                                                   : state->site_ids[dma.related_io];
    state->dma_ids.push_back(rt.RegisterDmaSite(std::move(desc)));
  }

  // Compiler facts: regions for EaseIO, shared/WAR sets for the baselines.
  for (uint32_t t = 0; t < compiled.analysis.tasks.size(); ++t) {
    const TaskInfo& info = compiled.analysis.tasks[t];
    std::vector<std::vector<kernel::NvSlotId>> regions;
    for (const auto& region : info.regions) {
      std::vector<kernel::NvSlotId> slots;
      for (uint32_t nv_idx : region) {
        slots.push_back(state->nv_slots[nv_idx]);
      }
      regions.push_back(std::move(slots));
    }
    rt.DeclareTaskRegions(static_cast<kernel::TaskId>(t), std::move(regions));

    std::vector<kernel::NvSlotId> shared;
    for (uint32_t nv_idx : info.shared) {
      shared.push_back(state->nv_slots[nv_idx]);
    }
    std::vector<kernel::NvSlotId> war;
    for (uint32_t nv_idx : info.war) {
      war.push_back(state->nv_slots[nv_idx]);
    }
    rt.DeclareTaskShared(static_cast<kernel::TaskId>(t), shared, war);

    state->local_counts.push_back(info.local_count);
  }

  // Task bodies.
  for (uint32_t t = 0; t < compiled.analysis.tasks.size(); ++t) {
    out.graph.Add(compiled.analysis.tasks[t].name, [state, t](kernel::TaskCtx& ctx) {
      return RunTask(state, t, ctx);
    });
  }
  out.entry = 0;
  out.site_ids = state->site_ids;
  out.block_ids = state->block_ids;
  out.dma_ids = state->dma_ids;
  out.state = state;
  return out;
}

}  // namespace easeio::easec
