// Cross-certification of easelint's static verdicts against exhaustive dynamic
// failure-schedule coverage (easelint --certify).
//
// The static and dynamic sides of the repository make claims about the same object —
// where a power failure can land and what it may corrupt — from opposite directions:
// the lint fixpoint proves hazards absent over the CFG, the chk-style exhaust replay
// enumerates every failure placement and watches for corruption. Certify runs both
// and demands they agree:
//
//   * A lint-clean program (no error/warning after the witness pass) must survive
//     every enumerated schedule: any violating trial means the fixpoint missed a
//     hazard and the report's verdict is "unsound".
//   * A program with findings must carry a simulator-confirmed counterexample for
//     every refutable finding (ConfirmWitnesses downgrades the rest to advisory);
//     the verdict is "findings-witnessed".
//   * Otherwise the verdict is "clean-certified".
//
// Schedule enumeration follows chk::por's idempotent-region rule, driven by the
// *static* region conditions the dataflow engine derived: when CollapsibleRegion
// holds program-wide, only gaps ending at a durable barrier keep a representative
// instant — the same pruning the explorer applies dynamically, justified here by the
// fixpoint instead of the trace. Trials run through platform::ParallelMap, so the
// report is byte-identical for any --jobs value.

#ifndef EASEIO_EASEC_LINT_CERTIFY_H_
#define EASEIO_EASEC_LINT_CERTIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chk/por.h"
#include "easec/lint/lint.h"
#include "easec/lint/witness.h"
#include "easec/program.h"

namespace easeio::easec::lint {

struct CertifyOptions {
  uint32_t exhaust = 1;  // schedules of at most this many failures (1 or 2)
  uint32_t jobs = 1;     // trial workers; 0 = hardware concurrency
  bool v2 = true;        // include the full-fixpoint /2 queries in the lint pass
  std::string runtime = "easeio";  // runtime the exhaust trials execute under
  WitnessOptions witness;          // shared replay config (seed, dark time, budget)
};

struct CertifyReport {
  std::string verdict;  // "clean-certified" | "findings-witnessed" | "unsound"

  // The witnessed lint result the verdict is based on (after ConfirmWitnesses).
  LintResult lint;
  uint32_t confirmed_findings = 0;   // witness == confirmed
  uint32_t downgraded_findings = 0;  // witness == unconfirmed (now advisory)

  // Coverage accounting. candidate_instants counts depth-1 representatives actually
  // replayed; collapsed_instants counts the enumerated instants the static region
  // rule proved interchangeable with a kept representative.
  uint64_t candidate_instants = 0;
  uint64_t collapsed_instants = 0;
  uint64_t pair_schedules = 0;  // depth-2 trials (exhaust == 2 only)
  uint64_t trials = 0;          // replays executed (golden excluded)
  uint64_t violations = 0;      // trials failing the oracle
  // Up to the first eight violating schedules, in enumeration order.
  std::vector<std::vector<uint64_t>> violating_schedules;

  // The static region conditions the pruning decision was made from.
  chk::RegionConditions conditions;
  bool por_collapsed = false;  // whether the region rule was allowed to prune
};

// Lints (and witness-confirms) the program, then exhausts failure schedules under
// `options` and cross-validates the two verdicts. `compiled` must have ok == true.
// Callers that already hold a witness-confirmed LintResult for the same program and
// options pass it as `witnessed` to skip the duplicate lint + replay pass.
CertifyReport Certify(const CompileResult& compiled, const CertifyOptions& options,
                      const LintResult* witnessed = nullptr);

// Stable JSON rendering (easeio-lint-certify/1; fixed field order, no timing data —
// byte-identical across jobs counts and runs).
std::string RenderCertifyJson(const CertifyReport& report, const std::string& source_name);

}  // namespace easeio::easec::lint

#endif  // EASEIO_EASEC_LINT_CERTIFY_H_
