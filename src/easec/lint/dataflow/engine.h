// The easelint dataflow engine: per-task CFGs + worklist fixpoints over the taint and
// WAR lattices, solved twice —
//
//   * `fwd`  — back edges excluded. The acyclic forward solution is exactly as strong
//     as the original straight-line table pass, so the easeio-lint/1 queries run over
//     it and stay byte-identical on the existing corpus.
//   * `full` — back edges included. The genuine fixpoint: loop-carried local flows,
//     iteration-order WAR hazards, cross-iteration freshness. The easeio-lint/2
//     queries fire on facts present here but absent from `fwd` — each such finding is
//     by construction invisible to the table pass.
//
// The engine also derives the region-condition summaries lint shares with chk::por:
// for every (task, region) it fills a chk::RegionConditions from the fixpoint — a
// durable def in the region (war_hazard), taint produced in one region consumed in
// another (io_taint_crossing), a branch steered by tainted values (value_steered), a
// Timely contract in scope (timely_window) — and aggregates them program-wide. The
// certify harness feeds the aggregate into chk's CollapsibleRegion before collapsing
// failure-instant classes, so the static and dynamic sides prune by the same rule.

#ifndef EASEIO_EASEC_LINT_DATAFLOW_ENGINE_H_
#define EASEIO_EASEC_LINT_DATAFLOW_ENGINE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "chk/por.h"
#include "easec/lint/dataflow/cfg.h"
#include "easec/lint/dataflow/domains.h"
#include "easec/lint/dataflow/solver.h"
#include "easec/program.h"

namespace easeio::easec::lint::dataflow {

struct StmtTaint {
  std::set<uint32_t> guarded;  // producer sites with a Single/Timely contract
  std::set<uint32_t> always;   // producer sites that re-execute silently
};

struct TaintSolution {
  std::vector<StmtTaint> stmt_in;              // per def/use entry, consumer-visible
  std::vector<std::set<uint32_t>> guarded_nv;  // per __nv declaration
  std::vector<std::set<uint32_t>> always_nv;
};

struct WarSolution {
  std::vector<std::set<uint32_t>> may_read_in;      // per def/use entry
  std::vector<std::set<uint32_t>> must_written_in;  // per def/use entry
  std::vector<std::set<uint32_t>> exposed_in;       // read-before-write on some path
};

struct DataflowResult {
  std::vector<TaskCfg> cfgs;  // one per task, task index order

  TaintSolution taint_fwd;
  TaintSolution taint_full;
  WarSolution war_fwd;
  WarSolution war_full;

  // chk::por's shared vocabulary, derived statically: [task][region].
  std::vector<std::vector<chk::RegionConditions>> region_conditions;
  chk::RegionConditions program_conditions;

  SolveStats stats;  // aggregated over every solve (both solutions, all rounds)

  std::vector<uint32_t> site_stmt;     // io site -> def/use entry evaluating it
  std::vector<uint64_t> stmt_cost_lb;  // per def/use entry: cycle lower bound

  // Per-node cost vector for MinPathCost over `cfg`.
  std::vector<uint64_t> NodeCosts(const TaskCfg& cfg) const;
};

DataflowResult Analyze(const Program& ast, const Analysis& a);

}  // namespace easeio::easec::lint::dataflow

#endif  // EASEIO_EASEC_LINT_DATAFLOW_ENGINE_H_
