#include "easec/lint/dataflow/domains.h"

namespace easeio::easec::lint::dataflow {

kernel::IoSemantic EffectiveSem(const Analysis& a, const IoSiteInfo& site) {
  uint32_t b = site.block;
  if (b == UINT32_MAX) {
    return site.sem;
  }
  while (a.blocks[b].parent != UINT32_MAX) {
    b = a.blocks[b].parent;
  }
  return a.blocks[b].sem;
}

bool UnionInto(std::set<uint32_t>& into, const std::set<uint32_t>& from) {
  bool changed = false;
  for (uint32_t v : from) {
    changed |= into.insert(v).second;
  }
  return changed;
}

void TaintGens(const Analysis& a, const StmtDefUse& e, std::set<uint32_t>& guarded,
               std::set<uint32_t>& always) {
  for (uint32_t s : e.io_sites) {
    const IoSiteInfo& site = a.sites[s];
    if (IsGuardedSem(site.sem)) {
      guarded.insert(s);
    }
    if (EffectiveSem(a, site) == kernel::IoSemantic::kAlways) {
      always.insert(s);
    }
  }
}

namespace {

bool JoinLocalMap(std::map<int32_t, std::set<uint32_t>>& into,
                  const std::map<int32_t, std::set<uint32_t>>& from) {
  bool changed = false;
  for (const auto& [slot, sites] : from) {
    changed |= UnionInto(into[slot], sites);
  }
  return changed;
}

}  // namespace

bool TaintDomain::Join(State& into, const State& from) {
  bool changed = JoinLocalMap(into.guarded, from.guarded);
  changed |= JoinLocalMap(into.always, from.always);
  return changed;
}

void TaintDomain::InSets(uint32_t stmt, const State& state, std::set<uint32_t>& guarded_in,
                         std::set<uint32_t>& always_in) const {
  const StmtDefUse& e = a_.def_use[stmt];
  for (int32_t l : e.local_uses) {
    auto git = state.guarded.find(l);
    if (git != state.guarded.end()) {
      UnionInto(guarded_in, git->second);
    }
    auto ait = state.always.find(l);
    if (ait != state.always.end()) {
      UnionInto(always_in, ait->second);
    }
  }
  for (uint32_t nv : e.nv_uses) {
    UnionInto(guarded_in, guarded_nv_[nv]);
    UnionInto(always_in, always_nv_[nv]);
  }
}

void TaintDomain::Transfer(uint32_t stmt, State& state) {
  const StmtDefUse& e = a_.def_use[stmt];

  std::set<uint32_t> guarded_out;
  std::set<uint32_t> always_out;
  InSets(stmt, state, guarded_out, always_out);

  for (uint32_t s : e.io_sites) {
    const IoSiteInfo& site = a_.sites[s];
    // Capture fills its __nv buffer from the peripheral: the buffer carries the
    // site's contract regardless of what the statement's own value flow does.
    if (site.fn == IoFn::kCapture && site.buffer_nv >= 0) {
      if (IsGuardedSem(site.sem)) {
        nv_changed_ |= UnionInto(guarded_nv_[site.buffer_nv], {s});
      }
      if (EffectiveSem(a_, site) == kernel::IoSemantic::kAlways) {
        nv_changed_ |= UnionInto(always_nv_[site.buffer_nv], {s});
      }
    }
  }
  TaintGens(a_, e, guarded_out, always_out);

  // Weak updates: stores add taint, never clear it.
  for (int32_t l : e.local_defs) {
    UnionInto(state.guarded[l], guarded_out);
    UnionInto(state.always[l], always_out);
  }
  for (uint32_t nv : e.nv_defs) {
    nv_changed_ |= UnionInto(guarded_nv_[nv], guarded_out);
    nv_changed_ |= UnionInto(always_nv_[nv], always_out);
  }

  // A DMA copies whatever taint its source holds into its destination.
  if (e.dma != UINT32_MAX) {
    const DmaInfo& d = a_.dmas[e.dma];
    if (d.src_nv >= 0 && d.dst_nv >= 0) {
      nv_changed_ |= UnionInto(guarded_nv_[d.dst_nv], guarded_nv_[d.src_nv]);
      nv_changed_ |= UnionInto(always_nv_[d.dst_nv], always_nv_[d.src_nv]);
    }
  }
}

bool WarDomain::Join(State& into, const State& from) {
  if (!from.reached) {
    return false;
  }
  if (!into.reached) {
    into = from;
    return true;
  }
  bool changed = UnionInto(into.may_read, from.may_read);
  changed |= UnionInto(into.exposed, from.exposed);
  // must_written is an intersection: drop anything not written on the new path.
  for (auto it = into.must_written.begin(); it != into.must_written.end();) {
    if (from.must_written.count(*it) == 0) {
      it = into.must_written.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  return changed;
}

void WarDomain::Transfer(uint32_t stmt, State& state) {
  const StmtDefUse& e = a_.def_use[stmt];
  state.reached = true;
  for (uint32_t nv : e.nv_uses) {
    state.may_read.insert(nv);
    if (state.must_written.count(nv) == 0) {
      state.exposed.insert(nv);  // reads happen before the statement's own writes
    }
  }
  state.must_written.insert(e.nv_defs.begin(), e.nv_defs.end());
}

}  // namespace easeio::easec::lint::dataflow
