// Abstract domains for the easelint fixpoint.
//
// Two lattices run over the task CFGs:
//
//   * TaintDomain — I/O provenance. A value's abstract state is the set of I/O sites
//     that may have produced it, split into the `guarded` (Single/Timely) and
//     `always` (effective-Always) maps the finding queries distinguish. Task locals
//     are flow-sensitive (they live in the per-node State); __nv variables are
//     flow-insensitive program-wide maps held by the domain itself — an __nv slot is
//     durable and cross-task, so any store anywhere may be the value a read observes
//     after an arbitrary reboot/reentry history. That split is exactly the
//     abstraction the original table-based pass computed by iterating linear sweeps;
//     re-expressing it over the CFG keeps the /1 queries byte-identical on
//     straight-line programs while the back-edge solution adds the loop-carried
//     local flows the sweeps could never see. All updates are weak (union-only): an
//     untainted overwrite does not clear taint — a deliberate over-approximation for
//     a lint whose job is to surface candidate flows.
//
//   * WarDomain — first-read/first-write per __nv variable. `may_read` unions the
//     variables the CPU may have read on some path to the node; `must_written`
//     intersects the variables written on every path. A write (CPU or DMA) to a
//     variable in may_read \ must_written is a candidate WAR hazard at that point;
//     comparing the back-edge solution against the forward one isolates the hazards
//     only a loop can realize — the ones the baseline compilers' textual-order WAR
//     tables provably miss.
//
// Both lattices are finite powersets, so the fixpoint terminates without widening
// (Widen reports no coarsening; the solver still counts its invocations).

#ifndef EASEIO_EASEC_LINT_DATAFLOW_DOMAINS_H_
#define EASEIO_EASEC_LINT_DATAFLOW_DOMAINS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "easec/program.h"

namespace easeio::easec::lint::dataflow {

inline bool IsGuardedSem(kernel::IoSemantic sem) {
  return sem == kernel::IoSemantic::kSingle || sem == kernel::IoSemantic::kTimely;
}

// Scope precedence (Section 3.3.1): the outermost enclosing block decides how a site
// re-executes.
kernel::IoSemantic EffectiveSem(const Analysis& a, const IoSiteInfo& site);

// Unions `from` into `into`; true when `into` grew.
bool UnionInto(std::set<uint32_t>& into, const std::set<uint32_t>& from);

// The per-statement gen sets: sites this statement evaluates, split by contract.
void TaintGens(const Analysis& a, const StmtDefUse& e, std::set<uint32_t>& guarded,
               std::set<uint32_t>& always);

class TaintDomain {
 public:
  struct State {
    std::map<int32_t, std::set<uint32_t>> guarded;  // local slot -> producer sites
    std::map<int32_t, std::set<uint32_t>> always;
  };

  TaintDomain(const Program& ast, const Analysis& a)
      : ast_(ast), a_(a), guarded_nv_(ast.nv_decls.size()), always_nv_(ast.nv_decls.size()) {}

  bool Join(State& into, const State& from);
  void Transfer(uint32_t stmt, State& state);
  static bool Widen(State&) { return false; }  // finite lattice

  // Whether any Transfer since the last call grew the flow-insensitive __nv maps —
  // the engine's outer fixpoint re-solves every task until this settles.
  bool TakeNvChanged() {
    const bool changed = nv_changed_;
    nv_changed_ = false;
    return changed;
  }

  const std::vector<std::set<uint32_t>>& guarded_nv() const { return guarded_nv_; }
  const std::vector<std::set<uint32_t>>& always_nv() const { return always_nv_; }

  // Consumer-visible IN sets of a statement: the union of the taint of everything it
  // reads (flow-sensitive locals from `state`, flow-insensitive __nv maps).
  void InSets(uint32_t stmt, const State& state, std::set<uint32_t>& guarded_in,
              std::set<uint32_t>& always_in) const;

 private:
  const Program& ast_;
  const Analysis& a_;
  std::vector<std::set<uint32_t>> guarded_nv_;
  std::vector<std::set<uint32_t>> always_nv_;
  bool nv_changed_ = false;
};

class WarDomain {
 public:
  struct State {
    bool reached = false;  // bottom until a path arrives (must-info needs it)
    std::set<uint32_t> may_read;
    std::set<uint32_t> must_written;
    // Variables with an *exposed* read on some path: a read not preceded by a write
    // of the same variable on that path. A later write of such a variable is the WAR
    // shape regional privatization exists for; a first-write-then-read is not.
    std::set<uint32_t> exposed;
  };

  explicit WarDomain(const Analysis& a) : a_(a) {}

  bool Join(State& into, const State& from);
  void Transfer(uint32_t stmt, State& state);
  static bool Widen(State&) { return false; }  // finite lattice

  static State EntryState() {
    State s;
    s.reached = true;
    return s;
  }

 private:
  const Analysis& a_;
};

}  // namespace easeio::easec::lint::dataflow

#endif  // EASEIO_EASEC_LINT_DATAFLOW_DOMAINS_H_
