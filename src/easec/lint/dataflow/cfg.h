// Per-task control-flow graph over EaseC statements.
//
// sema.h flattens every task body into a pre-order def/use table; the subtree_end /
// else_begin extents it records are exactly the structured-control-flow information a
// CFG needs, so the graph is reconstructed here without re-walking the AST. One node
// per def/use entry plus a synthetic entry and exit:
//
//   * sequences chain each statement's fallthrough exits to the next statement;
//   * kIf forks to its then/else ranges and joins their exits (an empty branch makes
//     the condition node itself a fallthrough);
//   * kWhile and kRepeat loop their body exits back to the header — those edges are
//     recorded as *back edges*, so a client can solve over the acyclic forward graph
//     (the straight-line approximation the original table-based lint embodied) or the
//     full graph (the fixpoint that sees loop-carried flows);
//   * a non-Always kIoBlock gets a skip edge (the runtime may elide the body on
//     re-execution), an Always block always runs it;
//   * kNextTask and kEndTask edge straight to the exit node.
//
// The builder is pure structure: no lattices, no costs. MinPathCost runs a
// node-weighted Dijkstra over the graph (back edges included), which the
// timely-loop-stale query uses to lower-bound the dynamic separation of a producer
// and a consumer across loop iterations.

#ifndef EASEIO_EASEC_LINT_DATAFLOW_CFG_H_
#define EASEIO_EASEC_LINT_DATAFLOW_CFG_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "easec/sema.h"

namespace easeio::easec::lint::dataflow {

struct CfgNode {
  uint32_t stmt = UINT32_MAX;  // def/use index; UINT32_MAX for entry/exit
  std::vector<uint32_t> succ;
  std::vector<uint32_t> pred;
};

class TaskCfg {
 public:
  static constexpr uint32_t kEntry = 0;
  static constexpr uint32_t kExit = 1;

  // Builds the CFG of `task` from the def/use table. The task's entries must be
  // contiguous in a.def_use (sema appends them that way).
  TaskCfg(const Analysis& a, uint32_t task);

  uint32_t task() const { return task_; }
  uint32_t node_count() const { return static_cast<uint32_t>(nodes_.size()); }
  uint32_t edge_count() const { return edge_count_; }
  const CfgNode& node(uint32_t id) const { return nodes_[id]; }

  // First / one-past-last def/use index of the task.
  uint32_t first_stmt() const { return first_; }
  uint32_t end_stmt() const { return end_; }

  // Node id of a def/use entry (entry must be in [first_stmt, end_stmt)).
  uint32_t NodeForStmt(uint32_t stmt) const { return stmt - first_ + 2; }

  bool IsBackEdge(uint32_t from, uint32_t to) const;
  const std::vector<std::pair<uint32_t, uint32_t>>& back_edges() const {
    return back_edges_;
  }

 private:
  void AddEdge(uint32_t from, uint32_t to, bool back);
  // Wires the statement subtree rooted at def/use index `s`; returns the nodes whose
  // control falls through to whatever follows the statement.
  std::vector<uint32_t> WireStmt(const Analysis& a, uint32_t s);
  // Wires the statement sequence covering def/use range [b, e) given the nodes that
  // fall through into it; returns the fallthrough exits of the whole sequence.
  std::vector<uint32_t> WireSeq(const Analysis& a, uint32_t b, uint32_t e,
                                std::vector<uint32_t> incoming);

  uint32_t task_ = 0;
  uint32_t first_ = 0;
  uint32_t end_ = 0;
  uint32_t edge_count_ = 0;
  std::vector<CfgNode> nodes_;
  std::vector<std::pair<uint32_t, uint32_t>> back_edges_;  // sorted (from, to)
};

// Minimum total weight over CFG paths from `from` to `to` (node ids), where entering
// node v costs cost[v]; neither endpoint's own cost is charged. Back edges are legal
// path segments — that is the point: the query asks how soon after `from` the program
// can reach `to` *around* a loop. Returns UINT64_MAX when unreachable.
uint64_t MinPathCost(const TaskCfg& cfg, const std::vector<uint64_t>& cost,
                     uint32_t from, uint32_t to);

}  // namespace easeio::easec::lint::dataflow

#endif  // EASEIO_EASEC_LINT_DATAFLOW_CFG_H_
