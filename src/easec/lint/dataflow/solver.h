// Generic worklist fixpoint solver over a TaskCfg.
//
// A Domain supplies:
//
//   using State = ...;                            // default-constructed == bottom
//   bool Join(State& into, const State& from);    // least upper bound; true if grew
//   void Transfer(uint32_t stmt, State& state);   // in-place gen/kill for a def/use
//                                                 // entry (may also fold facts into
//                                                 // flow-insensitive domain storage)
//   bool Widen(State& state);                     // jump toward top; true if it did
//                                                 // anything (finite lattices: false)
//
// The solver propagates forward from the entry node, maintaining an IN state per
// node; a node is re-queued when a predecessor's OUT grows its IN. Termination: every
// shipped domain is a finite powerset lattice (sets over the program's sites / __nv
// indices) with union-monotone transfer functions, so the chain of IN states is
// finite and the worklist drains. Widen is the safety valve for domains that are not:
// after `widen_threshold` growing joins at one node the solver invokes it, and counts
// how often it actually coarsened — a number the CLI exports, because a nonzero
// widening count means the analysis traded precision for termination.
//
// `include_back_edges` = false solves the acyclic forward restriction — the exact
// strength of the original straight-line table pass, used by the easeio-lint/1
// queries; true solves the full graph the /2 loop queries need.

#ifndef EASEIO_EASEC_LINT_DATAFLOW_SOLVER_H_
#define EASEIO_EASEC_LINT_DATAFLOW_SOLVER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "easec/lint/dataflow/cfg.h"

namespace easeio::easec::lint::dataflow {

struct SolveStats {
  uint64_t nodes = 0;       // filled by the engine: Σ node_count over the task CFGs
  uint64_t edges = 0;       // filled by the engine: Σ edge_count over the task CFGs
  uint64_t iterations = 0;  // node visits popped off the worklist
  uint64_t joins = 0;       // edge propagations that grew a successor's IN
  uint64_t widenings = 0;   // joins where Domain::Widen reported coarsening
};

template <typename Domain>
std::vector<typename Domain::State> Solve(const TaskCfg& cfg, Domain& dom,
                                          typename Domain::State entry_state,
                                          bool include_back_edges,
                                          uint32_t widen_threshold, SolveStats* stats) {
  std::vector<typename Domain::State> in(cfg.node_count());
  std::vector<uint32_t> grow_count(cfg.node_count(), 0);
  std::vector<bool> queued(cfg.node_count(), false);
  std::vector<bool> visited(cfg.node_count(), false);
  std::deque<uint32_t> worklist;

  in[TaskCfg::kEntry] = std::move(entry_state);
  worklist.push_back(TaskCfg::kEntry);
  queued[TaskCfg::kEntry] = true;

  while (!worklist.empty()) {
    const uint32_t n = worklist.front();
    worklist.pop_front();
    queued[n] = false;
    visited[n] = true;
    if (stats != nullptr) {
      ++stats->iterations;
    }

    typename Domain::State out = in[n];
    if (cfg.node(n).stmt != UINT32_MAX) {
      dom.Transfer(cfg.node(n).stmt, out);
    }

    for (uint32_t m : cfg.node(n).succ) {
      if (!include_back_edges && cfg.IsBackEdge(n, m)) {
        continue;
      }
      // A successor runs when its IN grew — and at least once even if it never
      // does: a bottom IN still feeds a Transfer whose gen sets (or side effects
      // into flow-insensitive storage) matter.
      const bool grew = dom.Join(in[m], out);
      if (grew) {
        if (stats != nullptr) {
          ++stats->joins;
        }
        if (++grow_count[m] > widen_threshold) {
          grow_count[m] = 0;
          if (dom.Widen(in[m]) && stats != nullptr) {
            ++stats->widenings;
          }
        }
      }
      if ((grew || !visited[m]) && !queued[m]) {
        queued[m] = true;
        worklist.push_back(m);
      }
    }
  }
  return in;
}

}  // namespace easeio::easec::lint::dataflow

#endif  // EASEIO_EASEC_LINT_DATAFLOW_SOLVER_H_
