#include "easec/lint/dataflow/cfg.h"

#include <algorithm>
#include <queue>

namespace easeio::easec::lint::dataflow {

TaskCfg::TaskCfg(const Analysis& a, uint32_t task) : task_(task) {
  first_ = 0;
  end_ = 0;
  bool found = false;
  for (uint32_t i = 0; i < a.def_use.size(); ++i) {
    if (a.def_use[i].task == task) {
      if (!found) {
        first_ = i;
        found = true;
      }
      end_ = i + 1;
    }
  }
  if (!found) {
    first_ = end_ = static_cast<uint32_t>(a.def_use.size());
  }

  nodes_.resize(2 + (end_ - first_));
  for (uint32_t s = first_; s < end_; ++s) {
    nodes_[NodeForStmt(s)].stmt = s;
  }

  std::vector<uint32_t> tails = WireSeq(a, first_, end_, {kEntry});
  for (uint32_t t : tails) {
    AddEdge(t, kExit, /*back=*/false);  // falling off the end leaves the task
  }
  std::sort(back_edges_.begin(), back_edges_.end());
}

void TaskCfg::AddEdge(uint32_t from, uint32_t to, bool back) {
  nodes_[from].succ.push_back(to);
  nodes_[to].pred.push_back(from);
  ++edge_count_;
  if (back) {
    back_edges_.emplace_back(from, to);
  }
}

bool TaskCfg::IsBackEdge(uint32_t from, uint32_t to) const {
  return std::binary_search(back_edges_.begin(), back_edges_.end(),
                            std::make_pair(from, to));
}

std::vector<uint32_t> TaskCfg::WireSeq(const Analysis& a, uint32_t b, uint32_t e,
                                       std::vector<uint32_t> incoming) {
  uint32_t s = b;
  while (s < e) {
    const uint32_t node = NodeForStmt(s);
    for (uint32_t in : incoming) {
      AddEdge(in, node, /*back=*/false);
    }
    incoming = WireStmt(a, s);
    s = a.def_use[s].subtree_end;
  }
  return incoming;
}

std::vector<uint32_t> TaskCfg::WireStmt(const Analysis& a, uint32_t s) {
  const StmtDefUse& e = a.def_use[s];
  const uint32_t node = NodeForStmt(s);
  switch (e.kind) {
    case StmtKind::kIf: {
      // [s+1, else_begin) is the then-body, [else_begin, subtree_end) the else-body.
      std::vector<uint32_t> exits;
      for (const auto& range :
           {std::make_pair(s + 1, e.else_begin), std::make_pair(e.else_begin, e.subtree_end)}) {
        if (range.first >= range.second) {
          exits.push_back(node);  // empty branch: the condition falls through
        } else {
          std::vector<uint32_t> tails = WireSeq(a, range.first, range.second, {node});
          exits.insert(exits.end(), tails.begin(), tails.end());
        }
      }
      return exits;
    }
    case StmtKind::kWhile:
    case StmtKind::kRepeat: {
      // The header evaluates the condition / trip count; body exits loop back to it.
      // Leaving via the header models the zero-iteration path — the same sound
      // under-constraint the cost lower bound uses.
      if (s + 1 < e.subtree_end) {
        std::vector<uint32_t> tails = WireSeq(a, s + 1, e.subtree_end, {node});
        for (uint32_t t : tails) {
          AddEdge(t, node, /*back=*/true);
        }
      }
      return {node};
    }
    case StmtKind::kIoBlock: {
      std::vector<uint32_t> exits;
      if (s + 1 < e.subtree_end) {
        std::vector<uint32_t> tails = WireSeq(a, s + 1, e.subtree_end, {node});
        exits.insert(exits.end(), tails.begin(), tails.end());
      } else {
        exits.push_back(node);
      }
      // A non-Always block may be elided on re-execution: keep a skip edge so the
      // may-analyses see the body-less path too. The block id is not on the kIoBlock
      // entry itself (sema records the *enclosing* block there) — read it off the
      // first body statement, whose innermost block is this one.
      bool always = false;
      if (s + 1 < e.subtree_end && a.def_use[s + 1].block != UINT32_MAX) {
        always = a.blocks[a.def_use[s + 1].block].sem == kernel::IoSemantic::kAlways;
      }
      if (!always && s + 1 < e.subtree_end) {
        exits.push_back(node);
      }
      return exits;
    }
    case StmtKind::kNextTask:
    case StmtKind::kEndTask:
      AddEdge(node, kExit, /*back=*/false);
      return {};
    default:
      return {node};
  }
}

uint64_t MinPathCost(const TaskCfg& cfg, const std::vector<uint64_t>& cost,
                     uint32_t from, uint32_t to) {
  std::vector<uint64_t> dist(cfg.node_count(), UINT64_MAX);
  using Item = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[from] = 0;
  queue.emplace(0, from);
  while (!queue.empty()) {
    const auto [d, n] = queue.top();
    queue.pop();
    if (d != dist[n]) {
      continue;
    }
    for (uint32_t m : cfg.node(n).succ) {
      const uint64_t step = m == to ? 0 : cost[m];
      if (dist[m] == UINT64_MAX || d + step < dist[m]) {
        dist[m] = d + step;
        queue.emplace(dist[m], m);
      }
    }
  }
  return dist[to];
}

}  // namespace easeio::easec::lint::dataflow
