#include "easec/lint/dataflow/engine.h"

#include "sim/costs.h"

namespace easeio::easec::lint::dataflow {
namespace {

// Re-queue budget per node before the solver calls Widen. The shipped lattices are
// finite powersets, so this is a safety valve, not a correctness requirement.
constexpr uint32_t kWidenThreshold = 64;

// Cycle lower bound a site's execution always pays: effective-Always calls run their
// peripheral latency every time; Single/Timely calls may be skipped, so zero keeps
// the bound sound (mirrors the /1 cost walk).
uint64_t SiteExecCostLb(const Analysis& a, uint32_t s) {
  const IoSiteInfo& site = a.sites[s];
  if (EffectiveSem(a, site) != kernel::IoSemantic::kAlways) {
    return 0;
  }
  switch (site.fn) {
    case IoFn::kTemp:
      return sim::kTempSensorCost.latency_cycles;
    case IoFn::kHumd:
      return sim::kHumiditySensorCost.latency_cycles;
    case IoFn::kPres:
      return sim::kPressureSensorCost.latency_cycles;
    case IoFn::kSend:
      return sim::kRadioWakeCost.latency_cycles +
             sim::kRadioCyclesPerByte * site.buffer_bytes;
    case IoFn::kCapture:
      return sim::kCameraCaptureCost.latency_cycles;
  }
  return 0;
}

// Solves the taint lattice over every task CFG, re-solving until the
// flow-insensitive __nv maps reach their program-wide fixpoint (they couple the
// tasks: a store in one task is visible to reads in every other). Terminates because
// the maps only grow and the universe of sites is finite.
TaintSolution SolveTaint(const Program& ast, const Analysis& a,
                         const std::vector<TaskCfg>& cfgs, bool include_back_edges,
                         SolveStats& stats) {
  TaintDomain dom(ast, a);
  std::vector<std::vector<TaintDomain::State>> in_per_task;
  do {
    in_per_task.clear();
    for (const TaskCfg& cfg : cfgs) {
      in_per_task.push_back(Solve(cfg, dom, TaintDomain::State{}, include_back_edges,
                                  kWidenThreshold, &stats));
    }
  } while (dom.TakeNvChanged());

  TaintSolution out;
  out.stmt_in.resize(a.def_use.size());
  for (uint32_t t = 0; t < cfgs.size(); ++t) {
    const TaskCfg& cfg = cfgs[t];
    for (uint32_t s = cfg.first_stmt(); s < cfg.end_stmt(); ++s) {
      StmtTaint& rec = out.stmt_in[s];
      dom.InSets(s, in_per_task[t][cfg.NodeForStmt(s)], rec.guarded, rec.always);
    }
  }
  out.guarded_nv = dom.guarded_nv();
  out.always_nv = dom.always_nv();
  return out;
}

WarSolution SolveWar(const Analysis& a, const std::vector<TaskCfg>& cfgs,
                     bool include_back_edges, SolveStats& stats) {
  WarSolution out;
  out.may_read_in.resize(a.def_use.size());
  out.must_written_in.resize(a.def_use.size());
  out.exposed_in.resize(a.def_use.size());
  WarDomain dom(a);
  for (const TaskCfg& cfg : cfgs) {
    const std::vector<WarDomain::State> in = Solve(
        cfg, dom, WarDomain::EntryState(), include_back_edges, kWidenThreshold, &stats);
    for (uint32_t s = cfg.first_stmt(); s < cfg.end_stmt(); ++s) {
      const WarDomain::State& state = in[cfg.NodeForStmt(s)];
      out.may_read_in[s] = state.may_read;
      out.must_written_in[s] = state.must_written;
      out.exposed_in[s] = state.exposed;
    }
  }
  return out;
}

}  // namespace

std::vector<uint64_t> DataflowResult::NodeCosts(const TaskCfg& cfg) const {
  std::vector<uint64_t> cost(cfg.node_count(), 0);
  for (uint32_t n = 2; n < cfg.node_count(); ++n) {
    cost[n] = stmt_cost_lb[cfg.node(n).stmt];
  }
  return cost;
}

DataflowResult Analyze(const Program& ast, const Analysis& a) {
  DataflowResult r;
  r.cfgs.reserve(a.tasks.size());
  for (uint32_t t = 0; t < a.tasks.size(); ++t) {
    r.cfgs.emplace_back(a, t);
    r.stats.nodes += r.cfgs.back().node_count();
    r.stats.edges += r.cfgs.back().edge_count();
  }

  r.taint_fwd = SolveTaint(ast, a, r.cfgs, /*include_back_edges=*/false, r.stats);
  r.taint_full = SolveTaint(ast, a, r.cfgs, /*include_back_edges=*/true, r.stats);
  r.war_fwd = SolveWar(a, r.cfgs, /*include_back_edges=*/false, r.stats);
  r.war_full = SolveWar(a, r.cfgs, /*include_back_edges=*/true, r.stats);

  // Site -> evaluating statement, and the per-statement cycle lower bound.
  r.site_stmt.assign(a.sites.size(), UINT32_MAX);
  r.stmt_cost_lb.assign(a.def_use.size(), 0);
  for (uint32_t i = 0; i < a.def_use.size(); ++i) {
    const StmtDefUse& e = a.def_use[i];
    uint64_t cost = 1;  // every statement compiles to at least one instruction
    cost += e.delay_cycles;
    if (e.dma != UINT32_MAX) {
      cost += sim::kDmaSetupCycles;
      if (a.dmas[e.dma].bytes_literal) {
        cost += sim::kDmaCyclesPerWord * (a.dmas[e.dma].bytes / 2);
      }
    }
    for (uint32_t s : e.io_sites) {
      r.site_stmt[s] = i;
      cost += SiteExecCostLb(a, s);
    }
    r.stmt_cost_lb[i] = cost;
  }

  // Region-condition summaries (the chk::por shared vocabulary), from the full
  // solution — the dynamic exploration the conditions gate sees loop iterations too.
  r.region_conditions.resize(a.tasks.size());
  for (uint32_t t = 0; t < a.tasks.size(); ++t) {
    r.region_conditions[t].resize(a.tasks[t].regions.size());
  }
  auto conditions_of = [&](uint32_t task, uint32_t region) -> chk::RegionConditions& {
    if (region >= r.region_conditions[task].size()) {
      r.region_conditions[task].resize(region + 1);
    }
    return r.region_conditions[task][region];
  };
  for (uint32_t i = 0; i < a.def_use.size(); ++i) {
    const StmtDefUse& e = a.def_use[i];
    chk::RegionConditions& c = conditions_of(e.task, e.region);
    for (uint32_t nv : e.nv_defs) {
      if (!ast.nv_decls[nv].sram) {
        c.war_hazard = true;  // a durable def lands inside the region
      }
    }
    const StmtTaint& in = r.taint_full.stmt_in[i];
    if ((e.kind == StmtKind::kIf || e.kind == StmtKind::kWhile) &&
        (!in.guarded.empty() || !in.always.empty())) {
      c.value_steered = true;  // sensed values steer control flow
    }
    for (uint32_t p : in.guarded) {
      const uint32_t ps = r.site_stmt[p];
      if (ps != UINT32_MAX &&
          (a.def_use[ps].task != e.task || a.def_use[ps].region != e.region)) {
        c.io_taint_crossing = true;
        if (a.def_use[ps].task == e.task) {
          conditions_of(e.task, a.def_use[ps].region).io_taint_crossing = true;
        }
      }
    }
  }
  for (uint32_t s = 0; s < a.sites.size(); ++s) {
    const IoSiteInfo& site = a.sites[s];
    if ((site.sem == kernel::IoSemantic::kTimely ||
         EffectiveSem(a, site) == kernel::IoSemantic::kTimely) &&
        r.site_stmt[s] != UINT32_MAX) {
      const StmtDefUse& e = a.def_use[r.site_stmt[s]];
      conditions_of(e.task, e.region).timely_window = true;
    }
  }
  for (const auto& task_regions : r.region_conditions) {
    for (const chk::RegionConditions& c : task_regions) {
      r.program_conditions.war_hazard |= c.war_hazard;
      r.program_conditions.io_taint_crossing |= c.io_taint_crossing;
      r.program_conditions.value_steered |= c.value_steered;
      r.program_conditions.timely_window |= c.timely_window;
    }
  }
  return r;
}

}  // namespace easeio::easec::lint::dataflow
