#include "easec/lint/run.h"

namespace easeio::easec::lint {

LintJobResult ExecuteLintJob(const LintJob& job) {
  LintJobResult out;
  const CompileResult compiled = Compile(job.source, job.compile_options);
  if (!compiled.ok) {
    out.compile_errors = compiled.errors;
    return out;
  }
  out.compiled = true;

  LintOptions lint_options;
  lint_options.dma_priv_buffer_bytes = job.compile_options.dma_priv_buffer_bytes;
  out.lint = Lint(compiled, lint_options);
  if (job.confirm_witnesses) {
    ConfirmWitnesses(compiled, out.lint, job.witness_options);
  } else {
    SuggestSchedules(compiled, out.lint, job.witness_options);
  }

  out.text = RenderText(out.lint, job.source_name);
  out.json = RenderJson(out.lint, job.source_name);
  out.has_findings = out.lint.errors + out.lint.warnings > 0;
  return out;
}

}  // namespace easeio::easec::lint
