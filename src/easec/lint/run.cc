#include "easec/lint/run.h"

namespace easeio::easec::lint {

LintJobResult ExecuteLintJob(const LintJob& job) {
  LintJobResult out;
  const CompileResult compiled = Compile(job.source, job.compile_options);
  if (!compiled.ok) {
    out.compile_errors = compiled.errors;
    return out;
  }
  out.compiled = true;

  LintOptions lint_options;
  lint_options.dma_priv_buffer_bytes = job.compile_options.dma_priv_buffer_bytes;
  lint_options.v2 = job.lint_v2;
  out.lint = Lint(compiled, lint_options);
  if (job.confirm_witnesses || job.certify_exhaust > 0) {
    ConfirmWitnesses(compiled, out.lint, job.witness_options);
  } else {
    SuggestSchedules(compiled, out.lint, job.witness_options);
  }

  if (job.certify_exhaust > 0) {
    CertifyOptions certify_options;
    certify_options.exhaust = job.certify_exhaust;
    certify_options.jobs = job.certify_jobs;
    certify_options.v2 = job.lint_v2;
    certify_options.witness = job.witness_options;
    out.certify = Certify(compiled, certify_options, &out.lint);
    out.certify_json = RenderCertifyJson(out.certify, job.source_name);
    out.has_certify = true;
  }

  out.text = RenderText(out.lint, job.source_name);
  out.json = RenderJson(out.lint, job.source_name);
  out.has_findings = out.lint.errors + out.lint.warnings > 0;
  return out;
}

}  // namespace easeio::easec::lint
