// The easelint run-a-job body as a library function, shared by the easelint CLI and
// the easeiod daemon: compile the program, run the dataflow analyses, suggest or
// replay witness schedules, and render both report forms. Pure and deterministic for
// a fixed spec — the property the daemon's content-addressed result cache relies on.

#ifndef EASEIO_EASEC_LINT_RUN_H_
#define EASEIO_EASEC_LINT_RUN_H_

#include <string>

#include "easec/lint/certify.h"
#include "easec/lint/lint.h"
#include "easec/lint/witness.h"
#include "easec/program.h"

namespace easeio::easec::lint {

struct LintJob {
  std::string source;       // program text (not a path — callers do the I/O)
  std::string source_name;  // name echoed into the reports, e.g. the path or <stdin>
  CompileOptions compile_options;
  WitnessOptions witness_options;
  // false: fill suggested schedules only; true: also replay each suggestion in the
  // simulator and confirm/downgrade (easelint --witness).
  bool confirm_witnesses = false;
  // Runs the full-fixpoint loop/branch queries and emits the easeio-lint/2 report
  // (easelint --lint-v2).
  bool lint_v2 = false;
  // Cross-certify the static verdict against exhaustive failure-schedule replay
  // (easelint --certify[=N]; 0 = off, 1-2 = max failures per schedule). Implies the
  // witness-confirm pass: the certify verdict is defined over confirmed findings.
  uint32_t certify_exhaust = 0;
  uint32_t certify_jobs = 1;  // trial workers for the exhaust replays
};

struct LintJobResult {
  // False when the program failed to compile; `compile_errors` then holds the
  // diagnostics and the remaining fields are empty (CLI exit 2).
  bool compiled = false;
  std::string compile_errors;

  LintResult lint;
  std::string text;  // RenderText output
  std::string json;  // RenderJson output (the easeio-lint/1 document)

  // True when any finding above advisory remains (CLI exit 1).
  bool has_findings = false;

  // Present when LintJob::certify_exhaust > 0.
  bool has_certify = false;
  CertifyReport certify;
  std::string certify_json;  // RenderCertifyJson output
};

LintJobResult ExecuteLintJob(const LintJob& job);

}  // namespace easeio::easec::lint

#endif  // EASEIO_EASEC_LINT_RUN_H_
