#include "easec/lint/lint.h"

#include <algorithm>
#include <map>
#include <set>

#include "easec/lint/dataflow/engine.h"
#include "report/json.h"
#include "sim/costs.h"

namespace easeio::easec::lint {
namespace {

using dataflow::EffectiveSem;
using kernel::IoSemantic;

bool IsGuarded(IoSemantic sem) { return dataflow::IsGuardedSem(sem); }

// Static task-graph reachability over next_task edges (conditional edges count).
std::vector<std::vector<bool>> Reachability(const Analysis& a) {
  const size_t n = a.tasks.size();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (const StmtDefUse& e : a.def_use) {
    if (e.kind == StmtKind::kNextTask && e.target_task != UINT32_MAX) {
      reach[e.task][e.target_task] = true;
    }
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
      }
    }
  }
  return reach;
}

// Source lines of call sites, from the annotated AST.
void SiteLinesInExpr(const Expr& e, std::map<uint32_t, int>& lines) {
  if (e.kind == ExprKind::kCallIo && e.site_id != UINT32_MAX) {
    lines.emplace(e.site_id, e.line);
  }
  if (e.index != nullptr) SiteLinesInExpr(*e.index, lines);
  if (e.lhs != nullptr) SiteLinesInExpr(*e.lhs, lines);
  if (e.rhs != nullptr) SiteLinesInExpr(*e.rhs, lines);
  for (const ExprPtr& arg : e.args) SiteLinesInExpr(*arg, lines);
}

void SiteLinesInStmts(const std::vector<StmtPtr>& stmts, std::map<uint32_t, int>& lines) {
  for (const StmtPtr& s : stmts) {
    if (s->index != nullptr) SiteLinesInExpr(*s->index, lines);
    if (s->value != nullptr) SiteLinesInExpr(*s->value, lines);
    SiteLinesInStmts(s->then_body, lines);
    SiteLinesInStmts(s->else_body, lines);
    SiteLinesInStmts(s->body, lines);
  }
}

// Everything the individual analyses share.
struct Context {
  const Program& ast;
  const Analysis& a;
  const dataflow::DataflowResult& df;  // the solved fixpoints the queries read
  std::vector<std::vector<bool>> reach;
  std::map<uint32_t, int> site_lines;
  std::vector<Finding>* findings;

  const char* NvName(uint32_t nv) const { return ast.nv_decls[nv].name.c_str(); }
  const char* TaskName(uint32_t t) const { return a.tasks[t].name.c_str(); }
  int SiteLine(uint32_t site) const {
    auto it = site_lines.find(site);
    return it == site_lines.end() ? 0 : it->second;
  }
};

// --- I/O taint queries --------------------------------------------------------------
//
// The propagation itself lives in the dataflow engine (TaintDomain): guarded /
// always producer-site sets over flow-sensitive locals and flow-insensitive __nv
// maps, solved to fixpoint over every task CFG. This class only *queries* the solved
// facts, walking the def/use table in pre-order so findings surface in source order.
// The /1 queries read the forward (back-edge-excluded) solution — the strength of the
// original linear table pass, which keeps the report byte-identical on programs that
// pass handled.
class TaintQueries {
 public:
  explicit TaintQueries(Context& ctx) : ctx_(ctx), sol_(ctx.df.taint_fwd) {}

  void Run() {
    // First execution region of each guarded site within its task (for the
    // region-escape check), discovered in pre-order.
    std::map<uint32_t, uint32_t> site_region;

    for (uint32_t i = 0; i < ctx_.a.def_use.size(); ++i) {
      const StmtDefUse& e = ctx_.a.def_use[i];
      const dataflow::StmtTaint& in = sol_.stmt_in[i];
      for (uint32_t s : e.io_sites) {
        site_region.emplace(s, e.region);
        CheckConsumer(s, in.guarded, in.always);
      }
      std::set<uint32_t> guarded_out = in.guarded;
      std::set<uint32_t> always_out = in.always;
      dataflow::TaintGens(ctx_.a, e, guarded_out, always_out);
      for (uint32_t nv : e.nv_defs) {
        CheckRegionEscape(e, nv, guarded_out, site_region);
      }
    }
  }

 private:
  static bool Union(std::set<uint32_t>& into, const std::set<uint32_t>& from) {
    bool changed = false;
    for (uint32_t v : from) {
      changed |= into.insert(v).second;
    }
    return changed;
  }

  // A Single/Timely consumer site: everything feeding its arguments (statement
  // granularity) plus, for Send, the transmitted __nv buffer.
  void CheckConsumer(uint32_t consumer, const std::set<uint32_t>& guarded_in,
                     const std::set<uint32_t>& always_in) {
    const IoSiteInfo& c = ctx_.a.sites[consumer];
    if (!IsGuarded(c.sem)) {
      return;
    }
    std::set<uint32_t> guarded = guarded_in;
    std::set<uint32_t> always = always_in;
    if (c.fn == IoFn::kSend && c.buffer_nv >= 0) {
      Union(guarded, sol_.guarded_nv[c.buffer_nv]);
      Union(always, sol_.always_nv[c.buffer_nv]);
    }
    const std::set<uint32_t> deps(c.depends_on.begin(), c.depends_on.end());

    for (uint32_t p : guarded) {
      if (p == consumer || deps.count(p) != 0) {
        continue;
      }
      const IoSiteInfo& prod = ctx_.a.sites[p];
      // Cross-task consumption where the program can loop back to the producer: the
      // value is re-produced every round, but no dependence edge ever forces the
      // consumer to stay in step — the intra-task rule cannot see task boundaries.
      // The linear one-shot pipeline (weather's Figure 3/9 shape) is accepted.
      if (prod.task != c.task && ctx_.reach[c.task][prod.task] &&
          !seen_cross_.count({consumer, p})) {
        seen_cross_.insert({consumer, p});
        Finding f;
        f.code = "taint-cross-task";
        f.severity = Severity::kWarning;
        f.line = ctx_.SiteLine(consumer);
        f.subject = c.fn_name;
        f.message = std::string(kernel::ToString(prod.sem)) + " result of " +
                    prod.fn_name + "() in task '" + ctx_.TaskName(prod.task) +
                    "' is consumed by " + std::string(kernel::ToString(c.sem)) + " " +
                    c.fn_name + "() in task '" + ctx_.TaskName(c.task) +
                    "', which loops back to the producer; no dependence edge keeps "
                    "them in step across the task boundary";
        f.fixit = "re-sample the value in task '" + std::string(ctx_.TaskName(c.task)) +
                  "' or fold producer and consumer into one task so the dependence "
                  "rule applies";
        if (prod.sem == IoSemantic::kTimely && prod.window_us > 0) {
          // Refutable: a reboot parked between the producing task's commit and the
          // consumer lets the consumer transmit a reading older than its window.
          f.witness_runtime = "easeio";
          f.anchor_site = p;
          f.anchor_consumer = consumer;
          f.anchor_window_us = prod.window_us;
        }
        ctx_.findings->push_back(std::move(f));
      }
    }

    for (uint32_t p : always) {
      if (p == consumer || deps.count(p) != 0) {
        continue;
      }
      const IoSiteInfo& prod = ctx_.a.sites[p];
      // Same-task flow out of an effective-Always read that sema's producer tracking
      // lost (e.g. through a DMA copy): on re-execution the read produces a fresh
      // value and updates NVM, while the locked consumer's recorded output stays
      // stale — committed state and emitted output disagree.
      if (prod.task == c.task && EffectiveSem(ctx_.a, c) != IoSemantic::kAlways &&
          !seen_stale_.count({consumer, p})) {
        seen_stale_.insert({consumer, p});
        Finding f;
        f.code = "stale-always-into-single";
        f.severity = Severity::kWarning;
        f.line = ctx_.SiteLine(consumer);
        f.subject = c.fn_name;
        f.message = "Always result of " + prod.fn_name + "() flows into " +
                    std::string(kernel::ToString(c.sem)) + " " + c.fn_name +
                    "() with no dependence edge (the flow passes outside sema's "
                    "producer tracking); a re-executed read updates NVM while the "
                    "locked consumer keeps its stale output";
        f.fixit = "annotate the " + prod.fn_name +
                  "() read 'Single', or wrap both calls in one _IO_block so they "
                  "re-execute together";
        f.witness_runtime = "easeio";
        f.anchor_site = p;
        f.anchor_consumer = consumer;
        ctx_.findings->push_back(std::move(f));
      }
    }
  }

  // A Single result stored to NV in a later DMA region of the producing task:
  // regional privatization snapshots and restores per region, so a reboot that
  // partially restores re-exposes the store without its producing context.
  void CheckRegionEscape(const StmtDefUse& e, uint32_t nv,
                         const std::set<uint32_t>& guarded_out,
                         const std::map<uint32_t, uint32_t>& site_region) {
    if (ctx_.ast.nv_decls[nv].sram) {
      return;
    }
    for (uint32_t p : guarded_out) {
      const IoSiteInfo& prod = ctx_.a.sites[p];
      if (prod.sem != IoSemantic::kSingle || prod.task != e.task) {
        continue;
      }
      auto it = site_region.find(p);
      if (it == site_region.end() || e.region <= it->second) {
        continue;
      }
      if (!seen_escape_.insert({nv, p}).second) {
        continue;
      }
      Finding f;
      f.code = "taint-region-escape";
      f.severity = Severity::kWarning;
      f.line = e.line;
      f.subject = ctx_.NvName(nv);
      f.message = "Single result of " + prod.fn_name + "() (region " +
                  std::to_string(it->second) + ") is stored to '" +
                  std::string(ctx_.NvName(nv)) + "' in region " +
                  std::to_string(e.region) +
                  ", outside its producing region; regional privatization restores "
                  "per region and cannot couple the store to its producer";
      f.fixit = "store '" + std::string(ctx_.NvName(nv)) +
                "' before the _DMA_copy that ends region " + std::to_string(it->second);
      ctx_.findings->push_back(std::move(f));
    }
  }

  Context& ctx_;
  const dataflow::TaintSolution& sol_;
  std::set<std::pair<uint32_t, uint32_t>> seen_cross_;
  std::set<std::pair<uint32_t, uint32_t>> seen_stale_;
  std::set<std::pair<uint32_t, uint32_t>> seen_escape_;
};

// --- DMA classification audit -------------------------------------------------------

void DmaAudit(Context& ctx) {
  const Analysis& a = ctx.a;
  // CPU-written __nv variables, program-wide.
  std::set<uint32_t> cpu_written;
  for (const StmtDefUse& e : a.def_use) {
    cpu_written.insert(e.nv_defs.begin(), e.nv_defs.end());
  }
  // DMA line = its statement's line.
  std::vector<int> dma_line(a.dmas.size(), 0);
  for (const StmtDefUse& e : a.def_use) {
    if (e.dma != UINT32_MAX) {
      dma_line[e.dma] = e.line;
    }
  }

  for (uint32_t i = 0; i < a.dmas.size(); ++i) {
    const DmaInfo& d = a.dmas[i];
    const int line = dma_line[i];

    if (d.exclude && !d.src_sram && d.dst_sram && d.src_nv >= 0 &&
        cpu_written.count(static_cast<uint32_t>(d.src_nv)) != 0) {
      Finding f;
      f.code = "dma-exclude-unsafe";
      f.severity = Severity::kWarning;
      f.line = line;
      f.subject = ctx.NvName(d.src_nv);
      f.message = "Exclude on an NV -> volatile copy whose source '" +
                  std::string(ctx.NvName(d.src_nv)) +
                  "' is CPU-written; regional privatization would keep a pristine "
                  "copy for re-execution, Exclude opts out of it";
      f.fixit = "drop Exclude (reserve it for genuinely constant data)";
      ctx.findings->push_back(std::move(f));
    }

    if (!d.bytes_literal) {
      Finding f;
      f.code = "dma-bytes-nonliteral";
      f.severity = Severity::kWarning;
      f.line = line;
      f.subject = d.dst_nv >= 0 ? ctx.NvName(d.dst_nv) : "";
      f.message = "non-literal _DMA_copy byte count defeats the compile-time "
                  "privatization-budget check; the transfer size is only known at "
                  "run time";
      f.fixit = "use a literal byte count";
      ctx.findings->push_back(std::move(f));
    }

    // Literal range checks, in bytes (int16 elements are 2 bytes).
    auto check_bounds = [&](int32_t nv, int64_t offset, const char* which) {
      if (nv < 0 || offset < 0 || !d.bytes_literal || d.bytes == 0) {
        return;
      }
      const uint64_t limit = 2ull * ctx.ast.nv_decls[nv].elements;
      const uint64_t end = 2ull * static_cast<uint64_t>(offset) + d.bytes;
      if (end > limit) {
        Finding f;
        f.code = "dma-out-of-bounds";
        f.severity = Severity::kError;
        f.line = line;
        f.subject = ctx.NvName(nv);
        f.message = std::string(which) + " range of _DMA_copy ends at byte " +
                    std::to_string(end) + " but '" + std::string(ctx.NvName(nv)) +
                    "' is only " + std::to_string(limit) + " bytes";
        f.fixit = "reduce the byte count to " +
                  std::to_string(limit > 2ull * static_cast<uint64_t>(offset)
                                     ? limit - 2ull * static_cast<uint64_t>(offset)
                                     : 0) +
                  " or fix the offset";
        ctx.findings->push_back(std::move(f));
      }
    };
    check_bounds(d.dst_nv, d.dst_offset, "destination");
    check_bounds(d.src_nv, d.src_offset, "source");

    if (d.src_nv >= 0 && d.src_nv == d.dst_nv && d.src_offset >= 0 && d.dst_offset >= 0 &&
        d.bytes_literal && d.bytes > 0) {
      const uint64_t s0 = 2ull * static_cast<uint64_t>(d.src_offset);
      const uint64_t d0 = 2ull * static_cast<uint64_t>(d.dst_offset);
      if (s0 < d0 + d.bytes && d0 < s0 + d.bytes) {
        Finding f;
        f.code = "dma-overlap";
        f.severity = Severity::kError;
        f.line = line;
        f.subject = ctx.NvName(d.src_nv);
        f.message = "_DMA_copy source bytes [" + std::to_string(s0) + ", " +
                    std::to_string(s0 + d.bytes) + ") and destination bytes [" +
                    std::to_string(d0) + ", " + std::to_string(d0 + d.bytes) +
                    ") of '" + std::string(ctx.NvName(d.src_nv)) +
                    "' overlap; a torn transfer re-reads its own output";
        f.fixit = "separate the ranges or stage through another buffer";
        ctx.findings->push_back(std::move(f));
      }
    }
  }
}

// --- Timely feasibility / task on-time budget ---------------------------------------
//
// A sound cycle *lower bound* per task (1 cycle == 1 us on the modelled 1 MHz core):
// each statement costs at least one instruction; literal delays and DMA bus cycles
// are added exactly; effective-Always peripheral calls always pay their latency;
// skippable constructs (Single/Timely sites and blocks, while loops) count zero.
// For every site the walk records the minimum remaining cycles from the call to task
// commit — for `repeat` lanes, the last iteration, which is the best case.
class CostWalk {
 public:
  explicit CostWalk(Context& ctx) : ctx_(ctx) {}

  void Run() {
    const double on_time_j =
        0.5 * sim::kDefaultCapacitanceF *
        (sim::kDefaultVMax * sim::kDefaultVMax - sim::kDefaultVOff * sim::kDefaultVOff);
    const uint64_t worst_on_us =
        static_cast<uint64_t>(on_time_j / sim::kCpuEnergyPerCycleJ);

    for (uint32_t t = 0; t < ctx_.ast.tasks.size(); ++t) {
      const uint64_t total = StmtsLb(ctx_.ast.tasks[t].body, 0);
      if (total > worst_on_us) {
        Finding f;
        f.code = "task-exceeds-on-time";
        f.severity = Severity::kWarning;
        f.line = ctx_.ast.tasks[t].line;
        f.subject = ctx_.TaskName(t);
        f.message = "task '" + std::string(ctx_.TaskName(t)) + "' needs at least " +
                    std::to_string(total) +
                    " cycles straight-line, but a full capacitor sustains at most " +
                    std::to_string(worst_on_us) +
                    " cycles of on-time: it can never commit on harvested energy";
        f.fixit = "split '" + std::string(ctx_.TaskName(t)) + "' into smaller tasks";
        ctx_.findings->push_back(std::move(f));
      }
    }

    for (uint32_t s = 0; s < ctx_.a.sites.size(); ++s) {
      const IoSiteInfo& site = ctx_.a.sites[s];
      if (site.sem != IoSemantic::kTimely || site.window_us == 0) {
        continue;
      }
      auto it = site_tail_.find(s);
      if (it == site_tail_.end() || it->second <= site.window_us) {
        continue;
      }
      Finding f;
      f.code = "timely-infeasible";
      f.severity = Severity::kError;
      f.line = ctx_.SiteLine(s);
      f.subject = site.fn_name;
      f.message = "Timely window of " + std::to_string(site.window_us) +
                  " us can never be met: at least " + std::to_string(it->second) +
                  " cycles remain between this call and task commit, so any reboot "
                  "past the call finds the reading stale and forces re-execution "
                  "(the annotation degrades to Always; repeated failures livelock)";
      f.fixit = "widen the window to at least " +
                std::to_string((it->second + 999) / 1000) +
                " ms or move the call later in the task";
      f.witness_runtime = "easeio";
      f.anchor_site = s;
      f.anchor_window_us = site.window_us;
      ctx_.findings->push_back(std::move(f));
    }
  }

 private:
  uint64_t SiteExecCost(uint32_t s) const {
    const IoSiteInfo& site = ctx_.a.sites[s];
    if (EffectiveSem(ctx_.a, site) != IoSemantic::kAlways) {
      return 0;  // may be skipped on re-execution; zero keeps the bound sound
    }
    switch (site.fn) {
      case IoFn::kTemp:
        return sim::kTempSensorCost.latency_cycles;
      case IoFn::kHumd:
        return sim::kHumiditySensorCost.latency_cycles;
      case IoFn::kPres:
        return sim::kPressureSensorCost.latency_cycles;
      case IoFn::kSend:
        return sim::kRadioWakeCost.latency_cycles +
               sim::kRadioCyclesPerByte * site.buffer_bytes;
      case IoFn::kCapture:
        return sim::kCameraCaptureCost.latency_cycles;
    }
    return 0;
  }

  void SitesInExpr(const Expr& e, std::vector<uint32_t>& out) const {
    if (e.kind == ExprKind::kCallIo && e.site_id != UINT32_MAX) {
      out.push_back(e.site_id);
    }
    if (e.index != nullptr) SitesInExpr(*e.index, out);
    if (e.lhs != nullptr) SitesInExpr(*e.lhs, out);
    if (e.rhs != nullptr) SitesInExpr(*e.rhs, out);
    for (const ExprPtr& arg : e.args) SitesInExpr(*arg, out);
  }

  // Lower bound of executing `stmts` once, given `suffix` cycles follow them.
  // Processes statements back to front so each site's tail is available directly.
  uint64_t StmtsLb(const std::vector<StmtPtr>& stmts, uint64_t suffix) {
    uint64_t cur = suffix;
    for (auto it = stmts.rbegin(); it != stmts.rend(); ++it) {
      const Stmt& s = **it;
      uint64_t cost = 1;  // every statement compiles to at least one instruction
      switch (s.kind) {
        case StmtKind::kDelay:
          if (s.value->kind == ExprKind::kIntLit && s.value->int_value > 0) {
            cost += static_cast<uint64_t>(s.value->int_value);
          }
          break;
        case StmtKind::kDma: {
          cost += sim::kDmaSetupCycles;
          if (s.dma_id != UINT32_MAX && ctx_.a.dmas[s.dma_id].bytes_literal) {
            cost += sim::kDmaCyclesPerWord * (ctx_.a.dmas[s.dma_id].bytes / 2);
          }
          break;
        }
        case StmtKind::kIf:
          cost += std::min(StmtsLb(s.then_body, cur), StmtsLb(s.else_body, cur));
          break;
        case StmtKind::kWhile:
          StmtsLb(s.body, cur);  // zero iterations is the bound; still record tails
          break;
        case StmtKind::kRepeat: {
          const uint64_t body = StmtsLb(s.body, cur);  // tails = last iteration
          const uint64_t n = s.value->kind == ExprKind::kIntLit && s.value->int_value > 0
                                 ? static_cast<uint64_t>(s.value->int_value)
                                 : 0;
          cost += n * body;
          break;
        }
        case StmtKind::kIoBlock: {
          const uint64_t body = StmtsLb(s.body, cur);
          if (s.sem == IoSemantic::kAlways) {
            cost += body;  // an Always block always runs; others may be skipped
          }
          break;
        }
        default:
          break;
      }
      std::vector<uint32_t> sites;
      if (s.index != nullptr) SitesInExpr(*s.index, sites);
      if (s.value != nullptr) SitesInExpr(*s.value, sites);
      for (uint32_t site : sites) {
        cost += SiteExecCost(site);
        auto [pos, inserted] = site_tail_.emplace(site, cur);
        if (!inserted && cur < pos->second) {
          pos->second = cur;
        }
      }
      cur += cost;
    }
    return cur - suffix;
  }

  Context& ctx_;
  std::map<uint32_t, uint64_t> site_tail_;  // site -> min cycles from call to commit
};

// --- WAR through DMA, invisible to the baseline fact sets ---------------------------

void WarDmaInvisible(Context& ctx) {
  const Analysis& a = ctx.a;
  for (uint32_t i = 0; i < a.def_use.size(); ++i) {
    const StmtDefUse& e = a.def_use[i];
    if (e.dma == UINT32_MAX) {
      continue;
    }
    const DmaInfo& d = a.dmas[e.dma];
    // DMA statements are top-level, so every textually earlier read of the task is on
    // some path into them: the full solution's may-read IN set at the statement is
    // exactly the linear "read so far" table the original pass kept.
    const std::set<uint32_t>& read_before = ctx.df.war_full.may_read_in[i];
    if (d.dst_nv >= 0 && !d.dst_sram &&
        read_before.count(static_cast<uint32_t>(d.dst_nv)) != 0) {
      const TaskInfo& task = a.tasks[e.task];
      const bool in_war =
          std::find(task.war.begin(), task.war.end(),
                    static_cast<uint32_t>(d.dst_nv)) != task.war.end();
      if (!in_war) {
        Finding f;
        f.code = "war-dma-invisible";
        f.severity = Severity::kWarning;
        f.line = e.line;
        f.subject = ctx.NvName(d.dst_nv);
        f.message = "task '" + std::string(ctx.TaskName(e.task)) + "' reads '" +
                    std::string(ctx.NvName(d.dst_nv)) +
                    "' before this _DMA_copy overwrites it; DMA operands are "
                    "invisible to the baseline compilers' WAR analysis, so the "
                    "variable is not privatized and a re-execution reads the new "
                    "value";
        f.fixit = "stage the copy through a __sram buffer, or touch '" +
                  std::string(ctx.NvName(d.dst_nv)) +
                  "' with a CPU write so the WAR set sees it";
        f.witness_runtime = "alpaca";
        f.anchor_dma = e.dma;
        ctx.findings->push_back(std::move(f));
      }
    }
  }
}

// --- Scope precedence demotion ------------------------------------------------------

void ScopeDemotion(Context& ctx) {
  for (uint32_t s = 0; s < ctx.a.sites.size(); ++s) {
    const IoSiteInfo& site = ctx.a.sites[s];
    if (!IsGuarded(site.sem) || site.block == UINT32_MAX) {
      continue;
    }
    if (EffectiveSem(ctx.a, site) != IoSemantic::kAlways) {
      continue;
    }
    Finding f;
    f.code = "scope-demotion";
    f.severity = Severity::kWarning;
    f.line = ctx.SiteLine(s);
    f.subject = site.fn_name;
    f.message = std::string(kernel::ToString(site.sem)) + " annotation on " +
                site.fn_name +
                "() sits under an outermost Always block; scope precedence forces "
                "the block, silently demoting the call to Always re-execution";
    f.fixit = "move the call out of the Always block or change the block semantics";
    f.witness_runtime = "easeio";
    f.anchor_site = s;
    ctx.findings->push_back(std::move(f));
  }
}

// --- Full-fixpoint queries (easeio-lint/2) ------------------------------------------
//
// Everything below fires only on facts the forward solution (and therefore the
// original table pass) cannot contain: flows that exist solely across a loop back
// edge, and read-before-write pairs textual order hides. Gated behind
// LintOptions::v2 so the /1 report stays frozen.
class V2Queries {
 public:
  explicit V2Queries(Context& ctx) : ctx_(ctx) {}

  void Run() {
    TaintLoopCarried();
    WarPathDivergent();
  }

 private:
  // Producer sites visible to consumer site `c` evaluated by statement `i` under
  // `sol`: the statement's guarded IN plus, for Send, the transmitted buffer's map.
  std::set<uint32_t> GuardedProducers(const dataflow::TaintSolution& sol, uint32_t i,
                                      const IoSiteInfo& c) const {
    std::set<uint32_t> g = sol.stmt_in[i].guarded;
    if (c.fn == IoFn::kSend && c.buffer_nv >= 0) {
      g.insert(sol.guarded_nv[c.buffer_nv].begin(), sol.guarded_nv[c.buffer_nv].end());
    }
    return g;
  }

  void TaintLoopCarried() {
    std::set<std::pair<uint32_t, uint32_t>> seen;
    for (uint32_t i = 0; i < ctx_.a.def_use.size(); ++i) {
      const StmtDefUse& e = ctx_.a.def_use[i];
      for (uint32_t s : e.io_sites) {
        const IoSiteInfo& c = ctx_.a.sites[s];
        if (!IsGuarded(c.sem)) {
          continue;
        }
        const std::set<uint32_t> fwd = GuardedProducers(ctx_.df.taint_fwd, i, c);
        const std::set<uint32_t> deps(c.depends_on.begin(), c.depends_on.end());
        for (uint32_t p : GuardedProducers(ctx_.df.taint_full, i, c)) {
          if (p == s || fwd.count(p) != 0 || deps.count(p) != 0 ||
              !seen.insert({s, p}).second) {
            continue;
          }
          const IoSiteInfo& prod = ctx_.a.sites[p];
          Finding f;
          f.code = "taint-loop-carried";
          f.severity = Severity::kWarning;
          f.line = ctx_.SiteLine(s);
          f.subject = c.fn_name;
          f.message = std::string(kernel::ToString(prod.sem)) + " result of " +
                      prod.fn_name + "() reaches " +
                      std::string(kernel::ToString(c.sem)) + " " + c.fn_name +
                      "() only across a loop back edge: the consumed value was "
                      "produced in an earlier iteration, and the dependence rule "
                      "never spans iterations, so the freshness contract silently "
                      "covers the stale prior round";
          f.fixit = "re-sample " + prod.fn_name +
                    "() before the consumer inside the loop body so producer and "
                    "consumer share an iteration";
          f.witness_runtime = "easeio";
          f.anchor_site = p;
          f.anchor_consumer = s;
          if (prod.sem == IoSemantic::kTimely && prod.window_us > 0) {
            f.anchor_window_us = prod.window_us;
          }
          ctx_.findings->push_back(std::move(f));
          TimelyLoopStale(i, s, p);
        }
      }
    }
  }

  // For a loop-carried Timely flow, lower-bound the dynamic separation: the cheapest
  // path from the producer's statement around the loop to the consumer. If even that
  // exceeds the window, every cross-iteration consumption is provably stale.
  void TimelyLoopStale(uint32_t consumer_stmt, uint32_t consumer_site, uint32_t p) {
    const IoSiteInfo& prod = ctx_.a.sites[p];
    if (prod.sem != IoSemantic::kTimely || prod.window_us == 0) {
      return;
    }
    const uint32_t ps = ctx_.df.site_stmt[p];
    if (ps == UINT32_MAX || ps == consumer_stmt ||
        ctx_.a.def_use[ps].task != ctx_.a.def_use[consumer_stmt].task) {
      return;  // cross-task separation is not bounded by one task's CFG
    }
    const dataflow::TaskCfg& cfg = ctx_.df.cfgs[ctx_.a.def_use[ps].task];
    const uint64_t cycles =
        dataflow::MinPathCost(cfg, ctx_.df.NodeCosts(cfg), cfg.NodeForStmt(ps),
                              cfg.NodeForStmt(consumer_stmt));
    if (cycles == UINT64_MAX || cycles <= prod.window_us) {
      return;
    }
    const IoSiteInfo& c = ctx_.a.sites[consumer_site];
    Finding f;
    f.code = "timely-loop-stale";
    f.severity = Severity::kWarning;
    f.line = ctx_.SiteLine(consumer_site);
    f.subject = c.fn_name;
    f.message = "Timely window of " + std::to_string(prod.window_us) +
                " us can never span the loop: the cheapest path from " +
                prod.fn_name + "() around the back edge to this " + c.fn_name +
                "() costs at least " + std::to_string(cycles) +
                " cycles, so every cross-iteration consumption is already stale";
    f.fixit = "widen the window to at least " + std::to_string((cycles + 999) / 1000) +
              " ms or consume the reading in the iteration that produced it";
    f.witness_runtime = "easeio";
    f.anchor_site = p;
    f.anchor_consumer = consumer_site;
    f.anchor_window_us = prod.window_us;
    ctx_.findings->push_back(std::move(f));
  }

  void WarPathDivergent() {
    std::set<std::pair<uint32_t, uint32_t>> seen;  // (task, nv)
    for (uint32_t i = 0; i < ctx_.a.def_use.size(); ++i) {
      const StmtDefUse& e = ctx_.a.def_use[i];
      for (uint32_t nv : e.nv_defs) {
        if (ctx_.ast.nv_decls[nv].sram ||
            ctx_.df.war_full.exposed_in[i].count(nv) == 0) {
          continue;
        }
        const TaskInfo& task = ctx_.a.tasks[e.task];
        if (std::find(task.war.begin(), task.war.end(), nv) != task.war.end()) {
          continue;  // the textual table already privatizes it
        }
        if (!seen.insert({e.task, nv}).second) {
          continue;
        }
        Finding f;
        f.code = "war-path-divergent";
        f.severity = Severity::kWarning;
        f.line = e.line;
        f.subject = ctx_.NvName(nv);
        f.message = "task '" + std::string(ctx_.TaskName(e.task)) + "' can read '" +
                    std::string(ctx_.NvName(nv)) +
                    "' before this write along a path textual order hides (a loop "
                    "back edge or a divergent branch); the baseline compilers' "
                    "textual WAR tables do not privatize it, so a reboot between "
                    "the write and task commit re-executes the read against the "
                    "new value";
        f.fixit = "stage '" + std::string(ctx_.NvName(nv)) +
                  "' through a local for the whole task, or restructure so the "
                  "first read precedes the first write textually";
        f.witness_runtime = "alpaca";
        f.anchor_nv = nv;
        ctx_.findings->push_back(std::move(f));
      }
    }
  }

  Context& ctx_;
};

}  // namespace

const char* ToString(Severity severity) {
  switch (severity) {
    case Severity::kAdvisory:
      return "advisory";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const char* ToString(WitnessState state) {
  switch (state) {
    case WitnessState::kNotAttempted:
      return "not-attempted";
    case WitnessState::kConfirmed:
      return "confirmed";
    case WitnessState::kUnconfirmed:
      return "unconfirmed";
  }
  return "?";
}

void Recount(LintResult& result) {
  result.errors = result.warnings = result.advisories = 0;
  for (const Finding& f : result.findings) {
    switch (f.severity) {
      case Severity::kError:
        ++result.errors;
        break;
      case Severity::kWarning:
        ++result.warnings;
        break;
      case Severity::kAdvisory:
        ++result.advisories;
        break;
    }
  }
}

LintResult Lint(const CompileResult& compiled, const LintOptions& options) {
  LintResult result;
  if (!compiled.ok) {
    return result;
  }
  const dataflow::DataflowResult df =
      dataflow::Analyze(compiled.ast, compiled.analysis);
  result.analysis.cfg_nodes = df.stats.nodes;
  result.analysis.cfg_edges = df.stats.edges;
  result.analysis.fixpoint_iterations = df.stats.iterations;
  result.analysis.fixpoint_joins = df.stats.joins;
  result.analysis.lattice_widenings = df.stats.widenings;

  Context ctx{compiled.ast, compiled.analysis,       df,
              Reachability(compiled.analysis), {}, &result.findings};
  for (const TaskDecl& task : compiled.ast.tasks) {
    SiteLinesInStmts(task.body, ctx.site_lines);
  }

  TaintQueries(ctx).Run();
  DmaAudit(ctx);
  CostWalk(ctx).Run();
  WarDmaInvisible(ctx);
  ScopeDemotion(ctx);
  if (options.v2) {
    result.schema_version = 2;
    V2Queries(ctx).Run();
  }

  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     if (a.code != b.code) return a.code < b.code;
                     return a.subject < b.subject;
                   });
  Recount(result);
  return result;
}

std::string RenderText(const LintResult& result, const std::string& source_name) {
  std::string out;
  for (const Finding& f : result.findings) {
    out += source_name + ":" + std::to_string(f.line) + ": " + ToString(f.severity) +
           ": " + f.message + " [" + f.code + "]\n";
    if (!f.fixit.empty()) {
      out += "    fixit: " + f.fixit + "\n";
    }
    if (!f.suggested_schedule.empty()) {
      out += "    schedule: fail at {";
      for (size_t i = 0; i < f.suggested_schedule.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(f.suggested_schedule[i]);
      }
      out += "} us (off " + std::to_string(f.suggested_off_us) + " us) under " +
             f.witness_runtime + "\n";
    }
    if (f.witness != WitnessState::kNotAttempted) {
      out += "    witness: " + std::string(ToString(f.witness));
      if (!f.witness_detail.empty()) {
        out += " — " + f.witness_detail;
      }
      out += "\n";
    }
  }
  out += source_name + ": " + std::to_string(result.errors) + " error(s), " +
         std::to_string(result.warnings) + " warning(s), " +
         std::to_string(result.advisories) + " advisory(ies)\n";
  return out;
}

std::string RenderJson(const LintResult& result, const std::string& source_name) {
  report::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(result.schema_version >= 2 ? "easeio-lint/2" : "easeio-lint/1");
  w.Key("source").String(source_name);
  w.Key("findings").BeginArray();
  for (const Finding& f : result.findings) {
    w.BeginObject();
    w.Key("code").String(f.code);
    w.Key("severity").String(ToString(f.severity));
    w.Key("line").Int(f.line);
    w.Key("subject").String(f.subject);
    w.Key("message").String(f.message);
    w.Key("fixit").String(f.fixit);
    w.Key("suggested_schedule").BeginArray();
    for (uint64_t instant : f.suggested_schedule) {
      w.UInt(instant);
    }
    w.EndArray();
    w.Key("suggested_off_us").UInt(f.suggested_off_us);
    w.Key("witness_runtime").String(f.witness_runtime);
    w.Key("witness").String(ToString(f.witness));
    w.Key("witness_detail").String(f.witness_detail);
    w.EndObject();
  }
  w.EndArray();
  w.Key("counts").BeginObject();
  w.Key("error").UInt(result.errors);
  w.Key("warning").UInt(result.warnings);
  w.Key("advisory").UInt(result.advisories);
  w.EndObject();
  if (result.schema_version >= 2) {
    w.Key("analysis").BeginObject();
    w.Key("cfg_nodes").UInt(result.analysis.cfg_nodes);
    w.Key("cfg_edges").UInt(result.analysis.cfg_edges);
    w.Key("fixpoint_iterations").UInt(result.analysis.fixpoint_iterations);
    w.Key("fixpoint_joins").UInt(result.analysis.fixpoint_joins);
    w.Key("lattice_widenings").UInt(result.analysis.lattice_widenings);
    w.EndObject();
  }
  w.EndObject();
  return w.TakeString();
}

}  // namespace easeio::easec::lint
