#include "easec/lint/certify.h"

#include <algorithm>
#include <set>

#include "chk/program_replay.h"
#include "easec/lint/dataflow/engine.h"
#include "platform/parallel.h"
#include "report/json.h"

namespace easeio::easec::lint {
namespace {

using sim::ProbeEvent;
using sim::ProbeKind;

// Events that cannot have mutated durable state: a failure right after one is
// interchangeable with a failure right after the last durable event before it.
// Everything not listed (commits, lock records, NV stores, DMA transfers, block
// ends, privatization copies, ...) is conservatively a barrier.
bool PureEvent(ProbeKind kind) {
  switch (kind) {
    case ProbeKind::kTaskBegin:
    case ProbeKind::kIoSkip:
    case ProbeKind::kDmaSkip:
    case ProbeKind::kBlockBegin:
    case ProbeKind::kCapSample:
      return true;
    default:
      return false;
  }
}

// Depth-1 failure candidates from an event stream: the canonical representative
// after each event in (after, end), plus the opening instant when `after` == 0.
// When `collapse` holds (the fixpoint proved every region condition absent),
// representatives following a pure event fold onto their durable predecessor's;
// `collapsed` counts the instants retired that way.
std::vector<uint64_t> Candidates(const std::vector<ProbeEvent>& events, uint64_t after,
                                 uint64_t end, bool collapse, uint64_t* collapsed) {
  std::set<uint64_t> kept;
  std::set<uint64_t> pure;
  if (after == 0 && end > 1) {
    kept.insert(1);  // before the first event fires
  }
  for (const ProbeEvent& e : events) {
    const uint64_t instant = chk::RepresentativeAfter(e.on_us);
    if (instant <= after || instant >= end) {
      continue;
    }
    (collapse && PureEvent(e.kind) ? pure : kept).insert(instant);
  }
  // A pure event's representative folds onto its durable predecessor's — unless a
  // durable event shares the instant, in which case the representative stays anyway.
  for (uint64_t instant : pure) {
    if (kept.count(instant) == 0 && collapsed != nullptr) {
      ++*collapsed;
    }
  }
  return {kept.begin(), kept.end()};
}

struct TrialOutcome {
  bool violated = false;
  std::vector<ProbeEvent> events;  // kept only when pair seeds are still needed
  uint64_t end_on_us = 0;
};

}  // namespace

CertifyReport Certify(const CompileResult& compiled, const CertifyOptions& options,
                      const LintResult* witnessed) {
  CertifyReport report;

  // Static side: the witnessed lint verdict and the region conditions.
  if (witnessed != nullptr) {
    report.lint = *witnessed;
  } else {
    LintOptions lint_options;
    lint_options.v2 = options.v2;
    report.lint = Lint(compiled, lint_options);
    ConfirmWitnesses(compiled, report.lint, options.witness);
  }
  for (const Finding& f : report.lint.findings) {
    report.confirmed_findings += f.witness == WitnessState::kConfirmed;
    report.downgraded_findings += f.witness == WitnessState::kUnconfirmed;
  }

  const dataflow::DataflowResult df =
      dataflow::Analyze(compiled.ast, compiled.analysis);
  report.conditions = df.program_conditions;
  report.por_collapsed = chk::CollapsibleRegion(df.program_conditions);

  // Oracle support: __nv declarations with no I/O provenance at all must commit the
  // same bytes under every failure schedule. Tainted slots legitimately diverge —
  // sensors are time-dependent — so they only feed the completion check.
  std::vector<uint32_t> untainted;
  for (uint32_t i = 0; i < compiled.ast.nv_decls.size(); ++i) {
    if (!compiled.ast.nv_decls[i].sram && df.taint_full.guarded_nv[i].empty() &&
        df.taint_full.always_nv[i].empty()) {
      untainted.push_back(i);
    }
  }

  chk::ProgramReplayConfig config;
  config.runtime = options.runtime == "alpaca"      ? apps::RuntimeKind::kAlpaca
                   : options.runtime == "ink"       ? apps::RuntimeKind::kInk
                   : options.runtime == "samoyed"   ? apps::RuntimeKind::kSamoyed
                   : options.runtime == "easeio-op" ? apps::RuntimeKind::kEaseioOp
                                                    : apps::RuntimeKind::kEaseio;
  config.seed = options.witness.seed;
  config.off_us = options.witness.off_us;
  config.max_on_us = options.witness.max_on_us;
  config.easeio_priv_buffer_bytes = options.witness.priv_buffer_bytes;

  const chk::ProgramReplayOutput golden = chk::ReplaySchedule(compiled, config, {});

  auto judge = [&](const chk::ProgramReplayOutput& trial) {
    if (!trial.run.completed) {
      return true;  // livelock / non-termination under the guard
    }
    for (uint32_t nv : untainted) {
      if (trial.nv_final[nv] != golden.nv_final[nv]) {
        return true;
      }
    }
    return false;
  };

  const std::vector<uint64_t> d1 =
      Candidates(golden.events, 0, golden.run.on_us, report.por_collapsed,
                 &report.collapsed_instants);
  report.candidate_instants = d1.size();

  const uint32_t jobs = platform::ResolveJobs(options.jobs, d1.size());
  const bool want_pairs = options.exhaust >= 2;
  std::vector<TrialOutcome> d1_out = platform::ParallelMap<TrialOutcome>(
      jobs, d1.size(), [&](size_t i) {
        const chk::ProgramReplayOutput trial =
            chk::ReplaySchedule(compiled, config, {d1[i]});
        TrialOutcome out;
        out.violated = judge(trial);
        out.end_on_us = trial.run.on_us;
        if (want_pairs) {
          out.events = trial.events;
        }
        return out;
      });

  report.trials = d1.size();
  for (size_t i = 0; i < d1.size(); ++i) {
    if (d1_out[i].violated) {
      ++report.violations;
      if (report.violating_schedules.size() < 8) {
        report.violating_schedules.push_back({d1[i]});
      }
    }
  }

  if (want_pairs) {
    // Every second failure placement seeded from the first trial's own trace — the
    // post-reboot world, not the golden one, decides where instants can land.
    std::vector<std::vector<uint64_t>> pairs;
    for (size_t i = 0; i < d1.size(); ++i) {
      for (uint64_t t2 :
           Candidates(d1_out[i].events, d1[i], d1_out[i].end_on_us,
                      report.por_collapsed, &report.collapsed_instants)) {
        pairs.push_back({d1[i], t2});
      }
    }
    report.pair_schedules = pairs.size();
    report.trials += pairs.size();

    const uint32_t pair_jobs = platform::ResolveJobs(options.jobs, pairs.size());
    std::vector<TrialOutcome> pair_out = platform::ParallelMap<TrialOutcome>(
        pair_jobs, pairs.size(), [&](size_t i) {
          const chk::ProgramReplayOutput trial =
              chk::ReplaySchedule(compiled, config, pairs[i]);
          TrialOutcome out;
          out.violated = judge(trial);
          return out;
        });
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (pair_out[i].violated) {
        ++report.violations;
        if (report.violating_schedules.size() < 8) {
          report.violating_schedules.push_back(pairs[i]);
        }
      }
    }
  }

  const uint32_t hard_findings = report.lint.errors + report.lint.warnings;
  if (hard_findings > 0) {
    report.verdict = "findings-witnessed";
  } else if (report.violations > 0) {
    report.verdict = "unsound";
  } else {
    report.verdict = "clean-certified";
  }
  return report;
}

std::string RenderCertifyJson(const CertifyReport& report,
                              const std::string& source_name) {
  report::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("easeio-lint-certify/1");
  w.Key("source").String(source_name);
  w.Key("verdict").String(report.verdict);
  w.Key("findings").BeginObject();
  w.Key("error").UInt(report.lint.errors);
  w.Key("warning").UInt(report.lint.warnings);
  w.Key("advisory").UInt(report.lint.advisories);
  w.Key("confirmed").UInt(report.confirmed_findings);
  w.Key("downgraded").UInt(report.downgraded_findings);
  w.EndObject();
  w.Key("coverage").BeginObject();
  w.Key("candidate_instants").UInt(report.candidate_instants);
  w.Key("collapsed_instants").UInt(report.collapsed_instants);
  w.Key("pair_schedules").UInt(report.pair_schedules);
  w.Key("trials").UInt(report.trials);
  w.Key("violations").UInt(report.violations);
  w.EndObject();
  w.Key("violating_schedules").BeginArray();
  for (const std::vector<uint64_t>& schedule : report.violating_schedules) {
    w.BeginArray();
    for (uint64_t instant : schedule) {
      w.UInt(instant);
    }
    w.EndArray();
  }
  w.EndArray();
  w.Key("conditions").BeginObject();
  w.Key("war_hazard").Bool(report.conditions.war_hazard);
  w.Key("io_taint_crossing").Bool(report.conditions.io_taint_crossing);
  w.Key("value_steered").Bool(report.conditions.value_steered);
  w.Key("timely_window").Bool(report.conditions.timely_window);
  w.Key("por_collapsed").Bool(report.por_collapsed);
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace easeio::easec::lint
