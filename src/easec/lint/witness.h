// Witness refutation for easelint findings.
//
// A static finding is a claim about run-time behaviour; the strongest diagnostic is
// one that ships its own counterexample. For every refutable finding class the lint
// layer anchors the producer/consumer/DMA indices it reasoned about; this layer turns
// those anchors into concrete failure schedules (derived from a golden
// continuous-power replay of the same program) and — when asked — replays them
// through chk::ReplaySchedule, attaching the confirmed counterexample or downgrading
// the finding to advisory when the simulator refutes it.

#ifndef EASEIO_EASEC_LINT_WITNESS_H_
#define EASEIO_EASEC_LINT_WITNESS_H_

#include <cstdint>

#include "easec/lint/lint.h"

namespace easeio::easec::lint {

struct WitnessOptions {
  uint64_t seed = 1;
  uint64_t off_us = 700;            // default dark time (freshness witnesses widen it)
  uint64_t max_on_us = 60'000'000;  // non-termination guard per replay
  uint32_t priv_buffer_bytes = 4096;
};

// Fills suggested_schedule / suggested_off_us for every refutable finding (those
// carrying a witness_runtime), deriving the failure instants from a lazily-run golden
// continuous-power replay per runtime. Non-refutable findings are left untouched.
// Deterministic for a fixed seed.
void SuggestSchedules(const CompileResult& compiled, LintResult& result,
                      const WitnessOptions& options = {});

// Replays each refutable finding's suggested schedule and records the verdict:
// kConfirmed with a counterexample description, or kUnconfirmed — in which case the
// finding is downgraded to advisory. Suggests schedules first for findings that do
// not yet carry one, then recounts the severity totals.
void ConfirmWitnesses(const CompileResult& compiled, LintResult& result,
                      const WitnessOptions& options = {});

}  // namespace easeio::easec::lint

#endif  // EASEIO_EASEC_LINT_WITNESS_H_
