#include "easec/lint/witness.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chk/por.h"
#include "chk/program_replay.h"

namespace easeio::easec::lint {
namespace {

using sim::ProbeEvent;
using sim::ProbeKind;

apps::RuntimeKind KindFromName(const std::string& name) {
  if (name == "alpaca") return apps::RuntimeKind::kAlpaca;
  if (name == "ink") return apps::RuntimeKind::kInk;
  if (name == "samoyed") return apps::RuntimeKind::kSamoyed;
  if (name == "easeio-op") return apps::RuntimeKind::kEaseioOp;
  return apps::RuntimeKind::kEaseio;
}

chk::ProgramReplayConfig BaseConfig(const WitnessOptions& options,
                                    const std::string& runtime) {
  chk::ProgramReplayConfig config;
  config.runtime = KindFromName(runtime);
  config.seed = options.seed;
  config.off_us = options.off_us;
  config.max_on_us = options.max_on_us;
  config.easeio_priv_buffer_bytes = options.priv_buffer_bytes;
  return config;
}

// Golden continuous-power replays, one per runtime actually needed.
class GoldenCache {
 public:
  GoldenCache(const CompileResult& compiled, const WitnessOptions& options)
      : compiled_(compiled), options_(options) {}

  const chk::ProgramReplayOutput& Get(const std::string& runtime) {
    auto it = cache_.find(runtime);
    if (it == cache_.end()) {
      it = cache_
               .emplace(runtime,
                        chk::ReplaySchedule(compiled_, BaseConfig(options_, runtime), {}))
               .first;
    }
    return it->second;
  }

 private:
  const CompileResult& compiled_;
  const WitnessOptions& options_;
  std::map<std::string, chk::ProgramReplayOutput> cache_;
};

// Wall-clock instant of each event: its on-time plus the dark time of every reboot
// that preceded it.
std::vector<uint64_t> WallTimes(const std::vector<ProbeEvent>& events) {
  std::vector<uint64_t> wall(events.size());
  uint64_t dark = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    wall[i] = events[i].on_us + dark;
    if (events[i].kind == ProbeKind::kReboot) {
      dark += events[i].a;
    }
  }
  return wall;
}

std::optional<uint64_t> FirstOn(const std::vector<ProbeEvent>& events, ProbeKind kind,
                                uint32_t id) {
  for (const ProbeEvent& e : events) {
    if (e.kind == kind && e.id == id) {
      return e.on_us;
    }
  }
  return std::nullopt;
}

std::optional<uint64_t> LastOn(const std::vector<ProbeEvent>& events, ProbeKind kind,
                               uint32_t id) {
  std::optional<uint64_t> on;
  for (const ProbeEvent& e : events) {
    if (e.kind == kind && e.id == id) {
      on = e.on_us;
    }
  }
  return on;
}

size_t CountExecs(const std::vector<ProbeEvent>& events, uint32_t site) {
  size_t n = 0;
  for (const ProbeEvent& e : events) {
    n += e.kind == ProbeKind::kIoExec && e.id == site;
  }
  return n;
}

// Largest producer-reading age any consumer execution observed, in wall-clock us.
// `count_skips` also treats a skipped consumer call (a locked Single/Timely site
// restoring its private copy) as a consumption: the statement still ran and folded
// the producer's value in. The loop-carried codes need this — a Single consumer
// inside a loop executes once and then skips every later iteration, which is
// precisely where the cross-iteration staleness lives. The /1 codes keep the
// exec-only reading so their witness reports stay byte-stable.
std::optional<uint64_t> MaxConsumerAge(const chk::ProgramReplayOutput& run,
                                       uint32_t producer_site, uint32_t consumer_site,
                                       bool count_skips = false) {
  const std::vector<uint64_t> wall = WallTimes(run.events);
  std::optional<uint64_t> last_producer;
  std::optional<uint64_t> max_age;
  for (size_t i = 0; i < run.events.size(); ++i) {
    const ProbeEvent& e = run.events[i];
    const bool consumes =
        e.kind == ProbeKind::kIoExec || (count_skips && e.kind == ProbeKind::kIoSkip);
    if (!consumes) {
      continue;
    }
    if (e.kind == ProbeKind::kIoExec && e.id == producer_site) {
      last_producer = wall[i];
    } else if (e.id == consumer_site && last_producer.has_value()) {
      const uint64_t age = wall[i] - *last_producer;
      if (!max_age.has_value() || age > *max_age) {
        max_age = age;
      }
    }
  }
  return max_age;
}

bool NvDiverges(const Program& ast, const chk::ProgramReplayOutput& replay,
                const chk::ProgramReplayOutput& golden, std::string* detail) {
  for (size_t i = 0; i < replay.nv_final.size() && i < golden.nv_final.size(); ++i) {
    if (replay.nv_final[i] != golden.nv_final[i]) {
      *detail = "committed '" + ast.nv_decls[i].name +
                "' diverges from the continuous-power run";
      return true;
    }
  }
  return false;
}

void Suggest(const CompileResult& compiled, Finding& f, GoldenCache& cache) {
  const chk::ProgramReplayOutput& golden = cache.Get(f.witness_runtime);
  const std::vector<ProbeEvent>& events = golden.events;

  if (f.code == "taint-cross-task" && f.anchor_site != UINT32_MAX) {
    // Park a reboot between the producing task's commit and the consumer, dark long
    // enough that the reading is older than its window when the consumer transmits.
    const uint32_t producer_rt = golden.site_ids[f.anchor_site];
    const uint32_t producer_task = compiled.analysis.sites[f.anchor_site].task;
    bool seen_exec = false;
    for (const ProbeEvent& e : events) {
      if (e.kind == ProbeKind::kIoExec && e.id == producer_rt) {
        seen_exec = true;
      }
      if (seen_exec && e.kind == ProbeKind::kTaskCommit && e.id == producer_task) {
        f.suggested_schedule = {chk::RepresentativeAfter(e.on_us)};
        f.suggested_off_us = std::max(f.suggested_off_us, f.anchor_window_us + 1000);
        break;
      }
    }
  } else if (f.code == "stale-always-into-single" && f.anchor_consumer != UINT32_MAX) {
    // Fail right after the locked consumer ran: re-execution re-reads the Always
    // producer (sensor noise diverges it) and re-commits NVM around the stale lock.
    if (auto on = FirstOn(events, ProbeKind::kIoExec, golden.site_ids[f.anchor_consumer])) {
      f.suggested_schedule = {chk::RepresentativeAfter(*on)};
    }
  } else if (f.code == "scope-demotion" && f.anchor_site != UINT32_MAX) {
    if (auto on = FirstOn(events, ProbeKind::kIoExec, golden.site_ids[f.anchor_site])) {
      f.suggested_schedule = {chk::RepresentativeAfter(*on)};
    }
  } else if (f.code == "timely-infeasible" && f.anchor_site != UINT32_MAX) {
    // Fail once the reading has aged past its window but the task (whose remaining
    // lower bound exceeds the window) is still running: re-execution is forced.
    if (auto on = FirstOn(events, ProbeKind::kIoExec, golden.site_ids[f.anchor_site])) {
      f.suggested_schedule = {*on + f.anchor_window_us + 1};
    }
  } else if (f.code == "war-dma-invisible" && f.anchor_dma != UINT32_MAX) {
    if (auto on = FirstOn(events, ProbeKind::kDmaExec, golden.dma_ids[f.anchor_dma])) {
      f.suggested_schedule = {chk::RepresentativeAfter(*on)};
    }
  } else if ((f.code == "taint-loop-carried" || f.code == "timely-loop-stale") &&
             f.anchor_site != UINT32_MAX) {
    // Park a reboot right after the producer ran: the dark time ages the reading, and
    // the consumer that picks it up lives in the *next* iteration, past the reboot.
    if (auto on = FirstOn(events, ProbeKind::kIoExec, golden.site_ids[f.anchor_site])) {
      f.suggested_schedule = {chk::RepresentativeAfter(*on)};
      if (f.anchor_window_us > 0) {
        f.suggested_off_us = std::max(f.suggested_off_us, f.anchor_window_us + 1000);
      }
    }
  } else if (f.code == "war-path-divergent" && f.anchor_nv != UINT32_MAX &&
             golden.nv_ids[f.anchor_nv] != kernel::kNoSlot) {
    // Fail after the variable's last write: re-execution replays the path-hidden read
    // against the committed new value, and the baseline never privatized it.
    if (auto on = LastOn(events, ProbeKind::kNvWrite, golden.nv_ids[f.anchor_nv])) {
      f.suggested_schedule = {chk::RepresentativeAfter(*on)};
    }
  }
}

}  // namespace

void SuggestSchedules(const CompileResult& compiled, LintResult& result,
                      const WitnessOptions& options) {
  GoldenCache cache(compiled, options);
  for (Finding& f : result.findings) {
    if (!f.witness_runtime.empty() && f.suggested_schedule.empty()) {
      Suggest(compiled, f, cache);
    }
    if (!f.suggested_schedule.empty() && f.suggested_off_us == 0) {
      f.suggested_off_us = options.off_us;
    }
  }
}

void ConfirmWitnesses(const CompileResult& compiled, LintResult& result,
                      const WitnessOptions& options) {
  GoldenCache cache(compiled, options);
  for (Finding& f : result.findings) {
    if (f.witness_runtime.empty()) {
      continue;
    }
    if (f.suggested_schedule.empty()) {
      Suggest(compiled, f, cache);
    }
    if (!f.suggested_schedule.empty() && f.suggested_off_us == 0) {
      f.suggested_off_us = options.off_us;
    }
    if (f.suggested_schedule.empty()) {
      f.witness = WitnessState::kUnconfirmed;
      f.witness_detail = "no failure instant found in the golden run";
      f.severity = Severity::kAdvisory;
      continue;
    }

    chk::ProgramReplayConfig config = BaseConfig(options, f.witness_runtime);
    if (f.suggested_off_us > 0) {
      config.off_us = f.suggested_off_us;
    }
    const chk::ProgramReplayOutput replay =
        chk::ReplaySchedule(compiled, config, f.suggested_schedule);
    const chk::ProgramReplayOutput& golden = cache.Get(f.witness_runtime);

    bool confirmed = false;
    std::string detail;
    if (f.code == "taint-cross-task") {
      const auto age = MaxConsumerAge(replay, golden.site_ids[f.anchor_site],
                                      golden.site_ids[f.anchor_consumer]);
      confirmed = age.has_value() && *age > f.anchor_window_us;
      if (confirmed) {
        detail = "consumer transmitted a reading " + std::to_string(*age) +
                 " us old (window " + std::to_string(f.anchor_window_us) + " us)";
      }
    } else if (f.code == "timely-loop-stale") {
      const auto age =
          MaxConsumerAge(replay, golden.site_ids[f.anchor_site],
                         golden.site_ids[f.anchor_consumer], /*count_skips=*/true);
      confirmed = age.has_value() && *age > f.anchor_window_us;
      if (confirmed) {
        detail = "consumer folded in a reading " + std::to_string(*age) +
                 " us old (window " + std::to_string(f.anchor_window_us) + " us)";
      }
    } else if (f.code == "taint-loop-carried") {
      // The hazard claim is cross-iteration staleness: the replay must widen the
      // producer-to-consumer age beyond anything the continuous-power run exhibits.
      const auto golden_age =
          MaxConsumerAge(golden, golden.site_ids[f.anchor_site],
                         golden.site_ids[f.anchor_consumer], /*count_skips=*/true);
      const auto age =
          MaxConsumerAge(replay, golden.site_ids[f.anchor_site],
                         golden.site_ids[f.anchor_consumer], /*count_skips=*/true);
      confirmed = age.has_value() && golden_age.has_value() && *age > *golden_age;
      if (confirmed) {
        detail = "consumer observed a reading " + std::to_string(*age) +
                 " us old vs " + std::to_string(*golden_age) +
                 " us under continuous power";
      }
    } else if (f.code == "stale-always-into-single" || f.code == "war-dma-invisible" ||
               f.code == "war-path-divergent") {
      confirmed = NvDiverges(compiled.ast, replay, golden, &detail);
    } else if (f.code == "scope-demotion" || f.code == "timely-infeasible") {
      const size_t golden_execs =
          CountExecs(golden.events, golden.site_ids[f.anchor_site]);
      const size_t replay_execs =
          CountExecs(replay.events, golden.site_ids[f.anchor_site]);
      confirmed = replay_execs > golden_execs;
      if (confirmed) {
        detail = "site executed " + std::to_string(replay_execs) + "x vs " +
                 std::to_string(golden_execs) + "x under continuous power";
      }
    }

    if (confirmed) {
      f.witness = WitnessState::kConfirmed;
      f.witness_detail = detail;
    } else {
      f.witness = WitnessState::kUnconfirmed;
      f.witness_detail = "replay did not demonstrate the hazard; downgraded";
      f.severity = Severity::kAdvisory;
    }
  }
  Recount(result);
}

}  // namespace easeio::easec::lint
