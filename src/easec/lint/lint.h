// easelint — dataflow-based intermittence-safety analysis for EaseC programs.
//
// The front-end (sema.h) extracts I/O sites, dependences, blocks, regions, and the
// per-statement def/use table, but never questions the programmer's annotations: a
// wrong `Single`, a misused `Exclude`, or an infeasible `Timely(dt)` window compiles
// cleanly and silently produces stale data, inconsistent NVM, or livelock. This pass
// audits those annotations over the already-built facts and emits deterministic,
// severity-ranked findings. The implemented finding classes:
//
//   taint-cross-task         a Single/Timely result flows (through locals, __nv
//                            variables, and DMA copies) into a Single/Timely consumer
//                            site in *another* task that can re-reach the producer —
//                            the intra-task dependence rule (Section 3.3.2) cannot
//                            see the edge, so the freshness contract is silently
//                            dropped every round. The linear one-shot pipeline idiom
//                            (the paper's Figure 3/9 weather station) is accepted.
//   taint-region-escape      a Single result is stored to NV in a later DMA region of
//                            the same task than the one that produced it; regional
//                            privatization restores by region, so a partial restore
//                            re-exposes the stale store.
//   stale-always-into-single an effective-Always read (no Single/Timely enclosing
//                            block) flows into a Single/Timely consumer site with no
//                            depends_on edge — sema's producer tracking loses the
//                            flow (e.g. through a DMA copy), so a re-executed read
//                            updates NVM while the consumer's recorded output stays
//                            stale: the committed state and the emitted output
//                            disagree.
//   scope-demotion           a Single/Timely annotation nested under an outermost
//                            Always block: scope precedence (Section 3.3.1) forces
//                            the block, silently demoting the annotation to Always.
//   dma-exclude-unsafe       Exclude on an NV -> volatile copy whose source the CPU
//                            writes somewhere: regional privatization would protect
//                            it, Exclude opts out.
//   dma-bytes-nonliteral     a non-literal byte count on an NV -> NV copy defeats the
//                            compile-time privatization-budget check.
//   dma-out-of-bounds        a literal operand range that walks off its __nv array.
//   dma-overlap              literal src/dst ranges on the same variable intersect.
//   timely-infeasible        the cycle lower bound from the site to task commit
//                            exceeds the Timely window: any reboot past the call
//                            finds the reading already stale, so the annotation
//                            degrades to Always and repeated failures livelock.
//   task-exceeds-on-time     the task's straight-line cycle lower bound exceeds the
//                            capacitor model's worst-case on-time: it can never
//                            commit on harvested energy.
//   war-dma-invisible        a DMA writes an __nv variable the task read earlier; the
//                            baseline compilers' WAR sets (Alpaca/InK) never see DMA
//                            operands, so the variable is not privatized and a
//                            re-execution reads the new value.
//
// All of the taint / WAR classes above are queries over the CFG-based fixpoint engine
// (easec/lint/dataflow/), restricted to its *forward* (back-edge-excluded) solution —
// exactly the strength of the linear table pass this analysis grew out of, which keeps
// the easeio-lint/1 report byte-identical on programs the old pass handled. Opting in
// to v2 (LintOptions::v2, `easelint --lint-v2`) additionally runs the queries that
// need the full fixpoint — facts that only hold once loop back edges flow:
//
//   taint-loop-carried       a Single/Timely result produced in one loop iteration is
//                            consumed by a Single/Timely site in a *later* iteration
//                            (the flow exists only across a back edge); no dependence
//                            edge spans iterations, so the consumer's freshness
//                            contract silently covers a stale prior-round value.
//   timely-loop-stale        a Timely result is consumed loop-carried and the minimum
//                            cycle cost of the shortest path around the loop already
//                            exceeds the window: every cross-iteration consumption is
//                            provably stale.
//   war-path-divergent       an __nv variable has a read-before-write on some
//                            execution path ending in a CPU write, but textual order
//                            hides the pair (write appears first), so the baseline
//                            WAR tables do not privatize it; a reboot between the
//                            write and commit re-executes the read against the new
//                            value. Findings of this class are derived from facts
//                            absent from the forward solution or the sema tables —
//                            each one is a hazard the table-based pass provably
//                            cannot report.
//
// Refutable findings carry a suggested failure schedule plus the runtime to replay it
// under; witness.h replays them through chk::ReplaySchedule and either attaches a
// confirmed counterexample or downgrades the finding to advisory.

#ifndef EASEIO_EASEC_LINT_LINT_H_
#define EASEIO_EASEC_LINT_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "easec/program.h"

namespace easeio::easec::lint {

enum class Severity : uint8_t { kAdvisory, kWarning, kError };
const char* ToString(Severity severity);

enum class WitnessState : uint8_t { kNotAttempted, kConfirmed, kUnconfirmed };
const char* ToString(WitnessState state);

struct Finding {
  std::string code;      // stable kebab-case class, e.g. "taint-cross-task"
  Severity severity = Severity::kWarning;
  int line = 0;
  std::string subject;   // the variable / site / task the finding is about
  std::string message;
  std::string fixit;     // suggested source change; empty when none applies

  // Refutation protocol (filled by witness.h — empty/default for findings that are
  // not refutable by a single failure schedule).
  std::vector<uint64_t> suggested_schedule;  // on-time failure instants, us
  uint64_t suggested_off_us = 0;             // dark time the schedule needs (0 = default)
  std::string witness_runtime;               // runtime to replay under, e.g. "easeio"
  WitnessState witness = WitnessState::kNotAttempted;
  std::string witness_detail;                // confirmed counterexample / refutation note

  // Anchors for the witness layer (easec analysis indices; not serialized).
  uint32_t anchor_site = UINT32_MAX;      // producer / flagged site
  uint32_t anchor_consumer = UINT32_MAX;  // consumer site (taint findings)
  uint32_t anchor_dma = UINT32_MAX;       // flagged DMA (war-dma-invisible)
  uint32_t anchor_nv = UINT32_MAX;        // flagged __nv variable (war-path-divergent)
  uint64_t anchor_window_us = 0;          // freshness window the witness must exceed
};

struct LintOptions {
  // Privatization budget mirrored from CompileOptions so the DMA audit agrees with
  // the compile-time check.
  uint32_t dma_priv_buffer_bytes = 4096;
  // Enables the full-fixpoint (loop/branch) finding classes and switches the JSON
  // report to the easeio-lint/2 schema, which adds the `analysis` counters.
  bool v2 = false;
};

// Fixpoint-engine counters, surfaced in the easeio-lint/2 report and through the
// metrics registry (`easelint --metrics`).
struct AnalysisStats {
  uint64_t cfg_nodes = 0;
  uint64_t cfg_edges = 0;
  uint64_t fixpoint_iterations = 0;
  uint64_t fixpoint_joins = 0;
  uint64_t lattice_widenings = 0;
};

struct LintResult {
  // Sorted by (line, code, subject); deterministic for a given program.
  std::vector<Finding> findings;
  uint32_t errors = 0;
  uint32_t warnings = 0;
  uint32_t advisories = 0;
  uint32_t schema_version = 1;  // 2 when LintOptions::v2 ran
  AnalysisStats analysis;
};

// Runs every analysis over a successfully compiled program. Pure and deterministic:
// no simulation, no randomness, byte-identical findings across runs.
LintResult Lint(const CompileResult& compiled, const LintOptions& options = {});

// Recomputes the severity counters (witness confirmation may downgrade findings).
void Recount(LintResult& result);

// Human-readable diagnostics: "<source>:<line>: <severity>: <message> [<code>]" with
// indented fix-it / witness continuation lines.
std::string RenderText(const LintResult& result, const std::string& source_name);

// The machine-readable `easeio-lint/1` document. Deterministic: byte-identical for
// identical findings.
std::string RenderJson(const LintResult& result, const std::string& source_name);

}  // namespace easeio::easec::lint

#endif  // EASEIO_EASEC_LINT_LINT_H_
