// Diagnostics collection for the EaseC front-end. Compilation never aborts the host
// process on user errors: every pass records diagnostics here and the driver checks
// HasErrors() between passes.

#ifndef EASEIO_EASEC_DIAG_H_
#define EASEIO_EASEC_DIAG_H_

#include <string>
#include <vector>

namespace easeio::easec {

struct Diagnostic {
  int line = 0;
  int col = 0;
  std::string message;
};

class Diagnostics {
 public:
  void Error(int line, int col, std::string message) {
    errors_.push_back({line, col, std::move(message)});
  }

  bool HasErrors() const { return !errors_.empty(); }
  const std::vector<Diagnostic>& errors() const { return errors_; }

  // All errors as one printable string ("line:col: message" per line).
  std::string ToString() const {
    std::string out;
    for (const Diagnostic& d : errors_) {
      out += std::to_string(d.line) + ":" + std::to_string(d.col) + ": " + d.message + "\n";
    }
    return out;
  }

 private:
  std::vector<Diagnostic> errors_;
};

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_DIAG_H_
