// Bytecode for the EaseC virtual machine.
//
// Compiled tasks run as ordinary kernel tasks: every instruction charges simulated CPU
// time, locals are re-initialised on task (re-)entry — the volatile-SRAM semantics —
// and all persistent effects flow through the active Runtime's services (NvLoad/Store
// interposition, CallIo, IoBlockBegin/End, DmaCopy), so a compiled EaseC program runs
// identically under Alpaca, InK, or EaseIO.

#ifndef EASEIO_EASEC_BYTECODE_H_
#define EASEIO_EASEC_BYTECODE_H_

#include <cstdint>
#include <vector>

namespace easeio::easec {

enum class Op : uint8_t {
  kPushImm,     // push a
  kLoadLocal,   // push locals[a]
  kStoreLocal,  // locals[a] = pop
  kLoadNv,      // idx = pop; push nv[a][idx]  (idx in elements)
  kStoreNv,     // val = pop; idx = pop; nv[a][idx] = val

  // Binary ops: rhs = pop, lhs = pop, push result.
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kAnd, kOr,
  kNeg, kNot,   // unary: operand = pop

  kJmp,         // pc = a
  kJz,          // if pop == 0: pc = a

  kCallIo,      // a = easec site index; lane from site.lane_slot; push result
  kBlockBegin,  // a = easec block index
  kBlockEnd,    // a = easec block index
  kDma,         // a = easec dma index; b = dst nv; c = src nv;
                // stack (top last): dst_idx, src_idx, bytes
  kGetTimeMs,   // push wall-clock milliseconds (persistent timekeeper)
  kDelay,       // n = pop; n cycles of compute
  kPop,         // discard the top of the stack (expression statements)
  kNextTask,    // return task a
  kEndTask,     // return kTaskDone
};

struct Insn {
  Op op;
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
};

using TaskCode = std::vector<Insn>;

}  // namespace easeio::easec

#endif  // EASEIO_EASEC_BYTECODE_H_
