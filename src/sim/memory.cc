#include "sim/memory.h"

#include <cstring>

namespace easeio::sim {

Memory::Memory(uint32_t sram_bytes, uint32_t fram_bytes)
    : sram_(sram_bytes, 0), fram_(fram_bytes, 0) {
  EASEIO_CHECK(sram_bytes > 0 && fram_bytes > 0, "memories must be non-empty");
  EASEIO_CHECK(kSramBase + sram_bytes <= kFramBase, "SRAM must not overlap FRAM window");
}

MemKind Memory::Classify(uint32_t addr) const {
  if (InSram(addr)) {
    return MemKind::kSram;
  }
  EASEIO_CHECK(InFram(addr), "address outside simulated memory");
  return MemKind::kFram;
}

bool Memory::RangeValid(uint32_t addr, uint32_t size) const {
  if (size == 0) {
    return false;
  }
  const uint32_t end = addr + size;  // allocation sizes keep this far from wrapping
  if (InSram(addr)) {
    return end <= kSramBase + sram_.size();
  }
  if (InFram(addr)) {
    return end <= kFramBase + fram_.size();
  }
  return false;
}

uint8_t* Memory::Resolve(uint32_t addr, uint32_t size) {
  EASEIO_CHECK(RangeValid(addr, size), "simulated memory access out of range");
  if (InSram(addr)) {
    return sram_.data() + (addr - kSramBase);
  }
  return fram_.data() + (addr - kFramBase);
}

const uint8_t* Memory::Resolve(uint32_t addr, uint32_t size) const {
  return const_cast<Memory*>(this)->Resolve(addr, size);
}

uint8_t Memory::Read8(uint32_t addr) const { return *Resolve(addr, 1); }

void Memory::Write8(uint32_t addr, uint8_t value) { *Resolve(addr, 1) = value; }

uint16_t Memory::Read16(uint32_t addr) const {
  const uint8_t* p = Resolve(addr, 2);
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

void Memory::Write16(uint32_t addr, uint16_t value) {
  uint8_t* p = Resolve(addr, 2);
  p[0] = static_cast<uint8_t>(value & 0xFF);
  p[1] = static_cast<uint8_t>(value >> 8);
}

uint32_t Memory::Read32(uint32_t addr) const {
  return static_cast<uint32_t>(Read16(addr)) | (static_cast<uint32_t>(Read16(addr + 2)) << 16);
}

void Memory::Write32(uint32_t addr, uint32_t value) {
  Write16(addr, static_cast<uint16_t>(value & 0xFFFF));
  Write16(addr + 2, static_cast<uint16_t>(value >> 16));
}

void Memory::Copy(uint32_t dst, uint32_t src, uint32_t size) {
  if (size == 0 || dst == src) {
    return;
  }
  const uint8_t* s = Resolve(src, size);
  uint8_t* d = Resolve(dst, size);
  std::memmove(d, s, size);
}

void Memory::Fill(uint32_t addr, uint32_t size, uint8_t value) {
  if (size == 0) {
    return;
  }
  std::memset(Resolve(addr, size), value, size);
}

void Memory::ReadBlock(uint32_t addr, uint32_t size, uint8_t* dst) const {
  if (size == 0) {
    return;
  }
  std::memcpy(dst, Resolve(addr, size), size);
}

namespace {
uint32_t Align2(uint32_t v) { return (v + 1u) & ~1u; }
}  // namespace

uint32_t Memory::AllocSram(std::string name, uint32_t size, AllocPurpose purpose) {
  const uint32_t need = Align2(size);
  EASEIO_CHECK(need <= sram_size() - sram_used_, "SRAM arena exhausted: " + name);
  const uint32_t addr = kSramBase + sram_used_;
  sram_used_ += need;
  allocations_.push_back({std::move(name), addr, size, MemKind::kSram, purpose});
  return addr;
}

uint32_t Memory::AllocFram(std::string name, uint32_t size, AllocPurpose purpose) {
  const uint32_t need = Align2(size);
  EASEIO_CHECK(need <= fram_size() - fram_used_, "FRAM arena exhausted: " + name);
  const uint32_t addr = kFramBase + fram_used_;
  fram_used_ += need;
  allocations_.push_back({std::move(name), addr, size, MemKind::kFram, purpose});
  return addr;
}

uint32_t Memory::AllocatedBytes(MemKind kind, AllocPurpose purpose) const {
  uint32_t total = 0;
  for (const Allocation& a : allocations_) {
    if (a.kind == kind && a.purpose == purpose) {
      total += a.size;
    }
  }
  return total;
}

uint32_t Memory::AllocatedBytes(MemKind kind) const {
  uint32_t total = 0;
  for (const Allocation& a : allocations_) {
    if (a.kind == kind) {
      total += a.size;
    }
  }
  return total;
}

void Memory::OnReboot() {
  std::memset(sram_.data(), 0, sram_used_);
  ++reboot_epoch_;
}

MemorySnapshot Memory::Snapshot() const {
  MemorySnapshot snap;
  snap.fram.assign(fram_.begin(), fram_.begin() + fram_used_);
  snap.sram_used = sram_used_;
  snap.fram_used = fram_used_;
  snap.reboot_epoch = reboot_epoch_;
  snap.allocations = allocations_;
  return snap;
}

void Memory::Restore(const MemorySnapshot& snapshot) {
  EASEIO_CHECK(snapshot.sram_used <= sram_size() && snapshot.fram_used <= fram_size(),
               "snapshot does not fit this memory");
  // FRAM allocated beyond the snapshot cursor (e.g. lazily, after the snapshot was
  // taken) must read as zero once the cursor rolls back.
  if (fram_used_ > snapshot.fram_used) {
    std::memset(fram_.data() + snapshot.fram_used, 0, fram_used_ - snapshot.fram_used);
  }
  std::memcpy(fram_.data(), snapshot.fram.data(), snapshot.fram.size());
  std::memset(sram_.data(), 0, sram_used_ > snapshot.sram_used ? sram_used_ : snapshot.sram_used);
  sram_used_ = snapshot.sram_used;
  fram_used_ = snapshot.fram_used;
  reboot_epoch_ = snapshot.reboot_epoch;
  if (allocations_.size() != snapshot.allocations.size()) {
    allocations_ = snapshot.allocations;
  }
}

void Memory::Reset() {
  std::memset(sram_.data(), 0, sram_used_);
  std::memset(fram_.data(), 0, fram_used_);
  sram_used_ = 0;
  fram_used_ = 0;
  reboot_epoch_ = 0;
  allocations_.clear();
}

}  // namespace easeio::sim
