#include "sim/memory.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace easeio::sim {

namespace {
// Process-unique Memory identities; 0 is reserved for "no / hand-built snapshot".
std::atomic<uint64_t> g_mem_uid{1};
}  // namespace

Memory::Memory(uint32_t sram_bytes, uint32_t fram_bytes)
    : sram_(sram_bytes, 0),
      fram_(fram_bytes, 0),
      page_stamp_((fram_bytes + kSnapshotPageSize - 1) / kSnapshotPageSize, 0),
      mem_uid_(g_mem_uid.fetch_add(1, std::memory_order_relaxed)) {
  EASEIO_CHECK(sram_bytes > 0 && fram_bytes > 0, "memories must be non-empty");
  EASEIO_CHECK(kSramBase + sram_bytes <= kFramBase, "SRAM must not overlap FRAM window");
}

uint32_t Memory::Read32(uint32_t addr) const {
  return static_cast<uint32_t>(Read16(addr)) | (static_cast<uint32_t>(Read16(addr + 2)) << 16);
}

void Memory::Write32(uint32_t addr, uint32_t value) {
  Write16(addr, static_cast<uint16_t>(value & 0xFFFF));
  Write16(addr + 2, static_cast<uint16_t>(value >> 16));
}

void Memory::Copy(uint32_t dst, uint32_t src, uint32_t size) {
  if (size == 0 || dst == src) {
    return;
  }
  const uint8_t* s = Resolve(src, size);
  uint8_t* d = Resolve(dst, size);
  std::memmove(d, s, size);
  MarkFramDirty(dst, size);
}

void Memory::Fill(uint32_t addr, uint32_t size, uint8_t value) {
  if (size == 0) {
    return;
  }
  std::memset(Resolve(addr, size), value, size);
  MarkFramDirty(addr, size);
}

void Memory::ReadBlock(uint32_t addr, uint32_t size, uint8_t* dst) const {
  if (size == 0) {
    return;
  }
  std::memcpy(dst, Resolve(addr, size), size);
}

namespace {
uint32_t Align2(uint32_t v) { return (v + 1u) & ~1u; }
}  // namespace

uint32_t Memory::AllocSram(std::string name, uint32_t size, AllocPurpose purpose) {
  const uint32_t need = Align2(size);
  EASEIO_CHECK(need <= sram_size() - sram_used_, "SRAM arena exhausted: " + name);
  const uint32_t addr = kSramBase + sram_used_;
  sram_used_ += need;
  allocations_.push_back({std::move(name), addr, size, MemKind::kSram, purpose});
  alloc_epoch_ = next_alloc_epoch_++;
  return addr;
}

uint32_t Memory::AllocFram(std::string name, uint32_t size, AllocPurpose purpose) {
  const uint32_t need = Align2(size);
  EASEIO_CHECK(need <= fram_size() - fram_used_, "FRAM arena exhausted: " + name);
  const uint32_t addr = kFramBase + fram_used_;
  fram_used_ += need;
  allocations_.push_back({std::move(name), addr, size, MemKind::kFram, purpose});
  alloc_epoch_ = next_alloc_epoch_++;
  return addr;
}

uint32_t Memory::AllocatedBytes(MemKind kind, AllocPurpose purpose) const {
  uint32_t total = 0;
  for (const Allocation& a : allocations_) {
    if (a.kind == kind && a.purpose == purpose) {
      total += a.size;
    }
  }
  return total;
}

uint32_t Memory::AllocatedBytes(MemKind kind) const {
  uint32_t total = 0;
  for (const Allocation& a : allocations_) {
    if (a.kind == kind) {
      total += a.size;
    }
  }
  return total;
}

void Memory::OnReboot() {
  std::memset(sram_.data(), 0, sram_used_);
  ++reboot_epoch_;
}

MemorySnapshot Memory::Snapshot() const {
  MemorySnapshot snap;
  snap.fram.assign(fram_.begin(), fram_.begin() + fram_used_);
  snap.sram_used = sram_used_;
  snap.fram_used = fram_used_;
  snap.reboot_epoch = reboot_epoch_;
  snap.allocations = allocations_;
  snap.mem_uid = mem_uid_;
  snap.alloc_epoch = alloc_epoch_;
  return snap;
}

void Memory::SnapshotInto(MemorySnapshot& snap) const {
  const uint32_t npages = static_cast<uint32_t>(page_stamp_.size());
  const uint32_t old_size = static_cast<uint32_t>(snap.fram.size());
  if (snap.mem_uid != mem_uid_ || snap.page_synced.size() != npages) {
    // Foreign, fresh, or hand-built buffer: no stamp is trustworthy.
    snap.page_synced.assign(npages, 0);
  } else if (old_size != fram_used_) {
    // The prefix boundary moved. The page straddling min(old, new) holds bytes the
    // buffer never stored (grow) or is about to be re-covered (shrink); everything at
    // and past it must be re-copied. Pages wholly below the smaller boundary keep
    // their stamps — resize preserves the retained prefix bytes.
    for (uint32_t p = std::min(old_size, fram_used_) / kSnapshotPageSize; p < npages; ++p) {
      snap.page_synced[p] = 0;
    }
  }
  snap.fram.resize(fram_used_);
  const uint32_t used_pages = (fram_used_ + kSnapshotPageSize - 1) / kSnapshotPageSize;
  for (uint32_t p = 0; p < used_pages; ++p) {
    // synced == 0 means "never synced": forced copy. Otherwise a page is clean iff no
    // write stamped it after the recorded sync epoch.
    if (snap.page_synced[p] != 0 && snap.page_synced[p] >= page_stamp_[p]) {
      ++pages_skipped_;
      continue;
    }
    const uint32_t off = p * kSnapshotPageSize;
    const uint32_t len = std::min(kSnapshotPageSize, fram_used_ - off);
    std::memcpy(snap.fram.data() + off, fram_.data() + off, len);
    snap.page_synced[p] = snap_epoch_;
    ++pages_copied_;
  }
  snap.sram_used = sram_used_;
  snap.fram_used = fram_used_;
  snap.reboot_epoch = reboot_epoch_;
  // The allocation table changes orders of magnitude less often than FRAM contents;
  // when the buffer's recorded identity matches, its copy is already byte-equal (same
  // reasoning as the page stamps: equal stamps within one Memory mean equal tables).
  if (snap.mem_uid != mem_uid_ || snap.alloc_epoch != alloc_epoch_) {
    snap.allocations = allocations_;
    snap.alloc_epoch = alloc_epoch_;
  }
  snap.mem_uid = mem_uid_;
  // Writes from here on must stamp strictly newer than the syncs recorded above, or a
  // post-snapshot write would look clean to the next fill of this buffer.
  ++snap_epoch_;
}

void Memory::Restore(const MemorySnapshot& snapshot) {
  EASEIO_CHECK(snapshot.sram_used <= sram_size() && snapshot.fram_used <= fram_size(),
               "snapshot does not fit this memory");
  EASEIO_CHECK(snapshot.fram.size() == snapshot.fram_used,
               "torn snapshot: fram buffer length does not match fram_used");
  // Pages written below are stamped with a fresh epoch — never rewound to the
  // snapshot's sync stamp, which would falsely validate *other* outstanding snapshots
  // of this memory whose sync predates the content now being laid back.
  ++snap_epoch_;
  // FRAM allocated beyond the snapshot cursor (e.g. lazily, after the snapshot was
  // taken) must read as zero once the cursor rolls back.
  if (fram_used_ > snapshot.fram_used) {
    std::memset(fram_.data() + snapshot.fram_used, 0, fram_used_ - snapshot.fram_used);
    MarkFramRangeDirty(snapshot.fram_used, fram_used_ - snapshot.fram_used);
  }
  const bool same_mem = snapshot.mem_uid == mem_uid_ &&
                        snapshot.page_synced.size() == page_stamp_.size();
  const uint32_t used_pages =
      (snapshot.fram_used + kSnapshotPageSize - 1) / kSnapshotPageSize;
  for (uint32_t p = 0; p < used_pages; ++p) {
    // A page untouched since this snapshot's own fill already holds the snapshot
    // content; writing it back would be a no-op.
    if (same_mem && snapshot.page_synced[p] != 0 && snapshot.page_synced[p] >= page_stamp_[p]) {
      ++pages_skipped_;
      continue;
    }
    const uint32_t off = p * kSnapshotPageSize;
    const uint32_t len = std::min(kSnapshotPageSize, snapshot.fram_used - off);
    std::memcpy(fram_.data() + off, snapshot.fram.data() + off, len);
    page_stamp_[p] = snap_epoch_;
    ++pages_copied_;
  }
  std::memset(sram_.data(), 0, sram_used_ > snapshot.sram_used ? sram_used_ : snapshot.sram_used);
  sram_used_ = snapshot.sram_used;
  fram_used_ = snapshot.fram_used;
  reboot_epoch_ = snapshot.reboot_epoch;
  // The table is restored whenever it could differ — a same-sized table may still
  // differ in addresses, kinds, or sizes (pool reuse across trials hits this
  // constantly). Only a provably identical table (same Memory, same never-reused
  // identity stamp) skips the deep copy; a foreign or unknown-identity table is
  // copied and the current table gets a fresh identity of its own.
  if (snapshot.mem_uid != mem_uid_ || snapshot.alloc_epoch == 0 ||
      snapshot.alloc_epoch != alloc_epoch_) {
    allocations_ = snapshot.allocations;
    alloc_epoch_ = (snapshot.mem_uid == mem_uid_ && snapshot.alloc_epoch != 0)
                       ? snapshot.alloc_epoch
                       : next_alloc_epoch_++;
  }
}

void Memory::Reset() {
  std::memset(sram_.data(), 0, sram_used_);
  std::memset(fram_.data(), 0, fram_used_);
  ++snap_epoch_;
  MarkFramRangeDirty(0, fram_used_);
  sram_used_ = 0;
  fram_used_ = 0;
  reboot_epoch_ = 0;
  allocations_.clear();
  alloc_epoch_ = next_alloc_epoch_++;
}

}  // namespace easeio::sim
