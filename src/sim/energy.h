// Energy storage and metering for the simulated device.

#ifndef EASEIO_SIM_ENERGY_H_
#define EASEIO_SIM_ENERGY_H_

#include <cstdint>

#include "platform/check.h"
#include "sim/costs.h"

namespace easeio::sim {

// The capacitor that powers the device. Harvested energy charges it; every executed
// operation draws from it. The device browns out when the voltage falls below v_off
// and boots again once it climbs back above v_on.
class Capacitor {
 public:
  Capacitor(double capacitance_f = kDefaultCapacitanceF, double v_on = kDefaultVOn,
            double v_off = kDefaultVOff, double v_max = kDefaultVMax)
      : capacitance_f_(capacitance_f), v_on_(v_on), v_off_(v_off), v_max_(v_max), v_(v_max) {
    EASEIO_CHECK(capacitance_f > 0 && v_off > 0 && v_on > v_off && v_max >= v_on,
                 "capacitor thresholds must satisfy 0 < v_off < v_on <= v_max");
  }

  // Stored energy relative to ground, 1/2 C V^2.
  double StoredJ() const { return 0.5 * capacitance_f_ * v_ * v_; }

  // Energy usable before brown-out.
  double UsableJ() const {
    const double floor = 0.5 * capacitance_f_ * v_off_ * v_off_;
    const double stored = StoredJ();
    return stored > floor ? stored - floor : 0.0;
  }

  // Energy needed to climb from the current voltage back to the boot threshold.
  double DeficitToOnJ() const {
    const double target = 0.5 * capacitance_f_ * v_on_ * v_on_;
    const double stored = StoredJ();
    return stored < target ? target - stored : 0.0;
  }

  // Draws `j` joules. Returns false (leaving the capacitor clamped at v_off) when the
  // draw would brown the device out.
  bool Draw(double j) {
    EASEIO_CHECK(j >= 0, "cannot draw negative energy");
    if (j > UsableJ()) {
      SetVoltage(v_off_);
      return false;
    }
    SetEnergy(StoredJ() - j);
    return true;
  }

  // Adds harvested energy, clamped at the v_max rail.
  void Charge(double j) {
    EASEIO_CHECK(j >= 0, "cannot harvest negative energy");
    const double cap = 0.5 * capacitance_f_ * v_max_ * v_max_;
    double e = StoredJ() + j;
    SetEnergy(e > cap ? cap : e);
  }

  // Resets to fully charged (used at run start).
  void Reset() { v_ = v_max_; }

  double voltage() const { return v_; }
  double v_on() const { return v_on_; }
  double v_off() const { return v_off_; }
  double capacitance_f() const { return capacitance_f_; }
  bool BelowOff() const { return v_ <= v_off_ + 1e-12; }

 private:
  void SetEnergy(double j) {
    v_ = j <= 0 ? 0.0 : __builtin_sqrt(2.0 * j / capacitance_f_);
  }
  void SetVoltage(double v) { v_ = v; }

  double capacitance_f_;
  double v_on_;
  double v_off_;
  double v_max_;
  double v_;
};

// Attribution buckets for time and energy. The paper's Figures 7 and 10 decompose
// total execution time into useful application work, runtime overhead, and wasted
// work; the device tags every charged operation with the currently active phase.
enum class Phase : uint8_t {
  kApp = 0,       // first-time useful application work (compute and I/O)
  kOverhead = 1,  // runtime bookkeeping: flags, timestamps, privatization, commits
  kRedundant = 2, // re-executed I/O work within an eventually-successful attempt
};
inline constexpr int kNumPhases = 3;

// Accumulates energy consumption per phase.
class EnergyMeter {
 public:
  void Add(Phase phase, double j) { per_phase_[static_cast<int>(phase)] += j; }

  double TotalJ() const { return per_phase_[0] + per_phase_[1] + per_phase_[2]; }
  double PhaseJ(Phase phase) const { return per_phase_[static_cast<int>(phase)]; }

  void Reset() { per_phase_[0] = per_phase_[1] = per_phase_[2] = 0.0; }

 private:
  double per_phase_[kNumPhases] = {0.0, 0.0, 0.0};
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_ENERGY_H_
