#include "sim/lea.h"

#include <algorithm>
#include <initializer_list>

#include "platform/check.h"
#include "sim/costs.h"
#include "sim/device.h"

namespace easeio::sim {

namespace {

int16_t Saturate(int32_t v) {
  return static_cast<int16_t>(std::clamp<int32_t>(v, INT16_MIN, INT16_MAX));
}

// Raw little-endian element access for the kernel inner loops. Begin() has already
// range-checked every operand and pinned it to SRAM, so the loops stream through
// pointers instead of paying a Resolve (bounds + arena dispatch) per element — the
// per-element accessor chain dominated chk exploration profiles on the camera app.
int16_t LoadI16(const uint8_t* p) {
  return static_cast<int16_t>(static_cast<uint16_t>(p[0] | (p[1] << 8)));
}

void StoreI16(uint8_t* p, int16_t v) {
  const auto u = static_cast<uint16_t>(v);
  p[0] = static_cast<uint8_t>(u & 0xFF);
  p[1] = static_cast<uint8_t>(u >> 8);
}

}  // namespace

void LeaAccelerator::Begin(Device& dev, uint64_t mac_count,
                           std::initializer_list<uint32_t> operand_addrs,
                           std::initializer_list<uint32_t> operand_sizes) {
  auto size_it = operand_sizes.begin();
  for (uint32_t addr : operand_addrs) {
    EASEIO_CHECK(size_it != operand_sizes.end(), "operand addr/size mismatch");
    EASEIO_CHECK(dev.mem().RangeValid(addr, *size_it), "LEA operand out of range");
    EASEIO_CHECK(dev.mem().Classify(addr) == MemKind::kSram,
                 "LEA operands must reside in SRAM (stage them with DMA)");
    ++size_it;
  }
  const uint64_t mac_cycles =
      (mac_count * kLeaCyclesPerMacNumerator + kLeaCyclesPerMacDenominator - 1) /
      kLeaCyclesPerMacDenominator;
  dev.Spend(kLeaSetupCycles, kLeaSetupEnergyJ);
  dev.Spend(std::max<uint64_t>(mac_cycles, 1),
            static_cast<double>(mac_count) * kLeaEnergyPerMacJ);
  ++invocations_;
  macs_ += mac_count;
}

void LeaAccelerator::Fir(Device& dev, uint32_t src, uint32_t coef, uint32_t dst,
                         uint32_t out_len, uint32_t taps) {
  EASEIO_CHECK(out_len > 0 && taps > 0, "empty FIR");
  const uint32_t in_len = out_len + taps - 1;
  Begin(dev, static_cast<uint64_t>(out_len) * taps, {src, coef, dst},
        {in_len * 2, taps * 2, out_len * 2});
  Memory& mem = dev.mem();
  const uint8_t* sp = mem.PeekBlock(src, in_len * 2);
  const uint8_t* cp = mem.PeekBlock(coef, taps * 2);
  uint8_t* dp = mem.MutableSramBlock(dst, out_len * 2);
  for (uint32_t i = 0; i < out_len; ++i) {
    int32_t acc = 0;
    for (uint32_t k = 0; k < taps; ++k) {
      acc += static_cast<int32_t>(LoadI16(cp + 2 * k)) *
             static_cast<int32_t>(LoadI16(sp + 2 * (i + k)));
    }
    StoreI16(dp + 2 * i, Saturate(acc >> 15));
  }
}

void LeaAccelerator::Relu(Device& dev, uint32_t addr, uint32_t len) {
  EASEIO_CHECK(len > 0, "empty ReLU");
  Begin(dev, len, {addr}, {len * 2});
  uint8_t* p = dev.mem().MutableSramBlock(addr, len * 2);
  for (uint32_t i = 0; i < len; ++i) {
    if (LoadI16(p + 2 * i) < 0) {
      StoreI16(p + 2 * i, 0);
    }
  }
}

void LeaAccelerator::Conv2dValid(Device& dev, uint32_t src, uint32_t kernel, uint32_t dst,
                                 uint32_t in_h, uint32_t in_w, uint32_t k) {
  EASEIO_CHECK(k > 0 && in_h >= k && in_w >= k, "kernel larger than input");
  const uint32_t out_h = in_h - k + 1;
  const uint32_t out_w = in_w - k + 1;
  Begin(dev, static_cast<uint64_t>(out_h) * out_w * k * k, {src, kernel, dst},
        {in_h * in_w * 2, k * k * 2, out_h * out_w * 2});
  Memory& mem = dev.mem();
  const uint8_t* sp = mem.PeekBlock(src, in_h * in_w * 2);
  const uint8_t* kp = mem.PeekBlock(kernel, k * k * 2);
  uint8_t* dp = mem.MutableSramBlock(dst, out_h * out_w * 2);
  for (uint32_t y = 0; y < out_h; ++y) {
    for (uint32_t x = 0; x < out_w; ++x) {
      int32_t acc = 0;
      for (uint32_t ky = 0; ky < k; ++ky) {
        for (uint32_t kx = 0; kx < k; ++kx) {
          acc += static_cast<int32_t>(LoadI16(kp + 2 * (ky * k + kx))) *
                 static_cast<int32_t>(LoadI16(sp + 2 * ((y + ky) * in_w + (x + kx))));
        }
      }
      StoreI16(dp + 2 * (y * out_w + x), Saturate(acc >> 15));
    }
  }
}

void LeaAccelerator::FullyConnected(Device& dev, uint32_t src, uint32_t weights, uint32_t dst,
                                    uint32_t in_len, uint32_t out_len) {
  EASEIO_CHECK(in_len > 0 && out_len > 0, "empty fully-connected layer");
  Begin(dev, static_cast<uint64_t>(in_len) * out_len, {src, weights, dst},
        {in_len * 2, in_len * out_len * 2, out_len * 2});
  Memory& mem = dev.mem();
  const uint8_t* sp = mem.PeekBlock(src, in_len * 2);
  const uint8_t* wp = mem.PeekBlock(weights, in_len * out_len * 2);
  uint8_t* dp = mem.MutableSramBlock(dst, out_len * 2);
  for (uint32_t o = 0; o < out_len; ++o) {
    int32_t acc = 0;
    for (uint32_t i = 0; i < in_len; ++i) {
      acc += static_cast<int32_t>(LoadI16(wp + 2 * (o * in_len + i))) *
             static_cast<int32_t>(LoadI16(sp + 2 * i));
    }
    StoreI16(dp + 2 * o, Saturate(acc >> 15));
  }
}

void LeaAccelerator::MaxIndex(Device& dev, uint32_t src, uint32_t len, uint32_t dst) {
  EASEIO_CHECK(len > 0, "empty argmax");
  Begin(dev, len, {src, dst}, {len * 2, 2});
  Memory& mem = dev.mem();
  const uint8_t* sp = mem.PeekBlock(src, len * 2);
  int16_t best = LoadI16(sp);
  uint32_t best_i = 0;
  for (uint32_t i = 1; i < len; ++i) {
    const int16_t v = LoadI16(sp + 2 * i);
    if (v > best) {
      best = v;
      best_i = i;
    }
  }
  StoreI16(mem.MutableSramBlock(dst, 2), static_cast<int16_t>(best_i));
}

}  // namespace easeio::sim
