// Simulated DMA controller.
//
// The controller copies blocks between simulated addresses without CPU involvement —
// which is exactly why task-based runtimes cannot see, let alone privatize, the
// non-volatile locations it touches (the paper's P2). The transfer charges energy and
// bus time first; bytes move only if the charge completes, so a power failure mid-DMA
// aborts the transfer without partial writes (MSP430 DMA completes the in-flight word
// only; at our block granularity "no effect" is the faithful simplification — the
// paper's bugs involve *completed* transfers, not torn ones).

#ifndef EASEIO_SIM_DMA_H_
#define EASEIO_SIM_DMA_H_

#include <cstdint>

#include "sim/memory.h"

namespace easeio::sim {

class Device;

class DmaEngine {
 public:
  struct TransferInfo {
    MemKind src_kind;
    MemKind dst_kind;
    uint32_t bytes;
  };

  // Performs a charged block copy of `nbytes` from `src` to `dst`. Returns the memory
  // kinds involved (the EaseIO runtime classifies re-execution semantics from them).
  TransferInfo Copy(Device& dev, uint32_t dst, uint32_t src, uint32_t nbytes);

  // Number of completed transfers since construction.
  uint64_t transfers() const { return transfers_; }
  uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  uint64_t transfers_ = 0;
  uint64_t bytes_moved_ = 0;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_DMA_H_
