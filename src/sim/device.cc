#include "sim/device.h"

#include <algorithm>

#include "platform/check.h"

namespace easeio::sim {

Device::Device(const DeviceConfig& config, FailureScheduler& scheduler,
               const Harvester* harvester)
    : config_(config),
      scheduler_(&scheduler),
      harvester_(harvester),
      mem_(config.sram_bytes, config.fram_bytes),
      timekeeper_(clock_, config.timekeeper_tick_us),
      cap_(config.capacitance_f, config.v_on, config.v_off, config.v_max),
      failure_rng_(DeriveSeed(config.seed, 0)),
      temp_(MakeTempSensor(DeriveSeed(config.seed, 1))),
      humidity_(MakeHumiditySensor(DeriveSeed(config.seed, 2))),
      pressure_(MakePressureSensor(DeriveSeed(config.seed, 3))),
      camera_(DeriveSeed(config.seed, 4)) {
  EASEIO_CHECK(!config.use_capacitor || harvester != nullptr,
               "capacitor mode requires a harvester");
}

void Device::Reset(const DeviceConfig& config, FailureScheduler& scheduler,
                   const Harvester* harvester) {
  EASEIO_CHECK(config.sram_bytes == mem_.sram_size() && config.fram_bytes == mem_.fram_size(),
               "Device::Reset cannot change arena sizes");
  EASEIO_CHECK(!config.use_capacitor || harvester != nullptr,
               "capacitor mode requires a harvester");
  config_ = config;
  scheduler_ = &scheduler;
  harvester_ = harvester;
  mem_.Reset();
  clock_.Reset();
  timekeeper_.Reset(config.timekeeper_tick_us);
  cap_ = Capacitor(config.capacitance_f, config.v_on, config.v_off, config.v_max);
  meter_.Reset();
  stats_.Reset();
  phase_ = Phase::kApp;
  failure_rng_ = Xorshift64Star(DeriveSeed(config.seed, 0));
  temp_ = MakeTempSensor(DeriveSeed(config.seed, 1));
  humidity_ = MakeHumiditySensor(DeriveSeed(config.seed, 2));
  pressure_ = MakePressureSensor(DeriveSeed(config.seed, 3));
  radio_ = Radio();
  camera_ = Camera(DeriveSeed(config.seed, 4));
  dma_ = DmaEngine();
  lea_ = LeaAccelerator();
  reboot_listeners_.clear();
  ring_count_ = 0;
  sinks_.clear();
  owned_sinks_.clear();
  deadline_on_us_ = 0;
  next_cap_sample_us_ = 0;
  ClearCapturePlan();
}

namespace {

// Adapter behind Device::AddProbe: unpacks batches into the legacy per-event callback.
class ProbeFnSink final : public ProbeSink {
 public:
  explicit ProbeFnSink(ProbeFn fn) : fn_(std::move(fn)) {}
  void OnProbeBatch(const ProbeBatch& batch) override {
    for (size_t i = 0; i < batch.count; ++i) {
      const ProbeEvent e = batch.Event(i);
      fn_(e);
    }
  }

 private:
  ProbeFn fn_;
};

}  // namespace

void Device::AddProbe(ProbeFn fn) {
  EASEIO_CHECK(static_cast<bool>(fn), "AddProbe requires a callable");
  owned_sinks_.push_back(std::make_unique<ProbeFnSink>(std::move(fn)));
  sinks_.push_back(owned_sinks_.back().get());
}

DeviceSnapshot Device::SnapshotAtReboot() const {
  return DeviceSnapshot{mem_.Snapshot(), clock_, cap_,    meter_,  stats_, failure_rng_,
                        temp_,           humidity_, pressure_, radio_, camera_,
                        dma_,            lea_};
}

void Device::SnapshotAtRebootInto(DeviceSnapshot& out) const {
  mem_.SnapshotInto(out.mem);
  out.clock = clock_;
  out.capacitor = cap_;
  out.meter = meter_;
  out.stats = stats_;
  out.failure_rng = failure_rng_;
  out.temp = temp_;
  out.humidity = humidity_;
  out.pressure = pressure_;
  out.radio = radio_;
  out.camera = camera_;
  out.dma = dma_;
  out.lea = lea_;
}

void Device::ResumeFromSnapshot(const DeviceSnapshot& snapshot) {
  mem_.Restore(snapshot.mem);
  clock_ = snapshot.clock;
  cap_ = snapshot.capacitor;
  meter_ = snapshot.meter;
  stats_ = snapshot.stats;
  failure_rng_ = snapshot.failure_rng;
  temp_ = snapshot.temp;
  humidity_ = snapshot.humidity;
  pressure_ = snapshot.pressure;
  radio_ = snapshot.radio;
  camera_ = snapshot.camera;
  dma_ = snapshot.dma;
  lea_ = snapshot.lea;
  // The snapshot was taken mid-failure; the deferred Reboot() re-enters at kApp.
  phase_ = Phase::kApp;
  // Conservative until the deferred Reboot() re-arms the scheduler and re-derives it.
  deadline_on_us_ = 0;
  RecomputeFastSpendBound();
}

void Device::Begin() {
  cap_.Reset();
  scheduler_->OnPowerOn(clock_, failure_rng_);
  RearmFailureDeadline();
}

void Device::SpendSlow(uint64_t cycles, double energy_j) {
  CaptureCheck();
  CapSampleCheck();
  if (scheduler_->FailNow(clock_, cap_)) {
    throw PowerFailure{};
  }
  const double energy_per_cycle = energy_j / static_cast<double>(cycles);
  uint64_t remaining = cycles;
  while (remaining > 0) {
    const uint64_t budget = scheduler_->OnTimeBudgetUs(clock_);
    EASEIO_CHECK(budget > 0, "scheduler returned zero budget without failing");
    uint64_t step = std::min(remaining, budget);
    // Clamp to the next capture instant so the clock lands exactly on it; splitting a
    // step changes nothing observable (stats/meter accumulate sums, and the capacitor
    // path is unused in the scripted mode capture plans run under).
    if (capture_hook_ && capture_next_ < capture_at_.size()) {
      const uint64_t next_capture = capture_at_[capture_next_];
      if (clock_.on_us() < next_capture) {
        step = std::min(step, next_capture - clock_.on_us());
      }
    }
    const double step_s = static_cast<double>(step) * 1e-6;
    double draw_j = energy_per_cycle * static_cast<double>(step);
    if (config_.use_capacitor) {
      draw_j += config_.idle_power_w * step_s;
      cap_.Charge(harvester_->PowerW(clock_.wall_us()) * step_s);
      cap_.Draw(draw_j);
    }
    clock_.AdvanceOn(step);
    stats_.ChargeAttempt(phase_, static_cast<double>(step), draw_j);
    meter_.Add(phase_, draw_j);
    remaining -= step;
    CaptureCheck();
    CapSampleCheck();
    if (scheduler_->FailNow(clock_, cap_)) {
      throw PowerFailure{};
    }
  }
}

uint32_t Device::LoadWord32(uint32_t addr) {
  const uint32_t lo = LoadWord(addr);
  const uint32_t hi = LoadWord(addr + 2);
  return lo | (hi << 16);
}

void Device::StoreWord32(uint32_t addr, uint32_t value) {
  StoreWord(addr, static_cast<uint16_t>(value & 0xFFFF));
  StoreWord(addr + 2, static_cast<uint16_t>(value >> 16));
}

void Device::CpuCopy(uint32_t dst, uint32_t src, uint32_t nbytes) {
  const uint32_t words = (nbytes + 1) / 2;
  for (uint32_t i = 0; i < words; ++i) {
    const uint16_t v = LoadWord(src + 2 * i);
    StoreWord(dst + 2 * i, v);
  }
}

void Device::Reboot() {
  stats_.FoldFailed();
  ++stats_.power_failures;
  // The voltage the failure left behind, before the recharge below refills it.
  const double v_at_failure = cap_.voltage();
  const uint64_t off_before = clock_.off_us();

  if (config_.use_capacitor) {
    // Dark until the harvester refills the capacitor to the boot threshold. With zero
    // harvest the device would stay dark forever; surface that as a modelling error.
    const double deficit = cap_.DeficitToOnJ();
    if (deficit > 0) {
      const double p = harvester_->PowerW(clock_.wall_us());
      EASEIO_CHECK(p > 1e-12, "device browned out with no harvest income");
      const double seconds = deficit / p;
      clock_.AdvanceOff(static_cast<uint64_t>(seconds * 1e6) + 1);
      cap_.Charge(deficit);
    }
  } else {
    clock_.AdvanceOff(scheduler_->OffTimeUs(failure_rng_));
  }

  // Emitted once the dark interval is known so the event can carry it: on_us is the
  // failure instant (unchanged by AdvanceOff), a is the off-time just spent, b the
  // capacitor voltage at the failure instant.
  Note(ProbeKind::kReboot, static_cast<uint32_t>(stats_.power_failures), 0,
       clock_.off_us() - off_before, static_cast<uint64_t>(v_at_failure * 1e6));

  mem_.OnReboot();
  phase_ = Phase::kApp;
  for (const auto& fn : reboot_listeners_) {
    fn();
  }
  scheduler_->OnPowerOn(clock_, failure_rng_);
  RearmFailureDeadline();
}

}  // namespace easeio::sim
