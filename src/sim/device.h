// The simulated intermittent device: memory + capacitor + clock + peripherals +
// failure injection, with phase-tagged charging of every operation.
//
// Usage pattern (the task engine drives this):
//   Device dev(config, scheduler, harvester);
//   dev.Begin();
//   try { ... dev.Cpu(n); dev.LoadWord(a); dev.temp().Read(dev); ... }
//   catch (const PowerFailure&) { dev.Reboot(); /* re-enter current task */ }

#ifndef EASEIO_SIM_DEVICE_H_
#define EASEIO_SIM_DEVICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "platform/rng.h"
#include "sim/clock.h"
#include "sim/costs.h"
#include "sim/dma.h"
#include "sim/energy.h"
#include "sim/failure.h"
#include "sim/harvester.h"
#include "sim/lea.h"
#include "sim/memory.h"
#include "sim/peripherals.h"
#include "sim/probe.h"
#include "sim/stats.h"

namespace easeio::sim {

struct DeviceConfig {
  uint32_t sram_bytes = 8 * 1024;
  uint32_t fram_bytes = 256 * 1024;
  uint64_t seed = 1;

  // When true the device draws every operation from the capacitor, harvests while on
  // and off, and browns out when the capacitor crosses v_off (Figure 13 mode). When
  // false, energy is metered but unconstrained and failures come purely from the
  // scheduler (the paper's emulated-failure mode).
  bool use_capacitor = false;
  double capacitance_f = kDefaultCapacitanceF;
  double v_on = kDefaultVOn;
  double v_off = kDefaultVOff;
  double v_max = kDefaultVMax;

  // Quiescent draw of the platform while powered (regulator + always-on logic); only
  // charged in capacitor mode, alongside per-operation energy.
  double idle_power_w = 0.25e-3;

  uint64_t timekeeper_tick_us = 100;

  // When non-zero, the device emits a kCapSample probe event at least every
  // `cap_sample_period_us` of on-time (host-side observation only — sampling charges
  // nothing). In timer mode the capacitor sits at v_max, so the track is flat; in
  // capacitor mode it follows the harvest/draw trajectory. Off by default: the chk
  // explorer never enables it, keeping candidate enumeration unchanged.
  uint64_t cap_sample_period_us = 0;
};

// Everything that legally crosses a power failure, captured the instant a
// PowerFailure is thrown and *before* Device::Reboot() runs: FRAM plus cursors,
// both clocks, capacitor voltage, stats (including the still-unfolded attempt
// buffer — Reboot folds it on resume), the failure RNG, and the peripheral /
// accelerator counters the invariant checker and host reports read. SRAM is absent
// on purpose: it is destroyed by the reboot on either side of the snapshot.
struct DeviceSnapshot {
  MemorySnapshot mem;
  SimClock clock;
  Capacitor capacitor;
  EnergyMeter meter;
  RunStats stats;
  Xorshift64Star failure_rng;
  AnalogSensor temp;
  AnalogSensor humidity;
  AnalogSensor pressure;
  Radio radio;
  Camera camera;
  DmaEngine dma;
  LeaAccelerator lea;
};

class Device {
 public:
  // `scheduler` decides power failures; `harvester` may be null when use_capacitor is
  // false. Both must outlive the device (or be replaced via Reset before further use).
  Device(const DeviceConfig& config, FailureScheduler& scheduler,
         const Harvester* harvester = nullptr);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // Powers the device on at the start of a run (full capacitor, scheduler armed).
  void Begin();

  // Returns the device to its freshly constructed state *without* reallocating the
  // arenas (Memory::Reset re-zeros only the used prefixes): re-seeds the RNG streams
  // and sensors, rewinds the clocks, resets capacitor/meter/stats, and drops reboot
  // listeners and the probe. Arena sizes must match the original construction; the
  // failure source and harvester are rebound. Per-worker trial stacks call this
  // between trials instead of constructing a new device.
  void Reset(const DeviceConfig& config, FailureScheduler& scheduler,
             const Harvester* harvester = nullptr);

  // Captures the power-failure-persistent state (see DeviceSnapshot). Call with the
  // device exactly as a caught PowerFailure left it, before Reboot().
  DeviceSnapshot SnapshotAtReboot() const;

  // Restores a snapshot onto this device. The runtime/app stack must have been rebuilt
  // with the identical construction sequence first (registration rebuilds the volatile
  // and host-side structures; this call then rolls FRAM and the counters back to the
  // captured instant). The caller resumes by performing the deferred reboot
  // (kernel::Engine::Resume).
  void ResumeFromSnapshot(const DeviceSnapshot& snapshot);

  // --- Charged execution primitives -----------------------------------------------------
  // Spends `cycles` of CPU/bus time with the given total energy, advancing the clock and
  // drawing from the capacitor. Throws PowerFailure at the exact failure instant.
  void Spend(uint64_t cycles, double energy_j);

  // Pure compute for `cycles` cycles.
  void Cpu(uint64_t cycles) { Spend(cycles, static_cast<double>(cycles) * kCpuEnergyPerCycleJ); }

  // Charged 16-bit memory accesses (cost depends on SRAM vs FRAM).
  uint16_t LoadWord(uint32_t addr);
  void StoreWord(uint32_t addr, uint16_t value);
  uint32_t LoadWord32(uint32_t addr);
  void StoreWord32(uint32_t addr, uint32_t value);

  // Charged bulk copy performed by the CPU (word loop). DMA copies go through dma().
  void CpuCopy(uint32_t dst, uint32_t src, uint32_t nbytes);

  // --- Phase attribution ----------------------------------------------------------------
  Phase phase() const { return phase_; }
  void set_phase(Phase phase) { phase_ = phase; }

  // RAII phase switch: runtimes wrap their bookkeeping in PhaseScope(dev, kOverhead).
  class PhaseScope {
   public:
    PhaseScope(Device& dev, Phase phase) : dev_(dev), saved_(dev.phase_) {
      dev_.phase_ = phase;
    }
    ~PhaseScope() { dev_.phase_ = saved_; }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Device& dev_;
    Phase saved_;
  };

  // --- Power failure handling -------------------------------------------------------------
  // Reboots after a PowerFailure: folds the in-flight attempt into wasted work, spends
  // the off-time (timer mode: scheduler-provided; capacitor mode: harvester recharge to
  // v_on), clears SRAM, notifies reboot listeners, re-arms the scheduler.
  void Reboot();

  // Marks the current attempt committed (called by the engine at task commit).
  void FoldAttemptCommitted() { stats_.FoldCommitted(); }

  // Registers a callback run on every reboot (runtimes clear volatile state here).
  void AddRebootListener(std::function<void()> fn) { reboot_listeners_.push_back(std::move(fn)); }

  // --- Capture plan (src/chk trunk execution) ----------------------------------------
  // Arms a sorted list of distinct on-clock instants at which `hook(i)` runs, exactly
  // once per instant, from inside Spend. Spend clamps its charging steps so the clock
  // lands exactly on each instant, and the hook runs immediately *before* the failure
  // check at that point — so the state the hook observes is bit-identical to what a
  // scripted failure at the same instant would leave for SnapshotAtReboot, whether or
  // not a failure actually fires there. The hook must only observe (snapshot, read the
  // trace); it must not advance the clock, spend energy, or throw. Cleared by Reset.
  void SetCapturePlan(std::vector<uint64_t> capture_at, std::function<void(size_t)> hook) {
    capture_at_ = std::move(capture_at);
    capture_hook_ = std::move(hook);
    capture_next_ = 0;
  }
  void ClearCapturePlan() {
    capture_at_.clear();
    capture_hook_ = nullptr;
    capture_next_ = 0;
  }

  // --- Execution probe (src/chk + src/obs instrumentation) ---------------------------
  // Subscribes `fn` to the probe stream. Any number of subscribers may coexist (the
  // explorer's recorder, the timeline tracer, and the profiler can observe the same
  // run concurrently); each receives every event, in registration order. Observation
  // is free: no cycles, no energy — an instrumented run is indistinguishable from an
  // uninstrumented one. Cleared by Reset.
  void AddProbe(ProbeFn fn) { probes_.push_back(std::move(fn)); }

  // Legacy single-subscriber entry point: drops all existing subscribers and installs
  // `fn` alone (or none when `fn` is empty). Prefer AddProbe.
  void set_probe(ProbeFn fn) {
    probes_.clear();
    if (fn) {
      probes_.push_back(std::move(fn));
    }
  }

  bool has_probe() const { return !probes_.empty(); }

  // Emits one probe event stamped with the current on-time. No-op without subscribers.
  void Note(ProbeKind kind, uint32_t id, uint32_t lane = 0, uint64_t a = 0, uint64_t b = 0) {
    if (!probes_.empty()) {
      const ProbeEvent e{kind, id, lane, a, b, clock_.on_us()};
      for (const ProbeFn& probe : probes_) {
        probe(e);
      }
    }
  }

  // --- Components --------------------------------------------------------------------------
  Memory& mem() { return mem_; }
  const Memory& mem() const { return mem_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  const PersistentTimekeeper& timekeeper() const { return timekeeper_; }
  Capacitor& capacitor() { return cap_; }
  RunStats& stats() { return stats_; }
  const RunStats& stats() const { return stats_; }
  EnergyMeter& meter() { return meter_; }

  AnalogSensor& temp() { return temp_; }
  AnalogSensor& humidity() { return humidity_; }
  AnalogSensor& pressure() { return pressure_; }
  Radio& radio() { return radio_; }
  Camera& camera() { return camera_; }
  DmaEngine& dma() { return dma_; }
  LeaAccelerator& lea() { return lea_; }

  const DeviceConfig& config() const { return config_; }

 private:
  DeviceConfig config_;
  FailureScheduler* scheduler_;  // never null; rebound by Reset
  const Harvester* harvester_;

  Memory mem_;
  SimClock clock_;
  PersistentTimekeeper timekeeper_;
  Capacitor cap_;
  EnergyMeter meter_;
  RunStats stats_;
  Phase phase_ = Phase::kApp;

  Xorshift64Star failure_rng_;

  AnalogSensor temp_;
  AnalogSensor humidity_;
  AnalogSensor pressure_;
  Radio radio_;
  Camera camera_;
  DmaEngine dma_;
  LeaAccelerator lea_;

  std::vector<std::function<void()>> reboot_listeners_;
  std::vector<ProbeFn> probes_;

  // On-time threshold for the next kCapSample emission (cap_sample_period_us > 0).
  uint64_t next_cap_sample_us_ = 0;

  // Emits due kCapSample events; called from the same Spend sites as CaptureCheck so
  // samples land between charging steps, never mid-step.
  void CapSampleCheck() {
    if (config_.cap_sample_period_us == 0 || probes_.empty()) {
      return;
    }
    if (clock_.on_us() >= next_cap_sample_us_) {
      Note(ProbeKind::kCapSample, 0, 0, static_cast<uint64_t>(cap_.voltage() * 1e6),
           static_cast<uint64_t>(cap_.StoredJ() * 1e9));
      // Next threshold on the period grid strictly after now: a charging step that
      // crosses several periods yields one sample, not a burst at the same instant.
      next_cap_sample_us_ =
          (clock_.on_us() / config_.cap_sample_period_us + 1) * config_.cap_sample_period_us;
    }
  }

  // Runs every due capture hook. Called at each failure-check site in Spend, before
  // the check itself (see SetCapturePlan).
  void CaptureCheck() {
    while (capture_hook_ && capture_next_ < capture_at_.size() &&
           clock_.on_us() >= capture_at_[capture_next_]) {
      capture_hook_(capture_next_);
      ++capture_next_;
    }
  }

  std::vector<uint64_t> capture_at_;
  size_t capture_next_ = 0;
  std::function<void(size_t)> capture_hook_;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_DEVICE_H_
