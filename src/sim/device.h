// The simulated intermittent device: memory + capacitor + clock + peripherals +
// failure injection, with phase-tagged charging of every operation.
//
// Usage pattern (the task engine drives this):
//   Device dev(config, scheduler, harvester);
//   dev.Begin();
//   try { ... dev.Cpu(n); dev.LoadWord(a); dev.temp().Read(dev); ... }
//   catch (const PowerFailure&) { dev.Reboot(); /* re-enter current task */ }

#ifndef EASEIO_SIM_DEVICE_H_
#define EASEIO_SIM_DEVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "platform/rng.h"
#include "sim/clock.h"
#include "sim/costs.h"
#include "sim/dma.h"
#include "sim/energy.h"
#include "sim/failure.h"
#include "sim/harvester.h"
#include "sim/lea.h"
#include "sim/memory.h"
#include "sim/peripherals.h"
#include "sim/probe.h"
#include "sim/stats.h"

namespace easeio::sim {

struct DeviceConfig {
  uint32_t sram_bytes = 8 * 1024;
  uint32_t fram_bytes = 256 * 1024;
  uint64_t seed = 1;

  // When true the device draws every operation from the capacitor, harvests while on
  // and off, and browns out when the capacitor crosses v_off (Figure 13 mode). When
  // false, energy is metered but unconstrained and failures come purely from the
  // scheduler (the paper's emulated-failure mode).
  bool use_capacitor = false;
  double capacitance_f = kDefaultCapacitanceF;
  double v_on = kDefaultVOn;
  double v_off = kDefaultVOff;
  double v_max = kDefaultVMax;

  // Quiescent draw of the platform while powered (regulator + always-on logic); only
  // charged in capacitor mode, alongside per-operation energy.
  double idle_power_w = 0.25e-3;

  uint64_t timekeeper_tick_us = 100;

  // When non-zero, the device emits a kCapSample probe event at least every
  // `cap_sample_period_us` of on-time (host-side observation only — sampling charges
  // nothing). In timer mode the capacitor sits at v_max, so the track is flat; in
  // capacitor mode it follows the harvest/draw trajectory. Off by default: the chk
  // explorer never enables it, keeping candidate enumeration unchanged.
  uint64_t cap_sample_period_us = 0;
};

// Everything that legally crosses a power failure, captured the instant a
// PowerFailure is thrown and *before* Device::Reboot() runs: FRAM plus cursors,
// both clocks, capacitor voltage, stats (including the still-unfolded attempt
// buffer — Reboot folds it on resume), the failure RNG, and the peripheral /
// accelerator counters the invariant checker and host reports read. SRAM is absent
// on purpose: it is destroyed by the reboot on either side of the snapshot.
struct DeviceSnapshot {
  MemorySnapshot mem;
  SimClock clock;
  Capacitor capacitor;
  EnergyMeter meter;
  RunStats stats;
  Xorshift64Star failure_rng;
  AnalogSensor temp;
  AnalogSensor humidity;
  AnalogSensor pressure;
  Radio radio;
  Camera camera;
  DmaEngine dma;
  LeaAccelerator lea;
};

class Device {
 public:
  // `scheduler` decides power failures; `harvester` may be null when use_capacitor is
  // false. Both must outlive the device (or be replaced via Reset before further use).
  Device(const DeviceConfig& config, FailureScheduler& scheduler,
         const Harvester* harvester = nullptr);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // Powers the device on at the start of a run (full capacitor, scheduler armed).
  void Begin();

  // Returns the device to its freshly constructed state *without* reallocating the
  // arenas (Memory::Reset re-zeros only the used prefixes): re-seeds the RNG streams
  // and sensors, rewinds the clocks, resets capacitor/meter/stats, and drops reboot
  // listeners and the probe. Arena sizes must match the original construction; the
  // failure source and harvester are rebound. Per-worker trial stacks call this
  // between trials instead of constructing a new device.
  void Reset(const DeviceConfig& config, FailureScheduler& scheduler,
             const Harvester* harvester = nullptr);

  // Captures the power-failure-persistent state (see DeviceSnapshot). Call with the
  // device exactly as a caught PowerFailure left it, before Reboot().
  DeviceSnapshot SnapshotAtReboot() const;

  // In-place variant reusing `out`'s buffers (the SnapshotPool hot path). When `out`
  // was last filled from this same device, only FRAM pages dirtied since that fill
  // are re-copied (see Memory::SnapshotInto).
  void SnapshotAtRebootInto(DeviceSnapshot& out) const;

  // Restores a snapshot onto this device. The runtime/app stack must have been rebuilt
  // with the identical construction sequence first (registration rebuilds the volatile
  // and host-side structures; this call then rolls FRAM and the counters back to the
  // captured instant). The caller resumes by performing the deferred reboot
  // (kernel::Engine::Resume).
  void ResumeFromSnapshot(const DeviceSnapshot& snapshot);

  // --- Charged execution primitives -----------------------------------------------------
  // Spends `cycles` of CPU/bus time with the given total energy, advancing the clock and
  // drawing from the capacitor. Throws PowerFailure at the exact failure instant.
  //
  // Fast path, inline: while the whole spend lands strictly before
  // fast_spend_before_us_ — the precomputed min of the cached failure deadline and
  // the next armed capture instant, zero when the capacitor model or voltage
  // sampling is active — the stepping slow path provably collapses to a single
  // uninterrupted step: no hook can fire and FailNow is false at every check site.
  // Charge it in one shot with the *identical* floating-point expression the
  // one-step slow path evaluates ((energy/cycles) * cycles, not energy), keeping
  // stats and meter bit-exact. Trunk runs (capture plan armed) qualify whenever the
  // spend stays short of the next capture, which is nearly always — the plan holds a
  // handful of instants against millions of word-sized spends.
  void Spend(uint64_t cycles, double energy_j) {
    if (cycles == 0) {
      return;
    }
    if (fast_spend_before_us_ != 0 && clock_.on_us() + cycles < fast_spend_before_us_) {
      const double draw_j =
          (energy_j / static_cast<double>(cycles)) * static_cast<double>(cycles);
      clock_.AdvanceOn(cycles);
      stats_.ChargeAttempt(phase_, static_cast<double>(cycles), draw_j);
      meter_.Add(phase_, draw_j);
      return;
    }
    SpendSlow(cycles, energy_j);
  }

  // Pure compute for `cycles` cycles.
  void Cpu(uint64_t cycles) { Spend(cycles, static_cast<double>(cycles) * kCpuEnergyPerCycleJ); }

  // Charged 16-bit memory accesses (cost depends on SRAM vs FRAM). Inline together
  // with Spend's fast path: the kernel's NV accessors funnel every simulated load and
  // store through here, the hottest call chain in a chk exploration.
  uint16_t LoadWord(uint32_t addr) {
    // Single bounds walk; the pointer survives Spend (arenas never reallocate, and a
    // capture hook firing inside Spend only reads the arena). If Spend throws, the
    // speculative resolve had no side effect.
    MemKind kind;
    const uint8_t* p = mem_.ResolveWord(addr, &kind);
    if (kind == MemKind::kSram) {
      Spend(kSramAccessCycles,
            kSramAccessEnergyJ + static_cast<double>(kSramAccessCycles) * kCpuEnergyPerCycleJ);
    } else {
      Spend(kFramReadCycles,
            kFramReadEnergyJ + static_cast<double>(kFramReadCycles) * kCpuEnergyPerCycleJ);
    }
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
  }
  void StoreWord(uint32_t addr, uint16_t value) {
    MemKind kind;
    uint8_t* p = mem_.ResolveWordMut(addr, &kind);
    if (kind == MemKind::kSram) {
      Spend(kSramAccessCycles,
            kSramAccessEnergyJ + static_cast<double>(kSramAccessCycles) * kCpuEnergyPerCycleJ);
    } else {
      Spend(kFramWriteCycles,
            kFramWriteEnergyJ + static_cast<double>(kFramWriteCycles) * kCpuEnergyPerCycleJ);
    }
    // The write (and its dirty stamp) lands only if Spend didn't fail the device, and
    // the stamp lands after the bytes so a mid-Spend capture can't mark it synced.
    p[0] = static_cast<uint8_t>(value & 0xFF);
    p[1] = static_cast<uint8_t>(value >> 8);
    if (kind == MemKind::kFram) {
      mem_.MarkFramWordDirty(addr);
    }
  }
  uint32_t LoadWord32(uint32_t addr);
  void StoreWord32(uint32_t addr, uint32_t value);

  // Charged bulk copy performed by the CPU (word loop). DMA copies go through dma().
  void CpuCopy(uint32_t dst, uint32_t src, uint32_t nbytes);

  // --- Phase attribution ----------------------------------------------------------------
  Phase phase() const { return phase_; }
  void set_phase(Phase phase) { phase_ = phase; }

  // RAII phase switch: runtimes wrap their bookkeeping in PhaseScope(dev, kOverhead).
  class PhaseScope {
   public:
    PhaseScope(Device& dev, Phase phase) : dev_(dev), saved_(dev.phase_) {
      dev_.phase_ = phase;
    }
    ~PhaseScope() { dev_.phase_ = saved_; }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    Device& dev_;
    Phase saved_;
  };

  // --- Power failure handling -------------------------------------------------------------
  // Reboots after a PowerFailure: folds the in-flight attempt into wasted work, spends
  // the off-time (timer mode: scheduler-provided; capacitor mode: harvester recharge to
  // v_on), clears SRAM, notifies reboot listeners, re-arms the scheduler.
  void Reboot();

  // Marks the current attempt committed (called by the engine at task commit).
  void FoldAttemptCommitted() { stats_.FoldCommitted(); }

  // Registers a callback run on every reboot (runtimes clear volatile state here).
  void AddRebootListener(std::function<void()> fn) { reboot_listeners_.push_back(std::move(fn)); }

  // --- Capture plan (src/chk trunk execution) ----------------------------------------
  // Arms a sorted list of distinct on-clock instants at which `hook(i)` runs, exactly
  // once per instant, from inside Spend. Spend clamps its charging steps so the clock
  // lands exactly on each instant, and the hook runs immediately *before* the failure
  // check at that point — so the state the hook observes is bit-identical to what a
  // scripted failure at the same instant would leave for SnapshotAtReboot, whether or
  // not a failure actually fires there. The hook must only observe (snapshot, read the
  // trace); it must not advance the clock, spend energy, or throw. Cleared by Reset.
  void SetCapturePlan(std::vector<uint64_t> capture_at, std::function<void(size_t)> hook) {
    capture_at_ = std::move(capture_at);
    capture_hook_ = std::move(hook);
    capture_next_ = 0;
    RecomputeFastSpendBound();
  }
  void ClearCapturePlan() {
    capture_at_.clear();
    capture_hook_ = nullptr;
    capture_next_ = 0;
    RecomputeFastSpendBound();
  }

  // --- Execution probe (src/chk + src/obs instrumentation) ---------------------------
  // Subscribes `sink` to the batched probe stream (see ProbeBatch in probe.h). Any
  // number of sinks may coexist (the explorer's recorder, the timeline tracer, and
  // the profiler can observe the same run concurrently); each receives every event,
  // in emission order, at flush boundaries. The sink is not owned and must outlive
  // its registration. Observation is free: no cycles, no energy — an instrumented run
  // is indistinguishable from an uninstrumented one. Cleared by Reset.
  void AddSink(ProbeSink* sink) { sinks_.push_back(sink); }

  // Per-event callback compatibility shim: wraps `fn` in a device-owned adapter sink
  // that unpacks each batch back into ProbeEvent calls. Consumers that keep up with
  // the stream should implement ProbeSink instead and skip the per-event dispatch.
  void AddProbe(ProbeFn fn);

  // Legacy single-subscriber entry point. Installing a non-empty `fn` over existing
  // subscribers silently dropped them in earlier revisions — now it aborts; call
  // set_probe(nullptr) first (or use AddSink/AddProbe, which compose). An empty `fn`
  // clears every registration, matching the historical "remove the probe" idiom.
  void set_probe(ProbeFn fn) {
    if (fn) {
      EASEIO_CHECK(sinks_.empty(),
                   "set_probe would drop existing probe subscribers; use AddProbe/AddSink");
      AddProbe(std::move(fn));
    } else {
      FlushProbes();
      sinks_.clear();
      owned_sinks_.clear();
    }
  }

  bool has_probe() const { return !sinks_.empty(); }

  // Appends one probe event, stamped with the current on-time, to the emission ring.
  // No-op without subscribers. Delivery to sinks happens at the next flush boundary.
  void Note(ProbeKind kind, uint32_t id, uint32_t lane = 0, uint64_t a = 0, uint64_t b = 0) {
    if (sinks_.empty()) {
      return;
    }
    if (ring_count_ == kProbeRingCap) {
      FlushProbes();
    }
    const size_t i = ring_count_++;
    ring_kind_[i] = kind;
    ring_id_[i] = id;
    ring_lane_[i] = lane;
    ring_a_[i] = a;
    ring_b_[i] = b;
    ring_on_us_[i] = clock_.on_us();
  }

  // Delivers every buffered event to every sink, in order. Called automatically when
  // the ring fills, before each capture-plan hook, on Reset, and by the engine at the
  // end of a drive; callers reading a sink outside those points (e.g. after emitting
  // events by hand) must flush first. Sinks must not emit or flush re-entrantly.
  void FlushProbes() {
    if (ring_count_ == 0) {
      return;
    }
    ProbeBatch batch;
    batch.count = ring_count_;
    batch.kinds = ring_kind_;
    batch.ids = ring_id_;
    batch.lanes = ring_lane_;
    batch.a = ring_a_;
    batch.b = ring_b_;
    batch.on_us = ring_on_us_;
    ring_count_ = 0;
    for (ProbeSink* sink : sinks_) {
      sink->OnProbeBatch(batch);
    }
  }

  // --- Components --------------------------------------------------------------------------
  Memory& mem() { return mem_; }
  const Memory& mem() const { return mem_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  const PersistentTimekeeper& timekeeper() const { return timekeeper_; }
  Capacitor& capacitor() { return cap_; }
  RunStats& stats() { return stats_; }
  const RunStats& stats() const { return stats_; }
  EnergyMeter& meter() { return meter_; }

  AnalogSensor& temp() { return temp_; }
  AnalogSensor& humidity() { return humidity_; }
  AnalogSensor& pressure() { return pressure_; }
  Radio& radio() { return radio_; }
  Camera& camera() { return camera_; }
  DmaEngine& dma() { return dma_; }
  LeaAccelerator& lea() { return lea_; }

  const DeviceConfig& config() const { return config_; }

 private:
  DeviceConfig config_;
  FailureScheduler* scheduler_;  // never null; rebound by Reset
  const Harvester* harvester_;

  Memory mem_;
  SimClock clock_;
  PersistentTimekeeper timekeeper_;
  Capacitor cap_;
  EnergyMeter meter_;
  RunStats stats_;
  Phase phase_ = Phase::kApp;

  Xorshift64Star failure_rng_;

  AnalogSensor temp_;
  AnalogSensor humidity_;
  AnalogSensor pressure_;
  Radio radio_;
  Camera camera_;
  DmaEngine dma_;
  LeaAccelerator lea_;

  std::vector<std::function<void()>> reboot_listeners_;

  // Probe emission ring (SoA, fixed capacity) and its subscribers. `owned_sinks_`
  // holds the AddProbe adapter objects; `sinks_` is the dispatch list and may also
  // contain caller-owned sinks registered via AddSink.
  static constexpr size_t kProbeRingCap = 256;
  ProbeKind ring_kind_[kProbeRingCap];
  uint32_t ring_id_[kProbeRingCap];
  uint32_t ring_lane_[kProbeRingCap];
  uint64_t ring_a_[kProbeRingCap];
  uint64_t ring_b_[kProbeRingCap];
  uint64_t ring_on_us_[kProbeRingCap];
  size_t ring_count_ = 0;
  std::vector<ProbeSink*> sinks_;
  std::vector<std::unique_ptr<ProbeSink>> owned_sinks_;

  // Cached next-failure instant for deadline-driven schedulers (see
  // FailureScheduler::DeadlineDriven): while clock_.on_us() stays strictly below it,
  // FailNow is provably false and Spend takes the consultation-free fast path. 0 means
  // "no cached deadline, consult the scheduler every step" — the conservative state
  // Reset and ResumeFromSnapshot fall back to (the deferred Reboot re-derives it).
  uint64_t deadline_on_us_ = 0;

  // Stepping spend loop: capture-plan clamping, capacitor draw/harvest, per-step
  // failure checks. Everything Spend's inline fast path proves it can skip.
  void SpendSlow(uint64_t cycles, double energy_j);

  // Recomputes deadline_on_us_ from the scheduler. Called wherever the scheduler is
  // (re-)armed: Begin and the end of Reboot.
  void RearmFailureDeadline() {
    if (!scheduler_->DeadlineDriven()) {
      deadline_on_us_ = 0;
      RecomputeFastSpendBound();
      return;
    }
    const uint64_t budget = scheduler_->OnTimeBudgetUs(clock_);
    deadline_on_us_ =
        budget > UINT64_MAX - clock_.on_us() ? UINT64_MAX : clock_.on_us() + budget;
    RecomputeFastSpendBound();
  }

  // The single bound Spend's fast-path gate tests: the earliest instant at which
  // anything at all (scripted failure or capture hook) can interrupt a spend, or 0
  // when the fast path is off entirely (no cached deadline, capacitor model on, or
  // voltage sampling armed). Folding the whole eligibility decision into one cached
  // value matters because the gate runs once per simulated word access. Recomputed
  // wherever any input changes: RearmFailureDeadline, the capture plan setters,
  // CaptureCheck advancing past an instant, Reset, and ResumeFromSnapshot.
  uint64_t fast_spend_before_us_ = 0;

  void RecomputeFastSpendBound() {
    uint64_t bound = deadline_on_us_;
    if (bound == 0 || config_.use_capacitor || config_.cap_sample_period_us != 0) {
      fast_spend_before_us_ = 0;
      return;
    }
    if (capture_hook_ && capture_next_ < capture_at_.size() &&
        capture_at_[capture_next_] < bound) {
      bound = capture_at_[capture_next_];
    }
    fast_spend_before_us_ = bound;
  }

  // On-time threshold for the next kCapSample emission (cap_sample_period_us > 0).
  uint64_t next_cap_sample_us_ = 0;

  // Emits due kCapSample events; called from the same Spend sites as CaptureCheck so
  // samples land between charging steps, never mid-step.
  void CapSampleCheck() {
    if (config_.cap_sample_period_us == 0 || sinks_.empty()) {
      return;
    }
    if (clock_.on_us() >= next_cap_sample_us_) {
      Note(ProbeKind::kCapSample, 0, 0, static_cast<uint64_t>(cap_.voltage() * 1e6),
           static_cast<uint64_t>(cap_.StoredJ() * 1e9));
      // Next threshold on the period grid strictly after now: a charging step that
      // crosses several periods yields one sample, not a burst at the same instant.
      next_cap_sample_us_ =
          (clock_.on_us() / config_.cap_sample_period_us + 1) * config_.cap_sample_period_us;
    }
  }

  // Runs every due capture hook. Called at each failure-check site in Spend, before
  // the check itself (see SetCapturePlan). The ring is flushed first so a hook that
  // reads a sink (the trunk's trace fold) sees every event up to the capture instant.
  void CaptureCheck() {
    bool advanced = false;
    while (capture_hook_ && capture_next_ < capture_at_.size() &&
           clock_.on_us() >= capture_at_[capture_next_]) {
      FlushProbes();
      capture_hook_(capture_next_);
      ++capture_next_;
      advanced = true;
    }
    if (advanced) {
      RecomputeFastSpendBound();
    }
  }

  std::vector<uint64_t> capture_at_;
  size_t capture_next_ = 0;
  std::function<void(size_t)> capture_hook_;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_DEVICE_H_
