// Simulated memory: volatile SRAM plus non-volatile FRAM in one flat address space.
//
// The MSP430FR5994 maps SRAM at 0x1C00 and FRAM at 0x4000/0x10000; we keep the same
// flavour with configurable sizes. Everything the paper's bugs hinge on lives here:
//   * SRAM contents are destroyed by a power failure (Memory::OnReboot clears them);
//   * FRAM contents persist, which is what makes completed-but-re-executed DMA
//     transfers able to corrupt program state;
//   * the EaseIO runtime classifies DMA transfers by querying Classify() on the source
//     and destination addresses, exactly as Section 4.3 describes.
//
// Access to simulated memory is *uncharged* at this layer; the Device wraps it with
// cycle/energy charging. DMA and test checkers use the raw accessors directly.

#ifndef EASEIO_SIM_MEMORY_H_
#define EASEIO_SIM_MEMORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "platform/check.h"

namespace easeio::sim {

// Which physical memory an address belongs to.
enum class MemKind : uint8_t {
  kSram,  // volatile: lost on power failure
  kFram,  // non-volatile: survives power failure
};

// What an allocation is for — used by the Table 6 footprint accounting to separate
// application data from runtime metadata (flags, private copies, privatization
// buffers).
enum class AllocPurpose : uint8_t {
  kAppData,      // application buffers and variables
  kRuntimeMeta,  // per-site flags, timestamps, private return copies, region tables
  kPrivBuffer,   // DMA privatization buffers
};

// A named region handed out by the bump allocators. Addresses are stable for the
// lifetime of the Memory object (layouts are fixed at app setup, as on a real MCU).
struct Allocation {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0;
  MemKind kind = MemKind::kSram;
  AllocPurpose purpose = AllocPurpose::kAppData;
};

// Everything non-volatile about a Memory at one instant: the used FRAM prefix, both
// allocation cursors, the reboot epoch, and the allocation table. SRAM is deliberately
// absent — snapshots are taken at a power failure, where SRAM is dead by definition.
//
// The trailing two fields are dirty-page sync metadata maintained exclusively by
// Memory::SnapshotInto: they let a snapshot buffer that is re-filled from the same
// Memory skip pages that have not changed since the previous fill, and let Restore
// skip writing back pages the Memory never touched since the fill. A hand-built
// snapshot (mem_uid == 0, page_synced empty) always takes the full-copy path and is
// restored in full. Mutating `fram` by hand invalidates the metadata; clear it
// (mem_uid = 0) first.
struct MemorySnapshot {
  std::vector<uint8_t> fram;  // first `fram_used` bytes of the FRAM arena
  uint32_t sram_used = 0;
  uint32_t fram_used = 0;
  uint64_t reboot_epoch = 0;
  std::vector<Allocation> allocations;
  uint64_t mem_uid = 0;                // identity of the Memory the stamps refer to
  std::vector<uint64_t> page_synced;   // per page: epoch at which buffer == memory
  uint64_t alloc_epoch = 0;            // identity of `allocations` (0 = unknown)
};

// Byte-addressable simulated memory.
class Memory {
 public:
  static constexpr uint32_t kSramBase = 0x1C00;
  static constexpr uint32_t kFramBase = 0x10000;

  // Dirty-tracking granularity for FRAM snapshots. 256 B balances stamp-array scan
  // cost (1 KiB of stamps per 256 KiB arena) against copy amplification for small
  // writes (an 8-byte NV store dirties one page, not a 4 KiB block).
  static constexpr uint32_t kSnapshotPageSize = 256;

  Memory(uint32_t sram_bytes = 8 * 1024, uint32_t fram_bytes = 256 * 1024);

  // The per-page epoch stamps make a bitwise copy aliased and unsound (two objects
  // sharing one mem_uid would cross-validate each other's snapshots).
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  // --- Address classification ---------------------------------------------------------
  // Classification and the word accessors below are defined inline: they sit under
  // every charged load/store the kernel issues (millions per chk exploration), and the
  // cross-TU call overhead used to rival the work itself.
  MemKind Classify(uint32_t addr) const {
    if (InSram(addr)) {
      return MemKind::kSram;
    }
    EASEIO_CHECK(InFram(addr), "address outside simulated memory");
    return MemKind::kFram;
  }
  bool InSram(uint32_t addr) const {
    return addr >= kSramBase && addr < kSramBase + sram_.size();
  }
  bool InFram(uint32_t addr) const {
    return addr >= kFramBase && addr < kFramBase + fram_.size();
  }
  // True when [addr, addr+size) lies entirely inside one memory.
  bool RangeValid(uint32_t addr, uint32_t size) const {
    if (size == 0) {
      return false;
    }
    const uint32_t end = addr + size;  // allocation sizes keep this far from wrapping
    if (InSram(addr)) {
      return end <= kSramBase + sram_.size();
    }
    if (InFram(addr)) {
      return end <= kFramBase + fram_.size();
    }
    return false;
  }

  // --- Raw (uncharged) access ----------------------------------------------------------
  uint8_t Read8(uint32_t addr) const { return *Resolve(addr, 1); }
  void Write8(uint32_t addr, uint8_t value) {
    *Resolve(addr, 1) = value;
    MarkFramDirty(addr, 1);
  }
  uint16_t Read16(uint32_t addr) const {
    const uint8_t* p = Resolve(addr, 2);
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
  }
  void Write16(uint32_t addr, uint16_t value) {
    uint8_t* p = Resolve(addr, 2);
    p[0] = static_cast<uint8_t>(value & 0xFF);
    p[1] = static_cast<uint8_t>(value >> 8);
    MarkFramDirty(addr, 2);
  }
  uint32_t Read32(uint32_t addr) const;
  void Write32(uint32_t addr, uint32_t value);
  int16_t ReadI16(uint32_t addr) const { return static_cast<int16_t>(Read16(addr)); }
  void WriteI16(uint32_t addr, int16_t value) { Write16(addr, static_cast<uint16_t>(value)); }

  // --- Fused classify+resolve word path (Device hot path) -----------------------------
  // One bounds walk instead of Classify followed by Resolve: the charged word
  // accessors sit under millions of kernel loads/stores per chk exploration, and the
  // duplicated arena-range checks were a measurable share of each access. The pointer
  // stays valid across Spend (the arenas never reallocate); a store through it must be
  // followed by MarkFramWordDirty *after* the bytes land, so a capture hook firing
  // between resolve and write cannot record the page as synced ahead of the mutation.
  uint8_t* ResolveWordMut(uint32_t addr, MemKind* kind_out) {
    if (addr >= kSramBase && addr + 2 <= kSramBase + sram_.size()) {
      *kind_out = MemKind::kSram;
      return sram_.data() + (addr - kSramBase);
    }
    EASEIO_CHECK(addr >= kFramBase && addr + 2 <= kFramBase + fram_.size(),
                 "simulated memory access out of range");
    *kind_out = MemKind::kFram;
    return fram_.data() + (addr - kFramBase);
  }
  const uint8_t* ResolveWord(uint32_t addr, MemKind* kind_out) const {
    return const_cast<Memory*>(this)->ResolveWordMut(addr, kind_out);
  }
  // Stamps the page(s) under a 2-byte FRAM word already validated by ResolveWordMut.
  void MarkFramWordDirty(uint32_t addr) {
    const uint32_t off = addr - kFramBase;
    page_stamp_[off / kSnapshotPageSize] = snap_epoch_;
    page_stamp_[(off + 1) / kSnapshotPageSize] = snap_epoch_;
  }

  // Bulk copy between simulated addresses (used by the DMA engine). Ranges must not
  // overlap partially; full overlap (src == dst) is a no-op.
  void Copy(uint32_t dst, uint32_t src, uint32_t size);

  // Fills a range with a byte value.
  void Fill(uint32_t addr, uint32_t size, uint8_t value);

  // Bulk read of [addr, addr+size) into `dst` — one range check plus a memcpy. The
  // explorer judges every trial by reading outputs and WAR slots; per-byte Read8
  // loops there are hot enough to dominate trial cost.
  void ReadBlock(uint32_t addr, uint32_t size, uint8_t* dst) const;

  // Zero-copy view of [addr, addr+size) — one range check, no staging buffer. Valid
  // until the next write, reboot, or Reset. The invariant checker compares final
  // memory regions (torn-DMA mirrors, WAR slots) against references per trial; the
  // staging copies were a measurable share of per-trial cost.
  const uint8_t* PeekBlock(uint32_t addr, uint32_t size) const { return Resolve(addr, size); }

  // Mutable zero-copy view of an SRAM range; aborts on FRAM addresses — a raw FRAM
  // view would bypass the dirty-page stamps SnapshotInto/Restore depend on. The LEA
  // kernels' inner loops stream through this after Begin() validates the operands.
  uint8_t* MutableSramBlock(uint32_t addr, uint32_t size) {
    EASEIO_CHECK(InSram(addr), "MutableSramBlock outside SRAM");
    return Resolve(addr, size);
  }

  // --- Allocation -----------------------------------------------------------------------
  // Bump-allocates `size` bytes (2-byte aligned) and records the allocation for the
  // footprint report. Aborts when the arena is exhausted — sizing mistakes are
  // programming errors in this simulator.
  uint32_t AllocSram(std::string name, uint32_t size,
                     AllocPurpose purpose = AllocPurpose::kAppData);
  uint32_t AllocFram(std::string name, uint32_t size,
                     AllocPurpose purpose = AllocPurpose::kAppData);

  const std::vector<Allocation>& allocations() const { return allocations_; }

  // Total bytes allocated in `kind` for `purpose`.
  uint32_t AllocatedBytes(MemKind kind, AllocPurpose purpose) const;
  // Total bytes allocated in `kind` across all purposes.
  uint32_t AllocatedBytes(MemKind kind) const;

  uint32_t sram_size() const { return static_cast<uint32_t>(sram_.size()); }
  uint32_t fram_size() const { return static_cast<uint32_t>(fram_.size()); }
  uint32_t sram_free() const { return sram_size() - sram_used_; }
  uint32_t fram_free() const { return fram_size() - fram_used_; }

  // --- Power failure --------------------------------------------------------------------
  // Destroys volatile contents. FRAM and the allocation layout persist. Only the
  // allocated SRAM prefix is cleared: bytes past the bump cursor are never handed out,
  // so no simulated code can observe them and they stay zero from construction.
  void OnReboot();

  // Number of reboots observed; useful to tests asserting volatility.
  uint64_t reboot_epoch() const { return reboot_epoch_; }

  // --- Snapshot / restore / reset (the chk snapshot engine) -----------------------------
  // Captures the persistent state (see MemorySnapshot). SRAM is never captured. The
  // returned snapshot carries no dirty-page metadata (full-copy semantics both ways);
  // the pooled hot path uses SnapshotInto instead.
  MemorySnapshot Snapshot() const;

  // Fills `snap` in place, reusing its buffers. When `snap` was last filled from this
  // same Memory, only pages dirtied since that fill are re-copied (per-page epoch
  // stamps); otherwise — foreign or hand-built snapshot, or a changed fram_used
  // boundary — the stale range is copied in full. Pages actually copied accumulate
  // into pages_copied(). const in the simulated-state sense: only host-side
  // bookkeeping (the snapshot epoch and counters) mutates.
  void SnapshotInto(MemorySnapshot& snap) const;

  // Restores a snapshot taken on this memory or on an identically sized one. FRAM
  // bytes and both cursors roll back exactly; FRAM allocated after the snapshot reads
  // as zero again and its addresses are re-handed out by the cursor. The allocated
  // SRAM prefix is cleared (the snapshot was taken at a power failure). The allocation
  // table is restored unconditionally — a same-sized table may still differ in
  // addresses, kinds, or sizes. Snapshots filled by SnapshotInto from this Memory
  // skip writing back pages that never changed since the fill; every page written is
  // freshly stamped so other outstanding snapshots of this Memory stay valid.
  void Restore(const MemorySnapshot& snapshot);

  // Host-side diagnostics for the chk timing block: FRAM pages copied by SnapshotInto
  // plus pages written back by Restore, and pages skipped as provably clean.
  uint64_t pages_copied() const { return pages_copied_; }
  uint64_t pages_skipped() const { return pages_skipped_; }

  // --- Dirty-page scan support (the chk state-dedup hasher) -----------------------------
  // Read-only views plus the epoch handshake an external per-page cache needs to reuse
  // the dirty stamps exactly as SnapshotInto does: a cached page is valid iff its
  // recorded sync epoch is non-zero and >= page_stamp()[p]; a refreshed page records
  // snap_epoch() as its sync; the scan ends with EndPageScan() so any later write
  // stamps strictly newer than the syncs just recorded. Views are invalidated by
  // nothing short of destruction (the arenas never reallocate).
  const uint8_t* fram_data() const { return fram_.data(); }
  uint32_t fram_used() const { return fram_used_; }
  uint32_t sram_used() const { return sram_used_; }
  uint64_t mem_uid() const { return mem_uid_; }
  const std::vector<uint64_t>& page_stamps() const { return page_stamp_; }
  uint64_t snap_epoch() const { return snap_epoch_; }
  void EndPageScan() const { ++snap_epoch_; }

  // Returns the memory to its freshly constructed state without reallocating the
  // arenas: re-zeros only the *used* prefix of each arena and resets the cursors, the
  // epoch, and the allocation table. This is what makes per-worker stack reuse cheap —
  // a fresh construction would allocate and zero-fill the full 264 KiB again.
  void Reset();

 private:
  uint8_t* Resolve(uint32_t addr, uint32_t size) {
    EASEIO_CHECK(RangeValid(addr, size), "simulated memory access out of range");
    if (InSram(addr)) {
      return sram_.data() + (addr - kSramBase);
    }
    return fram_.data() + (addr - kFramBase);
  }
  const uint8_t* Resolve(uint32_t addr, uint32_t size) const {
    return const_cast<Memory*>(this)->Resolve(addr, size);
  }

  // Stamps every FRAM page overlapping [addr, addr+size) with the current snapshot
  // epoch. Called by every FRAM mutator; SRAM ranges are ignored. `size` must be > 0.
  void MarkFramDirty(uint32_t addr, uint32_t size) {
    if (!InFram(addr)) {
      return;
    }
    const uint32_t off = addr - kFramBase;
    const uint32_t last = (off + size - 1) / kSnapshotPageSize;
    for (uint32_t p = off / kSnapshotPageSize; p <= last; ++p) {
      page_stamp_[p] = snap_epoch_;
    }
  }
  // Same, for an offset range within the FRAM arena (restore/reset internals).
  void MarkFramRangeDirty(uint32_t off, uint32_t size) {
    if (size == 0) {
      return;
    }
    const uint32_t last = (off + size - 1) / kSnapshotPageSize;
    for (uint32_t p = off / kSnapshotPageSize; p <= last; ++p) {
      page_stamp_[p] = snap_epoch_;
    }
  }

  std::vector<uint8_t> sram_;
  std::vector<uint8_t> fram_;
  uint32_t sram_used_ = 0;
  uint32_t fram_used_ = 0;
  uint64_t reboot_epoch_ = 0;
  std::vector<Allocation> allocations_;

  // Dirty-page tracking. page_stamp_[p] is the snapshot epoch at which FRAM page p
  // was last written; snap_epoch_ is monotone over the Memory's lifetime (bumped by
  // SnapshotInto/Restore/Reset, never rewound — a rewind would let stale page stamps
  // alias fresh sync stamps). mem_uid_ is process-unique so a pooled snapshot buffer
  // can tell "same Memory, stamps comparable" from "foreign Memory, full copy".
  std::vector<uint64_t> page_stamp_;
  mutable uint64_t snap_epoch_ = 1;  // mutable: SnapshotInto is const but must advance it
  uint64_t mem_uid_ = 0;

  // Identity stamp for the allocation table: within one Memory, equal stamps mean
  // byte-equal tables. Every mutation of allocations_ installs a fresh value from
  // next_alloc_epoch_ (never reused), so Restore can skip the table deep copy — a
  // vector of std::string-bearing entries, re-copied once per trial otherwise — when
  // the snapshot provably captured the table the Memory still holds.
  uint64_t alloc_epoch_ = 1;
  uint64_t next_alloc_epoch_ = 2;
  mutable uint64_t pages_copied_ = 0;
  mutable uint64_t pages_skipped_ = 0;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_MEMORY_H_
