// Simulated memory: volatile SRAM plus non-volatile FRAM in one flat address space.
//
// The MSP430FR5994 maps SRAM at 0x1C00 and FRAM at 0x4000/0x10000; we keep the same
// flavour with configurable sizes. Everything the paper's bugs hinge on lives here:
//   * SRAM contents are destroyed by a power failure (Memory::OnReboot clears them);
//   * FRAM contents persist, which is what makes completed-but-re-executed DMA
//     transfers able to corrupt program state;
//   * the EaseIO runtime classifies DMA transfers by querying Classify() on the source
//     and destination addresses, exactly as Section 4.3 describes.
//
// Access to simulated memory is *uncharged* at this layer; the Device wraps it with
// cycle/energy charging. DMA and test checkers use the raw accessors directly.

#ifndef EASEIO_SIM_MEMORY_H_
#define EASEIO_SIM_MEMORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "platform/check.h"

namespace easeio::sim {

// Which physical memory an address belongs to.
enum class MemKind : uint8_t {
  kSram,  // volatile: lost on power failure
  kFram,  // non-volatile: survives power failure
};

// What an allocation is for — used by the Table 6 footprint accounting to separate
// application data from runtime metadata (flags, private copies, privatization
// buffers).
enum class AllocPurpose : uint8_t {
  kAppData,      // application buffers and variables
  kRuntimeMeta,  // per-site flags, timestamps, private return copies, region tables
  kPrivBuffer,   // DMA privatization buffers
};

// A named region handed out by the bump allocators. Addresses are stable for the
// lifetime of the Memory object (layouts are fixed at app setup, as on a real MCU).
struct Allocation {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0;
  MemKind kind = MemKind::kSram;
  AllocPurpose purpose = AllocPurpose::kAppData;
};

// Everything non-volatile about a Memory at one instant: the used FRAM prefix, both
// allocation cursors, the reboot epoch, and the allocation table. SRAM is deliberately
// absent — snapshots are taken at a power failure, where SRAM is dead by definition.
struct MemorySnapshot {
  std::vector<uint8_t> fram;  // first `fram_used` bytes of the FRAM arena
  uint32_t sram_used = 0;
  uint32_t fram_used = 0;
  uint64_t reboot_epoch = 0;
  std::vector<Allocation> allocations;
};

// Byte-addressable simulated memory.
class Memory {
 public:
  static constexpr uint32_t kSramBase = 0x1C00;
  static constexpr uint32_t kFramBase = 0x10000;

  Memory(uint32_t sram_bytes = 8 * 1024, uint32_t fram_bytes = 256 * 1024);

  // --- Address classification ---------------------------------------------------------
  MemKind Classify(uint32_t addr) const;
  bool InSram(uint32_t addr) const {
    return addr >= kSramBase && addr < kSramBase + sram_.size();
  }
  bool InFram(uint32_t addr) const {
    return addr >= kFramBase && addr < kFramBase + fram_.size();
  }
  // True when [addr, addr+size) lies entirely inside one memory.
  bool RangeValid(uint32_t addr, uint32_t size) const;

  // --- Raw (uncharged) access ----------------------------------------------------------
  uint8_t Read8(uint32_t addr) const;
  void Write8(uint32_t addr, uint8_t value);
  uint16_t Read16(uint32_t addr) const;
  void Write16(uint32_t addr, uint16_t value);
  uint32_t Read32(uint32_t addr) const;
  void Write32(uint32_t addr, uint32_t value);
  int16_t ReadI16(uint32_t addr) const { return static_cast<int16_t>(Read16(addr)); }
  void WriteI16(uint32_t addr, int16_t value) { Write16(addr, static_cast<uint16_t>(value)); }

  // Bulk copy between simulated addresses (used by the DMA engine). Ranges must not
  // overlap partially; full overlap (src == dst) is a no-op.
  void Copy(uint32_t dst, uint32_t src, uint32_t size);

  // Fills a range with a byte value.
  void Fill(uint32_t addr, uint32_t size, uint8_t value);

  // Bulk read of [addr, addr+size) into `dst` — one range check plus a memcpy. The
  // explorer judges every trial by reading outputs and WAR slots; per-byte Read8
  // loops there are hot enough to dominate trial cost.
  void ReadBlock(uint32_t addr, uint32_t size, uint8_t* dst) const;

  // Zero-copy view of [addr, addr+size) — one range check, no staging buffer. Valid
  // until the next write, reboot, or Reset. The invariant checker compares final
  // memory regions (torn-DMA mirrors, WAR slots) against references per trial; the
  // staging copies were a measurable share of per-trial cost.
  const uint8_t* PeekBlock(uint32_t addr, uint32_t size) const { return Resolve(addr, size); }

  // --- Allocation -----------------------------------------------------------------------
  // Bump-allocates `size` bytes (2-byte aligned) and records the allocation for the
  // footprint report. Aborts when the arena is exhausted — sizing mistakes are
  // programming errors in this simulator.
  uint32_t AllocSram(std::string name, uint32_t size,
                     AllocPurpose purpose = AllocPurpose::kAppData);
  uint32_t AllocFram(std::string name, uint32_t size,
                     AllocPurpose purpose = AllocPurpose::kAppData);

  const std::vector<Allocation>& allocations() const { return allocations_; }

  // Total bytes allocated in `kind` for `purpose`.
  uint32_t AllocatedBytes(MemKind kind, AllocPurpose purpose) const;
  // Total bytes allocated in `kind` across all purposes.
  uint32_t AllocatedBytes(MemKind kind) const;

  uint32_t sram_size() const { return static_cast<uint32_t>(sram_.size()); }
  uint32_t fram_size() const { return static_cast<uint32_t>(fram_.size()); }
  uint32_t sram_free() const { return sram_size() - sram_used_; }
  uint32_t fram_free() const { return fram_size() - fram_used_; }

  // --- Power failure --------------------------------------------------------------------
  // Destroys volatile contents. FRAM and the allocation layout persist. Only the
  // allocated SRAM prefix is cleared: bytes past the bump cursor are never handed out,
  // so no simulated code can observe them and they stay zero from construction.
  void OnReboot();

  // Number of reboots observed; useful to tests asserting volatility.
  uint64_t reboot_epoch() const { return reboot_epoch_; }

  // --- Snapshot / restore / reset (the chk snapshot engine) -----------------------------
  // Captures the persistent state (see MemorySnapshot). SRAM is never captured.
  MemorySnapshot Snapshot() const;

  // Restores a snapshot taken on this memory or on an identically sized one. FRAM
  // bytes and both cursors roll back exactly; FRAM allocated after the snapshot reads
  // as zero again and its addresses are re-handed out by the cursor. The allocated
  // SRAM prefix is cleared (the snapshot was taken at a power failure). The allocation
  // table copy is skipped when the entry count already matches — on the hot resume
  // path the rebuilt stack registered the identical layout.
  void Restore(const MemorySnapshot& snapshot);

  // Returns the memory to its freshly constructed state without reallocating the
  // arenas: re-zeros only the *used* prefix of each arena and resets the cursors, the
  // epoch, and the allocation table. This is what makes per-worker stack reuse cheap —
  // a fresh construction would allocate and zero-fill the full 264 KiB again.
  void Reset();

 private:
  uint8_t* Resolve(uint32_t addr, uint32_t size);
  const uint8_t* Resolve(uint32_t addr, uint32_t size) const;

  std::vector<uint8_t> sram_;
  std::vector<uint8_t> fram_;
  uint32_t sram_used_ = 0;
  uint32_t fram_used_ = 0;
  uint64_t reboot_epoch_ = 0;
  std::vector<Allocation> allocations_;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_MEMORY_H_
