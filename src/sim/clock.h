// Simulated time for the intermittent device.
//
// Two time bases matter for intermittent computing:
//   * on-time  — cycles executed while powered; MCU timers (including the emulated
//                power-failure timer in the paper's Section 5.1) run on this base.
//   * wall time — on-time plus off-time spent recharging; the persistent timekeeper
//                (de Winkel et al. [18], cited by the paper for Timely semantics) runs
//                on this base and survives power failures.

#ifndef EASEIO_SIM_CLOCK_H_
#define EASEIO_SIM_CLOCK_H_

#include <cstdint>

namespace easeio::sim {

// Monotonic simulated clock. 1 MHz core: one cycle is one microsecond.
class SimClock {
 public:
  // Advances on-time (device powered and executing).
  void AdvanceOn(uint64_t us) { on_us_ += us; }

  // Advances off-time (device dark, capacitor recharging).
  void AdvanceOff(uint64_t us) { off_us_ += us; }

  // Microseconds of powered execution since the run began.
  uint64_t on_us() const { return on_us_; }

  // Microseconds spent powered off (recharging) since the run began.
  uint64_t off_us() const { return off_us_; }

  // Wall-clock microseconds since the run began (on + off).
  uint64_t wall_us() const { return on_us_ + off_us_; }

  // Rewinds to t=0 (Device::Reset stack reuse).
  void Reset() {
    on_us_ = 0;
    off_us_ = 0;
  }

 private:
  uint64_t on_us_ = 0;
  uint64_t off_us_ = 0;
};

// Models the external persistent timekeeping circuit the paper relies on for Timely
// re-execution semantics. It reads wall time with a configurable tick quantisation
// (real remanence-based timekeepers resolve on the order of milliseconds; the default
// here is fine-grained enough not to distort the [5, 20] ms failure emulation).
class PersistentTimekeeper {
 public:
  explicit PersistentTimekeeper(const SimClock& clock, uint64_t tick_us = 100)
      : clock_(clock), tick_us_(tick_us == 0 ? 1 : tick_us) {}

  // Current wall time, quantised to the timekeeper tick. Monotonic across reboots.
  uint64_t NowUs() const { return (clock_.wall_us() / tick_us_) * tick_us_; }

  uint64_t tick_us() const { return tick_us_; }

  // Re-applies a (possibly different) tick quantisation. The timekeeper is otherwise
  // stateless — it reads the clock it was bound to at construction — so this is all
  // Device::Reset needs.
  void Reset(uint64_t tick_us) { tick_us_ = tick_us == 0 ? 1 : tick_us; }

 private:
  const SimClock& clock_;
  uint64_t tick_us_;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_CLOCK_H_
