// Host-side execution probe.
//
// The failure-schedule explorer (src/chk) and the observability layer (src/obs) need
// to see *where* the interesting on-time instants of a run are: task boundaries, I/O
// executions and skips, DMA transfers, commit points, NV stores, reboots, capacitor
// samples. The device buffers these into a flat structure-of-arrays ring and hands
// them to every registered ProbeSink in batches (Device::AddSink), flushed at quantum
// boundaries — ring full, capture instants, reset, and end of an engine drive —
// instead of paying a std::function dispatch per event. Every sink receives every
// event, in emission order. Observation is pure host-side instrumentation: it charges
// no cycles and no energy, so an instrumented run is bit-identical to an
// uninstrumented one (test-enforced in tests/obs_test.cc).

#ifndef EASEIO_SIM_PROBE_H_
#define EASEIO_SIM_PROBE_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace easeio::sim {

enum class ProbeKind : uint8_t {
  kTaskBegin,    // id = task, just before the runtime's task prologue
  kTaskCommit,   // id = task, after the commit became durable
  kIoExec,       // id = I/O site, lane; a = 1 when the execution was redundant
  kIoSkip,       // id = I/O site, lane; a = reading age (us), b = 1 when age-checked
  kIoLocked,     // id = I/O site, lane; the completion flag became durable
  kDmaExec,      // id = DMA site; a = (dst << 32) | src, b = nbytes
  kDmaSkip,      // id = DMA site; a completed transfer was elided
  kDmaLocked,    // id = DMA site; the completion flag became durable
  kDmaResolved,  // id = DMA site; lane = resolved class, a = skip, b = dependence-forced
  kNvWrite,      // id = NV slot; a = offset, b = bytes (after the store landed)
  kReboot,       // id = power-failure ordinal; on_us is the failure instant;
                 // a = off-time spent dark before the next boot (us),
                 // b = capacitor voltage at the failure instant (uV)
  kBlockBegin,   // id = I/O block; a = resolved block mode (core::BlockMode)
  kBlockEnd,     // id = I/O block; a = 1 when the block body actually ran
  kRegionEnter,  // id = task, lane = region; a = 0 first arrival, 1 re-arrival,
                 //                               2 post-DMA partial restore
  kPrivCopy,     // id = task, lane = region; a = 0 snapshot / 1 restore, b = bytes
  kCapSample,    // periodic capacitor sample; a = voltage (uV), b = stored energy (nJ);
                 //  only emitted when DeviceConfig::cap_sample_period_us > 0
};

struct ProbeEvent {
  ProbeKind kind{};
  uint32_t id = 0;
  uint32_t lane = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t on_us = 0;
};

using ProbeFn = std::function<void(const ProbeEvent&)>;

// A batch of probe events in structure-of-arrays form — a non-owning view over the
// device's emission ring, valid only for the duration of one OnProbeBatch call.
// Parallel arrays: entry i of every pointer describes one event (same fields as
// ProbeEvent). Batches never reorder or drop events: concatenating the batches a sink
// receives reproduces the exact per-event stream.
struct ProbeBatch {
  size_t count = 0;
  const ProbeKind* kinds = nullptr;
  const uint32_t* ids = nullptr;
  const uint32_t* lanes = nullptr;
  const uint64_t* a = nullptr;
  const uint64_t* b = nullptr;
  const uint64_t* on_us = nullptr;

  ProbeEvent Event(size_t i) const { return ProbeEvent{kinds[i], ids[i], lanes[i], a[i], b[i], on_us[i]}; }
};

// Batch subscriber. Sinks must not emit probe events or flush the device from inside
// OnProbeBatch (the ring being delivered is the ring they would write into), and must
// outlive their registration (Device::Reset / set_probe(nullptr) drop registrations).
class ProbeSink {
 public:
  virtual ~ProbeSink() = default;
  virtual void OnProbeBatch(const ProbeBatch& batch) = 0;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_PROBE_H_
