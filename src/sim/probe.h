// Host-side execution probe.
//
// The failure-schedule explorer (src/chk) and the observability layer (src/obs) need
// to see *where* the interesting on-time instants of a run are: task boundaries, I/O
// executions and skips, DMA transfers, commit points, NV stores, reboots, capacitor
// samples. The device fans these out to any number of subscribers registered via
// Device::AddProbe, each an independent callback receiving the same events in the
// same order. Observation is pure host-side instrumentation: it charges no cycles
// and no energy, so an instrumented run is bit-identical to an uninstrumented one
// (test-enforced in tests/obs_test.cc).

#ifndef EASEIO_SIM_PROBE_H_
#define EASEIO_SIM_PROBE_H_

#include <cstdint>
#include <functional>

namespace easeio::sim {

enum class ProbeKind : uint8_t {
  kTaskBegin,    // id = task, just before the runtime's task prologue
  kTaskCommit,   // id = task, after the commit became durable
  kIoExec,       // id = I/O site, lane; a = 1 when the execution was redundant
  kIoSkip,       // id = I/O site, lane; a = reading age (us), b = 1 when age-checked
  kIoLocked,     // id = I/O site, lane; the completion flag became durable
  kDmaExec,      // id = DMA site; a = (dst << 32) | src, b = nbytes
  kDmaSkip,      // id = DMA site; a completed transfer was elided
  kDmaLocked,    // id = DMA site; the completion flag became durable
  kDmaResolved,  // id = DMA site; lane = resolved class, a = skip, b = dependence-forced
  kNvWrite,      // id = NV slot; a = offset, b = bytes (after the store landed)
  kReboot,       // id = power-failure ordinal; on_us is the failure instant;
                 // a = off-time spent dark before the next boot (us),
                 // b = capacitor voltage at the failure instant (uV)
  kBlockBegin,   // id = I/O block; a = resolved block mode (core::BlockMode)
  kBlockEnd,     // id = I/O block; a = 1 when the block body actually ran
  kRegionEnter,  // id = task, lane = region; a = 0 first arrival, 1 re-arrival,
                 //                               2 post-DMA partial restore
  kPrivCopy,     // id = task, lane = region; a = 0 snapshot / 1 restore, b = bytes
  kCapSample,    // periodic capacitor sample; a = voltage (uV), b = stored energy (nJ);
                 //  only emitted when DeviceConfig::cap_sample_period_us > 0
};

struct ProbeEvent {
  ProbeKind kind{};
  uint32_t id = 0;
  uint32_t lane = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t on_us = 0;
};

using ProbeFn = std::function<void(const ProbeEvent&)>;

}  // namespace easeio::sim

#endif  // EASEIO_SIM_PROBE_H_
