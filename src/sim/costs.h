// Cost model for the simulated MSP430FR5994-class device.
//
// The paper evaluates on an MSP430FR5994 at 1 MHz, so one CPU cycle equals one
// microsecond of simulated time. The energy constants below are ballpark figures taken
// from the MSP430FR59xx datasheet family (active ~118 uA/MHz at 3.0 V, FRAM writes a
// few times more expensive than reads, LEA amortising to well under a cycle per MAC)
// and from the Powercast P2110 receiver characteristics used for Figure 13. The
// absolute values only need to be mutually consistent: every comparison in the paper
// (EaseIO vs Alpaca vs InK) is relative, and the failure emulation in Phase 1/2 is
// timer-driven, not energy-driven.

#ifndef EASEIO_SIM_COSTS_H_
#define EASEIO_SIM_COSTS_H_

#include <cstdint>

namespace easeio::sim {

// --- CPU ----------------------------------------------------------------------------
// 1 MHz core clock: 1 cycle == 1 us of simulated on-time.
inline constexpr double kCpuEnergyPerCycleJ = 0.35e-9;  // ~118 uA/MHz at 3.0 V.

// --- Memory -------------------------------------------------------------------------
// At 1 MHz FRAM has no wait states, but writes pay the charge-pump cost.
inline constexpr uint64_t kSramAccessCycles = 1;
inline constexpr uint64_t kFramReadCycles = 1;
inline constexpr uint64_t kFramWriteCycles = 2;
inline constexpr double kSramAccessEnergyJ = 0.05e-9;  // per 16-bit word
inline constexpr double kFramReadEnergyJ = 0.15e-9;    // per 16-bit word
inline constexpr double kFramWriteEnergyJ = 0.45e-9;   // per 16-bit word

// --- DMA ----------------------------------------------------------------------------
// Block copies bypass the CPU; the controller still occupies the bus for ~2 cycles per
// 16-bit word plus a fixed channel-setup cost.
inline constexpr uint64_t kDmaSetupCycles = 30;
inline constexpr uint64_t kDmaCyclesPerWord = 2;
inline constexpr double kDmaEnergyPerWordJ = 0.30e-9;
inline constexpr double kDmaSetupEnergyJ = 12e-9;

// --- LEA (Low Energy Accelerator) ----------------------------------------------------
// The LEA performs vector MAC work at a fraction of the CPU's per-MAC cost. Operands
// must live in LEA-accessible SRAM, which is why the FIR/DNN apps stage data with DMA.
// The LEA core is clocked well above the 1 MHz CPU clock used in the evaluation, so a
// MAC costs a small fraction of a CPU cycle of wall time.
inline constexpr uint64_t kLeaSetupCycles = 40;
inline constexpr uint64_t kLeaCyclesPerMacNumerator = 1;  // ~= 1/8 CPU cycle per MAC
inline constexpr uint64_t kLeaCyclesPerMacDenominator = 8;
inline constexpr double kLeaEnergyPerMacJ = 0.10e-9;
inline constexpr double kLeaSetupEnergyJ = 15e-9;

// --- Peripherals ---------------------------------------------------------------------
// Latencies are in CPU cycles (== us). The sensing costs are in the range of small
// digital sensors sampled over a serial bus; the radio models a short-range packet
// radio; the "camera" follows the paper, which simulates capture with a delay loop.
struct PeripheralCost {
  uint64_t latency_cycles;
  double energy_j;
};

inline constexpr PeripheralCost kTempSensorCost{300, 1.8e-6};
inline constexpr PeripheralCost kHumiditySensorCost{260, 1.5e-6};
inline constexpr PeripheralCost kPressureSensorCost{180, 1.0e-6};
inline constexpr PeripheralCost kRadioWakeCost{1500, 10.0e-6};
inline constexpr uint64_t kRadioCyclesPerByte = 20;
inline constexpr double kRadioEnergyPerByteJ = 0.8e-6;
inline constexpr PeripheralCost kCameraCaptureCost{12000, 6.0e-6};

// --- Capacitor / harvester (Figure 13) ------------------------------------------------
inline constexpr double kDefaultCapacitanceF = 1e-3;  // 1 mF, per the paper.
inline constexpr double kDefaultVOn = 3.0;            // turn-on threshold (volts)
inline constexpr double kDefaultVOff = 1.8;           // brown-out threshold (volts)
inline constexpr double kDefaultVMax = 3.6;           // harvester output clamp

}  // namespace easeio::sim

#endif  // EASEIO_SIM_COSTS_H_
