// Simulated Low Energy Accelerator (LEA).
//
// The MSP430FR5994's LEA executes vector math (FIR, MAC, transforms) out of a dedicated
// SRAM window at a fraction of the CPU's per-MAC cost. Two properties matter for the
// paper's workloads and are enforced here:
//   * operands must live in (volatile) SRAM — which is why the FIR and DNN applications
//     stage inputs/coefficients from FRAM with DMA and write results back with DMA;
//   * an invocation is a peripheral operation: charged first, effects applied only on
//     completion.
// Arithmetic is int16 fixed point with Q15 coefficients, matching LEA firmware style.

#ifndef EASEIO_SIM_LEA_H_
#define EASEIO_SIM_LEA_H_

#include <cstdint>
#include <initializer_list>

namespace easeio::sim {

class Device;

class LeaAccelerator {
 public:
  // FIR convolution: dst[i] = sum_{k<taps} (coef[k] * src[i+k]) >> 15 for i < out_len.
  // src needs out_len + taps - 1 input samples. All operands in SRAM.
  void Fir(Device& dev, uint32_t src, uint32_t coef, uint32_t dst, uint32_t out_len,
           uint32_t taps);

  // In-place ReLU over `len` int16 elements.
  void Relu(Device& dev, uint32_t addr, uint32_t len);

  // Single-channel 2-D valid convolution of an in_h x in_w image with a k x k kernel
  // (Q15 weights); output is (in_h-k+1) x (in_w-k+1).
  void Conv2dValid(Device& dev, uint32_t src, uint32_t kernel, uint32_t dst, uint32_t in_h,
                   uint32_t in_w, uint32_t k);

  // Fully connected layer: dst[o] = sum_i (w[o*in_len+i] * src[i]) >> 15, o < out_len.
  void FullyConnected(Device& dev, uint32_t src, uint32_t weights, uint32_t dst,
                      uint32_t in_len, uint32_t out_len);

  // Argmax over `len` int16 elements; writes the winning index (int16) to dst.
  void MaxIndex(Device& dev, uint32_t src, uint32_t len, uint32_t dst);

  uint64_t invocations() const { return invocations_; }
  uint64_t macs() const { return macs_; }

 private:
  // Charges setup + per-MAC cost and checks the SRAM-residence constraint.
  void Begin(Device& dev, uint64_t mac_count, std::initializer_list<uint32_t> operand_addrs,
             std::initializer_list<uint32_t> operand_sizes);

  uint64_t invocations_ = 0;
  uint64_t macs_ = 0;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_LEA_H_
