// Simulated external peripherals: sensors, radio, camera.
//
// Sensor values drift over wall time (slow sinusoid + per-read noise from a seeded
// stream), so re-executing a read after a power failure generally returns a *different*
// value — the property behind the paper's unsafe-program-execution bug (Figure 2c) and
// behind Timely semantics (a reading goes stale). All operations charge the device and
// may therefore be interrupted by a power failure before producing any effect.

#ifndef EASEIO_SIM_PERIPHERALS_H_
#define EASEIO_SIM_PERIPHERALS_H_

#include <cstdint>
#include <vector>

#include "platform/rng.h"
#include "sim/costs.h"

namespace easeio::sim {

class Device;

// Common analog-sensor model: value(t) = mean + amplitude * sin(2*pi*t/period) + noise.
// Readings are returned in tenths of the physical unit as int16 (e.g. 12.3 C -> 123),
// matching the fixed-point style of MCU firmware.
class AnalogSensor {
 public:
  struct Profile {
    double mean;
    double amplitude;
    double period_us;
    double noise;  // uniform per-read noise in +/- physical units
  };

  AnalogSensor(uint64_t seed, Profile profile, PeripheralCost cost);

  // Performs a charged read. Throws PowerFailure if energy runs out mid-read; in that
  // case no value is produced.
  int16_t Read(Device& dev);

  // Uncharged evaluation of the underlying signal (no noise) — used by tests.
  double SignalAt(uint64_t wall_us) const;

  void set_profile(Profile profile) { profile_ = profile; }
  const Profile& profile() const { return profile_; }
  uint64_t reads() const { return reads_; }

 private:
  Xorshift64Star rng_;
  Profile profile_;
  PeripheralCost cost_;
  uint64_t reads_ = 0;
};

// Factory helpers with paper-appropriate default profiles. The temperature default
// crosses the 10-degree threshold used by the unsafe-branch example.
AnalogSensor MakeTempSensor(uint64_t seed);
AnalogSensor MakeHumiditySensor(uint64_t seed);
AnalogSensor MakePressureSensor(uint64_t seed);

// Packet radio. A send is observable to the outside world the moment it completes, so
// the log below is *not* rolled back on power failure — that is precisely why repeated
// sends waste energy and duplicate traffic (Figure 2a).
class Radio {
 public:
  struct SendRecord {
    uint64_t wall_us;
    uint32_t bytes;
    uint32_t checksum;  // FNV-1a over the payload at send time
  };

  // Transmits `nbytes` starting at simulated address `addr`. Charges wake + per-byte
  // costs first; the packet "leaves the antenna" only if the charge completes.
  void Send(Device& dev, uint32_t addr, uint32_t nbytes);

  const std::vector<SendRecord>& log() const { return log_; }
  uint64_t sends() const { return log_.size(); }

 private:
  std::vector<SendRecord> log_;
};

// Image sensor. The paper simulates capture with a delay loop; we do the same but also
// deposit a deterministic "image" derived from (seed, wall time) into the destination
// buffer so that a re-capture after a power failure yields different pixels.
class Camera {
 public:
  explicit Camera(uint64_t seed) : seed_(seed) {}

  void Capture(Device& dev, uint32_t dst_addr, uint32_t nbytes);

  uint64_t captures() const { return captures_; }

 private:
  uint64_t seed_;
  uint64_t captures_ = 0;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_PERIPHERALS_H_
