// Per-run statistics: power failures, I/O execution counts, and the
// app / overhead / wasted-work decomposition the paper's figures report.
//
// Attribution model. Execution proceeds in task *attempts*. Charged operations
// accumulate into a per-attempt buffer, bucketed by the device's active Phase:
//   * a failed attempt folds its entire buffer into "wasted work" — everything done in
//     it is redone (all-or-nothing task semantics);
//   * a committed attempt folds kApp time into useful app work, kOverhead into runtime
//     overhead, and kRedundant (re-executed I/O inside the eventually-successful
//     attempt) into wasted work.
// This reproduces the decomposition in Figures 7 and 10: App + Overhead + Wasted ==
// total on-time.

#ifndef EASEIO_SIM_STATS_H_
#define EASEIO_SIM_STATS_H_

#include <cstdint>

#include "sim/energy.h"

namespace easeio::sim {

struct RunStats {
  // --- event counters -----------------------------------------------------------------
  uint64_t power_failures = 0;
  uint64_t tasks_committed = 0;
  uint64_t io_executions = 0;    // peripheral I/O operations actually performed
  uint64_t io_redundant = 0;     // of those, repeats of an already-completed operation
  uint64_t io_skipped = 0;       // operations elided by re-execution semantics
  uint64_t dma_executions = 0;   // DMA transfers actually performed
  uint64_t dma_redundant = 0;    // repeats of an already-completed transfer
  uint64_t dma_skipped = 0;      // transfers elided by re-execution semantics

  // --- committed time (microseconds of on-time) ---------------------------------------
  double app_us = 0;
  double overhead_us = 0;
  double wasted_us = 0;

  // --- committed energy (joules) -------------------------------------------------------
  double app_j = 0;
  double overhead_j = 0;
  double wasted_j = 0;

  double TotalUs() const { return app_us + overhead_us + wasted_us; }
  double TotalJ() const { return app_j + overhead_j + wasted_j; }

  // --- attempt buffer -------------------------------------------------------------------
  double attempt_us[kNumPhases] = {0, 0, 0};
  double attempt_j[kNumPhases] = {0, 0, 0};

  // Charges `us`/`j` against the in-flight attempt under `phase`.
  void ChargeAttempt(Phase phase, double us, double j) {
    attempt_us[static_cast<int>(phase)] += us;
    attempt_j[static_cast<int>(phase)] += j;
  }

  // The current attempt committed: app and overhead become useful; redundant I/O within
  // the successful attempt is still wasted work.
  void FoldCommitted() {
    app_us += attempt_us[0];
    overhead_us += attempt_us[1];
    wasted_us += attempt_us[2];
    app_j += attempt_j[0];
    overhead_j += attempt_j[1];
    wasted_j += attempt_j[2];
    ClearAttempt();
  }

  // The current attempt died in a power failure: everything it did is wasted.
  void FoldFailed() {
    wasted_us += attempt_us[0] + attempt_us[1] + attempt_us[2];
    wasted_j += attempt_j[0] + attempt_j[1] + attempt_j[2];
    ClearAttempt();
  }

  void ClearAttempt() {
    for (int i = 0; i < kNumPhases; ++i) {
      attempt_us[i] = 0;
      attempt_j[i] = 0;
    }
  }

  // Back to all-zero, as freshly constructed (Device::Reset stack reuse).
  void Reset() { *this = RunStats{}; }
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_STATS_H_
