#include "sim/dma.h"

#include "platform/check.h"
#include "sim/costs.h"
#include "sim/device.h"

namespace easeio::sim {

DmaEngine::TransferInfo DmaEngine::Copy(Device& dev, uint32_t dst, uint32_t src,
                                        uint32_t nbytes) {
  Memory& mem = dev.mem();
  EASEIO_CHECK(nbytes > 0, "zero-length DMA transfer");
  EASEIO_CHECK(mem.RangeValid(src, nbytes), "DMA source out of range");
  EASEIO_CHECK(mem.RangeValid(dst, nbytes), "DMA destination out of range");

  const TransferInfo info{mem.Classify(src), mem.Classify(dst), nbytes};
  const uint32_t words = (nbytes + 1) / 2;

  // Charge the whole transfer up front; bytes move only if power holds.
  dev.Spend(kDmaSetupCycles, kDmaSetupEnergyJ);
  dev.Spend(static_cast<uint64_t>(words) * kDmaCyclesPerWord,
            static_cast<double>(words) * kDmaEnergyPerWordJ);

  mem.Copy(dst, src, nbytes);
  ++transfers_;
  bytes_moved_ += nbytes;
  ++dev.stats().dma_executions;
  return info;
}

}  // namespace easeio::sim
