// Energy harvesters for the capacitor-driven experiments (Figure 13).

#ifndef EASEIO_SIM_HARVESTER_H_
#define EASEIO_SIM_HARVESTER_H_

#include <cstdint>
#include <vector>

#include "platform/check.h"

namespace easeio::sim {

// Source of harvested power. PowerW() may vary with wall time to model ambient
// variability; it is sampled per charging quantum by the device.
class Harvester {
 public:
  virtual ~Harvester() = default;

  // Instantaneous harvested power in watts at the given wall time.
  virtual double PowerW(uint64_t wall_us) const = 0;
};

// A fixed-power source, useful for tests and for "transmitter right next to the
// device" conditions where the supply always exceeds consumption.
class ConstantHarvester : public Harvester {
 public:
  explicit ConstantHarvester(double watts) : watts_(watts) {
    EASEIO_CHECK(watts >= 0, "harvested power must be non-negative");
  }
  double PowerW(uint64_t) const override { return watts_; }

 private:
  double watts_;
};

// RF harvester modelled on the Powercast TX91501-3W transmitter + P2110 receiver pair
// the paper uses: received power falls off with the square of distance (free-space
// path loss) from a calibration point. The paper sweeps 52-64 inches; with the default
// calibration the harvest rate crosses the device's mean draw inside that window, so
// close distances run failure-free and far distances brown out frequently — the shape
// Figure 13 reports.
class RfHarvester : public Harvester {
 public:
  // `reference_power_w` is the power received at `reference_distance_in` inches.
  // Received RF power is not steady in practice (multipath, antenna orientation,
  // people walking by — the variability Figure 1 motivates): the harvest is modulated
  // by a seeded piecewise-constant factor of 1 +/- `jitter` that changes every
  // `jitter_period_us` of wall time. Zero jitter gives a deterministic supply.
  RfHarvester(double distance_in, double reference_power_w = 3.0e-3,
              double reference_distance_in = 52.0, double jitter = 0.0, uint64_t seed = 0,
              uint64_t jitter_period_us = 5000)
      : distance_in_(distance_in),
        reference_power_w_(reference_power_w),
        reference_distance_in_(reference_distance_in),
        jitter_(jitter),
        seed_(seed),
        jitter_period_us_(jitter_period_us == 0 ? 1 : jitter_period_us) {
    EASEIO_CHECK(distance_in > 0, "distance must be positive");
    EASEIO_CHECK(jitter >= 0 && jitter < 1, "jitter must be in [0, 1)");
  }

  double PowerW(uint64_t wall_us) const override {
    const double ratio = reference_distance_in_ / distance_in_;
    double p = reference_power_w_ * ratio * ratio;
    if (jitter_ > 0) {
      // Deterministic per-window uniform factor in [1 - jitter, 1 + jitter].
      const uint64_t window = wall_us / jitter_period_us_;
      const uint64_t h = DeriveSeed(seed_, window + 1);
      const double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      p *= 1.0 + jitter_ * (2.0 * u - 1.0);
    }
    return p;
  }

  double distance_in() const { return distance_in_; }

 private:
  double distance_in_;
  double reference_power_w_;
  double reference_distance_in_;
  double jitter_;
  uint64_t seed_;
  uint64_t jitter_period_us_;
};

// Replays a recorded power trace with linear sample-and-hold, for experiments driven
// by real-world harvesting logs.
class TraceHarvester : public Harvester {
 public:
  struct Sample {
    uint64_t at_us;
    double watts;
  };

  // Samples must be sorted by time; the last sample's power holds forever after.
  explicit TraceHarvester(std::vector<Sample> samples) : samples_(std::move(samples)) {
    EASEIO_CHECK(!samples_.empty(), "trace harvester needs at least one sample");
    for (size_t i = 1; i < samples_.size(); ++i) {
      EASEIO_CHECK(samples_[i - 1].at_us <= samples_[i].at_us, "trace must be time-sorted");
    }
  }

  double PowerW(uint64_t wall_us) const override {
    // Hold the most recent sample at or before wall_us; before the first sample, hold
    // the first.
    const Sample* best = &samples_.front();
    for (const Sample& s : samples_) {
      if (s.at_us > wall_us) {
        break;
      }
      best = &s;
    }
    return best->watts;
  }

 private:
  std::vector<Sample> samples_;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_HARVESTER_H_
