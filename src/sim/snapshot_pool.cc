#include "sim/snapshot_pool.h"

#if defined(__SANITIZE_ADDRESS__)
#define EASEIO_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EASEIO_POOL_ASAN 1
#endif
#endif

#ifdef EASEIO_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace easeio::sim {

namespace {

// Only the FRAM byte buffer is poisoned: it is the large reuse target, it holds no
// objects with destructors, and poisoning it catches the realistic bug (reading
// snapshot memory after release). The allocation table and peripheral logs contain
// std::strings whose destructors would fault if poisoned.
void PoisonFram(DeviceSnapshot* snap) {
#ifdef EASEIO_POOL_ASAN
  if (!snap->mem.fram.empty()) {
    __asan_poison_memory_region(snap->mem.fram.data(), snap->mem.fram.size());
  }
#else
  (void)snap;
#endif
}

void UnpoisonFram(DeviceSnapshot* snap) {
#ifdef EASEIO_POOL_ASAN
  if (!snap->mem.fram.empty()) {
    __asan_unpoison_memory_region(snap->mem.fram.data(), snap->mem.fram.size());
  }
#else
  (void)snap;
#endif
}

}  // namespace

SnapshotPool::~SnapshotPool() {
  for (DeviceSnapshot* snap : free_) {
    UnpoisonFram(snap);  // the allocator must see the chunk clean before freeing it
    delete snap;
  }
}

void SnapshotPool::Releaser::operator()(DeviceSnapshot* snap) const {
  if (snap == nullptr) {
    return;
  }
  if (pool_ == nullptr) {
    delete snap;
    return;
  }
  PoisonFram(snap);
  pool_->free_.push_back(snap);
}

SnapshotPool::Handle SnapshotPool::Acquire() {
  if (!free_.empty()) {
    DeviceSnapshot* snap = free_.back();
    free_.pop_back();
    UnpoisonFram(snap);
    ++hits_;
    return Handle(snap, Releaser(this));
  }
  ++misses_;
  // Placeholder components: SnapshotAtRebootInto overwrites every field before the
  // snapshot is ever read (the seeded members have no default constructors).
  return Handle(new DeviceSnapshot{MemorySnapshot{}, SimClock{}, Capacitor{}, EnergyMeter{},
                                   RunStats{}, Xorshift64Star{1}, MakeTempSensor(1),
                                   MakeHumiditySensor(1), MakePressureSensor(1), Radio{},
                                   Camera{1}, DmaEngine{}, LeaAccelerator{}},
                Releaser(this));
}

}  // namespace easeio::sim
