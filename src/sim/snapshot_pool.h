// Per-worker recycling pool for DeviceSnapshot buffers.
//
// The chk snapshot engine takes one DeviceSnapshot per capture instant — tens of
// thousands per exploration — and each fresh snapshot heap-allocates an FRAM-sized
// byte buffer plus the allocation table and peripheral logs. The pool keeps released
// snapshots on a free list so the next Acquire reuses their buffers: together with
// Memory::SnapshotInto's dirty-page stamps, a recycled buffer re-filled from the same
// device re-copies only the pages that changed since its previous fill.
//
// Single-threaded by design: one pool per worker stack (the explorer's per-worker
// TrialStack owns one), never shared across threads. The pool must outlive every
// Handle it issued. Under AddressSanitizer the FRAM byte buffer of a pooled snapshot
// is poisoned while it sits on the free list, so any use-after-release is caught at
// the faulting access (test-exercised in tests/pool_test.cc).

#ifndef EASEIO_SIM_SNAPSHOT_POOL_H_
#define EASEIO_SIM_SNAPSHOT_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/device.h"

namespace easeio::sim {

class SnapshotPool {
 public:
  SnapshotPool() = default;
  SnapshotPool(const SnapshotPool&) = delete;
  SnapshotPool& operator=(const SnapshotPool&) = delete;
  ~SnapshotPool();

  // Returns a released snapshot to the free list (Handle's deleter).
  class Releaser {
   public:
    explicit Releaser(SnapshotPool* pool = nullptr) : pool_(pool) {}
    void operator()(DeviceSnapshot* snap) const;

   private:
    SnapshotPool* pool_;
  };

  // Owning handle; releasing it returns the snapshot to the pool instead of freeing
  // it. Default-constructed handles are null.
  using Handle = std::unique_ptr<DeviceSnapshot, Releaser>;

  // Hands out a recycled snapshot (buffers intact, dirty-page sync metadata valid for
  // whichever Memory last filled them) or a fresh one when the free list is empty.
  Handle Acquire();

  // Reuse diagnostics for the chk timing block.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t free_count() const { return free_.size(); }

 private:
  std::vector<DeviceSnapshot*> free_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_SNAPSHOT_POOL_H_
