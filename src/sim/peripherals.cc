#include "sim/peripherals.h"

#include <cmath>

#include "platform/check.h"
#include "sim/device.h"

namespace easeio::sim {

AnalogSensor::AnalogSensor(uint64_t seed, Profile profile, PeripheralCost cost)
    : rng_(seed), profile_(profile), cost_(cost) {}

double AnalogSensor::SignalAt(uint64_t wall_us) const {
  const double phase = 2.0 * M_PI * static_cast<double>(wall_us) / profile_.period_us;
  return profile_.mean + profile_.amplitude * std::sin(phase);
}

int16_t AnalogSensor::Read(Device& dev) {
  // Charge first: a power failure mid-read produces no value.
  dev.Spend(cost_.latency_cycles, cost_.energy_j);
  const double noise = rng_.NextDoubleInRange(-profile_.noise, profile_.noise);
  const double value = SignalAt(dev.clock().wall_us()) + noise;
  ++reads_;
  return static_cast<int16_t>(std::lround(value * 10.0));  // tenths of the unit
}

AnalogSensor MakeTempSensor(uint64_t seed) {
  // Mean 12 C with +/-5 C swing: crosses the 10 C branch threshold of Figure 2c.
  return AnalogSensor(seed, {12.0, 5.0, 3.0e6, 0.4}, kTempSensorCost);
}

AnalogSensor MakeHumiditySensor(uint64_t seed) {
  return AnalogSensor(seed, {55.0, 20.0, 5.0e6, 1.0}, kHumiditySensorCost);
}

AnalogSensor MakePressureSensor(uint64_t seed) {
  return AnalogSensor(seed, {1013.0, 5.0, 8.0e6, 0.5}, kPressureSensorCost);
}

namespace {

uint32_t Fnv1a(const Device& dev, uint32_t addr, uint32_t nbytes) {
  uint32_t h = 2166136261u;
  for (uint32_t i = 0; i < nbytes; ++i) {
    h ^= dev.mem().Read8(addr + i);
    h *= 16777619u;
  }
  return h;
}

}  // namespace

void Radio::Send(Device& dev, uint32_t addr, uint32_t nbytes) {
  EASEIO_CHECK(dev.mem().RangeValid(addr, nbytes), "radio payload out of range");
  dev.Spend(kRadioWakeCost.latency_cycles, kRadioWakeCost.energy_j);
  dev.Spend(static_cast<uint64_t>(nbytes) * kRadioCyclesPerByte,
            static_cast<double>(nbytes) * kRadioEnergyPerByteJ);
  log_.push_back({dev.clock().wall_us(), nbytes, Fnv1a(dev, addr, nbytes)});
}

void Camera::Capture(Device& dev, uint32_t dst_addr, uint32_t nbytes) {
  EASEIO_CHECK(dev.mem().RangeValid(dst_addr, nbytes), "camera buffer out of range");
  dev.Spend(kCameraCaptureCost.latency_cycles, kCameraCaptureCost.energy_j);
  // Deterministic pseudo-image derived from capture time: a re-capture after a power
  // failure sees a (slightly) different scene.
  Xorshift64Star frame(DeriveSeed(seed_, dev.clock().wall_us() / 1000 + 1));
  for (uint32_t i = 0; i < nbytes; ++i) {
    dev.mem().Write8(dst_addr + i, static_cast<uint8_t>(frame.Next() & 0xFF));
  }
  ++captures_;
}

}  // namespace easeio::sim
