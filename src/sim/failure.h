// Power-failure injection.
//
// The paper emulates power failures with an MCU timer whose firing period is drawn
// uniformly from [5 ms, 20 ms] (Section 5.1); Figure 13 instead uses a real harvester
// and a 1 mF capacitor. Both styles are modelled here behind one interface so the
// device's charging loop stays oblivious to the failure source.

#ifndef EASEIO_SIM_FAILURE_H_
#define EASEIO_SIM_FAILURE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "platform/check.h"
#include "platform/rng.h"
#include "sim/clock.h"
#include "sim/energy.h"

namespace easeio::sim {

// Thrown by the device when power is lost mid-operation. The task engine catches it at
// its trampoline, reboots the device, and re-enters the interrupted task — the
// all-or-nothing task semantics every runtime in the paper builds on.
struct PowerFailure {};

// Decides when the device loses power.
class FailureScheduler {
 public:
  virtual ~FailureScheduler() = default;

  // Called whenever the device (re)gains power, so timer-style schedulers can arm the
  // next firing. `rng` is the device's failure stream.
  virtual void OnPowerOn(const SimClock& clock, Xorshift64Star& rng) = 0;

  // How many on-time microseconds the device may execute from `clock.on_us()` before
  // the scheduler must be consulted again. Returning 0 means "fail now".
  virtual uint64_t OnTimeBudgetUs(const SimClock& clock) const = 0;

  // True when the device must brown out at the current instant. `cap` is the device
  // capacitor (used only by energy-driven schedulers).
  virtual bool FailNow(const SimClock& clock, const Capacitor& cap) const = 0;

  // Off-time to spend dark after a failure, in wall microseconds. Energy-driven
  // schedulers return 0 here; the device then derives the recharge time from the
  // harvester instead.
  virtual uint64_t OffTimeUs(Xorshift64Star& rng) = 0;

  // True when the scheduler's failure decision is a pure function of on-time: between
  // power-on and the instant `clock.on_us() + OnTimeBudgetUs(clock)`, FailNow is
  // guaranteed false and OnTimeBudgetUs only counts down. The device then caches that
  // deadline and skips the per-Spend virtual consultations entirely (the exploration
  // hot path). Energy-driven schedulers must return false: their FailNow depends on
  // the capacitor, not the clock.
  virtual bool DeadlineDriven() const { return false; }
};

// Never fails: models continuous power. Continuous runs provide the golden outputs the
// correctness experiments (Figure 12, Table 5) compare against.
class NeverFailScheduler : public FailureScheduler {
 public:
  void OnPowerOn(const SimClock&, Xorshift64Star&) override {}
  uint64_t OnTimeBudgetUs(const SimClock&) const override { return UINT64_MAX; }
  bool FailNow(const SimClock&, const Capacitor&) const override { return false; }
  uint64_t OffTimeUs(Xorshift64Star&) override { return 0; }
  bool DeadlineDriven() const override { return true; }
};

// The paper's emulation: a soft reset fires after a uniformly distributed on-time
// interval. Off-time is likewise uniform; its upper bound straddles typical Timely
// windows so that timeliness violations actually occur (Table 4's Timely row).
class UniformTimerScheduler : public FailureScheduler {
 public:
  UniformTimerScheduler(uint64_t min_on_us = 5000, uint64_t max_on_us = 20000,
                        uint64_t min_off_us = 1000, uint64_t max_off_us = 20000)
      : min_on_us_(min_on_us),
        max_on_us_(max_on_us),
        min_off_us_(min_off_us),
        max_off_us_(max_off_us) {
    EASEIO_CHECK(min_on_us > 0 && min_on_us <= max_on_us, "bad on-interval bounds");
    EASEIO_CHECK(min_off_us <= max_off_us, "bad off-interval bounds");
  }

  void OnPowerOn(const SimClock& clock, Xorshift64Star& rng) override {
    fail_at_on_us_ = clock.on_us() + rng.NextInRange(min_on_us_, max_on_us_);
  }

  uint64_t OnTimeBudgetUs(const SimClock& clock) const override {
    return clock.on_us() >= fail_at_on_us_ ? 0 : fail_at_on_us_ - clock.on_us();
  }

  bool FailNow(const SimClock& clock, const Capacitor&) const override {
    return clock.on_us() >= fail_at_on_us_;
  }

  uint64_t OffTimeUs(Xorshift64Star& rng) override {
    return rng.NextInRange(min_off_us_, max_off_us_);
  }

  bool DeadlineDriven() const override { return true; }

 private:
  uint64_t min_on_us_;
  uint64_t max_on_us_;
  uint64_t min_off_us_;
  uint64_t max_off_us_;
  uint64_t fail_at_on_us_ = UINT64_MAX;
};

// Fails at an explicit list of on-time instants, with a fixed off-time. Unit tests and
// the failure-schedule explorer (src/chk) use this to land failures between specific
// operations.
class ScriptedScheduler : public FailureScheduler {
 public:
  // The schedule may arrive in any order; instants must be distinct.
  explicit ScriptedScheduler(std::vector<uint64_t> fail_at_on_us, uint64_t off_us = 1000) {
    Rescript(std::move(fail_at_on_us), off_us);
  }

  // Replaces the schedule and re-arms the scheduler as if freshly constructed. The
  // explorer's reusable per-worker stacks call this between trials so the scheduler
  // object (whose address the device holds) never has to be replaced.
  void Rescript(std::vector<uint64_t> fail_at_on_us, uint64_t off_us) {
    fail_at_ = std::move(fail_at_on_us);
    std::sort(fail_at_.begin(), fail_at_.end());
    for (size_t i = 1; i < fail_at_.size(); ++i) {
      EASEIO_CHECK(fail_at_[i - 1] < fail_at_[i], "scripted failure instants must be distinct");
    }
    off_us_ = off_us;
    next_ = 0;
    begun_ = false;
  }

  void OnPowerOn(const SimClock& clock, Xorshift64Star&) override {
    // The first arming (Device::Begin) keeps an instant equal to the current time
    // pending — a failure scripted at t=0 must fire before the first operation. Every
    // re-arming after a failure consumes the instant that just fired.
    while (next_ < fail_at_.size() &&
           (begun_ ? fail_at_[next_] <= clock.on_us() : fail_at_[next_] < clock.on_us())) {
      ++next_;
    }
    begun_ = true;
  }

  uint64_t OnTimeBudgetUs(const SimClock& clock) const override {
    if (next_ >= fail_at_.size()) {
      return UINT64_MAX;
    }
    return clock.on_us() >= fail_at_[next_] ? 0 : fail_at_[next_] - clock.on_us();
  }

  bool FailNow(const SimClock& clock, const Capacitor&) const override {
    return next_ < fail_at_.size() && clock.on_us() >= fail_at_[next_];
  }

  uint64_t OffTimeUs(Xorshift64Star&) override { return off_us_; }

  // The schedule is a pure function of on-time. NOTE: Rescript invalidates any cached
  // deadline; every Rescript site is followed by Device::Reset / Begin / a deferred
  // Reboot before the next Spend, each of which re-derives it.
  bool DeadlineDriven() const override { return true; }

  // Index of the next pending failure — equivalently, how many scripted failures have
  // fired so far. Callers use this to report which injected failure killed a run.
  size_t next_index() const { return next_; }
  size_t size() const { return fail_at_.size(); }

 private:
  std::vector<uint64_t> fail_at_;
  uint64_t off_us_;
  size_t next_ = 0;
  bool begun_ = false;
};

// Energy-driven failures: the device browns out when the capacitor crosses v_off. The
// device charges the capacitor from the harvester while executing and while dark, and
// derives the off-time from the recharge deficit, so no explicit off-time exists here.
class CapacitorScheduler : public FailureScheduler {
 public:
  // Re-check the capacitor at this on-time granularity (keeps failure resolution fine
  // without paying a check per cycle).
  explicit CapacitorScheduler(uint64_t quantum_us = 50) : quantum_us_(quantum_us) {
    EASEIO_CHECK(quantum_us > 0, "quantum must be positive");
  }

  void OnPowerOn(const SimClock&, Xorshift64Star&) override {}
  uint64_t OnTimeBudgetUs(const SimClock&) const override { return quantum_us_; }
  bool FailNow(const SimClock&, const Capacitor& cap) const override { return cap.BelowOff(); }
  uint64_t OffTimeUs(Xorshift64Star&) override { return 0; }

 private:
  uint64_t quantum_us_;
};

}  // namespace easeio::sim

#endif  // EASEIO_SIM_FAILURE_H_
