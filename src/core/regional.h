// Regional privatization (Sections 3.4 and 4.4).
//
// EaseIO cannot use Alpaca-style whole-task privatization: a Single-annotated DMA that
// completed before a power failure is *skipped* on re-execution, so restoring all
// non-volatile variables to their task-entry values would erase the DMA's effects.
// Instead, a task containing N DMA sites is split into N+1 regions at the DMA
// positions, and each region snapshots the non-volatile variables it accesses at its
// entry:
//   * first arrival at a region (per task incarnation): snapshot the variables and set
//     the region's privatization flag;
//   * re-arrival after a power failure (flag already set): restore the snapshot —
//     undoing any partial writes the interrupted attempt made in this region, while
//     preserving everything the preceding (now skipped) DMAs established.
// A DMA that *does* execute again (Always / Private / dependence-forced) changes the
// state later snapshots captured, so executing a DMA invalidates the snapshots of all
// downstream regions; they are re-taken on arrival.
//
// The DMA-completion flag is set only after the following region's privatization
// finishes, making "DMA + snapshot" atomic (Figure 6).

#ifndef EASEIO_CORE_REGIONAL_H_
#define EASEIO_CORE_REGIONAL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "kernel/nv.h"
#include "kernel/task.h"
#include "sim/device.h"

namespace easeio::rt {

class RegionalPrivatizer {
 public:
  void Bind(sim::Device& dev, kernel::NvManager& nv) {
    dev_ = &dev;
    nv_ = &nv;
  }

  // Declares the region structure of `task`: regions[k] lists the non-volatile slots
  // the CPU accesses in region k (what the compiler front-end extracts, Section 4.5.1).
  // A task with N DMA sites must declare N+1 regions. Tasks never declared here are
  // treated as a single region with no privatized variables.
  void SetTaskRegions(kernel::TaskId task, std::vector<std::vector<kernel::NvSlotId>> regions);

  // Number of declared regions for `task` (0 when undeclared).
  uint32_t RegionCount(kernel::TaskId task) const;

  // Enters region `r` of `task`: snapshot on first arrival, restore on re-arrival.
  // Charged as runtime overhead.
  void EnterRegion(kernel::TaskCtx& ctx, kernel::TaskId task, uint32_t r);

  // Enters region `r` right after the DMA guarding it *executed* (rather than being
  // skipped). The DMA may have rewritten [dst, dst+size): restore every slot that does
  // not overlap that range (undoing any partial CPU writes from a failed attempt),
  // keep the fresh DMA output, and re-take the snapshot so later recoveries see the
  // new data.
  void EnterRegionAfterDmaExec(kernel::TaskCtx& ctx, kernel::TaskId task, uint32_t r,
                               uint32_t dst, uint32_t dst_size);

  // Invalidates the snapshots of regions >= r (a DMA before them just re-executed).
  void InvalidateFrom(kernel::TaskCtx& ctx, kernel::TaskId task, uint32_t r);

  // Clears all privatization flags of `task` (task committed).
  void OnTaskCommit(kernel::TaskCtx& ctx, kernel::TaskId task);

  // Appends the FRAM addresses of all of `task`'s region flags — the EaseIO runtime
  // folds them into its atomic commit-time invalidation.
  void CollectFlagAddrs(kernel::TaskId task, std::vector<uint32_t>* out) const;

  // Total regions across all tasks (code-size model input).
  uint32_t TotalRegions() const { return total_regions_; }

 private:
  struct Region {
    std::vector<kernel::NvSlotId> slots;
    uint32_t flag_addr = 0;  // FRAM: privatization-complete flag
    uint32_t snap_addr = 0;  // FRAM: concatenated snapshot storage
    uint32_t snap_size = 0;
  };

  sim::Device* dev_ = nullptr;
  kernel::NvManager* nv_ = nullptr;
  std::map<kernel::TaskId, std::vector<Region>> tasks_;
  uint32_t total_regions_ = 0;
};

}  // namespace easeio::rt

#endif  // EASEIO_CORE_REGIONAL_H_
