// The EaseIO runtime — the paper's primary contribution.
//
// EaseIO extends the task model with programmer-annotated *re-execution semantics* for
// peripheral operations and makes repeated I/O safe:
//
//   * _call_IO  (CallIo override): each site lane owns non-volatile metadata — a lock
//     flag, a completion timestamp, a private copy of the returned value, and a
//     sequence number. Single sites never re-execute after completing; Timely sites
//     re-execute only when their freshness window expired; Always sites re-execute on
//     every attempt. Skipped calls restore the private value, so control flow follows
//     the same branches continuous execution would take (Section 3.5).
//
//   * _IO_block_begin/_end (IoBlockBegin/End overrides): a block carries its own
//     semantics with *scope precedence* — a satisfied block skips everything inside
//     regardless of inner annotations; a violated (expired) block forces everything
//     inside to re-execute (Section 3.3.1).
//
//   * data dependence (Section 3.3.2): a consumer site re-executes whenever a producer
//     it depends on has executed more recently, tracked with per-task sequence numbers.
//
//   * _DMA_copy (DmaCopy override): semantics are resolved at run time from the source
//     and destination memory kinds — NV-destination transfers are Single;
//     NV-source/volatile-destination transfers are Private (a two-phase copy through a
//     non-volatile privatization buffer so re-execution reads pristine source data);
//     volatile-to-volatile transfers are Always. The programmer's Exclude annotation
//     opts constant data out of privatization, and I/O-dependent DMAs inherit their
//     producer's re-execution (Section 4.3).
//
//   * regional privatization (Section 4.4): see core/regional.h. Every DMA site is a
//     region boundary; the DMA completion flag is set only after the next region's
//     privatization finishes.
//
// All bookkeeping lives in simulated FRAM and every check/update is charged to the
// device under Phase::kOverhead — the runtime's cost is measured, not assumed.

#ifndef EASEIO_CORE_EASEIO_RUNTIME_H_
#define EASEIO_CORE_EASEIO_RUNTIME_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/regional.h"
#include "kernel/runtime.h"

namespace easeio::rt {

struct EaseioConfig {
  // Size of the shared DMA privatization buffer. The paper uses 4 KB; applications
  // without DMA allocate none (the buffer is created lazily).
  uint32_t dma_priv_buffer_bytes = 4096;

  // Ablation switch: when false, declared task regions are ignored — no snapshots, no
  // recovery. Used by bench_ablation_regional to quantify what regional privatization
  // costs and what it prevents. Production configuration is `true`.
  bool enable_regional_privatization = true;
};

class EaseioRuntime : public kernel::Runtime {
 public:
  explicit EaseioRuntime(EaseioConfig config = {}) : config_(config) {}

  const char* name() const override { return "EaseIO"; }

  void Bind(sim::Device& dev, kernel::NvManager& nv) override;

  kernel::IoSiteId RegisterIoSite(kernel::IoSiteDesc desc) override;
  kernel::IoBlockId RegisterIoBlock(kernel::IoBlockDesc desc) override;
  kernel::DmaSiteId RegisterDmaSite(kernel::DmaSiteDesc desc) override;

  // Declares the compiler-extracted region structure for a task (see
  // RegionalPrivatizer::SetTaskRegions). A task with N registered DMA sites needs
  // N + 1 regions.
  void SetTaskRegions(kernel::TaskId task,
                      std::vector<std::vector<kernel::NvSlotId>> regions);

  void DeclareTaskRegions(kernel::TaskId task,
                          std::vector<std::vector<kernel::NvSlotId>> regions) override {
    SetTaskRegions(task, std::move(regions));
  }

  void OnTaskBegin(kernel::TaskCtx& ctx) override;
  void OnTaskCommit(kernel::TaskCtx& ctx) override;
  void OnReboot() override;

  int16_t CallIo(kernel::TaskCtx& ctx, kernel::IoSiteId site, uint32_t lane,
                 const kernel::IoOp& op) override;
  void IoBlockBegin(kernel::TaskCtx& ctx, kernel::IoBlockId block) override;
  void IoBlockEnd(kernel::TaskCtx& ctx, kernel::IoBlockId block) override;
  void DmaCopy(kernel::TaskCtx& ctx, kernel::DmaSiteId site, uint32_t dst, uint32_t src,
               uint32_t nbytes) override;

  uint32_t CodeSizeBytes() const override;

  // Completion timestamps (lane +2, block +2) are written on every execution but read
  // back only by Timely freshness checks; the chk dedup layer only fingerprints
  // EaseIO states when no Timely site or block is registered (clock-free execution),
  // so the timestamp words are always dead metadata there and masking them lets
  // trials that diverge only in *when* an operation completed share one fingerprint.
  void AppendStateMask(std::vector<kernel::Runtime::StateMaskRange>& out) const override;

  // --- Introspection (tests / harness) --------------------------------------------------
  // True when the site lane's lock flag is set (operation completed and not yet
  // invalidated by commit).
  bool SiteDone(kernel::IoSiteId site, uint32_t lane = 0) const;
  bool BlockDone(kernel::IoBlockId block) const;
  bool DmaDone(kernel::DmaSiteId site) const;

 private:
  enum class BlockMode : uint8_t { kNormal, kSkip, kForce };

  // FRAM layout of one I/O site lane.
  struct LaneMeta {
    uint32_t base;  // +0 flag(2) +2 ts_us(4) +6 priv(2) +8 seq(2)
  };
  struct SiteMeta {
    std::vector<LaneMeta> lanes;
    uint32_t site_seq_addr;  // most recent execution seq across lanes (dependence)
  };
  struct BlockMeta {
    uint32_t base;  // +0 flag(2) +2 ts_us(4)
  };
  struct DmaMeta {
    uint32_t base;          // +0 done(2) +2 phase1(2) +4 priv_off_plus1(4) +8 seq(2)
    uint32_t region_index;  // ordinal among the task's DMA sites
  };

  uint32_t TaskSeqAddr(kernel::TaskId task);
  uint16_t NextSeq(kernel::TaskCtx& ctx, kernel::TaskId task);
  BlockMode EffectiveBlockMode() const;
  // Resolves the re-execution decision for a site lane outside of block overrides.
  bool NeedExecute(kernel::TaskCtx& ctx, const kernel::IoSiteDesc& desc, const LaneMeta& lane);

  EaseioConfig config_;
  RegionalPrivatizer regional_;

  std::vector<SiteMeta> io_meta_;
  std::vector<BlockMeta> block_meta_;
  std::vector<DmaMeta> dma_meta_;
  std::map<kernel::TaskId, uint32_t> task_seq_addr_;
  std::map<kernel::TaskId, uint32_t> task_dma_count_;

  // Shared DMA privatization buffer (lazy).
  uint32_t priv_buf_addr_ = 0;
  uint32_t priv_cursor_addr_ = 0;  // FRAM u32: next free offset

  // Volatile (SRAM-resident) state, cleared on reboot.
  struct BlockEntry {
    kernel::IoBlockId id;
    BlockMode mode;
  };
  std::vector<BlockEntry> block_stack_;
};

}  // namespace easeio::rt

#endif  // EASEIO_CORE_EASEIO_RUNTIME_H_
