#include "core/easeio_runtime.h"

#include <string>

namespace easeio::rt {

using kernel::IoSemantic;

namespace {

// FRAM layout offsets for I/O lane metadata.
constexpr uint32_t kLaneFlag = 0;
constexpr uint32_t kLaneTs = 2;
constexpr uint32_t kLanePriv = 6;
constexpr uint32_t kLaneSeq = 8;
constexpr uint32_t kLaneBytes = 10;

// Block metadata.
constexpr uint32_t kBlockFlag = 0;
constexpr uint32_t kBlockTs = 2;
constexpr uint32_t kBlockBytes = 6;

// DMA metadata.
constexpr uint32_t kDmaDone = 0;
constexpr uint32_t kDmaPhase1 = 2;
constexpr uint32_t kDmaPrivOff = 4;  // offset + 1; 0 means unassigned
constexpr uint32_t kDmaSeq = 8;
constexpr uint32_t kDmaBytes = 10;

}  // namespace

void EaseioRuntime::Bind(sim::Device& dev, kernel::NvManager& nv) {
  kernel::Runtime::Bind(dev, nv);
  regional_.Bind(dev, nv);
  // Fixed runtime state: current-task pointer and the I/O semantic dispatch word the
  // paper reports as the 6-byte no-DMA footprint.
  dev.mem().AllocFram("easeio.kernel", 6, sim::AllocPurpose::kRuntimeMeta);
}

kernel::IoSiteId EaseioRuntime::RegisterIoSite(kernel::IoSiteDesc desc) {
  for (kernel::IoSiteId p : desc.depends_on) {
    EASEIO_CHECK(p < io_sites_.size(), "dependence on unregistered site");
  }
  const kernel::IoSiteId id = kernel::Runtime::RegisterIoSite(desc);
  const kernel::IoSiteDesc& d = io_sites_[id];

  SiteMeta meta;
  meta.lanes.reserve(d.lanes);
  for (uint32_t l = 0; l < d.lanes; ++l) {
    // One lock_##fn##task##num record per lane (Section 4.5; loops get a lane array).
    const uint32_t base = dev_->mem().AllocFram(
        "easeio.io." + d.name + "." + std::to_string(l), kLaneBytes,
        sim::AllocPurpose::kRuntimeMeta);
    meta.lanes.push_back({base});
  }
  meta.site_seq_addr = dev_->mem().AllocFram("easeio.io." + d.name + ".seq", 2,
                                             sim::AllocPurpose::kRuntimeMeta);
  io_meta_.push_back(std::move(meta));
  TaskSeqAddr(d.task);  // ensure the per-task sequence counter exists
  return id;
}

kernel::IoBlockId EaseioRuntime::RegisterIoBlock(kernel::IoBlockDesc desc) {
  const kernel::IoBlockId id = kernel::Runtime::RegisterIoBlock(desc);
  const uint32_t base = dev_->mem().AllocFram("easeio.block." + blocks_[id].name, kBlockBytes,
                                              sim::AllocPurpose::kRuntimeMeta);
  block_meta_.push_back({base});
  return id;
}

kernel::DmaSiteId EaseioRuntime::RegisterDmaSite(kernel::DmaSiteDesc desc) {
  EASEIO_CHECK(desc.related_io == kernel::kNoSite || desc.related_io < io_sites_.size(),
               "DMA related to unregistered I/O site");
  const kernel::DmaSiteId id = kernel::Runtime::RegisterDmaSite(desc);
  const kernel::DmaSiteDesc& d = dma_sites_[id];

  if (priv_buf_addr_ == 0 && config_.dma_priv_buffer_bytes > 0) {
    // Lazy: applications without DMA never pay for the privatization buffer.
    priv_buf_addr_ = dev_->mem().AllocFram("easeio.dma.privbuf", config_.dma_priv_buffer_bytes,
                                           sim::AllocPurpose::kPrivBuffer);
    priv_cursor_addr_ =
        dev_->mem().AllocFram("easeio.dma.cursor", 4, sim::AllocPurpose::kRuntimeMeta);
  }

  const uint32_t base = dev_->mem().AllocFram("easeio.dma." + d.name, kDmaBytes,
                                              sim::AllocPurpose::kRuntimeMeta);
  const uint32_t region = task_dma_count_[d.task]++;
  dma_meta_.push_back({base, region});
  TaskSeqAddr(d.task);
  return id;
}

void EaseioRuntime::SetTaskRegions(kernel::TaskId task,
                                   std::vector<std::vector<kernel::NvSlotId>> regions) {
  if (!config_.enable_regional_privatization) {
    return;  // ablation: run without the regional machinery
  }
  auto it = task_dma_count_.find(task);
  const uint32_t dma_count = it == task_dma_count_.end() ? 0 : it->second;
  EASEIO_CHECK(regions.size() == dma_count + 1,
               "a task with N DMA sites needs N+1 regions (register DMA sites first)");
  regional_.SetTaskRegions(task, std::move(regions));
}

uint32_t EaseioRuntime::TaskSeqAddr(kernel::TaskId task) {
  auto it = task_seq_addr_.find(task);
  if (it != task_seq_addr_.end()) {
    return it->second;
  }
  const uint32_t addr = dev_->mem().AllocFram("easeio.taskseq." + std::to_string(task), 2,
                                              sim::AllocPurpose::kRuntimeMeta);
  task_seq_addr_[task] = addr;
  return addr;
}

uint16_t EaseioRuntime::NextSeq(kernel::TaskCtx& ctx, kernel::TaskId task) {
  const uint32_t addr = TaskSeqAddr(task);
  const uint16_t next = static_cast<uint16_t>(ctx.dev().LoadWord(addr) + 1);
  ctx.dev().StoreWord(addr, next);
  return next;
}

EaseioRuntime::BlockMode EaseioRuntime::EffectiveBlockMode() const {
  // Scope precedence (Section 3.3.1): the outermost decisive block wins.
  for (const BlockEntry& e : block_stack_) {
    if (e.mode != BlockMode::kNormal) {
      return e.mode;
    }
  }
  return BlockMode::kNormal;
}

bool EaseioRuntime::NeedExecute(kernel::TaskCtx& ctx, const kernel::IoSiteDesc& desc,
                                const LaneMeta& lane) {
  sim::Device& dev = ctx.dev();
  switch (desc.sem) {
    case IoSemantic::kAlways:
      return true;
    case IoSemantic::kSingle:
      if (dev.LoadWord(lane.base + kLaneFlag) == 0) {
        return true;
      }
      break;
    case IoSemantic::kTimely: {
      if (dev.LoadWord(lane.base + kLaneFlag) == 0) {
        return true;
      }
      const uint32_t ts = dev.LoadWord32(lane.base + kLaneTs);
      const uint32_t now = static_cast<uint32_t>(ctx.NowUs());
      if (now - ts > desc.window_us) {
        return true;  // reading expired
      }
      break;
    }
  }
  // Completed and still valid. Re-execute anyway if a producer we depend on has run
  // more recently than we have (Section 3.3.2).
  const uint16_t my_seq = dev.LoadWord(lane.base + kLaneSeq);
  for (kernel::IoSiteId p : desc.depends_on) {
    if (dev.LoadWord(io_meta_[p].site_seq_addr) > my_seq) {
      return true;
    }
  }
  return false;
}

int16_t EaseioRuntime::CallIo(kernel::TaskCtx& ctx, kernel::IoSiteId site, uint32_t lane,
                              const kernel::IoOp& op) {
  EASEIO_CHECK(site < io_sites_.size(), "unknown io site");
  const kernel::IoSiteDesc& desc = io_sites_[site];
  EASEIO_CHECK(lane < desc.lanes, "io lane out of range");
  const LaneMeta& meta = io_meta_[site].lanes[lane];
  sim::Device& dev = ctx.dev();

  bool exec = false;
  int16_t value = 0;
  {
    sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);
    dev.Cpu(3);  // the generated guard branch
    const BlockMode bm = EffectiveBlockMode();
    if (bm == BlockMode::kSkip) {
      exec = false;
    } else if (bm == BlockMode::kForce) {
      exec = true;
    } else {
      exec = NeedExecute(ctx, desc, meta);
    }
    if (!exec) {
      // Restore the private copy of the last successful result so the program takes
      // the same branches it would under continuous power.
      ++dev.stats().io_skipped;
      value = static_cast<int16_t>(dev.LoadWord(meta.base + kLanePriv));
      // Probe: how old the reading being consumed is (host-side metadata peek; the
      // runtime itself already paid for this read inside NeedExecute).
      uint64_t age_us = 0;
      bool age_checked = false;
      if (bm == BlockMode::kNormal && desc.sem == IoSemantic::kTimely) {
        age_us = static_cast<uint32_t>(ctx.NowUs()) - dev.mem().Read32(meta.base + kLaneTs);
        age_checked = true;
      }
      dev.Note(sim::ProbeKind::kIoSkip, site, lane, age_us, age_checked ? 1 : 0);
    }
  }

  if (exec) {
    value = ExecuteIo(ctx, site, lane, op);
    sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);
    // Record completion: value, timestamp, sequence — lock flag last, as the commit
    // point (a failure before it simply re-executes the operation).
    dev.StoreWord(meta.base + kLanePriv, static_cast<uint16_t>(value));
    dev.StoreWord32(meta.base + kLaneTs, static_cast<uint32_t>(ctx.NowUs()));
    const uint16_t seq = NextSeq(ctx, desc.task);
    dev.StoreWord(meta.base + kLaneSeq, seq);
    dev.StoreWord(io_meta_[site].site_seq_addr, seq);
    dev.StoreWord(meta.base + kLaneFlag, 1);
    dev.Note(sim::ProbeKind::kIoLocked, site, lane);
  }
  return value;
}

void EaseioRuntime::IoBlockBegin(kernel::TaskCtx& ctx, kernel::IoBlockId block) {
  EASEIO_CHECK(block < blocks_.size(), "unknown io block");
  const kernel::IoBlockDesc& desc = blocks_[block];
  const BlockMeta& meta = block_meta_[block];
  sim::Device& dev = ctx.dev();

  if (block_stack_.empty()) {
    EASEIO_CHECK(desc.parent == kernel::kNoBlock, "nested block entered without its parent");
  } else {
    EASEIO_CHECK(desc.parent == block_stack_.back().id, "block nesting mismatch");
  }

  sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);
  dev.Cpu(3);
  BlockMode mode = BlockMode::kNormal;
  switch (desc.sem) {
    case IoSemantic::kSingle:
      mode = dev.LoadWord(meta.base + kBlockFlag) != 0 ? BlockMode::kSkip : BlockMode::kNormal;
      break;
    case IoSemantic::kTimely: {
      if (dev.LoadWord(meta.base + kBlockFlag) == 0) {
        mode = BlockMode::kNormal;
      } else {
        const uint32_t ts = dev.LoadWord32(meta.base + kBlockTs);
        const uint32_t now = static_cast<uint32_t>(ctx.NowUs());
        // An expired block forces everything inside to re-execute, overriding inner
        // Single annotations (scope precedence).
        mode = (now - ts <= desc.window_us) ? BlockMode::kSkip : BlockMode::kForce;
      }
      break;
    }
    case IoSemantic::kAlways:
      mode = BlockMode::kForce;
      break;
  }
  block_stack_.push_back({block, mode});
  dev.Note(sim::ProbeKind::kBlockBegin, block, 0, static_cast<uint64_t>(mode));
}

void EaseioRuntime::IoBlockEnd(kernel::TaskCtx& ctx, kernel::IoBlockId block) {
  EASEIO_CHECK(!block_stack_.empty() && block_stack_.back().id == block,
               "unbalanced io block end");
  const BlockMode mode = block_stack_.back().mode;
  block_stack_.pop_back();

  sim::Device& dev = ctx.dev();
  sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);
  dev.Cpu(3);
  if (mode != BlockMode::kSkip) {
    const BlockMeta& meta = block_meta_[block];
    dev.StoreWord32(meta.base + kBlockTs, static_cast<uint32_t>(ctx.NowUs()));
    dev.StoreWord(meta.base + kBlockFlag, 1);
  }
  dev.Note(sim::ProbeKind::kBlockEnd, block, 0, mode != BlockMode::kSkip ? 1 : 0);
}

void EaseioRuntime::DmaCopy(kernel::TaskCtx& ctx, kernel::DmaSiteId site, uint32_t dst,
                            uint32_t src, uint32_t nbytes) {
  EASEIO_CHECK(site < dma_sites_.size(), "unknown dma site");
  const kernel::DmaSiteDesc& desc = dma_sites_[site];
  const DmaMeta& meta = dma_meta_[site];
  sim::Device& dev = ctx.dev();

  enum class DmaType { kSingle, kPrivate, kAlways };

  // --- Resolve semantics and the re-execution decision (charged overhead) --------------
  DmaType type = DmaType::kAlways;
  bool force_dep = false;
  bool skip = false;
  bool was_completed = false;  // a full transfer has completed before (redundancy tag)
  uint32_t priv_addr = 0;
  bool phase1_needed = false;
  {
    sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);
    dev.Cpu(6);  // address classification + dispatch
    const sim::MemKind sk = dev.mem().Classify(src);
    const sim::MemKind dk = dev.mem().Classify(dst);
    if (desc.exclude) {
      // Programmer vouches the source is constant: plain re-executable copy, no
      // privatization (Section 4.3, the "EaseIO /Op." configuration).
      type = DmaType::kAlways;
    } else if (dk == sim::MemKind::kFram) {
      type = DmaType::kSingle;
    } else if (sk == sim::MemKind::kFram) {
      type = DmaType::kPrivate;
    } else {
      type = DmaType::kAlways;
    }

    if (desc.related_io != kernel::kNoSite) {
      // The transfer moves an I/O operation's output: it must re-run whenever that
      // operation has executed since our last transfer (Section 4.3.1).
      const uint16_t producer_seq = dev.LoadWord(io_meta_[desc.related_io].site_seq_addr);
      force_dep = producer_seq > dev.LoadWord(meta.base + kDmaSeq);
    }

    was_completed = dev.LoadWord(meta.base + kDmaSeq) != 0;

    switch (type) {
      case DmaType::kSingle:
        skip = dev.LoadWord(meta.base + kDmaDone) != 0 && !force_dep;
        break;
      case DmaType::kPrivate: {
        // Two-phase copy through the privatization buffer. Assign this site's slice of
        // the shared buffer on first use.
        EASEIO_CHECK(priv_buf_addr_ != 0, "Private DMA with no privatization buffer");
        uint32_t off_plus1 = dev.LoadWord32(meta.base + kDmaPrivOff);
        if (off_plus1 == 0) {
          const uint32_t cursor = dev.LoadWord32(priv_cursor_addr_);
          EASEIO_CHECK(cursor + nbytes <= config_.dma_priv_buffer_bytes,
                       "DMA privatization buffer exhausted (raise dma_priv_buffer_bytes)");
          dev.StoreWord32(meta.base + kDmaPrivOff, cursor + 1);
          dev.StoreWord32(priv_cursor_addr_, cursor + nbytes);
          off_plus1 = cursor + 1;
        }
        priv_addr = priv_buf_addr_ + (off_plus1 - 1);
        // Phase 1 (source -> buffer) runs once — or again when the source data itself
        // was regenerated by a dependent I/O operation.
        phase1_needed = dev.LoadWord(meta.base + kDmaPhase1) == 0 || force_dep;
        break;
      }
      case DmaType::kAlways:
        break;
    }
  }
  dev.Note(sim::ProbeKind::kDmaResolved, site, static_cast<uint32_t>(type), skip ? 1 : 0,
           force_dep ? 1 : 0);

  // --- Perform the transfer(s) -------------------------------------------------------------
  bool executed = false;
  switch (type) {
    case DmaType::kSingle:
      if (skip) {
        ++dev.stats().dma_skipped;
        dev.Note(sim::ProbeKind::kDmaSkip, site);
      } else {
        ExecuteDmaTagged(ctx, site, dst, src, nbytes, was_completed);
        executed = true;
      }
      break;
    case DmaType::kPrivate:
      if (phase1_needed) {
        // The copy into the privatization buffer is pure runtime machinery — charged
        // as overhead, like the baselines' privatize-in copies.
        sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);
        ExecuteDmaTagged(ctx, site, priv_addr, src, nbytes, /*redundant=*/false);
        dev.StoreWord(meta.base + kDmaPhase1, 1);
      }
      // Phase 2 re-runs on every attempt: the destination is volatile, but it reads the
      // pristine private copy, so later writes to the source cannot corrupt it.
      ExecuteDmaTagged(ctx, site, dst, priv_addr, nbytes, was_completed);
      executed = true;
      break;
    case DmaType::kAlways:
      ExecuteDmaTagged(ctx, site, dst, src, nbytes, was_completed);
      executed = true;
      break;
  }

  // --- Region boundary (Section 4.4) ---------------------------------------------------------
  const uint32_t next_region = meta.region_index + 1;
  if (executed) {
    regional_.EnterRegionAfterDmaExec(ctx, ctx.current_task(), next_region, dst, nbytes);
    sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);
    const uint16_t seq = NextSeq(ctx, ctx.current_task());
    dev.StoreWord(meta.base + kDmaSeq, seq);
    if (type == DmaType::kSingle) {
      // Completion flag only after privatization succeeded: DMA + snapshot are atomic.
      dev.StoreWord(meta.base + kDmaDone, 1);
      dev.Note(sim::ProbeKind::kDmaLocked, site);
    }
  } else {
    regional_.EnterRegion(ctx, ctx.current_task(), next_region);
  }
}

void EaseioRuntime::OnTaskBegin(kernel::TaskCtx& ctx) {
  EASEIO_CHECK(block_stack_.empty(), "task entered with open io blocks");
  {
    sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kOverhead);
    ctx.dev().Cpu(12);  // task prologue + region dispatch
  }
  regional_.EnterRegion(ctx, ctx.current_task(), 0);
}

void EaseioRuntime::OnTaskCommit(kernel::TaskCtx& ctx) {
  const kernel::TaskId task = ctx.current_task();
  {
    sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kOverhead);
    sim::Device& dev = ctx.dev();
    dev.Cpu(10);
    // Invalidate all re-execution state: the next incarnation of this task is new work
    // and must perform its I/O afresh. The invalidation commits *atomically with the
    // task transition* — a power failure that tears it would otherwise re-run the task
    // with some flags cleared, re-executing Single DMAs against already-overwritten
    // sources. The cost is charged first; the words clear only if power holds.
    std::vector<uint32_t> words;
    for (kernel::IoSiteId s = 0; s < io_sites_.size(); ++s) {
      if (io_sites_[s].task != task) {
        continue;
      }
      for (const LaneMeta& lane : io_meta_[s].lanes) {
        words.push_back(lane.base + kLaneFlag);
        words.push_back(lane.base + kLaneSeq);
      }
      words.push_back(io_meta_[s].site_seq_addr);
    }
    for (kernel::IoBlockId b = 0; b < blocks_.size(); ++b) {
      if (blocks_[b].task == task) {
        words.push_back(block_meta_[b].base + kBlockFlag);
      }
    }
    for (kernel::DmaSiteId d = 0; d < dma_sites_.size(); ++d) {
      if (dma_sites_[d].task == task) {
        words.push_back(dma_meta_[d].base + kDmaDone);
        words.push_back(dma_meta_[d].base + kDmaPhase1);
        words.push_back(dma_meta_[d].base + kDmaSeq);
      }
    }
    regional_.CollectFlagAddrs(task, &words);
    auto it = task_seq_addr_.find(task);
    if (it != task_seq_addr_.end()) {
      words.push_back(it->second);
    }
    dev.Spend(static_cast<uint64_t>(words.size()) * sim::kFramWriteCycles,
              static_cast<double>(words.size()) * sim::kFramWriteEnergyJ);
    for (uint32_t addr : words) {
      dev.mem().Write16(addr, 0);
    }
  }
  kernel::Runtime::OnTaskCommit(ctx);
}

void EaseioRuntime::OnReboot() { block_stack_.clear(); }

void EaseioRuntime::AppendStateMask(
    std::vector<kernel::Runtime::StateMaskRange>& out) const {
  for (const SiteMeta& site : io_meta_) {
    for (const LaneMeta& lane : site.lanes) {
      out.push_back({lane.base + kLaneTs, 4});
    }
  }
  for (const BlockMeta& block : block_meta_) {
    out.push_back({block.base + kBlockTs, 4});
  }
}

uint32_t EaseioRuntime::CodeSizeBytes() const {
  uint32_t lanes = 0;
  for (const kernel::IoSiteDesc& d : io_sites_) {
    lanes += d.lanes > 1 ? 1 : 0;  // loop sites share one generated guard
  }
  // Runtime core (semantic dispatch, DMA classifier, regional machinery) plus the
  // generated guard code per construct.
  return 1650 + 42 * static_cast<uint32_t>(io_sites_.size()) + 12 * lanes +
         28 * static_cast<uint32_t>(blocks_.size()) +
         68 * static_cast<uint32_t>(dma_sites_.size()) + 30 * regional_.TotalRegions();
}

bool EaseioRuntime::SiteDone(kernel::IoSiteId site, uint32_t lane) const {
  return dev_->mem().Read16(io_meta_[site].lanes[lane].base + kLaneFlag) != 0;
}

bool EaseioRuntime::BlockDone(kernel::IoBlockId block) const {
  return dev_->mem().Read16(block_meta_[block].base + kBlockFlag) != 0;
}

bool EaseioRuntime::DmaDone(kernel::DmaSiteId site) const {
  return dev_->mem().Read16(dma_meta_[site].base + kDmaDone) != 0;
}

}  // namespace easeio::rt
