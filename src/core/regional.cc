#include "core/regional.h"

namespace easeio::rt {

namespace {

// Spend the bus cost, then move the bytes atomically (see baselines/alpaca.cc for the
// rationale; the same torn-copy argument applies to snapshots and restores).
void ChargedAtomicCopy(sim::Device& dev, uint32_t dst, uint32_t src, uint32_t nbytes) {
  const uint32_t words = (nbytes + 1) / 2;
  dev.Spend(static_cast<uint64_t>(words) * (sim::kFramReadCycles + sim::kFramWriteCycles),
            static_cast<double>(words) * (sim::kFramReadEnergyJ + sim::kFramWriteEnergyJ));
  dev.mem().Copy(dst, src, nbytes);
}

}  // namespace

void RegionalPrivatizer::SetTaskRegions(kernel::TaskId task,
                                        std::vector<std::vector<kernel::NvSlotId>> regions) {
  EASEIO_CHECK(dev_ != nullptr, "SetTaskRegions before Bind");
  EASEIO_CHECK(!regions.empty(), "a task has at least one region");
  EASEIO_CHECK(tasks_.find(task) == tasks_.end(), "task regions already declared");

  std::vector<Region> out;
  out.reserve(regions.size());
  for (size_t r = 0; r < regions.size(); ++r) {
    Region region;
    region.slots = regions[r];
    uint32_t snap_size = 0;
    for (kernel::NvSlotId id : region.slots) {
      snap_size += nv_->slot(id).size;
    }
    const std::string tag =
        "easeio.region." + std::to_string(task) + "." + std::to_string(r);
    region.flag_addr =
        dev_->mem().AllocFram(tag + ".flag", 2, sim::AllocPurpose::kRuntimeMeta);
    if (snap_size > 0) {
      region.snap_addr =
          dev_->mem().AllocFram(tag + ".snap", snap_size, sim::AllocPurpose::kRuntimeMeta);
    }
    region.snap_size = snap_size;
    out.push_back(std::move(region));
    ++total_regions_;
  }
  tasks_[task] = std::move(out);
}

uint32_t RegionalPrivatizer::RegionCount(kernel::TaskId task) const {
  auto it = tasks_.find(task);
  return it == tasks_.end() ? 0 : static_cast<uint32_t>(it->second.size());
}

void RegionalPrivatizer::EnterRegion(kernel::TaskCtx& ctx, kernel::TaskId task, uint32_t r) {
  auto it = tasks_.find(task);
  if (it == tasks_.end()) {
    return;  // undeclared task: single implicit region, nothing privatized
  }
  EASEIO_CHECK(r < it->second.size(), "region index out of range");
  Region& region = it->second[r];

  sim::Device& dev = ctx.dev();
  sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);

  const bool priv_done = dev.LoadWord(region.flag_addr) != 0;
  dev.Note(sim::ProbeKind::kRegionEnter, task, r, priv_done ? 1 : 0);
  if (!priv_done) {
    // First arrival in this incarnation: snapshot the region's variables, then set the
    // flag last so a torn snapshot is simply re-taken from (still unmodified)
    // originals.
    uint32_t off = 0;
    for (kernel::NvSlotId id : region.slots) {
      const kernel::NvSlot& s = nv_->slot(id);
      ChargedAtomicCopy(dev, region.snap_addr + off, s.addr, s.size);
      off += s.size;
    }
    dev.StoreWord(region.flag_addr, 1);
    dev.Note(sim::ProbeKind::kPrivCopy, task, r, 0, region.snap_size);
  } else {
    // Re-arrival after a power failure: recover the region's variables. Restoring is
    // idempotent, so a failure mid-restore is harmless.
    uint32_t off = 0;
    for (kernel::NvSlotId id : region.slots) {
      const kernel::NvSlot& s = nv_->slot(id);
      ChargedAtomicCopy(dev, s.addr, region.snap_addr + off, s.size);
      off += s.size;
    }
    dev.Note(sim::ProbeKind::kPrivCopy, task, r, 1, region.snap_size);
  }
}

void RegionalPrivatizer::EnterRegionAfterDmaExec(kernel::TaskCtx& ctx, kernel::TaskId task,
                                                 uint32_t r, uint32_t dst, uint32_t dst_size) {
  auto it = tasks_.find(task);
  if (it == tasks_.end()) {
    return;
  }
  EASEIO_CHECK(r < it->second.size(), "region index out of range");
  Region& region = it->second[r];

  sim::Device& dev = ctx.dev();
  sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);

  const bool priv_done = dev.LoadWord(region.flag_addr) != 0;
  dev.Note(sim::ProbeKind::kRegionEnter, task, r, 2);
  uint32_t off = 0;
  if (priv_done) {
    // Undo partial CPU writes from the failed attempt, except where the fresh DMA
    // output now lives.
    uint32_t restored = 0;
    for (kernel::NvSlotId id : region.slots) {
      const kernel::NvSlot& s = nv_->slot(id);
      const bool overlaps = s.addr < dst + dst_size && dst < s.addr + s.size;
      if (!overlaps) {
        ChargedAtomicCopy(dev, s.addr, region.snap_addr + off, s.size);
        restored += s.size;
      }
      off += s.size;
    }
    dev.Note(sim::ProbeKind::kPrivCopy, task, r, 1, restored);
  }
  // (Re-)snapshot: later recoveries must reproduce the post-DMA state.
  off = 0;
  for (kernel::NvSlotId id : region.slots) {
    const kernel::NvSlot& s = nv_->slot(id);
    ChargedAtomicCopy(dev, region.snap_addr + off, s.addr, s.size);
    off += s.size;
  }
  dev.StoreWord(region.flag_addr, 1);
  dev.Note(sim::ProbeKind::kPrivCopy, task, r, 0, region.snap_size);
}

void RegionalPrivatizer::InvalidateFrom(kernel::TaskCtx& ctx, kernel::TaskId task, uint32_t r) {
  auto it = tasks_.find(task);
  if (it == tasks_.end()) {
    return;
  }
  sim::Device& dev = ctx.dev();
  sim::Device::PhaseScope scope(dev, sim::Phase::kOverhead);
  for (uint32_t k = r; k < it->second.size(); ++k) {
    dev.StoreWord(it->second[k].flag_addr, 0);
  }
}

void RegionalPrivatizer::OnTaskCommit(kernel::TaskCtx& ctx, kernel::TaskId task) {
  InvalidateFrom(ctx, task, 0);
}

void RegionalPrivatizer::CollectFlagAddrs(kernel::TaskId task,
                                          std::vector<uint32_t>* out) const {
  auto it = tasks_.find(task);
  if (it == tasks_.end()) {
    return;
  }
  for (const Region& r : it->second) {
    out->push_back(r.flag_addr);
  }
}

}  // namespace easeio::rt
