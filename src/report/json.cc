#include "report/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "platform/check.h"

namespace easeio::report {
namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

template <typename T>
void AppendNumber(std::string& out, T value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  EASEIO_CHECK(res.ec == std::errc(), "number formatting failed");
  out.append(buf, res.ptr);
}

}  // namespace

void JsonWriter::BeforeValue() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // the separator was written with the key
  }
  EASEIO_CHECK(stack_.empty() || !stack_.back(),
               "JSON object members need Key() before the value");
  if (!first_in_scope_) {
    out_ += ',';
  }
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(true);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  EASEIO_CHECK(!stack_.empty() && stack_.back() && !key_pending_,
               "EndObject without matching BeginObject");
  stack_.pop_back();
  out_ += '}';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(false);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  EASEIO_CHECK(!stack_.empty() && !stack_.back(), "EndArray without matching BeginArray");
  stack_.pop_back();
  out_ += ']';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  EASEIO_CHECK(!stack_.empty() && stack_.back() && !key_pending_,
               "Key() only valid directly inside an object");
  if (!first_in_scope_) {
    out_ += ',';
  }
  first_in_scope_ = false;
  out_ += '"';
  AppendEscaped(out_, key);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  AppendEscaped(out_, value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  AppendNumber(out_, value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  AppendNumber(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  AppendNumber(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::TakeString() {
  EASEIO_CHECK(stack_.empty() && !key_pending_, "unterminated JSON document");
  return std::move(out_);
}

}  // namespace easeio::report
