#include "report/jobs.h"

#include <utility>

#include "report/json.h"

namespace easeio::report {

namespace {

constexpr std::pair<const char*, apps::AppKind> kAppNames[] = {
    {"dma", apps::AppKind::kDma},         {"temp", apps::AppKind::kTemp},
    {"lea", apps::AppKind::kLea},         {"fir", apps::AppKind::kFir},
    {"weather", apps::AppKind::kWeather}, {"branch", apps::AppKind::kBranch},
};

constexpr std::pair<const char*, apps::RuntimeKind> kRuntimeNames[] = {
    {"alpaca", apps::RuntimeKind::kAlpaca},      {"ink", apps::RuntimeKind::kInk},
    {"samoyed", apps::RuntimeKind::kSamoyed},    {"easeio", apps::RuntimeKind::kEaseio},
    {"easeio-op", apps::RuntimeKind::kEaseioOp}, {"easeio_op", apps::RuntimeKind::kEaseioOp},
};

}  // namespace

bool ParseApp(const std::string& name, apps::AppKind* out) {
  for (const auto& [n, kind] : kAppNames) {
    if (name == n) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseRuntime(const std::string& name, apps::RuntimeKind* out) {
  for (const auto& [n, kind] : kRuntimeNames) {
    if (name == n) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseAppList(const std::string& name, std::vector<apps::AppKind>* out) {
  if (name == "all") {
    out->assign(std::begin(apps::kAllApps), std::end(apps::kAllApps));
    return true;
  }
  if (name == "unitask") {
    out->assign(std::begin(apps::kUnitaskApps), std::end(apps::kUnitaskApps));
    return true;
  }
  apps::AppKind kind;
  if (!ParseApp(name, &kind)) {
    return false;
  }
  out->assign(1, kind);
  return true;
}

bool ParseRuntimeList(const std::string& name, std::vector<apps::RuntimeKind>* out) {
  if (name == "all") {
    out->assign({apps::RuntimeKind::kAlpaca, apps::RuntimeKind::kInk,
                 apps::RuntimeKind::kSamoyed, apps::RuntimeKind::kEaseio,
                 apps::RuntimeKind::kEaseioOp});
    return true;
  }
  apps::RuntimeKind kind;
  if (!ParseRuntime(name, &kind)) {
    return false;
  }
  out->assign(1, kind);
  return true;
}

const char* AppName(apps::AppKind kind) {
  for (const auto& [n, k] : kAppNames) {
    if (k == kind) {
      return n;
    }
  }
  return "?";
}

const char* RuntimeName(apps::RuntimeKind kind) {
  // First table match wins, so kEaseioOp renders as "easeio-op" (its primary
  // spelling), not the "easeio_op" alias.
  for (const auto& [n, k] : kRuntimeNames) {
    if (k == kind) {
      return n;
    }
  }
  return "?";
}

ExploreJobResult ExecuteExploreJob(const ExploreJob& job) {
  ExploreJobResult out;
  for (apps::AppKind app : job.apps) {
    for (apps::RuntimeKind rt : job.runtimes) {
      chk::ExploreConfig cfg = job.base;
      cfg.app = app;
      cfg.runtime = rt;
      out.results.push_back(chk::Explore(cfg));
      out.configs.push_back(cfg);
      out.total_violations += out.results.back().violations.size();
    }
  }
  return out;
}

SweepJobResult ExecuteSweepJob(const SweepJob& job) {
  SweepJobResult out;
  for (apps::AppKind app : job.apps) {
    for (apps::RuntimeKind rt : job.runtimes) {
      ExperimentConfig cfg = job.base;
      cfg.app = app;
      cfg.runtime = rt;
      SweepCell cell;
      cell.app = app;
      cell.runtime = rt;
      cell.aggregate = RunSweep(cfg, job.runs, job.jobs);
      out.cells.push_back(cell);
    }
  }
  return out;
}

std::string SweepJobJson(const SweepJob& job, const SweepJobResult& result,
                         const std::string& artifact_name) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("easeio-bench/1");
  w.Key("artifact").String(artifact_name);
  w.Key("description").String("parametrized sweep grid (daemon/easectl job)");
  w.Key("config").BeginObject();
  w.Key("runs").UInt(job.runs);
  w.Key("seed").UInt(job.base.seed);
  w.Key("regional").Bool(job.base.easeio_regional_privatization);
  w.Key("tick_us").UInt(job.base.timekeeper_tick_us);
  w.EndObject();
  w.Key("cells").BeginArray();
  for (const SweepCell& cell : result.cells) {
    const Aggregate& agg = cell.aggregate;
    w.BeginObject();
    w.Key("labels").BeginObject();
    w.Key("app").String(apps::ToString(cell.app));
    w.Key("runtime").String(apps::ToString(cell.runtime));
    w.EndObject();
    w.Key("metrics").BeginObject();
    w.Key("runs").Double(static_cast<double>(agg.runs));
    w.Key("completed").Double(static_cast<double>(agg.completed));
    w.Key("correct").Double(static_cast<double>(agg.correct));
    w.Key("incorrect").Double(static_cast<double>(agg.incorrect));
    w.Key("total_us").Double(agg.total_us);
    w.Key("app_us").Double(agg.app_us);
    w.Key("overhead_us").Double(agg.overhead_us);
    w.Key("wasted_us").Double(agg.wasted_us);
    w.Key("energy_mj").Double(agg.energy_mj);
    w.Key("wall_us").Double(agg.wall_us);
    w.Key("power_failures").Double(static_cast<double>(agg.power_failures));
    w.Key("io_reexecutions").Double(static_cast<double>(agg.io_reexecutions));
    w.Key("io_skipped").Double(static_cast<double>(agg.io_skipped));
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace easeio::report
