#include "report/experiment.h"

#include "platform/check.h"
#include "platform/parallel.h"
#include "sim/failure.h"
#include "sim/harvester.h"

namespace easeio::report {

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  std::unique_ptr<sim::Device> device;
  return RunExperiment(config, device);
}

ExperimentResult RunExperiment(const ExperimentConfig& config,
                               std::unique_ptr<sim::Device>& device) {
  return RunExperiment(config, device, RunHooks{});
}

ExperimentResult RunExperiment(const ExperimentConfig& config,
                               std::unique_ptr<sim::Device>& device, const RunHooks& hooks) {
  // Assemble the failure source.
  sim::NeverFailScheduler never;
  sim::UniformTimerScheduler timer(config.on_min_us, config.on_max_us, config.off_min_us,
                                   config.off_max_us);
  sim::CapacitorScheduler cap_sched;
  sim::RfHarvester harvester(config.rf_distance_in > 0 ? config.rf_distance_in : 52.0,
                             config.rf_reference_power_w,
                             /*reference_distance_in=*/52.0, /*jitter=*/0.35,
                             DeriveSeed(config.seed, 9));

  sim::DeviceConfig dev_config;
  dev_config.seed = config.seed;
  dev_config.timekeeper_tick_us = config.timekeeper_tick_us;
  dev_config.cap_sample_period_us = config.cap_sample_period_us;

  sim::FailureScheduler* scheduler = &timer;
  const sim::Harvester* harv = nullptr;
  if (config.continuous) {
    scheduler = &never;
  } else if (config.rf_distance_in > 0) {
    scheduler = &cap_sched;
    dev_config.use_capacitor = true;
    dev_config.capacitance_f = config.capacitance_f;
    // Boot near the turn-on threshold with little headroom above it: the run is powered
    // by ongoing harvest, not by a pre-charged reservoir.
    dev_config.v_max = 3.2;
    harv = &harvester;
  }

  // Reuse the caller's device when it already exists: Reset re-zeros only the used
  // arena prefixes instead of constructing (and zero-filling) fresh arenas per run.
  if (device == nullptr) {
    device = std::make_unique<sim::Device>(dev_config, *scheduler, harv);
  } else {
    device->Reset(dev_config, *scheduler, harv);
  }
  sim::Device& dev = *device;
  if (hooks.sink != nullptr) {
    dev.AddSink(hooks.sink);
  }
  if (hooks.probe) {
    dev.AddProbe(hooks.probe);
  }
  kernel::NvManager nv(dev.mem());
  rt::EaseioConfig easeio_config;
  easeio_config.dma_priv_buffer_bytes = config.easeio_priv_buffer_bytes;
  easeio_config.enable_regional_privatization = config.easeio_regional_privatization;
  auto runtime = apps::MakeRuntime(config.runtime, easeio_config);
  runtime->Bind(dev, nv);

  apps::AppOptions options = config.app_options;
  if (apps::IsEaseioOp(config.runtime)) {
    options.exclude_const_dma = true;
  }
  apps::AppHandle app = apps::BuildApp(config.app, dev, *runtime, nv, options);

  kernel::Engine engine;
  ExperimentResult result;
  result.run = engine.Run(dev, *runtime, nv, app.graph, app.entry);
  result.consistent = result.run.completed && app.check_consistent(dev);
  result.radio_sends = dev.radio().sends();
  result.output = app.collect_output(dev);

  result.fram_app_bytes = dev.mem().AllocatedBytes(sim::MemKind::kFram,
                                                   sim::AllocPurpose::kAppData);
  result.fram_meta_bytes =
      dev.mem().AllocatedBytes(sim::MemKind::kFram, sim::AllocPurpose::kRuntimeMeta) +
      dev.mem().AllocatedBytes(sim::MemKind::kFram, sim::AllocPurpose::kPrivBuffer);
  result.sram_bytes = dev.mem().AllocatedBytes(sim::MemKind::kSram);
  result.code_bytes = runtime->CodeSizeBytes();
  if (hooks.inspect) {
    hooks.inspect(RunStackView{dev, *runtime, nv, app});
  }
  return result;
}

Aggregate RunSweep(const ExperimentConfig& base, uint32_t runs, uint32_t jobs) {
  // Each worker constructs one device on its first seed and reuses it (Device::Reset)
  // for every subsequent seed it claims; the runtime/app layer is rebuilt per seed.
  // Results land in index-addressed slots, so which worker ran which seed is
  // invisible in the output.
  std::vector<ExperimentResult> slots(runs);
  platform::ParallelForWithState(
      jobs, runs, [] { return std::unique_ptr<sim::Device>(); },
      [&](std::unique_ptr<sim::Device>& device, size_t i) {
        ExperimentConfig config = base;
        config.seed = base.seed + i;
        slots[i] = RunExperiment(config, device);
      });

  // Fold sequentially in seed order: the floating-point accumulation order is fixed,
  // so the Aggregate is byte-identical for any jobs count (and to the pre-parallel
  // serial loop, which interleaved the same operations in the same order).
  Aggregate agg;
  agg.runs = runs;
  for (const ExperimentResult& r : slots) {
    agg.total_us += r.run.stats.TotalUs();
    agg.app_us += r.run.stats.app_us;
    agg.overhead_us += r.run.stats.overhead_us;
    agg.wasted_us += r.run.stats.wasted_us;
    agg.energy_mj += r.run.energy_j * 1e3;
    agg.wall_us += static_cast<double>(r.run.wall_us);
    agg.power_failures += r.run.stats.power_failures;
    agg.io_reexecutions += r.run.stats.io_redundant + r.run.stats.dma_redundant;
    agg.io_skipped += r.run.stats.io_skipped + r.run.stats.dma_skipped;
    if (r.run.completed) {
      ++agg.completed;
    }
    if (r.consistent) {
      ++agg.correct;
    } else {
      ++agg.incorrect;
    }
  }
  // Means divide by the requested run count — deliberately including trials stopped
  // by the non-termination guard (see Aggregate's field-semantics contract in
  // experiment.h). `completed` reports how many actually finished.
  if (runs > 0) {
    agg.total_us /= runs;
    agg.app_us /= runs;
    agg.overhead_us /= runs;
    agg.wasted_us /= runs;
    agg.energy_mj /= runs;
    agg.wall_us /= runs;
  }
  return agg;
}

chk::ExploreResult RunExploration(const ExperimentConfig& config,
                                  const ExplorationOptions& options) {
  chk::ExploreConfig c;
  c.app = config.app;
  c.runtime = config.runtime;
  c.seed = config.seed;
  c.app_options = config.app_options;
  c.easeio_priv_buffer_bytes = config.easeio_priv_buffer_bytes;
  c.easeio_regional_privatization = config.easeio_regional_privatization;
  c.timekeeper_tick_us = config.timekeeper_tick_us;
  c.depth = options.depth;
  c.budget = options.budget;
  c.jobs = options.jobs;
  c.off_us = options.off_us;
  c.max_on_us = options.max_on_us;
  c.use_snapshot = options.use_snapshot;
  return chk::Explore(c);
}

}  // namespace easeio::report
