// Minimal streaming JSON writer for the machine-readable bench artifacts.
//
// Deterministic by construction: fields are emitted in call order, numbers are
// formatted with std::to_chars (shortest round-trip, locale-independent), and there
// is no map reordering anywhere — the same sequence of calls yields byte-identical
// output on every platform and for any worker count upstream.

#ifndef EASEIO_REPORT_JSON_H_
#define EASEIO_REPORT_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace easeio::report {

// Streaming writer: Begin/End pairs must nest correctly and every object member must
// be introduced with Key(); misuse trips an EASEIO_CHECK. Calls chain:
//
//   JsonWriter w;
//   w.BeginObject().Key("runs").UInt(1000).Key("cells").BeginArray() ... ;
//   std::string json = w.TakeString();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Introduces the next object member.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  // Non-finite doubles (the sweep aggregates never produce them, but a defensive
  // writer must not emit invalid JSON) are serialized as null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices pre-serialized JSON verbatim (used by the bench_all merge). The caller
  // vouches for its validity.
  JsonWriter& Raw(std::string_view json);

  // Returns the finished document; all Begin* calls must be closed.
  std::string TakeString();

 private:
  // Emits the separator/indentation due before a value or key at this position.
  void BeforeValue();

  std::string out_;
  // One entry per open container: true = object (expects keys), false = array.
  std::vector<bool> stack_;
  bool key_pending_ = false;   // a Key() was written, next call must be its value
  bool first_in_scope_ = true;  // no comma before the first element of a container
};

}  // namespace easeio::report

#endif  // EASEIO_REPORT_JSON_H_
