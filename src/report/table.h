// Plain-text table and bar rendering for the benchmark harnesses — the figures are
// printed as labelled stacked bars, the tables as aligned columns, mirroring the
// paper's layout closely enough to compare side by side.

#ifndef EASEIO_REPORT_TABLE_H_
#define EASEIO_REPORT_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace easeio::report {

// Columnar table with a header row; widths auto-fit.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Renders to stdout with a rule under the header.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// One stacked horizontal bar: segments are (label, value) pairs rendered with distinct
// fill characters plus a numeric legend.
struct BarSegment {
  std::string label;
  double value;
};

// Prints `bars` (one per row label) on a shared scale of `width` characters.
void PrintStackedBars(const std::vector<std::pair<std::string, std::vector<BarSegment>>>& bars,
                      const std::string& unit, int width = 60);

// Formats a double with fixed precision.
std::string Fmt(double v, int precision = 1);

}  // namespace easeio::report

#endif  // EASEIO_REPORT_TABLE_H_
