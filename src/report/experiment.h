// Experiment harness: builds (device, runtime, app) triples from a declarative config,
// runs them under the paper's failure emulation (or a real-harvester capacitor model),
// and aggregates the metrics the evaluation section reports — wasted work, overhead,
// energy, power failures, redundant I/O, and execution correctness.

#ifndef EASEIO_REPORT_EXPERIMENT_H_
#define EASEIO_REPORT_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "apps/registry.h"
#include "apps/runtime_factory.h"
#include "chk/explorer.h"
#include "kernel/engine.h"

namespace easeio::report {

// The app registry (enum, ToString, BuildApp) lives in apps/registry.h; the alias
// keeps the many existing report::AppKind call sites working.
using AppKind = apps::AppKind;

struct ExperimentConfig {
  apps::RuntimeKind runtime = apps::RuntimeKind::kEaseio;
  AppKind app = AppKind::kTemp;
  uint64_t seed = 1;
  apps::AppOptions app_options;

  // Continuous power (golden runs for correctness baselines and Table 5).
  bool continuous = false;

  // EaseIO runtime configuration (ablations): privatization buffer size and the
  // regional-privatization switch.
  uint32_t easeio_priv_buffer_bytes = 4096;
  bool easeio_regional_privatization = true;

  // Persistent-timekeeper tick (Timely granularity ablation).
  uint64_t timekeeper_tick_us = 100;

  // The paper's failure emulation: an MCU timer fires after a uniform [5, 20] ms
  // on-interval and soft-resets the (externally powered) board, so the dark gap is just
  // the reset/reboot latency — short relative to the 10 ms Timely windows. Freshness
  // then expires from elapsed *execution* time, not recharge time, which is what makes
  // Timely skip some but not all re-reads (Table 4's 43%).
  uint64_t on_min_us = 5'000;
  uint64_t on_max_us = 20'000;
  uint64_t off_min_us = 200;
  uint64_t off_max_us = 1'000;

  // Real-harvester mode (Figure 13): capacitor-driven failures fed by an RF harvester
  // at this distance. Zero keeps timer emulation.
  double rf_distance_in = 0.0;
  // Harvest received at 52 inches; falls off with the square of distance. Calibrated so
  // the harvest rate crosses the weather app's mean draw inside the 52-64 in window.
  double rf_reference_power_w = 0.30e-3;
  // Storage capacitor used in harvester mode. Scaled below the paper's 1 mF so that a
  // single application run actually exercises brown-outs (see DESIGN.md).
  double capacitance_f = 6e-6;

  // Periodic kCapSample probe emission (see sim::DeviceConfig::cap_sample_period_us);
  // 0 keeps it off. Only meaningful together with RunHooks::probe — sampling is
  // host-side observation and never perturbs the run.
  uint64_t cap_sample_period_us = 0;
};

struct ExperimentResult {
  kernel::RunResult run;
  bool consistent = true;
  uint64_t radio_sends = 0;

  // Footprint snapshot (Table 6).
  uint32_t fram_app_bytes = 0;
  uint32_t fram_meta_bytes = 0;  // runtime metadata + privatization buffers
  uint32_t sram_bytes = 0;
  uint32_t code_bytes = 0;

  std::vector<uint8_t> output;
};

// Builds and runs a single experiment.
ExperimentResult RunExperiment(const ExperimentConfig& config);

// Device-reusing variant: `device` is a caller-owned slot. Null on entry constructs a
// fresh device into it; otherwise the existing device is Reset in place (arenas are
// re-zeroed, not reallocated) and reused — the per-worker stack-reuse path RunSweep
// and the bench harnesses drive. The device's failure source and harvester are rebound
// on every call and are only valid during the call; results are identical to the
// fresh-construction overload.
ExperimentResult RunExperiment(const ExperimentConfig& config,
                               std::unique_ptr<sim::Device>& device);

// --- Instrumented runs (src/obs) ------------------------------------------------------
// Read-only access to the assembled execution stack, valid only inside
// RunHooks::inspect (the stack is torn down when RunExperiment returns).
struct RunStackView {
  sim::Device& dev;
  kernel::Runtime& runtime;
  kernel::NvManager& nv;
  apps::AppHandle& app;
};

// Optional observation hooks for a run. `sink` subscribes to the device's batched
// probe stream (Device::AddSink — the allocation-free path; it must outlive the run);
// `probe` is the per-event convenience wrapper (Device::AddProbe) and may coexist
// with it. `inspect` runs once after the engine finishes — probes flushed — before
// teardown, so callers can read name tables and final state. All of these observe
// only: an instrumented run is bit-identical to an uninstrumented one.
struct RunHooks {
  sim::ProbeSink* sink = nullptr;
  sim::ProbeFn probe;
  std::function<void(const RunStackView&)> inspect;
};

// Hook-carrying variant of the device-reusing overload; identical semantics plus the
// observation hooks above.
ExperimentResult RunExperiment(const ExperimentConfig& config,
                               std::unique_ptr<sim::Device>& device, const RunHooks& hooks);

// Aggregate over `runs` experiments with seeds base.seed + {0 .. runs-1}.
//
// Field semantics (relied on by the bench harnesses — do not change silently):
//  * `runs` is always the *requested* sweep size, even when some trials hit the
//    kernel's non-termination guard. Every trial is counted exactly once as either
//    `correct` or `incorrect` (correct + incorrect == runs), so percentage columns
//    such as bench_fig12_correctness's `incorrect / runs` use a stable denominator.
//  * The mean fields (total_us .. wall_us) average over all `runs` — a trial stopped
//    by the guard contributes the time/energy it burned up to the guard. How many
//    trials actually finished is reported separately in `completed`; callers that
//    want "mean over completed runs only" must rescale by runs / completed.
//  * The counter fields (power_failures, io_reexecutions, io_skipped) are sums over
//    all runs, matching the paper's Table 4 presentation.
struct Aggregate {
  uint32_t runs = 0;       // requested sweep size (the divisor for every mean below)
  double total_us = 0;     // mean on-time
  double app_us = 0;       // mean useful app time
  double overhead_us = 0;  // mean runtime overhead
  double wasted_us = 0;    // mean wasted work
  double energy_mj = 0;    // mean energy (millijoules)
  double wall_us = 0;      // mean wall time (on + off)
  uint64_t power_failures = 0;   // summed over all runs (Table 4 style)
  uint64_t io_reexecutions = 0;  // summed redundant I/O + DMA transfers
  uint64_t io_skipped = 0;       // summed operations elided by semantics
  uint32_t correct = 0;          // consistent runs; correct + incorrect == runs
  uint32_t incorrect = 0;        // inconsistent runs (includes non-terminating ones)
  uint32_t completed = 0;  // runs that finished before the non-termination guard
};

// Runs the sweep on `jobs` worker threads (0 = hardware concurrency). Each worker
// constructs one device and reuses it across its seeds via Device::Reset (the
// runtime/app layer is rebuilt per seed); per-seed results land in index-addressed
// slots and fold sequentially in seed order — the Aggregate is byte-identical
// (floating point included) for any `jobs` value.
Aggregate RunSweep(const ExperimentConfig& base, uint32_t runs, uint32_t jobs = 0);

// --- Failure-schedule exploration (src/chk) -------------------------------------------
// Systematically enumerates depth-1/depth-2 failure placements over the instants a
// reference run visits, re-executes the app at each, and checks the safety invariants
// (output equivalence, Single at-most-once, Timely freshness, DMA integrity, WAR
// commit semantics). The experiment's scheduler fields are ignored — failures come
// from the enumerated schedules.
struct ExplorationOptions {
  int depth = 2;        // 1: single failures; 2: also pairs
  uint32_t budget = 1500;  // schedule cap per exploration (deterministic subsampling)
  uint32_t jobs = 0;    // worker threads; 0 = hardware concurrency
  uint64_t off_us = 700;
  uint64_t max_on_us = 60'000'000;
  // Snapshot-at-reboot resumption for depth-2 groups (see chk::ExploreConfig).
  bool use_snapshot = true;
};

chk::ExploreResult RunExploration(const ExperimentConfig& config,
                                  const ExplorationOptions& options = {});

}  // namespace easeio::report

#endif  // EASEIO_REPORT_EXPERIMENT_H_
