#include "report/table.h"

#include <algorithm>
#include <cstdio>

namespace easeio::report {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%c %-*s", c == 0 ? '|' : ' ', static_cast<int>(width[c]), row[c].c_str());
      std::printf(" |");
    }
    std::printf("\n");
  };
  print_row(header_);
  size_t total = 1;
  for (size_t c = 0; c < header_.size(); ++c) {
    total += width[c] + 3;
  }
  for (size_t i = 0; i < total; ++i) {
    std::printf("-");
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintStackedBars(const std::vector<std::pair<std::string, std::vector<BarSegment>>>& bars,
                      const std::string& unit, int width) {
  static const char kFill[] = {'#', '=', '.', '+', '~'};
  double max_total = 0;
  size_t label_w = 0;
  for (const auto& [label, segs] : bars) {
    double total = 0;
    for (const auto& s : segs) {
      total += s.value;
    }
    max_total = std::max(max_total, total);
    label_w = std::max(label_w, label.size());
  }
  if (max_total <= 0) {
    max_total = 1;
  }
  for (const auto& [label, segs] : bars) {
    std::printf("  %-*s |", static_cast<int>(label_w), label.c_str());
    double total = 0;
    for (size_t i = 0; i < segs.size(); ++i) {
      const int chars =
          static_cast<int>(segs[i].value / max_total * static_cast<double>(width) + 0.5);
      for (int c = 0; c < chars; ++c) {
        std::printf("%c", kFill[i % sizeof(kFill)]);
      }
      total += segs[i].value;
    }
    std::printf("  %s %s  (", Fmt(total).c_str(), unit.c_str());
    for (size_t i = 0; i < segs.size(); ++i) {
      std::printf("%s%s %s", i == 0 ? "" : ", ", segs[i].label.c_str(),
                  Fmt(segs[i].value).c_str());
    }
    std::printf(")\n");
  }
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace easeio::report
