// Reusable job-execution entry points shared by the one-shot CLIs and the easeiod
// daemon (src/daemon/).
//
// Each job kind that used to live inline in a tool's main() — the easechk exploration
// grid, the sweep grids the bench binaries run — is factored here as a pure
// function from a declarative spec to a result, with no process-global state and no
// output side effects. The CLIs render/serialize the result exactly as before (their
// stdout and JSON bytes are unchanged); the daemon executes the same functions from
// its worker pool and caches the deterministic artifacts by content hash. Determinism
// is the contract that makes that cache sound: for a fixed spec, every field consumed
// downstream (and the JSON serialization built from it) is byte-identical across
// runs, jobs counts, and engine modes (timing excluded — see chk::ToJson).

#ifndef EASEIO_REPORT_JOBS_H_
#define EASEIO_REPORT_JOBS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chk/explorer.h"
#include "report/experiment.h"

namespace easeio::report {

// --- Shared name <-> enum parsing ----------------------------------------------------
// One table for every surface that accepts app/runtime names (easechk, easetrace,
// easectl, the daemon protocol), so a new workload needs exactly one edit.

// Parses a single app name ("dma", "weather", ...). Returns false on unknown names.
bool ParseApp(const std::string& name, apps::AppKind* out);

// Parses a single runtime name ("alpaca", "easeio-op", ...).
bool ParseRuntime(const std::string& name, apps::RuntimeKind* out);

// Parses an app list name: a single app, "unitask" (dma+temp+lea), or "all".
bool ParseAppList(const std::string& name, std::vector<apps::AppKind>* out);

// Parses a runtime list name: a single runtime or "all".
bool ParseRuntimeList(const std::string& name, std::vector<apps::RuntimeKind>* out);

// Canonical lowercase CLI names — the inverses of ParseApp/ParseRuntime, distinct
// from the display names apps::ToString renders into tables ("dma" vs "DMA").
const char* AppName(apps::AppKind kind);
const char* RuntimeName(apps::RuntimeKind kind);

// --- Exploration jobs (the easechk body) ---------------------------------------------

// One exploration grid: the cross product of apps x runtimes, each explored with the
// shared base config (base.app / base.runtime are overwritten per cell).
struct ExploreJob {
  std::vector<apps::AppKind> apps;
  std::vector<apps::RuntimeKind> runtimes;
  chk::ExploreConfig base;
};

struct ExploreJobResult {
  // Parallel vectors in grid order (apps outer, runtimes inner) — exactly the
  // iteration order easechk always used.
  std::vector<chk::ExploreResult> results;
  std::vector<chk::ExploreConfig> configs;
  size_t total_violations = 0;
};

// Runs the grid. Deterministic for any base.jobs value (chk::Explore's guarantee).
ExploreJobResult ExecuteExploreJob(const ExploreJob& job);

// --- Sweep jobs (the bench-binary body, parametrized) --------------------------------

// One sweep grid over apps x runtimes under the paper's failure emulation; each cell
// aggregates `runs` seeds starting at base.seed.
struct SweepJob {
  std::vector<apps::AppKind> apps;
  std::vector<apps::RuntimeKind> runtimes;
  ExperimentConfig base;
  uint32_t runs = 100;
  uint32_t jobs = 0;  // worker threads per cell; results identical for any value
};

struct SweepCell {
  apps::AppKind app;
  apps::RuntimeKind runtime;
  Aggregate aggregate;
};

struct SweepJobResult {
  std::vector<SweepCell> cells;  // grid order (apps outer, runtimes inner)
};

// Runs the grid through RunSweep. Deterministic: byte-identical aggregates
// (floating point included) for any jobs count.
SweepJobResult ExecuteSweepJob(const SweepJob& job);

// Serializes a sweep result as a deterministic `easeio-bench/1` document: schema,
// artifact name, config echo, and one cell per grid entry with the full Aggregate
// metric set (the same keys bench::BenchEmitter emits). Unlike the bench binaries'
// files it carries no wall-clock fields, so identical specs yield byte-identical
// documents — the property the daemon's result cache relies on.
std::string SweepJobJson(const SweepJob& job, const SweepJobResult& result,
                         const std::string& artifact_name);

}  // namespace easeio::report

#endif  // EASEIO_REPORT_JOBS_H_
