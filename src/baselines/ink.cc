#include "baselines/ink.h"

namespace easeio::baseline {

namespace {

void ChargedAtomicCopy(sim::Device& dev, uint32_t dst, uint32_t src, uint32_t nbytes) {
  const uint32_t words = (nbytes + 1) / 2;
  dev.Spend(static_cast<uint64_t>(words) * (sim::kFramReadCycles + sim::kFramWriteCycles),
            static_cast<double>(words) * (sim::kFramReadEnergyJ + sim::kFramWriteEnergyJ));
  dev.mem().Copy(dst, src, nbytes);
}

}  // namespace

void InkRuntime::Bind(sim::Device& dev, kernel::NvManager& nv) {
  kernel::Runtime::Bind(dev, nv);
  // The reactive kernel's persistent structures: task queue, event buffer, scheduler
  // state. InK carries noticeably more kernel state than Alpaca (Table 6).
  dev.mem().AllocFram("ink.kernel", 2944, sim::AllocPurpose::kRuntimeMeta);
}

void InkRuntime::SetTaskSharedVars(kernel::TaskId task, std::vector<kernel::NvSlotId> slots) {
  EASEIO_CHECK(dev_ != nullptr, "SetTaskSharedVars before Bind");
  std::vector<SharedVar> vars;
  vars.reserve(slots.size());
  for (kernel::NvSlotId id : slots) {
    const kernel::NvSlot& s = nv_->slot(id);
    const uint32_t working =
        dev_->mem().AllocFram("ink.buf." + s.name, s.size, sim::AllocPurpose::kRuntimeMeta);
    vars.push_back({id, working});
    ++shared_var_count_;
  }
  shared_[task] = std::move(vars);
}

const std::vector<InkRuntime::SharedVar>* InkRuntime::VarsFor(kernel::TaskId task) const {
  auto it = shared_.find(task);
  return it == shared_.end() ? nullptr : &it->second;
}

void InkRuntime::OnTaskBegin(kernel::TaskCtx& ctx) {
  sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kOverhead);
  ctx.dev().Cpu(70);  // scheduler dispatch: event pop, priority scan, task prologue
  const auto* vars = VarsFor(ctx.current_task());
  if (vars == nullptr) {
    return;
  }
  for (const SharedVar& v : *vars) {
    const kernel::NvSlot& s = nv_->slot(v.slot);
    ChargedAtomicCopy(ctx.dev(), v.working_addr, s.addr, s.size);
  }
}

void InkRuntime::OnTaskCommit(kernel::TaskCtx& ctx) {
  {
    sim::Device::PhaseScope scope(ctx.dev(), sim::Phase::kOverhead);
    ctx.dev().Cpu(40);  // publish + scheduler epilogue
    const auto* vars = VarsFor(ctx.current_task());
    if (vars != nullptr) {
      // Publishing the working copies is a single atomic buffer swap in real InK;
      // charge the full cost, then flip everything at once.
      uint32_t words = 0;
      for (const SharedVar& v : *vars) {
        words += (nv_->slot(v.slot).size + 1) / 2;
      }
      ctx.dev().Spend(
          static_cast<uint64_t>(words) * (sim::kFramReadCycles + sim::kFramWriteCycles),
          static_cast<double>(words) * (sim::kFramReadEnergyJ + sim::kFramWriteEnergyJ));
      for (const SharedVar& v : *vars) {
        const kernel::NvSlot& s = nv_->slot(v.slot);
        ctx.dev().mem().Copy(s.addr, v.working_addr, s.size);
      }
    }
  }
  kernel::Runtime::OnTaskCommit(ctx);
}

uint32_t InkRuntime::TranslateNv(kernel::TaskCtx& ctx, const kernel::NvSlot& slot,
                                 uint32_t offset) {
  const auto* vars = VarsFor(ctx.current_task());
  if (vars != nullptr) {
    for (const SharedVar& v : *vars) {
      if (v.slot == slot.id) {
        return v.working_addr + offset;
      }
    }
  }
  return slot.addr + offset;
}

uint32_t InkRuntime::CodeSizeBytes() const {
  // Reactive kernel (scheduler, events, timers) plus double-buffer handling per shared
  // variable.
  return 2100 + 30 * shared_var_count_ + 16 * static_cast<uint32_t>(io_sites_.size()) +
         24 * static_cast<uint32_t>(dma_sites_.size());
}

}  // namespace easeio::baseline
