// Samoyed-style baseline runtime (Maeng & Lucia — PLDI '19), an *extension* beyond the
// paper's evaluated baselines (the paper compares against it qualitatively in
// Table 1).
//
// Samoyed supports peripherals with *atomic functions*: a just-in-time checkpoint is
// taken right before the function, checkpointing interrupts are disabled inside it,
// and its non-volatile writes are undo-logged so that a power failure mid-function
// rolls the memory back and retries the whole function. This keeps peripheral state
// and memory consistent — but, as the paper's Table 1 notes, every interrupted atomic
// function re-executes *all* of its I/O ("Yes (Atomic Functions)"), there is no
// re-execution semantics, no timeliness, and DMA writes still bypass the undo log.
//
// Mapping onto this repository's kernel: atomic functions are expressed with the I/O
// block interface (IoBlockBegin = checkpoint + atomic entry, IoBlockEnd = atomic
// commit). CPU stores to NV variables inside an open atomic function are undo-logged
// via the OnNvWrite hook; a reboot with an open function rolls the log back.

#ifndef EASEIO_BASELINES_SAMOYED_H_
#define EASEIO_BASELINES_SAMOYED_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "kernel/runtime.h"

namespace easeio::baseline {

class SamoyedRuntime : public kernel::Runtime {
 public:
  SamoyedRuntime() { SetNvHooks(/*translate_is_identity=*/true, /*has_write_hook=*/true); }

  const char* name() const override { return "Samoyed"; }

  void Bind(sim::Device& dev, kernel::NvManager& nv) override;

  void IoBlockBegin(kernel::TaskCtx& ctx, kernel::IoBlockId block) override;
  void IoBlockEnd(kernel::TaskCtx& ctx, kernel::IoBlockId block) override;
  void OnNvWrite(kernel::TaskCtx& ctx, const kernel::NvSlot& slot) override;
  void OnReboot() override;
  void OnTaskCommit(kernel::TaskCtx& ctx) override;

  uint32_t CodeSizeBytes() const override;

  // The undo log, shadow table, open-function depth, and pending-rollback latch all
  // steer the reboot path, so two states are interchangeable only when they agree on
  // all four; the rollback *count* is test introspection and stays out (see
  // Runtime::AppendStateDigest).
  bool AppendStateDigest(std::string& out) const override;

  // Test introspection: number of undo-log rollbacks performed so far.
  uint64_t rollbacks() const { return rollbacks_; }

 protected:
  // The undo log, the lazily grown shadow table, and the open-function depth all
  // survive into the reboot path (an open atomic function at the failure decides
  // whether Rollback runs), so a resumed trial must carry them.
  std::shared_ptr<const void> SnapshotExtra() const override;
  void RestoreExtra(const std::shared_ptr<const void>& extra) override;

 private:
  struct LogEntry {
    kernel::NvSlotId slot;
    uint32_t shadow_addr;  // FRAM copy of the pre-write contents
    uint32_t size;
  };

  // Value bundle SnapshotExtra captures (see Runtime::SnapshotExtra).
  struct ExtraState {
    int open_blocks;
    std::vector<LogEntry> log;
    std::map<kernel::NvSlotId, uint32_t> shadows;
    uint64_t rollbacks;
    bool rollback_pending;
  };

  // Lazily allocates a shadow slot for `slot` (one per NV variable, reused).
  uint32_t ShadowFor(const kernel::NvSlot& slot);

  // Undoes every logged write (uncharged: runs conceptually during boot firmware;
  // its cost is charged as a lump at rollback time).
  void Rollback();

  int open_blocks_ = 0;  // depth of the current atomic function nest (volatile)
  std::vector<LogEntry> log_;
  std::map<kernel::NvSlotId, uint32_t> shadows_;
  uint64_t rollbacks_ = 0;
  bool rollback_pending_ = false;
};

}  // namespace easeio::baseline

#endif  // EASEIO_BASELINES_SAMOYED_H_
